//! Device-memory layout of one warp's job.
//!
//! The host reserves, per contig: the contig bytes, the concatenated read
//! sequences and quality strings, the hash-table slab (sized by
//! `locassm_core::estimate_slots`), the walk's visited-fingerprint list and
//! the output extension buffer — mirroring the "Estimate Hash Table Sizes /
//! GPU Initialize" steps of Fig. 3. Input data is staged with direct
//! (uncounted) writes, modeling the host→device copy that precedes the
//! kernel; everything the *kernel* touches flows through the cache
//! simulator.

use crate::fault::KernelFault;
use crate::probe::ProbeStrategy;
use crate::table::TableLayoutKind;
use locassm_core::murmur::{murmur_hash_aligned2, murmur_intops, DEFAULT_SEED};
use locassm_core::walk::WalkConfig;
use locassm_core::Read;
use memhier::Addr;
use simt::{ExecMode, Warp};
use std::collections::HashMap;

/// Hash-table entry layout (stride and field offsets, bytes).
///
/// ```text
/// 0   key_len   u32  (0 = EMPTY sentinel; the atomicCAS claim target)
/// 4   key_off   u32  (offset of the key bytes in the reads buffer)
/// 8   hi_q[4]   u32 × 4
/// 24  low_q[4]  u32 × 4
/// 40  count     u32
/// 44  ext       u32  (decided extension; written by the walk)
/// ```
pub const ENTRY_STRIDE: u64 = 48;
pub const OFF_KEY_LEN: u64 = 0;
pub const OFF_KEY_OFF: u64 = 4;
pub const OFF_HI_Q: u64 = 8;
pub const OFF_LOW_Q: u64 = 24;
pub const OFF_COUNT: u64 = 40;

/// `key_len` value marking an empty slot.
pub const EMPTY: u32 = 0;

/// One read's placement in the device buffers.
#[derive(Debug, Clone, Copy)]
pub struct ReadSpan {
    /// Byte offset of the sequence (and, at the same offset in the quality
    /// buffer, its qualities).
    pub offset: u32,
    pub len: u32,
}

/// Resolved device addresses for one warp's job.
#[derive(Debug, Clone)]
pub struct DeviceJob {
    pub k: usize,
    pub walk: WalkConfig,
    pub contig: Addr,
    pub contig_len: u32,
    /// Concatenated read sequences.
    pub reads: Addr,
    /// Concatenated read qualities (same spans as `reads`).
    pub quals: Addr,
    pub spans: Vec<ReadSpan>,
    /// Hash-table slab.
    pub ht: Addr,
    pub slots: u32,
    /// Slots in the table's front (direct-indexed) region; equal to
    /// `slots` for single-region layouts, smaller for an iceberg table
    /// whose backyard occupies `front_slots..slots`.
    pub front_slots: u32,
    /// Table organization governing probe order and sizing (see
    /// [`crate::table`]). Never changes what the kernel computes — only
    /// where keys live and how long chains may get.
    pub layout: TableLayoutKind,
    /// Total bytes in the concatenated reads buffer — the clamp bound for
    /// tail-chunk key loads (see [`DeviceJob::key_chunk_addr`]).
    pub reads_len: u32,
    /// Visited-fingerprint list (u32 per potential walk step).
    pub visited: Addr,
    /// Output extension buffer.
    pub out: Addr,
    /// Warp-instruction budget for the mer walk (see [`walk_budget`]),
    /// enforced by the walk kernel's watchdog.
    pub walk_budget: u64,
    /// Probe-cursor strategy shared by every table access of this job.
    /// Staging defaults to [`ProbeStrategy::Linear`]; the extension kernel
    /// overrides it from its [`crate::kernel::KernelJob`].
    pub probe: ProbeStrategy,
    /// In-kernel incremental resizing enabled? Off (the default) keeps
    /// every table access bit-identical to the fixed-capacity engine;
    /// on, the insert dialects call
    /// [`ensure_capacity`](crate::resize::ensure_capacity) before each
    /// round and `HashTableFull` escalation demotes to "arena genuinely
    /// exhausted".
    pub resize: bool,
    /// Live (non-tombstone) slots claimed so far — host-side bookkeeping
    /// the dialects bump per insert round, mirrored by the sanitizer's
    /// migration-consistency scan.
    pub occupied: u32,
    /// Tombstoned slots accumulated since the last migration (deletion
    /// writes [`crate::table::TOMBSTONE`]; migration drops them all).
    pub tombstones: u32,
    /// Incremental resizes already performed on this job (capped by
    /// [`crate::resize::MAX_RESIZES`]).
    pub resizes_done: u32,
    /// Host-side k-mer hash shadow of the reads buffer, indexed by byte
    /// offset: `fps[off]` is [`key_hash`] of the k-mer at `reads + off`
    /// (0 where no whole k-mer starts — readers treat 0 as "no
    /// fingerprint" and fall back to hashing/comparing the bytes).
    /// Because [`key_hash`] is exactly the table hash, the shadow serves
    /// double duty in Vectorized runs: construction reads its slot hash
    /// from it, and probe compares reject mismatched keys against it
    /// without touching the key bytes. Interned at stage time in
    /// Vectorized runs only; empty in Scalar runs, so the baseline's
    /// host work is untouched.
    pub fps: Vec<u32>,
}

impl DeviceJob {
    /// Stage a job into the warp's memory arena.
    ///
    /// `slot_reserve` multiplies the host-side slot estimate — 1 for a
    /// first attempt, > 1 when the launch layer retries a job whose table
    /// overflowed (the grown count stays odd, like the estimate). Staging
    /// reports allocation failure as a structured fault instead of
    /// panicking, so one oversized job cannot kill a batch.
    pub fn stage(
        warp: &mut Warp,
        contig: &[u8],
        reads: &[Read],
        k: usize,
        walk: WalkConfig,
        slot_reserve: u32,
    ) -> Result<Self, KernelFault> {
        Self::stage_with_layout(warp, contig, reads, k, walk, slot_reserve, TableLayoutKind::default())
    }

    /// [`DeviceJob::stage`] with an explicit table layout: the layout owns
    /// the hash-table geometry (slot count, region split) and later the
    /// probe sequence; everything else about staging is identical.
    ///
    /// An armed [`simt::InjectedFaults::table_squeeze`] divides the
    /// layout's main region here — the table is staged genuinely
    /// under-sized, so whether the kernel overflows depends on the
    /// layout's real headroom.
    pub fn stage_with_layout(
        warp: &mut Warp,
        contig: &[u8],
        reads: &[Read],
        k: usize,
        walk: WalkConfig,
        slot_reserve: u32,
        layout: TableLayoutKind,
    ) -> Result<Self, KernelFault> {
        // The three staging buffers are memcpy'd in full right here (the
        // read/qual spans pack contiguously over [0, total)), so a pooled
        // arena need not lazily re-zero them — cudaMemcpyHostToDevice
        // doesn't care what the buffer held before.
        let contig_addr = warp.mem.try_alloc_overwritten(contig.len() as u64)?;
        warp.mem.write_bytes(contig_addr, contig);

        let total: usize = reads.iter().map(Read::len).sum();
        let reads_addr = warp.mem.try_alloc_overwritten(total as u64)?;
        let quals_addr = warp.mem.try_alloc_overwritten(total as u64)?;
        let mut spans = Vec::with_capacity(reads.len());
        let mut off = 0u32;
        for r in reads {
            warp.mem.write_bytes(reads_addr + off as u64, &r.seq);
            warp.mem.write_bytes(quals_addr + off as u64, &r.qual);
            spans.push(ReadSpan { offset: off, len: r.len() as u32 });
            off += r.len() as u32;
        }

        let insertions: usize = reads.iter().map(|r| r.kmer_count(k)).sum();
        let squeeze = warp.injected_faults().table_squeeze;
        let geo = layout.as_layout().geometry(insertions, slot_reserve, squeeze)?;
        // GPU Initialize (Fig. 3): the table must be zero (EMPTY) before
        // launch. The arena guarantees zeroed bytes on every allocation
        // (pooled resets zero lazily on the next alloc), so the cudaMemset
        // is modeled by the allocation itself — no second pass here.
        let ht = warp.mem.try_alloc_aligned(geo.slots as u64 * ENTRY_STRIDE, 32)?;

        let visited = warp.mem.try_alloc(walk.max_walk_len as u64 * 4)?;
        let out = warp.mem.try_alloc(walk.max_walk_len as u64)?;

        // Vectorized runs intern one fingerprint per k-mer start so probe
        // compares can reject mismatches without touching the key bytes;
        // the Scalar baseline skips the shadow entirely.
        let fps = match warp.exec() {
            ExecMode::Vectorized | ExecMode::Scheduled => intern_fingerprints(reads, total, k),
            ExecMode::Scalar => Vec::new(),
        };

        let mut job = DeviceJob {
            k,
            walk,
            contig: contig_addr,
            contig_len: contig.len() as u32,
            reads: reads_addr,
            quals: quals_addr,
            spans,
            ht,
            slots: geo.slots,
            front_slots: geo.front_slots,
            layout,
            reads_len: total as u32,
            visited,
            out,
            walk_budget: 0,
            probe: ProbeStrategy::default(),
            resize: false,
            occupied: 0,
            tombstones: 0,
            resizes_done: 0,
            fps,
        };
        // The watchdog ceiling tracks the layout's probe bound, not the
        // raw slot count: a bucketed table's longest legal chain is two
        // buckets, so its runaway bound is commensurately tighter.
        let bound = layout.as_layout().probe_bound(&job);
        job.walk_budget = walk_budget(k, bound, walk);
        Ok(job)
    }

    /// Address of entry `slot`'s field at `field_off`.
    #[inline]
    pub fn entry_field(&self, slot: u32, field_off: u64) -> Addr {
        self.ht + slot as u64 * ENTRY_STRIDE + field_off
    }

    /// Address of the `j`-th 4-byte chunk of the key at reads-buffer
    /// offset `off`, clamped so the final (partial) chunk of a key ending
    /// within 3 bytes of the buffer end re-reads the last whole word
    /// instead of running past the allocation — the same clamp the contig
    /// tail load applies. Without it, modeled traffic for a tail k-mer
    /// lands in the neighboring buffer's sectors.
    #[inline]
    pub fn key_chunk_addr(&self, off: u32, j: u64) -> Addr {
        let clamp = (self.reads_len as u64).saturating_sub(4);
        self.reads + (off as u64 + 4 * j).min(clamp)
    }

    /// The interned hash of the k-mer at reads-buffer offset `off`, or
    /// `None` when no shadow exists (Scalar runs) or no whole k-mer
    /// starts there. `None` means "recompute / fall back to the byte
    /// compare", never "not equal".
    #[inline]
    pub fn key_fp(&self, off: u32) -> Option<u32> {
        match self.fps.get(off as usize) {
            Some(&f) if f != 0 => Some(f),
            _ => None,
        }
    }
}

/// The key fingerprint *and* table hash: `MurmurHashAligned2` under the
/// table seed, the same value `construct` reduces mod the slot count.
/// Host-side only — interning it never charges the simulated kernel,
/// which still pays `murmur_intops(k)` per hash exactly as before.
pub fn key_hash(bytes: &[u8]) -> u32 {
    murmur_hash_aligned2(bytes, DEFAULT_SEED)
}

/// One hash per k-mer start across the concatenated reads buffer
/// (`total` bytes laid out read-by-read, exactly as staging writes them).
/// Offsets where no whole k-mer starts keep the 0 sentinel; a genuine
/// hash of 0 (vanishingly rare) is also treated as "absent", which only
/// costs a harmless recompute/fallback on that key.
fn intern_fingerprints(reads: &[Read], total: usize, k: usize) -> Vec<u32> {
    let mut fps = vec![0u32; total];
    let mut off = 0usize;
    for r in reads {
        if r.len() >= k {
            for i in 0..=r.len() - k {
                fps[off + i] = key_hash(&r.seq[i..i + k]);
            }
        }
        off += r.len();
    }
    fps
}

/// Analytic warp-instruction budget for one mer walk — the watchdog bound
/// enforced by `mer_walk_kernel`.
///
/// Derived from the same layout quantities the footprint estimates use:
/// at most `max_walk_len + 1` steps, each hashing a k-mer, scanning at
/// most `max_walk_len` visited fingerprints, probing at most `probe_bound`
/// table entries (`⌈k/4⌉` chunk loads each) and scoring the vote —
/// `probe_bound` is the staged layout's chain ceiling
/// ([`crate::table::TableLayout::probe_bound`]): the full slot count for
/// linear probing, two buckets for the bucketed layout, front bucket plus
/// backyard for iceberg. The result is doubled for slack: the budget is a
/// runaway bound, not a tight estimate, and must never fire on a
/// terminating walk.
pub fn walk_budget(k: usize, probe_bound: u32, walk: WalkConfig) -> u64 {
    let chunks = k.div_ceil(4) as u64;
    let steps = walk.max_walk_len as u64 + 1;
    let per_step = murmur_intops(k)              // k-mer hash
        + walk.max_walk_len as u64 * 2           // visited scan: load + compare
        + probe_bound as u64 * (chunks * 2 + 5)  // probe: key compare + cursor math
        + 32;                                    // vote loads, scoring, bookkeeping
    2 * (chunks * 2 + steps * per_step + 8)
}

/// Occupied slots of a staged hash table — the diagnostic payload of a
/// `HashTableFull` fault. Host-side scan over direct memory: not charged
/// to the kernel (the real listings print from the abort handler).
pub fn table_occupancy(warp: &Warp, job: &DeviceJob) -> u32 {
    (0..job.slots)
        .filter(|&s| warp.mem.read_u32(job.entry_field(s, OFF_KEY_LEN)) != EMPTY)
        .count() as u32
}

/// Post-construct hash-table invariant scan — the warp sanitizer's
/// `invariants` check family. Verifies that every occupied slot holds a
/// *distinct* key (duplicate keys mean two lanes both won a claim for the
/// same k-mer — the exact corruption `__match_any_sync`/done-flag retry
/// loops exist to prevent), that the table is not completely full (a
/// full open-addressed table cannot terminate unmatched probes, so the
/// staging load-factor estimate was violated), and — for region-restricted
/// layouts — that every stored key is *reachable*: it sits on the probe
/// sequence its own hash generates under the job's layout
/// ([`crate::table::TableLayout::key_reachable`]). A misplaced key is
/// silent data loss: inserts of the same k-mer open a fresh slot and
/// lookups never find the stray's counts. Host-side direct reads, like
/// [`table_occupancy`]: not charged to the kernel.
///
/// The duplicate scan is a `HashMap` keyed by the key bytes — O(occupancy)
/// where the old `Vec::iter().find` was O(occupancy²), which matters once
/// iceberg tables raise sustainable occupancy. First-slot-wins reporting
/// is preserved: every duplicate pairs the *first* slot holding the key
/// with the offending later slot.
pub fn check_table_invariants(warp: &Warp, job: &DeviceJob) -> Vec<simt::SanKind> {
    let mut found = Vec::new();
    let mut seen: HashMap<Vec<u8>, u32> = HashMap::new();
    let mut occupancy = 0u32;
    let mut tombstones = 0u32;
    let lay = job.layout.as_layout();
    let check_reachable = job.layout != TableLayoutKind::LinearProbe;
    for s in 0..job.slots {
        let len = warp.mem.read_u32(job.entry_field(s, OFF_KEY_LEN));
        if len == EMPTY {
            continue;
        }
        // Tombstones carry no key bytes: the length word is the sentinel
        // itself, so the byte read below must not run (u32::MAX bytes).
        if len == crate::table::TOMBSTONE {
            tombstones += 1;
            continue;
        }
        occupancy += 1;
        let off = warp.mem.read_u32(job.entry_field(s, OFF_KEY_OFF));
        let key = warp.mem.read_bytes(job.reads + off as u64, len as u64);
        if let Some(&slot_a) = seen.get(key) {
            found.push(simt::SanKind::DuplicateKey { slot_a, slot_b: s });
        } else {
            seen.insert(key.to_vec(), s);
        }
        if check_reachable && !lay.key_reachable(job, key_hash(key), s) {
            found.push(simt::SanKind::MisplacedKey { slot: s });
        }
    }
    if occupancy + tombstones >= job.slots {
        found.push(simt::SanKind::TableOverflow {
            occupancy: occupancy + tombstones,
            capacity: job.slots,
        });
    }
    // Migration-consistency scans, meaningful only when the resize engine
    // maintains the host-side counters: a dangling tombstone count means a
    // migration dropped tombstones without resetting the counter (or a
    // deletion forgot to bump it); an occupied mismatch means a slot was
    // migrated twice (or a live entry was lost mid-migration).
    if job.resize {
        if tombstones != job.tombstones {
            found.push(simt::SanKind::TombstoneMismatch {
                counted: job.tombstones,
                scanned: tombstones,
            });
        }
        if occupancy != job.occupied {
            found.push(simt::SanKind::MigrationMismatch {
                counted: job.occupied,
                scanned: occupancy,
            });
        }
    }
    found
}

/// Upper bound on the arena bytes one [`DeviceJob::stage`] pass allocates
/// (alignment padding included) — the host-side size estimation of Fig. 3,
/// reused by the pooled launch engine to pre-size warp arenas so staging
/// never regrows them.
pub fn stage_footprint(
    contig_len: usize,
    reads: &[Read],
    k: usize,
    walk: WalkConfig,
    slot_reserve: u32,
    layout: TableLayoutKind,
    resize: bool,
) -> u64 {
    const A: u64 = simt::mem::DEFAULT_ALIGN - 1; // worst-case pad per default alloc
    let total: u64 = reads.iter().map(|r| r.len() as u64).sum();
    let insertions: usize = reads.iter().map(|r| r.kmer_count(k)).sum();
    // A geometry the layout rejects (slot target past u32) would fault at
    // stage time; price it at the slot ceiling so packing rejects it too.
    let slots = layout
        .as_layout()
        .geometry(insertions, slot_reserve, 0)
        .map_or(u32::MAX as u64, |g| g.slots as u64);
    // With in-kernel resizing armed, up to MAX_RESIZES successor slabs of
    // roughly 2× and 4× the base live alongside it (the bump arena never
    // rewinds): 7× the base slab, plus the odd/floor adjustments growth
    // may add and the successors' alignment pads.
    let table = if resize {
        7 * slots * ENTRY_STRIDE + 4 * ENTRY_STRIDE + 3 * 31
    } else {
        slots * ENTRY_STRIDE + 31
    };
    (contig_len as u64 + A)               // contig
        + 2 * (total + A)                 // read sequences + qualities
        + table                           // hash-table slab(s) (32-aligned)
        + (walk.max_walk_len as u64 * 4 + A) // visited fingerprints
        + (walk.max_walk_len as u64 + A)  // output extension buffer
}

/// Upper bound on the arena bytes one warp's whole job allocates: each
/// retry in the ladder re-stages at its own k without rewinding the bump
/// allocator, so per-stage footprints sum over the schedule (skipping ks
/// the kernel itself skips because the contig is too short).
pub fn arena_footprint(
    contig_len: usize,
    reads: &[Read],
    schedule: &[usize],
    walk: WalkConfig,
    slot_reserve: u32,
    layout: TableLayoutKind,
    resize: bool,
) -> u64 {
    schedule
        .iter()
        .filter(|&&k| contig_len >= k)
        .map(|&k| stage_footprint(contig_len, reads, k, walk, slot_reserve, layout, resize))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use memhier::HierarchyConfig;

    fn reads() -> Vec<Read> {
        vec![
            Read::with_uniform_qual(b"ACGTACGTAC", b'I'),
            Read::with_uniform_qual(b"GGGTTTCCCA", b'#'),
        ]
    }

    fn stage_ok(warp: &mut Warp, contig: &[u8], reads: &[Read], k: usize) -> DeviceJob {
        DeviceJob::stage(warp, contig, reads, k, WalkConfig::default(), 1).unwrap()
    }

    #[test]
    fn staging_preserves_data() {
        let mut warp = Warp::new(32, HierarchyConfig::tiny());
        let job = stage_ok(&mut warp, b"ACGTACGT", &reads(), 4);
        assert_eq!(warp.mem.read_bytes(job.contig, 8), b"ACGTACGT");
        assert_eq!(job.spans.len(), 2);
        let s1 = job.spans[1];
        assert_eq!(warp.mem.read_bytes(job.reads + s1.offset as u64, s1.len as u64), b"GGGTTTCCCA");
        assert_eq!(warp.mem.read_bytes(job.quals + s1.offset as u64, 3), b"###");
    }

    #[test]
    fn table_is_zeroed_and_sized() {
        let mut warp = Warp::new(32, HierarchyConfig::tiny());
        let job = stage_ok(&mut warp, b"ACGTACGT", &reads(), 4);
        // 2 reads × 7 k-mers = 14 insertions → ≥ 14 / 0.66 slots.
        assert!(job.slots >= 21);
        for s in 0..job.slots {
            assert_eq!(warp.mem.read_u32(job.entry_field(s, OFF_KEY_LEN)), EMPTY);
        }
    }

    /// The "cudaMemset" of Fig. 3 is modeled by the arena's zero-on-alloc
    /// guarantee: even a pooled warp whose previous job dirtied the slab
    /// bytes must stage a fully EMPTY table after `reset()`.
    #[test]
    fn restaged_pooled_arena_sees_a_zeroed_table() {
        let mut warp = Warp::new(32, HierarchyConfig::tiny());
        let first = stage_ok(&mut warp, b"ACGTACGT", &reads(), 4);
        // Dirty the whole table slab, as a completed job would.
        for s in 0..first.slots {
            warp.mem.write_u32(first.entry_field(s, OFF_KEY_LEN), 0xdead_beef);
        }
        warp.reset(32, HierarchyConfig::tiny());
        let second = stage_ok(&mut warp, b"ACGTACGT", &reads(), 4);
        for s in 0..second.slots {
            assert_eq!(warp.mem.read_u32(second.entry_field(s, OFF_KEY_LEN)), EMPTY);
        }
    }

    #[test]
    fn fingerprints_cover_every_kmer_start() {
        let mut warp = Warp::new(32, HierarchyConfig::tiny());
        let job = stage_ok(&mut warp, b"ACGTACGT", &reads(), 4);
        assert_eq!(job.fps.len(), 20, "one slot per concatenated read byte");
        for span in &job.spans {
            for i in 0..span.len {
                let off = span.offset + i;
                let fp = job.key_fp(off);
                if i + 4 <= span.len {
                    let key = warp.mem.read_bytes(job.reads + off as u64, 4);
                    assert_eq!(fp, Some(key_hash(key)), "offset {off}");
                } else {
                    assert_eq!(fp, None, "offset {off} has no whole k-mer");
                }
            }
        }
        // Equal keys ⇒ equal fingerprints (offsets 0 and 4 are both "ACGT").
        assert_eq!(job.key_fp(0), job.key_fp(4));
        assert_ne!(job.key_fp(0), job.key_fp(1));
    }

    #[test]
    fn scalar_staging_skips_the_fingerprint_shadow() {
        let mut warp = Warp::new(32, HierarchyConfig::tiny());
        warp.set_exec(simt::ExecMode::Scalar);
        let job = stage_ok(&mut warp, b"ACGTACGT", &reads(), 4);
        assert!(job.fps.is_empty());
        assert_eq!(job.key_fp(0), None, "no shadow means byte-compare fallback");
    }

    #[test]
    fn staging_is_uncounted_host_traffic() {
        let mut warp = Warp::new(32, HierarchyConfig::tiny());
        let _ = stage_ok(&mut warp, b"ACGTACGT", &reads(), 4);
        let c = warp.finish();
        assert_eq!(c.mem.hbm_bytes(), 0, "host staging must not count as kernel traffic");
        assert_eq!(c.warp_instructions, 0);
    }

    #[test]
    fn stage_footprint_bounds_actual_allocation() {
        for (contig, k) in [(&b"ACGTACGT"[..], 4), (&b"ACGTACGTACGTACGTACGT"[..], 7)] {
            let mut warp = Warp::new(32, HierarchyConfig::tiny());
            let walk = WalkConfig::default();
            let before = warp.mem.allocated();
            let _ = DeviceJob::stage(&mut warp, contig, &reads(), k, walk, 1).unwrap();
            let actual = warp.mem.allocated() - before;
            let bound =
                stage_footprint(contig.len(), &reads(), k, walk, 1, TableLayoutKind::LinearProbe, false);
            assert!(actual <= bound, "actual {actual} > bound {bound} (k={k})");
            assert!(bound <= actual + 256, "bound {bound} is not tight around {actual}");
        }
    }

    #[test]
    fn arena_footprint_sums_over_the_viable_schedule() {
        let walk = WalkConfig::default();
        let contig_len = 8;
        let single =
            stage_footprint(contig_len, &reads(), 4, walk, 1, TableLayoutKind::LinearProbe, false);
        // k = 9 exceeds the contig and is skipped, just as the kernel skips it.
        let laddered = arena_footprint(
            contig_len,
            &reads(),
            &[4, 9, 4],
            walk,
            1,
            TableLayoutKind::LinearProbe,
            false,
        );
        assert_eq!(laddered, 2 * single);
    }

    /// Resize headroom is priced into the footprint: with resizing armed
    /// the bound covers the base slab plus both doubled successors (7× +
    /// growth adjustments), so pooled arenas sized from it never regrow
    /// mid-kernel even if a job resizes to its cap.
    #[test]
    fn resize_footprint_covers_the_successor_slabs() {
        let walk = WalkConfig::default();
        for layout in TableLayoutKind::ALL {
            let flat = stage_footprint(8, &reads(), 4, walk, 1, layout, false);
            let grown = stage_footprint(8, &reads(), 4, walk, 1, layout, true);
            let slots =
                layout.as_layout().geometry(14, 1, 0).unwrap().slots as u64;
            assert!(
                grown >= flat + 6 * slots * ENTRY_STRIDE,
                "{layout}: resize bound {grown} lacks successor headroom over {flat}"
            );
        }
    }

    #[test]
    fn entry_field_addresses_are_disjoint() {
        let mut warp = Warp::new(32, HierarchyConfig::tiny());
        let job = stage_ok(&mut warp, b"ACGTACGT", &reads(), 4);
        let a = job.entry_field(0, OFF_COUNT);
        let b = job.entry_field(1, OFF_KEY_LEN);
        assert_eq!(b - (a + 4), 4, "count(+ext pad) then next entry");
    }

    #[test]
    fn slot_reserve_grows_the_table_and_stays_odd() {
        let mut warp = Warp::new(32, HierarchyConfig::tiny());
        let base = stage_ok(&mut warp, b"ACGTACGT", &reads(), 4);
        for reserve in [2u32, 3, 5] {
            let mut w = Warp::new(32, HierarchyConfig::tiny());
            let grown =
                DeviceJob::stage(&mut w, b"ACGTACGT", &reads(), 4, WalkConfig::default(), reserve)
                    .unwrap();
            assert!(grown.slots > base.slots, "reserve {reserve}");
            assert_eq!(grown.slots % 2, 1, "grown table stays odd");
            let bound = stage_footprint(
                8,
                &reads(),
                4,
                WalkConfig::default(),
                reserve,
                TableLayoutKind::LinearProbe,
                false,
            );
            assert!(bound >= grown.slots as u64 * ENTRY_STRIDE, "footprint tracks the reserve");
        }
    }

    #[test]
    fn staging_surfaces_injected_alloc_failure_as_a_fault() {
        let mut warp = Warp::new(32, HierarchyConfig::tiny());
        warp.mem.arm_alloc_failure(4); // the hash-table slab (4th allocation)
        let err = DeviceJob::stage(&mut warp, b"ACGTACGT", &reads(), 4, WalkConfig::default(), 1)
            .unwrap_err();
        assert!(
            matches!(err, KernelFault::ArenaExhausted { requested, .. }
                if requested % ENTRY_STRIDE == 0),
            "{err:?}"
        );
    }

    #[test]
    fn walk_budget_bounds_every_terminating_walk() {
        // The budget must dominate the instructions a full-length walk can
        // issue; a loose factor-of-two slack is part of the contract.
        let walk = WalkConfig::default();
        for (k, slots) in [(4usize, 33u32), (21, 101), (77, 1001)] {
            let b = walk_budget(k, slots, walk);
            let per_step_floor = murmur_intops(k) + slots as u64;
            assert!(
                b > (walk.max_walk_len as u64) * per_step_floor,
                "budget {b} too small for k={k} slots={slots}"
            );
        }
    }

    #[test]
    fn table_occupancy_counts_claimed_slots() {
        let mut warp = Warp::new(32, HierarchyConfig::tiny());
        let job = stage_ok(&mut warp, b"ACGTACGT", &reads(), 4);
        assert_eq!(table_occupancy(&warp, &job), 0);
        warp.mem.write_u32(job.entry_field(2, OFF_KEY_LEN), 4);
        warp.mem.write_u32(job.entry_field(5, OFF_KEY_LEN), 4);
        assert_eq!(table_occupancy(&warp, &job), 2);
    }

    #[test]
    fn table_invariants_detect_duplicate_keys() {
        let mut warp = Warp::new(32, HierarchyConfig::tiny());
        let job = stage_ok(&mut warp, b"ACGTACGT", &reads(), 4);
        assert!(check_table_invariants(&warp, &job).is_empty(), "fresh table is clean");
        // Two slots claiming the same key bytes (reads offset 0, len 4):
        // the corruption a lost warp-collision vote would produce.
        for s in [1u32, 6] {
            warp.mem.write_u32(job.entry_field(s, OFF_KEY_LEN), 4);
            warp.mem.write_u32(job.entry_field(s, OFF_KEY_OFF), 0);
        }
        let found = check_table_invariants(&warp, &job);
        assert_eq!(found.len(), 1);
        assert!(
            matches!(found[0], simt::SanKind::DuplicateKey { slot_a: 1, slot_b: 6 }),
            "{found:?}"
        );
    }

    /// A key parked outside its hash's probe region is invisible to
    /// lookups under a region-restricted layout — the sanitizer must flag
    /// it. Linear tables reach every slot, so the same stray is legal
    /// there (covered by `table_invariants_detect_duplicate_keys` never
    /// reporting `MisplacedKey`).
    #[test]
    fn table_invariants_flag_misplaced_keys_on_bucketed_layouts() {
        use crate::table::{TableLayoutKind, BUCKET_SLOTS};
        let mut warp = Warp::new(32, HierarchyConfig::tiny());
        let job = DeviceJob::stage_with_layout(
            &mut warp,
            b"ACGTACGT",
            &reads(),
            4,
            WalkConfig::default(),
            4, // reserve up the bucket count so an out-of-region slot exists
            TableLayoutKind::Bucketed,
        )
        .unwrap();
        assert!(check_table_invariants(&warp, &job).is_empty());
        let lay = job.layout.as_layout();
        let h = key_hash(warp.mem.read_bytes(job.reads, 4));
        // Park the key at offset 0 in the first slot of a bucket its hash
        // cannot reach.
        let stray = (0..job.slots / BUCKET_SLOTS)
            .map(|b| b * BUCKET_SLOTS)
            .find(|&s| !lay.key_reachable(&job, h, s))
            .expect("a 4×-reserved bucketed table has unreachable buckets");
        warp.mem.write_u32(job.entry_field(stray, OFF_KEY_LEN), 4);
        warp.mem.write_u32(job.entry_field(stray, OFF_KEY_OFF), 0);
        let found = check_table_invariants(&warp, &job);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(matches!(found[0], simt::SanKind::MisplacedKey { slot } if slot == stray));
        // The same key in a reachable slot is clean.
        let home = lay.slot_at(&job, h, 0);
        warp.mem.write_u32(job.entry_field(stray, OFF_KEY_LEN), EMPTY);
        warp.mem.write_u32(job.entry_field(home, OFF_KEY_LEN), 4);
        warp.mem.write_u32(job.entry_field(home, OFF_KEY_OFF), 0);
        assert!(check_table_invariants(&warp, &job).is_empty());
    }

    #[test]
    fn key_chunk_addr_clamps_the_tail_chunk() {
        let mut warp = Warp::new(32, HierarchyConfig::tiny());
        let job = stage_ok(&mut warp, b"ACGTACGT", &reads(), 4);
        assert_eq!(job.reads_len, 20);
        // An in-bounds chunk is untouched…
        assert_eq!(job.key_chunk_addr(4, 0), job.reads + 4);
        // …but the last chunk of a key ending at the buffer end re-reads
        // the final whole word instead of running 3 bytes past it.
        assert_eq!(job.key_chunk_addr(14, 1), job.reads + 16);
        assert_eq!(job.key_chunk_addr(18, 0), job.reads + 16);
    }

    #[test]
    fn table_invariants_flag_a_full_table() {
        let mut warp = Warp::new(32, HierarchyConfig::tiny());
        let job = stage_ok(&mut warp, b"ACGTACGT", &reads(), 4);
        for s in 0..job.slots {
            warp.mem.write_u32(job.entry_field(s, OFF_KEY_LEN), 4);
            warp.mem.write_u32(job.entry_field(s, OFF_KEY_OFF), 0);
        }
        let found = check_table_invariants(&warp, &job);
        assert!(
            found.iter().any(|k| matches!(
                k,
                simt::SanKind::TableOverflow { occupancy, capacity } if occupancy == capacity
            )),
            "{found:?}"
        );
    }
}

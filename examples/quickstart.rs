//! Quickstart: extend a handful of contigs with the local assembly kernel
//! on a simulated NVIDIA A100, and compare against the CPU reference.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use locassm::core::{assemble_all, AssemblyConfig};
use locassm::kernels::{run_local_assembly, GpuConfig};
use locassm::specs::DeviceId;
use locassm::workloads::paper_dataset;

fn main() {
    // A small slice of the paper's k=21 dataset (1% of Table II's counts).
    let ds = paper_dataset(21, 0.01, 42);
    println!(
        "dataset: k={}, {} contigs, {} reads, {} hash insertions",
        ds.k,
        ds.jobs.len(),
        ds.total_reads(),
        ds.total_insertions()
    );

    // Run the CUDA-dialect kernel on the simulated A100.
    let cfg = GpuConfig::for_device(DeviceId::A100);
    let run = run_local_assembly(&ds, &cfg);

    // The CPU reference is the correctness oracle.
    let cpu = assemble_all(&ds.jobs, &AssemblyConfig { k: ds.k, walk: cfg.walk, retry: cfg.retry.clone() }, true);
    assert_eq!(run.extensions, cpu, "GPU kernel must match the CPU reference");

    let extended = run.extensions.iter().filter(|e| e.total_len() > 0).count();
    let gained: usize = run.extensions.iter().map(|e| e.total_len()).sum();
    println!("extended {extended}/{} contigs by {gained} bases total", ds.jobs.len());

    // Show one concrete extension.
    if let Some(e) = run.extensions.iter().max_by_key(|e| e.total_len()) {
        let job = &ds.jobs[e.id as usize];
        println!(
            "contig {}: {} + {} bases (left/right), states {:?}/{:?}",
            e.id,
            e.left.len(),
            e.right.len(),
            e.left_state,
            e.right_state
        );
        let new = e.apply(&job.contig);
        println!("  before: …{}", String::from_utf8_lossy(&job.contig[job.contig.len().saturating_sub(40)..]));
        println!("  after:  …{}", String::from_utf8_lossy(&new[new.len().saturating_sub(40)..]));
    }

    // And the profile the paper's analysis is built on.
    let p = &run.profile;
    println!(
        "\nprofile on {}: {:.2} G INTOPs, {:.1} MB HBM traffic, II = {:.2} INTOP/byte, \
         simulated time {:.3} ms ({:?}-bound)",
        cfg.device,
        p.intops() as f64 / 1e9,
        p.hbm_bytes() as f64 / 1e6,
        p.intop_intensity(),
        p.seconds() * 1e3,
        p.bound()
    );
}

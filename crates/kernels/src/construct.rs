//! Warp-parallel hash-table construction (Algorithm 1, Fig. 1c).
//!
//! Consecutive lanes insert consecutive k-mers of each read (§III-A).
//! Per k-mer the kernel: loads the k-mer bytes, evaluates
//! `MurmurHashAligned2` (the dominant integer cost — Table V), claims or
//! finds the entry through the dialect's `ht_get_atomic`, and atomically
//! bumps the occurrence count and the quality-stratified extension vote.

use crate::fault::KernelFault;
use crate::kernel::Dialect;
use crate::layout::{DeviceJob, OFF_COUNT, OFF_HI_Q, OFF_LOW_Q};
use crate::probe::InsertArgs;
use locassm_core::murmur::{murmur_hash_aligned2, murmur_intops, DEFAULT_SEED};
use locassm_core::quality::is_hi_qual;
use simt::{LaneVec, Mask, Warp};

/// Build the de Bruijn hash table for a staged job.
///
/// Propagates the dialect's `HashTableFull` fault (or any injected
/// fault) instead of panicking, leaving the launch layer to retry with
/// a grown table or a smaller k.
pub fn construct_hash_table(
    warp: &mut Warp,
    job: &mut DeviceJob,
    dialect: Dialect,
) -> Result<(), KernelFault> {
    let width = warp.width();
    let k = job.k as u32;
    let chunks = job.k.div_ceil(4) as u64;

    // Indexed iteration: an in-kernel resize mutates the job (new region,
    // new slot count) mid-span, so the span list cannot stay borrowed
    // across the dialect call. `ReadSpan` is `Copy`.
    for si in 0..job.spans.len() {
        let span = job.spans[si];
        let n_kmers = span.len.saturating_sub(k - 1);
        if span.len < k {
            continue;
        }
        let rounds = n_kmers.div_ceil(width);
        for r in 0..rounds {
            let mut mask = Mask::NONE;
            for l in 0..width {
                if r * width + l < n_kmers {
                    mask.set(l);
                }
            }
            let key_off = LaneVec::from_fn(width, |l| span.offset + r * width + l);

            // Load the k-mer (one 4-byte chunk per mix-loop iteration;
            // neighbouring lanes read overlapping bytes → well coalesced).
            // The lane values feed the hash below, which the host reads
            // straight from the arena — a touch charges the same traffic.
            for j in 0..chunks {
                warp.touch_u32_with(mask, |l| job.reads + key_off[l] as u64 + 4 * j);
            }
            // Hash it (Table V's INTOP1). The raw 32-bit hash is handed
            // to the insert dialect; the job's table layout reduces it to
            // a start slot (mod table size for linear probing, a bucket
            // index otherwise) — the reduction's iops are charged here
            // either way. The simulated kernel pays the murmur iops too;
            // the host reads the value from the interned shadow when one
            // exists (Vectorized staging) and recomputes it otherwise.
            warp.iop(mask, murmur_intops(job.k));
            warp.iop(mask, 2);
            let hash = LaneVec::from_fn(width, |l| {
                if mask.contains(l) {
                    job.key_fp(key_off[l]).unwrap_or_else(|| {
                        let key =
                            warp.mem.read_bytes(job.reads + key_off[l] as u64, job.k as u64);
                        murmur_hash_aligned2(key, DEFAULT_SEED)
                    })
                } else {
                    0
                }
            });

            // Find-or-claim the entry (dialect-specific, Appendix A).
            let args = InsertArgs { mask, key_off, hash };
            let slots = dialect.insert(warp, job, &args)?;

            // count += 1 (atomic; identical k-mers serialize here).
            let ones = LaneVec::splat(1u32);
            let count_addrs =
                LaneVec::from_fn(width, |l| job.entry_field(slots[l], OFF_COUNT));
            warp.atomic_add_u32_discard(mask, &count_addrs, &ones);

            // Extension vote for k-mers that have a following base.
            let mut vote_mask = Mask::NONE;
            for l in mask.lanes() {
                let pos_in_read = key_off[l] - span.offset;
                if pos_in_read + k < span.len {
                    vote_mask.set(l);
                }
            }
            if vote_mask.is_empty() {
                continue;
            }
            let base_addrs =
                LaneVec::from_fn(width, |l| job.reads + key_off[l] as u64 + k as u64);
            let bases = warp.load_u8(vote_mask, &base_addrs);
            let qual_addrs =
                LaneVec::from_fn(width, |l| job.quals + key_off[l] as u64 + k as u64);
            let quals = warp.load_u8(vote_mask, &qual_addrs);
            warp.iop(vote_mask, 4); // classify quality + compute vote address

            let vote_addrs = LaneVec::from_fn(width, |l| {
                if vote_mask.contains(l) {
                    let b = locassm_core::base_index(bases[l]) as u64;
                    let field = if is_hi_qual(quals[l]) { OFF_HI_Q } else { OFF_LOW_Q };
                    job.entry_field(slots[l], field + 4 * b)
                } else {
                    0
                }
            });
            warp.atomic_add_u32_discard(vote_mask, &vote_addrs, &ones);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{EMPTY, OFF_KEY_LEN, OFF_KEY_OFF};
    use locassm_core::walk::WalkConfig;
    use locassm_core::{CpuHashTable, Read};
    use memhier::HierarchyConfig;

    /// (key, hi_q, low_q, count) rows of a dumped table.
    type Rows = Vec<(Vec<u8>, [u32; 4], [u32; 4], u32)>;

    /// Read the device table back as (key → (hi_q, low_q, count)).
    fn dump(warp: &Warp, job: &DeviceJob) -> Rows {
        let mut out = Vec::new();
        for s in 0..job.slots {
            if warp.mem.read_u32(job.entry_field(s, OFF_KEY_LEN)) != EMPTY {
                let off = warp.mem.read_u32(job.entry_field(s, OFF_KEY_OFF)) as u64;
                let key = warp.mem.read_bytes(job.reads + off, job.k as u64).to_vec();
                let mut hi = [0u32; 4];
                let mut lo = [0u32; 4];
                for b in 0..4u64 {
                    hi[b as usize] = warp.mem.read_u32(job.entry_field(s, OFF_HI_Q + 4 * b));
                    lo[b as usize] = warp.mem.read_u32(job.entry_field(s, OFF_LOW_Q + 4 * b));
                }
                let count = warp.mem.read_u32(job.entry_field(s, OFF_COUNT));
                out.push((key, hi, lo, count));
            }
        }
        out.sort();
        out
    }

    /// The CPU reference table for the same reads.
    fn cpu_dump(reads: &[Read], k: usize) -> Rows {
        let ht: CpuHashTable = locassm_core::assemble::build_table(reads, k);
        let mut out: Vec<_> = ht
            .iter()
            .map(|(key, v)| (key.to_vec(), v.hi_q, v.low_q, v.count))
            .collect();
        out.sort();
        out
    }

    fn reads_mixed() -> Vec<Read> {
        vec![
            Read::with_uniform_qual(b"ACGTACGTACGTTTGCA", b'I'),
            Read::new(b"GTACGTTTGC".to_vec(), b"II##IIII#I".to_vec()),
            Read::with_uniform_qual(b"TTGCACCC", b'#'),
        ]
    }

    #[test]
    fn matches_cpu_reference_for_every_dialect() {
        for (dialect, width) in
            [(Dialect::Cuda, 32u32), (Dialect::Hip, 64), (Dialect::Sycl, 16)]
        {
            let reads = reads_mixed();
            let mut warp = Warp::new(width, HierarchyConfig::tiny());
            let mut job =
                DeviceJob::stage(&mut warp, b"AACCGGTTAACC", &reads, 5, WalkConfig::default(), 1)
                    .unwrap();
            construct_hash_table(&mut warp, &mut job, dialect).unwrap();
            assert_eq!(dump(&warp, &job), cpu_dump(&reads, 5), "{dialect:?}");
        }
    }

    #[test]
    fn short_reads_skipped() {
        let reads = vec![Read::with_uniform_qual(b"ACG", b'I')];
        let mut warp = Warp::new(32, HierarchyConfig::tiny());
        let mut job = DeviceJob::stage(&mut warp, b"ACGTACGT", &reads, 5, WalkConfig::default(), 1)
            .unwrap();
        construct_hash_table(&mut warp, &mut job, Dialect::Cuda).unwrap();
        assert!(dump(&warp, &job).is_empty());
        assert_eq!(warp.counters.atomic_instructions, 0);
    }

    #[test]
    fn counts_accumulate_across_reads() {
        // "ACGTA" appears in both reads → count 2.
        let reads = vec![
            Read::with_uniform_qual(b"ACGTAC", b'I'),
            Read::with_uniform_qual(b"ACGTAG", b'I'),
        ];
        let mut warp = Warp::new(32, HierarchyConfig::tiny());
        let mut job = DeviceJob::stage(&mut warp, b"ACGTACGT", &reads, 5, WalkConfig::default(), 1)
            .unwrap();
        construct_hash_table(&mut warp, &mut job, Dialect::Cuda).unwrap();
        let entries = dump(&warp, &job);
        let acgta = entries.iter().find(|(k, ..)| k == b"ACGTA").unwrap();
        assert_eq!(acgta.3, 2);
        // Votes: one for C (hi), one for G (hi) → the fork case.
        assert_eq!(acgta.1, [0, 1, 1, 0]);
    }

    #[test]
    fn wider_warp_wastes_lanes_on_short_reads() {
        // A 20-k-mer read occupies 20/32 lanes on CUDA but 20/64 on HIP:
        // utilization halves, INTOPs grow.
        let reads = vec![Read::with_uniform_qual(&[b'A'; 24][..], b'I')];
        let util = |width: u32, dialect: Dialect| {
            let mut warp = Warp::new(width, HierarchyConfig::tiny());
            let mut job = DeviceJob::stage(&mut warp, b"AAAAAAAA", &reads, 5, WalkConfig::default(), 1)
                .unwrap();
            construct_hash_table(&mut warp, &mut job, dialect).unwrap();
            warp.counters.lane_utilization()
        };
        let u32w = util(32, Dialect::Cuda);
        let u64w = util(64, Dialect::Hip);
        assert!(u64w < u32w, "64-wide: {u64w}, 32-wide: {u32w}");
    }
}

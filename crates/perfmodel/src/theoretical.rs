//! The analytic model of the kernel (paper §V-D, Tables V and VI).
//!
//! One "loop cycle" of the algorithm pairs one hash-table insertion
//! (Algorithm 1) with one walk lookup (Algorithm 2):
//!
//! * integer ops: the hash function dominates both, so
//!   `INTOP1 = INTOP2 = murmur_intops(k)`;
//! * bytes: an insertion reads the k-mer and its quality score and writes
//!   the 13-byte entry footprint (4 B key pointer + 1 B extension + 4 B
//!   quality score + 4 B count): `B1 = 2k + 13`; a lookup reads the k-mer
//!   and the same 13 bytes: `B2 = k + 13`;
//! * theoretical intensity: `II = (INTOP1 + INTOP2) / (B1 + B2)`.

use locassm_core::murmur_intops;
use serde::{Deserialize, Serialize};

/// The Table VI row for one k.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TheoreticalModel {
    pub k: usize,
    /// Integer ops of one insertion (Table V's INTOP1).
    pub intop1: u64,
    /// Integer ops of one lookup (the same hash function).
    pub intop2: u64,
    /// HBM bytes of one insertion: 2k + 13.
    pub b1: u64,
    /// HBM bytes of one lookup: k + 13.
    pub b2: u64,
}

impl TheoreticalModel {
    pub fn for_k(k: usize) -> Self {
        let h = murmur_intops(k);
        TheoreticalModel { k, intop1: h, intop2: h, b1: 2 * k as u64 + 13, b2: k as u64 + 13 }
    }

    /// Integer operations per loop cycle (Table VI column 2).
    pub fn intops_per_cycle(&self) -> u64 {
        self.intop1 + self.intop2
    }

    /// Bytes per loop cycle (Table VI column 3).
    pub fn bytes_per_cycle(&self) -> u64 {
        self.b1 + self.b2
    }

    /// Theoretical INTOP intensity (Table VI column 4).
    pub fn ii(&self) -> f64 {
        self.intops_per_cycle() as f64 / self.bytes_per_cycle() as f64
    }
}

impl TheoreticalModel {
    /// The model under 2-bit packed k-mers (the §V-E locality proposal,
    /// `locassm_core::packed`): k-mer reads shrink from k bytes to ⌈k/4⌉
    /// and the entry's 4-byte key pointer becomes an inline packed key of
    /// the same footprint class, so
    /// `B1 = 2·⌈k/4⌉ + 13` and `B2 = ⌈k/4⌉ + 13`, with the integer work
    /// unchanged (the hash now mixes ⌈k/4⌉ bytes, but word-at-a-time — the
    /// per-base mix cost is what Table V counts, so INTOP1 conservatively
    /// stays).
    pub fn for_k_packed(k: usize) -> TheoreticalModel {
        let h = murmur_intops(k);
        let pk = k.div_ceil(4) as u64;
        TheoreticalModel { k, intop1: h, intop2: h, b1: 2 * pk + 13, b2: pk + 13 }
    }

    /// Intensity gain of packing at this k: `packed.ii() / baseline.ii()`.
    pub fn packing_gain(k: usize) -> f64 {
        Self::for_k_packed(k).ii() / Self::for_k(k).ii()
    }
}

/// Shorthand: the theoretical II for a k-mer size.
pub fn theoretical_ii(k: usize) -> f64 {
    TheoreticalModel::for_k(k).ii()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_exact() {
        // Paper Table VI: (k, INTOPs/cycle, bytes/cycle, II).
        for (k, intops, bytes, ii) in [
            (21usize, 430u64, 89u64, 4.831),
            (33, 610, 125, 4.880),
            (55, 914, 191, 4.785),
            (77, 1270, 257, 4.942),
        ] {
            let m = TheoreticalModel::for_k(k);
            assert_eq!(m.intops_per_cycle(), intops, "k={k}");
            assert_eq!(m.bytes_per_cycle(), bytes, "k={k}");
            assert!((m.ii() - ii).abs() < 0.001, "k={k}: {} vs {ii}", m.ii());
        }
    }

    #[test]
    fn byte_formulas() {
        let m = TheoreticalModel::for_k(21);
        assert_eq!(m.b1, 2 * 21 + 13);
        assert_eq!(m.b2, 21 + 13);
    }

    #[test]
    fn packed_model_reduces_bytes_only() {
        for k in [21usize, 33, 55, 77] {
            let base = TheoreticalModel::for_k(k);
            let packed = TheoreticalModel::for_k_packed(k);
            assert_eq!(base.intops_per_cycle(), packed.intops_per_cycle());
            assert!(packed.bytes_per_cycle() < base.bytes_per_cycle());
            assert!(TheoreticalModel::packing_gain(k) > 1.9, "k={k}");
        }
        // The gain grows with k (pointer/fixed overhead amortizes).
        assert!(
            TheoreticalModel::packing_gain(77) > TheoreticalModel::packing_gain(21)
        );
    }

    #[test]
    fn intensity_is_stable_in_k() {
        // The paper notes II barely moves with k (4.78–4.94): both
        // numerator and denominator grow linearly.
        for k in [21, 33, 55, 77] {
            let ii = theoretical_ii(k);
            assert!((4.7..5.0).contains(&ii), "k={k}: {ii}");
        }
    }
}

//! Read-to-contig alignment (Fig. 2, "Alignment" stage).
//!
//! MetaHipMer aligns every read back to the contigs; the reads that align
//! over a contig *end* become that end's local-assembly input (the paper's
//! §II-C: "a list of contigs and a corresponding set of reads that align to
//! the ends of the contigs"). This module implements the seed-and-verify
//! aligner that performs the assignment:
//!
//! * every contig's boundary region is indexed by its s-mers (seed length
//!   `seed_k`),
//! * a read's seeds vote for (contig, offset) placements; each candidate
//!   placement is verified base-by-base with a mismatch budget,
//! * placements that overhang an end assign the read to that end (a read
//!   can align to multiple contigs — it is assigned to each, as in the
//!   production pipeline where boundary reads recruit to every contig they
//!   overlap).

use crate::contig::ContigJob;
use crate::read::Read;
use std::collections::HashMap;

/// Aligner parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlignConfig {
    /// Seed length (exact-match anchor).
    pub seed_k: usize,
    /// Width of the indexed boundary region at each contig end.
    pub end_window: usize,
    /// Maximum mismatches tolerated in the verified overlap.
    pub max_mismatches: usize,
    /// Minimum bases of the read that must overlap the contig.
    pub min_overlap: usize,
}

impl Default for AlignConfig {
    fn default() -> Self {
        AlignConfig { seed_k: 15, end_window: 64, max_mismatches: 4, min_overlap: 20 }
    }
}

/// A verified placement of a read against a contig.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    pub contig: usize,
    /// Read start relative to the contig start (may be negative: the read
    /// hangs off the left end).
    pub offset: i64,
    pub mismatches: usize,
}

/// Seed index over contig boundary regions.
pub struct EndIndex<'a> {
    contigs: &'a [Vec<u8>],
    cfg: AlignConfig,
    /// seed → (contig, position) candidates.
    seeds: HashMap<&'a [u8], Vec<(usize, usize)>>,
}

impl<'a> EndIndex<'a> {
    /// Index the first and last `end_window` bases of every contig.
    pub fn build(contigs: &'a [Vec<u8>], cfg: AlignConfig) -> Self {
        assert!(cfg.seed_k >= 4, "seed too short to be specific");
        let mut seeds: HashMap<&[u8], Vec<(usize, usize)>> = HashMap::new();
        for (ci, c) in contigs.iter().enumerate() {
            let w = cfg.end_window.min(c.len());
            let mut add_region = |lo: usize, hi: usize| {
                for p in lo..hi.saturating_sub(cfg.seed_k - 1) {
                    seeds.entry(&c[p..p + cfg.seed_k]).or_default().push((ci, p));
                }
            };
            add_region(0, w);
            if c.len() > w {
                add_region(c.len() - w, c.len());
            }
        }
        EndIndex { contigs, cfg, seeds }
    }

    /// Verify a candidate placement; returns mismatch count if acceptable.
    fn verify(&self, read: &[u8], contig: &[u8], offset: i64) -> Option<usize> {
        // Overlap interval in contig coordinates.
        let start = offset.max(0) as usize;
        let end = ((offset + read.len() as i64).min(contig.len() as i64)) as usize;
        if end <= start || end - start < self.cfg.min_overlap {
            return None;
        }
        let mut mism = 0usize;
        for p in start..end {
            let r = read[(p as i64 - offset) as usize];
            if r != contig[p] {
                mism += 1;
                if mism > self.cfg.max_mismatches {
                    return None;
                }
            }
        }
        Some(mism)
    }

    /// All verified placements of one read (forward orientation only;
    /// callers align the reverse complement separately if desired).
    pub fn place(&self, read: &[u8]) -> Vec<Placement> {
        let k = self.cfg.seed_k;
        if read.len() < k {
            return Vec::new();
        }
        // Collect candidate (contig, offset) pairs from a stride of seeds.
        let mut candidates: Vec<(usize, i64)> = Vec::new();
        for rp in (0..=read.len() - k).step_by(k) {
            if let Some(hits) = self.seeds.get(&read[rp..rp + k]) {
                for &(ci, cp) in hits {
                    candidates.push((ci, cp as i64 - rp as i64));
                }
            }
        }
        candidates.sort_unstable();
        candidates.dedup();

        candidates
            .into_iter()
            .filter_map(|(ci, off)| {
                self.verify(read, &self.contigs[ci], off).map(|mism| Placement {
                    contig: ci,
                    offset: off,
                    mismatches: mism,
                })
            })
            .collect()
    }
}

/// Align a read pool to contig ends and build the local-assembly jobs.
///
/// A placement recruits the read to the **right** end when the read extends
/// past the contig's last base (or reaches its terminal k-mer region), and
/// to the **left** end symmetrically. Reads are stored forward; the
/// left-extension transform happens later (`ContigJob::left_as_right`).
pub fn assign_reads_to_ends(
    contigs: &[Vec<u8>],
    reads: &[Read],
    walk_k: usize,
    cfg: AlignConfig,
) -> Vec<ContigJob> {
    let index = EndIndex::build(contigs, cfg);
    let mut right: Vec<Vec<Read>> = vec![Vec::new(); contigs.len()];
    let mut left: Vec<Vec<Read>> = vec![Vec::new(); contigs.len()];

    for read in reads {
        for p in index.place(&read.seq) {
            let c_len = contigs[p.contig].len() as i64;
            let read_end = p.offset + read.len() as i64;
            // Right end: the read covers into the terminal walk_k window
            // or beyond the end.
            if read_end > c_len - walk_k as i64 {
                right[p.contig].push(read.clone());
            }
            // Left end: the read covers the initial walk_k window or
            // starts before the contig.
            if p.offset < walk_k as i64 {
                left[p.contig].push(read.clone());
            }
        }
    }

    contigs
        .iter()
        .enumerate()
        .map(|(i, c)| {
            ContigJob::new(
                i as u32,
                c.clone(),
                std::mem::take(&mut right[i]),
                std::mem::take(&mut left[i]),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AlignConfig {
        AlignConfig { seed_k: 8, end_window: 32, max_mismatches: 2, min_overlap: 10 }
    }

    /// A deterministic pseudo-random genome (LCG over ACGT).
    fn genome(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                crate::dna::BASES[(x >> 60) as usize % 4]
            })
            .collect()
    }

    #[test]
    fn exact_read_places_at_true_offset() {
        let g = genome(200, 7);
        let contigs = vec![g[40..160].to_vec()];
        let idx = EndIndex::build(&contigs, cfg());
        // A read inside the right end-window: contig offset 100.
        let read = &g[140..170];
        let placements = idx.place(read);
        assert!(placements.iter().any(|p| p.contig == 0 && p.offset == 100 && p.mismatches == 0),
            "{placements:?}");
    }

    #[test]
    fn overhanging_read_has_negative_or_large_offset() {
        let g = genome(200, 9);
        let contigs = vec![g[40..160].to_vec()];
        let idx = EndIndex::build(&contigs, cfg());
        // Hangs off the left end by 10 bases.
        let read = &g[30..60];
        let placements = idx.place(read);
        assert!(placements.iter().any(|p| p.offset == -10), "{placements:?}");
    }

    #[test]
    fn mismatch_budget_enforced() {
        let g = genome(120, 11);
        let contigs = vec![g.clone()];
        let idx = EndIndex::build(&contigs, cfg());
        let mut read = g[..40].to_vec();
        // Two mismatches outside the first seed: still placed.
        read[20] = if read[20] == b'A' { b'C' } else { b'A' };
        read[30] = if read[30] == b'A' { b'C' } else { b'A' };
        assert!(!idx.place(&read).is_empty());
        // A third pushes it over budget.
        read[35] = if read[35] == b'A' { b'C' } else { b'A' };
        assert!(idx.place(&read).is_empty());
    }

    #[test]
    fn middle_reads_are_not_recruited_to_ends() {
        let g = genome(400, 13);
        let contigs = vec![g[50..350].to_vec()];
        // A read squarely in the middle of the contig…
        let mid = Read::with_uniform_qual(&g[180..220], b'I');
        // …and one over each junction.
        let r = Read::with_uniform_qual(&g[330..370], b'I');
        let l = Read::with_uniform_qual(&g[30..70], b'I');
        let jobs = assign_reads_to_ends(&contigs, &[mid, r.clone(), l.clone()], 21, cfg());
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].right_reads, vec![r]);
        assert_eq!(jobs[0].left_reads, vec![l]);
    }

    #[test]
    fn end_to_end_alignment_feeds_extension() {
        // Full loop: contig from the middle of a genome, random reads over
        // the junctions, aligned jobs, CPU extension recovers genome bases.
        let g = genome(300, 17);
        let contigs = vec![g[60..240].to_vec()];
        let reads: Vec<Read> = (0..8)
            .map(|i| {
                let start = 210 + i * 4; // tile the right junction
                Read::with_uniform_qual(&g[start..start + 50], b'I')
            })
            .collect();
        let jobs = assign_reads_to_ends(&contigs, &reads, 21, cfg());
        assert!(!jobs[0].right_reads.is_empty());
        let cfg = crate::assemble::AssemblyConfig::new(21);
        let ext = crate::assemble::extend_contig(&jobs[0], &cfg);
        assert!(!ext.right.is_empty(), "aligned reads must drive an extension");
        // The extension must continue the true genome.
        let expect = &g[240..240 + ext.right.len()];
        assert_eq!(ext.right, expect);
    }

    #[test]
    fn short_reads_are_ignored() {
        let contigs = vec![b"ACGTACGTACGTACGTACGT".to_vec()];
        let idx = EndIndex::build(&contigs, cfg());
        assert!(idx.place(b"ACGT").is_empty());
    }
}

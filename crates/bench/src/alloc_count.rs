//! A counting [`GlobalAlloc`] wrapper around the system allocator.
//!
//! The pooled launch engine's claim is *fewer heap allocations per warp*;
//! wall clock alone cannot verify that (the allocator may be fast enough
//! to hide in noise on a small dataset). This wrapper counts every
//! `alloc`/`realloc` call and the bytes requested, with two relaxed
//! atomic increments per call — cheap enough to leave on for the whole
//! crate (see the `#[global_allocator]` in `lib.rs`).
//!
//! Counters are process-global and monotone; measure with
//! [`snapshot`] / [`AllocSnapshot::since`] deltas, and keep concurrent
//! allocating work out of the measured window: every test that measures
//! a delta — and every allocation-heavy test that could run in the same
//! process — must hold [`measurement_lock`] for its duration.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// System allocator wrapper counting allocation calls and bytes requested.
pub struct CountingAlloc;

// SAFETY: defers entirely to `System`; the counters are lock-free atomics
// and never allocate.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A regrow is a fresh request for `new_size` bytes: count the whole
        // new block, mirroring how `Vec` growth stresses the allocator.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Monotone allocation counters at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Allocation calls (`alloc` + `alloc_zeroed` + `realloc`) so far.
    pub allocs: u64,
    /// Bytes requested by those calls.
    pub bytes: u64,
}

impl AllocSnapshot {
    /// Counters accumulated since an earlier snapshot.
    pub fn since(&self, earlier: &AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            allocs: self.allocs - earlier.allocs,
            bytes: self.bytes - earlier.bytes,
        }
    }
}

/// The current process-global allocation counters.
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot { allocs: ALLOCS.load(Ordering::Relaxed), bytes: BYTES.load(Ordering::Relaxed) }
}

/// Serializes windows that read the process-global counters against any
/// other allocation-heavy work in the same process. Tests that compare
/// [`snapshot`] deltas (the pool-bench smoke tests) must hold this while
/// measuring, and long allocating tests (the resize-bench determinism
/// run) must hold it too — otherwise the harness interleaves them and
/// the bystander's allocations land inside the measured delta.
pub fn measurement_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_vec_allocations() {
        let before = snapshot();
        let v: Vec<u64> = Vec::with_capacity(1024);
        let after = snapshot();
        drop(v);
        let d = after.since(&before);
        assert!(d.allocs >= 1, "with_capacity must hit the allocator");
        assert!(d.bytes >= 8 * 1024, "at least the requested block: {}", d.bytes);
    }
}

//! The potential speed-up plot (paper Fig. 9, after Antepara et al.).
//!
//! Each kernel run becomes a point whose x is the algorithm efficiency
//! (% of theoretical INTOP intensity) and y the architectural efficiency
//! (% of the roofline). The reciprocal axes read as *potential speed-up*:
//! a point at 25% roofline could go 4× faster with a better
//! implementation/compiler; a point at 25% theoretical II could move 4×
//! less data with better locality. Iso-curves of constant combined
//! speed-up are hyperbolas `x·y = const`.

use serde::{Deserialize, Serialize};

/// One device/dataset point on the Fig. 9 plane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeedupPoint {
    /// Algorithm efficiency in [0, 1] (x-axis: % of theoretical AI/II).
    pub algorithm_eff: f64,
    /// Architectural efficiency in [0, 1] (y-axis: % of roofline).
    pub architectural_eff: f64,
}

impl SpeedupPoint {
    pub fn new(algorithm_eff: f64, architectural_eff: f64) -> Self {
        assert!((0.0..=1.0).contains(&algorithm_eff), "algorithm_eff out of range");
        assert!(
            (0.0..=1.0).contains(&architectural_eff),
            "architectural_eff out of range"
        );
        SpeedupPoint { algorithm_eff, architectural_eff }
    }

    /// Potential speed-up from improving data locality (top x-axis).
    pub fn speedup_from_ai(&self) -> f64 {
        1.0 / self.algorithm_eff.max(f64::MIN_POSITIVE)
    }

    /// Potential speed-up from improving kernel performance (right y-axis).
    pub fn speedup_from_performance(&self) -> f64 {
        1.0 / self.architectural_eff.max(f64::MIN_POSITIVE)
    }

    /// Combined potential speed-up (the iso-curve this point sits on).
    pub fn combined_speedup(&self) -> f64 {
        self.speedup_from_ai() * self.speedup_from_performance()
    }

    /// Is the point in the "lower-left corner" the paper contrasts with
    /// well-tuned stencils (both efficiencies under the threshold)?
    pub fn is_lower_left(&self, threshold: f64) -> bool {
        self.algorithm_eff < threshold && self.architectural_eff < threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reciprocal_axes() {
        let p = SpeedupPoint::new(0.25, 0.125);
        assert!((p.speedup_from_ai() - 4.0).abs() < 1e-12);
        assert!((p.speedup_from_performance() - 8.0).abs() < 1e-12);
        assert!((p.combined_speedup() - 32.0).abs() < 1e-12);
    }

    #[test]
    fn lower_left_classification() {
        // The paper's local assembly points cluster lower-left; a tuned
        // stencil would sit upper-right.
        let locassm = SpeedupPoint::new(0.18, 0.15);
        let stencil = SpeedupPoint::new(0.85, 0.8);
        assert!(locassm.is_lower_left(0.5));
        assert!(!stencil.is_lower_left(0.5));
    }

    #[test]
    fn perfect_point_has_no_speedup() {
        let p = SpeedupPoint::new(1.0, 1.0);
        assert_eq!(p.combined_speedup(), 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        SpeedupPoint::new(1.5, 0.5);
    }
}

//! # locassm-core — de Bruijn graph local assembly (CPU reference)
//!
//! The algorithmic heart of the paper: contigs are extended by building a
//! small de Bruijn graph per contig from the reads that align to its ends —
//! represented as an open-addressing hash table keyed by k-mers (Fig. 1c) —
//! and then walking the graph from the contig's terminal k-mer ("mer-walk",
//! Algorithms 1 and 2).
//!
//! This crate contains everything that is *algorithm*, independent of the
//! GPU simulation:
//!
//! * [`dna`] — bases, complements, validation,
//! * [`quality`] — Phred quality scores and the hi/low vote threshold,
//! * [`kmer`] — k-mer extraction and the extension-vote helper,
//! * [`murmur`] — the `MurmurHashAligned2` hash function the kernel uses,
//!   with the analytic integer-operation counts of the paper's Table V,
//! * [`ht`] — the `loc_ht` open-addressing table with linear probing,
//! * [`walk`] — the mer-walk with fork/loop/end semantics,
//! * [`assemble`] — per-contig extension (serial and rayon-parallel), the
//!   correctness oracle for the three GPU kernel dialects,
//! * [`binning`], [`estimate`] — the host-side pre-processing of Fig. 3,
//! * [`pipeline`] — the iterative k = 21, 33, 55, 77 workflow of Fig. 2,
//! * [`io`] — a plain-text dataset format mirroring the artifact's `.dat`
//!   files.

pub mod align;
pub mod assemble;
pub mod binning;
pub mod contig;
pub mod dna;
pub mod estimate;
pub mod fastx;
pub mod global_asm;
pub mod ht;
pub mod io;
pub mod kmer;
pub mod kmer_count;
pub mod murmur;
pub mod packed;
pub mod pipeline;
pub mod quality;
pub mod read;
pub mod retry;
pub mod stats;
pub mod tenant;
pub mod walk;

pub use assemble::{assemble_all, extend_contig, AssemblyConfig, ExtensionResult};
pub use binning::{bin_contigs, Batch, BinningPolicy};
pub use contig::ContigJob;
pub use dna::{base_index, complement, index_base, revcomp, valid_seq};
pub use estimate::estimate_slots;
pub use ht::{CpuHashTable, HtValue};
pub use kmer::{ext_vote, KmerIter};
pub use kmer_count::KmerSpectrum;
pub use murmur::{murmur_hash_aligned2, murmur_intops, MurmurOpBreakdown};
pub use packed::PackedKmer;
pub use read::Read;
pub use retry::RetryPolicy;
pub use stats::AssemblyStats;
pub use tenant::{RequestId, TenantId};
pub use walk::{mer_walk, Walk, WalkConfig, WalkState};

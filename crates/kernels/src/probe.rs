//! Shared probe machinery for the three `ht_get_atomic` dialects.

use crate::layout::{DeviceJob, EMPTY, OFF_KEY_LEN, OFF_KEY_OFF};
use simt::{LaneVec, Mask, Warp};

/// Probe-cursor advance strategy for the open-addressed table.
///
/// Every staged table is odd-sized (`estimate_slots(..) | 1`), so any
/// stride coprime with 2 visits all slots before wrapping; insert and
/// walk lookup share the job's strategy, which is what keeps lookups
/// finding the keys inserts placed. Extensions are invariant across
/// strategies — the table is a content-addressed set and only the probe
/// *order* changes — so this is a pure tuning dimension (see
/// [`crate::tune`](mod@crate::tune)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ProbeStrategy {
    /// `slot = (slot + 1) % slots` — the paper listings' linear probe.
    #[default]
    Linear,
    /// `slot = (slot + 2) % slots` — double-stride probe, spreading a
    /// cluster's chain across twice the address range. Degrades to the
    /// linear step on an even-sized table (stride 2 would only visit half
    /// the slots there), which only synthetic test tables have.
    Stride2,
}

impl ProbeStrategy {
    /// The cursor increment for a table of `slots` entries.
    #[inline]
    pub fn step(self, slots: u32) -> u32 {
        match self {
            ProbeStrategy::Linear => 1,
            ProbeStrategy::Stride2 => {
                if slots % 2 == 1 {
                    2
                } else {
                    1
                }
            }
        }
    }
}

/// Arguments to one warp-cooperative batch of hash-table claims: each
/// active lane wants the entry for the k-mer at `key_off` in the reads
/// buffer. `hash` is the *raw* 32-bit table hash — the job's
/// [`TableLayout`](crate::table::TableLayout) reduces it to a probe
/// sequence ([`slot_at`](crate::table::TableLayout::slot_at)), so the same
/// arguments drive any layout.
#[derive(Debug, Clone)]
pub struct InsertArgs {
    pub mask: Mask,
    pub key_off: LaneVec<u32>,
    pub hash: LaneVec<u32>,
}

/// The per-lane starting slot (probe index 0) of `args.hash` under the
/// job's layout. Free of modeled charge: the dialects charge the cursor
/// arithmetic exactly where the listings do (`construct` pays the initial
/// reduction, [`advance`] pays each step).
pub fn start_slots(warp: &Warp, job: &DeviceJob, args: &InsertArgs) -> SlotVec {
    let lay = job.layout.as_layout();
    LaneVec::from_fn(warp.width(), |l| lay.slot_at(job, args.hash[l], 0))
}

/// Result: the slot index each active lane ended up owning/finding.
pub type SlotVec = LaneVec<u32>;

/// Issue the warp-wide `atomicCAS(&ht[slot].key_len, EMPTY, k)` for the
/// lanes in `mask`; returns the per-lane `prev` values.
pub fn cas_claim(warp: &mut Warp, job: &DeviceJob, mask: Mask, slot: &LaneVec<u32>) -> LaneVec<u32> {
    let addrs = LaneVec::from_fn(warp.width(), |l| job.entry_field(slot[l], OFF_KEY_LEN));
    let cmp = LaneVec::splat(EMPTY);
    let new = LaneVec::splat(job.k as u32);
    warp.atomic_cas_u32(mask, &addrs, &cmp, &new)
}

/// For the winning lanes, publish the key: store `key_off` into the entry.
/// (The value struct was zero-initialized host-side; the CUDA listing's
/// `.val = {0}` init is modeled as one more store per winner.)
pub fn publish_key(warp: &mut Warp, job: &DeviceJob, winners: Mask, slot: &LaneVec<u32>, args: &InsertArgs) {
    if winners.is_empty() {
        return;
    }
    let addrs = LaneVec::from_fn(warp.width(), |l| job.entry_field(slot[l], OFF_KEY_OFF));
    warp.store_u32(winners, &addrs, &args.key_off);
}

/// Compare each active lane's k-mer against the stored key of its current
/// slot. Returns per-lane equality. Charges the modeled cost: one
/// `key_off` load plus `⌈k/4⌉` stored-key chunk loads and compares.
pub fn compare_stored_keys(
    warp: &mut Warp,
    job: &DeviceJob,
    mask: Mask,
    slot: &LaneVec<u32>,
    args: &InsertArgs,
) -> LaneVec<bool> {
    let mut eq = LaneVec::splat(false);
    if mask.is_empty() {
        return eq;
    }
    let off_addrs = LaneVec::from_fn(warp.width(), |l| job.entry_field(slot[l], OFF_KEY_OFF));
    let stored_off = warp.load_u32(mask, &off_addrs);

    let k = job.k;
    let chunks = k.div_ceil(4) as u64;
    for j in 0..chunks {
        // Clamped: the final chunk of a key ending within 3 bytes of the
        // reads buffer's end re-reads the last whole word, like the contig
        // tail load — never the neighboring buffer's sectors.
        warp.touch_u32_with(mask, |l| job.key_chunk_addr(stored_off[l], j));
        warp.iop(mask, 1); // chunk compare
    }
    warp.iop(mask, 2); // tail handling / result reduction

    // Semantic truth from memory contents. The modeled cost above is
    // already charged; what remains is host-side only, so the staged
    // fingerprint shadow (Vectorized runs) may reject mismatches without
    // the k-byte compare: equal offsets alias the same bytes, and unequal
    // fingerprints imply unequal keys. Equal fingerprints (or a missing
    // shadow — Scalar runs) fall back to the byte compare.
    for l in mask.lanes() {
        let s_off = stored_off[l];
        let k_off = args.key_off[l];
        eq[l] = s_off == k_off
            || match (job.key_fp(s_off), job.key_fp(k_off)) {
                (Some(a), Some(b)) if a != b => false,
                _ => {
                    warp.mem.read_bytes(job.reads + s_off as u64, k as u64)
                        == warp.mem.read_bytes(job.reads + k_off as u64, k as u64)
                }
            };
    }
    eq
}

/// Advance the probe cursor for the lanes still searching: move each to
/// position `idx` (0-based) of its hash's probe sequence under the job's
/// layout. For the linear layout this is exactly the historical
/// `(slot + step) % slots` cursor, computed positionally; bucketed and
/// iceberg sequences jump regions at their bucket boundaries.
pub fn advance(
    warp: &mut Warp,
    job: &DeviceJob,
    mask: Mask,
    hash: &LaneVec<u32>,
    idx: u32,
    slot: &mut LaneVec<u32>,
) {
    warp.iop(mask, 2); // increment + modulo
    let lay = job.layout.as_layout();
    slot.update_masked(mask, |l, _| lay.slot_at(job, hash[l], idx));
}

/// Warp-wide bucket-crossing vote: when advancing past probe index `idx`
/// leaves a bucket ([`bucket_crossing`](crate::table::TableLayout::bucket_crossing)),
/// the still-searching lanes ballot before the warp jumps to the next
/// region together — the warp-cooperative bucket scan of the bucketed and
/// iceberg layouts. Single-region layouts never cross, so the linear
/// dialects stay bit-identical (no ballot, no charge).
pub fn bucket_crossing_vote(warp: &mut Warp, job: &DeviceJob, mask: Mask, idx: u32) {
    if mask.is_empty() {
        return;
    }
    if job.layout.as_layout().bucket_crossing(job, idx) {
        let preds = LaneVec::splat(true);
        warp.ballot(mask, &preds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::DeviceJob;
    use locassm_core::walk::WalkConfig;
    use locassm_core::Read;
    use memhier::HierarchyConfig;

    fn setup() -> (Warp, DeviceJob) {
        let mut warp = Warp::new(32, HierarchyConfig::tiny());
        let reads = vec![Read::with_uniform_qual(b"ACGTACGTACGT", b'I')];
        let job = DeviceJob::stage(&mut warp, b"ACGTACGT", &reads, 4, WalkConfig::default(), 1)
            .unwrap();
        (warp, job)
    }

    #[test]
    fn cas_claims_exactly_once() {
        let (mut warp, job) = setup();
        let mask = Mask(0b11); // two lanes contend for slot 5
        let slot = LaneVec::splat(5u32);
        let prev = cas_claim(&mut warp, &job, mask, &slot);
        assert_eq!(prev[0], EMPTY, "lane 0 wins");
        assert_eq!(prev[1], 4, "lane 1 sees the claimed key_len");
        assert_eq!(warp.mem.read_u32(job.entry_field(5, OFF_KEY_LEN)), 4);
    }

    #[test]
    fn publish_and_compare() {
        let (mut warp, job) = setup();
        let mask = Mask::lane(0);
        let slot = LaneVec::splat(3u32);
        // Lane 0 inserts the k-mer at offset 0 ("ACGT").
        let mut args = InsertArgs { mask, key_off: LaneVec::splat(0u32), hash: LaneVec::splat(3) };
        cas_claim(&mut warp, &job, mask, &slot);
        publish_key(&mut warp, &job, mask, &slot, &args);

        // Same k-mer appears at offset 4 ("ACGT"): equal.
        args.key_off[0] = 4;
        let eq = compare_stored_keys(&mut warp, &job, mask, &slot, &args);
        assert!(eq[0]);

        // Different k-mer at offset 1 ("CGTA"): not equal.
        args.key_off[0] = 1;
        let eq = compare_stored_keys(&mut warp, &job, mask, &slot, &args);
        assert!(!eq[0]);
    }

    #[test]
    fn advance_wraps() {
        let (mut warp, job) = setup();
        let hash = LaneVec::splat(job.slots - 1);
        let mut slot = hash.clone();
        advance(&mut warp, &job, Mask::lane(0), &hash, 1, &mut slot);
        assert_eq!(slot[0], 0);
    }

    #[test]
    fn start_slots_reduce_raw_hashes() {
        let (warp, job) = setup();
        let args = InsertArgs {
            mask: Mask::lane(0),
            key_off: LaneVec::splat(0u32),
            hash: LaneVec::splat(job.slots + 3), // raw hash past the table size
        };
        let slot = start_slots(&warp, &job, &args);
        assert_eq!(slot[0], 3, "the layout reduces the raw hash");
    }

    #[test]
    fn stride2_steps_by_two_on_odd_tables_only() {
        assert_eq!(ProbeStrategy::Linear.step(33), 1);
        assert_eq!(ProbeStrategy::Stride2.step(33), 2);
        assert_eq!(ProbeStrategy::Stride2.step(4), 1, "even tables degrade to linear");
    }

    #[test]
    fn stride2_advance_cycles_the_whole_odd_table() {
        let (mut warp, mut job) = setup();
        job.probe = ProbeStrategy::Stride2;
        assert_eq!(job.slots % 2, 1, "staged tables are odd");
        let hash = LaneVec::splat(0u32);
        let mut slot = LaneVec::splat(0u32);
        let mut seen = vec![false; job.slots as usize];
        for idx in 0..job.slots {
            seen[slot[0] as usize] = true;
            advance(&mut warp, &job, Mask::lane(0), &hash, idx + 1, &mut slot);
        }
        assert!(seen.iter().all(|&s| s), "stride 2 is coprime with an odd table");
        assert_eq!(slot[0], 0, "a full cycle returns to the origin");
    }

    /// The fingerprint shadow is a pure rejection filter: compare results
    /// and modeled counters are identical with and without it.
    #[test]
    fn fingerprint_fast_path_matches_byte_compare() {
        let run = |strip_fps: bool| {
            let (mut warp, mut job) = setup();
            if strip_fps {
                job.fps.clear();
            } else {
                assert!(!job.fps.is_empty(), "Vectorized staging interns fingerprints");
            }
            let mask = Mask(0b11);
            let slot = LaneVec::from_fn(32, |l| 3 + l);
            let mut args =
                InsertArgs { mask, key_off: LaneVec::from_fn(32, |l| l), hash: LaneVec::splat(0) };
            cas_claim(&mut warp, &job, mask, &slot);
            publish_key(&mut warp, &job, mask, &slot, &args);
            // Lane 0 re-compares an equal key at a different offset
            // ("ACGT" at 0 vs 4); lane 1 compares a mismatch.
            args.key_off[0] = 4;
            args.key_off[1] = 2;
            let eq = compare_stored_keys(&mut warp, &job, mask, &slot, &args);
            ((eq[0], eq[1]), warp.finish())
        };
        let (eq_fp, counters_fp) = run(false);
        let (eq_plain, counters_plain) = run(true);
        assert_eq!(eq_fp, (true, false));
        assert_eq!(eq_fp, eq_plain, "fingerprints must not change compare results");
        assert_eq!(counters_fp, counters_plain, "fingerprints are host-side only");
    }
}

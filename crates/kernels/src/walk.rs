//! The device-side mer-walk (Algorithm 2, Fig. 4).
//!
//! One thread of the warp performs the walk — "relatively short graph
//! walks are faster if done serially" (§I) — while the rest are masked
//! out; the terminating state is then broadcast to the full warp with
//! shuffles. All the instruction cost is charged to the single-lane mask,
//! which is exactly the thread-predication effect the paper analyses:
//! every walk instruction still occupies the whole warp.

use crate::fault::KernelFault;
use crate::layout::{DeviceJob, EMPTY, OFF_HI_Q, OFF_KEY_LEN, OFF_KEY_OFF, OFF_LOW_Q};
use crate::table::TOMBSTONE;
use locassm_core::murmur::murmur_intops;
use locassm_core::walk::{decide_extension, window_fingerprint, Walk, WalkState};
use locassm_core::HtValue;
use simt::{LaneVec, Mask, Warp};

/// Walk lane (lane 0 performs the walk).
const WALK_LANE: u32 = 0;

/// Perform the mer-walk from the staged contig's terminal k-mer.
///
/// Semantics are identical to `locassm_core::mer_walk` on the CPU table —
/// the integration tests assert bit-equality of extensions — while every
/// memory access and integer operation is charged to the simulator.
///
/// A per-warp instruction watchdog bounds runaway walks: the budget is
/// `job.walk_budget` (derived from the staged layout, see
/// [`crate::layout::walk_budget`]); if the walk's instruction spend
/// crosses it the kernel emits a `Watchdog` trace event and returns
/// `WalkBudgetExceeded`. The check is host-side only — it issues no
/// modeled instructions — so fault-free runs are bit-identical to the
/// unchecked kernel. An injected watchdog fault shrinks the budget to 0
/// so the first loop iteration trips it deterministically.
pub fn mer_walk_kernel(warp: &mut Warp, job: &DeviceJob) -> Result<Walk, KernelFault> {
    let lane = WALK_LANE;
    let lm = Mask::lane(lane);
    let k = job.k;
    let chunks = k.div_ceil(4) as u64;
    let cfg = job.walk;
    let watchdog_start = warp.counters.warp_instructions;
    let budget = if warp.injected_faults().watchdog { 0 } else { job.walk_budget };

    // A contig shorter than the k-mer (or than one 4-byte chunk) has no
    // terminal window to slice: the unsigned tail arithmetic below would
    // wrap to the top of the address space. Malformed input is a
    // structured, non-retryable fault — never an address-space walk.
    if (job.contig_len as usize) < k || job.contig_len < 4 {
        return Err(KernelFault::MalformedJob { reason: "contig shorter than the walk window" });
    }

    // Slice the terminal k-mer out of the contig (Algorithm 2 line 4).
    let tail = job.contig + job.contig_len as u64 - k as u64;
    for j in 0..chunks {
        // Chunked loads; the final chunk is clamped to stay in bounds.
        let addr = (tail + 4 * j).min(job.contig + job.contig_len as u64 - 4);
        let _ = warp.load_u32_scalar(lane, addr);
    }
    let mut window = warp.mem.read_bytes(tail, k as u64).to_vec();

    let mut visited = 0u64;
    let mut extension: Vec<u8> = Vec::new();
    let mut steps = 0u32;
    // Probe order and wrap bound come from the job's table layout — the
    // same sequence insertion walked, which is what lets the lookup stop
    // at the first EMPTY slot it meets.
    let lay = job.layout.as_layout();
    let probe_bound = lay.probe_bound(job);

    let walk = 'walk: loop {
        let spent = warp.counters.warp_instructions - watchdog_start;
        if spent > budget {
            warp.trace_event(simt::EventKind::Watchdog { budget, spent });
            return Err(KernelFault::WalkBudgetExceeded { budget, spent });
        }
        if extension.len() >= cfg.max_walk_len {
            break WalkState::MaxLen;
        }

        // Hash the window once: it is both the table index and the
        // visited-set fingerprint (the paper's INTOP2: one hash per lookup).
        warp.iop(lm, murmur_intops(k));
        let fp = window_fingerprint(&window);

        // loop_exists(k-mer): scan the visited list in device memory.
        for i in 0..visited {
            let v = warp.load_u32_scalar(lane, job.visited + 4 * i);
            warp.iop(lm, 1);
            if v == fp {
                break 'walk WalkState::Loop;
            }
        }
        warp.store_u32_scalar(lane, job.visited + 4 * visited, fp);
        visited += 1;

        steps += 1;

        // ext = k-mer_ht.lookup(k-mer): probe the layout's sequence for
        // the window's hash. `fp` is the window's table hash, so in
        // Vectorized runs (which carry an interned hash shadow) the probe
        // loop can reject mismatched stored keys against it without the
        // k-byte compare. Modeled loads/iops are charged identically
        // either way. The walk is single-lane, so no bucket-crossing
        // votes are issued — collectives are the dialect loops' cost.
        let mut slot = lay.slot_at(job, fp, 0);
        warp.iop(lm, 2);
        let mut found = None;
        let mut probes = 0u32;
        for probe in 0..probe_bound {
            probes += 1;
            let len_v = warp.load_u32_scalar(lane, job.entry_field(slot, OFF_KEY_LEN));
            warp.iop(lm, 1);
            if len_v == EMPTY {
                break;
            }
            if len_v == TOMBSTONE {
                // A deleted slot: its key bytes are gone (the stale
                // key_off may alias a live key's offset) but the probe
                // chain continues *through* it — only EMPTY terminates a
                // lookup, the shared tombstone rule of [`crate::table`].
                slot = lay.slot_at(job, fp, probe + 1);
                warp.iop(lm, 2);
                continue;
            }
            let off = warp.load_u32_scalar(lane, job.entry_field(slot, OFF_KEY_OFF));
            for j in 0..chunks {
                // Clamped like the contig tail: a key ending within 3
                // bytes of the reads buffer's end re-reads the last whole
                // word instead of touching the next buffer's sectors.
                let _ = warp.load_u32_scalar(lane, job.key_chunk_addr(off, j));
                warp.iop(lm, 1);
            }
            let matches = match job.key_fp(off) {
                Some(f) if f != fp => false,
                _ => warp.mem.read_bytes(job.reads + off as u64, k as u64) == window.as_slice(),
            };
            if matches {
                found = Some(slot);
                break;
            }
            slot = lay.slot_at(job, fp, probe + 1);
            warp.iop(lm, 2);
        }
        warp.trace_event(simt::EventKind::WalkStep { probes });
        let Some(s) = found else {
            break WalkState::End;
        };

        // Load the vote counters and decide the extension.
        let mut val = HtValue::default();
        for b in 0..4u64 {
            val.hi_q[b as usize] =
                warp.load_u32_scalar(lane, job.entry_field(s, OFF_HI_Q + 4 * b));
            val.low_q[b as usize] =
                warp.load_u32_scalar(lane, job.entry_field(s, OFF_LOW_Q + 4 * b));
        }
        warp.iop(lm, 12); // vote scoring + winner/runner-up reduction

        match decide_extension(&val, cfg.min_votes) {
            Ok(base) => {
                let ch = locassm_core::index_base(base);
                warp.store_u8_scalar(lane, job.out + extension.len() as u64, ch);
                extension.push(ch);
                window.rotate_left(1);
                window[k - 1] = ch;
                warp.iop(lm, 4); // window shift + append bookkeeping
            }
            Err(state) => break state,
        }
    };

    // Broadcast the walk state and length to the warp (Fig. 4).
    let state_vec = LaneVec::splat(walk as u32);
    let _ = warp.shfl_u32(warp.full_mask(), &state_vec, lane);
    let len_vec = LaneVec::splat(extension.len() as u32);
    let _ = warp.shfl_u32(warp.full_mask(), &len_vec, lane);
    warp.syncwarp(warp.full_mask());

    Ok(Walk { extension, state: walk, steps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::construct_hash_table;
    use crate::kernel::Dialect;
    use locassm_core::walk::{mer_walk, WalkConfig};
    use locassm_core::{assemble, Read};
    use memhier::HierarchyConfig;

    fn run_gpu(contig: &[u8], reads: &[Read], k: usize, cfg: WalkConfig) -> Walk {
        let mut warp = Warp::new(32, HierarchyConfig::tiny());
        let mut job = DeviceJob::stage(&mut warp, contig, reads, k, cfg, 1).unwrap();
        construct_hash_table(&mut warp, &mut job, Dialect::Cuda).unwrap();
        mer_walk_kernel(&mut warp, &job).unwrap()
    }

    fn run_cpu(contig: &[u8], reads: &[Read], k: usize, cfg: WalkConfig) -> Walk {
        let ht = assemble::build_table(reads, k);
        mer_walk(&ht, contig, k, &cfg)
    }

    fn cfg() -> WalkConfig {
        WalkConfig { min_votes: 1, ..WalkConfig::default() }
    }

    #[test]
    fn gpu_walk_matches_cpu_unique_path() {
        let reads = vec![Read::with_uniform_qual(b"ACGTACGGTTACCA", b'I')];
        let contig = b"GGGGACGTACG";
        let gpu = run_gpu(contig, &reads, 4, cfg());
        let cpu = run_cpu(contig, &reads, 4, cfg());
        assert_eq!(gpu, cpu);
        assert!(!gpu.extension.is_empty());
    }

    #[test]
    fn gpu_walk_matches_cpu_on_fork() {
        let reads = vec![
            Read::with_uniform_qual(b"TACGTA", b'I'),
            Read::with_uniform_qual(b"TACGTC", b'I'),
        ];
        let gpu = run_gpu(b"TTACGT", &reads, 5, cfg());
        let cpu = run_cpu(b"TTACGT", &reads, 5, cfg());
        assert_eq!(gpu, cpu);
        assert_eq!(gpu.state, WalkState::Fork);
    }

    #[test]
    fn gpu_walk_matches_cpu_on_loop() {
        let reads = vec![Read::with_uniform_qual(b"AACCAACCAACC", b'I')];
        let gpu = run_gpu(b"GGAACC", &reads, 4, cfg());
        let cpu = run_cpu(b"GGAACC", &reads, 4, cfg());
        assert_eq!(gpu, cpu);
        assert_eq!(gpu.state, WalkState::Loop);
    }

    #[test]
    fn gpu_walk_max_len() {
        let reads = vec![Read::with_uniform_qual(b"AACCAACCAACC", b'I')];
        let short = WalkConfig { max_walk_len: 2, min_votes: 1, ..WalkConfig::default() };
        let gpu = run_gpu(b"GGAACC", &reads, 4, short);
        assert_eq!(gpu.state, WalkState::MaxLen);
        assert_eq!(gpu.extension.len(), 2);
    }

    #[test]
    fn tombstone_between_home_and_live_key_does_not_hide_it() {
        // Regression: a deleted key sitting between a live key and its
        // home slot must not terminate the lookup (hiding the live key)
        // nor match through its stale key_off. The perturbed walk must
        // reproduce the clean walk bit-for-bit.
        let reads = vec![Read::with_uniform_qual(b"ACGTACGGTTACCA", b'I')];
        let contig = b"GGGGACGTACG";
        let clean = run_gpu(contig, &reads, 4, cfg());
        assert!(!clean.extension.is_empty(), "the reference walk must extend");

        let mut warp = Warp::new(32, HierarchyConfig::tiny());
        let mut job = DeviceJob::stage(&mut warp, contig, &reads, 4, cfg(), 1).unwrap();
        construct_hash_table(&mut warp, &mut job, Dialect::Cuda).unwrap();

        // The walk's first window and its probe chain.
        let k = job.k;
        let tail = job.contig + job.contig_len as u64 - k as u64;
        let window = warp.mem.read_bytes(tail, k as u64).to_vec();
        let fp = window_fingerprint(&window);
        let lay = job.layout.as_layout();
        let home = lay.slot_at(&job, fp, 0);
        assert_eq!(
            warp.mem.read_u32(job.entry_field(home, OFF_KEY_LEN)),
            k as u32,
            "construction put the window's key at its home slot"
        );
        let next = (1..lay.probe_bound(&job))
            .map(|idx| lay.slot_at(&job, fp, idx))
            .find(|&s| warp.mem.read_u32(job.entry_field(s, OFF_KEY_LEN)) == EMPTY)
            .expect("the probe chain must reach a free slot to move the entry into");

        // Push the live entry down its probe chain (to the first free
        // slot), then tombstone the home slot — exactly what a delete
        // after a hash collision leaves behind. The tombstone keeps its
        // stale key_off (which aliases the live key's offset) but loses
        // its votes: a lookup that wrongly matches the tombstone decides
        // from zeroed counters and diverges from the clean walk.
        for w in 0..(crate::layout::ENTRY_STRIDE / 4) {
            let v = warp.mem.read_u32(job.entry_field(home, 4 * w));
            warp.mem.write_u32(job.entry_field(next, 4 * w), v);
        }
        warp.mem.write_u32(job.entry_field(home, OFF_KEY_LEN), TOMBSTONE);
        for b in 0..4u64 {
            warp.mem.write_u32(job.entry_field(home, OFF_HI_Q + 4 * b), 0);
            warp.mem.write_u32(job.entry_field(home, OFF_LOW_Q + 4 * b), 0);
        }

        let walk = mer_walk_kernel(&mut warp, &job).unwrap();
        assert_eq!(walk, clean, "the live key behind the tombstone stayed reachable");
    }

    #[test]
    fn walk_cost_is_single_lane() {
        let reads = vec![Read::with_uniform_qual(b"ACGTACGGTTACCA", b'I')];
        let mut warp = Warp::new(32, HierarchyConfig::tiny());
        let mut job = DeviceJob::stage(&mut warp, b"GGGGACGTACG", &reads, 4, cfg(), 1).unwrap();
        construct_hash_table(&mut warp, &mut job, Dialect::Cuda).unwrap();
        let before = warp.snapshot();
        let _ = mer_walk_kernel(&mut warp, &job).unwrap();
        let delta = warp.snapshot().since(&before);
        // All walk integer instructions ran with one active lane out of 32.
        assert!(delta.int_instructions > 0);
        assert!(
            delta.lane_utilization() < 0.05,
            "walk utilization should be ~1/32, got {}",
            delta.lane_utilization()
        );
    }

    #[test]
    fn watchdog_never_fires_on_terminating_walks() {
        // The budget formula over-approximates every terminating walk,
        // so none of the reference walks above can trip it.
        let cases: [(&[u8], &[u8], usize); 3] = [
            (b"GGGGACGTACG", b"ACGTACGGTTACCA", 4),
            (b"TTACGT", b"TACGTA", 5),
            (b"GGAACC", b"AACCAACCAACC", 4),
        ];
        for (contig, read, k) in cases {
            let reads = vec![Read::with_uniform_qual(read, b'I')];
            let mut warp = Warp::new(32, HierarchyConfig::tiny());
            let mut job = DeviceJob::stage(&mut warp, contig, &reads, k, cfg(), 1).unwrap();
            construct_hash_table(&mut warp, &mut job, Dialect::Cuda).unwrap();
            mer_walk_kernel(&mut warp, &job).unwrap();
        }
    }

    #[test]
    fn injected_watchdog_trips_deterministically() {
        let reads = vec![Read::with_uniform_qual(b"ACGTACGGTTACCA", b'I')];
        let mut warp = Warp::new(32, HierarchyConfig::tiny());
        let mut job = DeviceJob::stage(&mut warp, b"GGGGACGTACG", &reads, 4, cfg(), 1).unwrap();
        construct_hash_table(&mut warp, &mut job, Dialect::Cuda).unwrap();
        warp.inject_watchdog();
        match mer_walk_kernel(&mut warp, &job) {
            Err(KernelFault::WalkBudgetExceeded { budget, spent }) => {
                assert_eq!(budget, 0, "injection zeroes the budget");
                assert!(spent > 0, "the tail-chunk loads precede the check");
            }
            other => panic!("expected WalkBudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_check_is_free() {
        // The watchdog must not perturb the modeled instruction stream:
        // a walk under an (unfired) watchdog spends exactly the same
        // instruction count as the counters predict from a twin run.
        let reads = vec![Read::with_uniform_qual(b"ACGTACGGTTACCA", b'I')];
        let run = || {
            let mut warp = Warp::new(32, HierarchyConfig::tiny());
            let mut job =
                DeviceJob::stage(&mut warp, b"GGGGACGTACG", &reads, 4, cfg(), 1).unwrap();
            construct_hash_table(&mut warp, &mut job, Dialect::Cuda).unwrap();
            let walk = mer_walk_kernel(&mut warp, &job).unwrap();
            (walk, warp.finish())
        };
        let (w1, c1) = run();
        let (w2, c2) = run();
        assert_eq!(w1, w2);
        assert_eq!(c1, c2);
    }
}

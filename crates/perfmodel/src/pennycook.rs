//! The Pennycook performance portability metric (paper §V-D).
//!
//! For an application `a` solving problem `p` on a platform set `H`:
//!
//! ```text
//!            |H| / Σ_{i∈H} 1 / e_i(a,p)     if a is supported on all i ∈ H
//! P(a,p,H) =
//!            0                              otherwise
//! ```
//!
//! where `e_i` is a performance efficiency on platform `i` — the harmonic
//! mean of efficiencies, dominated by the worst platform.

/// The performance portability P of the given per-platform efficiencies.
///
/// Efficiencies must lie in (0, 1]; any unsupported platform (efficiency 0
/// or NaN) makes P = 0, per the metric's definition.
pub fn performance_portability(efficiencies: &[f64]) -> f64 {
    if efficiencies.is_empty() {
        return 0.0;
    }
    let mut denom = 0.0;
    for &e in efficiencies {
        if e.is_nan() || e <= 0.0 {
            return 0.0;
        }
        denom += 1.0 / e;
    }
    efficiencies.len() as f64 / denom
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_efficiencies_pass_through() {
        assert!((performance_portability(&[0.15, 0.15, 0.15]) - 0.15).abs() < 1e-12);
    }

    #[test]
    fn harmonic_mean_is_dominated_by_worst() {
        let p = performance_portability(&[0.9, 0.9, 0.01]);
        assert!(p < 0.03, "harmonic mean must collapse toward the worst: {p}");
        // And is below the arithmetic mean.
        assert!(p < (0.9 + 0.9 + 0.01) / 3.0);
    }

    #[test]
    fn unsupported_platform_zeroes_the_metric() {
        assert_eq!(performance_portability(&[0.5, 0.0, 0.8]), 0.0);
        assert_eq!(performance_portability(&[0.5, f64::NAN]), 0.0);
        assert_eq!(performance_portability(&[]), 0.0);
    }

    #[test]
    fn single_platform_is_its_own_efficiency() {
        assert!((performance_portability(&[0.42]) - 0.42).abs() < 1e-12);
    }

    #[test]
    fn table4_row_reproduces() {
        // Paper Table IV, k=21 row: 12.8%, 15.1%, 15.6% → P ≈ 14.4%.
        let p = performance_portability(&[0.128, 0.151, 0.156]);
        assert!((p - 0.144).abs() < 0.002, "{p}");
    }

    #[test]
    fn table7_row_reproduces() {
        // Paper Table VII, k=21 row: 17.1%, 55.4%, 13.4%. The strict
        // harmonic mean of these is 19.8%; the paper prints 18.0%
        // (a small internal inconsistency, recorded in EXPERIMENTS.md —
        // we keep the metric's exact definition).
        let p = performance_portability(&[0.171, 0.554, 0.134]);
        assert!((p - 0.1985).abs() < 0.001, "{p}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// P lies between the minimum and maximum efficiency.
        #[test]
        fn bounded_by_min_max(effs in proptest::collection::vec(0.001f64..1.0, 1..8)) {
            let p = performance_portability(&effs);
            let min = effs.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = effs.iter().cloned().fold(0.0, f64::max);
            prop_assert!(p >= min - 1e-12);
            prop_assert!(p <= max + 1e-12);
        }

        /// P never exceeds the arithmetic mean (harmonic ≤ arithmetic).
        #[test]
        fn below_arithmetic_mean(effs in proptest::collection::vec(0.001f64..1.0, 1..8)) {
            let p = performance_portability(&effs);
            let am = effs.iter().sum::<f64>() / effs.len() as f64;
            prop_assert!(p <= am + 1e-12);
        }

        /// Permutation invariant.
        #[test]
        fn permutation_invariant(mut effs in proptest::collection::vec(0.001f64..1.0, 2..8)) {
            let a = performance_portability(&effs);
            effs.reverse();
            let b = performance_portability(&effs);
            prop_assert!((a - b).abs() < 1e-12);
        }
    }
}

//! Analytic timing model: counters → estimated kernel seconds.
//!
//! Real profiles give wall-clock time; a functional simulator does not. We
//! estimate time from three ceilings, mirroring how the instruction roofline
//! interprets performance:
//!
//! * **compute**: warp instructions over the sustained issue rate,
//! * **bandwidth**: HBM bytes over sustained bandwidth,
//! * **latency**: HBM transactions over the latency-limited request rate
//!   (`resident_warps × mlp / latency`) — the binding term for
//!   pointer-chasing phases like the mer-walk.
//!
//! The terms are summed rather than maxed: for an irregular, divergent
//! kernel, overlap between issue and memory stalls is poor (this is exactly
//! why the paper's measured architectural efficiencies sit near 15% of the
//! roofline rather than near 100%). `sustained_*` fractions on
//! [`DeviceSpec`] are the calibration constants and are reported in
//! EXPERIMENTS.md.
//!
//! The analytic latency term can be *replaced* by a simulated one: the
//! scheduled-execution mode (`simt::sched`) replays per-warp instruction
//! timelines through per-SM issue ports and reports the latency the
//! resident warps could not hide. [`sched_config`] builds the replay
//! configuration from a [`DeviceSpec`] (tick = 1 picosecond), and
//! [`TimeEstimate::with_latency_override`] swaps the simulated exposure in
//! for the analytic `t_latency`. The full pipeline is documented in
//! `docs/TIMING.md`.

use crate::occupancy::resident_warps;
use crate::spec::DeviceSpec;
use serde::{Deserialize, Serialize};
use simt::{AggCounters, SchedConfig};

/// Scheduler-replay ticks per second: one tick is a picosecond, fine
/// enough that an A100 warp instruction (~60 ns of one SM's issue port)
/// and an L1 hit (~20 ns) are both exactly representable.
pub const TICKS_PER_SEC: f64 = 1e12;

/// Convert scheduler-replay ticks to seconds.
pub fn ticks_to_seconds(ticks: u64) -> f64 {
    ticks as f64 / TICKS_PER_SEC
}

/// Issue-port occupancy of one warp instruction on one SM, in ticks.
///
/// The device retires lane-slots at `peak_intops_per_sec ×
/// sustained_issue_frac` spread over `compute_units` SMs, and one warp
/// instruction is `warp_width` lane-slots — so the per-SM issue cost is
/// `width × CUs / (peak × sustained)` seconds. Using the *sustained* rate
/// keeps the replay's stall-free busy time equal to the analytic compute
/// term (pinned by a test below): the scheduler refines only the latency
/// term, never double-counting issue throughput.
pub fn issue_ticks(spec: &DeviceSpec) -> u64 {
    let per_sm_lane_rate =
        spec.peak_intops_per_sec * spec.sustained_issue_frac / spec.compute_units as f64;
    (spec.warp_width as f64 / per_sm_lane_rate * TICKS_PER_SEC).round() as u64
}

/// Build the scheduled-replay configuration for `spec` at the given
/// residency (warps per SM — see `occupancy::scheduled_residency`).
pub fn sched_config(spec: &DeviceSpec, residency: u32) -> SchedConfig {
    SchedConfig {
        sms: spec.compute_units,
        residency: residency.max(1),
        issue_ticks: issue_ticks(spec),
        l1_ticks: (spec.l1_latency_sec * TICKS_PER_SEC).round() as u64,
        l2_ticks: (spec.l2_latency_sec * TICKS_PER_SEC).round() as u64,
        hbm_ticks: (spec.hbm_latency_sec * TICKS_PER_SEC).round() as u64,
        record_tracks: false,
    }
}

/// Which ceiling dominated the estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bound {
    /// The issue-rate (compute) term dominated.
    Compute,
    /// The HBM-bandwidth term dominated.
    Bandwidth,
    /// The memory-latency term dominated.
    Latency,
}

/// Inputs to the model, decoupled from `simt` so the analysis layer can use
/// it on synthetic counts too.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelParams {
    /// Warp width the kernel ran with (lane-slots = instructions × width).
    pub width: u32,
    /// Total warp instructions executed.
    pub warp_instructions: u64,
    /// Total HBM bytes moved.
    pub hbm_bytes: u64,
    /// Total HBM transactions (32 B sectors).
    pub hbm_transactions: u64,
    /// Number of warps in the launch.
    pub warps: u64,
}

impl ModelParams {
    /// Extract model inputs from a launch's aggregated counters.
    pub fn from_counters(c: &AggCounters) -> Self {
        ModelParams {
            width: c.width,
            warp_instructions: c.warp_instructions,
            hbm_bytes: c.mem.hbm_bytes(),
            hbm_transactions: c.mem.hbm_transactions(),
            warps: c.warps,
        }
    }
}

/// Time estimate with per-term breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeEstimate {
    /// Total estimated kernel time (sum of the three terms).
    pub seconds: f64,
    /// Compute term: lane-slots over the sustained issue rate.
    pub compute_seconds: f64,
    /// Bandwidth term: HBM bytes over sustained bandwidth.
    pub bandwidth_seconds: f64,
    /// Latency term: analytic (transactions over the latency-limited
    /// request rate) or, after [`TimeEstimate::with_latency_override`],
    /// the scheduled replay's exposed-latency measurement.
    pub latency_seconds: f64,
    /// Which term dominated.
    pub bound: Bound,
}

impl TimeEstimate {
    /// Estimate kernel time for `params` on `spec`, using the device's
    /// default memory-level parallelism.
    pub fn estimate(spec: &DeviceSpec, params: &ModelParams) -> TimeEstimate {
        Self::estimate_with_mlp(spec, params, spec.mlp_per_warp)
    }

    /// Estimate with an explicit per-warp MLP — phases differ: the
    /// warp-parallel construction sustains the device MLP, while the
    /// single-lane pointer-chasing mer-walk has MLP ≈ 1 (each lookup
    /// depends on the previous extension).
    pub fn estimate_with_mlp(spec: &DeviceSpec, params: &ModelParams, mlp: f64) -> TimeEstimate {
        // Compute time from lane-slots: every warp instruction occupies
        // `width` lanes regardless of predication, and the device retires
        // lane-slots at its (sustained) peak INTOP rate.
        let lane_slots = params.warp_instructions as f64 * params.width.max(1) as f64;
        let compute = lane_slots / (spec.peak_intops_per_sec * spec.sustained_issue_frac);

        let bw = spec.hbm_bytes_per_sec * spec.sustained_bw_frac;
        let bandwidth = params.hbm_bytes as f64 / bw;

        let concurrency = resident_warps(spec, params.warps) as f64 * mlp;
        let latency =
            params.hbm_transactions as f64 * spec.hbm_latency_sec / concurrency.max(1.0);

        let bound = if compute >= bandwidth && compute >= latency {
            Bound::Compute
        } else if bandwidth >= latency {
            Bound::Bandwidth
        } else {
            Bound::Latency
        };
        TimeEstimate {
            seconds: compute + bandwidth + latency,
            compute_seconds: compute,
            bandwidth_seconds: bandwidth,
            latency_seconds: latency,
            bound,
        }
    }

    /// Achieved warp-level INTOPs per second given total INTOPs.
    pub fn achieved_intops_per_sec(&self, intops: u64) -> f64 {
        intops as f64 / self.seconds
    }

    /// Replace the analytic latency term with a simulated one (the
    /// scheduled replay's per-SM exposed latency, already converted to
    /// seconds). Compute and bandwidth terms are kept; the total and the
    /// dominating bound are recomputed.
    pub fn with_latency_override(self, latency_seconds: f64) -> TimeEstimate {
        let bound = if self.compute_seconds >= self.bandwidth_seconds
            && self.compute_seconds >= latency_seconds
        {
            Bound::Compute
        } else if self.bandwidth_seconds >= latency_seconds {
            Bound::Bandwidth
        } else {
            Bound::Latency
        };
        TimeEstimate {
            seconds: self.compute_seconds + self.bandwidth_seconds + latency_seconds,
            latency_seconds,
            bound,
            ..self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{A100, MAX1550, MI250X};

    fn params(instr: u64, bytes: u64, warps: u64) -> ModelParams {
        ModelParams {
            width: 32,
            warp_instructions: instr,
            hbm_bytes: bytes,
            hbm_transactions: bytes / 32,
            warps,
        }
    }

    #[test]
    fn instruction_heavy_is_compute_bound() {
        let t = TimeEstimate::estimate(&A100, &params(1_000_000_000, 1_000_000, 10_000));
        assert_eq!(t.bound, Bound::Compute);
        assert!(t.seconds >= t.compute_seconds);
    }

    #[test]
    fn byte_heavy_is_memory_side_bound() {
        let t = TimeEstimate::estimate(&A100, &params(1_000, 100_000_000_000, 10_000));
        assert!(matches!(t.bound, Bound::Bandwidth | Bound::Latency));
    }

    #[test]
    fn few_warps_become_latency_bound() {
        // Same traffic, 4 warps vs 10k warps: concurrency collapses.
        let many = TimeEstimate::estimate(&A100, &params(1_000, 1_000_000_000, 10_000));
        let few = TimeEstimate::estimate(&A100, &params(1_000, 1_000_000_000, 4));
        assert!(few.seconds > many.seconds);
        assert_eq!(few.bound, Bound::Latency);
    }

    #[test]
    fn time_is_monotone_in_inputs() {
        let base = params(1_000_000, 1_000_000, 1000);
        let t0 = TimeEstimate::estimate(&MI250X, &base).seconds;
        let more_instr = TimeEstimate::estimate(
            &MI250X,
            &ModelParams { warp_instructions: 2_000_000, ..base },
        )
        .seconds;
        let more_bytes =
            TimeEstimate::estimate(&MI250X, &ModelParams { hbm_bytes: 2_000_000, ..base }).seconds;
        assert!(more_instr > t0);
        assert!(more_bytes > t0);
    }

    #[test]
    fn achieved_performance_below_peak() {
        // Whatever the inputs, achieved INTOPs/s must be below device peak
        // (sustained fractions < 1 guarantee it for compute-bound runs).
        for spec in [&A100, &MI250X, &MAX1550] {
            let p = params(100_000_000, 50_000_000, 5_000);
            let t = TimeEstimate::estimate(spec, &p);
            let intops = p.warp_instructions * p.width as u64;
            assert!(t.achieved_intops_per_sec(intops) < spec.peak_intops_per_sec);
        }
    }

    #[test]
    fn zero_work_is_zero_time() {
        let t = TimeEstimate::estimate(&A100, &params(0, 0, 1));
        assert_eq!(t.seconds, 0.0);
    }

    #[test]
    fn issue_ticks_match_the_sustained_rate() {
        // A100: 32 lanes × 108 SMs / (358 G × 0.16) ≈ 60.3 ns per warp
        // instruction per SM — ticks are picoseconds.
        let t = issue_ticks(&A100);
        assert_eq!(t, 60_335);
        // The round trip must reproduce the analytic compute term: N warp
        // instructions spread evenly over the SMs take N×issue/CUs seconds.
        let n = 1_000_000u64;
        let p = params(n, 0, 1000);
        let analytic = TimeEstimate::estimate(&A100, &p).compute_seconds;
        let replayed = ticks_to_seconds(n * t) / A100.compute_units as f64;
        assert!((replayed - analytic).abs() / analytic < 1e-4, "{replayed} vs {analytic}");
    }

    #[test]
    fn sched_config_orders_latencies_shallow_to_deep() {
        for spec in [&A100, &MI250X, &MAX1550] {
            let c = sched_config(spec, spec.resident_warps_per_cu);
            assert_eq!(c.sms, spec.compute_units);
            assert!(c.issue_ticks > 0);
            assert!(0 < c.l1_ticks && c.l1_ticks < c.l2_ticks && c.l2_ticks < c.hbm_ticks);
            assert_eq!(c.hbm_ticks, (spec.hbm_latency_sec * 1e12).round() as u64);
            assert!(!c.record_tracks);
        }
        assert_eq!(sched_config(&A100, 0).residency, 1, "residency floors at 1");
    }

    #[test]
    fn latency_override_replaces_only_the_latency_term() {
        let t = TimeEstimate::estimate(&A100, &params(1_000, 1_000_000_000, 4));
        assert_eq!(t.bound, Bound::Latency);
        let o = t.with_latency_override(0.0);
        assert_eq!(o.compute_seconds, t.compute_seconds);
        assert_eq!(o.bandwidth_seconds, t.bandwidth_seconds);
        assert_eq!(o.latency_seconds, 0.0);
        assert_eq!(o.seconds, t.compute_seconds + t.bandwidth_seconds);
        assert_ne!(o.bound, Bound::Latency, "bound recomputed after override");
        let worse = t.with_latency_override(t.seconds * 10.0);
        assert_eq!(worse.bound, Bound::Latency);
        assert!(worse.seconds > t.seconds);
    }
}

//! Read sampling over contig junctions.
//!
//! Local assembly only sees the reads that align to a contig's ends. We
//! sample reads from the true genome around each junction: every read is
//! full-length, overlaps the extension region, and at least one read per
//! side anchors on the contig's terminal k-mer (the walk's seed). A
//! substitution error model with quality correlation exercises the
//! hi/low-vote machinery.

use locassm_core::dna::BASES;
use locassm_core::quality::qual_char;
use locassm_core::Read;
use rand::{Rng, RngExt};

/// Error/quality model for sampled reads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadProfile {
    /// Read length (every read is full length, as in Table II's fixed
    /// average read lengths).
    pub read_len: usize,
    /// Per-base substitution probability.
    pub error_rate: f64,
    /// Phred score of correct bases (jittered ±3).
    pub base_qual: u8,
    /// Phred score of most error bases.
    pub error_qual: u8,
    /// Fraction of error bases that nevertheless get high quality
    /// (undetected errors — these create the hard forks).
    pub loud_error_frac: f64,
}

impl ReadProfile {
    pub fn illumina_like(read_len: usize) -> Self {
        ReadProfile {
            read_len,
            error_rate: 0.002,
            base_qual: 38,
            error_qual: 8,
            loud_error_frac: 0.15,
        }
    }
}

/// Extract one read at `start` from `genome`, applying the error model.
pub fn read_at<R: Rng>(genome: &[u8], start: usize, profile: &ReadProfile, rng: &mut R) -> Read {
    assert!(
        start + profile.read_len <= genome.len(),
        "read [{start}, {}) exceeds genome of {}",
        start + profile.read_len,
        genome.len()
    );
    let mut seq = genome[start..start + profile.read_len].to_vec();
    let mut qual = Vec::with_capacity(profile.read_len);
    for b in seq.iter_mut() {
        if rng.random_bool(profile.error_rate) {
            // Substitute with one of the three other bases.
            let others: Vec<u8> = BASES.iter().copied().filter(|x| x != b).collect();
            *b = others[rng.random_range(0..3)];
            let q = if rng.random_bool(profile.loud_error_frac) {
                profile.base_qual
            } else {
                profile.error_qual
            };
            qual.push(qual_char(q));
        } else {
            let jitter = rng.random_range(0..=6) as i16 - 3;
            qual.push(qual_char((profile.base_qual as i16 + jitter).max(2) as u8));
        }
    }
    Read::new(seq, qual)
}

/// Sample `n` reads covering the *right* junction of a contig.
///
/// `junction` is the genome index one past the contig's last base;
/// `ext_target` is how far past the junction the coverage may reach
/// (bounded by the genome); `k` is the k-mer size the walk will use.
///
/// Placement models how aligned boundary reads look in a real assembly:
/// the first read is **anchored** (contains the contig's terminal k-mer,
/// seeding the walk) and subsequent reads **chain** — each starts at the
/// previous read's last k-mer (minus a little jitter), so coverage
/// continues without gaps until the extension budget or the read supply
/// runs out. Leftover reads land uniformly in the covered window.
pub fn sample_right_junction<R: Rng>(
    genome: &[u8],
    junction: usize,
    ext_target: usize,
    k: usize,
    n: usize,
    profile: &ReadProfile,
    rng: &mut R,
) -> Vec<Read> {
    let len = profile.read_len;
    assert!(junction + ext_target <= genome.len(), "extension region exceeds genome");
    assert!(len >= 2 * k, "reads must be at least 2k long to anchor a walk");

    let mut reads = Vec::with_capacity(n);
    if n == 0 {
        return reads;
    }

    // The last position any read may start at (end ≤ junction + ext_target).
    let clamp_hi = (junction + ext_target).saturating_sub(len);

    // Anchored read: contains the terminal k-mer [junction − k, junction),
    // placed to reach as far right as the budget allows.
    let anchor_lo = junction.saturating_sub(len - k);
    let anchor_hi = junction.saturating_sub(k).min(clamp_hi).max(anchor_lo);
    let jitter = |rng: &mut R, span: usize| if span > 0 { rng.random_range(0..=span) } else { 0 };
    let start = anchor_hi.saturating_sub(jitter(rng, (anchor_hi - anchor_lo).min(k / 8)));
    reads.push(read_at(genome, start, profile, rng));
    let mut prev_start = start;
    let mut chain_done = false;

    for _ in 1..n {
        let s = if chain_done {
            // Extra coverage: uniform over the already-covered window.
            let lo = anchor_lo;
            let hi = clamp_hi.max(lo);
            if hi > lo {
                rng.random_range(lo..=hi)
            } else {
                lo
            }
        } else {
            // Chain: start at the previous read's last k-mer (overlap ≥ k
            // keeps the vote chain unbroken), minus a little jitter.
            let next = prev_start + (len - k) - jitter(rng, k / 4);
            if next >= clamp_hi {
                chain_done = true;
                clamp_hi.max(anchor_lo)
            } else {
                next
            }
        };
        reads.push(read_at(genome, s, profile, rng));
        prev_start = s;
    }
    reads
}

/// Sample `n` reads covering the *left* junction (mirror of
/// [`sample_right_junction`] via reverse complement), returned in forward
/// orientation.
pub fn sample_left_junction<R: Rng>(
    genome: &[u8],
    junction: usize,
    ext_target: usize,
    k: usize,
    n: usize,
    profile: &ReadProfile,
    rng: &mut R,
) -> Vec<Read> {
    let rc = locassm_core::dna::revcomp(genome);
    let mirrored_junction = genome.len() - junction;
    let reads = sample_right_junction(&rc, mirrored_junction, ext_target, k, n, profile, rng);
    reads.into_iter().map(|r| r.revcomp()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::random_genome;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Vec<u8>, StdRng) {
        let mut rng = StdRng::seed_from_u64(99);
        let g = random_genome(600, &mut rng);
        (g, rng)
    }

    #[test]
    fn error_free_read_matches_genome() {
        let (g, mut rng) = setup();
        let p = ReadProfile { error_rate: 0.0, ..ReadProfile::illumina_like(100) };
        let r = read_at(&g, 50, &p, &mut rng);
        assert_eq!(r.seq, &g[50..150]);
        assert!(r.qual.iter().all(|&q| locassm_core::quality::is_hi_qual(q)));
    }

    #[test]
    fn error_model_mutates_and_lowers_quality() {
        let (g, mut rng) = setup();
        let p = ReadProfile {
            error_rate: 0.5,
            loud_error_frac: 0.0,
            ..ReadProfile::illumina_like(200)
        };
        let r = read_at(&g, 0, &p, &mut rng);
        let diffs = r.seq.iter().zip(&g[..200]).filter(|(a, b)| a != b).count();
        assert!(diffs > 50, "expected many substitutions, got {diffs}");
        // Every substituted base carries low quality (loud_error_frac = 0).
        for (i, (a, b)) in r.seq.iter().zip(&g[..200]).enumerate() {
            if a != b {
                assert!(!locassm_core::quality::is_hi_qual(r.qual[i]));
            }
        }
    }

    #[test]
    fn right_junction_reads_stay_in_bounds_and_anchor() {
        let (g, mut rng) = setup();
        let p = ReadProfile { error_rate: 0.0, ..ReadProfile::illumina_like(100) };
        let junction = 400;
        let ext = 60;
        let k = 21;
        let reads = sample_right_junction(&g, junction, ext, k, 5, &p, &mut rng);
        assert_eq!(reads.len(), 5);
        // Anchored read contains the terminal k-mer.
        let terminal = &g[junction - k..junction];
        assert!(
            reads[0].seq.windows(k).any(|w| w == terminal),
            "first read must anchor the walk"
        );
        // No read reaches past junction + ext (error-free reads are genome
        // slices, so containment in the window implies the bound).
        for r in &reads {
            let pos = g.windows(p.read_len).position(|w| w == &r.seq[..]).unwrap();
            assert!(pos + p.read_len <= junction + ext);
        }
    }

    #[test]
    fn left_junction_mirrors_right() {
        let (g, mut rng) = setup();
        let p = ReadProfile { error_rate: 0.0, ..ReadProfile::illumina_like(100) };
        let junction = 200;
        let reads = sample_left_junction(&g, junction, 60, 21, 4, &p, &mut rng);
        assert_eq!(reads.len(), 4);
        for r in &reads {
            // Forward-oriented reads must be genome slices ending after
            // junction − ext and overlapping the left region.
            let pos = g
                .windows(p.read_len)
                .position(|w| w == &r.seq[..])
                .expect("error-free left read must be a forward genome slice");
            assert!(pos >= junction - 60, "read starts before the allowed window: {pos}");
        }
        // Anchored read contains the contig's *first* k-mer.
        let first_kmer = &g[junction..junction + 21];
        assert!(reads[0].seq.windows(21).any(|w| w == first_kmer));
    }

    #[test]
    fn zero_reads_requested() {
        let (g, mut rng) = setup();
        let p = ReadProfile::illumina_like(100);
        assert!(sample_right_junction(&g, 300, 50, 21, 0, &p, &mut rng).is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeds genome")]
    fn oversized_extension_rejected() {
        let (g, mut rng) = setup();
        let p = ReadProfile::illumina_like(100);
        sample_right_junction(&g, 590, 50, 21, 1, &p, &mut rng);
    }
}

//! Sequencing reads.

use crate::dna::valid_seq;
use serde::{Deserialize, Serialize};

/// One sequencing read: bases plus per-base Phred+33 qualities.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Read {
    pub seq: Vec<u8>,
    pub qual: Vec<u8>,
}

impl Read {
    /// Construct a read, validating sequence/quality agreement.
    pub fn new(seq: Vec<u8>, qual: Vec<u8>) -> Self {
        assert_eq!(seq.len(), qual.len(), "sequence and quality lengths differ");
        assert!(valid_seq(&seq), "read contains non-ACGT characters");
        Read { seq, qual }
    }

    /// A read with uniform quality (test/bench convenience).
    pub fn with_uniform_qual(seq: &[u8], q: u8) -> Self {
        Read::new(seq.to_vec(), vec![q; seq.len()])
    }

    pub fn len(&self) -> usize {
        self.seq.len()
    }

    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// Number of k-mers this read contributes for a given k
    /// (`len − k + 1`, or 0 if the read is shorter than k).
    pub fn kmer_count(&self, k: usize) -> usize {
        assert!(k >= 1, "k must be positive");
        self.seq.len().saturating_sub(k - 1)
    }

    /// Reverse complement of this read (qualities reversed accordingly).
    pub fn revcomp(&self) -> Read {
        Read {
            seq: crate::dna::revcomp(&self.seq),
            qual: self.qual.iter().rev().copied().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kmer_count_edges() {
        let r = Read::with_uniform_qual(b"ACGTACGT", b'I');
        assert_eq!(r.kmer_count(4), 5);
        assert_eq!(r.kmer_count(8), 1);
        assert_eq!(r.kmer_count(9), 0);
    }

    #[test]
    fn revcomp_reverses_quals() {
        let r = Read::new(b"AACG".to_vec(), vec![b'!', b'#', b'%', b'I']);
        let rc = r.revcomp();
        assert_eq!(rc.seq, b"CGTT");
        assert_eq!(rc.qual, vec![b'I', b'%', b'#', b'!']);
        assert_eq!(rc.revcomp(), r);
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn mismatched_quals_rejected() {
        Read::new(b"ACGT".to_vec(), vec![b'I'; 3]);
    }

    #[test]
    #[should_panic(expected = "non-ACGT")]
    fn invalid_bases_rejected() {
        Read::new(b"ACGN".to_vec(), vec![b'I'; 4]);
    }
}

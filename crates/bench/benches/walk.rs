//! CPU mer-walk and whole-contig extension throughput (the serial
//! baseline the GPU port replaces — the paper reports a 7× end-to-end
//! speedup for the GPU offload in MetaHipMer).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use locassm_core::{assemble_all, extend_contig, AssemblyConfig};
use std::hint::black_box;
use workloads::paper_dataset;

fn bench_extend_one(c: &mut Criterion) {
    let mut g = c.benchmark_group("cpu_extend_contig");
    for k in [21usize, 77] {
        let ds = paper_dataset(k, 0.002, 99);
        // Pick a contig with a healthy number of reads.
        let job = ds
            .jobs
            .iter()
            .max_by_key(|j| j.read_count())
            .expect("dataset has contigs")
            .clone();
        let cfg = AssemblyConfig::new(k);
        g.throughput(Throughput::Elements(job.insertion_count(k) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(k), &job, |b, job| {
            b.iter(|| extend_contig(black_box(job), &cfg))
        });
    }
    g.finish();
}

fn bench_assemble_serial_vs_parallel(c: &mut Criterion) {
    let mut g = c.benchmark_group("cpu_assemble_all");
    g.sample_size(10);
    let ds = paper_dataset(21, 0.01, 5);
    let cfg = AssemblyConfig::new(21);
    g.bench_function("serial", |b| b.iter(|| assemble_all(black_box(&ds.jobs), &cfg, false)));
    g.bench_function("rayon", |b| b.iter(|| assemble_all(black_box(&ds.jobs), &cfg, true)));
    g.finish();
}

criterion_group!(benches, bench_extend_one, bench_assemble_serial_vs_parallel);
criterion_main!(benches);

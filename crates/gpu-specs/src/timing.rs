//! Analytic timing model: counters → estimated kernel seconds.
//!
//! Real profiles give wall-clock time; a functional simulator does not. We
//! estimate time from three ceilings, mirroring how the instruction roofline
//! interprets performance:
//!
//! * **compute**: warp instructions over the sustained issue rate,
//! * **bandwidth**: HBM bytes over sustained bandwidth,
//! * **latency**: HBM transactions over the latency-limited request rate
//!   (`resident_warps × mlp / latency`) — the binding term for
//!   pointer-chasing phases like the mer-walk.
//!
//! The terms are summed rather than maxed: for an irregular, divergent
//! kernel, overlap between issue and memory stalls is poor (this is exactly
//! why the paper's measured architectural efficiencies sit near 15% of the
//! roofline rather than near 100%). `sustained_*` fractions on
//! [`DeviceSpec`] are the calibration constants and are reported in
//! EXPERIMENTS.md.

use crate::occupancy::resident_warps;
use crate::spec::DeviceSpec;
use serde::{Deserialize, Serialize};
use simt::AggCounters;

/// Which ceiling dominated the estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bound {
    Compute,
    Bandwidth,
    Latency,
}

/// Inputs to the model, decoupled from `simt` so the analysis layer can use
/// it on synthetic counts too.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelParams {
    /// Warp width the kernel ran with (lane-slots = instructions × width).
    pub width: u32,
    /// Total warp instructions executed.
    pub warp_instructions: u64,
    /// Total HBM bytes moved.
    pub hbm_bytes: u64,
    /// Total HBM transactions (32 B sectors).
    pub hbm_transactions: u64,
    /// Number of warps in the launch.
    pub warps: u64,
}

impl ModelParams {
    pub fn from_counters(c: &AggCounters) -> Self {
        ModelParams {
            width: c.width,
            warp_instructions: c.warp_instructions,
            hbm_bytes: c.mem.hbm_bytes(),
            hbm_transactions: c.mem.hbm_transactions(),
            warps: c.warps,
        }
    }
}

/// Time estimate with per-term breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeEstimate {
    pub seconds: f64,
    pub compute_seconds: f64,
    pub bandwidth_seconds: f64,
    pub latency_seconds: f64,
    pub bound: Bound,
}

impl TimeEstimate {
    /// Estimate kernel time for `params` on `spec`, using the device's
    /// default memory-level parallelism.
    pub fn estimate(spec: &DeviceSpec, params: &ModelParams) -> TimeEstimate {
        Self::estimate_with_mlp(spec, params, spec.mlp_per_warp)
    }

    /// Estimate with an explicit per-warp MLP — phases differ: the
    /// warp-parallel construction sustains the device MLP, while the
    /// single-lane pointer-chasing mer-walk has MLP ≈ 1 (each lookup
    /// depends on the previous extension).
    pub fn estimate_with_mlp(spec: &DeviceSpec, params: &ModelParams, mlp: f64) -> TimeEstimate {
        // Compute time from lane-slots: every warp instruction occupies
        // `width` lanes regardless of predication, and the device retires
        // lane-slots at its (sustained) peak INTOP rate.
        let lane_slots = params.warp_instructions as f64 * params.width.max(1) as f64;
        let compute = lane_slots / (spec.peak_intops_per_sec * spec.sustained_issue_frac);

        let bw = spec.hbm_bytes_per_sec * spec.sustained_bw_frac;
        let bandwidth = params.hbm_bytes as f64 / bw;

        let concurrency = resident_warps(spec, params.warps) as f64 * mlp;
        let latency =
            params.hbm_transactions as f64 * spec.hbm_latency_sec / concurrency.max(1.0);

        let bound = if compute >= bandwidth && compute >= latency {
            Bound::Compute
        } else if bandwidth >= latency {
            Bound::Bandwidth
        } else {
            Bound::Latency
        };
        TimeEstimate {
            seconds: compute + bandwidth + latency,
            compute_seconds: compute,
            bandwidth_seconds: bandwidth,
            latency_seconds: latency,
            bound,
        }
    }

    /// Achieved warp-level INTOPs per second given total INTOPs.
    pub fn achieved_intops_per_sec(&self, intops: u64) -> f64 {
        intops as f64 / self.seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{A100, MAX1550, MI250X};

    fn params(instr: u64, bytes: u64, warps: u64) -> ModelParams {
        ModelParams {
            width: 32,
            warp_instructions: instr,
            hbm_bytes: bytes,
            hbm_transactions: bytes / 32,
            warps,
        }
    }

    #[test]
    fn instruction_heavy_is_compute_bound() {
        let t = TimeEstimate::estimate(&A100, &params(1_000_000_000, 1_000_000, 10_000));
        assert_eq!(t.bound, Bound::Compute);
        assert!(t.seconds >= t.compute_seconds);
    }

    #[test]
    fn byte_heavy_is_memory_side_bound() {
        let t = TimeEstimate::estimate(&A100, &params(1_000, 100_000_000_000, 10_000));
        assert!(matches!(t.bound, Bound::Bandwidth | Bound::Latency));
    }

    #[test]
    fn few_warps_become_latency_bound() {
        // Same traffic, 4 warps vs 10k warps: concurrency collapses.
        let many = TimeEstimate::estimate(&A100, &params(1_000, 1_000_000_000, 10_000));
        let few = TimeEstimate::estimate(&A100, &params(1_000, 1_000_000_000, 4));
        assert!(few.seconds > many.seconds);
        assert_eq!(few.bound, Bound::Latency);
    }

    #[test]
    fn time_is_monotone_in_inputs() {
        let base = params(1_000_000, 1_000_000, 1000);
        let t0 = TimeEstimate::estimate(&MI250X, &base).seconds;
        let more_instr = TimeEstimate::estimate(
            &MI250X,
            &ModelParams { warp_instructions: 2_000_000, ..base },
        )
        .seconds;
        let more_bytes =
            TimeEstimate::estimate(&MI250X, &ModelParams { hbm_bytes: 2_000_000, ..base }).seconds;
        assert!(more_instr > t0);
        assert!(more_bytes > t0);
    }

    #[test]
    fn achieved_performance_below_peak() {
        // Whatever the inputs, achieved INTOPs/s must be below device peak
        // (sustained fractions < 1 guarantee it for compute-bound runs).
        for spec in [&A100, &MI250X, &MAX1550] {
            let p = params(100_000_000, 50_000_000, 5_000);
            let t = TimeEstimate::estimate(spec, &p);
            let intops = p.warp_instructions * p.width as u64;
            assert!(t.achieved_intops_per_sec(intops) < spec.peak_intops_per_sec);
        }
    }

    #[test]
    fn zero_work_is_zero_time() {
        let t = TimeEstimate::estimate(&A100, &params(0, 0, 1));
        assert_eq!(t.seconds, 0.0);
    }
}

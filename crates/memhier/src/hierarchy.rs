//! The L1 → L2 → HBM stack.
//!
//! One `MemHierarchy` instance models the view a single warp has of the
//! memory subsystem: a private L1 slice and an *effective* L2 slice (the
//! shared L2 divided by the number of resident warps — see
//! `gpu-specs::occupancy`). Warps in the local assembly kernel never share
//! data, so this decomposition is exact for hit/miss behaviour up to the
//! capacity-sharing approximation, which is documented in DESIGN.md.

use crate::cache::Cache;
use crate::coalesce::CoalesceResult;
use crate::config::HierarchyConfig;
use crate::stats::MemStats;

/// Whether an access reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    Read,
    Write,
}

impl AccessKind {
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

/// The deepest level of the hierarchy a memory access had to reach —
/// the latency class of the access, consumed by the scheduled-execution
/// mode (`simt::sched`) to pick a completion latency for the issuing
/// warp. Ordered shallow → deep so `max` folds a multi-sector access to
/// its slowest sector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MemLevel {
    /// Served by the warp's private L1 slice.
    L1,
    /// Missed L1 (or bypassed it — writes and atomics) and hit in the L2
    /// slice.
    L2,
    /// Missed all the way to HBM.
    Hbm,
}

/// A per-warp memory hierarchy with traffic counters.
#[derive(Debug, Clone)]
pub struct MemHierarchy {
    l1: Cache,
    l2: Cache,
    stats: MemStats,
    /// L2 whole-line overfetch already charged to HBM (non-sectored mode).
    synced_extra_fills: u64,
    /// L2 write-backs already charged to HBM (baseline survives
    /// `take_stats`, which zeroes the stats but not the cache counters).
    synced_writebacks: u64,
}

impl MemHierarchy {
    pub fn new(cfg: HierarchyConfig) -> Self {
        MemHierarchy {
            l1: Cache::new(cfg.l1),
            l2: Cache::new(cfg.l2),
            stats: MemStats::default(),
            synced_extra_fills: 0,
            synced_writebacks: 0,
        }
    }

    /// Reset contents and counters for reuse by the next warp.
    pub fn reset(&mut self) {
        self.l1.reset();
        self.l2.reset();
        self.stats = MemStats::default();
        self.synced_extra_fills = 0;
        self.synced_writebacks = 0;
    }

    /// Reset for reuse under a (possibly different) configuration.
    ///
    /// When the geometry is unchanged this is a plain [`MemHierarchy::reset`]
    /// and the line buffers are kept (the pooled-launch fast path); a changed
    /// geometry rebuilds the affected cache level. Either way the resulting
    /// state is indistinguishable from `MemHierarchy::new(cfg)`.
    pub fn reconfigure(&mut self, cfg: crate::config::HierarchyConfig) {
        if *self.l1.config() == cfg.l1 {
            self.l1.reset();
        } else {
            self.l1 = Cache::new(cfg.l1);
        }
        if *self.l2.config() == cfg.l2 {
            self.l2.reset();
        } else {
            self.l2 = Cache::new(cfg.l2);
        }
        self.stats = MemStats::default();
        self.synced_extra_fills = 0;
        self.synced_writebacks = 0;
    }

    /// Route one warp-wide coalesced access through the hierarchy.
    ///
    /// Counts one memory instruction and walks every unique sector. Reads go
    /// L1 → L2 → HBM. Writes model the GPU's write-through, no-write-allocate
    /// L1: they are sent directly to the (write-back) L2, whose dirty
    /// evictions are charged as HBM write transactions.
    ///
    /// Returns the deepest [`MemLevel`] any sector reached — the access's
    /// latency class (the slowest sector gates the warp).
    pub fn access(&mut self, coalesced: &CoalesceResult, kind: AccessKind) -> MemLevel {
        self.stats.mem_instructions += 1;
        let mut level = MemLevel::L1;
        for &sector in &coalesced.sectors {
            let l = match kind {
                AccessKind::Read => self.read_sector(sector),
                AccessKind::Write => self.write_sector(sector),
            };
            level = level.max(l);
        }
        level
    }

    /// Batched variant of [`MemHierarchy::access`]: one pass over the
    /// coalesced sector set with the access kind hoisted out of the loop
    /// and a single write-back/overfetch sync at the end instead of one
    /// per sector.
    ///
    /// Produces **identical** stats to [`MemHierarchy::access`] for the
    /// same input: the sync only settles cumulative cache counters
    /// (write-backs, whole-line overfetch) into the stats, and those
    /// deltas are monotone — syncing once after the loop charges exactly
    /// the transactions the per-sector syncs would have charged.
    ///
    /// Returns the deepest [`MemLevel`] reached, like [`MemHierarchy::access`].
    pub fn access_batched(&mut self, coalesced: &CoalesceResult, kind: AccessKind) -> MemLevel {
        self.stats.mem_instructions += 1;
        let mut level = MemLevel::L1;
        match kind {
            AccessKind::Read => {
                for &sector in &coalesced.sectors {
                    level = level.max(self.read_sector_unsynced(sector));
                }
            }
            AccessKind::Write => {
                for &sector in &coalesced.sectors {
                    level = level.max(self.l2_request(sector, true));
                }
            }
        }
        self.sync_writebacks();
        level
    }

    /// Route one warp-wide atomic access: atomics bypass L1 on real GPUs
    /// and resolve in the L2/memory partition. One memory instruction,
    /// however many unique sectors the warp's lanes touch. Returns the
    /// deepest [`MemLevel`] reached (never [`MemLevel::L1`]).
    pub fn access_atomic(&mut self, coalesced: &CoalesceResult) -> MemLevel {
        self.stats.mem_instructions += 1;
        let mut level = MemLevel::L2;
        for &sector in &coalesced.sectors {
            level = level.max(self.l2_request(sector, true));
        }
        self.sync_writebacks();
        level
    }

    /// Route a single atomic sector (convenience over [`Self::access_atomic`]).
    /// Returns the level the sector resolved at (L2 or HBM).
    pub fn access_atomic_sector(&mut self, sector: u64) -> MemLevel {
        self.stats.mem_instructions += 1;
        let level = self.l2_request(sector, true);
        self.sync_writebacks();
        level
    }

    fn read_sector(&mut self, sector: u64) -> MemLevel {
        let level = self.read_sector_unsynced(sector);
        self.sync_writebacks();
        level
    }

    fn read_sector_unsynced(&mut self, sector: u64) -> MemLevel {
        self.stats.l1.requests += 1;
        let l1_out = self.l1.access_sector(sector, false);
        if l1_out.is_miss() {
            self.stats.l1.misses += 1;
            self.l2_request(sector, false)
        } else {
            self.stats.l1.hits += 1;
            MemLevel::L1
        }
    }

    fn write_sector(&mut self, sector: u64) -> MemLevel {
        // Write-through / no-write-allocate L1: the write goes straight to
        // L2 and marks the sector dirty there. A write miss at L2 allocates
        // the line with a sector fill from HBM (our writes are narrower than
        // a sector, so the fill is required for correctness on hardware).
        let level = self.l2_request(sector, true);
        self.sync_writebacks();
        level
    }

    fn l2_request(&mut self, sector: u64, write: bool) -> MemLevel {
        self.stats.l2.requests += 1;
        let out = self.l2.access_sector(sector, write);
        if out.is_miss() {
            self.stats.l2.misses += 1;
            self.stats.hbm_read_transactions += 1;
            MemLevel::Hbm
        } else {
            self.stats.l2.hits += 1;
            MemLevel::L2
        }
    }

    /// Pull eviction write-back counts from the L2 into the stats (HBM
    /// write transactions) and whole-line fill overfetch (extra HBM read
    /// transactions for a non-sectored L2, e.g. the MI250X model). The L1
    /// is write-through and never holds dirty data.
    fn sync_writebacks(&mut self) {
        let l2_wb = self.l2.writebacks;
        if l2_wb > self.synced_writebacks {
            let delta = l2_wb - self.synced_writebacks;
            self.synced_writebacks = l2_wb;
            self.stats.l2.writebacks += delta;
            self.stats.hbm_write_transactions += delta;
        }
        let fills = self.l2.extra_fills;
        if fills > self.synced_extra_fills {
            self.stats.hbm_read_transactions += fills - self.synced_extra_fills;
            self.synced_extra_fills = fills;
        }
    }

    /// Flush both levels (end of kernel): dirty data must reach HBM.
    pub fn flush(&mut self) {
        self.l1.flush();
        self.l2.flush();
        self.sync_writebacks();
    }

    /// Current counters.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Take the counters, leaving zeros (used when aggregating a finished warp).
    pub fn take_stats(&mut self) -> MemStats {
        std::mem::take(&mut self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coalesce::coalesce_sectors;
    use crate::config::{CacheConfig, HierarchyConfig, SECTOR_BYTES};

    fn hier() -> MemHierarchy {
        MemHierarchy::new(HierarchyConfig::tiny())
    }

    #[test]
    fn cold_read_reaches_hbm() {
        let mut h = hier();
        let acc = coalesce_sectors([(0u64, 4u32)]);
        assert_eq!(h.access(&acc, AccessKind::Read), MemLevel::Hbm);
        let s = h.stats();
        assert_eq!(s.l1.misses, 1);
        assert_eq!(s.l2.misses, 1);
        assert_eq!(s.hbm_read_transactions, 1);
        assert_eq!(s.hbm_bytes(), SECTOR_BYTES);
    }

    #[test]
    fn warm_read_stays_in_l1() {
        let mut h = hier();
        let acc = coalesce_sectors([(0u64, 4u32)]);
        assert_eq!(h.access(&acc, AccessKind::Read), MemLevel::Hbm);
        assert_eq!(h.access(&acc, AccessKind::Read), MemLevel::L1);
        let s = h.stats();
        assert_eq!(s.l1.hits, 1);
        assert_eq!(s.hbm_read_transactions, 1, "second access must not re-fetch");
        assert_eq!(s.mem_instructions, 2);
    }

    #[test]
    fn mem_level_orders_shallow_to_deep() {
        assert!(MemLevel::L1 < MemLevel::L2);
        assert!(MemLevel::L2 < MemLevel::Hbm);
        assert_eq!(MemLevel::L1.max(MemLevel::Hbm), MemLevel::Hbm);
    }

    /// The batched path reports the same latency class as the reference
    /// path — the slowest sector of the warp-wide access.
    #[test]
    fn access_levels_agree_across_paths() {
        let cfg = HierarchyConfig::tiny();
        let mut a = MemHierarchy::new(cfg);
        let mut b = MemHierarchy::new(cfg);
        for round in 0..3u64 {
            for line in 0..24u64 {
                let addr = line * 128 + round * 32;
                let acc = coalesce_sectors([(addr, 64u32), (addr + 2048, 4u32)]);
                let kind =
                    if (line + round) % 3 == 0 { AccessKind::Write } else { AccessKind::Read };
                assert_eq!(a.access(&acc, kind), b.access_batched(&acc, kind));
            }
        }
    }

    /// L2-resident data reads back at `MemLevel::L2` after the L1 evicts
    /// it; atomics never report L1 (they bypass it by construction).
    #[test]
    fn levels_reflect_the_serving_cache() {
        let mut h = hier();
        // Fill 16 lines (2 KiB): overflows the 1-KiB L1, fits the L2.
        for line in 0..16u64 {
            let acc = coalesce_sectors([(line * 128, 4u32)]);
            assert_eq!(h.access(&acc, AccessKind::Read), MemLevel::Hbm);
        }
        let first = coalesce_sectors([(0u64, 4u32)]);
        assert_eq!(h.access(&first, AccessKind::Read), MemLevel::L2, "L1-evicted, L2-resident");
        assert_eq!(h.access_atomic_sector(0), MemLevel::L2);
        assert_eq!(h.access_atomic_sector(1 << 20), MemLevel::Hbm);
    }

    #[test]
    fn reconfigure_matches_fresh_hierarchy() {
        let cfg = HierarchyConfig::tiny();
        let mut reused = MemHierarchy::new(cfg);
        // Dirty the caches and counters with a first "job".
        for line in 0..32u64 {
            let acc = coalesce_sectors([(line * 128, 4u32)]);
            reused.access(&acc, AccessKind::Write);
        }
        reused.flush();
        reused.reconfigure(cfg);

        let mut fresh = MemHierarchy::new(cfg);
        for h in [&mut reused, &mut fresh] {
            for line in 0..16u64 {
                let acc = coalesce_sectors([(line * 128, 4u32)]);
                h.access(&acc, AccessKind::Read);
            }
            h.flush();
        }
        assert_eq!(reused.stats(), fresh.stats(), "reconfigured state must be cold");
    }

    #[test]
    fn reconfigure_to_new_geometry_rebuilds() {
        let mut h = MemHierarchy::new(HierarchyConfig::tiny());
        let acc = coalesce_sectors([(0u64, 4u32)]);
        h.access(&acc, AccessKind::Read);
        let big = HierarchyConfig::new(
            CacheConfig::new(2 * 1024, 128, 4),
            CacheConfig::new(64 * 1024, 128, 8),
        );
        h.reconfigure(big);
        assert_eq!(h.stats(), &MemStats::default());
        h.access(&acc, AccessKind::Read);
        assert_eq!(h.stats().hbm_read_transactions, 1, "cache is cold after reconfigure");
    }

    #[test]
    fn l1_capacity_miss_hits_l2() {
        // L1 tiny(): 1 KiB, 128-B lines, 4-way ⇒ 8 lines, 2 sets.
        let mut h = hier();
        // Touch 16 distinct lines (2 KiB) twice: second pass must miss L1
        // for early lines but hit L2 (16 KiB).
        for round in 0..2 {
            for line in 0..16u64 {
                let acc = coalesce_sectors([(line * 128, 4u32)]);
                h.access(&acc, AccessKind::Read);
            }
            let _ = round;
        }
        let s = h.stats();
        assert_eq!(s.hbm_read_transactions, 16, "L2 holds the working set");
        assert!(s.l2.hits >= 16, "second pass served by L2, got {:?}", s.l2);
    }

    #[test]
    fn dirty_data_flushes_to_hbm() {
        let mut h = hier();
        let acc = coalesce_sectors([(0u64, 4u32)]);
        h.access(&acc, AccessKind::Write);
        assert_eq!(h.stats().hbm_write_transactions, 0);
        h.flush();
        assert_eq!(h.stats().hbm_write_transactions, 1);
        assert_eq!(h.stats().hbm_bytes(), 2 * SECTOR_BYTES); // 1 read fill + 1 write-back
    }

    #[test]
    fn atomic_goes_to_l2() {
        let mut h = hier();
        h.access_atomic_sector(0);
        let s = h.stats();
        assert_eq!(s.l1.requests, 0, "atomics bypass L1");
        assert_eq!(s.l2.requests, 1);
        assert_eq!(s.hbm_read_transactions, 1);
        h.access_atomic_sector(0);
        assert_eq!(h.stats().l2.hits, 1);
    }

    #[test]
    fn take_stats_resets_counters_only() {
        let mut h = hier();
        let acc = coalesce_sectors([(0u64, 4u32)]);
        h.access(&acc, AccessKind::Read);
        let taken = h.take_stats();
        assert_eq!(taken.l1.requests, 1);
        assert_eq!(h.stats().l1.requests, 0);
        // Cache contents survive take_stats: next access hits.
        h.access(&acc, AccessKind::Read);
        assert_eq!(h.stats().l1.hits, 1);
    }

    #[test]
    fn reset_clears_contents() {
        let mut h = hier();
        let acc = coalesce_sectors([(0u64, 4u32)]);
        h.access(&acc, AccessKind::Read);
        h.reset();
        h.access(&acc, AccessKind::Read);
        assert_eq!(h.stats().l1.misses, 1, "after reset the line is cold again");
    }

    #[test]
    fn batched_access_matches_per_sector_access() {
        // Same access stream through both entry points — including dirty
        // evictions and (non-sectored) whole-line overfetch, the two paths
        // sync_writebacks settles — must produce identical stats.
        let l2 = CacheConfig::new(1 << 12, 128, 8);
        for l2_cfg in [l2, l2.non_sectored()] {
            let cfg = HierarchyConfig { l1: CacheConfig::new(512, 128, 2), l2: l2_cfg };
            let mut a = MemHierarchy::new(cfg);
            let mut b = MemHierarchy::new(cfg);
            for round in 0..3u64 {
                for line in 0..64u64 {
                    let addr = line * 128 + round * 32;
                    let acc = coalesce_sectors([(addr, 64u32), (addr + 4096, 4u32)]);
                    let kind =
                        if (line + round) % 3 == 0 { AccessKind::Write } else { AccessKind::Read };
                    a.access(&acc, kind);
                    b.access_batched(&acc, kind);
                }
            }
            a.flush();
            b.flush();
            assert_eq!(a.stats(), b.stats());
        }
    }

    #[test]
    fn non_sectored_l2_amplifies_scattered_traffic() {
        // AMD-style whole-line fills: a scattered 4-byte read stream pulls
        // full 128-byte lines from HBM, ~4× the sectored traffic.
        let bytes = |sectored: bool| {
            let l2 = CacheConfig::new(1 << 12, 128, 8);
            let cfg = HierarchyConfig {
                l1: CacheConfig::new(512, 128, 2),
                l2: if sectored { l2 } else { l2.non_sectored() },
            };
            let mut h = MemHierarchy::new(cfg);
            // 512 distinct lines ≫ capacity: every access line-misses.
            for line in 0..512u64 {
                let acc = coalesce_sectors([(line * 128, 4u32)]);
                h.access(&acc, AccessKind::Read);
            }
            h.stats().hbm_bytes()
        };
        let sectored = bytes(true);
        let whole_line = bytes(false);
        assert_eq!(whole_line, 4 * sectored, "{whole_line} vs {sectored}");
    }

    #[test]
    fn non_sectored_fill_makes_sibling_sectors_hit() {
        let l2 = CacheConfig::new(1 << 12, 128, 8).non_sectored();
        let cfg = HierarchyConfig { l1: CacheConfig::new(512, 128, 2), l2 };
        let mut h = MemHierarchy::new(cfg);
        // Atomic to sector 0 fills the whole line at L2…
        h.access_atomic_sector(0);
        let before = h.stats().hbm_read_transactions;
        // …so the sibling sector is already resident.
        h.access_atomic_sector(1);
        assert_eq!(h.stats().hbm_read_transactions, before);
        assert_eq!(h.stats().l2.hits, 1);
    }

    #[test]
    fn smaller_l2_moves_more_hbm_bytes() {
        // The paper's central cache-size claim, in miniature: stream a
        // working set that fits the big L2 but not the small one.
        let big = HierarchyConfig {
            l1: CacheConfig::new(512, 128, 2),
            l2: CacheConfig::new(1 << 15, 128, 8), // 32 KiB
        };
        let small = HierarchyConfig {
            l1: CacheConfig::new(512, 128, 2),
            l2: CacheConfig::new(1 << 12, 128, 8), // 4 KiB
        };
        let bytes = |cfg: HierarchyConfig| {
            let mut h = MemHierarchy::new(cfg);
            for _ in 0..4 {
                for line in 0..128u64 {
                    // 16 KiB working set
                    let acc = coalesce_sectors([(line * 128, 4u32)]);
                    h.access(&acc, AccessKind::Read);
                }
            }
            h.stats().hbm_bytes()
        };
        assert!(bytes(small) > 2 * bytes(big));
    }
}

//! FASTA and FASTQ input/output.
//!
//! Real pipelines feed local assembly from standard sequence formats:
//! contigs arrive as FASTA (from the global de Bruijn assembly), reads as
//! FASTQ (from the sequencer, qualities included). These are minimal,
//! strict parsers — multi-line FASTA sequences are supported, FASTQ is the
//! standard 4-line record form.

use crate::dna::valid_seq;
use crate::read::Read;
use std::io::{BufRead, Error, ErrorKind, Result, Write};

/// One FASTA record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastaRecord {
    /// Header text after `>` (id + optional description).
    pub id: String,
    pub seq: Vec<u8>,
}

fn bad(msg: impl Into<String>) -> Error {
    Error::new(ErrorKind::InvalidData, msg.into())
}

/// Parse FASTA records. Sequences may span multiple lines; only A/C/G/T
/// are accepted (this is an assembler-internal format, not a general one).
pub fn read_fasta<R: BufRead>(reader: R) -> Result<Vec<FastaRecord>> {
    let mut records: Vec<FastaRecord> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('>') {
            records.push(FastaRecord { id: header.trim().to_string(), seq: Vec::new() });
        } else {
            let rec = records
                .last_mut()
                .ok_or_else(|| bad(format!("line {}: sequence before any header", lineno + 1)))?;
            if !valid_seq(line.as_bytes()) {
                return Err(bad(format!("line {}: non-ACGT sequence", lineno + 1)));
            }
            rec.seq.extend_from_slice(line.as_bytes());
        }
    }
    for r in &records {
        if r.seq.is_empty() {
            return Err(bad(format!("record `{}` has an empty sequence", r.id)));
        }
    }
    Ok(records)
}

/// Write FASTA with `width`-column wrapping (0 = single line).
pub fn write_fasta<W: Write>(out: &mut W, records: &[FastaRecord], width: usize) -> Result<()> {
    for r in records {
        writeln!(out, ">{}", r.id)?;
        if width == 0 {
            out.write_all(&r.seq)?;
            writeln!(out)?;
        } else {
            for chunk in r.seq.chunks(width) {
                out.write_all(chunk)?;
                writeln!(out)?;
            }
        }
    }
    Ok(())
}

/// One FASTQ record: id plus a [`Read`] (sequence + qualities).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastqRecord {
    pub id: String,
    pub read: Read,
}

/// Parse standard 4-line FASTQ records.
pub fn read_fastq<R: BufRead>(reader: R) -> Result<Vec<FastqRecord>> {
    let mut lines = reader.lines();
    let mut records = Vec::new();
    while let Some(header) = lines.next() {
        let header = header?;
        if header.trim().is_empty() {
            continue;
        }
        let id = header
            .strip_prefix('@')
            .ok_or_else(|| bad(format!("expected `@header`, got `{header}`")))?
            .trim()
            .to_string();
        let seq = lines.next().ok_or_else(|| bad("truncated record: missing sequence"))??;
        let plus = lines.next().ok_or_else(|| bad("truncated record: missing `+`"))??;
        if !plus.starts_with('+') {
            return Err(bad(format!("expected `+` separator, got `{plus}`")));
        }
        let qual = lines.next().ok_or_else(|| bad("truncated record: missing qualities"))??;
        if seq.len() != qual.len() {
            return Err(bad(format!("record `{id}`: sequence/quality length mismatch")));
        }
        if !valid_seq(seq.as_bytes()) {
            return Err(bad(format!("record `{id}`: non-ACGT sequence")));
        }
        records.push(FastqRecord {
            id,
            read: Read::new(seq.into_bytes(), qual.into_bytes()),
        });
    }
    Ok(records)
}

/// Write standard 4-line FASTQ.
pub fn write_fastq<W: Write>(out: &mut W, records: &[FastqRecord]) -> Result<()> {
    for r in records {
        writeln!(out, "@{}", r.id)?;
        out.write_all(&r.read.seq)?;
        writeln!(out)?;
        writeln!(out, "+")?;
        out.write_all(&r.read.qual)?;
        writeln!(out)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fasta_roundtrip_with_wrapping() {
        let records = vec![
            FastaRecord { id: "contig_1 len=10".into(), seq: b"ACGTACGTAC".to_vec() },
            FastaRecord { id: "contig_2".into(), seq: b"GGGG".to_vec() },
        ];
        let mut buf = Vec::new();
        write_fasta(&mut buf, &records, 4).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.contains(">contig_1 len=10\nACGT\nACGT\nAC\n"));
        assert_eq!(read_fasta(&buf[..]).unwrap(), records);
        // Unwrapped writes parse identically.
        let mut buf2 = Vec::new();
        write_fasta(&mut buf2, &records, 0).unwrap();
        assert_eq!(read_fasta(&buf2[..]).unwrap(), records);
    }

    #[test]
    fn fasta_rejects_garbage() {
        assert!(read_fasta(&b"ACGT\n"[..]).is_err(), "sequence before header");
        assert!(read_fasta(&b">x\nACGN\n"[..]).is_err(), "non-ACGT");
        assert!(read_fasta(&b">x\n>y\nACGT\n"[..]).is_err(), "empty record");
    }

    #[test]
    fn fasta_empty_input_is_empty() {
        assert!(read_fasta(&b""[..]).unwrap().is_empty());
    }

    #[test]
    fn fastq_roundtrip() {
        let records = vec![
            FastqRecord {
                id: "r1".into(),
                read: Read::new(b"ACGT".to_vec(), b"II#I".to_vec()),
            },
            FastqRecord {
                id: "r2/1".into(),
                read: Read::with_uniform_qual(b"GGTTAA", b'5'),
            },
        ];
        let mut buf = Vec::new();
        write_fastq(&mut buf, &records).unwrap();
        assert_eq!(read_fastq(&buf[..]).unwrap(), records);
    }

    #[test]
    fn fastq_rejects_malformed() {
        assert!(read_fastq(&b"@r\nACGT\nII II\n"[..]).is_err(), "truncated");
        assert!(read_fastq(&b"@r\nACGT\nX\nIIII\n"[..]).is_err(), "bad separator");
        assert!(read_fastq(&b"@r\nACGT\n+\nII\n"[..]).is_err(), "length mismatch");
        assert!(read_fastq(&b"r\nACGT\n+\nIIII\n"[..]).is_err(), "missing @");
        assert!(read_fastq(&b"@r\nACGN\n+\nIIII\n"[..]).is_err(), "non-ACGT");
    }

    #[test]
    fn fastq_qualities_survive() {
        let text = "@q\nAC\n+anything here\n#I\n";
        let r = read_fastq(text.as_bytes()).unwrap();
        assert_eq!(r[0].read.qual, b"#I");
        assert!(!crate::quality::is_hi_qual(r[0].read.qual[0]));
        assert!(crate::quality::is_hi_qual(r[0].read.qual[1]));
    }
}

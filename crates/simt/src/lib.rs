//! # simt — lockstep SIMT execution simulator
//!
//! Executes GPU-style kernels on the CPU in *warp-synchronous SOA form*:
//! kernel code operates on [`LaneVec`] per-lane value vectors under explicit
//! [`Mask`]s, mirroring how a warp/wavefront/sub-group executes in lockstep
//! with predication. The simulator provides
//!
//! * integer-instruction accounting at warp level (`smsp__inst_executed`
//!   style, so INTOPs = warp instructions × warp width, exactly as the paper
//!   measures on NVIDIA and AMD — Appendix B),
//! * warp collectives: `shfl`, `ballot`, `match_any` (CUDA
//!   `__match_any_sync`), `all` (HIP `__all`), `syncwarp`/sub-group barrier,
//! * global-memory atomics (`atomicCAS`, `atomicAdd`) with address-conflict
//!   serialization,
//! * per-access routing through the [`memhier`] cache/HBM simulator with
//!   warp-level coalescing,
//! * a rayon-parallel grid launcher for independent warps (the local
//!   assembly kernel assigns one contig per warp and warps share nothing).
//!
//! Warp widths are configurable (32 = CUDA warp, 64 = CDNA wavefront,
//! 16 = SYCL sub-group on Xe), up to [`MAX_LANES`].
//!
//! An optional warp-level tracing layer ([`trace`]) records phase spans and
//! instantaneous events (probe chains, collectives, HBM transactions) on a
//! deterministic warp-instruction clock — the simulator's analogue of the
//! vendor profiler timelines the paper's analysis is built on. Its
//! correctness counterpart is the opt-in warp sanitizer ([`san`]): lane-race
//! detection, barrier-divergence and shuffle-source checks, access-pattern
//! lints and hash-table invariants, all at zero modeled-instruction cost.
//!
//! A third opt-in layer is the event-driven scheduler ([`sched`]), enabled
//! through [`ExecMode::Scheduled`]: warps record per-instruction timelines
//! (memory touches annotated with the hierarchy level they resolved at)
//! that are replayed after the launch through per-SM event time-queues
//! with limited residency — modeling how resident warps hide memory
//! latency. Like tracing and sanitizing, scheduling never perturbs modeled
//! state: a Scheduled run is bit-identical to a Scalar/Vectorized one in
//! results, counters, traces and sanitizer reports.

#![warn(missing_docs)]

pub mod collectives;
pub mod counters;
pub mod fault;
pub mod grid;
pub mod lanevec;
pub mod mask;
pub mod mem;
pub mod san;
pub mod sched;
pub mod trace;
pub mod warp;

pub use counters::{AggCounters, WarpCounters};
pub use fault::{FaultPlan, InjectedFaults};
pub use grid::{launch_warps, pool_stats, LaunchConfig, LaunchOutput, PoolStats};
pub use lanevec::LaneVec;
pub use mask::Mask;
pub use mem::{AllocError, GlobalMem};
pub use san::{SanFinding, SanKind, SanReport, SanitizerConfig};
pub use sched::{
    schedule, PhaseSched, SchedConfig, SchedResult, SmSlice, TimeQueue, TimelineEvent,
    TimelineRecorder, WarpTimeline,
};
pub use trace::{Event, EventKind, Span, TraceSink, WarpTrace};
pub use warp::{ExecMode, Warp};

/// Maximum number of lanes in a warp the simulator supports.
pub const MAX_LANES: usize = 64;

//! # workloads — synthetic metagenome workload generation
//!
//! The paper profiles four datasets extracted from MetaHipMer production
//! intermediates (one per k ∈ {21, 33, 55, 77}); those files are not
//! available here, so this crate synthesizes statistically equivalent
//! inputs: per-contig genomes, boundary reads with an error/quality model,
//! and the exact published contig/read counts and read lengths of Table II
//! (which pin the total hash-insertion counts, since
//! insertions = Σ(read_len − k + 1)).
//!
//! * [`genome`] — seeded random genome generation,
//! * [`sampler`] — junction read sampling with substitution errors,
//! * [`datasets`] — the four paper presets (scalable for tests/benches),
//! * [`stats`] — Table II statistics computed from any dataset.

pub mod datasets;
pub mod genome;
pub mod sampler;
pub mod stats;

pub use datasets::{paper_dataset, paper_spec, DatasetSpec};
pub use sampler::ReadProfile;
pub use stats::{DatasetStats, ExtensionStats};

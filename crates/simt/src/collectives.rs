//! Warp collectives: shuffle, ballot, match, vote, synchronization.
//!
//! These are the intrinsics whose (un)availability across vendors drives the
//! porting story in §III of the paper:
//!
//! * CUDA has `__match_any_sync` + `__syncwarp(mask)` → [`Warp::match_any`],
//!   [`Warp::syncwarp`];
//! * HIP lacks both, so the port uses `__all(done)` in a retry loop →
//!   [`Warp::all`];
//! * SYCL uses a sub-group barrier → [`Warp::subgroup_barrier`];
//! * all three broadcast mer-walk state with shuffles → [`Warp::shfl_u32`].

use crate::lanevec::LaneVec;
use crate::mask::Mask;
use crate::trace::EventKind;
use crate::warp::Warp;

impl Warp {
    /// `__shfl_sync`: every active lane receives lane `src`'s value.
    ///
    /// Source semantics are hardware-faithful: the source lane is
    /// `src % width`, exactly as `__shfl_sync` computes `srcLane mod
    /// warpSize` (so `src = width` wraps to lane 0 instead of reading
    /// past the lane vector). Reading from a source lane that is not in
    /// `mask` is *undefined* on hardware; the simulator deterministically
    /// returns that lane's register value, and the sanitizer flags it
    /// ([`crate::SanKind::ShuffleInactiveSource`]) along with any
    /// out-of-range `src` ([`crate::SanKind::ShuffleSourceOutOfRange`]).
    pub fn shfl_u32(&mut self, mask: Mask, vals: &LaneVec<u32>, src: u32) -> LaneVec<u32> {
        self.count_collective(1, "shfl");
        self.san_collective("shfl", mask);
        self.san_shfl(mask, src);
        let v = vals[src % self.width()];
        let mut out = LaneVec::splat(0u32);
        out.set_masked(mask, v);
        out
    }

    /// 64-bit shuffle (two 32-bit shuffles on hardware → 2 instructions).
    ///
    /// Same source semantics as [`Warp::shfl_u32`]: the source lane is
    /// `src % width`, and the sanitizer flags inactive or out-of-range
    /// sources.
    pub fn shfl_u64(&mut self, mask: Mask, vals: &LaneVec<u64>, src: u32) -> LaneVec<u64> {
        self.count_collective(2, "shfl");
        self.san_collective("shfl", mask);
        self.san_shfl(mask, src);
        let v = vals[src % self.width()];
        let mut out = LaneVec::splat(0u64);
        out.set_masked(mask, v);
        out
    }

    /// `__ballot_sync`: mask of active lanes whose predicate is true.
    pub fn ballot(&mut self, mask: Mask, preds: &LaneVec<bool>) -> Mask {
        self.count_collective(1, "ballot");
        self.san_collective("ballot", mask);
        let mut out = Mask::NONE;
        for (l, p) in preds.iter_masked(mask) {
            if p {
                out.set(l);
            }
        }
        out
    }

    /// `__match_any_sync`: for each active lane, the mask of active lanes
    /// holding an equal key. Used by the CUDA dialect to detect thread
    /// collisions on identical k-mers (§III-A, Appendix A).
    pub fn match_any(&mut self, mask: Mask, keys: &LaneVec<u64>) -> LaneVec<Mask> {
        self.count_collective(1, "match_any");
        self.san_collective("match_any", mask);
        let mut out = LaneVec::splat(Mask::NONE);
        for (l, k) in keys.iter_masked(mask) {
            let mut m = Mask::NONE;
            for (l2, k2) in keys.iter_masked(mask) {
                if k2 == k {
                    m.set(l2);
                }
            }
            out[l] = m;
        }
        out
    }

    /// `__match_any_sync` whose groups the kernel discards (the CUDA
    /// dialect issues the collective for its cost; the CAS result already
    /// resolves collisions). Charges exactly what [`Warp::match_any`]
    /// charges — same counters, trace event and sanitizer checks. The
    /// scalar reference path still materializes the keys and computes the
    /// groups like the original interpreter; the vectorized path skips the
    /// key construction and the O(width²) grouping, which no observable
    /// state depends on.
    pub fn match_any_discard(&mut self, mask: Mask, keys: impl FnOnce() -> LaneVec<u64>) {
        if self.exec() == crate::ExecMode::Scalar {
            let keys = keys();
            let _ = self.match_any(mask, &keys);
            return;
        }
        self.count_collective(1, "match_any");
        self.san_collective("match_any", mask);
    }

    /// `__all`: true iff every active lane's predicate is true. (HIP dialect
    /// termination test for the done-flag insertion loop.)
    pub fn all(&mut self, mask: Mask, preds: &LaneVec<bool>) -> bool {
        self.count_collective(1, "all");
        self.san_collective("all", mask);
        preds.iter_masked(mask).all(|(_, p)| p)
    }

    /// `__any`: true iff at least one active lane's predicate is true.
    pub fn any(&mut self, mask: Mask, preds: &LaneVec<bool>) -> bool {
        self.count_collective(1, "any");
        self.san_collective("any", mask);
        preds.iter_masked(mask).any(|(_, p)| p)
    }

    /// `__syncwarp(mask)`: converge the given lanes. In a lockstep simulator
    /// this is a pure accounting event — but under the sanitizer it is also
    /// an ordering point and the divergence-check boundary (a barrier
    /// naming lanes that executed nothing since the previous barrier is
    /// flagged as [`crate::SanKind::DivergentBarrier`]).
    pub fn syncwarp(&mut self, mask: Mask) {
        self.counters.sync_instructions += 1;
        self.counters.warp_instructions += 1;
        self.trace_event(EventKind::Sync);
        self.san_barrier(Some(mask));
    }

    /// SYCL `sg.barrier()`: synchronize the whole sub-group. Unmasked, so
    /// the sanitizer treats it as an ordering point without a
    /// divergence check.
    pub fn subgroup_barrier(&mut self) {
        self.counters.sync_instructions += 1;
        self.counters.warp_instructions += 1;
        self.trace_event(EventKind::Sync);
        self.san_barrier(None);
    }

    fn count_collective(&mut self, n: u64, name: &'static str) {
        self.counters.collective_instructions += n;
        self.counters.warp_instructions += n;
        self.trace_event(EventKind::Collective { name });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memhier::HierarchyConfig;

    fn warp(width: u32) -> Warp {
        Warp::new(width, HierarchyConfig::tiny())
    }

    #[test]
    fn shfl_broadcasts() {
        let mut w = warp(32);
        let vals = LaneVec::from_fn(32, |l| l * 2);
        let out = w.shfl_u32(w.full_mask(), &vals, 7);
        assert_eq!(out[0], 14);
        assert_eq!(out[31], 14);
        assert_eq!(w.counters.collective_instructions, 1);
    }

    #[test]
    fn shfl_u64_costs_two() {
        let mut w = warp(16);
        let vals = LaneVec::splat(0xdead_beef_0000_0001u64);
        let out = w.shfl_u64(w.full_mask(), &vals, 0);
        assert_eq!(out[15], 0xdead_beef_0000_0001);
        assert_eq!(w.counters.collective_instructions, 2);
    }

    #[test]
    fn shfl_source_wraps_modulo_width() {
        // Hardware computes `srcLane mod warpSize`; before the fix the
        // simulator indexed the raw lane vector, reading stale defaults
        // (src in 16..64) or panicking (src >= 64).
        let mut w = warp(16);
        let vals = LaneVec::from_fn(16, |l| l + 1);
        let out = w.shfl_u32(w.full_mask(), &vals, 16);
        assert_eq!(out[3], 1, "src == width wraps to lane 0");
        let out = w.shfl_u32(w.full_mask(), &vals, 35);
        assert_eq!(out[0], 4, "src 35 wraps to lane 3 at width 16");
        let out = w.shfl_u32(w.full_mask(), &vals, 64);
        assert_eq!(out[7], 1, "src 64 no longer panics");
        let vals64 = LaneVec::from_fn(16, |l| l as u64 + 100);
        let out64 = w.shfl_u64(w.full_mask(), &vals64, 17);
        assert_eq!(out64[5], 101, "u64 shuffle wraps identically");
    }

    #[test]
    fn sanitizer_flags_shuffle_hazards() {
        use crate::san::SanitizerConfig;
        let mut w = warp(16);
        w.enable_sanitizer(SanitizerConfig::all());
        let vals = LaneVec::splat(7u32);
        let _ = w.shfl_u32(Mask(0b11), &vals, 40); // out of range
        let _ = w.shfl_u32(Mask(0b11), &vals, 5); // in range, inactive
        let _ = w.shfl_u32(Mask(0b11), &vals, 1); // clean
        let r = w.take_san_report().unwrap();
        assert_eq!(r.count("shfl_src_out_of_range"), 1);
        assert_eq!(r.count("shfl_inactive_src"), 1);
        assert_eq!(r.findings.len(), 2);
    }

    #[test]
    fn sanitizer_flags_divergent_syncwarp() {
        use crate::san::SanitizerConfig;
        let mut w = warp(32);
        w.enable_sanitizer(SanitizerConfig::all());
        w.iop(Mask(0b11), 1);
        // The barrier names lanes 2-3, which executed nothing.
        w.syncwarp(Mask(0b1111));
        // Converged rounds after the defect stay silent.
        w.iop(Mask(0b11), 1);
        w.syncwarp(Mask(0b11));
        let r = w.take_san_report().unwrap();
        assert_eq!(r.count("divergent_barrier"), 1);
    }

    #[test]
    fn sanitizer_flags_overwide_collective_mask() {
        use crate::san::SanitizerConfig;
        let mut w = warp(16);
        w.enable_sanitizer(SanitizerConfig::all());
        let preds = LaneVec::splat(true);
        let _ = w.all(Mask(1 << 20), &preds);
        let r = w.take_san_report().unwrap();
        assert_eq!(r.count("mask_exceeds_width"), 1);
    }

    #[test]
    fn ballot_collects_predicates() {
        let mut w = warp(32);
        let preds = LaneVec::from_fn(32, |l| l % 2 == 0);
        let m = w.ballot(w.full_mask(), &preds);
        assert_eq!(m.0, 0x5555_5555);
        // Inactive lanes never vote.
        let m2 = w.ballot(Mask(0b11), &preds);
        assert_eq!(m2.0, 0b01);
    }

    #[test]
    fn match_any_groups_equal_keys() {
        let mut w = warp(8);
        // Lanes 0,3 share key 42; lanes 1,2 share key 7; rest unique.
        let keys = LaneVec::from_fn(8, |l| match l {
            0 | 3 => 42,
            1 | 2 => 7,
            l => 1000 + l as u64,
        });
        let m = w.match_any(w.full_mask(), &keys);
        assert_eq!(m[0].0, 0b1001);
        assert_eq!(m[3].0, 0b1001);
        assert_eq!(m[1].0, 0b0110);
        assert_eq!(m[5].0, 0b100000);
    }

    #[test]
    fn match_any_respects_mask() {
        let mut w = warp(8);
        let keys = LaneVec::splat(1u64);
        let m = w.match_any(Mask(0b1010), &keys);
        assert_eq!(m[1].0, 0b1010);
        assert_eq!(m[0].0, 0, "inactive lane gets empty mask");
    }

    #[test]
    fn all_and_any() {
        let mut w = warp(4);
        let preds = LaneVec::from_fn(4, |l| l != 2);
        assert!(!w.all(w.full_mask(), &preds));
        assert!(w.any(w.full_mask(), &preds));
        // With lane 2 masked off, all() becomes true.
        assert!(w.all(Mask(0b1011), &preds));
        let none = LaneVec::splat(false);
        assert!(!w.any(w.full_mask(), &none));
    }

    #[test]
    fn sync_counts_instructions() {
        let mut w = warp(32);
        w.syncwarp(w.full_mask());
        w.subgroup_barrier();
        assert_eq!(w.counters.sync_instructions, 2);
        assert_eq!(w.counters.warp_instructions, 2);
    }
}

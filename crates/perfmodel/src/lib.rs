//! # perfmodel — the paper's analysis layer
//!
//! * [`roofline`] — the Instruction Roofline restricted to integer
//!   operations: INTOP intensity (INTOPs / HBM byte), ceilings, bound
//!   classification (Fig. 6),
//! * [`theoretical`] — the analytic model of Tables V and VI: per-hash
//!   integer operations, per-step bytes (B1 = 2k + 13, B2 = k + 13), and
//!   the theoretical INTOP intensity,
//! * [`efficiency`] — architectural efficiency (fraction of the roofline,
//!   Table IV) and algorithm efficiency (fraction of theoretical II,
//!   Table VII),
//! * [`pennycook`] — the harmonic-mean performance portability metric P,
//! * [`speedup`] — the potential speed-up plot (Fig. 9),
//! * [`table`], [`plot`] — ASCII rendering used by the repro harness.

pub mod efficiency;
pub mod export;
pub mod pennycook;
pub mod plot;
pub mod roofline;
pub mod speedup;
pub mod table;
pub mod theoretical;

pub use efficiency::{algorithm_efficiency, architectural_efficiency};
pub use export::{chrome_trace, phase_csv, sched_csv, sched_trace, Csv};
pub use pennycook::performance_portability;
pub use roofline::{roofline_ceiling, RooflinePoint};
pub use speedup::SpeedupPoint;
pub use theoretical::{theoretical_ii, TheoreticalModel};

//! The whole Fig. 2 pipeline, in miniature: shotgun reads from a synthetic
//! metagenome → k-mer analysis (error filtering) → global de Bruijn contig
//! generation → read-to-contig-end alignment → iterative local assembly on
//! the simulated GPU → assembly statistics.
//!
//! ```sh
//! cargo run --release --example metahipmer_mini
//! ```

use locassm::core::align::{assign_reads_to_ends, AlignConfig};
use locassm::core::global_asm::generate_contigs;
use locassm::core::io::Dataset;
use locassm::core::{AssemblyStats, KmerSpectrum, Read};
use locassm::kernels::{run_local_assembly, GpuConfig};
use locassm::specs::DeviceId;
use locassm::workloads::genome::random_metagenome;
use locassm::workloads::sampler::{read_at, ReadProfile};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);

    // A small "metagenomic sample": three species of different sizes.
    let species = random_metagenome(3, 1500..4000, &mut rng);
    let true_bases: usize = species.iter().map(Vec::len).sum();
    println!("sample: {} species, {} true bases", species.len(), true_bases);

    // Shotgun sequencing: ~20× coverage of 120-base reads, 0.2% error.
    let profile = ReadProfile::illumina_like(120);
    let mut reads: Vec<Read> = Vec::new();
    for g in &species {
        let n = g.len() * 20 / profile.read_len;
        for _ in 0..n {
            let start = rng.random_range(0..g.len() - profile.read_len);
            reads.push(read_at(g, start, &profile, &mut rng));
        }
    }
    println!("sequenced {} reads ({}x coverage)", reads.len(), 20);

    // K-mer analysis: count and drop singletons (likely errors).
    let k_global = 31;
    let mut spectrum = KmerSpectrum::build(&reads, k_global);
    let distinct_before = spectrum.distinct();
    let dropped = spectrum.filter(2);
    println!(
        "k-mer analysis (k={k_global}): {distinct_before} distinct, {dropped} singletons dropped"
    );

    // Global de Bruijn contig generation.
    let contigs = generate_contigs(&spectrum);
    let before = AssemblyStats::from_contigs(contigs.iter()).expect("contigs exist");
    println!(
        "global assembly: {} contigs, N50 {} (total {} bases)",
        before.contigs, before.n50, before.total_bases
    );

    // Alignment: recruit boundary reads to contig ends.
    let walk_k = 21;
    let keep: Vec<Vec<u8>> =
        contigs.into_iter().filter(|c| c.len() > walk_k + 10).collect();
    let jobs = assign_reads_to_ends(&keep, &reads, walk_k, AlignConfig::default());
    let recruited: usize = jobs.iter().map(|j| j.read_count()).sum();
    println!("alignment: {recruited} read placements over {} contig ends", 2 * jobs.len());

    // Iterative local assembly on the simulated A100 (k = 21, 33 rounds).
    let cfg = GpuConfig::for_device(DeviceId::A100);
    let mut current = jobs;
    for k in [21usize, 33] {
        let ds = Dataset::new(k, current);
        let run = run_local_assembly(&ds, &cfg);
        current = ds.jobs;
        let mut gained = 0usize;
        for (job, e) in current.iter_mut().zip(&run.extensions) {
            gained += e.total_len();
            job.contig = e.apply(&job.contig);
        }
        println!(
            "local assembly k={k}: +{gained} bases, {:.2} G simulated INTOPs, {:.2} ms",
            run.profile.intops() as f64 / 1e9,
            run.profile.seconds() * 1e3
        );
    }

    let after =
        AssemblyStats::from_lengths(current.iter().map(|j| j.contig.len())).expect("contigs");
    println!(
        "final assembly: {} contigs, N50 {} → {} (total {} bases of {} true)",
        after.contigs, before.n50, after.n50, after.total_bases, true_bases
    );
    assert!(after.n50 >= before.n50, "local assembly must not shrink contiguity");
}

//! Roofline + portability analysis of a workload: where the kernel sits on
//! each device's instruction roofline, its Pennycook portability, and its
//! potential speed-up decomposition (the paper's §V analysis toolchain).
//!
//! ```sh
//! cargo run --release --example roofline_analysis
//! ```

use locassm::kernels::{run_local_assembly, GpuConfig};
use locassm::perfmodel::table::{f, pct, Table};
use locassm::perfmodel::{
    algorithm_efficiency, performance_portability, theoretical_ii, RooflinePoint, SpeedupPoint,
    TheoreticalModel,
};
use locassm::specs::DeviceId;
use locassm::workloads::paper_dataset;

fn main() {
    let k = 55;
    let ds = paper_dataset(k, 0.05, 3);

    // The analytic model (no simulation needed).
    let model = TheoreticalModel::for_k(k);
    println!(
        "theoretical model for k={k}: {} INTOPs / {} bytes per loop cycle → II = {:.3}\n",
        model.intops_per_cycle(),
        model.bytes_per_cycle(),
        model.ii()
    );

    let mut table = Table::new(format!("Roofline & efficiency (k = {k})")).header([
        "device",
        "II",
        "GINTOP/s",
        "bound",
        "arch eff",
        "alg eff",
        "speed-up potential",
    ]);
    let mut arch_effs = Vec::new();
    let mut alg_effs = Vec::new();
    for dev in DeviceId::ALL {
        let cfg = GpuConfig::for_device(dev);
        let p = run_local_assembly(&ds, &cfg).profile;
        let spec = dev.spec();
        let rp = RooflinePoint::new(p.intops(), p.hbm_bytes(), p.seconds());
        let arch = rp.fraction_of_roofline(spec).min(1.0);
        let alg = algorithm_efficiency(rp.ii, k);
        let alg_plot = alg.min(1.0);
        arch_effs.push(arch);
        alg_effs.push(alg_plot);
        let sp = SpeedupPoint::new(alg_plot, arch);
        table.row([
            spec.short_name.to_string(),
            f(rp.ii, 2),
            f(rp.intops_per_sec / 1e9, 1),
            format!("{:?}", rp.bound(spec)),
            pct(arch),
            pct(alg),
            format!("{:.0}x", sp.combined_speedup()),
        ]);
    }
    println!("{}", table.render());

    println!(
        "Pennycook P (architectural efficiency): {}",
        pct(performance_portability(&arch_effs))
    );
    println!(
        "Pennycook P (algorithm efficiency):     {}",
        pct(performance_portability(&alg_effs))
    );
    println!(
        "\n(theoretical II for k = 21..77: {:.3}, {:.3}, {:.3}, {:.3} — Table VI)",
        theoretical_ii(21),
        theoretical_ii(33),
        theoretical_ii(55),
        theoretical_ii(77)
    );
}

//! Host-side hash-table size estimation (Fig. 3, "Estimate Hash Table
//! Sizes").
//!
//! The GPU pipeline cannot grow tables device-side, so the host reserves an
//! upper bound per contig before launch: the number of k-mer insertions the
//! contig's reads will perform (an upper bound on distinct keys), padded to
//! keep the load factor low enough that linear probing stays short.

/// Maximum load factor the reservation targets.
pub const TARGET_LOAD_FACTOR: f64 = 0.66;

/// Minimum slots reserved for any table (avoids degenerate tiny tables).
pub const MIN_SLOTS: usize = 32;

/// Slots to reserve for a table receiving `insertions` k-mer insertions.
pub fn estimate_slots(insertions: usize) -> usize {
    let padded = (insertions as f64 / TARGET_LOAD_FACTOR).ceil() as usize;
    // An odd slot count avoids pathological stride-2 clustering under
    // `hash % capacity` probing.
    let padded = padded.max(MIN_SLOTS);
    if padded.is_multiple_of(2) {
        padded + 1
    } else {
        padded
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserves_headroom() {
        for n in [1usize, 10, 100, 10_000] {
            let s = estimate_slots(n);
            assert!(s as f64 * TARGET_LOAD_FACTOR >= n as f64, "n={n} s={s}");
        }
    }

    #[test]
    fn respects_minimum_and_oddness() {
        assert!(estimate_slots(0) >= MIN_SLOTS);
        for n in [0usize, 5, 64, 1000, 99999] {
            assert_eq!(estimate_slots(n) % 2, 1, "n={n}");
        }
    }

    #[test]
    fn monotone() {
        let mut prev = 0;
        for n in (0..10_000).step_by(97) {
            let s = estimate_slots(n);
            assert!(s >= prev);
            prev = s;
        }
    }
}

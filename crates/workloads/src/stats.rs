//! Dataset and extension statistics (the paper's Table II).

use locassm_core::assemble::ExtensionResult;
use locassm_core::io::Dataset;

/// Static dataset characteristics (left half of Table II).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetStats {
    pub k: usize,
    pub total_contigs: usize,
    pub total_reads: usize,
    pub avg_read_length: f64,
    pub total_hash_insertions: usize,
}

impl DatasetStats {
    pub fn compute(ds: &Dataset) -> Self {
        let total_reads = ds.total_reads();
        let read_bases: usize = ds
            .jobs
            .iter()
            .flat_map(|j| j.right_reads.iter().chain(&j.left_reads))
            .map(|r| r.len())
            .sum();
        DatasetStats {
            k: ds.k,
            total_contigs: ds.jobs.len(),
            total_reads,
            avg_read_length: if total_reads == 0 {
                0.0
            } else {
                read_bases as f64 / total_reads as f64
            },
            total_hash_insertions: ds.total_insertions(),
        }
    }
}

/// Extension outcome statistics (right half of Table II), computed from a
/// run's results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtensionStats {
    /// Mean extension bases per contig (left + right).
    pub avg_extension_length: f64,
    /// Total extension bases.
    pub total_extensions: usize,
    /// Contigs that gained at least one base.
    pub contigs_extended: usize,
}

impl ExtensionStats {
    pub fn compute(results: &[ExtensionResult]) -> Self {
        let total: usize = results.iter().map(|r| r.total_len()).sum();
        let extended = results.iter().filter(|r| r.total_len() > 0).count();
        ExtensionStats {
            avg_extension_length: if results.is_empty() {
                0.0
            } else {
                total as f64 / results.len() as f64
            },
            total_extensions: total,
            contigs_extended: extended,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::paper_dataset;
    use locassm_core::walk::WalkState;
    use locassm_core::{assemble_all, AssemblyConfig};

    #[test]
    fn dataset_stats_match_spec() {
        let ds = paper_dataset(21, 0.005, 42);
        let s = DatasetStats::compute(&ds);
        assert_eq!(s.k, 21);
        assert_eq!(s.total_contigs, ds.jobs.len());
        assert!((s.avg_read_length - 155.0).abs() < 1e-9, "fixed-length reads");
        assert_eq!(s.total_hash_insertions, s.total_reads * (155 - 21 + 1));
    }

    #[test]
    fn extensions_land_near_target() {
        // Generate a small k=21 dataset and verify the CPU reference
        // produces extensions in the right regime (positive, bounded by
        // the per-side target).
        let ds = paper_dataset(21, 0.01, 1);
        let cfg = AssemblyConfig::new(21);
        let results = assemble_all(&ds.jobs, &cfg, true);
        let s = ExtensionStats::compute(&results);
        assert!(s.contigs_extended > ds.jobs.len() / 2, "most contigs should extend");
        assert!(s.avg_extension_length > 10.0, "got {}", s.avg_extension_length);
        // Per-side cap is 48; both sides ⇒ ≤ 96 plus walk-config slack.
        assert!(s.avg_extension_length < 110.0, "got {}", s.avg_extension_length);
        // No pathological states dominate.
        let loops = results
            .iter()
            .filter(|r| r.right_state == WalkState::Loop || r.left_state == WalkState::Loop)
            .count();
        assert!(loops < results.len() / 4);
    }

    #[test]
    fn empty_results() {
        let s = ExtensionStats::compute(&[]);
        assert_eq!(s.total_extensions, 0);
        assert_eq!(s.avg_extension_length, 0.0);
    }
}

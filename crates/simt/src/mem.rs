//! Simulated per-warp global memory.
//!
//! The local assembly kernel gives every warp a private slice of device
//! memory holding its contig, reads, quality scores, hash table and output
//! buffer (reserved up-front by the host-side size-estimation pass, Fig. 3
//! of the paper). `GlobalMem` models that slice as a bump-allocated arena
//! with typed little-endian accessors.
//!
//! Addresses are plain `u64` byte offsets. Offset 0 is reserved so that `0`
//! can serve as a null/empty sentinel, like a null device pointer.

use memhier::Addr;

/// Alignment used by [`GlobalMem::alloc`] by default.
pub const DEFAULT_ALIGN: u64 = 8;

/// A bump-allocated, bounds-checked arena of simulated device memory.
#[derive(Debug, Clone)]
pub struct GlobalMem {
    data: Vec<u8>,
    next: u64,
}

impl GlobalMem {
    /// An arena with a reserved null page (first 64 bytes unused).
    pub fn new() -> Self {
        GlobalMem { data: vec![0; 64], next: 64 }
    }

    /// Preallocate capacity for `bytes` of upcoming allocations.
    pub fn with_capacity(bytes: usize) -> Self {
        let mut m = GlobalMem::new();
        m.data.reserve(bytes);
        m
    }

    /// Allocate `len` bytes with `align` alignment; returns the base address.
    pub fn alloc_aligned(&mut self, len: u64, align: u64) -> Addr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let base = (self.next + align - 1) & !(align - 1);
        let end = base + len;
        if end as usize > self.data.len() {
            self.data.resize(end as usize, 0);
        }
        self.next = end;
        base
    }

    /// Allocate with [`DEFAULT_ALIGN`].
    pub fn alloc(&mut self, len: u64) -> Addr {
        self.alloc_aligned(len, DEFAULT_ALIGN)
    }

    /// Copy a byte slice into freshly allocated memory; returns its address.
    pub fn alloc_bytes(&mut self, bytes: &[u8]) -> Addr {
        let a = self.alloc(bytes.len() as u64);
        self.write_bytes(a, bytes);
        a
    }

    /// Total bytes allocated (high-water mark).
    pub fn allocated(&self) -> u64 {
        self.next
    }

    #[inline]
    fn check(&self, addr: Addr, len: u64) {
        assert!(
            addr >= 64 && addr + len <= self.data.len() as u64,
            "device memory access out of bounds: addr={addr} len={len} size={}",
            self.data.len()
        );
    }

    /// Read one byte at `addr`.
    pub fn read_u8(&self, addr: Addr) -> u8 {
        self.check(addr, 1);
        self.data[addr as usize]
    }

    /// Write one byte at `addr`.
    pub fn write_u8(&mut self, addr: Addr, v: u8) {
        self.check(addr, 1);
        self.data[addr as usize] = v;
    }

    /// Read a little-endian `u32` at `addr`.
    pub fn read_u32(&self, addr: Addr) -> u32 {
        self.check(addr, 4);
        let i = addr as usize;
        u32::from_le_bytes(self.data[i..i + 4].try_into().unwrap())
    }

    /// Write a little-endian `u32` at `addr`.
    pub fn write_u32(&mut self, addr: Addr, v: u32) {
        self.check(addr, 4);
        let i = addr as usize;
        self.data[i..i + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Read a little-endian `u64` at `addr`.
    pub fn read_u64(&self, addr: Addr) -> u64 {
        self.check(addr, 8);
        let i = addr as usize;
        u64::from_le_bytes(self.data[i..i + 8].try_into().unwrap())
    }

    /// Write a little-endian `u64` at `addr`.
    pub fn write_u64(&mut self, addr: Addr, v: u64) {
        self.check(addr, 8);
        let i = addr as usize;
        self.data[i..i + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Borrow `len` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: Addr, len: u64) -> &[u8] {
        self.check(addr, len);
        &self.data[addr as usize..(addr + len) as usize]
    }

    /// Copy `bytes` into memory starting at `addr`.
    pub fn write_bytes(&mut self, addr: Addr, bytes: &[u8]) {
        self.check(addr, bytes.len() as u64);
        let i = addr as usize;
        self.data[i..i + bytes.len()].copy_from_slice(bytes);
    }

    /// Zero a region (device-side memset, used for hash-table init).
    pub fn fill(&mut self, addr: Addr, len: u64, byte: u8) {
        self.check(addr, len);
        self.data[addr as usize..(addr + len) as usize].fill(byte);
    }
}

impl Default for GlobalMem {
    fn default() -> Self {
        GlobalMem::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let mut m = GlobalMem::new();
        let a = m.alloc_aligned(10, 8);
        let b = m.alloc_aligned(10, 8);
        assert_eq!(a % 8, 0);
        assert_eq!(b % 8, 0);
        assert!(b >= a + 10);
        assert!(a >= 64, "null page reserved");
    }

    #[test]
    fn rw_roundtrip() {
        let mut m = GlobalMem::new();
        let a = m.alloc(32);
        m.write_u32(a, 0xdead_beef);
        m.write_u64(a + 8, 0x0123_4567_89ab_cdef);
        m.write_u8(a + 16, 0x5a);
        assert_eq!(m.read_u32(a), 0xdead_beef);
        assert_eq!(m.read_u64(a + 8), 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_u8(a + 16), 0x5a);
    }

    #[test]
    fn bytes_roundtrip_and_fill() {
        let mut m = GlobalMem::new();
        let a = m.alloc_bytes(b"ACGTACGT");
        assert_eq!(m.read_bytes(a, 8), b"ACGTACGT");
        m.fill(a, 4, b'N');
        assert_eq!(m.read_bytes(a, 8), b"NNNNACGT");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_read_panics() {
        let m = GlobalMem::new();
        m.read_u32(1 << 20);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn null_deref_panics() {
        let m = GlobalMem::new();
        m.read_u8(0);
    }
}

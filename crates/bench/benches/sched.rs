//! Scheduled-execution overhead: how much host time the timeline recorder
//! and event-driven replay add on top of the vectorized interpreter.
//!
//! Two groups:
//!
//! * `sched_exec` — full simulated kernel runs, `vectorized` (counter
//!   mode) vs `scheduled` (recorder attached + post-launch replay), one
//!   pair per dialect on its native device. Modeled state is bit-identical
//!   (pinned by `exec_equivalence` in `locassm-kernels`); this group
//!   measures the host-side cost of buying the simulated latency term.
//! * `sched_replay` — the replay alone: record one launch's timelines
//!   outside the timing loop, then re-schedule them, isolating the
//!   event-queue cost from the simulation proper.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_specs::{sched_config, DeviceId};
use locassm_kernels::{run_local_assembly, GpuConfig};
use simt::ExecMode;
use std::hint::black_box;
use workloads::paper_dataset;

fn bench_sched_exec(c: &mut Criterion) {
    let ds = paper_dataset(21, 0.005, 11);
    let mut g = c.benchmark_group("sched_exec");
    g.sample_size(10);
    for dev in [DeviceId::A100, DeviceId::Mi250x, DeviceId::Max1550] {
        let mut cfg = GpuConfig::for_device(dev);
        // Criterion runs inside its own harness; keep the simulation
        // single-threaded for stable measurements.
        cfg.parallel = false;
        cfg.exec = ExecMode::Vectorized;
        g.bench_with_input(
            BenchmarkId::new("vectorized", dev.spec().short_name),
            &ds,
            |b, ds| b.iter(|| run_local_assembly(black_box(ds), &cfg).profile.total.warps),
        );
        cfg.exec = ExecMode::Scheduled;
        g.bench_with_input(
            BenchmarkId::new("scheduled", dev.spec().short_name),
            &ds,
            |b, ds| b.iter(|| run_local_assembly(black_box(ds), &cfg).profile.total.warps),
        );
    }
    g.finish();
}

fn bench_replay_alone(c: &mut Criterion) {
    // A launch worth of synthetic timelines shaped like the kernel's
    // (construct phase heavy on L1/Hbm touches, walk phase on L2),
    // built outside the timing loop so only `simt::schedule` is measured.
    use memhier::MemLevel;
    let jobs: Vec<simt::WarpTimeline> = (0..256u64)
        .map(|w| {
            let mut r = simt::TimelineRecorder::new(w);
            let mut clock = 0u64;
            r.record_phase_enter("construct", clock);
            for i in 0..200u64 {
                clock += 1 + (w + i) % 7; // deterministic compute gaps
                let level = match (w + i) % 5 {
                    0 => MemLevel::Hbm,
                    1 | 2 => MemLevel::L2,
                    _ => MemLevel::L1,
                };
                r.record_mem(clock, level);
            }
            r.record_phase_exit(clock);
            r.record_phase_enter("walk", clock);
            for i in 0..100u64 {
                clock += 2 + (w ^ i) % 11;
                r.record_mem(clock, if i % 3 == 0 { MemLevel::Hbm } else { MemLevel::L2 });
            }
            r.record_phase_exit(clock);
            r.finish(clock + 5)
        })
        .collect();
    let sc = sched_config(DeviceId::A100.spec(), 4);

    let mut g = c.benchmark_group("sched_replay");
    g.bench_function("replay_only", |b| {
        b.iter(|| black_box(simt::schedule(black_box(&jobs), &sc)).makespan_ticks)
    });
    g.finish();
}

criterion_group!(benches, bench_sched_exec, bench_replay_alone);
criterion_main!(benches);

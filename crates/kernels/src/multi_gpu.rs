//! Multi-device distribution of local assembly work.
//!
//! MetaHipMer scales across thousands of nodes by localizing each contig
//! and its reads on one rank, whose GPU then runs the local assembly
//! pipeline independently (§II-B: "localized portions of work on each node
//! are offloaded to GPUs … without being interrupted by off node
//! communications"). This module reproduces that structure: contigs are
//! partitioned across N simulated devices, every device runs the full
//! Fig. 3 pipeline on its shard, and the results merge back in input
//! order. Since shards share nothing, distribution must not change any
//! extension — asserted by tests — and the interesting output is the
//! load-balance profile.

use crate::launch::{run_local_assembly, GpuConfig, GpuRunResult};
use crate::profile::KernelProfile;
use locassm_core::io::Dataset;
use locassm_core::ExtensionResult;
use rayon::prelude::*;

/// How contigs are assigned to ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partition {
    /// Round-robin by contig index (MetaHipMer's hashed distribution is
    /// uniform-random; round-robin is its deterministic stand-in).
    RoundRobin,
    /// Contiguous blocks of equal contig count.
    Blocked,
    /// Greedy balance on estimated work (hash insertions per contig) —
    /// assign each contig, heaviest first, to the least-loaded rank.
    WorkBalanced,
}

/// Result of a distributed run.
#[derive(Debug, Clone)]
pub struct MultiGpuResult {
    /// Extensions in dataset order (identical to a single-device run).
    pub extensions: Vec<ExtensionResult>,
    /// Per-rank kernel profiles.
    pub ranks: Vec<KernelProfile>,
    /// Per-rank contig counts.
    pub shard_sizes: Vec<usize>,
}

impl MultiGpuResult {
    /// Wall-clock of the distributed phase: the slowest rank.
    ///
    /// A rank whose modeled time is NaN poisons the makespan rather than
    /// disappearing: `f64::max` returns its *other* operand when either
    /// side is NaN, so the old max-fold silently dropped corrupted rank
    /// profiles and reported the makespan of the healthy remainder.
    pub fn makespan_seconds(&self) -> f64 {
        self.ranks.iter().map(KernelProfile::seconds).fold(0.0, |acc, t| {
            if acc.is_nan() || t.is_nan() {
                f64::NAN
            } else {
                acc.max(t)
            }
        })
    }

    /// Load imbalance: slowest rank time over mean rank time (1.0 =
    /// perfect). The mean is taken over ranks that were actually assigned
    /// contigs — with more ranks than jobs, [`partition`] hands the extra
    /// ranks empty shards whose zero-second profiles would drag the mean
    /// down and report spurious imbalance for a perfectly balanced run.
    /// NaN rank times propagate (the quotient inherits the poisoned
    /// makespan).
    pub fn imbalance(&self) -> f64 {
        let times: Vec<f64> = self
            .ranks
            .iter()
            .zip(&self.shard_sizes)
            .filter(|&(_, &n)| n > 0)
            .map(|(p, _)| p.seconds())
            .collect();
        if times.is_empty() {
            return 1.0;
        }
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            self.makespan_seconds() / mean
        }
    }
}

/// Assign each contig index to a rank.
pub fn partition(ds: &Dataset, ranks: usize, policy: Partition) -> Vec<usize> {
    assert!(ranks > 0, "need at least one rank");
    let n = ds.jobs.len();
    match policy {
        Partition::RoundRobin => (0..n).map(|i| i % ranks).collect(),
        Partition::Blocked => {
            let per = n.div_ceil(ranks.min(n.max(1))).max(1);
            (0..n).map(|i| (i / per).min(ranks - 1)).collect()
        }
        Partition::WorkBalanced => {
            let mut order: Vec<usize> = (0..n).collect();
            let work: Vec<usize> =
                ds.jobs.iter().map(|j| j.insertion_count(ds.k).max(1)).collect();
            order.sort_by_key(|&i| std::cmp::Reverse(work[i]));
            let mut load = vec![0usize; ranks];
            let mut assign = vec![0usize; n];
            for i in order {
                let rank = (0..ranks).min_by_key(|&r| load[r]).unwrap();
                assign[i] = rank;
                load[rank] += work[i];
            }
            assign
        }
    }
}

/// Run local assembly across `ranks` simulated devices of the same
/// configuration.
pub fn run_multi_gpu(
    ds: &Dataset,
    cfg: &GpuConfig,
    ranks: usize,
    policy: Partition,
) -> MultiGpuResult {
    let assign = partition(ds, ranks, policy);

    // Build per-rank shards (keeping original indices for the merge).
    let mut shards: Vec<(Vec<usize>, Vec<locassm_core::ContigJob>)> =
        (0..ranks).map(|_| (Vec::new(), Vec::new())).collect();
    for (idx, job) in ds.jobs.iter().enumerate() {
        let r = assign[idx];
        shards[r].0.push(idx);
        shards[r].1.push(job.clone());
    }

    // Each rank runs its own full pipeline. Ranks are independent; nested
    // rayon parallelism is fine (work-stealing flattens it).
    let rank_runs: Vec<(Vec<usize>, GpuRunResult)> = shards
        .into_par_iter()
        .map(|(indices, jobs)| {
            let shard = Dataset::new(ds.k, jobs);
            let run = run_local_assembly(&shard, cfg);
            (indices, run)
        })
        .collect();

    let mut extensions: Vec<Option<ExtensionResult>> = vec![None; ds.jobs.len()];
    let mut rank_profiles = Vec::with_capacity(ranks);
    let mut shard_sizes = Vec::with_capacity(ranks);
    for (indices, run) in rank_runs {
        shard_sizes.push(indices.len());
        for (idx, ext) in indices.into_iter().zip(run.extensions) {
            extensions[idx] = Some(ext);
        }
        rank_profiles.push(run.profile);
    }

    MultiGpuResult {
        extensions: extensions.into_iter().map(|e| e.expect("every contig assigned")).collect(),
        ranks: rank_profiles,
        shard_sizes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_specs::DeviceId;
    use workloads::paper_dataset;

    fn ds() -> Dataset {
        paper_dataset(21, 0.003, 71)
    }

    #[test]
    fn distribution_preserves_results() {
        let ds = ds();
        let cfg = GpuConfig::for_device(DeviceId::A100);
        let single = run_local_assembly(&ds, &cfg);
        for policy in [Partition::RoundRobin, Partition::Blocked, Partition::WorkBalanced] {
            let multi = run_multi_gpu(&ds, &cfg, 4, policy);
            assert_eq!(multi.extensions, single.extensions, "{policy:?}");
            assert_eq!(multi.ranks.len(), 4);
            assert_eq!(multi.shard_sizes.iter().sum::<usize>(), ds.jobs.len());
        }
    }

    #[test]
    fn work_balanced_beats_blocked_on_skew() {
        // Build a skewed dataset: sort contigs by read count so a blocked
        // partition puts all heavy contigs on one rank. The balanced
        // policy must spread the estimated work (hash insertions) across
        // ranks strictly better.
        let mut base = ds();
        base.jobs.sort_by_key(|j| std::cmp::Reverse(j.read_count()));
        for (i, j) in base.jobs.iter_mut().enumerate() {
            j.id = i as u32;
        }
        let max_shard_work = |policy: Partition| -> usize {
            let assign = partition(&base, 4, policy);
            let mut load = vec![0usize; 4];
            for (i, j) in base.jobs.iter().enumerate() {
                load[assign[i]] += j.insertion_count(base.k);
            }
            load.into_iter().max().unwrap()
        };
        assert!(
            max_shard_work(Partition::WorkBalanced) < max_shard_work(Partition::Blocked),
            "balanced must lower the heaviest shard: {} vs {}",
            max_shard_work(Partition::WorkBalanced),
            max_shard_work(Partition::Blocked)
        );
        // And the results are identical either way.
        let cfg = GpuConfig::for_device(DeviceId::A100);
        let blocked = run_multi_gpu(&base, &cfg, 4, Partition::Blocked);
        let balanced = run_multi_gpu(&base, &cfg, 4, Partition::WorkBalanced);
        assert_eq!(balanced.extensions, blocked.extensions);
        assert!(balanced.imbalance() >= 1.0 && blocked.imbalance() >= 1.0);
    }

    #[test]
    fn partitions_cover_all_indices() {
        let ds = ds();
        for policy in [Partition::RoundRobin, Partition::Blocked, Partition::WorkBalanced] {
            let assign = partition(&ds, 5, policy);
            assert_eq!(assign.len(), ds.jobs.len());
            assert!(assign.iter().all(|&r| r < 5), "{policy:?}");
        }
    }

    #[test]
    fn single_rank_is_identity_partition() {
        let ds = ds();
        let assign = partition(&ds, 1, Partition::WorkBalanced);
        assert!(assign.iter().all(|&r| r == 0));
    }

    #[test]
    fn more_ranks_than_contigs() {
        let mut small = ds();
        small.jobs.truncate(3);
        let cfg = GpuConfig::for_device(DeviceId::Max1550);
        let multi = run_multi_gpu(&small, &cfg, 8, Partition::RoundRobin);
        assert_eq!(multi.extensions.len(), 3);
        assert_eq!(multi.shard_sizes.iter().sum::<usize>(), 3);
    }

    /// With 8 ranks and 3 contigs, 5 shards are empty. Their zero-second
    /// profiles must not enter the imbalance mean: the statistic is
    /// max/mean over the *working* ranks only, so a hand-check against
    /// the non-empty shard times must agree exactly (the old
    /// all-ranks mean reported ~8/3× spurious imbalance here).
    #[test]
    fn empty_shards_do_not_skew_imbalance() {
        let mut small = ds();
        small.jobs.truncate(3);
        let cfg = GpuConfig::for_device(DeviceId::A100);
        let multi = run_multi_gpu(&small, &cfg, 8, Partition::RoundRobin);
        assert_eq!(multi.shard_sizes.iter().filter(|&&n| n == 0).count(), 5);

        let times: Vec<f64> = multi
            .ranks
            .iter()
            .zip(&multi.shard_sizes)
            .filter(|&(_, &n)| n > 0)
            .map(|(p, _)| p.seconds())
            .collect();
        assert_eq!(times.len(), 3);
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let expected = multi.makespan_seconds() / mean;
        assert!(
            (multi.imbalance() - expected).abs() < 1e-12,
            "imbalance {} must be max/mean over working ranks ({expected})",
            multi.imbalance()
        );
        // Sanity: the spurious all-ranks statistic is strictly larger.
        let all_mean = multi.ranks.iter().map(KernelProfile::seconds).sum::<f64>()
            / multi.ranks.len() as f64;
        assert!(multi.imbalance() < multi.makespan_seconds() / all_mean);
    }

    /// A NaN rank time must poison the makespan and the imbalance, not
    /// vanish into `f64::max`'s NaN-ignoring semantics.
    #[test]
    fn nan_rank_time_propagates() {
        let cfg = GpuConfig::for_device(DeviceId::A100);
        let mut small = ds();
        small.jobs.truncate(2);
        let mut multi = run_multi_gpu(&small, &cfg, 2, Partition::RoundRobin);
        assert!(multi.makespan_seconds().is_finite());
        assert!(multi.imbalance().is_finite());

        // Corrupt one rank's modeled time.
        for b in &mut multi.ranks[0].batches {
            b.time.seconds = f64::NAN;
        }
        assert!(
            multi.makespan_seconds().is_nan(),
            "a NaN rank must poison the makespan, not be masked by max"
        );
        assert!(multi.imbalance().is_nan());
    }
}

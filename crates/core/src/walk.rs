//! The mer-walk (Algorithm 2, "DNA walks").
//!
//! Starting from the terminal k-mer of the contig, repeatedly look the
//! k-mer up in the de Bruijn hash table and append the winning extension
//! base; terminate on a **fork** (ambiguous votes — the graph branches), an
//! **end** (no entry / no votes), a **loop** (a k-mer repeats, i.e. the
//! walk entered a cycle of the graph), or the walk-length cap.

use crate::ht::{CpuHashTable, HtValue};
use crate::quality::HI_QUAL_CUTOFF;
use serde::{Deserialize, Serialize};

/// Why a walk terminated (broadcast to the warp in the GPU kernel, Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WalkState {
    /// No entry or no viable votes: the graph simply ends here.
    End,
    /// Ambiguous extension votes: an unresolved fork in the graph.
    Fork,
    /// A k-mer repeated: the walk entered a cycle.
    Loop,
    /// The configured maximum walk length was reached.
    MaxLen,
}

/// Walk parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WalkConfig {
    /// Maximum number of bases a single walk may append.
    pub max_walk_len: usize,
    /// Minimum winning score (2·hi + low votes) required to extend.
    pub min_votes: u32,
    /// Phred cutoff splitting hi/low votes (fixed, documented here for
    /// completeness; votes are already stratified at insertion time).
    pub hi_qual_cutoff: u8,
}

impl Default for WalkConfig {
    fn default() -> Self {
        WalkConfig { max_walk_len: 300, min_votes: 2, hi_qual_cutoff: HI_QUAL_CUTOFF }
    }
}

/// The outcome of one mer-walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Walk {
    /// Bases appended to the contig end.
    pub extension: Vec<u8>,
    /// Why the walk stopped.
    pub state: WalkState,
    /// Hash-table lookups performed (= extension length + 1 unless capped).
    pub steps: u32,
}

/// Decide the extension for an entry's votes.
///
/// Scoring follows MetaHipMer's quality-weighted vote: a high-quality vote
/// counts double. The winner must (a) reach `min_votes` and (b) beat the
/// runner-up by at least 2× — otherwise the position is an unresolved
/// [`WalkState::Fork`]. No votes at all is an [`WalkState::End`].
pub fn decide_extension(val: &HtValue, min_votes: u32) -> Result<usize, WalkState> {
    let mut best = 0usize;
    let mut best_score = 0u32;
    let mut second_score = 0u32;
    for b in 0..4 {
        let score = 2 * val.hi_q[b] + val.low_q[b];
        if score > best_score {
            second_score = best_score;
            best_score = score;
            best = b;
        } else if score > second_score {
            second_score = score;
        }
    }
    if best_score == 0 || best_score < min_votes {
        Err(WalkState::End)
    } else if second_score > 0 && best_score < 2 * second_score {
        Err(WalkState::Fork)
    } else {
        Ok(best)
    }
}

/// The fingerprint used by loop detection.
///
/// The walk records the `MurmurHashAligned2` value of every window it
/// visits (the *same* hash the table lookup needs, so it costs nothing
/// extra — one hash per lookup, exactly the paper's INTOP2 model) and
/// declares a [`WalkState::Loop`] on the first repeat. The GPU kernels
/// keep the same fingerprint list in device memory, so CPU and GPU loop
/// semantics are identical by construction; a 32-bit collision over a
/// ≤ `max_walk_len`-entry list (probability ~2⁻²³ per walk) would affect
/// both implementations equally.
pub const VISITED_SEED: u32 = crate::murmur::DEFAULT_SEED;

/// The visited-set fingerprint of a window (also its table hash).
pub fn window_fingerprint(window: &[u8]) -> u32 {
    crate::murmur::murmur_hash_aligned2(window, VISITED_SEED)
}

/// Walk the de Bruijn graph from the last k-mer of `contig`.
///
/// `k` must not exceed the contig length. Loop detection uses the
/// [`window_fingerprint`] visited list — identical semantics to the GPU
/// kernels' device-memory list, so the CPU reference is an exact oracle.
pub fn mer_walk(ht: &CpuHashTable, contig: &[u8], k: usize, cfg: &WalkConfig) -> Walk {
    assert!(k >= 1 && k <= contig.len(), "k={k} out of range for contig of {}", contig.len());
    // The rolling window: contig tail + appended extension.
    let mut window: Vec<u8> = contig[contig.len() - k..].to_vec();
    let mut visited: Vec<u32> = Vec::new();
    let mut extension = Vec::new();
    let mut steps = 0u32;

    loop {
        if extension.len() >= cfg.max_walk_len {
            return Walk { extension, state: WalkState::MaxLen, steps };
        }
        let fp = window_fingerprint(&window);
        if visited.contains(&fp) {
            return Walk { extension, state: WalkState::Loop, steps };
        }
        visited.push(fp);

        steps += 1;
        let Some(val) = ht.lookup(&window) else {
            return Walk { extension, state: WalkState::End, steps };
        };
        match decide_extension(val, cfg.min_votes) {
            Ok(base) => {
                let b = crate::dna::index_base(base);
                extension.push(b);
                window.rotate_left(1);
                window[k - 1] = b;
            }
            Err(state) => return Walk { extension, state, steps },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmer::{ext_vote, KmerIter};
    use crate::read::Read;

    /// Build a table from reads the way Algorithm 1 does.
    fn build(reads: &[Read], k: usize) -> CpuHashTable {
        let slots: usize = reads.iter().map(|r| r.kmer_count(k)).sum();
        let mut ht = CpuHashTable::with_capacity(crate::estimate::estimate_slots(slots));
        for r in reads {
            for (pos, kmer) in KmerIter::new(&r.seq, k) {
                ht.insert(kmer, ext_vote(r, pos, k)).unwrap();
            }
        }
        ht
    }

    fn cfg() -> WalkConfig {
        WalkConfig { min_votes: 1, ..WalkConfig::default() }
    }

    #[test]
    fn walk_reconstructs_unique_path() {
        // Contig ends with the prefix of a read; the walk should recover
        // the read's unique suffix.
        let read = Read::with_uniform_qual(b"ACGTACGGTTAC", b'I');
        let ht = build(std::slice::from_ref(&read), 4);
        let contig = b"GGGGACGTACG"; // last 4-mer "TACG" … wait, tail is "TACG"
        let w = mer_walk(&ht, contig, 4, &cfg());
        // Tail "TACG" → G, then "ACGG" → T, "CGGT" → T, "GGTT" → A,
        // "GTTA" → C, "TTAC" is terminal (no vote) → End.
        assert_eq!(w.extension, b"GTTAC");
        assert_eq!(w.state, WalkState::End);
        assert_eq!(w.steps, 6);
    }

    #[test]
    fn fork_stops_walk() {
        // Two high-quality reads disagree on the base after "ACGT".
        let r1 = Read::with_uniform_qual(b"ACGTA", b'I');
        let r2 = Read::with_uniform_qual(b"ACGTC", b'I');
        let ht = build(&[r1, r2], 4);
        let w = mer_walk(&ht, b"ACGT", 4, &cfg());
        assert_eq!(w.state, WalkState::Fork);
        assert!(w.extension.is_empty());
    }

    #[test]
    fn quality_outvotes_errors() {
        // Three hi-quality reads say 'A'; one low-quality read says 'C'.
        let good = Read::with_uniform_qual(b"ACGTA", b'I');
        let bad = Read::with_uniform_qual(b"ACGTC", b'#');
        let ht = build(&[good.clone(), good.clone(), good, bad], 4);
        let w = mer_walk(&ht, b"ACGT", 4, &cfg());
        assert_eq!(w.extension, b"A");
        assert_eq!(w.state, WalkState::End);
    }

    #[test]
    fn loop_detected() {
        // A cyclic sequence: "ACGACGACG…" loops on 3-mer "ACG"→A? Build a
        // genuine cycle with k=4: sequence "AACCAACC…" has 4-mer cycle.
        let read = Read::with_uniform_qual(b"AACCAACCAACC", b'I');
        let ht = build(std::slice::from_ref(&read), 4);
        let w = mer_walk(&ht, b"AACC", 4, &cfg());
        assert_eq!(w.state, WalkState::Loop);
        // The cycle has period 4: the walk appends until "AACC" recurs.
        assert_eq!(w.extension.len(), 4);
    }

    #[test]
    fn max_len_caps_walk() {
        let read = Read::with_uniform_qual(b"AACCAACCAACC", b'I');
        let ht = build(std::slice::from_ref(&read), 4);
        let cfg = WalkConfig { max_walk_len: 2, min_votes: 1, ..WalkConfig::default() };
        let w = mer_walk(&ht, b"AACC", 4, &cfg);
        assert_eq!(w.state, WalkState::MaxLen);
        assert_eq!(w.extension.len(), 2);
    }

    #[test]
    fn missing_start_kmer_ends_immediately() {
        let ht = CpuHashTable::with_capacity(32);
        let w = mer_walk(&ht, b"ACGTACGT", 4, &cfg());
        assert_eq!(w.state, WalkState::End);
        assert!(w.extension.is_empty());
        assert_eq!(w.steps, 1);
    }

    #[test]
    fn min_votes_gates_extension() {
        // One single hi-quality vote = score 2: passes min_votes 2 but not 3.
        let read = Read::with_uniform_qual(b"ACGTA", b'I');
        let ht = build(std::slice::from_ref(&read), 4);
        let strict = WalkConfig { min_votes: 3, ..WalkConfig::default() };
        let w = mer_walk(&ht, b"ACGT", 4, &strict);
        assert_eq!(w.state, WalkState::End);
        assert!(w.extension.is_empty());

        let lenient = WalkConfig { min_votes: 2, ..WalkConfig::default() };
        let w = mer_walk(&ht, b"ACGT", 4, &lenient);
        assert_eq!(w.extension, b"A");
    }

    #[test]
    fn decide_extension_rules() {
        let mut v = HtValue::default();
        assert_eq!(decide_extension(&v, 1), Err(WalkState::End));
        v.hi_q[2] = 3;
        assert_eq!(decide_extension(&v, 1), Ok(2));
        // Runner-up with more than half the winner's score → fork.
        v.hi_q[0] = 2; // score 4 vs 6: 6 < 2*4 → fork
        assert_eq!(decide_extension(&v, 1), Err(WalkState::Fork));
        // Dominant winner: 6 ≥ 2*2 when runner-up score is 2.
        v.hi_q[0] = 1;
        assert_eq!(decide_extension(&v, 1), Ok(2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn k_longer_than_contig_panics() {
        let ht = CpuHashTable::with_capacity(32);
        mer_walk(&ht, b"ACG", 4, &cfg());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::kmer::{ext_vote, KmerIter};
    use crate::read::Read;
    use proptest::prelude::*;

    fn dna(min: usize, max: usize) -> impl Strategy<Value = Vec<u8>> {
        proptest::collection::vec(
            proptest::sample::select(crate::dna::BASES.to_vec()),
            min..max,
        )
    }

    proptest! {
        /// Walks always terminate within max_walk_len and the extension is
        /// valid DNA whose length is consistent with the step count.
        #[test]
        fn walk_terminates_and_is_valid(seq in dna(30, 120), k in 4usize..12) {
            let read = Read::with_uniform_qual(&seq, b'I');
            let mut ht = CpuHashTable::with_capacity(crate::estimate::estimate_slots(seq.len()));
            for (pos, kmer) in KmerIter::new(&read.seq, k) {
                ht.insert(kmer, ext_vote(&read, pos, k)).unwrap();
            }
            let cfg = WalkConfig { min_votes: 1, max_walk_len: 64, ..WalkConfig::default() };
            let contig = &seq[..k.min(seq.len())];
            let w = mer_walk(&ht, contig, k, &cfg);
            prop_assert!(w.extension.len() <= 64);
            prop_assert!(crate::dna::valid_seq(&w.extension));
            match w.state {
                // End/Fork: the terminating lookup is counted as a step.
                WalkState::End | WalkState::Fork => {
                    prop_assert_eq!(w.steps as usize, w.extension.len() + 1)
                }
                // Loop/MaxLen: detected before any further lookup.
                WalkState::Loop | WalkState::MaxLen => {
                    prop_assert_eq!(w.steps as usize, w.extension.len())
                }
            }
        }

        /// A walk seeded at the start of an error-free, repeat-free read
        /// recovers its suffix exactly.
        #[test]
        fn unique_path_recovered(seed in any::<u64>()) {
            // Construct a repeat-free sequence deterministically from seed.
            let mut s = Vec::with_capacity(40);
            let mut x = seed | 1;
            while s.len() < 40 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                s.push(crate::dna::BASES[(x >> 33) as usize % 4]);
            }
            let k = 12; // long k on a short random sequence: repeats vanish
            let read = Read::with_uniform_qual(&s, b'I');
            let mut ht = CpuHashTable::with_capacity(256);
            for (pos, kmer) in KmerIter::new(&read.seq, k) {
                ht.insert(kmer, ext_vote(&read, pos, k)).unwrap();
            }
            // Check the read has no repeated k-mer (skip degenerate draws).
            let mut seen = std::collections::HashSet::new();
            let unique = KmerIter::new(&s, k).all(|(_, km)| seen.insert(km.to_vec()));
            prop_assume!(unique);
            let cfg = WalkConfig { min_votes: 1, ..WalkConfig::default() };
            let w = mer_walk(&ht, &s[..k], k, &cfg);
            prop_assert_eq!(w.extension.as_slice(), &s[k..]);
            prop_assert_eq!(w.state, WalkState::End);
        }
    }
}

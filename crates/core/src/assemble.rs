//! CPU reference local assembly: per-contig extension (Algorithms 1 + 2,
//! Fig. 3 workflow).
//!
//! This is the baseline against which all three GPU kernel dialects are
//! verified: `locassm-kernels` integration tests assert bit-identical
//! extensions on randomized workloads.

use crate::contig::ContigJob;
use crate::estimate::estimate_slots;
use crate::ht::CpuHashTable;
use crate::kmer::{ext_vote, KmerIter};
use crate::read::Read;
use crate::retry::RetryPolicy;
use crate::walk::{mer_walk, Walk, WalkConfig, WalkState};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Assembly parameters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AssemblyConfig {
    /// k-mer size for this round.
    pub k: usize,
    /// Walk parameters.
    pub walk: WalkConfig,
    /// Retry ladder for unaccepted walks (Fig. 4's outer loop).
    pub retry: RetryPolicy,
}

impl AssemblyConfig {
    pub fn new(k: usize) -> Self {
        AssemblyConfig { k, walk: WalkConfig::default(), retry: RetryPolicy::none() }
    }

    /// With the Fig. 4 retry ladder enabled.
    pub fn with_retry_ladder(k: usize) -> Self {
        AssemblyConfig { k, walk: WalkConfig::default(), retry: RetryPolicy::ladder(k) }
    }
}

/// The two-sided extension produced for one contig.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExtensionResult {
    pub id: u32,
    /// Bases appended to the right (3') end.
    pub right: Vec<u8>,
    /// Bases prepended to the left (5') end (already in forward
    /// orientation).
    pub left: Vec<u8>,
    pub right_state: WalkState,
    pub left_state: WalkState,
}

impl ExtensionResult {
    /// Total bases gained.
    pub fn total_len(&self) -> usize {
        self.right.len() + self.left.len()
    }

    /// The extended contig sequence.
    pub fn apply(&self, contig: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(contig.len() + self.total_len());
        out.extend_from_slice(&self.left);
        out.extend_from_slice(contig);
        out.extend_from_slice(&self.right);
        out
    }
}

/// Build the de Bruijn hash table for a set of reads (Algorithm 1).
pub fn build_table(reads: &[Read], k: usize) -> CpuHashTable {
    let insertions: usize = reads.iter().map(|r| r.kmer_count(k)).sum();
    let mut ht = CpuHashTable::with_capacity(estimate_slots(insertions));
    for r in reads {
        for (pos, kmer) in KmerIter::new(&r.seq, k) {
            // The reservation is an upper bound on distinct keys, so
            // insertion cannot fail.
            ht.insert(kmer, ext_vote(r, pos, k)).expect("table sized by estimate_slots");
        }
    }
    ht
}

/// Extend one end: build the table from `reads`, then walk from the end of
/// `contig`, retrying with the policy's smaller k values while the walk is
/// not accepted (Fig. 4). Returns an empty `End` walk when no k fits the
/// contig or there are no reads.
fn extend_one_side(contig: &[u8], reads: &[Read], cfg: &AssemblyConfig) -> Walk {
    let mut last = Walk { extension: Vec::new(), state: WalkState::End, steps: 0 };
    if reads.is_empty() {
        return last;
    }
    for k in cfg.retry.schedule(cfg.k) {
        if contig.len() < k {
            continue;
        }
        let ht = build_table(reads, k);
        let walk = mer_walk(&ht, contig, k, &cfg.walk);
        let accepted = cfg.retry.accepts(&walk);
        // Keep the best attempt seen so far (longest extension).
        if walk.extension.len() >= last.extension.len() {
            last = walk;
        }
        if accepted {
            break;
        }
    }
    last
}

/// Extend both ends of one contig (the per-warp unit of GPU work).
pub fn extend_contig(job: &ContigJob, cfg: &AssemblyConfig) -> ExtensionResult {
    let right = extend_one_side(&job.contig, &job.right_reads, cfg);

    // Left extension = right extension of the reverse complement.
    let rc_job = job.left_as_right();
    let left_walk = extend_one_side(&rc_job.contig, &rc_job.right_reads, cfg);
    let left = crate::dna::revcomp(&left_walk.extension);

    ExtensionResult {
        id: job.id,
        right: right.extension,
        left,
        right_state: right.state,
        left_state: left_walk.state,
    }
}

/// Extend every contig; `parallel` uses rayon across contigs (the CPU
/// baseline configuration benchmarked against the simulated kernels).
pub fn assemble_all(
    jobs: &[ContigJob],
    cfg: &AssemblyConfig,
    parallel: bool,
) -> Vec<ExtensionResult> {
    if parallel {
        jobs.par_iter().map(|j| extend_contig(j, cfg)).collect()
    } else {
        jobs.iter().map(|j| extend_contig(j, cfg)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(k: usize) -> AssemblyConfig {
        AssemblyConfig {
            walk: WalkConfig { min_votes: 1, ..WalkConfig::default() },
            ..AssemblyConfig::new(k)
        }
    }

    /// A contig that is a window of a longer "genome", with reads covering
    /// both junctions.
    fn two_sided_job() -> (ContigJob, &'static [u8]) {
        //            left ext      contig           right ext
        let genome = b"TTGCAGGCCA GACGTTACGGAT CCGTAAGGTCAT";
        let genome: Vec<u8> = genome.iter().copied().filter(|&b| b != b' ').collect();
        let contig = genome[10..22].to_vec(); // "GACGTTACGGAT"
        // Right reads: overlap the right junction.
        let right = vec![
            Read::with_uniform_qual(&genome[14..30], b'I'),
            Read::with_uniform_qual(&genome[16..32], b'I'),
        ];
        // Left reads: overlap the left junction.
        let left = vec![
            Read::with_uniform_qual(&genome[2..18], b'I'),
            Read::with_uniform_qual(&genome[0..16], b'I'),
        ];
        let job = ContigJob::new(1, contig, right, left);
        (job, Box::leak(genome.into_boxed_slice()))
    }

    #[test]
    fn extends_both_ends() {
        let (job, genome) = two_sided_job();
        let r = extend_contig(&job, &cfg(6));
        assert!(!r.right.is_empty(), "right extension expected");
        assert!(!r.left.is_empty(), "left extension expected");
        let extended = r.apply(&job.contig);
        // The extension must be a substring of the original genome.
        let g = genome;
        assert!(
            g.windows(extended.len()).any(|w| w == extended.as_slice()),
            "extended contig {:?} not found in genome {:?}",
            String::from_utf8_lossy(&extended),
            String::from_utf8_lossy(g)
        );
        assert!(extended.len() > job.contig.len());
    }

    #[test]
    fn no_reads_no_extension() {
        let job = ContigJob::new(0, b"ACGTACGTACGT".to_vec(), vec![], vec![]);
        let r = extend_contig(&job, &cfg(6));
        assert!(r.right.is_empty() && r.left.is_empty());
        assert_eq!(r.right_state, WalkState::End);
        assert_eq!(r.total_len(), 0);
    }

    #[test]
    fn short_contig_skipped_gracefully() {
        let job = ContigJob::new(
            0,
            b"ACG".to_vec(),
            vec![Read::with_uniform_qual(b"ACGTACGT", b'I')],
            vec![],
        );
        let r = extend_contig(&job, &cfg(6));
        assert!(r.right.is_empty());
    }

    #[test]
    fn parallel_matches_serial() {
        let (job, _) = two_sided_job();
        let jobs: Vec<ContigJob> = (0..32)
            .map(|i| {
                let mut j = job.clone();
                j.id = i;
                j
            })
            .collect();
        let a = assemble_all(&jobs, &cfg(6), true);
        let b = assemble_all(&jobs, &cfg(6), false);
        assert_eq!(a, b);
        assert_eq!(a.len(), 32);
    }

    #[test]
    fn apply_prepends_and_appends() {
        let r = ExtensionResult {
            id: 0,
            right: b"GG".to_vec(),
            left: b"TT".to_vec(),
            right_state: WalkState::End,
            left_state: WalkState::End,
        };
        assert_eq!(r.apply(b"ACGT"), b"TTACGTGG");
        assert_eq!(r.total_len(), 4);
    }

    #[test]
    fn build_table_counts_all_kmers() {
        let reads =
            vec![Read::with_uniform_qual(b"ACGTACGT", b'I'), Read::with_uniform_qual(b"ACGTAC", b'I')];
        let ht = build_table(&reads, 4);
        // Read 1 has 5 k-mers, read 2 has 3; ACGT appears 2+1 more times…
        let total: u32 = ht.iter().map(|(_, v)| v.count).sum();
        assert_eq!(total as usize, 5 + 3);
        assert_eq!(ht.lookup(b"ACGT").unwrap().count, 3);
    }
}

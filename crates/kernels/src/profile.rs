//! Kernel profiles — the quantities the paper extracts with `ncu`,
//! `rocprof` and Intel Advisor (Appendix B).

use gpu_specs::{Bound, DeviceId, ModelParams, TimeEstimate};
use crate::kernel::Dialect;
use simt::AggCounters;

/// Counters split at the construct/walk phase boundary.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseCounters {
    /// Algorithm 1: hash-table construction.
    pub construct: AggCounters,
    /// Algorithm 2: mer-walks (including the state broadcast).
    pub walk: AggCounters,
}

/// Profile of one batch (one kernel call in the Fig. 3 pipeline).
#[derive(Debug, Clone, Copy)]
pub struct BatchProfile {
    /// Binning band (lower read-count bound) this batch came from.
    pub band: usize,
    pub warps: u64,
    pub time: TimeEstimate,
}

/// Full profile of a local-assembly run on one device.
#[derive(Debug, Clone)]
pub struct KernelProfile {
    pub device: DeviceId,
    pub dialect: Dialect,
    pub k: usize,
    /// Aggregate over all kernel calls (right + left, all batches).
    pub total: AggCounters,
    pub phases: PhaseCounters,
    pub batches: Vec<BatchProfile>,
}

impl KernelProfile {
    /// Total kernel time: the sum over kernel calls (they are issued
    /// back-to-back on one device, as in the paper's measurements).
    pub fn seconds(&self) -> f64 {
        self.batches.iter().map(|b| b.time.seconds).sum()
    }

    /// Total warp-level integer operations.
    pub fn intops(&self) -> u64 {
        self.total.intops()
    }

    /// Total HBM bytes moved.
    pub fn hbm_bytes(&self) -> u64 {
        self.total.mem.hbm_bytes()
    }

    /// Achieved GINTOPs per second.
    pub fn gintops_per_sec(&self) -> f64 {
        self.intops() as f64 / self.seconds() / 1e9
    }

    /// INTOP intensity (integer ops per HBM byte) — the roofline x-axis.
    pub fn intop_intensity(&self) -> f64 {
        self.total.intop_intensity()
    }

    /// The dominant bound across batches, weighted by time.
    pub fn bound(&self) -> Bound {
        let mut compute = 0.0;
        let mut bw = 0.0;
        let mut lat = 0.0;
        for b in &self.batches {
            compute += b.time.compute_seconds;
            bw += b.time.bandwidth_seconds;
            lat += b.time.latency_seconds;
        }
        if compute >= bw && compute >= lat {
            Bound::Compute
        } else if bw >= lat {
            Bound::Bandwidth
        } else {
            Bound::Latency
        }
    }

    /// The `ModelParams` equivalent of the whole run (for re-estimation,
    /// e.g. in what-if analyses).
    pub fn model_params(&self) -> ModelParams {
        ModelParams::from_counters(&self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agg(instr: u64, width: u32) -> AggCounters {
        AggCounters {
            width,
            warps: 1,
            warp_instructions: instr,
            int_instructions: instr,
            ..Default::default()
        }
    }

    fn batch(seconds: f64) -> BatchProfile {
        BatchProfile {
            band: 1,
            warps: 1,
            time: TimeEstimate {
                seconds,
                compute_seconds: seconds,
                bandwidth_seconds: 0.0,
                latency_seconds: 0.0,
                bound: Bound::Compute,
            },
        }
    }

    #[test]
    fn totals_and_rates() {
        let p = KernelProfile {
            device: DeviceId::A100,
            dialect: Dialect::Cuda,
            k: 21,
            total: agg(1_000_000, 32),
            phases: PhaseCounters::default(),
            batches: vec![batch(0.001), batch(0.003)],
        };
        assert!((p.seconds() - 0.004).abs() < 1e-12);
        assert_eq!(p.intops(), 32_000_000);
        assert!((p.gintops_per_sec() - 8.0).abs() < 1e-9);
        assert_eq!(p.bound(), Bound::Compute);
    }
}

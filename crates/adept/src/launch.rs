//! Batch driver: many alignments across the simulated device, with the
//! same profiling surface as the local assembly kernel so the two kernels
//! compare on one roofline.

use crate::kernel::sw_kernel;
use crate::scoring::{Alignment, Scoring};
use gpu_specs::{effective_hierarchy, DeviceSpec, ModelParams, TimeEstimate};
use simt::{launch_warps, AggCounters, LaunchConfig};

/// One alignment task.
#[derive(Debug, Clone)]
pub struct Pair {
    pub query: Vec<u8>,
    pub reference: Vec<u8>,
}

/// Outcome of a batch alignment run.
#[derive(Debug, Clone)]
pub struct AlignmentBatchResult {
    pub alignments: Vec<Alignment>,
    pub counters: AggCounters,
    pub time: TimeEstimate,
}

impl AlignmentBatchResult {
    /// Achieved INTOPs per second on the modeled device.
    pub fn gintops_per_sec(&self) -> f64 {
        self.counters.intops() as f64 / self.time.seconds / 1e9
    }

    /// INTOP intensity (integer ops per HBM byte).
    pub fn intop_intensity(&self) -> f64 {
        self.counters.intop_intensity()
    }
}

/// Run a batch of alignments (one warp per pair) on a device model.
pub fn run_alignment_batch(
    pairs: &[Pair],
    spec: &DeviceSpec,
    scoring: &Scoring,
    parallel: bool,
) -> AlignmentBatchResult {
    let hierarchy = effective_hierarchy(spec, pairs.len() as u64);
    // Host-side size estimation mirroring `SwJob::stage`: query + reference
    // (each padded up to the default alignment) plus three rotating
    // (m + 1) × u32 diagonal buffers, so pooled warp arenas never regrow.
    let arena_hint = pairs
        .iter()
        .map(|p| {
            let pad = simt::mem::DEFAULT_ALIGN - 1;
            (p.query.len() as u64 + pad)
                + (p.reference.len() as u64 + pad)
                + 3 * ((p.query.len() as u64 + 1) * 4 + pad)
        })
        .max()
        .unwrap_or(0);
    let cfg = LaunchConfig {
        width: spec.warp_width,
        hierarchy,
        parallel,
        trace: false,
        pool: true,
        arena_hint,
        fault: None,
        fault_base: 0,
        sanitize: simt::SanitizerConfig::default(),
        exec: simt::ExecMode::default(),
    };
    let out = launch_warps(cfg, pairs, |warp, p: &Pair| {
        sw_kernel(warp, &p.query, &p.reference, scoring)
    });
    // DP wavefronts keep several loads in flight per lane: device MLP.
    let time = TimeEstimate::estimate(spec, &ModelParams::from_counters(&out.counters));
    AlignmentBatchResult { alignments: out.results, counters: out.counters, time }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::sw_score_cpu;
    use gpu_specs::DeviceId;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn pairs(n: usize, qlen: usize, rlen: usize, seed: u64) -> Vec<Pair> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut dna = |len: usize| -> Vec<u8> {
            (0..len).map(|_| locassm_core::dna::BASES[rng.random_range(0..4)]).collect()
        };
        (0..n).map(|_| Pair { query: dna(qlen), reference: dna(rlen) }).collect()
    }

    #[test]
    fn batch_matches_cpu_on_every_device() {
        let ps = pairs(24, 32, 48, 5);
        let expect: Vec<Alignment> = ps
            .iter()
            .map(|p| sw_score_cpu(&p.query, &p.reference, &Scoring::default()))
            .collect();
        for dev in DeviceId::ALL {
            let r = run_alignment_batch(&ps, dev.spec(), &Scoring::default(), true);
            assert_eq!(r.alignments, expect, "{dev}");
            assert!(r.counters.intops() > 0);
            assert!(r.time.seconds > 0.0);
        }
    }

    #[test]
    fn alignment_kernel_is_more_regular_than_local_assembly() {
        // The DP kernel's defining contrast (paper §I): high lane
        // utilization and sequential access. Compare its divergence
        // profile against the mer-walk-heavy local assembly kernel.
        let ps = pairs(16, 96, 96, 7);
        let sw = run_alignment_batch(&ps, DeviceId::A100.spec(), &Scoring::default(), true);
        assert!(
            sw.counters.lane_utilization() > 0.5,
            "wavefront DP keeps most lanes busy: {}",
            sw.counters.lane_utilization()
        );

        let ds = workloads::paper_dataset(21, 0.001, 8);
        let la = locassm_kernels_util::profile(&ds);
        assert!(
            sw.counters.lane_utilization() > la,
            "SW utilization {} must beat local assembly {la}",
            sw.counters.lane_utilization()
        );
    }

    /// Tiny indirection so the dev-dependency is only used in this test.
    mod locassm_kernels_util {
        pub fn profile(ds: &locassm_core::io::Dataset) -> f64 {
            // Local assembly's overall utilization (walk drags it down).
            use gpu_specs::DeviceId;
            let cfg = locassm_kernels::GpuConfig::for_device(DeviceId::A100);
            locassm_kernels::run_local_assembly(ds, &cfg).profile.total.lane_utilization()
        }
    }

    #[test]
    fn empty_batch() {
        let r = run_alignment_batch(&[], DeviceId::A100.spec(), &Scoring::default(), true);
        assert!(r.alignments.is_empty());
        assert_eq!(r.counters.warps, 0);
    }
}

//! Hash-table organization as a first-class, swappable dimension.
//!
//! The paper's kernel hard-codes one table shape: a fixed-capacity
//! open-addressed array with linear probing, sized host-side for a 0.66
//! load factor. WarpSpeed-class GPU tables (bucketed power-of-two-choices,
//! iceberg two-level) sustain much higher load factors by restricting
//! where a key may live; this module abstracts the *probe geometry* behind
//! [`TableLayout`] so the three insert dialects and the walk kernel run
//! unchanged on any of them.
//!
//! A layout answers three questions, all as pure functions of the staged
//! [`DeviceJob`] and a key's 32-bit hash:
//!
//! 1. **Geometry** — how many slots does the table get for an insertion
//!    estimate (and how are they partitioned into regions)?
//! 2. **Probe sequence** — which slot does the `idx`-th probe of a key
//!    visit ([`TableLayout::slot_at`])? Insert and lookup share the
//!    sequence, and insert claims the *first empty slot along it*, which
//!    is what lets lookups terminate at the first `EMPTY` they see: if
//!    the key existed, insertion would have stopped at or before that
//!    hole.
//! 3. **Probe bound** — after how many probes is a chain declared wrapped
//!    ([`KernelFault::HashTableFull`](crate::fault::KernelFault))? This
//!    bound also feeds [`walk_budget`](crate::layout::walk_budget), so a
//!    bucketed table's watchdog ceiling is far tighter than a linear
//!    table's.
//!
//! The invariant every layout must honour (ARCHITECTURE.md invariant 8):
//! a layout changes probe order and capacity, **never extensions**. The
//! table is a content-addressed set; the layout only decides where its
//! members live and how long it takes to find them. In-kernel resizing
//! (invariant 10) is the same contract over time: a resize changes
//! capacity and probe cost, never extensions.
//!
//! **Tombstones.** Deletion writes [`TOMBSTONE`] into a slot's key-length
//! word. The rule every layout shares: a tombstone never terminates a
//! probe scan — only [`EMPTY`](crate::layout::EMPTY) does — and insertion
//! claims only the first `EMPTY` along the sequence, never a tombstone.
//! That preserves the first-`EMPTY`-along-fixed-sequence early-exit proof
//! verbatim: a key inserted before any deletion sits at or before the
//! first hole of its sequence, and deleting *another* key merely turns an
//! occupied slot into a tombstone, which scans pass through exactly as
//! they passed through the occupied slot. Tombstones are reclaimed only
//! by the migration pass of an in-kernel resize, which copies live slots
//! into a fresh region and drops tombstones wholesale.

use crate::fault::KernelFault;
use crate::layout::DeviceJob;
use locassm_core::estimate_slots;

/// Deletion sentinel stored in a slot's key-length word. Distinct from
/// [`EMPTY`](crate::layout::EMPTY) (`0`): an `EMPTY` slot terminates a
/// probe scan, a `TOMBSTONE` slot never does. `u32::MAX` can never be a
/// real key length (key bytes live in the staged read buffer, whose spans
/// are far smaller), so the sentinel is unambiguous.
pub const TOMBSTONE: u32 = u32::MAX;

/// Slots per bucket in the bucketed and iceberg front-yard regions — one
/// 384-byte bucket spans three 128-byte cache lines at the 48-byte entry
/// stride, and eight ways is where power-of-two-choices analyses put the
/// knee of the overflow curve.
pub const BUCKET_SLOTS: u32 = 8;

/// Host-side table geometry for one staged job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableGeometry {
    /// Total slot count (every region summed).
    pub slots: u32,
    /// Slots in the front (direct-indexed) region. Equal to `slots` for
    /// single-region layouts; an iceberg table's backyard is
    /// `slots - front_slots`.
    pub front_slots: u32,
}

/// The identity of a table layout — the value that travels on configs,
/// jobs and tuner cache keys. [`TableLayoutKind::as_layout`] resolves it
/// to the shared static implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TableLayoutKind {
    /// The paper's layout: one open-addressed region, linear (or
    /// stride-2) probing, sized for a 0.66 load factor.
    #[default]
    LinearProbe,
    /// Power-of-two-choices buckets: each key may live in one of two
    /// 8-slot buckets, probed first-choice-then-second in a fixed order
    /// (the determinism lookups need). Sized for a 0.75 design load
    /// factor — tighter than linear — because a full bucket pair, not a
    /// full table, is the overflow condition.
    Bucketed,
    /// Iceberg two-level table: a dense direct-indexed front yard (one
    /// 8-slot bucket per key, 0.9 design load factor) plus a linear-probed
    /// backyard that absorbs front-bucket overflow. The backyard's floor
    /// size is real headroom: workloads that overflow a squeezed linear
    /// table complete fault-free here, making the launch layer's
    /// grown-reserve escalation a last resort.
    Iceberg,
}

impl TableLayoutKind {
    /// Every layout, in the fixed order sweeps and reports use.
    pub const ALL: [TableLayoutKind; 3] =
        [TableLayoutKind::LinearProbe, TableLayoutKind::Bucketed, TableLayoutKind::Iceberg];

    /// The shared static implementation behind this kind.
    pub fn as_layout(self) -> &'static dyn TableLayout {
        match self {
            TableLayoutKind::LinearProbe => &LinearLayout,
            TableLayoutKind::Bucketed => &BucketedLayout,
            TableLayoutKind::Iceberg => &IcebergLayout,
        }
    }

    /// Short stable name (report keys, test labels).
    pub fn name(self) -> &'static str {
        self.as_layout().name()
    }
}

impl std::fmt::Display for TableLayoutKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One table organization: geometry + probe sequence + probe bound.
///
/// Implementations are stateless statics; everything is a pure function
/// of the job and the key hash, which keeps every layout bit-reproducible
/// across runs, execution modes and hosts.
pub trait TableLayout: std::fmt::Debug + Sync {
    /// The kind tag this implementation answers to.
    fn kind(&self) -> TableLayoutKind;

    /// Short stable name (report keys, test labels).
    fn name(&self) -> &'static str;

    /// Size the table for `insertions` staged k-mers under a
    /// `slot_reserve` multiplier (the escalation ladder's grown-table
    /// knob). `squeeze > 1` divides the *main* region — the deterministic
    /// "host estimate violated" injection; regions that exist as overflow
    /// headroom (the iceberg backyard) keep their floor so the squeeze
    /// tests real absorption, not a uniformly smaller table.
    ///
    /// An insertion estimate whose slot count cannot be represented in
    /// `u32` is a [`KernelFault::MalformedJob`], not a silent truncation;
    /// an oversized `slot_reserve` clamps below saturation while keeping
    /// the layout's structural guarantee (odd slots for linear, even
    /// bucket counts for the bucketed cascade).
    fn geometry(
        &self,
        insertions: usize,
        slot_reserve: u32,
        squeeze: u32,
    ) -> Result<TableGeometry, KernelFault>;

    /// Occupancy high-water mark for in-kernel resizing: once
    /// `occupied + tombstones + incoming` crosses it mid-insert, the warp
    /// migrates into [`Self::grown_geometry`] before claiming new slots.
    /// Sits below the layout's design load factor so resize triggers
    /// before the probe chains that precede `HashTableFull` get long.
    fn high_water(&self, job: &DeviceJob) -> u32;

    /// The successor geometry an in-kernel resize migrates into (capacity
    /// roughly doubled, clamped below `u32` saturation with the same
    /// structural guarantees as [`Self::geometry`]).
    fn grown_geometry(&self, job: &DeviceJob) -> TableGeometry;

    /// The slot the `idx`-th probe (0-based) of a key with table hash
    /// `hash` visits. Insert and lookup walk `idx = 0, 1, 2, …` in
    /// lockstep; the sequence must be deterministic and must not repeat a
    /// slot before `probe_bound` probes.
    fn slot_at(&self, job: &DeviceJob, hash: u32, idx: u32) -> u32;

    /// Maximum probes before a chain is declared wrapped. The insert
    /// dialects fault (`HashTableFull`) past it; the walk lookup gives up
    /// (key absent); [`walk_budget`](crate::layout::walk_budget) charges
    /// it as the per-step probe ceiling.
    fn probe_bound(&self, job: &DeviceJob) -> u32;

    /// Does advancing past probe `idx` (0-based, the probe just issued)
    /// cross a bucket boundary? The insert dialects issue one warp-wide
    /// ballot at each crossing — the warp-cooperative bucket scan: lanes
    /// vote on whether anyone still needs the next bucket before the warp
    /// jumps together. Single-region layouts never cross.
    fn bucket_crossing(&self, job: &DeviceJob, idx: u32) -> bool {
        let _ = (job, idx);
        false
    }

    /// Is `slot` on the probe sequence of a key hashing to `hash`? The
    /// sanitizer's per-layout invariant scan flags occupied slots whose
    /// stored key could never be found there
    /// ([`simt::SanKind::MisplacedKey`]). Single-region layouts reach
    /// every slot, so the default is vacuously true.
    fn key_reachable(&self, job: &DeviceJob, hash: u32, slot: u32) -> bool {
        let _ = (job, hash, slot);
        true
    }
}

/// Secondary hash: decorrelates the second bucket choice (bucketed) and
/// the backyard start (iceberg) from the primary table hash.
#[inline]
fn mix(hash: u32) -> u32 {
    (hash ^ (hash >> 16)).wrapping_mul(0x9E37_79B1)
}

/// Checked slot-target conversion: an insertion estimate whose slot count
/// does not fit `u32` is a structured fault, never an `as` truncation.
#[inline]
fn slot_target(estimate: u128) -> Result<u32, KernelFault> {
    u32::try_from(estimate).map_err(|_| KernelFault::MalformedJob {
        reason: "insertion estimate overflows the u32 slot space",
    })
}

/// The paper's single-region open-addressed layout.
///
/// **Tombstone rule:** the stride-2 probe sequence passes through a
/// tombstone exactly as it passes through an occupied slot — only `EMPTY`
/// terminates a scan — so the coprime-stride wrap proof (odd slot count)
/// is untouched by deletion.
#[derive(Debug)]
pub struct LinearLayout;

impl LinearLayout {
    /// Largest slot count a linear table may clamp to: odd (the coprime
    /// stride guarantee survives saturation) and below `u32::MAX` so slot
    /// arithmetic never wraps.
    pub const MAX_SLOTS: u32 = (u32::MAX - 2) | 1;
}

impl TableLayout for LinearLayout {
    fn kind(&self) -> TableLayoutKind {
        TableLayoutKind::LinearProbe
    }

    fn name(&self) -> &'static str {
        "linear"
    }

    fn geometry(
        &self,
        insertions: usize,
        slot_reserve: u32,
        squeeze: u32,
    ) -> Result<TableGeometry, KernelFault> {
        // Exactly the historical sizing: estimate × reserve, forced odd
        // (odd tables keep the stride-2 probe coprime with the size). The
        // reserve multiply runs in u64 and clamps *below* saturation: `| 1`
        // on a clamped value keeps the table odd, where `| 1` on a
        // saturating_mul result could not repair an even saturated count.
        let est = slot_target(estimate_slots(insertions) as u128)?;
        let raw = est as u64 * slot_reserve.max(1) as u64;
        let mut slots = (raw.min(Self::MAX_SLOTS as u64) as u32) | 1;
        if squeeze > 1 {
            slots = (slots / squeeze).max(3) | 1;
        }
        debug_assert_eq!(slots % 2, 1, "linear tables must stay odd");
        Ok(TableGeometry { slots, front_slots: slots })
    }

    fn slot_at(&self, job: &DeviceJob, hash: u32, idx: u32) -> u32 {
        // (h + idx·step) mod slots — identical to the historical
        // incremental cursor, computed positionally.
        let step = job.probe.step(job.slots) as u64;
        ((hash as u64 % job.slots as u64 + idx as u64 * step) % job.slots as u64) as u32
    }

    fn probe_bound(&self, job: &DeviceJob) -> u32 {
        // One full wrap — the listings' `hash_val == orig_hash` condition.
        job.slots
    }

    fn high_water(&self, job: &DeviceJob) -> u32 {
        // 87.5%: linear probing degrades sharply past it, and the ⅛
        // headroom keeps a warp-width insert burst from overshooting into
        // the wrap condition before the resize triggers.
        job.slots - job.slots / 8
    }

    fn grown_geometry(&self, job: &DeviceJob) -> TableGeometry {
        let slots = ((job.slots as u64 * 2).min(Self::MAX_SLOTS as u64) as u32) | 1;
        TableGeometry { slots, front_slots: slots }
    }
}

/// Power-of-two-choices bucketed layout with a bounded bucket cascade.
///
/// A key has two hash-derived candidate buckets of opposite parity; its
/// probe sequence interleaves two stride-2 bucket walks starting at them
/// (`b1, b2, b1+2, b2+2, …`), capped at [`Self::CASCADE_BUCKETS`]
/// buckets. The parity split is what makes the sequence collision-free:
/// bucket counts are always even (the geometry guarantees it), so the
/// two walks cover disjoint parity classes and never revisit a bucket.
/// Insertion takes the first empty slot along the sequence, so the
/// overflow condition is a full 8-bucket cascade — rare at the 0.75
/// design load — while lookups keep the first-`EMPTY` early exit.
///
/// **Tombstone rule:** a tombstone occupies a bucket way like a live key:
/// the cascade continues past it (and past the bucket-crossing votes)
/// until the first `EMPTY`. Deleting a way does *not* re-open the bucket
/// for early exit — only migration reclaims it.
#[derive(Debug)]
pub struct BucketedLayout;

impl BucketedLayout {
    /// Buckets a probe sequence may visit before the chain is declared
    /// wrapped: the two choices plus three more stride-2 steps of each.
    pub const CASCADE_BUCKETS: u32 = 8;

    /// Largest bucket count: even (the cascade's parity argument) and
    /// small enough that `buckets * BUCKET_SLOTS` never wraps `u32`.
    pub const MAX_BUCKETS: u32 = (u32::MAX / BUCKET_SLOTS) & !1;

    /// The two candidate buckets of a key: primary from the table hash,
    /// secondary from the mixed hash forced to the opposite parity (so
    /// the interleaved stride-2 walks are disjoint).
    #[inline]
    fn buckets(job: &DeviceJob, hash: u32) -> (u32, u32) {
        let nb = (job.slots / BUCKET_SLOTS).max(1);
        let b1 = hash % nb;
        let mut b2 = mix(hash) % nb;
        if nb > 1 && b2 % 2 == b1 % 2 {
            b2 = (b2 + 1) % nb;
        }
        (b1, b2)
    }

    /// The bucket the `visit`-th bucket of the cascade lands on.
    #[inline]
    fn cascade_bucket(job: &DeviceJob, hash: u32, visit: u32) -> u32 {
        let nb = (job.slots / BUCKET_SLOTS).max(1);
        let (b1, b2) = Self::buckets(job, hash);
        let base = if visit % 2 == 0 { b1 } else { b2 };
        (base + (visit / 2) * 2) % nb
    }
}

impl TableLayout for BucketedLayout {
    fn kind(&self) -> TableLayoutKind {
        TableLayoutKind::Bucketed
    }

    fn name(&self) -> &'static str {
        "bucketed"
    }

    fn geometry(
        &self,
        insertions: usize,
        slot_reserve: u32,
        squeeze: u32,
    ) -> Result<TableGeometry, KernelFault> {
        // 0.75 design load factor (vs linear's 0.66): overflow needs a
        // full 8-bucket cascade, which two parity-split choices keep rare
        // well past the single-region knee. The bucket count is forced
        // even so the cascade's parity argument holds (see the type doc),
        // and the reserve multiply clamps to an *even* ceiling so a
        // saturated table keeps both the parity and `×8` non-overflow
        // guarantees.
        let target = slot_target((insertions as u128 * 4).div_ceil(3))?.max(1);
        let raw = target.div_ceil(BUCKET_SLOTS) as u64 * slot_reserve.max(1) as u64;
        let mut buckets = (raw.min(Self::MAX_BUCKETS as u64) as u32).max(4);
        if squeeze > 1 {
            buckets = (buckets / squeeze).max(2);
        }
        buckets += buckets % 2;
        debug_assert_eq!(buckets % 2, 0, "bucket counts must stay even");
        Ok(TableGeometry { slots: buckets * BUCKET_SLOTS, front_slots: buckets * BUCKET_SLOTS })
    }

    fn slot_at(&self, job: &DeviceJob, hash: u32, idx: u32) -> u32 {
        // Total in idx (the cursor advance past the final probe still
        // computes a valid slot): past the cascade the sequence wraps
        // around the table's bucket interleave.
        let nb = (job.slots / BUCKET_SLOTS).max(1);
        let visit = (idx / BUCKET_SLOTS) % nb;
        Self::cascade_bucket(job, hash, visit) * BUCKET_SLOTS + idx % BUCKET_SLOTS
    }

    fn probe_bound(&self, job: &DeviceJob) -> u32 {
        // The full cascade, then the chain is wrapped. (A table smaller
        // than the cascade degenerates to a scan of every bucket.)
        (Self::CASCADE_BUCKETS * BUCKET_SLOTS).min(job.slots)
    }

    fn bucket_crossing(&self, job: &DeviceJob, idx: u32) -> bool {
        // A crossing at each bucket boundary the cascade passes: the
        // warp votes before jumping buckets together.
        idx + 1 < self.probe_bound(job) && (idx + 1) % BUCKET_SLOTS == 0
    }

    fn key_reachable(&self, job: &DeviceJob, hash: u32, slot: u32) -> bool {
        let nb = (job.slots / BUCKET_SLOTS).max(1);
        let b = slot / BUCKET_SLOTS;
        (0..Self::CASCADE_BUCKETS.min(nb))
            .any(|visit| Self::cascade_bucket(job, hash, visit) == b)
    }

    fn high_water(&self, job: &DeviceJob) -> u32 {
        // The 0.75 design load *is* the cliff for a bounded cascade, so
        // the resize trigger sits at it rather than above it.
        job.slots - job.slots / 4
    }

    fn grown_geometry(&self, job: &DeviceJob) -> TableGeometry {
        let buckets = (job.slots / BUCKET_SLOTS).max(2);
        let grown = ((buckets as u64 * 2).min(Self::MAX_BUCKETS as u64) as u32) & !1;
        let grown = grown.max(2);
        TableGeometry { slots: grown * BUCKET_SLOTS, front_slots: grown * BUCKET_SLOTS }
    }
}

/// Iceberg-style two-level layout: dense front yard + backyard overflow.
///
/// **Tombstone rule:** a tombstoned front-bucket way stays claimed — the
/// probe sequence still exhausts all eight front ways before spilling, so
/// the one bucket-crossing vote fires at the same probe index whether or
/// not deletions happened. The backyard's linear scan passes through
/// tombstones like any occupied slot; only `EMPTY` ends it.
#[derive(Debug)]
pub struct IcebergLayout;

impl IcebergLayout {
    /// Backyard floor: headroom that exists even for tiny tables, so a
    /// squeezed front yard still has somewhere to overflow to.
    const BACKYARD_FLOOR: u32 = 64;

    /// Largest front-yard bucket count: `front + backyard` (9/8 of the
    /// front) must stay below `u32::MAX`.
    pub const MAX_BUCKETS: u32 = (u32::MAX / 9) & !1;

    #[inline]
    fn backyard_len(job: &DeviceJob) -> u32 {
        job.slots - job.front_slots
    }
}

impl TableLayout for IcebergLayout {
    fn kind(&self) -> TableLayoutKind {
        TableLayoutKind::Iceberg
    }

    fn name(&self) -> &'static str {
        "iceberg"
    }

    fn geometry(
        &self,
        insertions: usize,
        slot_reserve: u32,
        squeeze: u32,
    ) -> Result<TableGeometry, KernelFault> {
        // Front yard at a 0.9 design load factor — the densest region of
        // the three layouts — with a backyard of ⅛ the front (floor 64)
        // absorbing bucket overflow. The squeeze divides only the front:
        // the backyard *is* the headroom being tested. The reserve clamp
        // leaves room for the backyard (9/8 of the front fits `u32`).
        let target = slot_target((insertions as u128 * 10).div_ceil(9))?.max(1);
        let raw = target.div_ceil(BUCKET_SLOTS) as u64 * slot_reserve.max(1) as u64;
        let mut buckets = (raw.min(Self::MAX_BUCKETS as u64) as u32).max(4);
        if squeeze > 1 {
            buckets = (buckets / squeeze).max(2);
        }
        let front = buckets * BUCKET_SLOTS;
        let back = (front / 8).max(Self::BACKYARD_FLOOR);
        Ok(TableGeometry { slots: front + back, front_slots: front })
    }

    fn slot_at(&self, job: &DeviceJob, hash: u32, idx: u32) -> u32 {
        if idx < BUCKET_SLOTS {
            let fb = (job.front_slots / BUCKET_SLOTS).max(1);
            (hash % fb) * BUCKET_SLOTS + idx
        } else {
            let back = Self::backyard_len(job).max(1);
            let start = mix(hash) % back;
            job.front_slots + (start + (idx - BUCKET_SLOTS)) % back
        }
    }

    fn probe_bound(&self, job: &DeviceJob) -> u32 {
        // The front bucket plus one full wrap of the backyard.
        BUCKET_SLOTS + Self::backyard_len(job)
    }

    fn bucket_crossing(&self, _job: &DeviceJob, idx: u32) -> bool {
        // One crossing: front bucket exhausted, warp votes before the
        // spill into the backyard.
        idx + 1 == BUCKET_SLOTS
    }

    fn key_reachable(&self, job: &DeviceJob, hash: u32, slot: u32) -> bool {
        if slot < job.front_slots {
            let fb = (job.front_slots / BUCKET_SLOTS).max(1);
            slot / BUCKET_SLOTS == hash % fb
        } else {
            // Every backyard slot is on every key's (wrapping) overflow
            // sequence.
            true
        }
    }

    fn high_water(&self, job: &DeviceJob) -> u32 {
        // ⅛ headroom over the whole table: the backyard absorbs overflow
        // well past the front's 0.9 design load, so the trigger can sit
        // as high as linear's.
        job.slots - job.slots / 8
    }

    fn grown_geometry(&self, job: &DeviceJob) -> TableGeometry {
        // Double the front yard and re-derive the backyard, exactly as a
        // fresh geometry would.
        let buckets = (job.front_slots / BUCKET_SLOTS).max(2);
        let grown = ((buckets as u64 * 2).min(Self::MAX_BUCKETS as u64) as u32).max(2);
        let front = grown * BUCKET_SLOTS;
        let back = (front / 8).max(Self::BACKYARD_FLOOR);
        TableGeometry { slots: front + back, front_slots: front }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::DeviceJob;
    use locassm_core::walk::WalkConfig;
    use locassm_core::Read;
    use memhier::HierarchyConfig;
    use simt::Warp;

    fn staged(kind: TableLayoutKind) -> (Warp, DeviceJob) {
        let mut warp = Warp::new(32, HierarchyConfig::tiny());
        let reads = vec![Read::with_uniform_qual(b"ACGTACGTACGTACGTACGT", b'I')];
        let job = DeviceJob::stage_with_layout(
            &mut warp,
            b"ACGTACGTACGT",
            &reads,
            5,
            WalkConfig::default(),
            1,
            kind,
        )
        .unwrap();
        (warp, job)
    }

    #[test]
    fn linear_geometry_matches_the_historical_sizing() {
        let g = LinearLayout.geometry(14, 1, 0).unwrap();
        assert_eq!(g.slots, (estimate_slots(14) as u32) | 1);
        assert_eq!(g.front_slots, g.slots);
        let grown = LinearLayout.geometry(14, 3, 0).unwrap();
        assert!(grown.slots > g.slots);
        assert_eq!(grown.slots % 2, 1, "grown linear tables stay odd");
    }

    #[test]
    fn huge_insertion_estimates_fault_instead_of_truncating() {
        // u32::MAX insertions push every layout's slot target past u32:
        // the old `as u32` cast silently truncated; now it's a structured
        // MalformedJob the launch layer can report.
        let huge = u32::MAX as usize;
        for kind in TableLayoutKind::ALL {
            let got = kind.as_layout().geometry(huge, 1, 0);
            assert!(
                matches!(got, Err(crate::fault::KernelFault::MalformedJob { .. })),
                "{kind}: expected MalformedJob, got {got:?}"
            );
        }
        // Just below the boundary the linear estimate still fits.
        let fits = (u32::MAX as f64 * 0.6) as usize;
        assert!(LinearLayout.geometry(fits, 1, 0).is_ok());
    }

    #[test]
    fn saturated_reserves_clamp_below_saturation_with_structure_intact() {
        // A pathological slot_reserve used to saturating_mul to u32::MAX
        // and then `| 1` could not repair the structure. The clamp keeps
        // linear odd, bucketed an even bucket-multiple, and iceberg's
        // front+backyard sum inside u32.
        let lin = LinearLayout.geometry(1000, u32::MAX, 0).unwrap();
        assert_eq!(lin.slots % 2, 1, "saturated linear tables stay odd");
        assert_eq!(lin.slots, LinearLayout::MAX_SLOTS);

        let buc = BucketedLayout.geometry(1000, u32::MAX, 0).unwrap();
        assert_eq!(buc.slots % BUCKET_SLOTS, 0);
        assert_eq!((buc.slots / BUCKET_SLOTS) % 2, 0, "bucket count stays even");

        let ice = IcebergLayout.geometry(1000, u32::MAX, 0).unwrap();
        assert!(ice.front_slots < ice.slots, "backyard survives saturation");
        assert_eq!(ice.front_slots % BUCKET_SLOTS, 0);
    }

    #[test]
    fn high_water_sits_below_capacity_and_growth_doubles() {
        for kind in TableLayoutKind::ALL {
            let (_, job) = staged(kind);
            let lay = kind.as_layout();
            let hw = lay.high_water(&job);
            assert!(hw < job.slots, "{kind}: high water {hw} under slots {}", job.slots);
            assert!(hw > job.slots / 2, "{kind}: trigger is in the upper half");
            let g = lay.grown_geometry(&job);
            assert!(g.slots > job.slots, "{kind}: growth adds capacity");
            assert!(g.slots <= job.slots * 3, "{kind}: growth is bounded");
        }
        let (_, lin) = staged(TableLayoutKind::LinearProbe);
        let g = TableLayoutKind::LinearProbe.as_layout().grown_geometry(&lin);
        assert_eq!(g.slots % 2, 1, "grown linear tables stay odd");
        let (_, ice) = staged(TableLayoutKind::Iceberg);
        let g = TableLayoutKind::Iceberg.as_layout().grown_geometry(&ice);
        assert!(g.slots - g.front_slots >= 64, "grown iceberg keeps the backyard floor");
    }

    #[test]
    fn linear_sequence_is_the_incremental_cursor() {
        let (_, job) = staged(TableLayoutKind::LinearProbe);
        let lay = TableLayoutKind::LinearProbe.as_layout();
        let h = 0xdead_beefu32;
        let mut s = h % job.slots;
        for idx in 0..job.slots {
            assert_eq!(lay.slot_at(&job, h, idx), s, "idx {idx}");
            s = (s + job.probe.step(job.slots)) % job.slots;
        }
        assert_eq!(lay.probe_bound(&job), job.slots);
        assert!(!lay.bucket_crossing(&job, 0));
        assert!(lay.key_reachable(&job, h, job.slots - 1));
    }

    #[test]
    fn every_layout_visits_distinct_slots_within_its_bound() {
        for kind in TableLayoutKind::ALL {
            let (_, job) = staged(kind);
            let lay = kind.as_layout();
            for h in [0u32, 7, 0x1234_5678, u32::MAX] {
                let bound = lay.probe_bound(&job);
                let mut seen = std::collections::HashSet::new();
                for idx in 0..bound {
                    let s = lay.slot_at(&job, h, idx);
                    assert!(s < job.slots, "{kind}: slot {s} out of range");
                    assert!(seen.insert(s), "{kind}: hash {h:#x} revisits slot {s} before its bound");
                    assert!(
                        lay.key_reachable(&job, h, s),
                        "{kind}: sequence slot {s} must be self-reachable"
                    );
                }
            }
        }
    }

    #[test]
    fn bucketed_probes_two_distinct_buckets() {
        let (_, job) = staged(TableLayoutKind::Bucketed);
        assert_eq!(job.slots % BUCKET_SLOTS, 0, "bucketed tables are bucket-multiples");
        let lay = TableLayoutKind::Bucketed.as_layout();
        for h in [0u32, 1, 0xffff_0000, 31337] {
            let (b1, b2) = BucketedLayout::buckets(&job, h);
            assert_ne!(b1, b2, "second choice must be a distinct bucket");
            for idx in 0..BUCKET_SLOTS {
                assert_eq!(lay.slot_at(&job, h, idx) / BUCKET_SLOTS, b1);
                assert_eq!(lay.slot_at(&job, h, BUCKET_SLOTS + idx) / BUCKET_SLOTS, b2);
            }
            assert_ne!(b1 % 2, b2 % 2, "choices sit on opposite parities");
        }
        // On a table wider than the cascade, buckets past it are off the
        // key's probe sequence (reachability is non-vacuous).
        let mut big = job.clone();
        big.slots = 20 * BUCKET_SLOTS;
        big.front_slots = big.slots;
        for h in [0u32, 1, 0xffff_0000, 31337] {
            let nb = big.slots / BUCKET_SLOTS;
            let reachable: std::collections::HashSet<u32> =
                (0..BucketedLayout::CASCADE_BUCKETS * BUCKET_SLOTS)
                    .map(|idx| lay.slot_at(&big, h, idx) / BUCKET_SLOTS)
                    .collect();
            assert_eq!(reachable.len() as u32, BucketedLayout::CASCADE_BUCKETS);
            let other = (0..nb)
                .find(|b| !reachable.contains(b))
                .expect("a 20-bucket table has buckets past the cascade");
            assert!(!lay.key_reachable(&big, h, other * BUCKET_SLOTS + 3));
        }
        assert!(lay.bucket_crossing(&job, BUCKET_SLOTS - 1));
        assert!(!lay.bucket_crossing(&job, BUCKET_SLOTS));
    }

    #[test]
    fn iceberg_spills_into_the_backyard() {
        let (_, job) = staged(TableLayoutKind::Iceberg);
        assert!(job.front_slots < job.slots, "iceberg carries a backyard");
        assert!(job.slots - job.front_slots >= 64, "backyard floor is real headroom");
        let lay = TableLayoutKind::Iceberg.as_layout();
        let h = 0xcafe_babeu32;
        for idx in 0..BUCKET_SLOTS {
            assert!(lay.slot_at(&job, h, idx) < job.front_slots, "front first");
        }
        let back = job.slots - job.front_slots;
        for idx in BUCKET_SLOTS..(BUCKET_SLOTS + back) {
            let s = lay.slot_at(&job, h, idx);
            assert!(s >= job.front_slots, "overflow lands in the backyard");
        }
        assert_eq!(lay.probe_bound(&job), BUCKET_SLOTS + back);
    }

    #[test]
    fn tighter_layouts_allocate_fewer_slots_than_linear() {
        // The WarpSpeed premise: bucketed/iceberg run the same workload in
        // a smaller table (higher sustained load factor). The tier-1 gate
        // in tests/layouts.rs checks the fault-free half of the claim.
        // Iceberg is exempt at toy sizes: its 64-slot backyard floor
        // dominates a ~150-slot table, and that floor is the headroom the
        // escalation test depends on.
        for insertions in [100usize, 1000, 50_000] {
            let lin = LinearLayout.geometry(insertions, 1, 0).unwrap().slots;
            let buc = BucketedLayout.geometry(insertions, 1, 0).unwrap().slots;
            let ice = IcebergLayout.geometry(insertions, 1, 0).unwrap().slots;
            assert!(buc < lin, "insertions {insertions}: bucketed {buc} vs linear {lin}");
            if insertions >= 1000 {
                assert!(ice < lin, "insertions {insertions}: iceberg {ice} vs linear {lin}");
            }
            assert!(buc as usize >= insertions, "capacity still dominates insertions");
            assert!(ice as usize >= insertions, "capacity still dominates insertions");
        }
    }

    #[test]
    fn squeeze_shrinks_the_main_region_only() {
        let lin = LinearLayout.geometry(1000, 1, 4).unwrap();
        assert!(lin.slots < LinearLayout.geometry(1000, 1, 0).unwrap().slots / 3);
        let ice_full = IcebergLayout.geometry(1000, 1, 0).unwrap();
        let ice = IcebergLayout.geometry(1000, 1, 4).unwrap();
        assert!(ice.front_slots < ice_full.front_slots / 3, "front shrinks");
        assert!(
            ice.slots - ice.front_slots >= 64,
            "the backyard keeps its floor under a squeeze"
        );
    }
}

//! Invariants of the simulated profiles that the paper's analysis relies
//! on being internally consistent.

use locassm::kernels::{run_local_assembly, GpuConfig};
use locassm::specs::{effective_hierarchy, DeviceId};
use locassm::workloads::paper_dataset;

#[test]
fn phases_sum_to_total() {
    let ds = paper_dataset(21, 0.003, 31);
    let p = run_local_assembly(&ds, &GpuConfig::for_device(DeviceId::A100)).profile;
    let c = &p.phases.construct;
    let w = &p.phases.walk;
    assert_eq!(c.int_instructions + w.int_instructions, p.total.int_instructions);
    assert_eq!(c.warp_instructions + w.warp_instructions, p.total.warp_instructions);
    assert_eq!(
        c.mem.hbm_bytes() + w.mem.hbm_bytes(),
        p.total.mem.hbm_bytes(),
        "phase traffic must partition total traffic"
    );
    assert!(c.int_instructions > 0 && w.int_instructions > 0);
}

#[test]
fn construction_dominates_lane_work_at_small_k() {
    // k=21 has 10M insertions vs ~0.7M walk steps. Per *warp instruction*
    // the single-lane walk is disproportionately expensive (predication),
    // but the useful lane-ops are dominated by the warp-parallel
    // construction phase.
    let ds = paper_dataset(21, 0.003, 32);
    let p = run_local_assembly(&ds, &GpuConfig::for_device(DeviceId::A100)).profile;
    assert!(p.phases.construct.lane_int_ops > p.phases.walk.lane_int_ops);
}

#[test]
fn walk_share_grows_with_k() {
    // Larger k: fewer insertions, longer extensions — the walk's share of
    // integer work must grow (the paper's predication discussion).
    let share = |k: usize| {
        let ds = paper_dataset(k, 0.01, 33);
        let p = run_local_assembly(&ds, &GpuConfig::for_device(DeviceId::A100)).profile;
        p.phases.walk.int_instructions as f64 / p.total.int_instructions as f64
    };
    assert!(share(77) > share(21));
}

#[test]
fn profile_is_deterministic() {
    let ds = paper_dataset(33, 0.002, 34);
    let cfg = GpuConfig::for_device(DeviceId::Mi250x);
    let a = run_local_assembly(&ds, &cfg).profile;
    let b = run_local_assembly(&ds, &cfg).profile;
    assert_eq!(a.total, b.total);
    assert_eq!(a.seconds(), b.seconds());
}

#[test]
fn intops_equal_instructions_times_width() {
    let ds = paper_dataset(33, 0.002, 35);
    for dev in DeviceId::ALL {
        let p = run_local_assembly(&ds, &GpuConfig::for_device(dev)).profile;
        assert_eq!(
            p.intops(),
            p.total.int_instructions * dev.spec().warp_width as u64,
            "{dev}"
        );
    }
}

#[test]
fn effective_hierarchy_shrinks_with_occupancy() {
    for dev in DeviceId::ALL {
        let spec = dev.spec();
        let small = effective_hierarchy(spec, 4);
        let large = effective_hierarchy(spec, 1 << 20);
        assert!(small.l2.capacity_bytes >= large.l2.capacity_bytes, "{dev}");
        assert!(small.l1.capacity_bytes >= large.l1.capacity_bytes, "{dev}");
    }
}

#[test]
fn amd_l2_is_non_sectored_others_sectored() {
    assert!(!effective_hierarchy(DeviceId::Mi250x.spec(), 1000).l2.sectored);
    assert!(effective_hierarchy(DeviceId::A100.spec(), 1000).l2.sectored);
    assert!(effective_hierarchy(DeviceId::Max1550.spec(), 1000).l2.sectored);
}

#[test]
fn batch_times_are_positive_and_sum() {
    let ds = paper_dataset(55, 0.005, 36);
    let p = run_local_assembly(&ds, &GpuConfig::for_device(DeviceId::Max1550)).profile;
    let sum: f64 = p.batches.iter().map(|b| b.time.seconds).sum();
    assert!(sum > 0.0);
    assert!((p.seconds() - sum).abs() < 1e-12);
    for b in &p.batches {
        assert!(b.warps > 0);
        assert!(b.time.seconds > 0.0);
    }
}

#[test]
fn lane_utilization_in_unit_interval() {
    let ds = paper_dataset(21, 0.002, 37);
    for dev in DeviceId::ALL {
        let p = run_local_assembly(&ds, &GpuConfig::for_device(dev)).profile;
        let u = p.total.lane_utilization();
        assert!(u > 0.0 && u <= 1.0, "{dev}: {u}");
    }
}

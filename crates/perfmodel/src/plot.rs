//! ASCII plots: log-log scatter (roofline, correlation) and bar charts
//! (kernel-time comparison) for the repro harness.

/// A labeled point series.
#[derive(Debug, Clone)]
pub struct Series {
    pub label: String,
    /// Marker character used in the plot.
    pub marker: char,
    pub points: Vec<(f64, f64)>,
}

/// A log-log ASCII scatter plot.
#[derive(Debug, Clone)]
pub struct LogLogScatter {
    pub title: String,
    pub x_label: String,
    pub y_label: String,
    pub series: Vec<Series>,
    pub width: usize,
    pub height: usize,
    /// Draw the y = x diagonal (for the Fig. 7/8 correlation plots).
    pub diagonal: bool,
}

impl LogLogScatter {
    pub fn new(title: impl Into<String>, x_label: impl Into<String>, y_label: impl Into<String>) -> Self {
        LogLogScatter {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            width: 64,
            height: 20,
            diagonal: false,
        }
    }

    pub fn series(&mut self, s: Series) -> &mut Self {
        self.series.push(s);
        self
    }

    pub fn render(&self) -> String {
        let pts: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .filter(|(x, y)| *x > 0.0 && *y > 0.0 && x.is_finite() && y.is_finite())
            .collect();
        if pts.is_empty() {
            return format!("## {}\n(no finite points)\n", self.title);
        }
        let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
        for (x, y) in &pts {
            x0 = x0.min(*x);
            x1 = x1.max(*x);
            y0 = y0.min(*y);
            y1 = y1.max(*y);
        }
        if self.diagonal {
            // Make the plane square so the diagonal is meaningful.
            x0 = x0.min(y0);
            y0 = x0;
            x1 = x1.max(y1);
            y1 = x1;
        }
        // Pad a decade fraction on each side.
        let (lx0, lx1) = (x0.log10() - 0.1, x1.log10() + 0.1);
        let (ly0, ly1) = (y0.log10() - 0.1, y1.log10() + 0.1);

        let mut grid = vec![vec![' '; self.width]; self.height];
        let to_cell = |x: f64, y: f64| -> (usize, usize) {
            let cx = ((x.log10() - lx0) / (lx1 - lx0) * (self.width - 1) as f64).round();
            let cy = ((y.log10() - ly0) / (ly1 - ly0) * (self.height - 1) as f64).round();
            (
                (cx as usize).min(self.width - 1),
                self.height - 1 - (cy as usize).min(self.height - 1),
            )
        };
        if self.diagonal {
            for i in 0..self.width.min(self.height * 3) {
                let t = i as f64 / (self.width - 1) as f64;
                let lx = lx0 + t * (lx1 - lx0);
                let (cx, cy) = to_cell(10f64.powf(lx), 10f64.powf(lx));
                grid[cy][cx] = '.';
            }
        }
        for s in &self.series {
            for &(x, y) in &s.points {
                if x > 0.0 && y > 0.0 && x.is_finite() && y.is_finite() {
                    let (cx, cy) = to_cell(x, y);
                    grid[cy][cx] = s.marker;
                }
            }
        }

        let mut out = format!("## {}\n", self.title);
        out.push_str(&format!(
            "y: {} [{:.2e} .. {:.2e}] (log)\n",
            self.y_label,
            10f64.powf(ly0),
            10f64.powf(ly1)
        ));
        for row in &grid {
            out.push('|');
            out.extend(row.iter());
            out.push('\n');
        }
        out.push('+');
        out.push_str(&"-".repeat(self.width));
        out.push('\n');
        out.push_str(&format!(
            "x: {} [{:.2e} .. {:.2e}] (log)   ",
            self.x_label,
            10f64.powf(lx0),
            10f64.powf(lx1)
        ));
        for s in &self.series {
            out.push_str(&format!("{}={} ", s.marker, s.label));
        }
        out.push('\n');
        out
    }
}

/// A horizontal bar chart with grouped bars (Fig. 5 style).
#[derive(Debug, Clone)]
pub struct BarChart {
    pub title: String,
    pub unit: String,
    /// (label, value) pairs.
    pub bars: Vec<(String, f64)>,
    pub width: usize,
}

impl BarChart {
    pub fn new(title: impl Into<String>, unit: impl Into<String>) -> Self {
        BarChart { title: title.into(), unit: unit.into(), bars: Vec::new(), width: 50 }
    }

    pub fn bar(&mut self, label: impl Into<String>, value: f64) -> &mut Self {
        self.bars.push((label.into(), value));
        self
    }

    pub fn render(&self) -> String {
        let max = self.bars.iter().map(|(_, v)| *v).fold(0.0, f64::max);
        let lw = self.bars.iter().map(|(l, _)| l.chars().count()).max().unwrap_or(0);
        let mut out = format!("## {}\n", self.title);
        for (label, v) in &self.bars {
            let n = if max > 0.0 { (v / max * self.width as f64).round() as usize } else { 0 };
            out.push_str(&format!(
                "{label:<lw$} |{} {v:.6} {}\n",
                "#".repeat(n),
                self.unit
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_renders_points_and_legend() {
        let mut p = LogLogScatter::new("T", "x", "y");
        p.series(Series {
            label: "a".into(),
            marker: 'o',
            points: vec![(1.0, 10.0), (100.0, 1000.0)],
        });
        let s = p.render();
        assert!(s.contains("## T"));
        assert!(s.contains('o'));
        assert!(s.contains("o=a"));
    }

    #[test]
    fn scatter_handles_empty_and_nonfinite() {
        let mut p = LogLogScatter::new("E", "x", "y");
        p.series(Series { label: "n".into(), marker: 'x', points: vec![(0.0, 1.0), (f64::NAN, 2.0)] });
        assert!(p.render().contains("no finite points"));
    }

    #[test]
    fn diagonal_plot_is_square() {
        let mut p = LogLogScatter::new("D", "x", "y");
        p.diagonal = true;
        p.series(Series { label: "s".into(), marker: '*', points: vec![(1.0, 100.0)] });
        let s = p.render();
        assert!(s.contains('.'), "diagonal dots expected");
    }

    #[test]
    fn bars_scale_to_max() {
        let mut b = BarChart::new("B", "s");
        b.bar("one", 1.0).bar("two", 2.0);
        let s = b.render();
        let ones = s.lines().find(|l| l.starts_with("one")).unwrap();
        let twos = s.lines().find(|l| l.starts_with("two")).unwrap();
        let count = |l: &str| l.chars().filter(|&c| c == '#').count();
        assert_eq!(count(twos), 2 * count(ones));
    }

    #[test]
    fn zero_bars_render() {
        let mut b = BarChart::new("Z", "s");
        b.bar("z", 0.0);
        assert!(b.render().contains("0.000000"));
    }
}

//! DNA alphabet utilities.
//!
//! Sequences are plain ASCII byte slices over `{A, C, G, T}` (the kernel
//! operates on raw `char*` strings on the GPU, so we keep the same
//! representation rather than 2-bit packing it — byte-per-base is also what
//! the paper's byte-count model assumes: a k-mer read costs `k` bytes).

/// The four nucleotides in index order (`A`=0, `C`=1, `G`=2, `T`=3).
pub const BASES: [u8; 4] = [b'A', b'C', b'G', b'T'];

/// Map a nucleotide character to its index. Panics on non-ACGT input
/// (datasets are validated at the boundary — see [`valid_seq`]).
#[inline]
pub fn base_index(b: u8) -> usize {
    match b {
        b'A' => 0,
        b'C' => 1,
        b'G' => 2,
        b'T' => 3,
        _ => panic!("invalid nucleotide {:?}", b as char),
    }
}

/// Map an index back to its nucleotide character.
#[inline]
pub fn index_base(i: usize) -> u8 {
    BASES[i]
}

/// Watson–Crick complement of one base.
#[inline]
pub fn complement(b: u8) -> u8 {
    match b {
        b'A' => b'T',
        b'T' => b'A',
        b'C' => b'G',
        b'G' => b'C',
        _ => panic!("invalid nucleotide {:?}", b as char),
    }
}

/// Reverse complement of a sequence.
pub fn revcomp(seq: &[u8]) -> Vec<u8> {
    seq.iter().rev().map(|&b| complement(b)).collect()
}

/// Is the sequence entirely A/C/G/T?
pub fn valid_seq(seq: &[u8]) -> bool {
    seq.iter().all(|&b| matches!(b, b'A' | b'C' | b'G' | b'T'))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_roundtrip() {
        for (i, &b) in BASES.iter().enumerate() {
            assert_eq!(base_index(b), i);
            assert_eq!(index_base(i), b);
        }
    }

    #[test]
    fn complement_is_involution() {
        for &b in &BASES {
            assert_eq!(complement(complement(b)), b);
        }
    }

    #[test]
    fn revcomp_known() {
        assert_eq!(revcomp(b"ACGT"), b"ACGT"); // palindromic
        assert_eq!(revcomp(b"AACG"), b"CGTT");
        assert_eq!(revcomp(b""), b"");
    }

    #[test]
    fn revcomp_is_involution() {
        let s = b"AGCCCTCCCG";
        assert_eq!(revcomp(&revcomp(s)), s);
    }

    #[test]
    fn validity() {
        assert!(valid_seq(b"ACGTACGT"));
        assert!(valid_seq(b""));
        assert!(!valid_seq(b"ACGN"));
        assert!(!valid_seq(b"acgt"), "lower case is invalid");
    }

    #[test]
    #[should_panic(expected = "invalid nucleotide")]
    fn bad_base_panics() {
        base_index(b'N');
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn dna(len: usize) -> impl Strategy<Value = Vec<u8>> {
        proptest::collection::vec(proptest::sample::select(BASES.to_vec()), 0..len)
    }

    proptest! {
        #[test]
        fn revcomp_involution(s in dna(200)) {
            prop_assert_eq!(revcomp(&revcomp(&s)), s);
        }

        #[test]
        fn revcomp_preserves_length_and_validity(s in dna(200)) {
            let rc = revcomp(&s);
            prop_assert_eq!(rc.len(), s.len());
            prop_assert!(valid_seq(&rc));
        }
    }
}

//! CSV export of analysis data.
//!
//! The repro harness prints ASCII tables/plots; for external plotting
//! (matplotlib, gnuplot, …) it can also emit the underlying data as CSV
//! via `repro --csv <dir>`. The writer is deliberately minimal: RFC-4180
//! quoting, no dependencies.

use std::fmt::Write as _;

/// A CSV document under construction.
#[derive(Debug, Clone, Default)]
pub struct Csv {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

/// Quote a field per RFC 4180 when needed.
fn quote(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

impl Csv {
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Csv { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a row; width must match the header.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "CSV row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Render the document.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let write_row = |out: &mut String, row: &[String]| {
            let line: Vec<String> = row.iter().map(|c| quote(c)).collect();
            let _ = writeln!(out, "{}", line.join(","));
        };
        write_row(&mut out, &self.header);
        for r in &self.rows {
            write_row(&mut out, r);
        }
        out
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }
}

/// Format a float with full round-trip precision for CSV cells.
pub fn num(v: f64) -> String {
    format!("{v}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_and_rows() {
        let mut c = Csv::new(["k", "device", "seconds"]);
        c.row(["21", "NVIDIA", "0.19"]);
        c.row(["33", "AMD", "0.25"]);
        assert_eq!(c.render(), "k,device,seconds\n21,NVIDIA,0.19\n33,AMD,0.25\n");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn quotes_special_fields() {
        let mut c = Csv::new(["a", "b"]);
        c.row(["plain", "has,comma"]);
        c.row(["has\"quote", "has\nnewline"]);
        let s = c.render();
        assert!(s.contains("\"has,comma\""));
        assert!(s.contains("\"has\"\"quote\""));
        assert!(s.contains("\"has\nnewline\""));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn ragged_rows_rejected() {
        Csv::new(["a", "b"]).row(["only"]);
    }

    #[test]
    fn parse_roundtrip_simple() {
        // Fields without specials parse back by naive split.
        let mut c = Csv::new(["x", "y"]);
        c.row([num(1.5), num(2.25)]);
        let line = c.render().lines().nth(1).unwrap().to_string();
        let parts: Vec<f64> = line.split(',').map(|p| p.parse().unwrap()).collect();
        assert_eq!(parts, vec![1.5, 2.25]);
    }
}

//! Contigs and their aligned boundary reads.

use crate::dna::valid_seq;
use crate::read::Read;
use serde::{Deserialize, Serialize};

/// One unit of local assembly work: a contig plus the reads that align to
/// each of its ends (the MetaHipMer alignment phase localizes these on the
/// same node; the GPU kernel assigns one `ContigJob` per warp).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContigJob {
    pub id: u32,
    pub contig: Vec<u8>,
    /// Reads aligned to the right (3') end, oriented forward.
    pub right_reads: Vec<Read>,
    /// Reads aligned to the left (5') end, oriented forward.
    pub left_reads: Vec<Read>,
}

impl ContigJob {
    pub fn new(id: u32, contig: Vec<u8>, right_reads: Vec<Read>, left_reads: Vec<Read>) -> Self {
        assert!(valid_seq(&contig), "contig contains non-ACGT characters");
        assert!(!contig.is_empty(), "contig must be non-empty");
        ContigJob { id, contig, right_reads, left_reads }
    }

    /// Total reads assigned to this contig (the binning key, Fig. 3).
    pub fn read_count(&self) -> usize {
        self.right_reads.len() + self.left_reads.len()
    }

    /// Total k-mer insertions this job performs for a given k
    /// (both hash tables).
    pub fn insertion_count(&self, k: usize) -> usize {
        self.right_reads
            .iter()
            .chain(self.left_reads.iter())
            .map(|r| r.kmer_count(k))
            .sum()
    }

    /// The job for extending the *left* end, transformed into a right
    /// extension problem: reverse-complement the contig and the left reads.
    /// (`left_extension(c) = revcomp(right_extension(revcomp(c)))`.)
    pub fn left_as_right(&self) -> ContigJob {
        ContigJob {
            id: self.id,
            contig: crate::dna::revcomp(&self.contig),
            right_reads: self.left_reads.iter().map(Read::revcomp).collect(),
            left_reads: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> ContigJob {
        ContigJob::new(
            7,
            b"ACGTACGTAC".to_vec(),
            vec![Read::with_uniform_qual(b"GTACGTACGT", b'I')],
            vec![
                Read::with_uniform_qual(b"TTACGTACG", b'I'),
                Read::with_uniform_qual(b"CCACGTAC", b'#'),
            ],
        )
    }

    #[test]
    fn read_and_insertion_counts() {
        let j = job();
        assert_eq!(j.read_count(), 3);
        // k = 4: (10−3) + (9−3) + (8−3) = 18
        assert_eq!(j.insertion_count(4), 18);
        // k larger than every read: zero insertions.
        assert_eq!(j.insertion_count(50), 0);
    }

    #[test]
    fn left_as_right_transforms() {
        let j = job();
        let l = j.left_as_right();
        assert_eq!(l.contig, crate::dna::revcomp(&j.contig));
        assert_eq!(l.right_reads.len(), 2);
        assert!(l.left_reads.is_empty());
        assert_eq!(l.right_reads[0], j.left_reads[0].revcomp());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_contig_rejected() {
        ContigJob::new(0, vec![], vec![], vec![]);
    }
}

//! Property-based fault-injection suite (the tentpole's proof harness):
//! for any job set and any injected single fault, every *other* job's
//! extension is bit-identical to the fault-free run, and recovered jobs
//! match the CPU reference at the k they recovered with.

use gpu_specs::DeviceId;
use locassm_core::io::Dataset;
use locassm_core::{assemble_all, bin_contigs, AssemblyConfig, ContigJob, Read, RetryPolicy};
use locassm_kernels::{run_local_assembly, GpuConfig, GpuRunResult, JobOutcome, KernelFault};
use proptest::prelude::*;
use simt::FaultPlan;
use std::sync::OnceLock;
use workloads::paper_dataset;

fn dataset() -> &'static Dataset {
    static DS: OnceLock<Dataset> = OnceLock::new();
    DS.get_or_init(|| paper_dataset(21, 0.002, 42))
}

fn config(retry: RetryPolicy) -> GpuConfig {
    let mut cfg = GpuConfig::for_device(DeviceId::A100);
    cfg.retry = retry;
    cfg
}

fn baseline_none() -> &'static GpuRunResult {
    static RUN: OnceLock<GpuRunResult> = OnceLock::new();
    RUN.get_or_init(|| run_local_assembly(dataset(), &config(RetryPolicy::none())))
}

fn baseline_ladder() -> &'static GpuRunResult {
    static RUN: OnceLock<GpuRunResult> = OnceLock::new();
    RUN.get_or_init(|| run_local_assembly(dataset(), &config(RetryPolicy::ladder(21))))
}

/// Replay the host's run-global job numbering (batches × {right, left} ×
/// job order) and return the `(dataset index, is_right)` of every
/// launched job, in id order.
fn launched_jobs(ds: &Dataset, cfg: &GpuConfig) -> Vec<(usize, bool)> {
    let schedule = cfg.retry.schedule(ds.k);
    let min_k = schedule.iter().copied().min().unwrap_or(ds.k);
    let mut out = Vec::new();
    for batch in &bin_contigs(&ds.jobs, cfg.binning) {
        for side in 0..2 {
            for &idx in &batch.jobs {
                let j = &ds.jobs[idx];
                if j.contig.len() < min_k {
                    continue;
                }
                let reads = if side == 0 { &j.right_reads } else { &j.left_reads };
                if reads.is_empty() {
                    continue;
                }
                out.push((idx, side == 0));
            }
        }
    }
    out
}

/// The run-global job id a plan targets (every plan here targets one).
fn victim_of(plan: &FaultPlan, n_jobs: u64) -> u64 {
    (0..n_jobs).find(|&j| plan.targets(j)).expect("plan targets one launched job")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any transient single fault — table-full, a failed arena
    /// allocation, or a tripped watchdog, at any job — leaves every
    /// extension bit-identical to the fault-free run (the victim
    /// recovers exactly) and marks exactly the victim `Recovered`.
    #[test]
    fn transient_single_fault_is_invisible_in_the_output(seed in 0u64..1_000_000) {
        let ds = dataset();
        let mut cfg = config(RetryPolicy::none());
        let jobs = launched_jobs(ds, &cfg);
        let plan = FaultPlan::seeded(seed, jobs.len() as u64);
        let victim = victim_of(&plan, jobs.len() as u64);
        cfg.fault = Some(plan);

        let faulted = run_local_assembly(ds, &cfg);
        let clean = baseline_none();
        prop_assert_eq!(&faulted.extensions, &clean.extensions);

        let (victim_idx, _) = jobs[victim as usize];
        for (i, o) in faulted.outcomes.iter().enumerate() {
            if i == victim_idx {
                prop_assert_eq!(*o, JobOutcome::Recovered { attempts: 1 });
            } else {
                prop_assert_eq!(*o, JobOutcome::Ok);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// A *persistent* single fault exhausts escalation: the victim ends
    /// `Failed` with its faulted side empty, and — the isolation
    /// property — every other job plus the victim's clean side stays
    /// bit-identical to the fault-free run.
    #[test]
    fn persistent_single_fault_isolates_to_the_victim(seed in 0u64..1_000_000) {
        let ds = dataset();
        let mut cfg = config(RetryPolicy::none());
        let jobs = launched_jobs(ds, &cfg);
        let plan = FaultPlan::seeded(seed, jobs.len() as u64).persist(u32::MAX);
        let victim = victim_of(&plan, jobs.len() as u64);
        cfg.fault = Some(plan);

        let faulted = run_local_assembly(ds, &cfg);
        let clean = baseline_none();
        let (victim_idx, is_right) = jobs[victim as usize];

        for (i, (c, f)) in clean.extensions.iter().zip(&faulted.extensions).enumerate() {
            if i != victim_idx {
                prop_assert_eq!(c, f, "job {} must be untouched", i);
            }
        }
        prop_assert!(!faulted.outcomes[victim_idx].succeeded());
        let v_clean = &clean.extensions[victim_idx];
        let v_faulted = &faulted.extensions[victim_idx];
        if is_right {
            prop_assert!(v_faulted.right.is_empty());
            prop_assert_eq!(&v_faulted.left, &v_clean.left);
        } else {
            prop_assert!(v_faulted.left.is_empty());
            prop_assert_eq!(&v_faulted.right, &v_clean.right);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// A table-full fault persisting through the grown same-k retry
    /// pushes escalation down the k-ladder: the victim recovers at the
    /// first fallback k and its faulted side matches the CPU reference
    /// assembled with that k as primary.
    #[test]
    fn ladder_recovery_matches_the_cpu_reference_at_fallback_k(victim_pick in 0usize..64) {
        let ds = dataset();
        let mut cfg = config(RetryPolicy::ladder(ds.k));
        let jobs = launched_jobs(ds, &cfg);
        let victim = (victim_pick % jobs.len()) as u64;
        cfg.fault = Some(FaultPlan::table_full(victim).persist(2));

        let faulted = run_local_assembly(ds, &cfg);
        let clean = baseline_ladder();
        let (victim_idx, is_right) = jobs[victim as usize];

        for (i, (c, f)) in clean.extensions.iter().zip(&faulted.extensions).enumerate() {
            if i != victim_idx {
                prop_assert_eq!(c, f, "job {} must be untouched", i);
            }
        }
        prop_assert_eq!(faulted.outcomes[victim_idx], JobOutcome::Recovered { attempts: 2 });

        let fallback_k = cfg.retry.schedule(ds.k)[1];
        let oracle = assemble_all(
            std::slice::from_ref(&ds.jobs[victim_idx]),
            &AssemblyConfig { k: fallback_k, walk: cfg.walk, retry: cfg.retry.clone() },
            true,
        );
        let v = &faulted.extensions[victim_idx];
        if is_right {
            prop_assert_eq!(&v.right, &oracle[0].right);
        } else {
            prop_assert_eq!(&v.left, &oracle[0].left);
        }
    }
}

/// A deterministic pseudo-random DNA sequence (fixed data, no RNG): its
/// k-mers are effectively all distinct, so insertions ≈ occupied slots
/// and a squeezed table's overflow behaviour is predictable.
fn scrambled_seq(len: usize) -> Vec<u8> {
    let mut x = 0x2545_f491u32;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            b"ACGT"[(x % 4) as usize]
        })
        .collect()
}

/// One contig whose single right read carries ~`n_kmers` distinct k-mers
/// — the minimal workload whose hash table genuinely fills up when its
/// host-side slot estimate is violated.
fn squeeze_dataset(k: usize, n_kmers: usize) -> Dataset {
    let seq = scrambled_seq(n_kmers + k - 1);
    let contig = seq[..k.max(8)].to_vec();
    let job = ContigJob::new(0, contig, vec![Read::with_uniform_qual(&seq, b'I')], vec![]);
    Dataset::new(k, vec![job])
}

/// A contig shorter than one 4-byte chunk (but long enough for k) is a
/// structured `MalformedJob`: the walk's tail arithmetic would wrap, so
/// the kernel refuses it outright — and escalation must not retry it,
/// nor may it disturb the healthy job sharing the run.
#[test]
fn sub_chunk_contig_is_malformed_and_not_retried() {
    let jobs = vec![
        ContigJob::new(0, b"ACG".to_vec(), vec![Read::with_uniform_qual(b"ACGTAC", b'I')], vec![]),
        ContigJob::new(
            1,
            b"ACGTACGT".to_vec(),
            vec![Read::with_uniform_qual(b"ACGTACGTAC", b'I')],
            vec![],
        ),
    ];
    let ds = Dataset::new(3, jobs);
    // A retry ladder is armed on purpose: MalformedJob must bypass it.
    let r = run_local_assembly(&ds, &config(RetryPolicy::ladder(3)));
    match r.outcomes[0] {
        JobOutcome::Failed { fault: KernelFault::MalformedJob { .. }, attempts: 0 } => {}
        other => panic!("expected Failed(MalformedJob) with zero retries, got {other:?}"),
    }
    assert!(r.extensions[0].right.is_empty());
    assert_eq!(r.outcomes[1], JobOutcome::Ok, "the healthy job is untouched");
}

/// A table squeeze (simulated violated host estimate) on the default
/// linear layout genuinely overflows the under-sized table — no
/// short-circuit — and the grown-reserve escalation recovers the job
/// bit-exactly on the first retry.
#[test]
fn table_squeeze_enters_the_grown_reserve_ladder_on_linear() {
    let ds = squeeze_dataset(21, 80);
    let cfg = config(RetryPolicy::none());
    let clean = run_local_assembly(&ds, &cfg);
    assert_eq!(clean.outcomes[0], JobOutcome::Ok, "unsqueezed run must be clean");

    let mut squeezed_cfg = cfg.clone();
    squeezed_cfg.fault = Some(FaultPlan::table_squeeze(0, 3));
    let squeezed = run_local_assembly(&ds, &squeezed_cfg);
    assert_eq!(
        squeezed.outcomes[0],
        JobOutcome::Recovered { attempts: 1 },
        "a squeezed linear table must overflow and recover via the grown reserve"
    );
    assert_eq!(squeezed.extensions, clean.extensions, "recovery is bit-exact");
}

/// A squeeze persisting through every escalation step exhausts the
/// ladder with a real `HashTableFull` carrying the squeezed capacity.
/// The divisor outpaces the doubled reserve of the grown retry (a ÷3
/// squeeze alone would be rescued by it — see the transient test above).
#[test]
fn persistent_table_squeeze_exhausts_escalation() {
    let ds = squeeze_dataset(21, 80);
    let mut cfg = config(RetryPolicy::none());
    cfg.fault = Some(FaultPlan::table_squeeze(0, 6).persist(u32::MAX));
    let r = run_local_assembly(&ds, &cfg);
    match r.outcomes[0] {
        JobOutcome::Failed { fault: KernelFault::HashTableFull { capacity, .. }, attempts } => {
            assert!(capacity > 0, "the overflow reports the squeezed table");
            assert!(attempts >= 1, "the exhausted ladder reports its attempt count");
        }
        other => panic!("expected Failed(HashTableFull), got {other:?}"),
    }
}

/// A resize aborted mid-migration (the table is squeezed so a grow
/// genuinely triggers, then the migration is cut after its first chunk)
/// is a retryable fault like any other rung of the ladder: the victim
/// recovers bit-exactly on one clean retry, and the half-migrated table
/// never leaks into the output. The control arm proves the same squeeze
/// *without* the abort is absorbed by the resize with zero escalation.
#[test]
fn resize_abort_mid_migration_recovers_bit_exactly() {
    let ds = squeeze_dataset(21, 80);
    let mut cfg = config(RetryPolicy::none());
    cfg.resize = true;

    let clean = run_local_assembly(&ds, &cfg);
    assert_eq!(clean.outcomes[0], JobOutcome::Ok, "unfaulted resizing run must be clean");

    // Squeeze the victim so a resize genuinely triggers, then abort its
    // migration mid-chunk (a hand-assembled two-field plan; see
    // `FaultPlan::resize_abort`).
    let mut aborted_cfg = cfg.clone();
    aborted_cfg.fault = Some(FaultPlan {
        squeeze_at: Some((0, 3)),
        resize_abort_at: Some(0),
        attempts: 1,
        ..FaultPlan::default()
    });
    let aborted = run_local_assembly(&ds, &aborted_cfg);
    assert_eq!(
        aborted.outcomes[0],
        JobOutcome::Recovered { attempts: 1 },
        "a mid-migration abort must take the single clean-retry recovery path"
    );
    assert_eq!(aborted.extensions, clean.extensions, "recovery is bit-exact");

    // Control: the same squeeze without the abort resizes to completion —
    // zero escalation attempts (the tentpole's acceptance property).
    let mut squeezed_cfg = cfg.clone();
    squeezed_cfg.fault = Some(FaultPlan::table_squeeze(0, 3));
    let squeezed = run_local_assembly(&ds, &squeezed_cfg);
    assert_eq!(
        squeezed.outcomes[0],
        JobOutcome::Ok,
        "the completed in-kernel resize absorbs the squeeze without escalating"
    );
    assert_eq!(squeezed.extensions, clean.extensions);
}

/// Non-property smoke check tying the suite together: a `Failed` job's
/// fault survives into the outcome with its diagnostic payload.
#[test]
fn failed_outcome_carries_the_fault_payload() {
    let ds = dataset();
    let mut cfg = config(RetryPolicy::none());
    cfg.fault = Some(FaultPlan::table_full(0).persist(u32::MAX));
    let r = run_local_assembly(ds, &cfg);
    let (victim_idx, _) = launched_jobs(ds, &cfg)[0];
    match r.outcomes[victim_idx] {
        JobOutcome::Failed { fault: KernelFault::HashTableFull { capacity, .. }, attempts } => {
            assert!(capacity > 0, "the fault reports the table that overflowed");
            assert!(attempts >= 1, "the fault payload carries the exact attempt count");
        }
        other => panic!("expected Failed(HashTableFull), got {other:?}"),
    }
}

/// Service-level saturation scenario (the tentpole's isolation proof):
/// one tenant's poison job, under full queue pressure, must leave every
/// other tenant's outcome untouched — identical admissions, identical
/// rejections, and bit-identical extensions — while the poison job
/// itself burns its requeues and lands in quarantine.
#[test]
fn poison_tenant_under_saturation_leaves_other_tenants_bit_identical() {
    use locassm_core::{RequestId, TenantId};
    use locassm_service::{
        run_service, ExtensionRequest, QueueConfig, RequeuePolicy, ServiceConfig, ServiceOutcome,
    };

    let ds = dataset();
    // Three tenants, four submissions each, arrivals interleaved
    // round-robin; the queue holds half of them, so admission is under
    // genuine backpressure and the rest are rejected.
    let reqs: Vec<ExtensionRequest> = (0..12)
        .map(|i| {
            let (tenant, seq) = (i as u32 % 3, i as u32 / 3);
            ExtensionRequest::new(
                RequestId::new(TenantId(tenant), seq),
                ds.jobs[i % ds.jobs.len()].clone(),
                i as f64 * 1e-6,
            )
        })
        .collect();
    let victim = RequestId::new(TenantId(0), 0);

    let mut cfg = ServiceConfig::for_device(DeviceId::A100, ds.k);
    cfg.queue = QueueConfig::bounded(6);
    cfg.batch.max_jobs = 2;
    cfg.requeue = RequeuePolicy::exponential(1, 1e-3);

    let clean = run_service(&reqs, &cfg);
    let poisoned = run_service(
        &reqs,
        &cfg.clone().with_fault(FaultPlan::table_full(victim.uid()).persist(u32::MAX)),
    );

    match poisoned.outcome(victim) {
        Some(ServiceOutcome::Quarantined { requeues, attempts, .. }) => {
            assert_eq!(*requeues, 1, "the requeue budget is spent before quarantine");
            assert!(*attempts >= 2, "both runs burned attempts");
        }
        other => panic!("poison job must be quarantined, got {other:?}"),
    }

    for req in reqs.iter().filter(|r| r.id != victim) {
        let (c, p) = (clean.outcome(req.id), poisoned.outcome(req.id));
        match (c, p) {
            (
                Some(ServiceOutcome::Completed { result: rc, .. }),
                Some(ServiceOutcome::Completed { result: rp, .. }),
            ) => assert_eq!(rc, rp, "{}: extension must be bit-identical", req.id),
            (
                Some(ServiceOutcome::Rejected { reason: a, .. }),
                Some(ServiceOutcome::Rejected { reason: b, .. }),
            ) => assert_eq!(a, b, "{}: rejection must be identical", req.id),
            other => panic!(
                "{}: outcome class must not change under a co-tenant's poison job: {other:?}",
                req.id
            ),
        }
    }
    assert!(
        clean.records.iter().any(|r| matches!(r.outcome, ServiceOutcome::Rejected { .. })),
        "the scenario must actually saturate the queue"
    );
}

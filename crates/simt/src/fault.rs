//! Deterministic fault injection for the launch engine.
//!
//! Production GPU pipelines must survive pathological jobs — a hash table
//! whose host-side slot estimate was violated, an arena that cannot grow,
//! a walk that never terminates. The kernel layer reports those as
//! structured faults; this module provides the *harness* that forces each
//! fault class on demand so recovery paths can be tested deterministically.
//!
//! A [`FaultPlan`] names one victim job (by run-global launch index) and
//! one fault class. The launch engine arms the plan on the victim's warp
//! just before its kernel runs; the kernel's ordinary fault checks then
//! observe the injected condition and return the same structured error a
//! real pathology would produce. Plans are plain `Copy` data — no global
//! state, no timers — so a seeded plan replays bit-identically.

use crate::mem::GlobalMem;
use crate::warp::Warp;

/// Fault flags carried on a [`Warp`], observed by kernel-side checks.
///
/// Cleared by [`Warp::reset`] so pooled warps never leak an armed fault
/// into the next job.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectedFaults {
    /// Force the next hash-table insert to report the table full.
    pub table_full: bool,
    /// Force the walk watchdog to trip on its first budget check.
    pub watchdog: bool,
    /// Divide the staged hash table's main region by this factor (0 or 1
    /// = no squeeze). Unlike [`InjectedFaults::table_full`], which
    /// short-circuits the insert path, a squeeze simulates a *violated
    /// host-side slot estimate*: the kernel probes a genuinely
    /// under-sized table, so whether it overflows depends on the table
    /// layout's real headroom (an iceberg backyard can absorb what a
    /// squeezed linear table cannot).
    pub table_squeeze: u32,
    /// Abort the next in-kernel table migration mid-chunk (after the
    /// first migrated chunk, before the old region retires), forcing the
    /// `ResizeAborted` recovery path. Ignored by runs that never resize.
    pub resize_abort: bool,
}

/// A deterministic, seedable single-fault injection plan.
///
/// Job indices are *run-global*: the launch layer numbers every warp it
/// launches across batches and sides in deterministic order (the same
/// numbering the trace layer uses), and offsets each launch's local
/// indices by [`crate::grid::LaunchConfig::fault_base`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Report `HashTableFull` when this job first inserts.
    pub table_full_at: Option<u64>,
    /// `(job, nth)` — fail the `nth` (1-based) arena allocation of `job`.
    pub alloc_fail: Option<(u64, u64)>,
    /// Trip the walk watchdog on this job's first budget check.
    pub watchdog_at: Option<u64>,
    /// `(job, divisor)` — stage this job's hash-table main region at
    /// `1/divisor` of its estimated size (a simulated estimate
    /// violation; see [`InjectedFaults::table_squeeze`]).
    pub squeeze_at: Option<(u64, u32)>,
    /// Abort this job's first in-kernel table migration mid-chunk (see
    /// [`InjectedFaults::resize_abort`]). Usually combined with
    /// `squeeze_at` on the same victim so a resize genuinely triggers.
    pub resize_abort_at: Option<u64>,
    /// How many attempts of the victim job observe the fault. `1` (the
    /// default) models a transient fault: the first retry runs clean.
    /// `2` also faults the first (grown-table) retry, pushing recovery
    /// down the k-ladder; `u32::MAX` models a persistent fault that
    /// exhausts every escalation step and ends in `Failed`.
    pub attempts: u32,
}

impl FaultPlan {
    /// Force a hash-table-full fault at run-global job index `job`.
    pub fn table_full(job: u64) -> Self {
        Self { table_full_at: Some(job), attempts: 1, ..Self::default() }
    }

    /// Fail the `nth` (1-based) arena allocation of job `job`.
    pub fn alloc_failure(job: u64, nth: u64) -> Self {
        Self { alloc_fail: Some((job, nth.max(1))), attempts: 1, ..Self::default() }
    }

    /// Trip the walk watchdog at run-global job index `job`.
    pub fn watchdog(job: u64) -> Self {
        Self { watchdog_at: Some(job), attempts: 1, ..Self::default() }
    }

    /// Stage job `job`'s hash table at `1/divisor` of its estimated main
    /// region — a simulated host-estimate violation that exercises the
    /// real overflow paths instead of short-circuiting them.
    pub fn table_squeeze(job: u64, divisor: u32) -> Self {
        Self { squeeze_at: Some((job, divisor.max(2))), attempts: 1, ..Self::default() }
    }

    /// Abort job `job`'s first in-kernel table migration mid-chunk.
    pub fn resize_abort(job: u64) -> Self {
        Self { resize_abort_at: Some(job), attempts: 1, ..Self::default() }
    }

    /// Make the fault persist for the victim's first `attempts` attempts
    /// (the original run counts as attempt one).
    pub fn persist(mut self, attempts: u32) -> Self {
        self.attempts = attempts.max(1);
        self
    }

    /// Derive a single-fault plan from a seed: a splitmix64 scramble
    /// picks the fault class, the victim among `n_jobs`, and (for
    /// allocation faults) which allocation fails. Same seed, same plan.
    pub fn seeded(seed: u64, n_jobs: u64) -> Self {
        let mut x = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut next = move || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let job = if n_jobs == 0 { 0 } else { next() % n_jobs };
        match next() % 3 {
            0 => Self::table_full(job),
            1 => Self::alloc_failure(job, 1 + next() % 5),
            _ => Self::watchdog(job),
        }
    }

    /// The single job id this plan targets, if any. Every constructor
    /// produces a single-victim plan; a hand-assembled plan with several
    /// distinct victims reports the first in field order.
    pub fn victim(&self) -> Option<u64> {
        self.table_full_at
            .or(self.watchdog_at)
            .or(self.alloc_fail.map(|(j, _)| j))
            .or(self.squeeze_at.map(|(j, _)| j))
            .or(self.resize_abort_at)
    }

    /// Rewrite every victim id equal to `from` into `to`, leaving the
    /// fault class, payload and attempt budget untouched.
    ///
    /// This is the id-stability primitive for drivers that *re-enqueue*
    /// jobs (a service-level retry, a requeue after backpressure): such a
    /// driver names victims in its own stable id space (e.g. a request
    /// uid) and retargets the plan onto each run's run-global job
    /// numbering just before launch. The victim keeps faulting no matter
    /// which batch slot it lands in — without this, a persistent seeded
    /// fault would hit whoever happens to inherit the original slot.
    pub fn retargeted(&self, from: u64, to: u64) -> Self {
        let mv = |id: Option<u64>| id.map(|j| if j == from { to } else { j });
        Self {
            table_full_at: mv(self.table_full_at),
            watchdog_at: mv(self.watchdog_at),
            alloc_fail: self
                .alloc_fail
                .map(|(j, nth)| (if j == from { to } else { j }, nth)),
            squeeze_at: self
                .squeeze_at
                .map(|(j, d)| (if j == from { to } else { j }, d)),
            resize_abort_at: mv(self.resize_abort_at),
            attempts: self.attempts,
        }
    }

    /// Deduct `spent` attempts already charged against this plan's budget
    /// (by earlier runs of the same victim) and return the remainder, or
    /// `None` once the budget is exhausted — the caller then launches
    /// with no plan at all, so the victim's next attempt runs clean.
    ///
    /// Together with [`FaultPlan::retargeted`] this makes a persistent
    /// fault *globally* persistent across service-level re-enqueues: a
    /// `persist(3)` plan faults exactly three attempts of the same
    /// request even when those attempts span multiple separate runs.
    pub fn consume(&self, spent: u32) -> Option<Self> {
        let remaining = self.attempts.saturating_sub(spent);
        if remaining == 0 {
            return None;
        }
        Some(Self { attempts: remaining, ..*self })
    }

    /// True if this plan targets run-global job index `job`.
    pub fn targets(&self, job: u64) -> bool {
        self.table_full_at == Some(job)
            || self.watchdog_at == Some(job)
            || matches!(self.alloc_fail, Some((j, _)) if j == job)
            || matches!(self.squeeze_at, Some((j, _)) if j == job)
            || self.resize_abort_at == Some(job)
    }

    /// Arm this plan on `warp` if it targets run-global job index `job`.
    /// Called by the launch engine after the warp is acquired (and reset)
    /// and before the kernel runs; a non-matching job is a no-op.
    pub fn arm(&self, job: u64, warp: &mut Warp) {
        if self.table_full_at == Some(job) {
            warp.inject_table_full();
        }
        if self.watchdog_at == Some(job) {
            warp.inject_watchdog();
        }
        if let Some((j, nth)) = self.alloc_fail {
            if j == job {
                arm_alloc(&mut warp.mem, nth);
            }
        }
        if let Some((j, divisor)) = self.squeeze_at {
            if j == job {
                warp.inject_table_squeeze(divisor);
            }
        }
        if self.resize_abort_at == Some(job) {
            warp.inject_resize_abort();
        }
    }
}

fn arm_alloc(mem: &mut GlobalMem, nth: u64) {
    mem.arm_alloc_failure(nth);
}

#[cfg(test)]
mod tests {
    use super::*;
    use memhier::HierarchyConfig;

    #[test]
    fn plans_are_deterministic_per_seed() {
        for seed in 0..64u64 {
            assert_eq!(FaultPlan::seeded(seed, 17), FaultPlan::seeded(seed, 17));
        }
    }

    #[test]
    fn seeded_plans_cover_all_fault_classes() {
        let mut table = 0;
        let mut alloc = 0;
        let mut dog = 0;
        for seed in 0..64u64 {
            let p = FaultPlan::seeded(seed, 9);
            if p.table_full_at.is_some() {
                table += 1;
            }
            if let Some((j, nth)) = p.alloc_fail {
                alloc += 1;
                assert!(j < 9 && (1..=5).contains(&nth));
            }
            if p.watchdog_at.is_some() {
                dog += 1;
            }
        }
        assert!(table > 0 && alloc > 0 && dog > 0, "{table}/{alloc}/{dog}");
    }

    #[test]
    fn arming_is_job_selective() {
        let mut warp = Warp::new(8, HierarchyConfig::tiny());
        let plan = FaultPlan::table_full(3);
        plan.arm(2, &mut warp);
        assert_eq!(warp.injected_faults(), InjectedFaults::default());
        plan.arm(3, &mut warp);
        assert!(warp.injected_faults().table_full);
        assert!(plan.targets(3) && !plan.targets(2));
    }

    #[test]
    fn retarget_moves_only_the_matching_victim() {
        let plan = FaultPlan::table_full(7).persist(3);
        assert_eq!(plan.victim(), Some(7));
        let moved = plan.retargeted(7, 2);
        assert_eq!(moved.victim(), Some(2));
        assert!(moved.targets(2) && !moved.targets(7));
        assert_eq!(moved.attempts, 3, "the attempt budget rides along");
        // A non-matching rewrite is the identity.
        assert_eq!(plan.retargeted(5, 9), plan);
        // Payloads survive the move.
        let sq = FaultPlan::table_squeeze(4, 6).retargeted(4, 0);
        assert_eq!(sq.squeeze_at, Some((0, 6)));
        let alloc = FaultPlan::alloc_failure(4, 3).retargeted(4, 1);
        assert_eq!(alloc.alloc_fail, Some((1, 3)));
        let ra = FaultPlan::resize_abort(4).retargeted(4, 8);
        assert_eq!(ra.resize_abort_at, Some(8));
        assert_eq!(ra.victim(), Some(8));
    }

    #[test]
    fn resize_abort_arms_and_combines_with_a_squeeze() {
        let mut warp = Warp::new(8, HierarchyConfig::tiny());
        // A hand-assembled multi-field plan: squeeze the victim's table so
        // a resize genuinely triggers, then abort the migration mid-chunk.
        let plan = FaultPlan {
            squeeze_at: Some((3, 3)),
            resize_abort_at: Some(3),
            attempts: 1,
            ..FaultPlan::default()
        };
        assert!(plan.targets(3) && !plan.targets(2));
        plan.arm(2, &mut warp);
        assert_eq!(warp.injected_faults(), InjectedFaults::default());
        plan.arm(3, &mut warp);
        let inj = warp.injected_faults();
        assert!(inj.resize_abort);
        assert_eq!(inj.table_squeeze, 3);
        warp.reset(8, HierarchyConfig::tiny());
        assert_eq!(warp.injected_faults(), InjectedFaults::default());
    }

    #[test]
    fn consume_tracks_a_cross_run_attempt_budget() {
        let plan = FaultPlan::table_full(0).persist(3);
        // Run 1 spent 2 attempts: one remains.
        let rest = plan.consume(2).expect("budget not yet exhausted");
        assert_eq!(rest.attempts, 1);
        assert_eq!(rest.table_full_at, Some(0));
        // Run 2 spent that one: the plan disarms entirely.
        assert_eq!(rest.consume(1), None);
        assert_eq!(plan.consume(3), None);
        assert_eq!(plan.consume(u32::MAX), None);
        // An inexhaustible plan never disarms.
        let forever = FaultPlan::watchdog(1).persist(u32::MAX);
        assert_eq!(forever.consume(1_000_000).map(|p| p.attempts), Some(u32::MAX - 1_000_000));
    }

    #[test]
    fn reset_disarms_injected_faults() {
        let mut warp = Warp::new(8, HierarchyConfig::tiny());
        FaultPlan::watchdog(0).arm(0, &mut warp);
        FaultPlan::alloc_failure(0, 2).arm(0, &mut warp);
        assert!(warp.injected_faults().watchdog);
        warp.reset(8, HierarchyConfig::tiny());
        assert_eq!(warp.injected_faults(), InjectedFaults::default());
        assert!(warp.mem.try_alloc(16).is_ok(), "reset must disarm the allocation fault");
        assert!(warp.mem.try_alloc(16).is_ok());
    }
}

//! Per-lane SOA value vectors.

use crate::mask::Mask;
use crate::MAX_LANES;
use std::ops::{Index, IndexMut};

/// A fixed-width vector holding one `T` per lane of a warp.
///
/// The kernel code in `locassm-kernels` is written against `LaneVec`s, which
/// makes the warp-synchronous structure of the original CUDA code explicit:
/// a scalar variable in the CUDA source becomes a `LaneVec` here, and the
/// active-mask plumbing becomes visible instead of implicit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneVec<T> {
    vals: [T; MAX_LANES],
}

impl<T: Copy + Default> Default for LaneVec<T> {
    fn default() -> Self {
        LaneVec { vals: [T::default(); MAX_LANES] }
    }
}

impl<T: Copy + Default> LaneVec<T> {
    /// All lanes initialized to `v`.
    pub fn splat(v: T) -> Self {
        LaneVec { vals: [v; MAX_LANES] }
    }

    /// Lane *i* initialized to `f(i)` for the first `width` lanes.
    pub fn from_fn(width: u32, mut f: impl FnMut(u32) -> T) -> Self {
        let mut vals = [T::default(); MAX_LANES];
        for (i, slot) in vals.iter_mut().take(width as usize).enumerate() {
            *slot = f(i as u32);
        }
        LaneVec { vals }
    }

    /// Set `v` on every lane in `mask`.
    pub fn set_masked(&mut self, mask: Mask, v: T) {
        for l in mask.lanes() {
            self.vals[l as usize] = v;
        }
    }

    /// Apply `f` to every lane in `mask`, writing the result back.
    pub fn update_masked(&mut self, mask: Mask, mut f: impl FnMut(u32, T) -> T) {
        for l in mask.lanes() {
            self.vals[l as usize] = f(l, self.vals[l as usize]);
        }
    }

    /// Collect the values of active lanes (ascending lane order).
    pub fn gather(&self, mask: Mask) -> Vec<T> {
        mask.lanes().map(|l| self.vals[l as usize]).collect()
    }

    /// Iterator of `(lane, value)` over active lanes.
    pub fn iter_masked(&self, mask: Mask) -> impl Iterator<Item = (u32, T)> + '_ {
        mask.lanes().map(move |l| (l, self.vals[l as usize]))
    }
}

impl<T> Index<u32> for LaneVec<T> {
    type Output = T;
    fn index(&self, lane: u32) -> &T {
        &self.vals[lane as usize]
    }
}

impl<T> IndexMut<u32> for LaneVec<T> {
    fn index_mut(&mut self, lane: u32) -> &mut T {
        &mut self.vals[lane as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_fills_width() {
        let v = LaneVec::from_fn(4, |l| l * 10);
        assert_eq!(v[0], 0);
        assert_eq!(v[3], 30);
        assert_eq!(v[4], 0, "beyond width stays default");
    }

    #[test]
    fn splat_and_index_mut() {
        let mut v = LaneVec::splat(7u32);
        v[5] = 9;
        assert_eq!(v[4], 7);
        assert_eq!(v[5], 9);
    }

    #[test]
    fn masked_ops() {
        let mut v = LaneVec::splat(0u32);
        let m = Mask(0b101);
        v.set_masked(m, 3);
        assert_eq!((v[0], v[1], v[2]), (3, 0, 3));
        v.update_masked(m, |lane, x| x + lane);
        assert_eq!((v[0], v[1], v[2]), (3, 0, 5));
        assert_eq!(v.gather(m), vec![3, 5]);
        let pairs: Vec<_> = v.iter_masked(m).collect();
        assert_eq!(pairs, vec![(0, 3), (2, 5)]);
    }
}

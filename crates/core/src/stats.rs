//! Assembly contiguity statistics.
//!
//! Local assembly exists to push these numbers up (the MetaHipMer papers
//! report N50 improvements from the contig-extension phase); the pipeline
//! example and tests use them to show each round's effect.

use serde::{Deserialize, Serialize};

/// Standard summary of an assembly (a set of contig lengths).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AssemblyStats {
    pub contigs: usize,
    pub total_bases: usize,
    pub min_len: usize,
    pub max_len: usize,
    pub mean_len: f64,
    /// Length L such that contigs of length ≥ L cover half the assembly.
    pub n50: usize,
    /// Number of contigs needed to cover half the assembly.
    pub l50: usize,
}

impl AssemblyStats {
    /// Compute over contig lengths. Returns `None` for an empty assembly.
    pub fn from_lengths(lengths: impl IntoIterator<Item = usize>) -> Option<AssemblyStats> {
        let mut v: Vec<usize> = lengths.into_iter().collect();
        if v.is_empty() {
            return None;
        }
        v.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = v.iter().sum();
        let half = total.div_ceil(2);
        let mut acc = 0usize;
        let mut n50 = 0usize;
        let mut l50 = 0usize;
        for (i, &len) in v.iter().enumerate() {
            acc += len;
            if acc >= half {
                n50 = len;
                l50 = i + 1;
                break;
            }
        }
        Some(AssemblyStats {
            contigs: v.len(),
            total_bases: total,
            min_len: *v.last().unwrap(),
            max_len: v[0],
            mean_len: total as f64 / v.len() as f64,
            n50,
            l50,
        })
    }

    /// Compute over contig sequences.
    pub fn from_contigs<'a>(contigs: impl IntoIterator<Item = &'a Vec<u8>>) -> Option<AssemblyStats> {
        Self::from_lengths(contigs.into_iter().map(Vec::len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_n50() {
        // Lengths 80, 70, 50, 40, 30, 20 (total 290, half 145):
        // 80 + 70 = 150 ≥ 145 ⇒ N50 = 70, L50 = 2.
        let s = AssemblyStats::from_lengths([50, 80, 20, 70, 40, 30]).unwrap();
        assert_eq!(s.n50, 70);
        assert_eq!(s.l50, 2);
        assert_eq!(s.total_bases, 290);
        assert_eq!(s.max_len, 80);
        assert_eq!(s.min_len, 20);
        assert!((s.mean_len - 290.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn single_contig() {
        let s = AssemblyStats::from_lengths([123]).unwrap();
        assert_eq!(s.n50, 123);
        assert_eq!(s.l50, 1);
        assert_eq!(s.contigs, 1);
    }

    #[test]
    fn empty_is_none() {
        assert!(AssemblyStats::from_lengths(std::iter::empty()).is_none());
    }

    #[test]
    fn uniform_lengths() {
        let s = AssemblyStats::from_lengths(vec![100; 10]).unwrap();
        assert_eq!(s.n50, 100);
        assert_eq!(s.l50, 5);
    }

    #[test]
    fn extension_improves_n50() {
        let before = AssemblyStats::from_lengths([100, 100, 100, 100]).unwrap();
        let after = AssemblyStats::from_lengths([150, 150, 100, 100]).unwrap();
        assert!(after.n50 > before.n50);
        assert!(after.total_bases > before.total_bases);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// N50 is one of the input lengths; contigs ≥ N50 cover ≥ half.
        #[test]
        fn n50_invariants(lengths in proptest::collection::vec(1usize..10_000, 1..100)) {
            let s = AssemblyStats::from_lengths(lengths.clone()).unwrap();
            prop_assert!(lengths.contains(&s.n50));
            let covered: usize = lengths.iter().filter(|&&l| l >= s.n50).sum();
            prop_assert!(2 * covered >= s.total_bases);
            prop_assert!(s.min_len <= s.n50 && s.n50 <= s.max_len);
            prop_assert!(s.l50 >= 1 && s.l50 <= s.contigs);
        }

        /// Permutation invariant.
        #[test]
        fn order_invariant(mut lengths in proptest::collection::vec(1usize..1000, 2..50)) {
            let a = AssemblyStats::from_lengths(lengths.clone()).unwrap();
            lengths.reverse();
            let b = AssemblyStats::from_lengths(lengths).unwrap();
            prop_assert_eq!(a, b);
        }
    }
}

//! Minimal ASCII table rendering for the repro harness.

/// A column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>) -> Self {
        Table { title: title.into(), header: Vec::new(), rows: Vec::new() }
    }

    pub fn header<S: Into<String>>(mut self, cols: impl IntoIterator<Item = S>) -> Self {
        self.header = cols.into_iter().map(Into::into).collect();
        self
    }

    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert!(
            self.header.is_empty() || cells.len() == self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    /// Render with column alignment (left for first column, right for
    /// the rest — number-friendly).
    pub fn render(&self) -> String {
        let ncols = self.header.len().max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; ncols];
        for row in std::iter::once(&self.header).chain(&self.rows) {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("## {}\n", self.title));
        }
        let fmt_row = |row: &[String]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                if i == 0 {
                    line.push_str(&format!("{cell:<w$}"));
                } else {
                    line.push_str(&format!("  {cell:>w$}"));
                }
            }
            line.trim_end().to_string()
        };
        if !self.header.is_empty() {
            out.push_str(&fmt_row(&self.header));
            out.push('\n');
            let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }
}

/// Format a float with `digits` decimals.
pub fn f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Format a fraction as a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Format a byte count in engineering units.
pub fn bytes_eng(b: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut v = b as f64;
    let mut u = 0;
    while v >= 1000.0 && u < UNITS.len() - 1 {
        v /= 1000.0;
        u += 1;
    }
    if u == 0 {
        format!("{b} B")
    } else {
        format!("{v:.2} {}", UNITS[u])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo").header(["name", "value"]);
        t.row(["alpha", "1"]);
        t.row(["b", "12345"]);
        let s = t.render();
        assert!(s.contains("## Demo"));
        let lines: Vec<&str> = s.lines().collect();
        // Header, rule, two rows.
        assert_eq!(lines.len(), 5);
        assert!(lines[1].starts_with("name"));
        assert!(lines[3].starts_with("alpha"));
        // Right-aligned numbers share their last column.
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_rejected() {
        let mut t = Table::new("x").header(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(pct(0.155), "15.5%");
        assert_eq!(bytes_eng(999), "999 B");
        assert_eq!(bytes_eng(1_500_000), "1.50 MB");
        assert_eq!(bytes_eng(2_340_000_000), "2.34 GB");
    }

    #[test]
    fn headerless_table() {
        let mut t = Table::new("");
        t.row(["a", "b"]);
        assert_eq!(t.render(), "a  b\n");
    }
}

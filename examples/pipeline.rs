//! The iterative MetaHipMer-style workflow (paper Fig. 2): local assembly
//! rounds at k = 21, 33, 55, 77, with each round extending the previous
//! round's contigs — small k bridges thin coverage, large k resolves the
//! forks smaller graphs cannot (Fig. 1b).
//!
//! ```sh
//! cargo run --release --example pipeline
//! ```

use locassm::core::pipeline::{run_pipeline, PRODUCTION_K_SCHEDULE};
use locassm::core::walk::WalkConfig;
use locassm::perfmodel::table::{f, Table};
use locassm::workloads::paper_dataset;

fn main() {
    // Start from the k=21 dataset's contigs and reads; the production
    // pipeline would re-align reads every round, we keep each contig's
    // read set fixed (see DESIGN.md).
    let ds = paper_dataset(21, 0.02, 123);
    let n50_before = n50(ds.jobs.iter().map(|j| j.contig.len()));

    let result = run_pipeline(&ds.jobs, &PRODUCTION_K_SCHEDULE, WalkConfig::default(), true);

    let mut t = Table::new("Iterative local assembly (Fig. 2 workflow)").header([
        "round (k)",
        "contigs extended",
        "bases gained",
        "total contig bases",
    ]);
    for r in &result.rounds {
        t.row([
            r.k.to_string(),
            r.contigs_extended.to_string(),
            r.bases_gained.to_string(),
            r.total_contig_len.to_string(),
        ]);
    }
    println!("{}", t.render());

    let n50_after = n50(result.contigs.iter().map(Vec::len));
    println!("contig N50: {n50_before} → {n50_after} bases");
    let before: usize = ds.jobs.iter().map(|j| j.contig.len()).sum();
    let after: usize = result.contigs.iter().map(Vec::len).sum();
    println!(
        "assembly grew by {} bases ({}%)",
        after - before,
        f((after as f64 / before as f64 - 1.0) * 100.0, 1)
    );
}

/// The standard assembly-contiguity statistic: the length L such that
/// contigs of length ≥ L cover half the assembly.
fn n50(lengths: impl Iterator<Item = usize>) -> usize {
    let mut v: Vec<usize> = lengths.collect();
    v.sort_unstable_by(|a, b| b.cmp(a));
    let half: usize = v.iter().sum::<usize>() / 2;
    let mut acc = 0;
    for len in v {
        acc += len;
        if acc >= half {
            return len;
        }
    }
    0
}

//! Golden-file test for the Chrome `trace_event` exporter.
//!
//! The exporter's output is consumed by external tools (chrome://tracing,
//! Perfetto), so its exact shape is a compatibility surface: any change
//! must be deliberate. Regenerate the golden file after an intentional
//! format change with
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p perfmodel --test chrome_trace_golden
//! ```

use perfmodel::export::{chrome_trace, test_fixture};

const GOLDEN_PATH: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/chrome_trace.json");

#[test]
fn chrome_trace_matches_golden_file() {
    let actual = chrome_trace(&test_fixture());
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &actual).unwrap();
    }
    let expected = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing; regenerate with UPDATE_GOLDEN=1");
    assert_eq!(
        actual, expected,
        "exporter output drifted from tests/golden/chrome_trace.json; \
         if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_trace_is_valid_json() {
    let s = chrome_trace(&test_fixture());
    let mut p = Json { b: s.as_bytes(), i: 0 };
    p.skip_ws();
    p.value();
    p.skip_ws();
    assert_eq!(p.i, p.b.len(), "trailing garbage after JSON document");
}

/// Minimal recursive-descent JSON validator (no external deps); panics on
/// malformed input.
struct Json<'a> {
    b: &'a [u8],
    i: usize,
}

impl Json<'_> {
    fn peek(&self) -> u8 {
        *self.b.get(self.i).expect("unexpected end of JSON")
    }
    fn bump(&mut self) -> u8 {
        let c = self.peek();
        self.i += 1;
        c
    }
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }
    fn expect(&mut self, c: u8) {
        assert_eq!(self.bump(), c, "at byte {}", self.i - 1);
    }
    fn value(&mut self) {
        self.skip_ws();
        match self.peek() {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string(),
            b't' => self.literal(b"true"),
            b'f' => self.literal(b"false"),
            b'n' => self.literal(b"null"),
            _ => self.number(),
        }
    }
    fn object(&mut self) {
        self.expect(b'{');
        self.skip_ws();
        if self.peek() == b'}' {
            self.bump();
            return;
        }
        loop {
            self.skip_ws();
            self.string();
            self.skip_ws();
            self.expect(b':');
            self.value();
            self.skip_ws();
            match self.bump() {
                b',' => continue,
                b'}' => return,
                c => panic!("expected ',' or '}}', got {:?}", c as char),
            }
        }
    }
    fn array(&mut self) {
        self.expect(b'[');
        self.skip_ws();
        if self.peek() == b']' {
            self.bump();
            return;
        }
        loop {
            self.value();
            self.skip_ws();
            match self.bump() {
                b',' => continue,
                b']' => return,
                c => panic!("expected ',' or ']', got {:?}", c as char),
            }
        }
    }
    fn string(&mut self) {
        self.expect(b'"');
        loop {
            match self.bump() {
                b'"' => return,
                b'\\' => {
                    let e = self.bump();
                    assert!(
                        matches!(e, b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' | b'u'),
                        "bad escape \\{}",
                        e as char
                    );
                    if e == b'u' {
                        for _ in 0..4 {
                            assert!(self.bump().is_ascii_hexdigit());
                        }
                    }
                }
                c => assert!(c >= 0x20, "raw control char in string"),
            }
        }
    }
    fn number(&mut self) {
        let start = self.i;
        if self.peek() == b'-' {
            self.bump();
        }
        while self.i < self.b.len()
            && matches!(self.b[self.i], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        {
            self.i += 1;
        }
        assert!(self.i > start, "expected a number at byte {start}");
        let text = std::str::from_utf8(&self.b[start..self.i]).unwrap();
        text.parse::<f64>().unwrap_or_else(|_| panic!("bad number {text:?}"));
    }
    fn literal(&mut self, lit: &[u8]) {
        for &c in lit {
            self.expect(c);
        }
    }
}

//! Occupancy model: shared caches → effective per-warp slices.
//!
//! The `memhier` simulator gives every warp a private view of the hierarchy
//! (warps in the local assembly kernel share no data). Capacity, however,
//! *is* shared on hardware: all warps resident on a compute unit compete for
//! its L1, and every resident warp on the die competes for L2. We model this
//! by slicing capacity evenly among resident warps — the standard
//! cache-partitioning approximation for disjoint working sets.
//!
//! This is the mechanism behind the paper's central observation: at large
//! k-mer sizes, the per-contig working set outgrows the MI250X's 8 MB L2
//! share while still fitting the Max 1550's 204 MB share.

use crate::spec::DeviceSpec;
use memhier::{CacheConfig, HierarchyConfig};

/// Warps concurrently resident on the device for a launch of `total_warps`.
pub fn resident_warps(spec: &DeviceSpec, total_warps: u64) -> u64 {
    let max_resident = spec.compute_units as u64 * spec.resident_warps_per_cu as u64;
    total_warps.clamp(1, max_resident)
}

/// Warps the scheduled replay keeps resident per SM for a kernel whose
/// per-warp device footprint is `footprint_bytes`.
///
/// The hardware occupancy limit (`resident_warps_per_cu`) caps residency;
/// below that, the L2 share available to one compute unit must cover the
/// resident warps' working sets, or latency hiding backfires into cache
/// thrashing — so residency is also bounded by how many footprints fit in
/// `l2_bytes / compute_units`. Always at least 1.
pub fn scheduled_residency(spec: &DeviceSpec, footprint_bytes: u64) -> u32 {
    let l2_per_cu = spec.l2_bytes / spec.compute_units as u64;
    let fit = l2_per_cu / footprint_bytes.max(1);
    (spec.resident_warps_per_cu as u64).min(fit.max(1)) as u32
}

/// Build the effective per-warp hierarchy for a launch of `total_warps`.
pub fn effective_hierarchy(spec: &DeviceSpec, total_warps: u64) -> HierarchyConfig {
    let resident = resident_warps(spec, total_warps);
    // Warps resident on one CU share its L1.
    let warps_per_cu = resident.div_ceil(spec.compute_units as u64).max(1);
    let l1_share = spec.l1_bytes_per_cu / warps_per_cu;
    // All resident warps share the die-level L2.
    let l2_share = spec.l2_bytes / resident;
    let l2 = rounded_cache(l2_share, 128, 16);
    HierarchyConfig {
        l1: rounded_cache(l1_share, 128, 4),
        l2: if spec.l2_sectored { l2 } else { l2.non_sectored() },
    }
}

/// Round a capacity to valid cache geometry (whole sets), with a floor of
/// one set so tiny shares degenerate gracefully.
fn rounded_cache(capacity: u64, line: u64, ways: u32) -> CacheConfig {
    let set_bytes = line * ways as u64;
    let sets = (capacity / set_bytes).max(1);
    CacheConfig::new(sets * set_bytes, line, ways)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{A100, MAX1550, MI250X};

    #[test]
    fn resident_clamps_to_device_capacity() {
        assert_eq!(resident_warps(&A100, 10), 10);
        assert_eq!(resident_warps(&A100, 1_000_000), 108 * 8);
        assert_eq!(resident_warps(&A100, 0), 1);
    }

    #[test]
    fn full_occupancy_shares() {
        let h = effective_hierarchy(&A100, 1 << 20);
        // 192 KB / 8 warps = 24 KB L1 share.
        assert_eq!(h.l1.capacity_bytes, 24 * 1024);
        // 40 MB / 864 warps ≈ 47.4 KB L2 share (rounded to sets).
        let expect = 40 * 1024 * 1024 / (108 * 8);
        assert!((h.l2.capacity_bytes as i64 - expect as i64).abs() < 2048);
    }

    #[test]
    fn amd_share_is_much_smaller_than_intel() {
        let amd = effective_hierarchy(&MI250X, 1 << 20);
        let intel = effective_hierarchy(&MAX1550, 1 << 20);
        // MI250X: 8 MB / 880 ≈ 9.5 KB; Max1550: 204 MB / 512 ≈ 408 KB.
        assert!(amd.l2.capacity_bytes < 16 * 1024);
        assert!(intel.l2.capacity_bytes > 256 * 1024);
        assert!(intel.l2.capacity_bytes > 20 * amd.l2.capacity_bytes);
    }

    #[test]
    fn low_occupancy_gets_bigger_shares() {
        let few = effective_hierarchy(&MI250X, 8);
        let many = effective_hierarchy(&MI250X, 10_000);
        assert!(few.l2.capacity_bytes > many.l2.capacity_bytes);
    }

    #[test]
    fn scheduled_residency_tracks_footprint() {
        // Tiny footprints run at the hardware occupancy limit.
        assert_eq!(scheduled_residency(&A100, 1024), 8);
        assert_eq!(scheduled_residency(&A100, 0), 8);
        // A100: 40 MB / 108 CUs ≈ 379 KB of L2 per CU. A 100 KB footprint
        // fits 3 warps; a huge one still keeps a single warp resident.
        assert_eq!(scheduled_residency(&A100, 100 * 1024), 3);
        assert_eq!(scheduled_residency(&A100, 1 << 30), 1);
        // The MI250X's small L2 share throttles residency at footprints
        // the Max 1550 shrugs off — the paper's central asymmetry.
        let footprint = 64 * 1024;
        assert!(scheduled_residency(&MI250X, footprint) < scheduled_residency(&MAX1550, footprint));
    }

    #[test]
    fn geometry_always_valid() {
        for warps in [1u64, 7, 100, 999, 1 << 20] {
            for spec in [&A100, &MI250X, &MAX1550] {
                let h = effective_hierarchy(spec, warps);
                assert!(h.l1.sets() >= 1);
                assert!(h.l2.sets() >= 1);
            }
        }
    }
}

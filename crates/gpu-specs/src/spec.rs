//! Device parameter sets (paper Tables I and III).

use serde::{Deserialize, Serialize};
use std::fmt;

/// GPU vendor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Vendor {
    /// NVIDIA (A100).
    Nvidia,
    /// AMD (MI250X).
    Amd,
    /// Intel (Data Center GPU Max 1550).
    Intel,
}

/// Programming model the kernel dialect is written in (paper Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProgrammingModel {
    /// NVIDIA CUDA.
    Cuda,
    /// AMD HIP.
    Hip,
    /// Intel oneAPI SYCL / DPC++.
    Sycl,
}

impl fmt::Display for ProgrammingModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProgrammingModel::Cuda => "CUDA",
            ProgrammingModel::Hip => "HIP",
            ProgrammingModel::Sycl => "SYCL",
        };
        f.write_str(s)
    }
}

/// The three devices evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceId {
    /// NVIDIA A100-40GB (Perlmutter).
    A100,
    /// AMD MI250X, single graphics compute die (Frontier).
    Mi250x,
    /// Intel Data Center GPU Max 1550, single tile (Sunspot).
    Max1550,
}

impl DeviceId {
    /// All devices in paper order (NVIDIA, AMD, Intel).
    pub const ALL: [DeviceId; 3] = [DeviceId::A100, DeviceId::Mi250x, DeviceId::Max1550];

    /// The static [`DeviceSpec`] for this device.
    pub fn spec(self) -> &'static DeviceSpec {
        match self {
            DeviceId::A100 => &A100,
            DeviceId::Mi250x => &MI250X,
            DeviceId::Max1550 => &MAX1550,
        }
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.spec().short_name)
    }
}

/// Architectural parameters of one device (the slice of it the study uses:
/// one GCD of the MI250X, one tile of the Max 1550).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Which device this spec describes.
    pub id: DeviceId,
    /// Hardware vendor.
    pub vendor: Vendor,
    /// The programming model the kernel dialect for this device uses.
    pub model: ProgrammingModel,
    /// Marketing name.
    pub name: &'static str,
    /// Short label used in tables/plots.
    pub short_name: &'static str,
    /// HPC system the paper profiled on.
    pub system: &'static str,
    /// Compiler toolchain (paper Table I).
    pub compiler: &'static str,
    /// Warp / wavefront / sub-group width the kernel runs with.
    pub warp_width: u32,
    /// Compute units (SMs / CUs / Xe-cores) on the used die.
    pub compute_units: u32,
    /// L1 capacity per compute unit, bytes.
    pub l1_bytes_per_cu: u64,
    /// L2 capacity of the used die/tile, bytes.
    pub l2_bytes: u64,
    /// Device memory, bytes.
    pub mem_bytes: u64,
    /// Peak HBM bandwidth, bytes/second (the roofline's memory ceiling).
    pub hbm_bytes_per_sec: f64,
    /// Peak integer throughput, INTOPs/second (warp-level, the roofline's
    /// compute ceiling — the paper's "Peak INTOPS" in Fig. 6).
    pub peak_intops_per_sec: f64,
    /// Warps resident per compute unit at this kernel's occupancy.
    pub resident_warps_per_cu: u32,
    /// Average HBM access latency, seconds (used by the latency term of
    /// the timing model and the scheduled-execution replay).
    pub hbm_latency_sec: f64,
    /// Load-to-use latency of an L1 hit, seconds (calibration estimate;
    /// used only by the scheduled-execution replay — see `docs/TIMING.md`).
    pub l1_latency_sec: f64,
    /// Load-to-use latency of an L2 hit, seconds (calibration estimate;
    /// used only by the scheduled-execution replay).
    pub l2_latency_sec: f64,
    /// Fraction of peak issue rate this kernel class sustains (calibration
    /// constant; see `timing`).
    pub sustained_issue_frac: f64,
    /// Fraction of peak bandwidth sustainable with scattered 32 B sectors.
    pub sustained_bw_frac: f64,
    /// Memory-level parallelism per warp (outstanding transactions).
    pub mlp_per_warp: f64,
    /// Whether the L2 uses sectored fills (NVIDIA/Intel) or whole-line
    /// fills (AMD CDNA) — see `memhier::CacheConfig::sectored`.
    pub l2_sectored: bool,
}

impl DeviceSpec {
    /// Machine balance: peak INTOPs/s over peak bytes/s (INTOP per byte).
    /// The ridge point of the instruction roofline (Fig. 6: 0.23 / 0.23 / 0.09).
    pub fn machine_balance(&self) -> f64 {
        self.peak_intops_per_sec / self.hbm_bytes_per_sec
    }

    /// Total L1 capacity across the die.
    pub fn l1_total_bytes(&self) -> u64 {
        self.l1_bytes_per_cu * self.compute_units as u64
    }

    /// Peak warp-instruction issue rate (warp instructions / second).
    pub fn warp_issue_per_sec(&self) -> f64 {
        self.peak_intops_per_sec / self.warp_width as f64
    }
}

/// NVIDIA A100 (Perlmutter, CUDA 12.0). Peaks from paper Fig. 6a.
pub static A100: DeviceSpec = DeviceSpec {
    id: DeviceId::A100,
    vendor: Vendor::Nvidia,
    model: ProgrammingModel::Cuda,
    name: "NVIDIA A100-40GB",
    short_name: "NVIDIA",
    system: "Perlmutter (NERSC)",
    compiler: "CUDA 12.0",
    warp_width: 32,
    compute_units: 108,
    l1_bytes_per_cu: 192 * 1024,
    l2_bytes: 40 * 1024 * 1024,
    mem_bytes: 40 * 1024 * 1024 * 1024,
    hbm_bytes_per_sec: 1555.0e9,
    peak_intops_per_sec: 358.0e9,
    resident_warps_per_cu: 8,
    hbm_latency_sec: 480e-9,
    l1_latency_sec: 20e-9,
    l2_latency_sec: 140e-9,
    sustained_issue_frac: 0.16,
    sustained_bw_frac: 0.65,
    mlp_per_warp: 3.0,
    l2_sectored: true,
};

/// AMD MI250X, one GCD (Frontier, ROCm 5.3.0). Peaks from paper Fig. 6b;
/// L2 is 8 MB per die (Fig. 6 caption).
pub static MI250X: DeviceSpec = DeviceSpec {
    id: DeviceId::Mi250x,
    vendor: Vendor::Amd,
    model: ProgrammingModel::Hip,
    name: "AMD MI250X (1 GCD)",
    short_name: "AMD",
    system: "Frontier (OLCF)",
    compiler: "ROCm 5.3.0",
    warp_width: 64,
    compute_units: 110,
    l1_bytes_per_cu: 16 * 1024,
    l2_bytes: 8 * 1024 * 1024,
    mem_bytes: 64 * 1024 * 1024 * 1024,
    hbm_bytes_per_sec: 1600.0e9,
    peak_intops_per_sec: 374.0e9,
    resident_warps_per_cu: 8,
    hbm_latency_sec: 600e-9,
    l1_latency_sec: 30e-9,
    l2_latency_sec: 170e-9,
    // Divergence-heavy integer kernels sustain a lower fraction of peak
    // issue on the 64-wide CDNA2 wavefront (calibration; EXPERIMENTS.md).
    sustained_issue_frac: 0.13,
    sustained_bw_frac: 0.60,
    mlp_per_warp: 3.0,
    l2_sectored: false,
};

/// Intel Data Center GPU Max 1550, one tile (Sunspot, DPC++ 2023).
/// Peaks from paper Fig. 6c; L2 is 204 MB per tile (Fig. 6 caption),
/// L1 is 512 KB per Xe-core (Table III's 64 MB over 128 cores).
pub static MAX1550: DeviceSpec = DeviceSpec {
    id: DeviceId::Max1550,
    vendor: Vendor::Intel,
    model: ProgrammingModel::Sycl,
    name: "Intel Max 1550 (1 tile)",
    short_name: "INTEL",
    system: "Sunspot (ALCF)",
    compiler: "Intel DPC++ 2023",
    warp_width: 16,
    compute_units: 64,
    l1_bytes_per_cu: 512 * 1024,
    l2_bytes: 204 * 1024 * 1024,
    mem_bytes: 64 * 1024 * 1024 * 1024,
    hbm_bytes_per_sec: 1176.21e9,
    peak_intops_per_sec: 105.0e9,
    resident_warps_per_cu: 8,
    hbm_latency_sec: 550e-9,
    l1_latency_sec: 25e-9,
    l2_latency_sec: 160e-9,
    sustained_issue_frac: 0.16,
    sustained_bw_frac: 0.60,
    mlp_per_warp: 3.0,
    l2_sectored: true,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_balance_matches_paper_fig6() {
        // Fig. 6 annotates machine balance 0.23, 0.23, 0.09.
        assert!((A100.machine_balance() - 0.23).abs() < 0.01);
        assert!((MI250X.machine_balance() - 0.23).abs() < 0.01);
        assert!((MAX1550.machine_balance() - 0.09).abs() < 0.01);
    }

    #[test]
    fn warp_widths_match_paper() {
        assert_eq!(A100.warp_width, 32);
        assert_eq!(MI250X.warp_width, 64);
        assert_eq!(MAX1550.warp_width, 16);
    }

    #[test]
    fn cache_ordering_matches_table3() {
        // L2: Intel ≫ NVIDIA ≫ AMD (per used die/tile).
        assert!(MAX1550.l2_bytes > A100.l2_bytes);
        assert!(A100.l2_bytes > MI250X.l2_bytes);
        // L1 per CU: Intel > NVIDIA > AMD.
        assert!(MAX1550.l1_bytes_per_cu > A100.l1_bytes_per_cu);
        assert!(A100.l1_bytes_per_cu > MI250X.l1_bytes_per_cu);
    }

    #[test]
    fn spec_lookup_is_consistent() {
        for id in DeviceId::ALL {
            assert_eq!(id.spec().id, id);
        }
        assert_eq!(DeviceId::A100.spec().model, ProgrammingModel::Cuda);
        assert_eq!(DeviceId::Mi250x.spec().model, ProgrammingModel::Hip);
        assert_eq!(DeviceId::Max1550.spec().model, ProgrammingModel::Sycl);
    }

    #[test]
    fn issue_rate_positive() {
        for id in DeviceId::ALL {
            let s = id.spec();
            assert!(s.warp_issue_per_sec() > 0.0);
            assert!(s.sustained_issue_frac > 0.0 && s.sustained_issue_frac <= 1.0);
        }
    }
}

//! Grid launcher: run one kernel over many independent warps.
//!
//! The local assembly kernel assigns one contig (plus its reads) per warp,
//! and warps share no data — so the simulation parallelizes perfectly with
//! rayon while remaining deterministic (results are collected in job order
//! and counters are commutatively merged).

use crate::counters::AggCounters;
use crate::trace::WarpTrace;
use crate::warp::Warp;
use memhier::HierarchyConfig;
use rayon::prelude::*;

/// Configuration for a kernel launch.
#[derive(Debug, Clone, Copy)]
pub struct LaunchConfig {
    /// Warp/wavefront/sub-group width.
    pub width: u32,
    /// Per-warp view of the memory hierarchy (L2 already scaled to the
    /// occupancy-derived effective share — see `gpu-specs::occupancy`).
    pub hierarchy: HierarchyConfig,
    /// Simulate warps in parallel with rayon. Disable for strictly
    /// single-threaded runs (e.g. inside criterion benchmarks measuring
    /// simulator throughput).
    pub parallel: bool,
    /// Attach a [`crate::TraceSink`] to every warp and collect
    /// [`WarpTrace`]s in [`LaunchOutput::traces`]. Off by default; the
    /// launch stays deterministic either way (traces are merged in job
    /// order regardless of rayon scheduling).
    pub trace: bool,
}

impl LaunchConfig {
    /// A parallel, untraced launch at the given width and hierarchy.
    pub fn new(width: u32, hierarchy: HierarchyConfig) -> Self {
        LaunchConfig { width, hierarchy, parallel: true, trace: false }
    }
}

/// Result of a launch: per-job kernel outputs plus aggregated counters.
#[derive(Debug, Clone)]
pub struct LaunchOutput<R> {
    /// Kernel return values, in job order.
    pub results: Vec<R>,
    /// Counters aggregated over all warps.
    pub counters: AggCounters,
    /// Per-warp traces in job order (`warp_id` = job index); empty unless
    /// [`LaunchConfig::trace`] was set.
    pub traces: Vec<WarpTrace>,
}

/// Launch `kernel` once per job, each on a fresh warp.
///
/// The kernel receives a mutable [`Warp`] (with an empty memory arena — it
/// performs its own device-side allocation, mirroring the reserved slabs the
/// host pre-computes in the paper's Fig. 3 pipeline) and its job.
pub fn launch_warps<J, R, F>(cfg: LaunchConfig, jobs: &[J], kernel: F) -> LaunchOutput<R>
where
    J: Sync,
    R: Send,
    F: Fn(&mut Warp, &J) -> R + Sync,
{
    let run_one = |&(idx, job): &(usize, &J)| -> (R, crate::WarpCounters, Option<WarpTrace>) {
        let mut warp = Warp::new(cfg.width, cfg.hierarchy);
        if cfg.trace {
            warp.enable_trace(idx as u64);
        }
        let r = kernel(&mut warp, job);
        let counters = warp.finish();
        let trace = warp.take_trace();
        (r, counters, trace)
    };

    let indexed: Vec<(usize, &J)> = jobs.iter().enumerate().collect();
    let per_warp: Vec<(R, crate::WarpCounters, Option<WarpTrace>)> = if cfg.parallel {
        indexed.par_iter().map(run_one).collect()
    } else {
        indexed.iter().map(run_one).collect()
    };

    let mut agg = AggCounters::default();
    let mut results = Vec::with_capacity(per_warp.len());
    let mut traces = Vec::new();
    for (r, c, t) in per_warp {
        agg.absorb(&c);
        results.push(r);
        traces.extend(t);
    }
    LaunchOutput { results, counters: agg, traces }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lanevec::LaneVec;

    fn cfg(parallel: bool) -> LaunchConfig {
        LaunchConfig { width: 32, hierarchy: HierarchyConfig::tiny(), parallel, trace: false }
    }

    #[test]
    fn results_in_job_order() {
        let jobs: Vec<u32> = (0..100).collect();
        let out = launch_warps(cfg(true), &jobs, |w, &j| {
            w.iop(w.full_mask(), j as u64 + 1);
            j * 2
        });
        assert_eq!(out.results, (0..100).map(|j| j * 2).collect::<Vec<_>>());
        assert_eq!(out.counters.warps, 100);
    }

    #[test]
    fn counters_aggregate_deterministically() {
        let jobs: Vec<u32> = (0..64).collect();
        let body = |w: &mut Warp, j: &u32| {
            let base = w.mem.alloc(256);
            let addrs = LaneVec::from_fn(32, |l| base + 4 * l as u64);
            let vals = LaneVec::splat(*j);
            w.store_u32(w.full_mask(), &addrs, &vals);
            let _ = w.load_u32(w.full_mask(), &addrs);
            w.iop(w.full_mask(), 5);
        };
        let a = launch_warps(cfg(true), &jobs, body);
        let b = launch_warps(cfg(false), &jobs, body);
        assert_eq!(a.counters, b.counters, "parallel and serial launches agree");
        assert_eq!(a.counters.int_instructions, 64 * 5);
        assert_eq!(a.counters.intops(), 64 * 5 * 32);
    }

    #[test]
    fn max_warp_instructions_tracks_imbalance() {
        let jobs: Vec<u64> = vec![1, 1, 100, 1];
        let out = launch_warps(cfg(true), &jobs, |w, &j| w.iop(w.full_mask(), j));
        assert_eq!(out.counters.max_warp_instructions, 100);
    }

    #[test]
    fn empty_launch() {
        let out = launch_warps(cfg(true), &Vec::<u32>::new(), |_, _| 0u32);
        assert!(out.results.is_empty());
        assert_eq!(out.counters.warps, 0);
        assert!(out.traces.is_empty());
    }

    #[test]
    fn untraced_launch_collects_no_traces() {
        let jobs: Vec<u32> = (0..8).collect();
        let out = launch_warps(cfg(true), &jobs, |w, _| w.iop(w.full_mask(), 1));
        assert!(out.traces.is_empty());
    }

    /// A kernel with uneven per-job work, phases and events — enough to
    /// expose any scheduling-dependent trace ordering.
    fn traced_body(w: &mut Warp, j: &u32) {
        w.phase_enter("outer");
        w.phase_enter("compute");
        w.iop(w.full_mask(), *j as u64 % 17 + 1);
        w.phase_exit("compute");
        let preds = LaneVec::splat(true);
        let _ = w.ballot(w.full_mask(), &preds);
        w.syncwarp(w.full_mask());
        w.phase_exit("outer");
    }

    #[test]
    fn traces_merge_deterministically_parallel_vs_serial() {
        let jobs: Vec<u32> = (0..200).collect();
        let mut par = cfg(true);
        par.trace = true;
        let mut ser = cfg(false);
        ser.trace = true;
        let a = launch_warps(par, &jobs, traced_body);
        let b = launch_warps(ser, &jobs, traced_body);
        assert_eq!(a.traces.len(), 200);
        assert_eq!(a.traces, b.traces, "rayon scheduling must not leak into traces");
        for (i, t) in a.traces.iter().enumerate() {
            assert_eq!(t.warp_id, i as u64, "traces arrive in job order");
        }
        assert_eq!(a.counters, b.counters);
    }

    #[test]
    fn traced_launch_records_phases_and_events() {
        let jobs: Vec<u32> = vec![3, 5];
        let mut c = cfg(true);
        c.trace = true;
        let out = launch_warps(c, &jobs, traced_body);
        let t = &out.traces[0];
        assert_eq!(t.phase_names(), vec!["compute", "outer"]);
        // Inner span closed first; outer delta is inclusive.
        assert_eq!(t.spans[0].name, "compute");
        assert_eq!(t.spans[1].name, "outer");
        assert!(t.spans[1].delta.warp_instructions >= t.spans[0].delta.warp_instructions);
        let names: Vec<&str> = t.events.iter().map(|e| e.kind.name()).collect();
        assert!(names.contains(&"ballot"));
        assert!(names.contains(&"sync"));
    }

    #[test]
    fn tracing_does_not_change_counters() {
        let jobs: Vec<u32> = (0..32).collect();
        let mut traced = cfg(true);
        traced.trace = true;
        let a = launch_warps(traced, &jobs, traced_body);
        let b = launch_warps(cfg(true), &jobs, traced_body);
        assert_eq!(a.counters, b.counters, "observing a warp must not perturb it");
    }
}

//! Bounded multi-tenant admission queue with explicit backpressure and
//! weighted fair-share dequeue.
//!
//! The queue holds one FIFO lane per tenant plus two global limits: a
//! service-wide depth and a per-tenant quota. Admission is all-or-nothing
//! and synchronous — a request either takes a slot or gets a structured
//! [`RejectReason`] back; nothing ever grows without bound. Dequeue is a
//! deficit-free weighted round-robin over the tenant lanes in tenant-id
//! order from a rotating cursor: each packing round visits every lane,
//! takes up to `weight` requests from its front, and remembers where it
//! stopped so no tenant is systematically served first. All state is
//! plain ordered containers (`BTreeMap`, `VecDeque`) — iteration order,
//! and therefore every scheduling decision, is deterministic.

use crate::request::{ExtensionRequest, RejectReason};
use locassm_core::TenantId;
use std::collections::{BTreeMap, VecDeque};

/// Per-tenant admission limits and scheduling weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuota {
    /// Max requests this tenant may have queued at once (its burst
    /// budget). Further submissions are rejected with
    /// [`RejectReason::TenantQuotaExceeded`] until the queue drains.
    pub max_queued: usize,
    /// Fair-share weight: requests taken from this tenant's lane per
    /// packing round. Relative weights set relative throughput under
    /// contention; equal weights give equal shares.
    pub weight: u32,
}

impl Default for TenantQuota {
    fn default() -> Self {
        TenantQuota { max_queued: 64, weight: 1 }
    }
}

/// Queue-level configuration: global depth plus per-tenant quotas.
#[derive(Debug, Clone, Default)]
pub struct QueueConfig {
    /// Service-wide cap on queued requests across all tenants. `0` means
    /// "derive nothing special": a zero-depth queue rejects everything,
    /// which is a legal (if unhelpful) configuration — use
    /// [`QueueConfig::bounded`] for a sane default.
    pub total_depth: usize,
    /// Quota applied to tenants without an explicit entry in `quotas`.
    pub default_quota: TenantQuota,
    /// Per-tenant overrides (weights, burst budgets).
    pub quotas: BTreeMap<TenantId, TenantQuota>,
}

impl QueueConfig {
    /// A queue with the given total depth and default per-tenant quotas.
    pub fn bounded(total_depth: usize) -> Self {
        QueueConfig { total_depth, default_quota: TenantQuota::default(), quotas: BTreeMap::new() }
    }

    /// Override one tenant's quota.
    pub fn with_quota(mut self, tenant: TenantId, quota: TenantQuota) -> Self {
        self.quotas.insert(tenant, quota);
        self
    }

    /// The quota governing `tenant`.
    pub fn quota(&self, tenant: TenantId) -> TenantQuota {
        self.quotas.get(&tenant).copied().unwrap_or(self.default_quota)
    }
}

/// A request waiting in (or cycling back through) the queue, with its
/// accumulated service-side accounting.
#[derive(Debug, Clone)]
pub struct QueuedRequest {
    /// The request as submitted.
    pub req: ExtensionRequest,
    /// Absolute deadline instant (arrival + relative deadline), if any.
    pub deadline_at: Option<f64>,
    /// Service-level re-enqueues consumed so far.
    pub requeues: u32,
    /// Kernel attempts (batch runs + escalation retries) spent across
    /// every previous run of this request — the count
    /// `simt::FaultPlan::consume` is fed so a persistent fault's budget
    /// spans re-enqueues.
    pub attempts_spent: u32,
}

impl QueuedRequest {
    /// Wrap a fresh submission.
    pub fn new(req: ExtensionRequest) -> Self {
        let deadline_at = req.deadline_at();
        QueuedRequest { req, deadline_at, requeues: 0, attempts_spent: 0 }
    }

    /// True once `now` has passed this request's deadline.
    pub fn expired(&self, now: f64) -> bool {
        self.deadline_at.is_some_and(|d| d < now)
    }
}

/// The bounded multi-tenant queue.
#[derive(Debug, Default)]
pub struct AdmissionQueue {
    cfg: QueueConfig,
    lanes: BTreeMap<TenantId, VecDeque<QueuedRequest>>,
    queued: usize,
    /// Fair-share rotation: the tenant id the next packing round starts
    /// at (first key ≥ cursor, wrapping).
    cursor: TenantId,
}

impl AdmissionQueue {
    /// An empty queue under `cfg`.
    pub fn new(cfg: QueueConfig) -> Self {
        AdmissionQueue { cfg, lanes: BTreeMap::new(), queued: 0, cursor: TenantId(0) }
    }

    /// Requests currently queued, across all tenants.
    pub fn len(&self) -> usize {
        self.queued
    }

    /// True when no request is queued.
    pub fn is_empty(&self) -> bool {
        self.queued == 0
    }

    /// Requests currently queued for one tenant.
    pub fn tenant_depth(&self, tenant: TenantId) -> usize {
        self.lanes.get(&tenant).map_or(0, VecDeque::len)
    }

    /// Admit a fresh submission, or refuse it with explicit backpressure.
    /// The global depth is checked first (the queue protects itself
    /// before it arbitrates between tenants), then the tenant's quota.
    pub fn admit(&mut self, qr: QueuedRequest) -> Result<(), RejectReason> {
        if self.queued >= self.cfg.total_depth {
            return Err(RejectReason::QueueFull { depth: self.cfg.total_depth });
        }
        let tenant = qr.req.id.tenant;
        let quota = self.cfg.quota(tenant);
        if self.tenant_depth(tenant) >= quota.max_queued {
            return Err(RejectReason::TenantQuotaExceeded { quota: quota.max_queued });
        }
        self.push(qr);
        Ok(())
    }

    /// Re-enqueue a request the service already admitted (a retry coming
    /// off backoff). Bypasses the depth and quota checks: an admitted
    /// request owns its slot until it reaches a terminal outcome, so a
    /// retry can never be bounced by later arrivals.
    pub fn requeue(&mut self, qr: QueuedRequest) {
        self.push(qr);
    }

    fn push(&mut self, qr: QueuedRequest) {
        self.lanes.entry(qr.req.id.tenant).or_default().push_back(qr);
        self.queued += 1;
    }

    /// Remove and return every queued request whose deadline has passed
    /// at `now`, in (tenant, FIFO) order — the deterministic queue-side
    /// timeout sweep.
    pub fn drop_expired(&mut self, now: f64) -> Vec<QueuedRequest> {
        let mut expired = Vec::new();
        for lane in self.lanes.values_mut() {
            let mut keep = VecDeque::with_capacity(lane.len());
            while let Some(qr) = lane.pop_front() {
                if qr.expired(now) {
                    expired.push(qr);
                } else {
                    keep.push_back(qr);
                }
            }
            *lane = keep;
        }
        self.queued -= expired.len();
        self.lanes.retain(|_, l| !l.is_empty());
        expired
    }

    /// Weighted fair-share dequeue: visit tenant lanes round-robin from
    /// the rotating cursor, taking up to `weight` requests from each
    /// lane's front per cycle, while `fits` accepts them (the batch
    /// packer's footprint budget) and fewer than `max` are taken. A lane
    /// whose front request does not fit is blocked for this packing (its
    /// FIFO order is never violated); other lanes keep filling the batch.
    pub fn take_fair(
        &mut self,
        max: usize,
        mut fits: impl FnMut(&QueuedRequest) -> bool,
    ) -> Vec<QueuedRequest> {
        let mut taken = Vec::new();
        if max == 0 || self.queued == 0 {
            return taken;
        }
        // Snapshot the lane order once: keys ≥ cursor first, then wrap.
        let mut order: Vec<TenantId> = self.lanes.keys().copied().collect();
        let pivot = order.iter().position(|&t| t >= self.cursor).unwrap_or(0);
        order.rotate_left(pivot);
        let mut blocked: Vec<bool> = vec![false; order.len()];
        let mut progressed = true;
        while progressed && taken.len() < max {
            progressed = false;
            for (li, &tenant) in order.iter().enumerate() {
                if blocked[li] || taken.len() >= max {
                    continue;
                }
                let weight = self.cfg.quota(tenant).weight.max(1) as usize;
                let Some(lane) = self.lanes.get_mut(&tenant) else { continue };
                for _ in 0..weight {
                    if taken.len() >= max {
                        break;
                    }
                    match lane.front() {
                        None => break,
                        Some(front) if !fits(front) => {
                            blocked[li] = true;
                            break;
                        }
                        Some(_) => {}
                    }
                    if let Some(qr) = lane.pop_front() {
                        self.queued -= 1;
                        taken.push(qr);
                        progressed = true;
                        // Rotate fairness past the lane we just served.
                        self.cursor = TenantId(tenant.0.wrapping_add(1));
                    }
                }
            }
        }
        self.lanes.retain(|_, l| !l.is_empty());
        taken
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locassm_core::{ContigJob, Read, RequestId};

    fn request(tenant: u32, seq: u32, arrival: f64) -> QueuedRequest {
        let job = ContigJob::new(
            seq,
            b"ACGTACGTACGT".to_vec(),
            vec![Read::with_uniform_qual(b"ACGTACGTACGTACGT", b'I')],
            vec![],
        );
        QueuedRequest::new(ExtensionRequest::new(
            RequestId::new(TenantId(tenant), seq),
            job,
            arrival,
        ))
    }

    #[test]
    fn global_depth_backpressure() {
        let mut q = AdmissionQueue::new(QueueConfig::bounded(2));
        assert!(q.admit(request(0, 0, 0.0)).is_ok());
        assert!(q.admit(request(1, 0, 0.0)).is_ok());
        assert_eq!(
            q.admit(request(2, 0, 0.0)),
            Err(RejectReason::QueueFull { depth: 2 }),
            "the third submission must be refused, not buffered"
        );
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn tenant_quota_isolates_bursts() {
        let cfg = QueueConfig::bounded(100)
            .with_quota(TenantId(0), TenantQuota { max_queued: 1, weight: 1 });
        let mut q = AdmissionQueue::new(cfg);
        assert!(q.admit(request(0, 0, 0.0)).is_ok());
        assert_eq!(
            q.admit(request(0, 1, 0.0)),
            Err(RejectReason::TenantQuotaExceeded { quota: 1 })
        );
        // Another tenant still has headroom.
        assert!(q.admit(request(1, 0, 0.0)).is_ok());
    }

    #[test]
    fn requeue_bypasses_admission() {
        let mut q = AdmissionQueue::new(QueueConfig::bounded(1));
        assert!(q.admit(request(0, 0, 0.0)).is_ok());
        // The queue is full, but a retry owns its slot.
        q.requeue(request(0, 1, 0.0));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn fair_share_round_robins_across_tenants() {
        let mut q = AdmissionQueue::new(QueueConfig::bounded(100));
        for seq in 0..3 {
            for tenant in 0..3 {
                assert!(q.admit(request(tenant, seq, 0.0)).is_ok());
            }
        }
        let taken = q.take_fair(6, |_| true);
        let order: Vec<(u32, u32)> =
            taken.iter().map(|t| (t.req.id.tenant.0, t.req.id.seq)).collect();
        // One per tenant per cycle, FIFO within a tenant.
        assert_eq!(order, vec![(0, 0), (1, 0), (2, 0), (0, 1), (1, 1), (2, 1)]);
        // The cursor rotated: the next round starts after the last lane
        // served, so tenant 0's remaining request does not go first.
        let rest = q.take_fair(3, |_| true);
        let rest_order: Vec<u32> = rest.iter().map(|t| t.req.id.tenant.0).collect();
        assert_eq!(rest.len(), 3);
        assert_eq!(rest_order[0], 0, "wrap starts at first key >= cursor");
    }

    #[test]
    fn weights_scale_the_share() {
        let cfg = QueueConfig::bounded(100)
            .with_quota(TenantId(0), TenantQuota { max_queued: 64, weight: 2 });
        let mut q = AdmissionQueue::new(cfg);
        for seq in 0..4 {
            assert!(q.admit(request(0, seq, 0.0)).is_ok());
            assert!(q.admit(request(1, seq, 0.0)).is_ok());
        }
        let taken = q.take_fair(6, |_| true);
        let t0 = taken.iter().filter(|t| t.req.id.tenant.0 == 0).count();
        let t1 = taken.iter().filter(|t| t.req.id.tenant.0 == 1).count();
        assert_eq!((t0, t1), (4, 2), "weight 2 takes twice the share");
    }

    #[test]
    fn blocked_lane_does_not_block_others() {
        let mut q = AdmissionQueue::new(QueueConfig::bounded(100));
        assert!(q.admit(request(0, 0, 0.0)).is_ok());
        assert!(q.admit(request(1, 0, 0.0)).is_ok());
        assert!(q.admit(request(1, 1, 0.0)).is_ok());
        // Refuse tenant 0's front request (an oversized job): tenant 1
        // still fills the batch.
        let taken = q.take_fair(8, |qr| qr.req.id.tenant.0 != 0);
        let tenants: Vec<u32> = taken.iter().map(|t| t.req.id.tenant.0).collect();
        assert_eq!(tenants, vec![1, 1]);
        assert_eq!(q.len(), 1, "the blocked request stays queued");
    }

    #[test]
    fn expired_requests_sweep_out_in_order() {
        let mut q = AdmissionQueue::new(QueueConfig::bounded(100));
        let mut fresh = request(0, 0, 0.0);
        fresh.deadline_at = Some(10.0);
        let mut stale = request(0, 1, 0.0);
        stale.deadline_at = Some(1.0);
        let eternal = request(1, 0, 0.0);
        assert!(q.admit(fresh).is_ok());
        assert!(q.admit(stale).is_ok());
        assert!(q.admit(eternal).is_ok());
        let expired = q.drop_expired(5.0);
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].req.id.seq, 1);
        assert_eq!(q.len(), 2, "unexpired requests keep their slots");
    }

    #[test]
    fn zero_depth_rejects_everything() {
        let mut q = AdmissionQueue::new(QueueConfig::bounded(0));
        assert!(matches!(
            q.admit(request(0, 0, 0.0)),
            Err(RejectReason::QueueFull { depth: 0 })
        ));
        assert!(q.is_empty());
        assert!(q.take_fair(4, |_| true).is_empty());
    }
}

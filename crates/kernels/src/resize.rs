//! Tombstone deletion and warp-cooperative in-kernel incremental resizing.
//!
//! The paper's kernel treats a full hash table as fatal pathology
//! (`"*hashtable full*"`), and the launch layer's grown-`slot_reserve`
//! escalation re-runs the whole job host-side. WarpSpeed-class GPU tables
//! complete the engine instead: deletion writes a [`TOMBSTONE`] sentinel
//! (never terminating a probe scan — see the rule in [`crate::table`]),
//! and when occupancy crosses the layout's high-water mark mid-insert the
//! warp allocates a successor region from its arena, migrates live slots
//! in bounded warp-width chunks (ballot-coordinated, so every dialect
//! stays warp-synchronous), and retires the old region. `HashTableFull`
//! escalation thereby demotes from "common long-tail path" to "arena
//! genuinely exhausted".
//!
//! Everything here is gated on [`DeviceJob::resize`]: with the knob off
//! (the default) no code in this module runs and every table access stays
//! bit-identical to the fixed-capacity engine.

use crate::fault::KernelFault;
use crate::layout::{
    key_hash, walk_budget, DeviceJob, EMPTY, ENTRY_STRIDE, OFF_KEY_LEN, OFF_KEY_OFF,
};
use crate::table::TOMBSTONE;
use simt::{LaneVec, Mask, Warp};

/// Incremental resizes one job may perform (base, 2×, 4×): past the cap
/// the insert falls back to the `HashTableFull` fault, which by then
/// genuinely means the arena cannot hold a bigger table. The footprint
/// estimates ([`crate::layout::stage_footprint`]) price exactly this many
/// successor slabs.
pub const MAX_RESIZES: u32 = 2;

/// Delete each active lane's slot: store [`TOMBSTONE`] into the slot's
/// key-length word. The slot stays claimed for probe purposes — scans
/// pass through it, inserts never reclaim it — until the next migration
/// drops it. Host-side counters track the deletion for the sanitizer's
/// tombstone-consistency scan.
pub fn ht_delete(warp: &mut Warp, job: &mut DeviceJob, mask: Mask, slot: &LaneVec<u32>) {
    if mask.is_empty() {
        return;
    }
    let addrs = LaneVec::from_fn(warp.width(), |l| job.entry_field(slot[l], OFF_KEY_LEN));
    let vals = LaneVec::splat(TOMBSTONE);
    warp.store_u32(mask, &addrs, &vals);
    let n = mask.count();
    job.tombstones += n;
    job.occupied = job.occupied.saturating_sub(n);
}

/// Pre-insert capacity check, called by every dialect at the top of
/// `ht_get_atomic` when [`DeviceJob::resize`] is armed: while the claimed
/// slots (live + tombstones) plus the incoming warp-width burst would
/// cross the layout's high-water mark, migrate into the grown geometry.
/// Bounded by [`MAX_RESIZES`]; a job that outgrows the cap falls through
/// to the ordinary `HashTableFull` discipline.
pub fn ensure_capacity(
    warp: &mut Warp,
    job: &mut DeviceJob,
    incoming: u32,
) -> Result<(), KernelFault> {
    if !job.resize {
        return Ok(());
    }
    while job.resizes_done < MAX_RESIZES {
        let high = job.layout.as_layout().high_water(job);
        if job.occupied + job.tombstones + incoming <= high {
            break;
        }
        grow(warp, job)?;
    }
    Ok(())
}

/// One warp-cooperative incremental resize: allocate the successor region
/// (zeroed by the arena, so every slot starts `EMPTY`), migrate live
/// entries chunk by chunk, retire the old region.
///
/// Migration is warp-synchronous: each chunk covers one warp-width window
/// of old slots, every lane loads its slot's key-length word, and one
/// ballot coordinates which lanes carry live entries before they re-probe
/// into the successor. Tombstones are dropped wholesale — the successor
/// table starts tombstone-free, which is what lets deletion-heavy
/// workloads keep their probe chains short.
///
/// An armed [`simt::InjectedFaults::resize_abort`] fires after the first
/// chunk: the job is left mid-migration (old region partially drained,
/// successor partially filled) and the structured
/// [`KernelFault::ResizeAborted`] tells the launch layer to restart it
/// from staging. Non-victim jobs never see this path.
fn grow(warp: &mut Warp, job: &mut DeviceJob) -> Result<(), KernelFault> {
    let lay = job.layout.as_layout();
    let geo = lay.grown_geometry(job);
    let new_ht = warp.mem.try_alloc_aligned(geo.slots as u64 * ENTRY_STRIDE, 32)?;

    // The successor view: same job, new region — `slot_at` under the new
    // geometry is what the re-probe walks.
    let mut next = job.clone();
    next.ht = new_ht;
    next.slots = geo.slots;
    next.front_slots = geo.front_slots;
    let next_lay = next.layout.as_layout();
    let next_bound = next_lay.probe_bound(&next);

    let width = warp.width();
    let words = (ENTRY_STRIDE / 4) as u32;
    let mut migrated = 0u32;
    let mut chunk_start = 0u32;
    while chunk_start < job.slots {
        let lanes_in_chunk = width.min(job.slots - chunk_start);
        let mut active = Mask::NONE;
        for l in 0..lanes_in_chunk {
            active.set(l);
        }
        // Every lane loads its slot's key-length word…
        let len_addrs = LaneVec::from_fn(width, |l| {
            job.entry_field((chunk_start + l).min(job.slots - 1), OFF_KEY_LEN)
        });
        let lens = warp.load_u32(active, &len_addrs);
        warp.iop(active, 2); // sentinel classification (EMPTY / TOMBSTONE / live)
        let mut live = Mask::NONE;
        for l in active.lanes() {
            if lens[l] != EMPTY && lens[l] != TOMBSTONE {
                live.set(l);
            }
        }
        // …and one ballot coordinates the chunk: which lanes re-probe.
        let preds = LaneVec::from_fn(width, |l| live.contains(l));
        warp.ballot(active, &preds);

        let offs = {
            let off_addrs = LaneVec::from_fn(width, |l| {
                job.entry_field((chunk_start + l).min(job.slots - 1), OFF_KEY_OFF)
            });
            warp.load_u32(live, &off_addrs)
        };
        for l in live.lanes() {
            let src = chunk_start + l;
            let key = warp
                .mem
                .read_bytes(job.reads + offs[l] as u64, lens[l] as u64)
                .to_vec();
            let h = key_hash(&key);
            let lm = Mask::lane(l);
            // Re-hash charged at the insert dialects' rate.
            warp.iop(lm, locassm_core::murmur::murmur_intops(job.k));
            // First EMPTY along the key's sequence under the *new*
            // geometry; a grown table always has one within the bound.
            let mut target = None;
            for idx in 0..next_bound {
                let t = next_lay.slot_at(&next, h, idx);
                warp.touch_u32_with(lm, |_| next.entry_field(t, OFF_KEY_LEN));
                warp.iop(lm, 2); // probe compare + cursor
                if warp.mem.read_u32(next.entry_field(t, OFF_KEY_LEN)) == EMPTY {
                    target = Some(t);
                    break;
                }
            }
            let Some(t) = target else {
                return Err(KernelFault::HashTableFull {
                    capacity: next.slots,
                    occupancy: migrated,
                });
            };
            // Copy the whole 48-byte entry, word by word (counts, quality
            // sums and the decided extension all travel with the key).
            for w in 0..words {
                let src_addr = job.ht + src as u64 * ENTRY_STRIDE + w as u64 * 4;
                let v = warp.mem.read_u32(src_addr);
                warp.touch_u32_with(lm, |_| src_addr);
                let dst = LaneVec::splat(next.ht + t as u64 * ENTRY_STRIDE + w as u64 * 4);
                warp.store_u32(lm, &dst, &LaneVec::splat(v));
            }
            migrated += 1;
        }
        chunk_start += lanes_in_chunk;

        // The injected device-side interruption: fault after the first
        // chunk, leaving the migration visibly half-done.
        if warp.injected_faults().resize_abort && chunk_start < job.slots {
            return Err(KernelFault::ResizeAborted {
                from_slots: job.slots,
                to_slots: next.slots,
                migrated,
            });
        }
    }

    // Retire the old region: the job now points at the successor. The
    // walk budget tracks the new probe bound (invariant 10: resizing
    // changes capacity and probe cost, never extensions), and tombstones
    // were dropped by construction.
    job.ht = next.ht;
    job.slots = next.slots;
    job.front_slots = next.front_slots;
    job.occupied = migrated;
    job.tombstones = 0;
    job.resizes_done += 1;
    job.walk_budget = walk_budget(job.k, lay.probe_bound(job), job.walk);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insert_cuda::ht_get_atomic;
    use crate::probe::InsertArgs;
    use crate::table::TableLayoutKind;
    use locassm_core::walk::WalkConfig;
    use locassm_core::Read;
    use memhier::HierarchyConfig;

    fn scrambled_seq(len: usize) -> Vec<u8> {
        let mut state = 0x2545_f491u64;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                b"ACGT"[(state % 4) as usize]
            })
            .collect()
    }

    fn staged(kind: TableLayoutKind, resize: bool) -> (Warp, DeviceJob) {
        let mut warp = Warp::new(32, HierarchyConfig::tiny());
        let seq = scrambled_seq(120);
        let reads = vec![Read::with_uniform_qual(&seq, b'I')];
        let mut job = DeviceJob::stage_with_layout(
            &mut warp,
            b"ACGTACGTACGTACGTACGTA",
            &reads,
            21,
            WalkConfig::default(),
            1,
            kind,
        )
        .unwrap();
        job.resize = resize;
        (warp, job)
    }

    fn insert_all(warp: &mut Warp, job: &mut DeviceJob) -> Vec<u32> {
        let mut slots = Vec::new();
        let span = job.spans[0];
        for start in 0..=(span.len as usize - job.k) {
            let off = span.offset + start as u32;
            let key = warp.mem.read_bytes(job.reads + off as u64, job.k as u64);
            let h = key_hash(key);
            let args = InsertArgs {
                mask: Mask::lane(0),
                key_off: LaneVec::splat(off),
                hash: LaneVec::splat(h),
            };
            let s = ht_get_atomic(warp, job, &args).unwrap();
            slots.push(s[0]);
        }
        slots
    }

    #[test]
    fn delete_tombstones_the_slot_and_tracks_counters() {
        let (mut warp, mut job) = staged(TableLayoutKind::LinearProbe, true);
        let slots = insert_all(&mut warp, &mut job);
        let live_before = job.occupied;
        assert!(live_before > 0, "bookkeeping follows inserts");
        ht_delete(&mut warp, &mut job, Mask::lane(0), &LaneVec::splat(slots[0]));
        assert_eq!(
            warp.mem.read_u32(job.entry_field(slots[0], OFF_KEY_LEN)),
            TOMBSTONE
        );
        assert_eq!(job.tombstones, 1);
        assert_eq!(job.occupied, live_before - 1);
    }

    #[test]
    fn tombstone_does_not_terminate_a_reinsert_probe() {
        // Claim two slots on one chain, tombstone the first, then
        // re-insert the second key: the probe must pass through the
        // tombstone and find the live entry, not claim a fresh slot.
        let (mut warp, mut job) = staged(TableLayoutKind::LinearProbe, true);
        let h = 7u32;
        let mk = |off: u32| InsertArgs {
            mask: Mask::lane(0),
            key_off: LaneVec::splat(off),
            hash: LaneVec::splat(h),
        };
        let a = ht_get_atomic(&mut warp, &mut job, &mk(0)).unwrap()[0];
        let b = ht_get_atomic(&mut warp, &mut job, &mk(1)).unwrap()[0];
        assert_ne!(a, b, "distinct keys on one chain");
        ht_delete(&mut warp, &mut job, Mask::lane(0), &LaneVec::splat(a));
        let again = ht_get_atomic(&mut warp, &mut job, &mk(1)).unwrap()[0];
        assert_eq!(again, b, "the tombstone must not hide the live key");
    }

    /// Stage under a table squeeze so the first warp-width burst of
    /// inserts crosses the high-water mark and growth actually runs.
    fn squeezed(squeeze: u32) -> (Warp, DeviceJob) {
        let mut warp = Warp::new(32, HierarchyConfig::tiny());
        warp.inject_table_squeeze(squeeze);
        let seq = scrambled_seq(120);
        let reads = vec![Read::with_uniform_qual(&seq, b'I')];
        let mut job = DeviceJob::stage(
            &mut warp,
            b"ACGTACGTACGTACGTACGTA",
            &reads,
            21,
            WalkConfig::default(),
            1,
        )
        .unwrap();
        job.resize = true;
        (warp, job)
    }

    #[test]
    fn growth_triggers_at_the_high_water_mark_and_preserves_content() {
        let (mut warp, mut job) = squeezed(4);
        let base_slots = job.slots;
        insert_all(&mut warp, &mut job);
        assert!(job.resizes_done >= 1, "the squeezed table must have grown");
        assert!(job.slots > base_slots);
        assert_eq!(job.tombstones, 0, "migration drops tombstones");
        // Every inserted key is still found at its (new) slot.
        let span = job.spans[0];
        for start in 0..=(span.len as usize - job.k) {
            let off = span.offset + start as u32;
            let key = warp.mem.read_bytes(job.reads + off as u64, job.k as u64).to_vec();
            let args = InsertArgs {
                mask: Mask::lane(0),
                key_off: LaneVec::splat(off),
                hash: LaneVec::splat(key_hash(&key)),
            };
            let s = ht_get_atomic(&mut warp, &mut job, &args).unwrap()[0];
            let stored = warp.mem.read_u32(job.entry_field(s, OFF_KEY_OFF));
            let stored_key =
                warp.mem.read_bytes(job.reads + stored as u64, job.k as u64).to_vec();
            assert_eq!(stored_key, key, "lookup after growth finds the migrated entry");
        }
    }

    #[test]
    fn sanitizer_scans_stay_clean_after_growth() {
        let (mut warp, mut job) = squeezed(4);
        insert_all(&mut warp, &mut job);
        assert!(job.resizes_done >= 1);
        let found = crate::layout::check_table_invariants(&warp, &job);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn resize_abort_injection_faults_mid_migration() {
        let (mut warp, mut job) = squeezed(4);
        warp.inject_resize_abort();
        let span = job.spans[0];
        let mut fault = None;
        for start in 0..=(span.len as usize - job.k) {
            let off = span.offset + start as u32;
            let key = warp.mem.read_bytes(job.reads + off as u64, job.k as u64).to_vec();
            let args = InsertArgs {
                mask: Mask::lane(0),
                key_off: LaneVec::splat(off),
                hash: LaneVec::splat(key_hash(&key)),
            };
            if let Err(f) = ht_get_atomic(&mut warp, &mut job, &args) {
                fault = Some(f);
                break;
            }
        }
        match fault.expect("the armed abort must fire on the first growth") {
            KernelFault::ResizeAborted { from_slots, to_slots, migrated } => {
                assert!(to_slots > from_slots);
                assert!(migrated <= from_slots);
            }
            other => panic!("wrong fault: {other:?}"),
        }
    }

    #[test]
    fn resize_disabled_never_runs_this_module() {
        let (mut warp, mut job) = staged(TableLayoutKind::LinearProbe, false);
        let before = warp.mem.allocated();
        insert_all(&mut warp, &mut job);
        assert_eq!(job.resizes_done, 0);
        assert_eq!(warp.mem.allocated(), before, "no successor slab without the knob");
    }
}

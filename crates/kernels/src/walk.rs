//! The device-side mer-walk (Algorithm 2, Fig. 4).
//!
//! One thread of the warp performs the walk — "relatively short graph
//! walks are faster if done serially" (§I) — while the rest are masked
//! out; the terminating state is then broadcast to the full warp with
//! shuffles. All the instruction cost is charged to the single-lane mask,
//! which is exactly the thread-predication effect the paper analyses:
//! every walk instruction still occupies the whole warp.

use crate::layout::{DeviceJob, EMPTY, OFF_HI_Q, OFF_KEY_LEN, OFF_KEY_OFF, OFF_LOW_Q};
use locassm_core::murmur::murmur_intops;
use locassm_core::walk::{decide_extension, window_fingerprint, Walk, WalkState};
use locassm_core::HtValue;
use simt::{LaneVec, Mask, Warp};

/// Walk lane (lane 0 performs the walk).
const WALK_LANE: u32 = 0;

/// Perform the mer-walk from the staged contig's terminal k-mer.
///
/// Semantics are identical to `locassm_core::mer_walk` on the CPU table —
/// the integration tests assert bit-equality of extensions — while every
/// memory access and integer operation is charged to the simulator.
pub fn mer_walk_kernel(warp: &mut Warp, job: &DeviceJob) -> Walk {
    let lane = WALK_LANE;
    let lm = Mask::lane(lane);
    let k = job.k;
    let chunks = k.div_ceil(4) as u64;
    let cfg = job.walk;

    // Slice the terminal k-mer out of the contig (Algorithm 2 line 4).
    let tail = job.contig + job.contig_len as u64 - k as u64;
    for j in 0..chunks {
        // Chunked loads; the final chunk is clamped to stay in bounds.
        let addr = (tail + 4 * j).min(job.contig + job.contig_len as u64 - 4);
        let _ = warp.load_u32_scalar(lane, addr);
    }
    let mut window = warp.mem.read_bytes(tail, k as u64).to_vec();

    let mut visited = 0u64;
    let mut extension: Vec<u8> = Vec::new();
    let mut steps = 0u32;

    let walk = 'walk: loop {
        if extension.len() >= cfg.max_walk_len {
            break WalkState::MaxLen;
        }

        // Hash the window once: it is both the table index and the
        // visited-set fingerprint (the paper's INTOP2: one hash per lookup).
        warp.iop(lm, murmur_intops(k));
        let fp = window_fingerprint(&window);

        // loop_exists(k-mer): scan the visited list in device memory.
        for i in 0..visited {
            let v = warp.load_u32_scalar(lane, job.visited + 4 * i);
            warp.iop(lm, 1);
            if v == fp {
                break 'walk WalkState::Loop;
            }
        }
        warp.store_u32_scalar(lane, job.visited + 4 * visited, fp);
        visited += 1;

        steps += 1;

        // ext = k-mer_ht.lookup(k-mer): linear probe from murmur % slots.
        let mut slot = fp % job.slots;
        warp.iop(lm, 2);
        let mut found = None;
        let mut probes = 0u32;
        for _probe in 0..job.slots {
            probes += 1;
            let len_v = warp.load_u32_scalar(lane, job.entry_field(slot, OFF_KEY_LEN));
            warp.iop(lm, 1);
            if len_v == EMPTY {
                break;
            }
            let off = warp.load_u32_scalar(lane, job.entry_field(slot, OFF_KEY_OFF));
            for j in 0..chunks {
                let _ = warp.load_u32_scalar(lane, job.reads + off as u64 + 4 * j);
                warp.iop(lm, 1);
            }
            let stored = warp.mem.read_bytes(job.reads + off as u64, k as u64);
            if stored == window.as_slice() {
                found = Some(slot);
                break;
            }
            slot = (slot + 1) % job.slots;
            warp.iop(lm, 2);
        }
        warp.trace_event(simt::EventKind::WalkStep { probes });
        let Some(s) = found else {
            break WalkState::End;
        };

        // Load the vote counters and decide the extension.
        let mut val = HtValue::default();
        for b in 0..4u64 {
            val.hi_q[b as usize] =
                warp.load_u32_scalar(lane, job.entry_field(s, OFF_HI_Q + 4 * b));
            val.low_q[b as usize] =
                warp.load_u32_scalar(lane, job.entry_field(s, OFF_LOW_Q + 4 * b));
        }
        warp.iop(lm, 12); // vote scoring + winner/runner-up reduction

        match decide_extension(&val, cfg.min_votes) {
            Ok(base) => {
                let ch = locassm_core::index_base(base);
                warp.store_u8_scalar(lane, job.out + extension.len() as u64, ch);
                extension.push(ch);
                window.rotate_left(1);
                window[k - 1] = ch;
                warp.iop(lm, 4); // window shift + append bookkeeping
            }
            Err(state) => break state,
        }
    };

    // Broadcast the walk state and length to the warp (Fig. 4).
    let state_vec = LaneVec::splat(walk as u32);
    let _ = warp.shfl_u32(warp.full_mask(), &state_vec, lane);
    let len_vec = LaneVec::splat(extension.len() as u32);
    let _ = warp.shfl_u32(warp.full_mask(), &len_vec, lane);
    warp.syncwarp(warp.full_mask());

    Walk { extension, state: walk, steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::construct_hash_table;
    use crate::kernel::Dialect;
    use locassm_core::walk::{mer_walk, WalkConfig};
    use locassm_core::{assemble, Read};
    use memhier::HierarchyConfig;

    fn run_gpu(contig: &[u8], reads: &[Read], k: usize, cfg: WalkConfig) -> Walk {
        let mut warp = Warp::new(32, HierarchyConfig::tiny());
        let job = DeviceJob::stage(&mut warp, contig, reads, k, cfg);
        construct_hash_table(&mut warp, &job, Dialect::Cuda);
        mer_walk_kernel(&mut warp, &job)
    }

    fn run_cpu(contig: &[u8], reads: &[Read], k: usize, cfg: WalkConfig) -> Walk {
        let ht = assemble::build_table(reads, k);
        mer_walk(&ht, contig, k, &cfg)
    }

    fn cfg() -> WalkConfig {
        WalkConfig { min_votes: 1, ..WalkConfig::default() }
    }

    #[test]
    fn gpu_walk_matches_cpu_unique_path() {
        let reads = vec![Read::with_uniform_qual(b"ACGTACGGTTACCA", b'I')];
        let contig = b"GGGGACGTACG";
        let gpu = run_gpu(contig, &reads, 4, cfg());
        let cpu = run_cpu(contig, &reads, 4, cfg());
        assert_eq!(gpu, cpu);
        assert!(!gpu.extension.is_empty());
    }

    #[test]
    fn gpu_walk_matches_cpu_on_fork() {
        let reads = vec![
            Read::with_uniform_qual(b"TACGTA", b'I'),
            Read::with_uniform_qual(b"TACGTC", b'I'),
        ];
        let gpu = run_gpu(b"TTACGT", &reads, 5, cfg());
        let cpu = run_cpu(b"TTACGT", &reads, 5, cfg());
        assert_eq!(gpu, cpu);
        assert_eq!(gpu.state, WalkState::Fork);
    }

    #[test]
    fn gpu_walk_matches_cpu_on_loop() {
        let reads = vec![Read::with_uniform_qual(b"AACCAACCAACC", b'I')];
        let gpu = run_gpu(b"GGAACC", &reads, 4, cfg());
        let cpu = run_cpu(b"GGAACC", &reads, 4, cfg());
        assert_eq!(gpu, cpu);
        assert_eq!(gpu.state, WalkState::Loop);
    }

    #[test]
    fn gpu_walk_max_len() {
        let reads = vec![Read::with_uniform_qual(b"AACCAACCAACC", b'I')];
        let short = WalkConfig { max_walk_len: 2, min_votes: 1, ..WalkConfig::default() };
        let gpu = run_gpu(b"GGAACC", &reads, 4, short);
        assert_eq!(gpu.state, WalkState::MaxLen);
        assert_eq!(gpu.extension.len(), 2);
    }

    #[test]
    fn walk_cost_is_single_lane() {
        let reads = vec![Read::with_uniform_qual(b"ACGTACGGTTACCA", b'I')];
        let mut warp = Warp::new(32, HierarchyConfig::tiny());
        let job = DeviceJob::stage(&mut warp, b"GGGGACGTACG", &reads, 4, cfg());
        construct_hash_table(&mut warp, &job, Dialect::Cuda);
        let before = warp.snapshot();
        let _ = mer_walk_kernel(&mut warp, &job);
        let delta = warp.snapshot().since(&before);
        // All walk integer instructions ran with one active lane out of 32.
        assert!(delta.int_instructions > 0);
        assert!(
            delta.lane_utilization() < 0.05,
            "walk utilization should be ~1/32, got {}",
            delta.lane_utilization()
        );
    }
}

//! # locassm-kernels — the GPU local assembly kernel, three dialects
//!
//! Warp-synchronous transcriptions of the paper's kernel (Fig. 4,
//! Appendix A), executed on the `simt` simulator:
//!
//! * [`insert_cuda`] — `ht_get_atomic` via `atomicCAS` +
//!   `__match_any_sync` + `__syncwarp(mask)` (the original optimized CUDA
//!   path, warp width 32),
//! * [`insert_hip`] — the HIP port: no `__match_any_sync` on CDNA, so a
//!   per-lane `done` flag with `__all(done)` loop termination
//!   (wavefront width 64),
//! * [`insert_sycl`] — the SYCL port: sub-group `barrier()` per probe
//!   round (sub-group width 16).
//!
//! [`construct`] drives warp-parallel hash-table construction
//! (Algorithm 1), [`walk`] the single-lane mer-walk with shuffle broadcast
//! (Algorithm 2), [`kernel`] composes them into the right/left extension
//! kernels, and [`launch`] is the host pipeline of Fig. 3 (binning → size
//! estimation → batching → kernel calls), producing a [`profile::KernelProfile`]
//! with the counters the paper collects via `ncu`/`rocprof`/Advisor.

pub mod construct;
pub mod fault;
pub mod insert_cuda;
pub mod insert_hip;
pub mod insert_sycl;
pub mod kernel;
pub mod launch;
pub mod multi_gpu;
pub mod pipeline;
pub mod layout;
pub mod probe;
pub mod profile;
pub mod resize;
pub mod table;
pub mod tune;
pub mod walk;

pub use fault::{JobOutcome, KernelFault};
pub use kernel::Dialect;
pub use launch::{dialect_sanitizer, run_local_assembly, GpuConfig, GpuRunResult};
pub use probe::ProbeStrategy;
pub use resize::{ensure_capacity, ht_delete, MAX_RESIZES};
pub use table::{TableGeometry, TableLayout, TableLayoutKind, TOMBSTONE};
pub use tune::{tune, tune_with, TuneSpace, TunedChoice};
pub use multi_gpu::{run_multi_gpu, MultiGpuResult, Partition};
pub use pipeline::{run_pipeline_gpu, GpuPipelineResult, GpuRoundReport};
pub use profile::{KernelProfile, PhaseCounters, PhaseStats, SchedProfile, TraceProfile};

//! HIP-dialect `ht_get_atomic` (paper Appendix A, second listing).
//!
//! AMD wavefronts lack `__match_any_sync` and `__syncwarp(mask)`, so the
//! port keeps every lane in the loop with a `done` flag and terminates via
//! `__all(done)` — two `__all` ballots per round in the listing. The whole
//! 64-lane wavefront keeps issuing until the slowest probe chain finishes,
//! and every round pays the extra vote collectives: this is the modeled
//! productivity/performance cost of the missing intrinsics (§III-B).

use crate::fault::KernelFault;
use crate::layout::{table_occupancy, DeviceJob, EMPTY};
use crate::probe::{
    advance, bucket_crossing_vote, cas_claim, compare_stored_keys, publish_key, start_slots,
    InsertArgs, SlotVec,
};
use crate::resize::ensure_capacity;
use crate::table::TOMBSTONE;
use simt::{LaneVec, Mask, Warp};

/// Find-or-claim the entry for each active lane's k-mer. Returns the slot
/// index per lane, or `HashTableFull` if a probe chain wraps the table.
///
/// The wrap guard counts *probing* rounds, exactly like the CUDA and SYCL
/// dialects: a loop-top `__all(done)` that terminates the warp is not a
/// probe, so `rounds` only advances once lanes actually claim/compare.
/// All three dialects fault on the round that would revisit the probe's
/// origin (`rounds` past the layout's probe bound — `job.slots` for
/// linear probing). Tombstones and the resize high-water check follow the
/// shared rule documented on [`crate::insert_cuda::ht_get_atomic`].
pub fn ht_get_atomic(
    warp: &mut Warp,
    job: &mut DeviceJob,
    args: &InsertArgs,
) -> Result<SlotVec, KernelFault> {
    if warp.injected_faults().table_full {
        return Err(KernelFault::HashTableFull {
            capacity: job.slots,
            occupancy: table_occupancy(warp, job),
        });
    }
    ensure_capacity(warp, job, args.mask.count())?;
    let probe_bound = job.layout.as_layout().probe_bound(job);
    let mut slot = start_slots(warp, job, args);
    let mut done = LaneVec::from_fn(warp.width(), |l| !args.mask.contains(l));

    // Wrap guard: the table is sized host-side, so a full wrap means the
    // estimate was violated ("*hashtable full*" in the listings).
    let mut rounds = 0u32;
    loop {
        // if (__all(done)) return …
        let done_preds = LaneVec::from_fn(warp.width(), |l| done[l]);
        if warp.all(warp.full_mask(), &done_preds) {
            warp.trace_event(simt::EventKind::ProbeChain { rounds });
            return Ok(slot);
        }
        rounds += 1;
        if rounds > probe_bound {
            warp.san_record(simt::SanKind::ProbeWrap { rounds, slots: job.slots });
            return Err(KernelFault::HashTableFull {
                capacity: job.slots,
                occupancy: table_occupancy(warp, job),
            });
        }

        let not_done = {
            let mut m = Mask::NONE;
            for l in args.mask.lanes() {
                if !done[l] {
                    m.set(l);
                }
            }
            m
        };

        // if (!done) prev = atomicCAS(...)
        let prev = cas_claim(warp, job, not_done, &slot);

        // Winners publish their key (implicit wavefront lockstep stands in
        // for the missing __syncwarp — §III-B's "implicit synchronization").
        let mut winners = Mask::NONE;
        for l in not_done.lanes() {
            if prev[l] == EMPTY {
                winners.set(l);
            }
        }
        publish_key(warp, job, winners, &slot, args);
        job.occupied += winners.count();

        // if (!done) { match/own checks set the done flag }. Tombstoned
        // slots are excluded from the compare (stale key bytes) and keep
        // probing — the shared tombstone rule.
        let losers = {
            let mut m = Mask::NONE;
            for l in not_done.lanes() {
                if prev[l] != EMPTY && prev[l] != TOMBSTONE {
                    m.set(l);
                }
            }
            m
        };
        let eq = compare_stored_keys(warp, job, losers, &slot, args);
        warp.iop(not_done, 2); // done-flag updates
        for l in not_done.lanes() {
            if prev[l] == EMPTY || eq[l] {
                done[l] = true;
            }
        }

        // Second __all(done) check of the listing.
        let done_preds = LaneVec::from_fn(warp.width(), |l| done[l]);
        if warp.all(warp.full_mask(), &done_preds) {
            warp.trace_event(simt::EventKind::ProbeChain { rounds });
            return Ok(slot);
        }

        // if (!done) hash_val = (hash_val + 1) % max_size
        let still = {
            let mut m = Mask::NONE;
            for l in args.mask.lanes() {
                if !done[l] {
                    m.set(l);
                }
            }
            m
        };
        bucket_crossing_vote(warp, job, still, rounds - 1);
        advance(warp, job, still, &args.hash, rounds, &mut slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::OFF_KEY_LEN;
    use locassm_core::walk::WalkConfig;
    use locassm_core::Read;
    use memhier::HierarchyConfig;

    fn setup(width: u32) -> (Warp, DeviceJob) {
        let mut warp = Warp::new(width, HierarchyConfig::tiny());
        let reads = vec![Read::with_uniform_qual(b"ACGTACGTACGT", b'I')];
        let job =
            DeviceJob::stage(&mut warp, b"ACGTACGTACGT", &reads, 4, WalkConfig::default(), 1)
                .unwrap();
        (warp, job)
    }

    #[test]
    fn wavefront_width_64_supported() {
        let (mut warp, mut job) = setup(64);
        let mask = Mask::full(64);
        // 9 distinct offsets 0..8 cycle ACGT…; offsets ≥ 9 reuse offset % 9.
        let args = InsertArgs {
            mask,
            key_off: LaneVec::from_fn(64, |l| l % 9),
            hash: LaneVec::from_fn(64, |l| {
                let key = (0..4).map(|_| 0).collect::<Vec<u8>>();
                let _ = key;
                // All start at slot (l % 9 * 3 % slots) — synthetic spread.
                (l % 9 * 3) % job.slots
            }),
        };
        let slots = ht_get_atomic(&mut warp, &mut job, &args).unwrap();
        // Lanes with the same key_off must land on the same slot.
        for l in 0..64u32 {
            assert_eq!(slots[l], slots[l % 9], "lane {l}");
        }
    }

    #[test]
    fn same_result_as_cuda_dialect() {
        // Insert identical work through both dialects; the resulting table
        // contents must agree (same claimed slots given same start hashes).
        let run = |cuda: bool| {
            let (mut warp, mut job) = setup(32);
            let args = InsertArgs {
                mask: Mask(0b111),
                key_off: LaneVec::from_fn(32, |l| l), // ACGT, CGTA, GTAC
                hash: LaneVec::splat(5u32),
            };
            let slots = if cuda {
                crate::insert_cuda::ht_get_atomic(&mut warp, &mut job, &args)
            } else {
                ht_get_atomic(&mut warp, &mut job, &args)
            }
            .unwrap();
            (0..3).map(|l| slots[l]).collect::<Vec<_>>()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn hip_pays_two_ballots_per_probe_round() {
        // The done-flag loop issues two `__all` votes per round (the
        // listing's loop-top and post-update checks). A forced 2-round
        // probe chain therefore costs exactly 4 ballots — and, unlike
        // CUDA, they are full-wavefront vote collectives rather than
        // mask-scoped syncs; the dialect's larger cost shows up through
        // the 64-wide wavefront (see
        // `construct::tests::wider_warp_wastes_lanes_on_short_reads`).
        let (mut warp, mut job) = setup(32);
        let args = InsertArgs {
            mask: Mask(0b11),
            key_off: LaneVec::from_fn(32, |l| l), // distinct keys
            hash: LaneVec::splat(0u32),           // colliding start slot
        };
        let _ = ht_get_atomic(&mut warp, &mut job, &args);
        assert_eq!(warp.counters.collective_instructions, 4, "2 rounds × 2 __all");
        assert_eq!(warp.counters.sync_instructions, 0, "no __syncwarp on HIP");
    }

    #[test]
    fn empty_mask_returns_immediately() {
        let (mut warp, mut job) = setup(32);
        let args = InsertArgs {
            mask: Mask::NONE,
            key_off: LaneVec::splat(0u32),
            hash: LaneVec::splat(0u32),
        };
        let _ = ht_get_atomic(&mut warp, &mut job, &args);
        assert_eq!(warp.counters.atomic_instructions, 0);
        // One __all ballot was still issued (the loop-top check).
        assert_eq!(warp.counters.collective_instructions, 1);
        // Nothing claimed.
        assert_eq!(warp.mem.read_u32(job.entry_field(0, OFF_KEY_LEN)), EMPTY);
    }
}

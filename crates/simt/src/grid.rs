//! Grid launcher: run one kernel over many independent warps.
//!
//! The local assembly kernel assigns one contig (plus its reads) per warp,
//! and warps share no data — so the simulation parallelizes perfectly with
//! rayon while remaining deterministic (results are collected in job order
//! and counters are commutatively merged).

use crate::counters::AggCounters;
use crate::warp::Warp;
use memhier::HierarchyConfig;
use rayon::prelude::*;

/// Configuration for a kernel launch.
#[derive(Debug, Clone, Copy)]
pub struct LaunchConfig {
    /// Warp/wavefront/sub-group width.
    pub width: u32,
    /// Per-warp view of the memory hierarchy (L2 already scaled to the
    /// occupancy-derived effective share — see `gpu-specs::occupancy`).
    pub hierarchy: HierarchyConfig,
    /// Simulate warps in parallel with rayon. Disable for strictly
    /// single-threaded runs (e.g. inside criterion benchmarks measuring
    /// simulator throughput).
    pub parallel: bool,
}

impl LaunchConfig {
    pub fn new(width: u32, hierarchy: HierarchyConfig) -> Self {
        LaunchConfig { width, hierarchy, parallel: true }
    }
}

/// Result of a launch: per-job kernel outputs plus aggregated counters.
#[derive(Debug, Clone)]
pub struct LaunchOutput<R> {
    /// Kernel return values, in job order.
    pub results: Vec<R>,
    /// Counters aggregated over all warps.
    pub counters: AggCounters,
}

/// Launch `kernel` once per job, each on a fresh warp.
///
/// The kernel receives a mutable [`Warp`] (with an empty memory arena — it
/// performs its own device-side allocation, mirroring the reserved slabs the
/// host pre-computes in the paper's Fig. 3 pipeline) and its job.
pub fn launch_warps<J, R, F>(cfg: LaunchConfig, jobs: &[J], kernel: F) -> LaunchOutput<R>
where
    J: Sync,
    R: Send,
    F: Fn(&mut Warp, &J) -> R + Sync,
{
    let run_one = |job: &J| -> (R, crate::WarpCounters) {
        let mut warp = Warp::new(cfg.width, cfg.hierarchy);
        let r = kernel(&mut warp, job);
        let counters = warp.finish();
        (r, counters)
    };

    let per_warp: Vec<(R, crate::WarpCounters)> = if cfg.parallel {
        jobs.par_iter().map(run_one).collect()
    } else {
        jobs.iter().map(run_one).collect()
    };

    let mut agg = AggCounters::default();
    let mut results = Vec::with_capacity(per_warp.len());
    for (r, c) in per_warp {
        agg.absorb(&c);
        results.push(r);
    }
    LaunchOutput { results, counters: agg }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lanevec::LaneVec;

    fn cfg(parallel: bool) -> LaunchConfig {
        LaunchConfig { width: 32, hierarchy: HierarchyConfig::tiny(), parallel }
    }

    #[test]
    fn results_in_job_order() {
        let jobs: Vec<u32> = (0..100).collect();
        let out = launch_warps(cfg(true), &jobs, |w, &j| {
            w.iop(w.full_mask(), j as u64 + 1);
            j * 2
        });
        assert_eq!(out.results, (0..100).map(|j| j * 2).collect::<Vec<_>>());
        assert_eq!(out.counters.warps, 100);
    }

    #[test]
    fn counters_aggregate_deterministically() {
        let jobs: Vec<u32> = (0..64).collect();
        let body = |w: &mut Warp, j: &u32| {
            let base = w.mem.alloc(256);
            let addrs = LaneVec::from_fn(32, |l| base + 4 * l as u64);
            let vals = LaneVec::splat(*j);
            w.store_u32(w.full_mask(), &addrs, &vals);
            let _ = w.load_u32(w.full_mask(), &addrs);
            w.iop(w.full_mask(), 5);
        };
        let a = launch_warps(cfg(true), &jobs, body);
        let b = launch_warps(cfg(false), &jobs, body);
        assert_eq!(a.counters, b.counters, "parallel and serial launches agree");
        assert_eq!(a.counters.int_instructions, 64 * 5);
        assert_eq!(a.counters.intops(), 64 * 5 * 32);
    }

    #[test]
    fn max_warp_instructions_tracks_imbalance() {
        let jobs: Vec<u64> = vec![1, 1, 100, 1];
        let out = launch_warps(cfg(true), &jobs, |w, &j| w.iop(w.full_mask(), j));
        assert_eq!(out.counters.max_warp_instructions, 100);
    }

    #[test]
    fn empty_launch() {
        let out = launch_warps(cfg(true), &Vec::<u32>::new(), |_, _| 0u32);
        assert!(out.results.is_empty());
        assert_eq!(out.counters.warps, 0);
    }
}

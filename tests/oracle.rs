//! Cross-crate oracle tests: the three GPU kernel dialects must produce
//! extensions bit-identical to the CPU reference implementation on
//! randomized workloads of every paper k.

use locassm::core::{assemble_all, AssemblyConfig};
use locassm::kernels::{run_local_assembly, Dialect, GpuConfig};
use locassm::specs::DeviceId;
use locassm::workloads::paper_dataset;

fn check(k: usize, seed: u64, device: DeviceId) {
    let ds = paper_dataset(k, 0.002, seed);
    let cfg = GpuConfig::for_device(device);
    let gpu = run_local_assembly(&ds, &cfg);
    let cpu = assemble_all(&ds.jobs, &AssemblyConfig { k, walk: cfg.walk, retry: cfg.retry.clone() }, true);
    assert_eq!(
        gpu.extensions, cpu,
        "device {device} must match the CPU oracle for k={k}, seed={seed}"
    );
}

#[test]
fn cuda_dialect_matches_cpu_all_k() {
    for k in [21, 33, 55, 77] {
        check(k, 1000 + k as u64, DeviceId::A100);
    }
}

#[test]
fn hip_dialect_matches_cpu_all_k() {
    for k in [21, 33, 55, 77] {
        check(k, 2000 + k as u64, DeviceId::Mi250x);
    }
}

#[test]
fn sycl_dialect_matches_cpu_all_k() {
    for k in [21, 33, 55, 77] {
        check(k, 3000 + k as u64, DeviceId::Max1550);
    }
}

#[test]
fn oracle_holds_across_seeds() {
    for seed in [7, 8, 9, 10, 11] {
        check(21, seed, DeviceId::A100);
    }
}

#[test]
fn nonnative_dialects_also_match() {
    // Any (device, dialect, width) combination computes the same biology —
    // the ablation matrix depends on this.
    let ds = paper_dataset(33, 0.002, 77);
    let cpu = assemble_all(
        &ds.jobs,
        &AssemblyConfig::new(33),
        true,
    );
    for dialect in [Dialect::Cuda, Dialect::Hip, Dialect::Sycl] {
        for width in [8u32, 16, 32, 64] {
            let mut cfg = GpuConfig::for_device(DeviceId::A100);
            cfg.dialect = dialect;
            cfg.width = width;
            let gpu = run_local_assembly(&ds, &cfg);
            assert_eq!(gpu.extensions, cpu, "dialect {dialect} width {width}");
        }
    }
}

#[test]
fn extensions_are_real_dna_and_bounded() {
    let ds = paper_dataset(55, 0.003, 5);
    let cfg = GpuConfig::for_device(DeviceId::A100);
    let run = run_local_assembly(&ds, &cfg);
    for e in &run.extensions {
        assert!(locassm::core::valid_seq(&e.right));
        assert!(locassm::core::valid_seq(&e.left));
        assert!(e.right.len() <= cfg.walk.max_walk_len);
        assert!(e.left.len() <= cfg.walk.max_walk_len);
    }
}

#[test]
fn retry_ladder_keeps_gpu_cpu_parity() {
    // The Fig. 4 retry loop must not break the oracle: both sides walk the
    // same ladder and accept with the same rule.
    use locassm::core::RetryPolicy;
    let ds = paper_dataset(33, 0.002, 91);
    let mut cfg = GpuConfig::for_device(DeviceId::A100);
    cfg.retry = RetryPolicy::ladder(33);
    let gpu = run_local_assembly(&ds, &cfg);
    let cpu = assemble_all(
        &ds.jobs,
        &AssemblyConfig { k: 33, walk: cfg.walk, retry: cfg.retry.clone() },
        true,
    );
    assert_eq!(gpu.extensions, cpu);
}

#[test]
fn retry_ladder_rescues_thin_coverage() {
    // Reads shorter than the primary k contribute zero k-mers at k=15 but
    // plenty at the ladder's k=11 — the retry recovers an extension the
    // single-k configuration cannot produce.
    use locassm::core::walk::WalkConfig;
    use locassm::core::{ContigJob, Read, RetryPolicy};
    let genome = b"ACGATTGCCATAGGCTTACCGATG";
    let contig = genome[..16].to_vec();
    // A 14-base read containing the contig's terminal 11-mer (no 15-mers!).
    let read = Read::with_uniform_qual(&genome[4..18], b'I');
    let job = ContigJob::new(0, contig, vec![read], vec![]);

    let base = AssemblyConfig {
        k: 15,
        walk: WalkConfig { min_votes: 1, ..WalkConfig::default() },
        retry: RetryPolicy::none(),
    };
    let without = locassm::core::extend_contig(&job, &base);
    assert!(without.right.is_empty(), "k=15 alone cannot use 14-base reads");

    let with = AssemblyConfig { retry: RetryPolicy::ladder(15), ..base.clone() };
    let rescued = locassm::core::extend_contig(&job, &with);
    assert!(!rescued.right.is_empty(), "the k=11 retry must extend");
    // And the GPU kernel agrees.
    let ds = locassm::core::io::Dataset::new(15, vec![job]);
    let mut cfg = GpuConfig::for_device(DeviceId::Max1550);
    cfg.walk = with.walk;
    cfg.retry = with.retry.clone();
    let gpu = run_local_assembly(&ds, &cfg);
    assert_eq!(gpu.extensions[0], rescued);
}

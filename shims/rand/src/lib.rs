//! Offline vendored stand-in for the `rand` crate.
//!
//! This workspace builds in environments with no crates.io access, so the
//! small slice of `rand` it relies on is vendored here (see
//! `shims/README.md`). Only what the workspace actually calls is
//! implemented: [`rngs::StdRng`] seeded with [`SeedableRng::seed_from_u64`],
//! [`RngExt::random_range`] / [`RngExt::random_bool`], and
//! [`seq::SliceRandom::shuffle`]. Determinism for a given seed is the only
//! quality guarantee; this is a SplitMix64 generator, not a CSPRNG.

/// A source of random `u64`s.
pub trait Rng {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (high half of [`Rng::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of an [`Rng`] from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    /// The standard deterministic generator (SplitMix64 under the hood).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
        }
    }

    impl crate::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// A range that can be sampled uniformly; implemented for the integer
/// `Range`/`RangeInclusive` types the workspace uses.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i64, isize);

// An unsuffixed literal range (`0..4`) falls back to `i32`; call sites use
// those as slice indices, so i32 ranges sample to `usize` (and must be
// non-negative). Suffix the bounds (`0..4i64`) for signed sampling.
impl SampleRange<usize> for core::ops::Range<i32> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> usize {
        assert!(0 <= self.start && self.start < self.end, "bad index range");
        let span = (self.end - self.start) as u64;
        (self.start as u64 + rng.next_u64() % span) as usize
    }
}

impl SampleRange<usize> for core::ops::RangeInclusive<i32> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(0 <= lo && lo <= hi, "bad index range");
        let span = (hi - lo) as u64 + 1;
        (lo as u64 + rng.next_u64() % span) as usize
    }
}

/// Convenience sampling methods on any [`Rng`].
pub trait RngExt: Rng {
    /// Uniform sample from `range` (`lo..hi` or `lo..=hi`).
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (which must lie in `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53 high-quality bits -> uniform f64 in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Sequence-related helpers.
pub mod seq {
    use crate::{Rng, RngExt};

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..8).map(|_| a.random_range(0..1_000_000u64)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random_range(0..1_000_000u64)).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(10..20usize);
            assert!((10..20).contains(&v));
            let w = rng.random_range(-3..=3i64);
            assert!((-3..=3).contains(&w));
            let i = rng.random_range(0..4);
            assert!(i < 4usize, "unsuffixed ranges sample as indices");
        }
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}

//! The paper's analytic artifacts, end to end: Tables V & VI exactness,
//! machine balances, the published portability arithmetic.

use locassm::core::{murmur_intops, MurmurOpBreakdown};
use locassm::perfmodel::{performance_portability, theoretical_ii, TheoreticalModel};
use locassm::specs::DeviceId;

#[test]
fn table5_totals_exact() {
    assert_eq!(murmur_intops(21), 215);
    assert_eq!(murmur_intops(33), 305);
    assert_eq!(murmur_intops(55), 457);
    assert_eq!(murmur_intops(77), 635);
}

#[test]
fn table5_component_rows() {
    for k in [21, 33, 55, 77] {
        let b = MurmurOpBreakdown::for_len(k);
        assert_eq!(b.initialization, 33);
        assert_eq!(b.cleanup, 31);
    }
    // The paper's published mix-loop rows (pure mix ops).
    assert_eq!(MurmurOpBreakdown::for_len(21).paper_mix_row(), 125);
    assert_eq!(MurmurOpBreakdown::for_len(77).paper_mix_row(), 475);
}

#[test]
fn table6_exact() {
    let expect = [(21usize, 430u64, 89u64), (33, 610, 125), (55, 914, 191), (77, 1270, 257)];
    for (k, intops, bytes) in expect {
        let m = TheoreticalModel::for_k(k);
        assert_eq!(m.intops_per_cycle(), intops);
        assert_eq!(m.bytes_per_cycle(), bytes);
    }
    // II column to the paper's printed precision.
    assert!((theoretical_ii(21) - 4.831).abs() < 1e-3);
    assert!((theoretical_ii(33) - 4.880).abs() < 1e-3);
    assert!((theoretical_ii(55) - 4.785).abs() < 1e-3);
    assert!((theoretical_ii(77) - 4.942).abs() < 1e-3);
}

#[test]
fn fig6_machine_balances() {
    assert!((DeviceId::A100.spec().machine_balance() - 0.23).abs() < 0.01);
    assert!((DeviceId::Mi250x.spec().machine_balance() - 0.23).abs() < 0.01);
    assert!((DeviceId::Max1550.spec().machine_balance() - 0.09).abs() < 0.01);
}

#[test]
fn table4_published_average() {
    // The paper's Table IV rows; the harmonic means and their average.
    let rows = [
        [0.128, 0.151, 0.156],
        [0.149, 0.158, 0.173],
        [0.145, 0.188, 0.161],
        [0.156, 0.161, 0.153],
    ];
    let ps: Vec<f64> = rows.iter().map(|r| performance_portability(r)).collect();
    // Printed row values: 14.4%, 15.9%, 16.3%, 15.6%.
    for (p, expect) in ps.iter().zip([0.144, 0.159, 0.163, 0.156]) {
        assert!((p - expect).abs() < 0.002, "{p} vs {expect}");
    }
    // The paper prints "Average P_arch = 15.5%"; the mean of its own rows
    // is 15.56% — consistent.
    let avg = ps.iter().sum::<f64>() / ps.len() as f64;
    assert!((avg - 0.155).abs() < 0.002, "{avg}");
}

#[test]
fn murmur_hash_agrees_with_known_structure() {
    // Same input, same output across the whole workspace boundary
    // (core's hasher is what kernels and CPU tables both use).
    use locassm::core::murmur_hash_aligned2;
    let h1 = murmur_hash_aligned2(b"ACGTACGTACGTACGTACGTA", 0x9747_b28c);
    let h2 = murmur_hash_aligned2(b"ACGTACGTACGTACGTACGTA", 0x9747_b28c);
    assert_eq!(h1, h2);
}

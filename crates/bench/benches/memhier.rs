//! Memory-hierarchy simulator throughput: how fast the substrate itself
//! processes sector streams (this bounds end-to-end simulation speed).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use memhier::{coalesce_sectors, AccessKind, CacheConfig, HierarchyConfig, MemHierarchy};
use std::hint::black_box;

fn hier() -> MemHierarchy {
    MemHierarchy::new(HierarchyConfig {
        l1: CacheConfig::new(24 * 1024, 128, 4),
        l2: CacheConfig::new(48 * 1024, 128, 16),
    })
}

fn bench_sequential_stream(c: &mut Criterion) {
    let mut g = c.benchmark_group("memhier");
    let n = 10_000u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("sequential_4B_reads", |b| {
        b.iter(|| {
            let mut h = hier();
            for i in 0..n {
                let acc = coalesce_sectors([(i * 4, 4u32)]);
                h.access(black_box(&acc), AccessKind::Read);
            }
            h.stats().hbm_bytes()
        })
    });
    g.bench_function("random_4B_reads", |b| {
        b.iter(|| {
            let mut h = hier();
            let mut x = 0x2545F4914F6CDD1Du64;
            for _ in 0..n {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let acc = coalesce_sectors([((x % (1 << 22)) & !3, 4u32)]);
                h.access(black_box(&acc), AccessKind::Read);
            }
            h.stats().hbm_bytes()
        })
    });
    g.bench_function("warp_coalesce_32_lanes", |b| {
        b.iter(|| {
            let acc = coalesce_sectors((0..32u64).map(|l| (l * 4, 4u32)));
            black_box(acc.transactions())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_sequential_stream);
criterion_main!(benches);

//! The extension kernel: dialect dispatch + construct-then-walk per warp.

use crate::construct::construct_hash_table;
use crate::fault::KernelFault;
use crate::layout::DeviceJob;
use crate::probe::{InsertArgs, ProbeStrategy, SlotVec};
use crate::table::TableLayoutKind;
use crate::walk::mer_walk_kernel;
use gpu_specs::{DeviceId, ProgrammingModel};
use locassm_core::walk::{WalkConfig, WalkState};
use locassm_core::{Read, RetryPolicy};
use simt::{Warp, WarpCounters};
use std::borrow::Cow;

/// The three kernel dialects of the paper (Appendix A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dialect {
    Cuda,
    Hip,
    Sycl,
}

impl Dialect {
    /// The dialect written for a programming model (Table I).
    pub fn for_model(m: ProgrammingModel) -> Dialect {
        match m {
            ProgrammingModel::Cuda => Dialect::Cuda,
            ProgrammingModel::Hip => Dialect::Hip,
            ProgrammingModel::Sycl => Dialect::Sycl,
        }
    }

    /// The dialect the paper runs on a device (CUDA↔A100, HIP↔MI250X,
    /// SYCL↔Max 1550).
    pub fn native_for(device: DeviceId) -> Dialect {
        Dialect::for_model(device.spec().model)
    }

    /// Dispatch `ht_get_atomic`. The job is mutable because an armed
    /// in-kernel resize ([`DeviceJob::resize`]) may swap the table region
    /// and capacity mid-insert (see [`crate::resize`]).
    pub fn insert(
        self,
        warp: &mut Warp,
        job: &mut DeviceJob,
        args: &InsertArgs,
    ) -> Result<SlotVec, KernelFault> {
        match self {
            Dialect::Cuda => crate::insert_cuda::ht_get_atomic(warp, job, args),
            Dialect::Hip => crate::insert_hip::ht_get_atomic(warp, job, args),
            Dialect::Sycl => crate::insert_sycl::ht_get_atomic(warp, job, args),
        }
    }
}

impl std::fmt::Display for Dialect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Dialect::Cuda => "CUDA",
            Dialect::Hip => "HIP",
            Dialect::Sycl => "SYCL",
        };
        f.write_str(s)
    }
}

/// One warp's work item.
///
/// The sequence data and retry policy are [`Cow`]s so the batch-assembly
/// hot path stays zero-copy: right-extension jobs *borrow* their contig
/// and reads straight from the `Dataset` (the host never duplicates
/// sequence bytes, mirroring how the real pipeline hands the kernel
/// pointers into pinned host buffers), while left-extension jobs own the
/// reverse-complemented transform that genuinely requires new storage.
#[derive(Debug, Clone)]
pub struct KernelJob<'a> {
    pub contig: Cow<'a, [u8]>,
    pub reads: Cow<'a, [Read]>,
    pub k: usize,
    pub walk: WalkConfig,
    pub retry: Cow<'a, RetryPolicy>,
    pub dialect: Dialect,
    /// Multiplier on the host-side hash-table slot estimate. 1 for first
    /// attempts; the launch layer raises it when escalating a
    /// `HashTableFull` fault (grown-table retry).
    pub slot_reserve: u32,
    /// Probe-cursor strategy for every table access of the job (a tuning
    /// dimension — see [`crate::tune`](mod@crate::tune); extensions are invariant).
    pub probe: ProbeStrategy,
    /// Table organization for every hash-table access of the job (see
    /// [`crate::table`]); like `probe`, a pure tuning dimension —
    /// extensions are invariant across layouts.
    pub layout: TableLayoutKind,
    /// Arm in-kernel incremental resizing (see [`crate::resize`]): the
    /// insert dialects grow the table past its high-water mark instead of
    /// faulting `HashTableFull` for the grown-reserve escalation ladder.
    /// Like `probe`/`layout`, a pure capacity policy — extensions are
    /// invariant.
    pub resize: bool,
}

impl<'a> KernelJob<'a> {
    /// A zero-copy job borrowing its inputs (the right-extension path).
    pub fn borrowed(
        contig: &'a [u8],
        reads: &'a [Read],
        k: usize,
        walk: WalkConfig,
        retry: &'a RetryPolicy,
        dialect: Dialect,
    ) -> Self {
        KernelJob {
            contig: Cow::Borrowed(contig),
            reads: Cow::Borrowed(reads),
            k,
            walk,
            retry: Cow::Borrowed(retry),
            dialect,
            slot_reserve: 1,
            probe: ProbeStrategy::default(),
            layout: TableLayoutKind::default(),
            resize: false,
        }
    }

    /// A job owning transformed inputs (the left-extension path, which
    /// reverse-complements contig and reads), still borrowing the retry
    /// policy.
    pub fn transformed(
        contig: Vec<u8>,
        reads: Vec<Read>,
        k: usize,
        walk: WalkConfig,
        retry: &'a RetryPolicy,
        dialect: Dialect,
    ) -> Self {
        KernelJob {
            contig: Cow::Owned(contig),
            reads: Cow::Owned(reads),
            k,
            walk,
            retry: Cow::Borrowed(retry),
            dialect,
            slot_reserve: 1,
            probe: ProbeStrategy::default(),
            layout: TableLayoutKind::default(),
            resize: false,
        }
    }

    /// A fully owned job with no outside borrows (tests, single-shot runs).
    pub fn owned(
        contig: Vec<u8>,
        reads: Vec<Read>,
        k: usize,
        walk: WalkConfig,
        retry: RetryPolicy,
        dialect: Dialect,
    ) -> KernelJob<'static> {
        KernelJob {
            contig: Cow::Owned(contig),
            reads: Cow::Owned(reads),
            k,
            walk,
            retry: Cow::Owned(retry),
            dialect,
            slot_reserve: 1,
            probe: ProbeStrategy::default(),
            layout: TableLayoutKind::default(),
            resize: false,
        }
    }
}

/// What one warp returns to the host.
#[derive(Debug, Clone)]
pub struct KernelOut {
    pub extension: Vec<u8>,
    pub state: WalkState,
    /// Counter snapshot at the construct/walk phase boundary.
    pub construct: WarpCounters,
    /// The walk-phase instruction budget of the last k tried (the
    /// watchdog ceiling derived from the staged layout; 0 when nothing
    /// was staged).
    pub walk_budget: u64,
}

/// The per-warp extension kernel body: stage → Algorithm 1 → Algorithm 2,
/// repeated down the retry ladder while the walk is not accepted (Fig. 4's
/// "repeat with different k-mer size" loop — each retry rebuilds the hash
/// table at the smaller k, exactly as the diagram shows).
///
/// Faults (arena exhaustion, hash-table overflow, a tripped walk
/// watchdog, malformed inputs) propagate as `Err` instead of panicking;
/// the launch layer decides whether to retry. Every open trace phase is
/// closed before an `Err` return, so a faulting warp can still be
/// drained and returned to the pool.
pub fn extension_kernel(
    warp: &mut Warp,
    job: &KernelJob<'_>,
) -> Result<KernelOut, KernelFault> {
    if job.reads.is_empty() {
        return Ok(KernelOut {
            extension: Vec::new(),
            state: WalkState::End,
            construct: warp.snapshot(),
            walk_budget: 0,
        });
    }
    if job.k == 0 {
        return Err(KernelFault::MalformedJob { reason: "k must be positive" });
    }
    let mut best: Option<locassm_core::Walk> = None;
    let mut construct = warp.snapshot();
    let mut walk_budget = 0u64;
    for k in job.retry.schedule(job.k) {
        if job.contig.len() < k {
            continue;
        }
        if job.contig.len() < 4 {
            // The walk tail clamp reads the contig's last 4-byte chunk;
            // shorter contigs (that still cover k) cannot be staged.
            return Err(KernelFault::MalformedJob {
                reason: "contig shorter than one 4-base chunk",
            });
        }
        warp.phase_enter("stage");
        let staged = DeviceJob::stage_with_layout(
            warp,
            &job.contig,
            &job.reads,
            k,
            job.walk,
            job.slot_reserve,
            job.layout,
        );
        warp.phase_exit("stage");
        let mut dev = staged?;
        // The probe strategy travels on the job, not the stage call, so
        // the ~dozen direct `DeviceJob::stage` call sites keep their
        // signature (and their Linear default).
        dev.probe = job.probe;
        dev.resize = job.resize;
        warp.phase_enter("construct");
        if let Err(fault) = construct_hash_table(warp, &mut dev, job.dialect) {
            warp.phase_exit("construct");
            return Err(fault);
        }
        warp.phase_exit("construct");
        // Read the budget *after* construct: an in-kernel resize changes
        // the table capacity and probe cost, and re-derives the watchdog
        // ceiling for the grown geometry.
        walk_budget = dev.walk_budget;
        if warp.san_config().invariants {
            // Sanitizer invariant pass: host-side table scan, zero modeled
            // instructions (collected first — recording needs &mut).
            for kind in crate::layout::check_table_invariants(warp, &dev) {
                warp.san_record(kind);
            }
        }
        construct = warp.snapshot();
        warp.phase_enter("walk");
        let walk = mer_walk_kernel(warp, &dev);
        warp.phase_exit("walk");
        let walk = walk?;
        let accepted = job.retry.accepts(&walk);
        let longer = best.as_ref().is_none_or(|b| walk.extension.len() >= b.extension.len());
        if longer {
            best = Some(walk);
        }
        if accepted {
            break;
        }
    }
    Ok(match best {
        Some(walk) => KernelOut { extension: walk.extension, state: walk.state, construct, walk_budget },
        None => KernelOut {
            extension: Vec::new(),
            state: WalkState::End,
            construct: warp.snapshot(),
            walk_budget,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use memhier::HierarchyConfig;

    #[test]
    fn dialect_mappings() {
        assert_eq!(Dialect::native_for(DeviceId::A100), Dialect::Cuda);
        assert_eq!(Dialect::native_for(DeviceId::Mi250x), Dialect::Hip);
        assert_eq!(Dialect::native_for(DeviceId::Max1550), Dialect::Sycl);
        assert_eq!(Dialect::Cuda.to_string(), "CUDA");
    }

    #[test]
    fn degenerate_jobs_return_empty() {
        let mut warp = Warp::new(32, HierarchyConfig::tiny());
        let job = KernelJob::owned(
            b"ACG".to_vec(),
            vec![Read::with_uniform_qual(b"ACGTACGT", b'I')],
            5,
            WalkConfig::default(),
            RetryPolicy::none(),
            Dialect::Cuda,
        );
        let out = extension_kernel(&mut warp, &job).unwrap();
        assert!(out.extension.is_empty());
        assert_eq!(out.state, WalkState::End);
    }

    #[test]
    fn zero_k_is_a_malformed_job() {
        let mut warp = Warp::new(32, HierarchyConfig::tiny());
        let job = KernelJob::owned(
            b"ACGTACGT".to_vec(),
            vec![Read::with_uniform_qual(b"ACGTACGT", b'I')],
            0,
            WalkConfig::default(),
            RetryPolicy::none(),
            Dialect::Cuda,
        );
        match extension_kernel(&mut warp, &job) {
            Err(KernelFault::MalformedJob { .. }) => {}
            other => panic!("expected MalformedJob, got {other:?}"),
        }
    }

    #[test]
    fn kernel_extends_and_counts_phases() {
        let mut warp = Warp::new(32, HierarchyConfig::tiny());
        let job = KernelJob::owned(
            b"GGGGACGTACG".to_vec(),
            vec![Read::with_uniform_qual(b"ACGTACGGTTACCA", b'I')],
            4,
            WalkConfig { min_votes: 1, ..WalkConfig::default() },
            RetryPolicy::none(),
            Dialect::Cuda,
        );
        let out = extension_kernel(&mut warp, &job).unwrap();
        assert!(!out.extension.is_empty());
        assert!(out.walk_budget > 0, "a staged job reports its walk budget");
        let total = warp.finish();
        assert!(out.construct.int_instructions > 0);
        assert!(
            total.int_instructions > out.construct.int_instructions,
            "walk phase must add instructions"
        );
    }
}

#[cfg(test)]
mod capacity_boundary_tests {
    //! Regression tests pinning the unified wrap-guard boundary: every
    //! dialect allows exactly `job.slots` probing rounds (one full wrap)
    //! and faults on the round that would revisit the chain's origin.
    //! Before unification the HIP dialect allowed `slots + 2` rounds and
    //! CUDA/SYCL `slots + 1`, so a chain could re-probe its own origin.

    use super::*;
    use crate::probe::InsertArgs;
    use locassm_core::walk::WalkConfig;
    use locassm_core::Read;
    use memhier::HierarchyConfig;
    use simt::{LaneVec, Mask};

    const SLOTS: u32 = 4;

    /// Stage a job with plenty of distinct 8-mers, then lie about the
    /// table size so `SLOTS` distinct keys exactly fill it.
    fn tiny_table() -> (Warp, DeviceJob) {
        let mut warp = Warp::new(32, HierarchyConfig::tiny());
        let seq: Vec<u8> = (0..160).map(|i| b"ACGT"[(i * 7 + i / 4) % 4]).collect();
        let reads = vec![Read::with_uniform_qual(&seq, b'I')];
        let mut job =
            DeviceJob::stage(&mut warp, b"ACGTACGTACGT", &reads, 8, WalkConfig::default(), 1)
                .unwrap();
        job.slots = SLOTS;
        (warp, job)
    }

    fn insert_one(
        dialect: Dialect,
        warp: &mut Warp,
        job: &mut DeviceJob,
        off: u32,
    ) -> Result<SlotVec, KernelFault> {
        let args = InsertArgs {
            mask: Mask::lane(0),
            key_off: LaneVec::splat(off),
            hash: LaneVec::splat(0u32), // all chains start at slot 0
        };
        dialect.insert(warp, job, &args)
    }

    fn boundary(dialect: Dialect) {
        let (mut warp, mut job) = tiny_table();
        // SLOTS distinct keys, all hashed to slot 0: the last one probes
        // slots 0..SLOTS-1 — exactly `slots` rounds — and must succeed.
        for off in 0..SLOTS {
            let slot = insert_one(dialect, &mut warp, &mut job, off)
                .unwrap_or_else(|f| panic!("{dialect}: insert {off} must fit: {f}"));
            assert_eq!(slot[0], off, "{dialect}: linear probe claims slot {off}");
        }
        // One more distinct key needs a round beyond the full wrap.
        match insert_one(dialect, &mut warp, &mut job, SLOTS) {
            Err(KernelFault::HashTableFull { capacity, occupancy }) => {
                assert_eq!(capacity, SLOTS, "{dialect}: fault reports table capacity");
                assert_eq!(occupancy, SLOTS, "{dialect}: fault reports claimed slots");
            }
            other => panic!("{dialect}: expected HashTableFull, got {other:?}"),
        }
    }

    #[test]
    fn cuda_allows_exactly_slots_rounds() {
        boundary(Dialect::Cuda);
    }

    #[test]
    fn hip_allows_exactly_slots_rounds() {
        boundary(Dialect::Hip);
    }

    #[test]
    fn sycl_allows_exactly_slots_rounds() {
        boundary(Dialect::Sycl);
    }

    #[test]
    fn reinsertion_at_full_occupancy_still_succeeds() {
        // A *matching* key never needs the extra round: finding the entry
        // at the end of the wrap is within budget on every dialect.
        for dialect in [Dialect::Cuda, Dialect::Hip, Dialect::Sycl] {
            let (mut warp, mut job) = tiny_table();
            for off in 0..SLOTS {
                insert_one(dialect, &mut warp, &mut job, off).unwrap();
            }
            // Re-insert the key living in the last probed slot.
            let again = insert_one(dialect, &mut warp, &mut job, SLOTS - 1)
                .unwrap_or_else(|f| panic!("{dialect}: reinsertion must find its entry: {f}"));
            assert_eq!(again[0], SLOTS - 1, "{dialect}");
        }
    }
}

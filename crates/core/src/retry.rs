//! Walk acceptance and the k-mer retry ladder (Fig. 4's outer loop).
//!
//! The kernel diagram shows each warp repeating its hash-table
//! construction + walk "with different k-mer size if walk is not
//! accepted": when the walk at the primary k terminates immediately (an
//! unresolved fork right at the contig end, or no seed coverage), a
//! *smaller* k can bridge it — thinner coverage suffices because more
//! reads share each (shorter) k-mer. The retry ladder trades specificity
//! for sensitivity, mirroring the global pipeline's increasing-k schedule
//! in the small.

use crate::walk::{Walk, WalkState};
use serde::{Deserialize, Serialize};

/// Policy deciding whether a finished walk is accepted and, if not, which
/// k to retry with.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Minimum extension length for a walk to count as accepted. Walks
    /// that made *any* progress are normally accepted (default 1).
    pub accept_min_len: usize,
    /// Successive k values to try after the primary k fails, in order.
    pub fallback_ks: Vec<usize>,
}

impl RetryPolicy {
    /// No retries: accept whatever the primary k produced (the
    /// configuration used for the paper's single-k profiling datasets).
    pub fn none() -> Self {
        RetryPolicy { accept_min_len: 1, fallback_ks: Vec::new() }
    }

    /// The Fig. 4 ladder: retry at roughly ⅔k and ½k (kept odd, ≥ 11 —
    /// odd k avoids palindromic k-mers, the usual assembler convention).
    pub fn ladder(k: usize) -> Self {
        let mut fallback_ks = Vec::new();
        for f in [2.0 / 3.0, 0.5] {
            let mut kk = ((k as f64 * f).round() as usize).max(11);
            if kk.is_multiple_of(2) {
                kk += 1;
            }
            if kk < k && !fallback_ks.contains(&kk) {
                fallback_ks.push(kk);
            }
        }
        RetryPolicy { accept_min_len: 1, fallback_ks }
    }

    /// Is this walk accepted (no retry needed)?
    pub fn accepts(&self, walk: &Walk) -> bool {
        walk.extension.len() >= self.accept_min_len
            // A loop or length-cap termination means the graph genuinely
            // continues; retrying with smaller k cannot help.
            || matches!(walk.state, WalkState::Loop | WalkState::MaxLen)
    }

    /// The k values to attempt, primary first.
    pub fn schedule(&self, primary_k: usize) -> Vec<usize> {
        let mut ks = vec![primary_k];
        for &k in &self.fallback_ks {
            if k < primary_k && !ks.contains(&k) {
                ks.push(k);
            }
        }
        ks
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn walk(len: usize, state: WalkState) -> Walk {
        Walk { extension: vec![b'A'; len], state, steps: len as u32 + 1 }
    }

    #[test]
    fn ladder_shrinks_and_stays_odd() {
        let p = RetryPolicy::ladder(77);
        assert_eq!(p.schedule(77), vec![77, 51, 39]);
        for k in &p.fallback_ks {
            assert_eq!(k % 2, 1);
        }
        let p = RetryPolicy::ladder(21);
        // ⅔·21 = 14 → 15; ½·21 = 11 (already odd).
        assert_eq!(p.schedule(21), vec![21, 15, 11]);
    }

    #[test]
    fn ladder_floors_at_11() {
        let p = RetryPolicy::ladder(13);
        for &k in &p.fallback_ks {
            assert!((11..13).contains(&k));
        }
    }

    #[test]
    fn acceptance_rules() {
        let p = RetryPolicy::none();
        assert!(p.accepts(&walk(5, WalkState::End)));
        assert!(!p.accepts(&walk(0, WalkState::End)), "no progress → not accepted");
        assert!(!p.accepts(&walk(0, WalkState::Fork)), "immediate fork → not accepted");
        assert!(p.accepts(&walk(0, WalkState::Loop)), "loop: smaller k cannot help");
        assert!(p.accepts(&walk(0, WalkState::MaxLen)));
    }

    #[test]
    fn none_policy_has_single_entry_schedule() {
        assert_eq!(RetryPolicy::none().schedule(55), vec![55]);
    }

    #[test]
    fn schedule_dedups_and_filters() {
        let p = RetryPolicy { accept_min_len: 1, fallback_ks: vec![33, 33, 55, 11] };
        assert_eq!(p.schedule(33), vec![33, 11], "≥ primary and duplicates dropped");
    }
}

//! Simulated per-warp global memory.
//!
//! The local assembly kernel gives every warp a private slice of device
//! memory holding its contig, reads, quality scores, hash table and output
//! buffer (reserved up-front by the host-side size-estimation pass, Fig. 3
//! of the paper). `GlobalMem` models that slice as a bump-allocated arena
//! with typed little-endian accessors.
//!
//! Addresses are plain `u64` byte offsets. Offset 0 is reserved so that `0`
//! can serve as a null/empty sentinel, like a null device pointer.
//!
//! Arenas are designed to be **reused**: [`GlobalMem::reset`] rewinds the
//! bump pointer while keeping the backing buffer, so a pooled warp (see
//! `crate::grid`) pays for its slab once and then serves many jobs without
//! touching the host allocator — the same reserve-and-reuse discipline the
//! paper's host pipeline applies to the real device slabs.
//!
//! Reset is **lazy**: instead of memsetting the whole used region on every
//! reset (the per-warp overhead that made the pooled engine *slower* than
//! fresh arenas), reset only records a dirty high-water mark and rewinds
//! the bump pointer in O(1). Allocations that land below the mark re-zero
//! exactly the bytes they hand out. Because every read is bounds-checked
//! against the bump pointer, stale bytes above it are unobservable, so a
//! lazily-reset arena stays observationally identical to a fresh one.

use memhier::Addr;

/// Alignment used by [`GlobalMem::alloc`] by default.
pub const DEFAULT_ALIGN: u64 = 8;

/// A failed arena allocation, reported by [`GlobalMem::try_alloc_aligned`].
///
/// Produced either when the requested region cannot fit the address space
/// (arithmetic overflow of the bump pointer) or when a fault-injection
/// plan armed this allocation to fail (see [`GlobalMem::arm_alloc_failure`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocError {
    /// Bytes the failed allocation asked for.
    pub requested: u64,
    /// Arena capacity at the time of the failure.
    pub limit: u64,
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} bytes requested, arena capacity {}", self.requested, self.limit)
    }
}

/// Size of the reserved null page at the bottom of every arena.
pub const NULL_PAGE: u64 = 64;

/// A bump-allocated, bounds-checked arena of simulated device memory.
#[derive(Debug, Clone)]
pub struct GlobalMem {
    data: Vec<u8>,
    /// Bump pointer: all addresses below `next` are allocated.
    next: u64,
    /// Lazy-reset high-water mark: bytes in `[NULL_PAGE, dirty_top)` may
    /// hold stale nonzero data from a previous job and are re-zeroed on
    /// allocation. Always `<= data.len()`.
    dirty_top: u64,
    /// Times an allocation had to grow the backing buffer past its
    /// reserved size (0 for a correctly pre-sized arena).
    regrowths: u64,
    /// Fault-injection countdown: when `Some(n)`, the `n`th upcoming
    /// allocation fails. Self-disarming; cleared by [`GlobalMem::reset`].
    fail_alloc_in: Option<u64>,
}

impl GlobalMem {
    /// An arena with a reserved null page (first [`NULL_PAGE`] bytes unused).
    pub fn new() -> Self {
        GlobalMem {
            data: vec![0; NULL_PAGE as usize],
            next: NULL_PAGE,
            dirty_top: NULL_PAGE,
            regrowths: 0,
            fail_alloc_in: None,
        }
    }

    /// Preallocate capacity for `bytes` of upcoming allocations.
    ///
    /// The backing buffer is fully sized (and zeroed) up front, so as long
    /// as total allocations stay within the hint the arena never goes back
    /// to the host allocator — [`GlobalMem::regrowths`] stays 0.
    pub fn with_capacity(bytes: usize) -> Self {
        let mut m = GlobalMem::new();
        m.ensure_capacity(NULL_PAGE + bytes as u64);
        m
    }

    /// Grow the zeroed backing buffer to at least `bytes` total (null page
    /// included). Does not count as a regrowth: this is the host-side
    /// reservation step, not an in-kernel allocation.
    pub fn ensure_capacity(&mut self, bytes: u64) {
        if bytes as usize > self.data.len() {
            self.data.resize(bytes as usize, 0);
        }
    }

    /// Rewind the arena for reuse: reset the bump pointer to the top of
    /// the null page, keep the backing buffer. O(1) — the used region is
    /// *not* memset here; it is recorded in the dirty mark and re-zeroed
    /// incrementally by the allocations that reuse it.
    ///
    /// After `reset` the arena is observationally identical to a fresh
    /// [`GlobalMem::new`] (all-zero contents as far as any bounds-checked
    /// access can see, same allocation behaviour) — this is what makes
    /// pooled and fresh launches bit-identical.
    pub fn reset(&mut self) {
        self.dirty_top = self.dirty_top.max(self.next).min(self.data.len() as u64);
        self.next = NULL_PAGE;
        self.regrowths = 0;
        self.fail_alloc_in = None;
    }

    /// Arm a fault-injection failure: the `nth` (1-based) upcoming
    /// allocation returns `Err` from [`GlobalMem::try_alloc_aligned`].
    /// Self-disarming after it fires; [`GlobalMem::reset`] also clears it,
    /// so a pooled arena never carries an armed fault into the next job.
    pub fn arm_alloc_failure(&mut self, nth: u64) {
        self.fail_alloc_in = Some(nth.max(1));
    }

    /// Allocate `len` bytes with `align` alignment, reporting failure as a
    /// value instead of panicking. Failure modes: bump-pointer arithmetic
    /// overflow, or an armed [`GlobalMem::arm_alloc_failure`] countdown
    /// reaching zero. On failure the arena is unchanged (no partial bump).
    pub fn try_alloc_aligned(&mut self, len: u64, align: u64) -> Result<Addr, AllocError> {
        self.alloc_inner(len, align, true)
    }

    /// [`GlobalMem::try_alloc_aligned`] for a buffer the caller promises to
    /// overwrite in full before any read (staged sequence data, which is
    /// memcpy'd in immediately after allocation). On a reused (pooled)
    /// arena this skips the lazy re-zero of the buffer itself — only the
    /// alignment padding below `base` is settled, since padding bytes stay
    /// readable. Observationally identical to the zeroing allocator as
    /// long as the caller keeps its promise; a caller that reads a byte it
    /// never wrote gets stale (but bounds-checked) data, exactly like
    /// reading a `cudaMalloc` buffer without initializing it.
    pub fn try_alloc_overwritten(&mut self, len: u64) -> Result<Addr, AllocError> {
        self.alloc_inner(len, DEFAULT_ALIGN, false)
    }

    fn alloc_inner(&mut self, len: u64, align: u64, zero_reused: bool) -> Result<Addr, AllocError> {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        if let Some(n) = self.fail_alloc_in.as_mut() {
            *n -= 1;
            if *n == 0 {
                self.fail_alloc_in = None;
                return Err(AllocError { requested: len, limit: self.data.len() as u64 });
            }
        }
        let overflow = AllocError { requested: len, limit: self.data.len() as u64 };
        let base = self
            .next
            .checked_add(align - 1)
            .map(|b| b & !(align - 1))
            .ok_or(overflow)?;
        let end = base.checked_add(len).ok_or(overflow)?;
        if end as usize > self.data.len() {
            self.regrowths += 1;
            self.data.resize(end as usize, 0);
        }
        // Lazy-reset settlement: if this region (alignment padding
        // included — padding bytes below `end` are readable) dips below
        // the dirty mark, re-zero exactly that overlap so the caller sees
        // the same all-zero memory a fresh arena would hand out. Callers
        // that overwrite the whole buffer settle only the padding.
        let start = self.next;
        let zero_to = if zero_reused { end } else { base };
        if start < self.dirty_top && start < zero_to {
            let top = zero_to.min(self.dirty_top);
            self.data[start as usize..top as usize].fill(0);
        }
        self.next = end;
        Ok(base)
    }

    /// Fallible allocation with [`DEFAULT_ALIGN`].
    pub fn try_alloc(&mut self, len: u64) -> Result<Addr, AllocError> {
        self.try_alloc_aligned(len, DEFAULT_ALIGN)
    }

    /// Allocate `len` bytes with `align` alignment; returns the base address.
    ///
    /// Panics with "allocation overflow" when the aligned end of the region
    /// would exceed `u64::MAX` — unchecked arithmetic here would wrap in
    /// release builds, pass the bounds check and alias live allocations.
    /// Code on the per-job kernel hot path must use
    /// [`GlobalMem::try_alloc_aligned`] instead and surface the failure as
    /// a structured fault.
    pub fn alloc_aligned(&mut self, len: u64, align: u64) -> Addr {
        self.try_alloc_aligned(len, align).unwrap_or_else(|e| {
            panic!("allocation overflow: align {align} at next {}: {e}", self.next)
        })
    }

    /// Allocate with [`DEFAULT_ALIGN`].
    pub fn alloc(&mut self, len: u64) -> Addr {
        self.alloc_aligned(len, DEFAULT_ALIGN)
    }

    /// Copy a byte slice into freshly allocated memory; returns its address.
    pub fn alloc_bytes(&mut self, bytes: &[u8]) -> Addr {
        let a = self.alloc(bytes.len() as u64);
        self.write_bytes(a, bytes);
        a
    }

    /// Total bytes allocated (high-water mark).
    pub fn allocated(&self) -> u64 {
        self.next
    }

    /// Size of the backing buffer in bytes (≥ [`GlobalMem::allocated`]).
    pub fn capacity(&self) -> u64 {
        self.data.len() as u64
    }

    /// Times an allocation grew the backing buffer since construction or
    /// the last [`GlobalMem::reset`]. A pre-sized arena stays at 0.
    pub fn regrowths(&self) -> u64 {
        self.regrowths
    }

    #[inline]
    fn check(&self, addr: Addr, len: u64) {
        // Bounds-check against the bump pointer (the allocated watermark),
        // not the backing-buffer size: a pooled arena's buffer may be much
        // larger than what the current job has allocated. `checked_add`
        // keeps a huge `len` from wrapping past the check in release builds.
        let end = addr.checked_add(len);
        assert!(
            addr >= NULL_PAGE && end.is_some_and(|e| e <= self.next),
            "device memory access out of bounds: addr={addr} len={len} allocated={}",
            self.next
        );
    }

    /// Read one byte at `addr`.
    pub fn read_u8(&self, addr: Addr) -> u8 {
        self.check(addr, 1);
        self.data[addr as usize]
    }

    /// Write one byte at `addr`.
    pub fn write_u8(&mut self, addr: Addr, v: u8) {
        self.check(addr, 1);
        self.data[addr as usize] = v;
    }

    /// Read a little-endian `u32` at `addr`.
    pub fn read_u32(&self, addr: Addr) -> u32 {
        self.check(addr, 4);
        let i = addr as usize;
        u32::from_le_bytes(self.data[i..i + 4].try_into().unwrap())
    }

    /// Write a little-endian `u32` at `addr`.
    pub fn write_u32(&mut self, addr: Addr, v: u32) {
        self.check(addr, 4);
        let i = addr as usize;
        self.data[i..i + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Read a little-endian `u64` at `addr`.
    pub fn read_u64(&self, addr: Addr) -> u64 {
        self.check(addr, 8);
        let i = addr as usize;
        u64::from_le_bytes(self.data[i..i + 8].try_into().unwrap())
    }

    /// Write a little-endian `u64` at `addr`.
    pub fn write_u64(&mut self, addr: Addr, v: u64) {
        self.check(addr, 8);
        let i = addr as usize;
        self.data[i..i + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Borrow `len` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: Addr, len: u64) -> &[u8] {
        self.check(addr, len);
        &self.data[addr as usize..(addr + len) as usize]
    }

    /// Copy `bytes` into memory starting at `addr`.
    pub fn write_bytes(&mut self, addr: Addr, bytes: &[u8]) {
        self.check(addr, bytes.len() as u64);
        let i = addr as usize;
        self.data[i..i + bytes.len()].copy_from_slice(bytes);
    }

    /// Zero a region (device-side memset, used for hash-table init).
    pub fn fill(&mut self, addr: Addr, len: u64, byte: u8) {
        self.check(addr, len);
        self.data[addr as usize..(addr + len) as usize].fill(byte);
    }
}

impl Default for GlobalMem {
    fn default() -> Self {
        GlobalMem::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let mut m = GlobalMem::new();
        let a = m.alloc_aligned(10, 8);
        let b = m.alloc_aligned(10, 8);
        assert_eq!(a % 8, 0);
        assert_eq!(b % 8, 0);
        assert!(b >= a + 10);
        assert!(a >= 64, "null page reserved");
    }

    #[test]
    fn rw_roundtrip() {
        let mut m = GlobalMem::new();
        let a = m.alloc(32);
        m.write_u32(a, 0xdead_beef);
        m.write_u64(a + 8, 0x0123_4567_89ab_cdef);
        m.write_u8(a + 16, 0x5a);
        assert_eq!(m.read_u32(a), 0xdead_beef);
        assert_eq!(m.read_u64(a + 8), 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_u8(a + 16), 0x5a);
    }

    #[test]
    fn bytes_roundtrip_and_fill() {
        let mut m = GlobalMem::new();
        let a = m.alloc_bytes(b"ACGTACGT");
        assert_eq!(m.read_bytes(a, 8), b"ACGTACGT");
        m.fill(a, 4, b'N');
        assert_eq!(m.read_bytes(a, 8), b"NNNNACGT");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_read_panics() {
        let m = GlobalMem::new();
        m.read_u32(1 << 20);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn null_deref_panics() {
        let m = GlobalMem::new();
        m.read_u8(0);
    }

    #[test]
    #[should_panic(expected = "allocation overflow")]
    fn huge_alloc_len_panics_instead_of_wrapping() {
        // Before the checked-add fix, `base + len` wrapped in release
        // builds, the resize was skipped and the returned region aliased
        // the live allocations below it.
        let mut m = GlobalMem::new();
        let _live = m.alloc_bytes(b"ACGTACGT");
        m.alloc(u64::MAX - 32);
    }

    #[test]
    #[should_panic(expected = "allocation overflow")]
    fn alignment_overflow_panics() {
        let mut m = GlobalMem::new();
        // Push the bump pointer to the very top of the address space, then
        // ask for an alignment whose round-up wraps.
        m.next = u64::MAX - 3;
        m.alloc_aligned(1, 8);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn near_max_address_read_panics_instead_of_wrapping() {
        // `addr + len` on a near-u64::MAX address wraps to a small value
        // that passes an unchecked bounds test; checked_add rejects it.
        let mut m = GlobalMem::new();
        let _a = m.alloc(128);
        m.read_bytes(u64::MAX - 4, 64);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn near_max_len_read_panics_instead_of_wrapping() {
        let mut m = GlobalMem::new();
        let a = m.alloc(128);
        m.read_bytes(a, u64::MAX - 64);
    }

    #[test]
    fn with_capacity_never_regrows_within_hint() {
        let mut m = GlobalMem::with_capacity(4096);
        let cap = m.capacity();
        for _ in 0..16 {
            let a = m.alloc_aligned(200, 32);
            m.fill(a, 200, 7);
        }
        assert_eq!(m.regrowths(), 0, "pre-sized arena must not reallocate");
        assert_eq!(m.capacity(), cap);
    }

    #[test]
    fn regrowth_is_counted_past_the_hint() {
        let mut m = GlobalMem::with_capacity(64);
        let _ = m.alloc(1 << 12);
        assert!(m.regrowths() > 0);
    }

    #[test]
    fn reset_restores_fresh_semantics() {
        let mut m = GlobalMem::with_capacity(1024);
        let a = m.alloc_bytes(b"ACGTACGT");
        let cap = m.capacity();
        m.reset();
        assert_eq!(m.allocated(), NULL_PAGE);
        assert_eq!(m.capacity(), cap, "reset keeps the backing buffer");
        assert_eq!(m.regrowths(), 0);
        // The next job sees exactly what a fresh arena would: the same
        // addresses, zeroed memory.
        let b = m.alloc(8);
        assert_eq!(a, b, "bump pointer rewound");
        assert_eq!(m.read_bytes(b, 8), &[0u8; 8], "stale contents re-zeroed");
    }

    #[test]
    fn try_alloc_matches_alloc_when_unarmed() {
        let mut a = GlobalMem::new();
        let mut b = GlobalMem::new();
        for len in [1u64, 8, 13, 200] {
            assert_eq!(Ok(a.alloc(len)), b.try_alloc(len));
        }
        assert_eq!(a.allocated(), b.allocated());
    }

    #[test]
    fn armed_allocation_fails_at_the_nth_call_then_disarms() {
        let mut m = GlobalMem::with_capacity(4096);
        m.arm_alloc_failure(3);
        assert!(m.try_alloc(16).is_ok());
        assert!(m.try_alloc(16).is_ok());
        let err = m.try_alloc(32).unwrap_err();
        assert_eq!(err.requested, 32);
        assert_eq!(err.limit, m.capacity());
        // Self-disarmed: subsequent allocations succeed again.
        assert!(m.try_alloc(16).is_ok());
    }

    #[test]
    fn failed_allocation_leaves_the_arena_unchanged() {
        let mut m = GlobalMem::with_capacity(1024);
        let before = m.allocated();
        m.arm_alloc_failure(1);
        assert!(m.try_alloc(64).is_err());
        assert_eq!(m.allocated(), before, "no partial bump on failure");
        assert_eq!(m.regrowths(), 0);
    }

    #[test]
    fn overflow_is_reported_as_a_value_by_try_alloc() {
        let mut m = GlobalMem::new();
        let err = m.try_alloc(u64::MAX - 32).unwrap_err();
        assert_eq!(err.requested, u64::MAX - 32);
        assert!(err.to_string().contains("arena capacity"));
    }

    #[test]
    fn lazy_reset_zeroes_alignment_padding_too() {
        let mut m = GlobalMem::with_capacity(1024);
        // Dirty a large region, including bytes a later job will only
        // cover as alignment padding.
        let a = m.alloc(256);
        m.fill(a, 256, 0xff);
        m.reset();
        // Small unaligned allocation followed by a 32-aligned one: the
        // padding gap between them is readable and must be zero.
        let b = m.alloc_aligned(5, 8);
        let c = m.alloc_aligned(8, 32);
        assert!(c > b + 5, "test needs an actual padding gap");
        assert_eq!(m.read_bytes(b, (c + 8) - b), vec![0u8; ((c + 8) - b) as usize]);
    }

    #[test]
    fn overwritten_alloc_skips_the_re_zero_but_settles_padding() {
        let mut m = GlobalMem::with_capacity(1024);
        let a = m.alloc(256);
        m.fill(a, 256, 0xff);
        m.reset();
        // Unaligned bump so the next allocation needs padding.
        let b = m.try_alloc(5).unwrap();
        assert_eq!(m.read_bytes(b, 5), &[0u8; 5]);
        let c = m.try_alloc_overwritten(16).unwrap();
        // The padding gap [b+5, c) is readable and must be settled...
        assert_eq!(m.read_bytes(b + 5, c - (b + 5)), vec![0u8; (c - (b + 5)) as usize]);
        // ...while the buffer itself keeps its stale bytes until the
        // caller's promised overwrite lands.
        assert_eq!(m.read_bytes(c, 16), &[0xffu8; 16]);
        m.write_bytes(c, &[7u8; 16]);
        assert_eq!(m.read_bytes(c, 16), &[7u8; 16]);
    }

    #[test]
    fn overwritten_alloc_bumps_identically_to_try_alloc() {
        let mut a = GlobalMem::new();
        let mut b = GlobalMem::new();
        for len in [1u64, 8, 13, 200] {
            assert_eq!(a.try_alloc(len), b.try_alloc_overwritten(len));
        }
        assert_eq!(a.allocated(), b.allocated());
    }

    #[test]
    fn lazy_reset_survives_shrinking_jobs() {
        let mut m = GlobalMem::with_capacity(1024);
        let a = m.alloc(512);
        m.fill(a, 512, 0xab);
        m.reset();
        // A smaller job leaves bytes dirty above its own watermark...
        let b = m.alloc(16);
        assert_eq!(m.read_bytes(b, 16), &[0u8; 16]);
        m.reset();
        // ...and a later, larger job must still see zeros everywhere.
        let c = m.alloc(512);
        assert_eq!(m.read_bytes(c, 512), vec![0u8; 512]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn reset_rewinds_the_bounds_check() {
        let mut m = GlobalMem::new();
        let a = m.alloc(64);
        m.reset();
        // `a` is no longer allocated even though the backing buffer still
        // covers it.
        m.read_u8(a);
    }
}

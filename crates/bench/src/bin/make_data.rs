//! `make-data` — write the four synthetic datasets to disk in the text
//! `.dat` format (the reproduction's counterpart of the artifact's
//! `locassm_data/` folder).
//!
//! ```text
//! make-data [--scale S] [--seed N] [--out DIR]
//! ```

use locassm_bench::cli::{require_arg, require_ok};
use locassm_core::io::write_dataset;
use std::fs;
use std::path::PathBuf;
use workloads::{paper_dataset, DatasetStats};

fn main() {
    let mut scale = 0.01;
    let mut seed = 20240913u64;
    let mut out = PathBuf::from("data");
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => scale = require_arg(it.next().and_then(|v| v.parse().ok()), "--scale <f>"),
            "--seed" => seed = require_arg(it.next().and_then(|v| v.parse().ok()), "--seed <n>"),
            "--out" => out = PathBuf::from(require_arg(it.next(), "--out <dir>")),
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    require_ok(fs::create_dir_all(&out), &format!("create output directory {}", out.display()));
    for k in [21usize, 33, 55, 77] {
        let ds = paper_dataset(k, scale, seed);
        let stats = DatasetStats::compute(&ds);
        let path = out.join(format!("localassm_extend_{k}.dat"));
        require_ok(
            fs::write(&path, write_dataset(&ds)),
            &format!("write dataset {}", path.display()),
        );
        println!(
            "{}: {} contigs, {} reads, {} insertions",
            path.display(),
            stats.total_contigs,
            stats.total_reads,
            stats.total_hash_insertions
        );
    }
}

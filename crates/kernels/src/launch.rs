//! The host-side pipeline (Fig. 3): contig binning → hash-table size
//! estimation → batch creation → GPU initialize → right extension kernel →
//! left extension kernel → append extensions.

use crate::kernel::{extension_kernel, Dialect, KernelJob, KernelOut};
use crate::profile::{BatchProfile, KernelProfile, PhaseCounters};
use gpu_specs::{effective_hierarchy, DeviceId, DeviceSpec, ModelParams, TimeEstimate};
use locassm_core::io::Dataset;
use locassm_core::walk::WalkConfig;
use locassm_core::{bin_contigs, BinningPolicy, ExtensionResult, RetryPolicy};
use simt::{launch_warps, AggCounters, LaunchConfig};

/// Configuration of a simulated GPU run.
#[derive(Debug, Clone)]
pub struct GpuConfig {
    pub device: DeviceId,
    /// Kernel dialect; the paper pairs each device with its native model,
    /// but any combination is allowed (used by the ablation benches).
    pub dialect: Dialect,
    /// Warp/sub-group width; defaults to the device's hardware width.
    pub width: u32,
    pub binning: BinningPolicy,
    pub walk: WalkConfig,
    /// Retry ladder for unaccepted walks (Fig. 4's outer loop).
    pub retry: RetryPolicy,
    /// Simulate warps in parallel (rayon).
    pub parallel: bool,
    /// Override the device's architectural parameters (what-if hardware
    /// projections, e.g. "MI250X with a 40 MB L2"). `None` uses the
    /// published spec for `device`.
    pub custom_spec: Option<DeviceSpec>,
    /// Attach a trace sink to every warp and collect per-warp
    /// [`simt::WarpTrace`]s in [`GpuRunResult::traces`] (run-global warp
    /// ids, in launch order: batches × {right, left} × job order).
    pub trace: bool,
}

impl GpuConfig {
    /// The paper's configuration for a device: native dialect, hardware
    /// width, power-of-two binning.
    pub fn for_device(device: DeviceId) -> Self {
        GpuConfig {
            device,
            dialect: Dialect::native_for(device),
            width: device.spec().warp_width,
            binning: BinningPolicy::PowerOfTwo,
            walk: WalkConfig::default(),
            retry: RetryPolicy::none(),
            parallel: true,
            custom_spec: None,
            trace: false,
        }
    }

    /// The architectural parameters this run simulates.
    pub fn spec(&self) -> &DeviceSpec {
        self.custom_spec.as_ref().unwrap_or_else(|| self.device.spec())
    }

    /// A what-if variant of this configuration with a modified spec.
    pub fn with_spec(mut self, spec: DeviceSpec) -> Self {
        self.custom_spec = Some(spec);
        self
    }
}

/// Outcome of a simulated run.
#[derive(Debug, Clone)]
pub struct GpuRunResult {
    /// Per-contig extensions, in dataset order.
    pub extensions: Vec<ExtensionResult>,
    pub profile: KernelProfile,
    /// Per-warp traces (empty unless [`GpuConfig::trace`] was set).
    /// `warp_id` is re-numbered to be unique across the whole run.
    pub traces: Vec<simt::WarpTrace>,
}

/// Run the full local assembly pipeline for a dataset on a simulated GPU.
pub fn run_local_assembly(ds: &Dataset, cfg: &GpuConfig) -> GpuRunResult {
    let spec = cfg.spec();
    let k = ds.k;

    let batches = bin_contigs(&ds.jobs, cfg.binning);

    let mut total = AggCounters::default();
    let mut phases = PhaseCounters::default();
    let mut batch_profiles = Vec::new();
    let mut traces: Vec<simt::WarpTrace> = Vec::new();

    // Results indexed by job position.
    let mut right: Vec<(Vec<u8>, locassm_core::WalkState)> =
        vec![(Vec::new(), locassm_core::WalkState::End); ds.jobs.len()];
    let mut left = right.clone();

    for batch in &batches {
        // Right extension kernel, then left extension kernel (Fig. 3).
        for side in [Side::Right, Side::Left] {
            let jobs: Vec<(usize, KernelJob)> = batch
                .jobs
                .iter()
                .filter_map(|&idx| {
                    let j = &ds.jobs[idx];
                    let job = match side {
                        Side::Right => KernelJob {
                            contig: j.contig.clone(),
                            reads: j.right_reads.clone(),
                            k,
                            walk: cfg.walk,
                            retry: cfg.retry.clone(),
                            dialect: cfg.dialect,
                        },
                        Side::Left => {
                            let t = j.left_as_right();
                            KernelJob {
                                contig: t.contig,
                                reads: t.right_reads,
                                k,
                                walk: cfg.walk,
                                retry: cfg.retry.clone(),
                                dialect: cfg.dialect,
                            }
                        }
                    };
                    // The host skips contigs with no work for this side
                    // under any k in the retry schedule.
                    let min_k = job.retry.schedule(k).into_iter().min().unwrap_or(k);
                    (job.contig.len() >= min_k && !job.reads.is_empty()).then_some((idx, job))
                })
                .collect();
            if jobs.is_empty() {
                continue;
            }

            let (indices, kernel_jobs): (Vec<usize>, Vec<KernelJob>) = jobs.into_iter().unzip();
            let hierarchy = effective_hierarchy(spec, kernel_jobs.len() as u64);
            let launch_cfg = LaunchConfig {
                width: cfg.width,
                hierarchy,
                parallel: cfg.parallel,
                trace: cfg.trace,
            };
            let out = launch_warps(launch_cfg, &kernel_jobs, |warp, job: &KernelJob| {
                let r: KernelOut = extension_kernel(warp, job);
                r
            });
            // Re-number warp ids to be unique across batches and sides.
            for mut t in out.traces {
                t.warp_id = traces.len() as u64;
                traces.push(t);
            }

            // Phase split: construct snapshots summed; walk = total − construct.
            let mut construct = AggCounters::default();
            for o in &out.results {
                construct.absorb(&o.construct);
            }
            phases.construct.merge(&construct);
            let walk_agg = diff_agg(&out.counters, &construct);
            phases.walk.merge(&walk_agg);

            // Per-phase timing: construction overlaps memory at the
            // device's MLP; the mer-walk is a single-lane dependence chain
            // (MLP ≈ 1).
            let t_construct =
                TimeEstimate::estimate(spec, &ModelParams::from_counters(&construct));
            let t_walk = TimeEstimate::estimate_with_mlp(
                spec,
                &ModelParams::from_counters(&walk_agg),
                1.0,
            );
            let time = TimeEstimate {
                seconds: t_construct.seconds + t_walk.seconds,
                compute_seconds: t_construct.compute_seconds + t_walk.compute_seconds,
                bandwidth_seconds: t_construct.bandwidth_seconds + t_walk.bandwidth_seconds,
                latency_seconds: t_construct.latency_seconds + t_walk.latency_seconds,
                bound: if t_construct.seconds >= t_walk.seconds {
                    t_construct.bound
                } else {
                    t_walk.bound
                },
            };
            batch_profiles.push(BatchProfile {
                band: batch.band,
                warps: out.counters.warps,
                time,
            });
            total.merge(&out.counters);

            for (idx, o) in indices.into_iter().zip(out.results) {
                match side {
                    Side::Right => right[idx] = (o.extension, o.state),
                    Side::Left => {
                        // Left walks ran on the reverse complement.
                        left[idx] = (locassm_core::revcomp(&o.extension), o.state);
                    }
                }
            }
        }
    }

    let extensions = ds
        .jobs
        .iter()
        .enumerate()
        .map(|(i, j)| ExtensionResult {
            id: j.id,
            right: std::mem::take(&mut right[i].0),
            left: std::mem::take(&mut left[i].0),
            right_state: right[i].1,
            left_state: left[i].1,
        })
        .collect();

    GpuRunResult {
        extensions,
        profile: KernelProfile {
            device: cfg.device,
            dialect: cfg.dialect,
            k,
            total,
            phases,
            batches: batch_profiles,
        },
        traces,
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Side {
    Right,
    Left,
}

/// Aggregate difference (total − construct) for phase attribution.
fn diff_agg(total: &AggCounters, part: &AggCounters) -> AggCounters {
    AggCounters {
        width: total.width,
        warps: total.warps,
        warp_instructions: total.warp_instructions - part.warp_instructions,
        int_instructions: total.int_instructions - part.int_instructions,
        collective_instructions: total.collective_instructions - part.collective_instructions,
        sync_instructions: total.sync_instructions - part.sync_instructions,
        atomic_instructions: total.atomic_instructions - part.atomic_instructions,
        atomic_replays: total.atomic_replays - part.atomic_replays,
        lane_int_ops: total.lane_int_ops - part.lane_int_ops,
        occupancy_quartiles: [
            total.occupancy_quartiles[0] - part.occupancy_quartiles[0],
            total.occupancy_quartiles[1] - part.occupancy_quartiles[1],
            total.occupancy_quartiles[2] - part.occupancy_quartiles[2],
            total.occupancy_quartiles[3] - part.occupancy_quartiles[3],
        ],
        max_warp_instructions: total.max_warp_instructions,
        mem: total.mem.since(&part.mem),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locassm_core::{assemble_all, AssemblyConfig};
    use workloads::paper_dataset;

    fn small_ds() -> Dataset {
        paper_dataset(21, 0.002, 42)
    }

    #[test]
    fn gpu_matches_cpu_reference() {
        let ds = small_ds();
        let cfg = GpuConfig::for_device(DeviceId::A100);
        let gpu = run_local_assembly(&ds, &cfg);
        let cpu = assemble_all(
            &ds.jobs,
            &AssemblyConfig { k: ds.k, walk: cfg.walk, retry: cfg.retry.clone() },
            true,
        );
        assert_eq!(gpu.extensions, cpu, "A100/CUDA run must match the CPU oracle");
    }

    #[test]
    fn all_devices_produce_identical_extensions() {
        let ds = small_ds();
        let a = run_local_assembly(&ds, &GpuConfig::for_device(DeviceId::A100));
        let b = run_local_assembly(&ds, &GpuConfig::for_device(DeviceId::Mi250x));
        let c = run_local_assembly(&ds, &GpuConfig::for_device(DeviceId::Max1550));
        assert_eq!(a.extensions, b.extensions);
        assert_eq!(a.extensions, c.extensions);
    }

    #[test]
    fn profile_has_work() {
        let ds = small_ds();
        let r = run_local_assembly(&ds, &GpuConfig::for_device(DeviceId::A100));
        let p = &r.profile;
        assert!(p.intops() > 0);
        assert!(p.hbm_bytes() > 0);
        assert!(p.seconds() > 0.0);
        assert!(p.phases.construct.int_instructions > 0);
        assert!(p.phases.walk.int_instructions > 0);
        assert!(!p.batches.is_empty());
    }

    #[test]
    fn deterministic_across_parallel_modes() {
        let ds = small_ds();
        let mut cfg = GpuConfig::for_device(DeviceId::Max1550);
        let par = run_local_assembly(&ds, &cfg);
        cfg.parallel = false;
        let ser = run_local_assembly(&ds, &cfg);
        assert_eq!(par.extensions, ser.extensions);
        assert_eq!(par.profile.total, ser.profile.total);
    }

    #[test]
    fn traced_run_collects_run_global_traces() {
        let ds = small_ds();
        let mut cfg = GpuConfig::for_device(DeviceId::A100);
        cfg.trace = true;
        let traced = run_local_assembly(&ds, &cfg);
        assert!(!traced.traces.is_empty());
        for (i, t) in traced.traces.iter().enumerate() {
            assert_eq!(t.warp_id, i as u64, "run-global warp ids");
            assert!(
                t.phase_names().len() >= 3,
                "warp {i} has phases {:?}",
                t.phase_names()
            );
        }
        // Observing the run must not change it.
        cfg.trace = false;
        let plain = run_local_assembly(&ds, &cfg);
        assert_eq!(traced.extensions, plain.extensions);
        assert_eq!(traced.profile.total, plain.profile.total);
        assert!(plain.traces.is_empty());
    }

    #[test]
    fn binning_policies_agree_on_results() {
        let ds = small_ds();
        let mut cfg = GpuConfig::for_device(DeviceId::A100);
        let a = run_local_assembly(&ds, &cfg);
        cfg.binning = BinningPolicy::Single;
        let b = run_local_assembly(&ds, &cfg);
        assert_eq!(a.extensions, b.extensions);
        // Work totals match too; only batch structure differs.
        assert_eq!(a.profile.total.int_instructions, b.profile.total.int_instructions);
    }
}

#[cfg(test)]
mod whatif_tests {
    use super::*;
    use workloads::paper_dataset;

    /// The paper's §V-E conclusion in executable form: giving the MI250X
    /// model a Max 1550-sized L2 collapses its HBM traffic toward the
    /// A100's.
    #[test]
    fn bigger_l2_fixes_the_mi250x() {
        // Full occupancy (one batch > 880 resident warps) so the L2 share
        // is under real pressure, as in the production-scale runs.
        let ds = paper_dataset(21, 0.07, 61);
        let mut cfg = GpuConfig::for_device(DeviceId::Mi250x);
        cfg.binning = locassm_core::BinningPolicy::Single;
        let stock = run_local_assembly(&ds, &cfg);

        let mut spec = DeviceId::Mi250x.spec().clone();
        spec.l2_bytes = 204 * 1024 * 1024; // Max 1550-sized
        let upgraded_cfg = cfg.clone().with_spec(spec);
        let upgraded = run_local_assembly(&ds, &upgraded_cfg);

        assert_eq!(
            stock.extensions, upgraded.extensions,
            "hardware what-ifs must not change results"
        );
        assert!(
            upgraded.profile.hbm_bytes() * 2 < stock.profile.hbm_bytes(),
            "204 MB L2 must collapse traffic: {} vs {}",
            upgraded.profile.hbm_bytes(),
            stock.profile.hbm_bytes()
        );
        assert!(upgraded.profile.seconds() < stock.profile.seconds());
    }

    /// Conversely, shrinking the A100's L2 to the MI250X's pushes its
    /// traffic up.
    #[test]
    fn smaller_l2_hurts_the_a100() {
        let ds = paper_dataset(21, 0.07, 62);
        let mut base = GpuConfig::for_device(DeviceId::A100);
        base.binning = locassm_core::BinningPolicy::Single;
        let stock = run_local_assembly(&ds, &base);

        let mut spec = DeviceId::A100.spec().clone();
        spec.l2_bytes = 8 * 1024 * 1024;
        spec.l1_bytes_per_cu = 16 * 1024;
        let cfg = base.clone().with_spec(spec);
        let shrunk = run_local_assembly(&ds, &cfg);

        assert!(shrunk.profile.hbm_bytes() > stock.profile.hbm_bytes());
    }
}

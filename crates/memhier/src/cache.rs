//! A sectored, set-associative cache level with LRU replacement.
//!
//! GPU caches are *sectored*: a line is allocated as a whole (tag + set slot)
//! but only the 32-byte sectors that were actually requested are filled from
//! the level below. This matters for the paper's workload — random
//! hash-table probes touch one or two sectors of a line, and a non-sectored
//! model would overestimate DRAM traffic by up to 4×.

use crate::config::{CacheConfig, SECTOR_BYTES};

/// Outcome of accessing one sector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectorOutcome {
    /// Tag and sector present.
    Hit,
    /// Tag present but the sector had not been filled yet.
    SectorMiss,
    /// Tag absent: a (possibly evicting) line allocation plus sector fill.
    LineMiss,
}

impl SectorOutcome {
    /// Whether the level below must be consulted.
    pub fn is_miss(self) -> bool {
        !matches!(self, SectorOutcome::Hit)
    }
}

#[derive(Debug, Clone)]
struct Line {
    /// Line-granular tag (address / line_bytes), or `None` when invalid.
    tag: Option<u64>,
    /// Bit i set ⇒ sector i of the line is present.
    sector_valid: u32,
    /// Bit i set ⇒ sector i has been written (dirty); used for write-back
    /// accounting. Meaningful only while `dirty_gen` matches the cache's.
    sector_dirty: u32,
    /// LRU timestamp.
    last_use: u64,
    /// Generation stamp: the line's contents are meaningful only while this
    /// matches [`Cache::gen`]; a stale stamp reads as an invalid line. This
    /// is what makes [`Cache::reset`] O(1) — bumping the cache generation
    /// invalidates every line without touching it.
    gen: u64,
    /// Same scheme for the dirty bits: [`Cache::flush`] bumps
    /// [`Cache::dirty_gen`] instead of clearing `sector_dirty` per line.
    dirty_gen: u64,
}

impl Line {
    fn empty() -> Self {
        Line { tag: None, sector_valid: 0, sector_dirty: 0, last_use: 0, gen: 0, dirty_gen: 0 }
    }
}

/// One cache level.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Line>,
    tick: u64,
    /// Geometry derived from `cfg` once at construction — `access_sector`
    /// is the simulator's innermost loop and recomputing these costs one
    /// 64-bit division each per access.
    n_sets: u64,
    sectors_per_line: u64,
    /// `log2(sectors_per_line)` when it is a power of two (every real GPU
    /// geometry: 128-byte lines of 32-byte sectors), letting the per-access
    /// line-tag split compile to a shift and mask instead of two divisions.
    spl_shift: Option<u32>,
    /// Current line generation (see [`Line::gen`]).
    gen: u64,
    /// Current dirty-bit generation (see [`Line::dirty_gen`]).
    dirty_gen: u64,
    /// Dirty sectors currently resident, maintained incrementally so
    /// [`Cache::flush`] is O(1) instead of a scan over every line.
    dirty_sectors: u64,
    /// Dirty sectors evicted (write-back traffic to the level below).
    pub writebacks: u64,
    /// Extra sectors fetched beyond the requested one (non-sectored whole-
    /// line fills); charged as additional traffic from the level below.
    pub extra_fills: u64,
}

impl Cache {
    pub fn new(cfg: CacheConfig) -> Self {
        let n = (cfg.sets() * cfg.ways as u64) as usize;
        Cache {
            cfg,
            sets: vec![Line::empty(); n],
            tick: 0,
            n_sets: cfg.sets(),
            sectors_per_line: cfg.sectors_per_line() as u64,
            spl_shift: (cfg.sectors_per_line() as u64)
                .is_power_of_two()
                .then(|| (cfg.sectors_per_line() as u64).trailing_zeros()),
            gen: 0,
            dirty_gen: 0,
            dirty_sectors: 0,
            writebacks: 0,
            extra_fills: 0,
        }
    }

    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Clear all contents and counters (reuse between warps).
    ///
    /// O(1): bumping the generation invalidates every line lazily, so a
    /// pooled warp's reset does not rescan a multi-megabyte line array the
    /// way constructing a fresh cache must. Observable behaviour (access
    /// outcomes, traffic counters) is identical to a fresh cache; only the
    /// private LRU tick keeps counting, which never reaches lines of an
    /// older generation. A u64 generation cannot wrap in any real run.
    pub fn reset(&mut self) {
        self.gen += 1;
        self.dirty_gen += 1;
        self.dirty_sectors = 0;
        self.writebacks = 0;
        self.extra_fills = 0;
    }

    fn set_range(&self, line_tag: u64) -> (usize, usize) {
        let set = (line_tag % self.n_sets) as usize;
        let ways = self.cfg.ways as usize;
        (set * ways, set * ways + ways)
    }

    /// Access one sector (identified by its sector-granular address
    /// `sector_addr = addr / SECTOR_BYTES`). Returns what happened; on a
    /// miss the caller is responsible for forwarding to the level below.
    pub fn access_sector(&mut self, sector_addr: u64, write: bool) -> SectorOutcome {
        self.tick += 1;
        let tick = self.tick;
        let sectors_per_line = self.sectors_per_line;
        let (line_tag, sector_in_line) = match self.spl_shift {
            Some(sh) => (sector_addr >> sh, (sector_addr & (sectors_per_line - 1)) as u32),
            None => (sector_addr / sectors_per_line, (sector_addr % sectors_per_line) as u32),
        };
        let sector_bit = 1u32 << sector_in_line;
        let (lo, hi) = self.set_range(line_tag);
        let (gen, dirty_gen) = (self.gen, self.dirty_gen);

        // Look for the tag (a stale generation reads as an invalid line).
        for way in lo..hi {
            let line = &mut self.sets[way];
            if line.gen == gen && line.tag == Some(line_tag) {
                line.last_use = tick;
                if write {
                    let dirty = if line.dirty_gen == dirty_gen { line.sector_dirty } else { 0 };
                    if dirty & sector_bit == 0 {
                        self.dirty_sectors += 1;
                    }
                    line.sector_dirty = dirty | sector_bit;
                    line.dirty_gen = dirty_gen;
                }
                return if line.sector_valid & sector_bit != 0 {
                    line.sector_valid |= sector_bit;
                    SectorOutcome::Hit
                } else {
                    line.sector_valid |= sector_bit;
                    SectorOutcome::SectorMiss
                };
            }
        }

        // Miss: find victim (invalid way first, else LRU).
        let victim = (lo..hi)
            .min_by_key(|&w| {
                let l = &self.sets[w];
                if l.gen != gen || l.tag.is_none() {
                    (0, 0)
                } else {
                    (1, l.last_use)
                }
            })
            .expect("set has at least one way");
        let sectored = self.cfg.sectored;
        let line = &mut self.sets[victim];
        if line.gen == gen && line.tag.is_some() && line.dirty_gen == dirty_gen {
            let evicted = line.sector_dirty.count_ones() as u64;
            self.writebacks += evicted;
            self.dirty_sectors -= evicted;
        }
        let valid = if sectored {
            sector_bit
        } else {
            // Whole-line fill: every sector arrives from the level below.
            self.extra_fills += sectors_per_line - 1;
            if sectors_per_line >= 32 {
                u32::MAX
            } else {
                (1u32 << sectors_per_line) - 1
            }
        };
        if write {
            self.dirty_sectors += 1;
        }
        *line = Line {
            tag: Some(line_tag),
            sector_valid: valid,
            sector_dirty: if write { sector_bit } else { 0 },
            last_use: tick,
            gen,
            dirty_gen,
        };
        SectorOutcome::LineMiss
    }

    /// Total bytes of write-back traffic generated so far.
    pub fn writeback_bytes(&self) -> u64 {
        self.writebacks * SECTOR_BYTES
    }

    /// Flush all dirty sectors, returning the number of dirty sectors that
    /// would be written back (and counting them into `writebacks`).
    ///
    /// O(1): the resident dirty count is maintained incrementally and the
    /// per-line dirty bits are invalidated by bumping the dirty generation
    /// rather than clearing each line.
    pub fn flush(&mut self) -> u64 {
        let flushed = self.dirty_sectors;
        self.dirty_sectors = 0;
        self.dirty_gen += 1;
        self.writebacks += flushed;
        flushed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 2 sets × 2 ways × 128 B lines = 512 B.
        Cache::new(CacheConfig::new(512, 128, 2))
    }

    #[test]
    fn first_touch_is_line_miss_then_hit() {
        let mut c = small();
        assert_eq!(c.access_sector(0, false), SectorOutcome::LineMiss);
        assert_eq!(c.access_sector(0, false), SectorOutcome::Hit);
    }

    #[test]
    fn sibling_sector_is_sector_miss() {
        let mut c = small();
        assert_eq!(c.access_sector(0, false), SectorOutcome::LineMiss);
        // Sector 1 of the same 128-byte line (4 sectors per line).
        assert_eq!(c.access_sector(1, false), SectorOutcome::SectorMiss);
        assert_eq!(c.access_sector(1, false), SectorOutcome::Hit);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = small();
        // Lines map to sets by (line_tag % 2). Tags 0, 2, 4 share set 0.
        let s = |line: u64| line * 4; // first sector of each line
        assert_eq!(c.access_sector(s(0), false), SectorOutcome::LineMiss);
        assert_eq!(c.access_sector(s(2), false), SectorOutcome::LineMiss);
        // Touch line 0 so line 2 becomes LRU.
        assert_eq!(c.access_sector(s(0), false), SectorOutcome::Hit);
        // Line 4 evicts line 2.
        assert_eq!(c.access_sector(s(4), false), SectorOutcome::LineMiss);
        assert_eq!(c.access_sector(s(0), false), SectorOutcome::Hit);
        assert_eq!(c.access_sector(s(2), false), SectorOutcome::LineMiss);
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = small();
        let s = |line: u64| line * 4;
        c.access_sector(s(0), true);
        c.access_sector(s(2), false);
        c.access_sector(s(4), false); // evicts line 2 (clean) or 0? LRU: line 0 older…
        c.access_sector(s(6), false);
        // By now the dirty line 0 must have been evicted.
        assert!(c.writebacks >= 1, "dirty sector eviction must be counted");
    }

    #[test]
    fn flush_writes_back_all_dirty() {
        let mut c = small();
        c.access_sector(0, true);
        c.access_sector(4, true);
        let flushed = c.flush();
        assert_eq!(flushed, 2);
        assert_eq!(c.writebacks, 2);
        // Second flush is a no-op.
        assert_eq!(c.flush(), 0);
    }

    #[test]
    fn reset_clears_state() {
        let mut c = small();
        c.access_sector(0, true);
        c.reset();
        assert_eq!(c.writebacks, 0);
        assert_eq!(c.access_sector(0, false), SectorOutcome::LineMiss);
    }

    #[test]
    fn working_set_larger_than_capacity_thrashes() {
        let mut c = small(); // 4 lines total
        let mut line_misses = 0;
        for round in 0..3 {
            for line in 0..8u64 {
                if c.access_sector(line * 4, false) == SectorOutcome::LineMiss {
                    line_misses += 1;
                }
            }
            let _ = round;
        }
        // 8 lines cycling through 4-line cache with LRU ⇒ every access misses.
        assert_eq!(line_misses, 24);
    }

    #[test]
    fn working_set_within_capacity_stops_missing() {
        let mut c = small();
        for _ in 0..3 {
            for line in 0..4u64 {
                c.access_sector(line * 4, false);
            }
        }
        // After warm-up all four lines fit (2 per set).
        let mut misses = 0;
        for line in 0..4u64 {
            if c.access_sector(line * 4, false).is_miss() {
                misses += 1;
            }
        }
        assert_eq!(misses, 0);
    }
}

//! Scalar/Vectorized bit-identity across the whole pipeline.
//!
//! `ExecMode::Vectorized` is a host-side interpreter fast path: batched
//! memory-hierarchy walks, skipped `LaneVec` construction on single-lane
//! accesses, and fingerprint-rejected probe compares. None of it may be
//! observable in modeled state. This suite pins that contract at full
//! pipeline scope: all three dialects (via their native devices), the four
//! paper k presets, parallel and serial execution — comparing extensions,
//! fault outcomes, every aggregate counter, both phase splits, full warp
//! traces, and sanitizer reports.

use gpu_specs::DeviceId;
use locassm_kernels::{run_local_assembly, GpuConfig};
use simt::{ExecMode, SanitizerConfig};
use workloads::paper_dataset;

const DEVICES: [DeviceId; 3] = [DeviceId::A100, DeviceId::Mi250x, DeviceId::Max1550];

fn assert_bit_identical(ds: &locassm_core::io::Dataset, device: DeviceId, parallel: bool, tag: &str) {
    let mut cfg = GpuConfig::for_device(device);
    cfg.parallel = parallel;
    cfg.trace = true;
    cfg.sanitize = SanitizerConfig::all();

    cfg.exec = ExecMode::Vectorized;
    let vec = run_local_assembly(ds, &cfg);
    cfg.exec = ExecMode::Scalar;
    let sca = run_local_assembly(ds, &cfg);

    assert_eq!(vec.extensions, sca.extensions, "{tag}: extensions");
    assert_eq!(vec.outcomes, sca.outcomes, "{tag}: outcomes");
    assert_eq!(vec.profile.total, sca.profile.total, "{tag}: aggregate counters");
    assert_eq!(
        vec.profile.phases.construct, sca.profile.phases.construct,
        "{tag}: construct phase"
    );
    assert_eq!(vec.profile.phases.walk, sca.profile.phases.walk, "{tag}: walk phase");
    assert_eq!(
        vec.profile.phases.walk_budget, sca.profile.phases.walk_budget,
        "{tag}: walk budget"
    );
    assert_eq!(
        vec.profile.phases.watchdog_trips, sca.profile.phases.watchdog_trips,
        "{tag}: watchdog trips"
    );
    assert_eq!(vec.traces, sca.traces, "{tag}: warp traces");
    assert_eq!(vec.san, sca.san, "{tag}: sanitizer reports");
    assert_eq!(vec.profile.seconds(), sca.profile.seconds(), "{tag}: modeled seconds");
}

/// The full matrix on the primary k = 21 preset: three dialects ×
/// parallel/serial, traced and fully sanitized.
#[test]
fn exec_modes_bit_identical_all_dialects_k21() {
    let ds = paper_dataset(21, 0.002, 42);
    for device in DEVICES {
        for parallel in [true, false] {
            assert_bit_identical(&ds, device, parallel, &format!("{device} parallel={parallel}"));
        }
    }
}

/// The remaining paper presets (k ∈ {33, 55, 77}), each on every dialect
/// (serial keeps the launch order deterministic in the tag output; the
/// parallel half of the matrix is pinned above).
#[test]
fn exec_modes_bit_identical_remaining_k_presets() {
    for (k, seed) in [(33usize, 7u64), (55, 13), (77, 99)] {
        let ds = paper_dataset(k, 0.002, seed);
        for device in DEVICES {
            assert_bit_identical(&ds, device, false, &format!("k={k} {device}"));
        }
    }
}

//! CPU `loc_ht` insert/lookup throughput at production-like load factors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use locassm_core::kmer::{ext_vote, KmerIter};
use locassm_core::{estimate_slots, CpuHashTable, Read};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn make_read(len: usize, seed: u64) -> Read {
    let mut rng = StdRng::seed_from_u64(seed);
    let seq: Vec<u8> = (0..len).map(|_| b"ACGT"[rng.random_range(0..4)]).collect();
    Read::with_uniform_qual(&seq, b'I')
}

fn bench_insert(c: &mut Criterion) {
    let mut g = c.benchmark_group("ht_insert_read");
    for k in [21usize, 33, 55, 77] {
        let read = make_read(160, 7);
        let insertions = read.kmer_count(k);
        g.throughput(Throughput::Elements(insertions as u64));
        g.bench_with_input(BenchmarkId::from_parameter(k), &read, |b, read| {
            b.iter(|| {
                let mut ht = CpuHashTable::with_capacity(estimate_slots(insertions));
                for (pos, kmer) in KmerIter::new(&read.seq, k) {
                    ht.insert(black_box(kmer), ext_vote(read, pos, k)).unwrap();
                }
                ht.len()
            })
        });
    }
    g.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("ht_lookup");
    for k in [21usize, 77] {
        let read = make_read(2000, 3);
        let insertions = read.kmer_count(k);
        let mut ht = CpuHashTable::with_capacity(estimate_slots(insertions));
        for (pos, kmer) in KmerIter::new(&read.seq, k) {
            ht.insert(kmer, ext_vote(&read, pos, k)).unwrap();
        }
        let probe = read.seq[500..500 + k].to_vec();
        g.bench_with_input(BenchmarkId::from_parameter(k), &probe, |b, probe| {
            b.iter(|| ht.lookup(black_box(probe)).is_some())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_insert, bench_lookup);
criterion_main!(benches);

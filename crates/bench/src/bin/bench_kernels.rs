//! Regenerates the checked-in `BENCH_kernels.json`: pooled-vs-fresh launch
//! engine throughput and allocator metrics on the paper's k = 21 dataset.
//!
//! ```text
//! cargo run --release -p locassm-bench --bin bench-kernels [OUT_PATH]
//! ```
//!
//! `OUT_PATH` defaults to `BENCH_kernels.json` in the current directory
//! (run from the repo root to refresh the checked-in copy).

use gpu_specs::DeviceId;
use locassm_bench::cli::require_ok;
use locassm_bench::poolbench::pool_bench;

fn main() {
    let path =
        std::env::args().nth(1).unwrap_or_else(|| "BENCH_kernels.json".to_string());

    let r = pool_bench(DeviceId::A100, 21, 0.005, 11, 3);
    let json = r.to_json();
    require_ok(std::fs::write(&path, &json), &format!("write report {path}"));

    eprintln!(
        "pooled launch engine, {} k={} ({} contigs, {} iterations):",
        r.device, r.k, r.contigs, r.iterations
    );
    eprintln!(
        "  fresh : {:>9.1} warps/s  {:>8.1} allocs/warp  {:>12.0} bytes/warp",
        r.fresh.warps_per_sec, r.fresh.allocs_per_warp, r.fresh.bytes_per_warp
    );
    eprintln!(
        "  pooled: {:>9.1} warps/s  {:>8.1} allocs/warp  {:>12.0} bytes/warp",
        r.pooled.warps_per_sec, r.pooled.allocs_per_warp, r.pooled.bytes_per_warp
    );
    eprintln!(
        "  delta : {:.1}% fewer allocs, {:.1}% fewer bytes, {:.2}x wall clock",
        r.alloc_reduction_pct(),
        r.bytes_reduction_pct(),
        r.speedup()
    );
    eprintln!("  wrote {path}");
}

//! MurmurHashAligned2 throughput per k-mer size (the kernel's dominant
//! integer cost — paper Table V).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use locassm_core::murmur::{murmur_hash_aligned2, DEFAULT_SEED};
use std::hint::black_box;

fn bench_murmur(c: &mut Criterion) {
    let mut g = c.benchmark_group("murmur_hash_aligned2");
    for k in [21usize, 33, 55, 77] {
        let key: Vec<u8> = (0..k).map(|i| b"ACGT"[i % 4]).collect();
        g.throughput(Throughput::Bytes(k as u64));
        g.bench_with_input(BenchmarkId::from_parameter(k), &key, |b, key| {
            b.iter(|| murmur_hash_aligned2(black_box(key), DEFAULT_SEED))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_murmur);
criterion_main!(benches);

//! Seeded random genome generation.

use locassm_core::dna::BASES;
use rand::{Rng, RngExt};

/// A uniform random DNA sequence of `len` bases.
pub fn random_genome<R: Rng>(len: usize, rng: &mut R) -> Vec<u8> {
    (0..len).map(|_| BASES[rng.random_range(0..4)]).collect()
}

/// A set of independent "species" genomes, as a metagenomic sample holds
/// (used by the domain examples; the local assembly datasets work
/// per-contig and only need [`random_genome`]).
pub fn random_metagenome<R: Rng>(
    species: usize,
    len_range: std::ops::Range<usize>,
    rng: &mut R,
) -> Vec<Vec<u8>> {
    (0..species)
        .map(|_| {
            let len = rng.random_range(len_range.clone());
            random_genome(len, rng)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn genome_is_valid_dna_of_requested_length() {
        let mut rng = StdRng::seed_from_u64(42);
        let g = random_genome(1000, &mut rng);
        assert_eq!(g.len(), 1000);
        assert!(locassm_core::dna::valid_seq(&g));
    }

    #[test]
    fn seeded_generation_is_deterministic() {
        let a = random_genome(500, &mut StdRng::seed_from_u64(7));
        let b = random_genome(500, &mut StdRng::seed_from_u64(7));
        let c = random_genome(500, &mut StdRng::seed_from_u64(8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn composition_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(123);
        let g = random_genome(40_000, &mut rng);
        for &b in &locassm_core::dna::BASES {
            let n = g.iter().filter(|&&x| x == b).count();
            assert!((8_000..12_000).contains(&n), "base {} count {n}", b as char);
        }
    }

    #[test]
    fn metagenome_respects_ranges() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = random_metagenome(10, 100..200, &mut rng);
        assert_eq!(m.len(), 10);
        for g in &m {
            assert!((100..200).contains(&g.len()));
        }
    }
}

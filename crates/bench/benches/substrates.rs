//! Benchmarks for the pipeline substrates around the studied kernel:
//! k-mer spectrum construction, global contig generation, read alignment,
//! miss-rate-curve replay, and the multi-device driver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use locassm_core::align::{assign_reads_to_ends, AlignConfig, EndIndex};
use locassm_core::global_asm::generate_contigs;
use locassm_core::{KmerSpectrum, Read};
use memhier::{CacheConfig, SectorTrace};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn genome(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| locassm_core::dna::BASES[rng.random_range(0..4)]).collect()
}

fn shotgun(g: &[u8], n: usize, len: usize, seed: u64) -> Vec<Read> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let s = rng.random_range(0..g.len() - len);
            Read::with_uniform_qual(&g[s..s + len], b'I')
        })
        .collect()
}

fn bench_spectrum(c: &mut Criterion) {
    let mut g = c.benchmark_group("kmer_spectrum");
    let genome = genome(20_000, 3);
    let reads = shotgun(&genome, 2_000, 120, 4);
    let kmers: usize = reads.iter().map(|r| r.kmer_count(31)).sum();
    g.throughput(Throughput::Elements(kmers as u64));
    g.bench_function("build_k31", |b| b.iter(|| KmerSpectrum::build(black_box(&reads), 31)));
    g.finish();
}

fn bench_global_contigs(c: &mut Criterion) {
    let mut g = c.benchmark_group("global_contigs");
    g.sample_size(10);
    let genome = genome(10_000, 5);
    let reads = shotgun(&genome, 1_500, 120, 6);
    let mut spectrum = KmerSpectrum::build(&reads, 31);
    spectrum.filter(2);
    g.throughput(Throughput::Elements(spectrum.distinct() as u64));
    g.bench_function("unitigs_k31", |b| b.iter(|| generate_contigs(black_box(&spectrum))));
    g.finish();
}

fn bench_alignment(c: &mut Criterion) {
    let mut g = c.benchmark_group("alignment");
    let genome = genome(50_000, 7);
    let contigs: Vec<Vec<u8>> =
        (0..50).map(|i| genome[i * 900..i * 900 + 600].to_vec()).collect();
    let reads = shotgun(&genome, 2_000, 100, 8);
    let cfg = AlignConfig::default();

    g.bench_function("index_build", |b| b.iter(|| EndIndex::build(black_box(&contigs), cfg)));

    let index = EndIndex::build(&contigs, cfg);
    g.throughput(Throughput::Elements(reads.len() as u64));
    g.bench_function("place_reads", |b| {
        b.iter(|| {
            reads.iter().map(|r| index.place(black_box(&r.seq)).len()).sum::<usize>()
        })
    });

    g.bench_function("assign_to_ends", |b| {
        b.iter(|| assign_reads_to_ends(black_box(&contigs), &reads, 21, cfg).len())
    });
    g.finish();
}

fn bench_mrc(c: &mut Criterion) {
    let mut g = c.benchmark_group("miss_rate_curve");
    // A hash-probe-like trace: random sectors over a 64 KiB working set.
    let mut rng = StdRng::seed_from_u64(9);
    let mut trace = SectorTrace::new();
    for _ in 0..50_000 {
        trace.push(rng.random_range(0..2048u64), rng.random_bool(0.3));
    }
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("replay_16k", |b| {
        b.iter(|| trace.miss_rate(black_box(CacheConfig::new(16 * 1024, 128, 8))))
    });
    g.bench_function("curve_5_points", |b| {
        b.iter(|| {
            trace.miss_rate_curve(
                black_box(&[4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20]),
                128,
                8,
            )
        })
    });
    g.finish();
}

fn bench_multi_gpu(c: &mut Criterion) {
    use gpu_specs::DeviceId;
    use locassm_kernels::{run_multi_gpu, GpuConfig, Partition};
    use workloads::paper_dataset;
    let mut g = c.benchmark_group("multi_gpu");
    g.sample_size(10);
    let ds = paper_dataset(21, 0.003, 10);
    let mut cfg = GpuConfig::for_device(DeviceId::A100);
    cfg.parallel = false;
    for ranks in [1usize, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(ranks), &ds, |b, ds| {
            b.iter(|| {
                run_multi_gpu(black_box(ds), &cfg, ranks, Partition::WorkBalanced)
                    .makespan_seconds()
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_spectrum,
    bench_global_contigs,
    bench_alignment,
    bench_mrc,
    bench_multi_gpu
);
criterion_main!(benches);

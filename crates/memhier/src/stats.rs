//! Counter containers for memory traffic, mergeable across warps.

use crate::config::SECTOR_BYTES;
use serde::{Deserialize, Serialize};
use std::ops::AddAssign;

/// Counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelStats {
    /// Sector requests arriving at this level.
    pub requests: u64,
    /// Requests served from this level (tag + sector present).
    pub hits: u64,
    /// Requests forwarded to the level below.
    pub misses: u64,
    /// Dirty-sector write-backs sent to the level below.
    pub writebacks: u64,
}

impl LevelStats {
    /// Hit rate in [0, 1]; zero requests ⇒ 0.
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests as f64
        }
    }

    /// Bytes this level moved to/from the level below.
    pub fn bytes_below(&self) -> u64 {
        (self.misses + self.writebacks) * SECTOR_BYTES
    }
}

impl AddAssign for LevelStats {
    fn add_assign(&mut self, o: Self) {
        self.requests += o.requests;
        self.hits += o.hits;
        self.misses += o.misses;
        self.writebacks += o.writebacks;
    }
}

/// Full-hierarchy traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemStats {
    pub l1: LevelStats,
    pub l2: LevelStats,
    /// 32-byte read transactions that reached HBM.
    pub hbm_read_transactions: u64,
    /// 32-byte write transactions that reached HBM (write-backs).
    pub hbm_write_transactions: u64,
    /// Warp-level load/store instructions issued.
    pub mem_instructions: u64,
}

impl MemStats {
    /// Total HBM bytes moved — the paper's `dram__bytes.sum` equivalent.
    pub fn hbm_bytes(&self) -> u64 {
        (self.hbm_read_transactions + self.hbm_write_transactions) * SECTOR_BYTES
    }

    pub fn hbm_read_bytes(&self) -> u64 {
        self.hbm_read_transactions * SECTOR_BYTES
    }

    pub fn hbm_write_bytes(&self) -> u64 {
        self.hbm_write_transactions * SECTOR_BYTES
    }

    /// Total HBM transactions.
    pub fn hbm_transactions(&self) -> u64 {
        self.hbm_read_transactions + self.hbm_write_transactions
    }

    pub fn merge(&mut self, o: &MemStats) {
        self.l1 += o.l1;
        self.l2 += o.l2;
        self.hbm_read_transactions += o.hbm_read_transactions;
        self.hbm_write_transactions += o.hbm_write_transactions;
        self.mem_instructions += o.mem_instructions;
    }

    /// Counters accumulated since an `earlier` snapshot of the same stream
    /// (per-phase attribution). Panics in debug builds if `earlier` is not
    /// actually earlier.
    pub fn since(&self, earlier: &MemStats) -> MemStats {
        let lvl = |a: &LevelStats, b: &LevelStats| LevelStats {
            requests: a.requests - b.requests,
            hits: a.hits - b.hits,
            misses: a.misses - b.misses,
            writebacks: a.writebacks - b.writebacks,
        };
        MemStats {
            l1: lvl(&self.l1, &earlier.l1),
            l2: lvl(&self.l2, &earlier.l2),
            hbm_read_transactions: self.hbm_read_transactions - earlier.hbm_read_transactions,
            hbm_write_transactions: self.hbm_write_transactions - earlier.hbm_write_transactions,
            mem_instructions: self.mem_instructions - earlier.mem_instructions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_zero() {
        assert_eq!(LevelStats::default().hit_rate(), 0.0);
        let s = LevelStats { requests: 10, hits: 7, misses: 3, writebacks: 0 };
        assert!((s.hit_rate() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn hbm_bytes_counts_both_directions() {
        let s = MemStats {
            hbm_read_transactions: 3,
            hbm_write_transactions: 2,
            ..Default::default()
        };
        assert_eq!(s.hbm_bytes(), 5 * SECTOR_BYTES);
        assert_eq!(s.hbm_read_bytes(), 96);
        assert_eq!(s.hbm_write_bytes(), 64);
    }

    #[test]
    fn merge_accumulates_every_field() {
        let mut a = MemStats {
            l1: LevelStats { requests: 1, hits: 1, misses: 0, writebacks: 0 },
            l2: LevelStats { requests: 2, hits: 0, misses: 2, writebacks: 1 },
            hbm_read_transactions: 2,
            hbm_write_transactions: 1,
            mem_instructions: 5,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.l1.requests, 2);
        assert_eq!(a.l2.writebacks, 2);
        assert_eq!(a.hbm_transactions(), 6);
        assert_eq!(a.mem_instructions, 10);
    }
}

//! Warp-sanitizer system tests: the tier-1 `sanitizer_clean` gate and
//! detection coverage for each seeded defect class.
//!
//! The gate runs every kernel dialect on every dataset size with all
//! checks enabled and requires **zero findings** — the paper's kernels
//! are race-free by construction (ordered by `__match_any_sync` +
//! `__syncwarp`, wavefront lockstep, or sub-group barriers), so any
//! finding is a regression in the kernels or a false positive in the
//! sanitizer, and both must be fixed. Lints (access-pattern diagnostics)
//! are allowed: probe chains legitimately scatter.
//!
//! The detection half seeds one defect of each class and requires the
//! matching check to fire — the sanitizer's own regression suite.

use locassm_kernels::layout::{DeviceJob, OFF_KEY_LEN, OFF_KEY_OFF};
use locassm_kernels::probe::InsertArgs;
use locassm_kernels::{run_local_assembly, GpuConfig};
use memhier::HierarchyConfig;
use gpu_specs::DeviceId;
use locassm_core::walk::WalkConfig;
use locassm_core::Read;
use simt::{LaneVec, Mask, SanitizerConfig, Warp};
use workloads::paper_dataset;

const KS: [usize; 4] = [21, 33, 55, 77];

/// Tier-1 gate: three dialects × four datasets under the full sanitizer,
/// zero findings everywhere — and the sanitized run's results and modeled
/// counters are bit-identical to the plain run's.
#[test]
fn sanitizer_clean_three_dialects_four_datasets() {
    for k in KS {
        let ds = paper_dataset(k, 0.002, 7);
        for device in [DeviceId::A100, DeviceId::Mi250x, DeviceId::Max1550] {
            let mut cfg = GpuConfig::for_device(device);
            let plain = run_local_assembly(&ds, &cfg);
            cfg.sanitize = SanitizerConfig::all();
            let run = run_local_assembly(&ds, &cfg);
            assert!(
                run.san.is_clean(),
                "k={k} {device} ({}): expected zero findings, got {:?}",
                cfg.dialect,
                run.san.findings
            );
            assert_eq!(run.extensions, plain.extensions, "k={k} {device}: results");
            assert_eq!(run.profile.total, plain.profile.total, "k={k} {device}: counters");
        }
    }
}

fn sanitized_warp(width: u32) -> Warp {
    let mut w = Warp::new(width, HierarchyConfig::tiny());
    w.enable_sanitizer(SanitizerConfig::all());
    w
}

/// Seeded defect class 1: two lanes store the same word within one warp
/// step, no ordering collective between them.
#[test]
fn detects_injected_lane_race() {
    let mut w = sanitized_warp(32);
    let a = w.mem.alloc(4);
    let vals = LaneVec::from_fn(32, |l| l);
    w.store_u32(Mask(0b11), &LaneVec::splat(a), &vals);
    let r = w.take_san_report().unwrap();
    assert_eq!(r.count("lane_race"), 1, "{:?}", r.findings);

    // Control: the same two stores separated by a syncwarp are ordered.
    let mut w = sanitized_warp(32);
    let a = w.mem.alloc(4);
    w.store_u32(Mask(0b01), &LaneVec::splat(a), &vals);
    w.syncwarp(Mask(0b11));
    w.store_u32(Mask(0b10), &LaneVec::splat(a), &vals);
    let r = w.take_san_report().unwrap();
    assert_eq!(r.count("lane_race"), 0, "ordered stores are not a race");
}

/// Seeded defect class 2: `__syncwarp` naming lanes that executed nothing
/// since the last convergence point.
#[test]
fn detects_divergent_barrier() {
    let mut w = sanitized_warp(32);
    w.iop(Mask(0b11), 1); // only lanes 0-1 are live...
    w.syncwarp(Mask(0b1111)); // ...but the barrier claims lanes 0-3
    let r = w.take_san_report().unwrap();
    assert_eq!(r.count("divergent_barrier"), 1, "{:?}", r.findings);

    // Control: a barrier over exactly the live lanes is clean.
    let mut w = sanitized_warp(32);
    w.iop(Mask(0b1111), 1);
    w.syncwarp(Mask(0b1111));
    let r = w.take_san_report().unwrap();
    assert!(r.is_clean(), "{:?}", r.findings);
}

/// Seeded defect class 3: a shuffle reading from a source lane outside
/// the active mask (undefined on hardware), and one beyond the width.
#[test]
fn detects_inactive_and_out_of_range_shuffle_source() {
    let mut w = sanitized_warp(32);
    let vals = LaneVec::from_fn(32, |l| l);
    let _ = w.shfl_u32(Mask(0b11), &vals, 5); // lane 5 is not active
    let _ = w.shfl_u32(Mask(0b11), &vals, 40); // beyond width 32
    let _ = w.shfl_u32(Mask(0b11), &vals, 1); // clean
    let r = w.take_san_report().unwrap();
    assert_eq!(r.count("shfl_inactive_src"), 1, "{:?}", r.findings);
    assert_eq!(r.count("shfl_src_out_of_range"), 1, "{:?}", r.findings);
    assert_eq!(r.findings.len(), 2);
}

fn staged_job(warp: &mut Warp) -> DeviceJob {
    let reads = vec![Read::with_uniform_qual(b"ACGTACGTACGT", b'I')];
    DeviceJob::stage(warp, b"ACGTACGTACGT", &reads, 4, WalkConfig::default(), 1).unwrap()
}

/// Seeded defect class 4: two occupied slots holding the same key — the
/// corruption a lost claim/collision vote would produce. The post-
/// construct invariant scan must name both slots.
#[test]
fn detects_duplicate_key_insert() {
    let mut w = sanitized_warp(32);
    let mut job = staged_job(&mut w);

    // A genuine insert claims one slot for the k-mer at read offset 0...
    let args = InsertArgs {
        mask: Mask::lane(0),
        key_off: LaneVec::splat(0u32),
        hash: LaneVec::splat(2u32),
    };
    let slots = locassm_kernels::insert_cuda::ht_get_atomic(&mut w, &mut job, &args).unwrap();
    // ...then a doctored second slot claims the same key bytes.
    let dup = (slots[0] + 3) % job.slots;
    w.mem.write_u32(job.entry_field(dup, OFF_KEY_LEN), 4);
    w.mem.write_u32(job.entry_field(dup, OFF_KEY_OFF), 0);

    let found = locassm_kernels::layout::check_table_invariants(&w, &job);
    assert_eq!(found.len(), 1, "{found:?}");
    assert!(matches!(found[0], simt::SanKind::DuplicateKey { .. }), "{found:?}");
    for kind in found {
        w.san_record(kind);
    }
    let r = w.take_san_report().unwrap();
    assert_eq!(r.count("duplicate_key"), 1);
}

/// Seeded defect class: a tombstone written without updating the job's
/// deletion counter — the bookkeeping drift an unbalanced delete leaves
/// behind. The resize-aware invariant scan must catch the mismatch.
#[test]
fn detects_dangling_tombstone_count() {
    let mut w = sanitized_warp(32);
    let mut job = staged_job(&mut w);
    job.resize = true;
    let args = InsertArgs {
        mask: Mask::lane(0),
        key_off: LaneVec::splat(0u32),
        hash: LaneVec::splat(2u32),
    };
    let slots = locassm_kernels::insert_cuda::ht_get_atomic(&mut w, &mut job, &args).unwrap();
    // Doctor a tombstone into an empty slot without counting it.
    let dangling = (slots[0] + 3) % job.slots;
    w.mem.write_u32(job.entry_field(dangling, OFF_KEY_LEN), locassm_kernels::TOMBSTONE);

    let found = locassm_kernels::layout::check_table_invariants(&w, &job);
    for kind in found {
        w.san_record(kind);
    }
    let r = w.take_san_report().unwrap();
    assert_eq!(r.count("tombstone_mismatch"), 1, "{:?}", r.findings);
    assert_eq!(r.count("migration_mismatch"), 0, "occupancy bookkeeping is intact");
}

/// Seeded defect class: a live entry that survived in *both* regions'
/// slots after a migration (copied but never retired) — the occupancy
/// scan disagrees with the migration counter, and the duplicated key is
/// named too.
#[test]
fn detects_migrated_twice_slot() {
    let mut w = sanitized_warp(32);
    let mut job = staged_job(&mut w);
    job.resize = true;
    let args = InsertArgs {
        mask: Mask::lane(0),
        key_off: LaneVec::splat(0u32),
        hash: LaneVec::splat(2u32),
    };
    let slots = locassm_kernels::insert_cuda::ht_get_atomic(&mut w, &mut job, &args).unwrap();
    // Clone the live entry into a second slot, as a migration that failed
    // to tombstone the source would.
    let twin = (slots[0] + 5) % job.slots;
    for word in 0..(locassm_kernels::layout::ENTRY_STRIDE / 4) {
        let v = w.mem.read_u32(job.entry_field(slots[0], 4 * word));
        w.mem.write_u32(job.entry_field(twin, 4 * word), v);
    }

    let found = locassm_kernels::layout::check_table_invariants(&w, &job);
    for kind in found {
        w.san_record(kind);
    }
    let r = w.take_san_report().unwrap();
    assert_eq!(r.count("migration_mismatch"), 1, "{:?}", r.findings);
    assert_eq!(r.count("duplicate_key"), 1, "the cloned key is named as well");
}

/// Seeded defect class 5: a probe chain wrapping a (lied-about) 4-slot
/// table — the wrap guard faults *and* the sanitizer records the wrap.
#[test]
fn detects_probe_wrap_on_full_table() {
    let mut w = sanitized_warp(32);
    let seq: Vec<u8> = (0..160).map(|i| b"ACGT"[(i * 7 + i / 4) % 4]).collect();
    let reads = vec![Read::with_uniform_qual(&seq, b'I')];
    let mut job =
        DeviceJob::stage(&mut w, b"ACGTACGTACGT", &reads, 8, WalkConfig::default(), 1).unwrap();
    job.slots = 4;
    let mut faulted = false;
    for off in 0..8u32 {
        let args = InsertArgs {
            mask: Mask::lane(0),
            key_off: LaneVec::splat(off),
            hash: LaneVec::splat(off % 4),
        };
        if locassm_kernels::insert_cuda::ht_get_atomic(&mut w, &mut job, &args).is_err() {
            faulted = true;
            break;
        }
    }
    assert!(faulted, "the 5th distinct key must overflow the 4-slot table");
    let r = w.take_san_report().unwrap();
    assert_eq!(r.count("probe_wrap"), 1, "{:?}", r.findings);
}

/// The sanitizer's findings ride the trace stream too: a seeded race in a
/// traced, sanitized warp emits a `san_finding` instant event that the
/// Chrome exporter renders with its check name.
#[test]
fn findings_surface_as_trace_events() {
    let mut w = Warp::new(32, HierarchyConfig::tiny());
    w.enable_trace(0);
    w.enable_sanitizer(SanitizerConfig::all());
    let a = w.mem.alloc(4);
    let vals = LaneVec::from_fn(32, |l| l);
    w.store_u32(Mask(0b11), &LaneVec::splat(a), &vals);
    let trace = w.take_trace().unwrap();
    let hits: Vec<_> = trace
        .events
        .iter()
        .filter(|e| matches!(e.kind, simt::EventKind::SanFinding { check } if check == "lane_race"))
        .collect();
    assert_eq!(hits.len(), 1, "one san_finding event for the seeded race");
    let json = perfmodel::chrome_trace(std::slice::from_ref(&trace));
    assert!(json.contains("san_finding"), "exported timeline names the event");
    assert!(json.contains("lane_race"), "exported args carry the check name");
}

//! The SIMT Smith-Waterman kernel (warp per alignment, anti-diagonal
//! wavefront).
//!
//! The classic GPU formulation ADEPT uses: cells on one anti-diagonal are
//! independent, so the lanes of a warp sweep each diagonal in lockstep,
//! carrying the previous two diagonals in memory. Compared to local
//! assembly, access is regular (sequential buffers, perfectly coalesced)
//! and there are no atomics — but utilization ramps up and down the
//! diagonal wavefront and every cell depends on the previous diagonal,
//! the structural signature of DP kernels on GPUs.

use crate::scoring::{Alignment, Scoring};
use memhier::Addr;
use simt::{LaneVec, Mask, Warp};

/// Device-resident job for one alignment.
struct SwJob {
    q: Addr,
    r: Addr,
    m: usize,
    n: usize,
    /// Three rotating H-diagonal buffers, indexed by query index 0..=m.
    bufs: [Addr; 3],
}

impl SwJob {
    fn stage(warp: &mut Warp, query: &[u8], reference: &[u8]) -> SwJob {
        let q = warp.mem.alloc_bytes(query);
        let r = warp.mem.alloc_bytes(reference);
        let len = (query.len() as u64 + 1) * 4;
        let bufs = [warp.mem.alloc(len), warp.mem.alloc(len), warp.mem.alloc(len)];
        for b in bufs {
            warp.mem.fill(b, len, 0);
        }
        SwJob { q, r, m: query.len(), n: reference.len(), bufs }
    }
}

/// Align one (query, reference) pair on the warp; returns score + end
/// coordinates, bit-identical to [`crate::cpu::sw_score_cpu`].
pub fn sw_kernel(warp: &mut Warp, query: &[u8], reference: &[u8], s: &Scoring) -> Alignment {
    if query.is_empty() || reference.is_empty() {
        return Alignment::NONE;
    }
    let job = SwJob::stage(warp, query, reference);
    let width = warp.width();
    let (m, n) = (job.m, job.n);

    // Per-lane running best (score, diag, i) — reduced at the end.
    let mut best_score = LaneVec::splat(0i64);
    let mut best_diag = LaneVec::splat(u32::MAX);
    let mut best_i = LaneVec::splat(0u32);

    // Rotating buffer roles: cur = d, prev = d−1, prev2 = d−2.
    let (mut cur, mut prev, mut prev2) = (job.bufs[0], job.bufs[1], job.bufs[2]);

    for d in 2..=(m + n) {
        let lo = 1.max(d.saturating_sub(n));
        let hi = m.min(d - 1);
        if lo > hi {
            continue;
        }
        let cells = hi - lo + 1;
        let rounds = cells.div_ceil(width as usize);
        for round in 0..rounds {
            let mut mask = Mask::NONE;
            for l in 0..width {
                if round * width as usize + (l as usize) < cells {
                    mask.set(l);
                }
            }
            let iv = LaneVec::from_fn(width, |l| (lo + round * width as usize + l as usize) as u32);

            // Loads: q[i−1], r[j−1], prev[i], prev[i−1], prev2[i−1].
            let q_addrs = LaneVec::from_fn(width, |l| job.q + iv[l] as u64 - 1);
            let qc = warp.load_u8(mask, &q_addrs);
            // Inactive lanes may hold out-of-band indices; clamp their
            // (unread) addresses into range.
            let r_addrs = LaneVec::from_fn(width, |l| {
                let j = (d as u64).saturating_sub(iv[l] as u64).max(1);
                job.r + j - 1
            });
            let rc = warp.load_u8(mask, &r_addrs);
            let up_addrs = LaneVec::from_fn(width, |l| prev + iv[l] as u64 * 4);
            let up = warp.load_u32(mask, &up_addrs);
            let left_addrs = LaneVec::from_fn(width, |l| prev + (iv[l] as u64 - 1) * 4);
            let left = warp.load_u32(mask, &left_addrs);
            let diag_addrs = LaneVec::from_fn(width, |l| prev2 + (iv[l] as u64 - 1) * 4);
            let diag = warp.load_u32(mask, &diag_addrs);

            // The DP cell: 3 adds, 3 maxes, 1 compare for the best update,
            // plus index arithmetic — ~10 integer ops (ADEPT's measured
            // per-cell op count is in the same range).
            warp.iop(mask, 10);

            let mut h = LaneVec::splat(0u32);
            for l in mask.lanes() {
                let i = iv[l] as usize;
                let val = 0i32
                    .max(diag[l] as i32 + s.subst(qc[l], rc[l]))
                    .max(up[l] as i32 + s.gap)
                    .max(left[l] as i32 + s.gap);
                h[l] = val as u32;
                // Best update with the oracle's tie-break (earlier diag,
                // then smaller i).
                let better = (val as i64) > best_score[l]
                    || ((val as i64) == best_score[l]
                        && val > 0
                        && ((d as u32) < best_diag[l]
                            || ((d as u32) == best_diag[l] && (i as u32) < best_i[l])));
                if better {
                    best_score[l] = val as i64;
                    best_diag[l] = d as u32;
                    best_i[l] = i as u32;
                }
            }
            let cur_addrs = LaneVec::from_fn(width, |l| cur + iv[l] as u64 * 4);
            warp.store_u32(mask, &cur_addrs, &h);
        }
        // Zero the boundary cells of `cur` that this diagonal did not
        // write but the next will read (i = lo−1 when the band moves).
        if lo >= 1 {
            warp.store_u32_scalar(0, cur + (lo as u64 - 1) * 4, 0);
        }
        if hi < m {
            warp.store_u32_scalar(0, cur + (hi as u64 + 1) * 4, 0);
        }
        // Rotate: d+1's prev2 = d−1's buffer, prev = d's buffer.
        let old_prev2 = prev2;
        prev2 = prev;
        prev = cur;
        cur = old_prev2;
    }

    // Warp reduction of the per-lane bests (log₂(width) shuffle rounds on
    // hardware; the simulator charges the collectives).
    let mut stride = width / 2;
    while stride >= 1 {
        let scores = LaneVec::from_fn(width, |l| best_score[l] as u32);
        let _ = warp.shfl_u32(warp.full_mask(), &scores, 0); // traffic accounting
        warp.iop(warp.full_mask(), 3);
        for l in 0..stride {
            let o = l + stride;
            let better = best_score[o] > best_score[l]
                || (best_score[o] == best_score[l]
                    && best_score[o] > 0
                    && (best_diag[o] < best_diag[l]
                        || (best_diag[o] == best_diag[l] && best_i[o] < best_i[l])));
            if better {
                best_score[l] = best_score[o];
                best_diag[l] = best_diag[o];
                best_i[l] = best_i[o];
            }
        }
        stride /= 2;
    }

    if best_score[0] == 0 {
        return Alignment::NONE;
    }
    let i = best_i[0] as usize;
    let d = best_diag[0] as usize;
    Alignment { score: best_score[0] as i32, query_end: i, ref_end: d - i }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::sw_score_cpu;
    use memhier::HierarchyConfig;

    fn run(q: &[u8], r: &[u8], width: u32) -> (Alignment, simt::WarpCounters) {
        let mut warp = Warp::new(width, HierarchyConfig::tiny());
        let a = sw_kernel(&mut warp, q, r, &Scoring::default());
        (a, warp.finish())
    }

    #[test]
    fn matches_cpu_on_basics() {
        let cases: [(&[u8], &[u8]); 5] = [
            (b"ACGTACGT", b"ACGTACGT"),
            (b"CGTA", b"TTACGTATT"),
            (b"ACGTA", b"ACCTA"),
            (b"ACGTTA", b"ACGTA"),
            (b"AAAA", b"CCCC"),
        ];
        for (q, r) in cases {
            let cpu = sw_score_cpu(q, r, &Scoring::default());
            for width in [16u32, 32, 64] {
                let (gpu, _) = run(q, r, width);
                assert_eq!(gpu, cpu, "q={:?} r={:?} width={width}",
                    String::from_utf8_lossy(q), String::from_utf8_lossy(r));
            }
        }
    }

    #[test]
    fn counts_work_proportional_to_matrix() {
        let q = vec![b'A'; 64];
        let r = vec![b'C'; 64];
        let (_, c) = run(&q, &r, 32);
        // ~10 iops per cell, 64×64 cells, issued in warp-wide rounds.
        let cells = 64 * 64;
        assert!(c.int_instructions as usize >= cells * 10 / 32);
        assert!(c.mem.mem_instructions > 0);
    }

    #[test]
    fn empty_inputs_are_none() {
        let (a, _) = run(b"", b"ACGT", 32);
        assert_eq!(a, Alignment::NONE);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::cpu::sw_score_cpu;
    use memhier::HierarchyConfig;
    use proptest::prelude::*;

    fn dna(max: usize) -> impl Strategy<Value = Vec<u8>> {
        proptest::collection::vec(
            proptest::sample::select(locassm_core::dna::BASES.to_vec()),
            1..max,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// The SIMT kernel is an exact oracle match on random sequences,
        /// at every warp width.
        #[test]
        fn kernel_matches_cpu(q in dna(40), r in dna(40), width in prop_oneof![Just(16u32), Just(32), Just(64)]) {
            let cpu = sw_score_cpu(&q, &r, &Scoring::default());
            let mut warp = Warp::new(width, HierarchyConfig::tiny());
            let gpu = sw_kernel(&mut warp, &q, &r, &Scoring::default());
            prop_assert_eq!(gpu, cpu);
        }
    }
}

//! Phred quality scores.
//!
//! Each base of a read carries a Phred+33 encoded quality character. The
//! local assembly kernel splits extension votes into high-quality
//! (`hi_q_exts`) and low-quality (`low_q_exts`) buckets by a fixed cutoff,
//! exactly as the `loc_ht` value struct in the paper's Appendix A does.

/// Phred+33 encoding offset.
pub const PHRED_OFFSET: u8 = 33;

/// Phred score at or above which a base vote counts as high quality.
/// MetaHipMer uses Q20 ("1 error in 100") as its quality cutoff.
pub const HI_QUAL_CUTOFF: u8 = 20;

/// Decode a quality character to its Phred score.
#[inline]
pub fn phred(q: u8) -> u8 {
    q.saturating_sub(PHRED_OFFSET)
}

/// Encode a Phred score as a quality character.
#[inline]
pub fn qual_char(score: u8) -> u8 {
    score.saturating_add(PHRED_OFFSET).min(b'~')
}

/// Does this quality character clear the high-quality cutoff?
#[inline]
pub fn is_hi_qual(q: u8) -> bool {
    phred(q) >= HI_QUAL_CUTOFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phred_roundtrip() {
        for score in 0..=60u8 {
            assert_eq!(phred(qual_char(score)), score);
        }
    }

    #[test]
    fn cutoff_boundary() {
        assert!(is_hi_qual(qual_char(HI_QUAL_CUTOFF)));
        assert!(!is_hi_qual(qual_char(HI_QUAL_CUTOFF - 1)));
        assert!(is_hi_qual(b'I'), "Illumina Q40 is high quality");
        assert!(!is_hi_qual(b'#'), "Q2 is low quality");
    }

    #[test]
    fn encode_saturates_at_printable_range() {
        assert_eq!(qual_char(200), b'~');
        assert_eq!(phred(0), 0, "below-offset chars clamp to zero");
    }
}

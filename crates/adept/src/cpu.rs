//! Reference Smith-Waterman (the oracle for the SIMT kernel).

use crate::scoring::{Alignment, Scoring};

/// Full-matrix local alignment, score + end coordinates.
///
/// Tie-breaking is fixed so the anti-diagonal kernel can match it exactly:
/// among equal-scoring cells the earliest anti-diagonal (`i + j`) wins,
/// then the smallest query index `i`.
pub fn sw_score_cpu(query: &[u8], reference: &[u8], s: &Scoring) -> Alignment {
    let (m, n) = (query.len(), reference.len());
    if m == 0 || n == 0 {
        return Alignment::NONE;
    }
    // One rolling row of H (i fixed per outer loop), plus the diagonal carry.
    let mut prev_row = vec![0i32; n + 1];
    let mut best = Alignment::NONE;
    let mut best_diag = usize::MAX;

    for i in 1..=m {
        let mut diag = 0i32; // H(i-1, j-1)
        let mut cur_left = 0i32; // H(i, j-1)
        for j in 1..=n {
            let up = prev_row[j];
            let h = 0i32
                .max(diag + s.subst(query[i - 1], reference[j - 1]))
                .max(up + s.gap)
                .max(cur_left + s.gap);
            diag = up;
            prev_row[j - 1] = cur_left; // finalize H(i, j-1) into the row
            cur_left = h;

            let d = i + j;
            if h > best.score || (h == best.score && h > 0 && (d < best_diag
                || (d == best_diag && i < best.query_end)))
            {
                best = Alignment { score: h, query_end: i, ref_end: j };
                best_diag = d;
            }
        }
        prev_row[n] = cur_left;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn score(q: &[u8], r: &[u8]) -> i32 {
        sw_score_cpu(q, r, &Scoring::default()).score
    }

    #[test]
    fn exact_match_scores_full() {
        let a = sw_score_cpu(b"ACGTACGT", b"ACGTACGT", &Scoring::default());
        assert_eq!(a.score, 8 * 3);
        assert_eq!(a.query_end, 8);
        assert_eq!(a.ref_end, 8);
    }

    #[test]
    fn substring_found() {
        let a = sw_score_cpu(b"CGTA", b"TTACGTATT", &Scoring::default());
        assert_eq!(a.score, 4 * 3);
        assert_eq!(a.query_end, 4);
        assert_eq!(a.ref_end, 7); // "CGTA" occupies reference[3..7]
    }

    #[test]
    fn mismatch_vs_gap_tradeoff() {
        // One mismatch (−3) beats gap-gap (−12): score 5·3 − 3 − … choose
        // the alignment "ACGTA"/"ACCTA": 4 matches + 1 mismatch = 9.
        assert_eq!(score(b"ACGTA", b"ACCTA"), 4 * 3 - 3);
    }

    #[test]
    fn gap_taken_when_cheaper() {
        // Query insertion: "ACGTTA" vs "ACGTA". The gapped alignment
        // scores 5·3 − 6 = 9, but *local* alignment prefers the ungapped
        // "ACGT" prefix (4·3 = 12) — the hallmark of SW.
        assert_eq!(score(b"ACGTTA", b"ACGTA"), 4 * 3);
        // With a longer conserved suffix, bridging pays: "ACGTTTTTT" vs
        // "ACGGTTTTTT" aligns all 9 query bases with one gap (or one
        // mismatch): 9·3 − 6 = 3·3 + 6·3 − 3 = 21.
        assert_eq!(score(b"ACGTTTTTT", b"ACGGTTTTTT"), 21);
    }

    #[test]
    fn disjoint_sequences_score_zero_floor() {
        let a = sw_score_cpu(b"AAAA", b"CCCC", &Scoring::default());
        assert_eq!(a.score, 0);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(sw_score_cpu(b"", b"ACGT", &Scoring::default()), Alignment::NONE);
        assert_eq!(sw_score_cpu(b"ACGT", b"", &Scoring::default()), Alignment::NONE);
    }

    #[test]
    fn local_alignment_ignores_noise_flanks() {
        // The core "ACGTACGT" is embedded in noise on both sides.
        let q = b"TTTTACGTACGTTTTT";
        let r = b"GGGGACGTACGTGGGG";
        // Flank T/G runs mismatch; the local core still scores ≥ 8 matches.
        assert!(score(q, r) >= 8 * 3);
    }
}

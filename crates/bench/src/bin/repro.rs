//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro [--scale S] [--seed N] [--serial] <artifact>...
//! artifact ∈ {table1, table2, table3, table4, table5, table6, table7,
//!             fig5, fig6, fig7, fig8, fig9, ablation, all}
//! ```
//!
//! `--scale` shrinks the datasets (contig/read counts) for quick runs; the
//! official numbers in EXPERIMENTS.md use the default scale 1.0, which
//! reproduces Table II's counts exactly.

use gpu_specs::DeviceId;
use locassm_bench::cli::{require_arg, require_ok};
use locassm_core::io::Dataset;
use locassm_kernels::{run_local_assembly, GpuConfig, KernelProfile};
use perfmodel::plot::{BarChart, LogLogScatter, Series};
use perfmodel::table::{bytes_eng, f, pct, Table};
use perfmodel::{
    algorithm_efficiency, performance_portability, Csv, RooflinePoint, SpeedupPoint,
    TheoreticalModel,
};
use std::collections::BTreeMap;
use workloads::{paper_dataset, DatasetStats, ExtensionStats};

const KS: [usize; 4] = [21, 33, 55, 77];

struct Args {
    scale: f64,
    seed: u64,
    parallel: bool,
    csv_dir: Option<std::path::PathBuf>,
    trace: Option<std::path::PathBuf>,
    sanitize: bool,
    sched: bool,
    sched_trace: Option<std::path::PathBuf>,
    artifacts: Vec<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 1.0,
        seed: 20240913,
        parallel: true,
        csv_dir: None,
        trace: None,
        sanitize: false,
        sched: false,
        sched_trace: None,
        artifacts: vec![],
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                args.scale = require_arg(
                    it.next().and_then(|v| v.parse().ok()),
                    "--scale <positive float>",
                );
            }
            "--seed" => {
                args.seed =
                    require_arg(it.next().and_then(|v| v.parse().ok()), "--seed <integer>");
            }
            "--serial" => args.parallel = false,
            "--sanitize" => args.sanitize = true,
            "--sched" => args.sched = true,
            "--sched-trace" => {
                args.sched = true;
                args.sched_trace = Some(std::path::PathBuf::from(require_arg(
                    it.next(),
                    "--sched-trace <path.json>",
                )));
            }
            "--csv" => {
                args.csv_dir =
                    Some(std::path::PathBuf::from(require_arg(it.next(), "--csv <dir>")));
            }
            "--trace" => {
                args.trace = Some(std::path::PathBuf::from(require_arg(
                    it.next(),
                    "--trace <path.json>",
                )));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: repro [--scale S] [--seed N] [--serial] [--csv DIR] \
                     [--trace PATH.json] [--sanitize] [--sched] [--sched-trace PATH.json] \
                     <table1..table7|fig5..fig9|ablation|whatif|divergence|scaling|adept|packed|all>..."
                );
                std::process::exit(0);
            }
            other => args.artifacts.push(other.to_string()),
        }
    }
    if args.artifacts.is_empty() && args.trace.is_none() && !args.sanitize && !args.sched {
        args.artifacts.push("all".to_string());
    }
    const KNOWN: [&str; 16] = [
        "table1", "table2", "table3", "table4", "table5", "table6", "table7", "fig5", "fig6",
        "fig7", "fig8", "fig9", "ablation", "whatif", "divergence", "scaling",
    ];
    for a in &args.artifacts {
        let known = KNOWN.contains(&a.as_str())
            || matches!(a.as_str(), "adept" | "packed" | "all");
        if !known {
            eprintln!("unknown artifact `{a}` (see --help)");
            std::process::exit(2);
        }
    }
    args
}

/// All simulated runs for the main study: (k, device) → profile, plus the
/// A100 extensions for the dataset statistics.
struct Matrix {
    profiles: BTreeMap<(usize, &'static str), KernelProfile>,
    dataset_stats: BTreeMap<usize, DatasetStats>,
    ext_stats: BTreeMap<usize, ExtensionStats>,
}

fn device_key(d: DeviceId) -> &'static str {
    d.spec().short_name
}

fn device_of(key: &str) -> DeviceId {
    match key {
        "NVIDIA" => DeviceId::A100,
        "AMD" => DeviceId::Mi250x,
        "INTEL" => DeviceId::Max1550,
        other => panic!("unknown device key {other}"),
    }
}

fn build_matrix(args: &Args) -> Matrix {
    let mut profiles = BTreeMap::new();
    let mut dataset_stats = BTreeMap::new();
    let mut ext_stats = BTreeMap::new();
    for k in KS {
        eprintln!("[repro] generating dataset k={k} (scale {})…", args.scale);
        let ds: Dataset = paper_dataset(k, args.scale, args.seed);
        dataset_stats.insert(k, DatasetStats::compute(&ds));
        for dev in DeviceId::ALL {
            eprintln!("[repro]   simulating {} ({})…", dev, dev.spec().model);
            let mut cfg = GpuConfig::for_device(dev);
            cfg.parallel = args.parallel;
            let run = run_local_assembly(&ds, &cfg);
            if dev == DeviceId::A100 {
                ext_stats.insert(k, ExtensionStats::compute(&run.extensions));
            }
            profiles.insert((k, device_key(dev)), run.profile);
        }
    }
    Matrix { profiles, dataset_stats, ext_stats }
}

fn table1() {
    let mut t = Table::new("Table I — HPC architectures, compilers and languages")
        .header(["HPC System", "Accelerator", "Programming Model", "Compiler"]);
    for dev in DeviceId::ALL {
        let s = dev.spec();
        t.row([s.system, s.name, &s.model.to_string(), s.compiler]);
    }
    println!("{}", t.render());
}

fn table2(m: &Matrix) {
    let mut t = Table::new("Table II — dataset characteristics (synthetic, targeting the paper)")
        .header([
            "k-mer size",
            "total contigs",
            "total reads",
            "avg read length",
            "total hash insertions",
            "avg extn length",
            "total extns",
        ]);
    for k in KS {
        let d = &m.dataset_stats[&k];
        let e = &m.ext_stats[&k];
        t.row([
            k.to_string(),
            d.total_contigs.to_string(),
            d.total_reads.to_string(),
            f(d.avg_read_length, 1),
            d.total_hash_insertions.to_string(),
            f(e.avg_extension_length, 1),
            e.total_extensions.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("(paper: 14195/74159/155/10011465/48.2/684100, 4394/20421/159/2593467/88.2/387283,");
    println!(" 3319/13160/166/1473920/161.0/534206, 2544/7838/175/775962/227.0/577496)\n");
}

fn table3() {
    let mut t = Table::new("Table III — architectural features (per used die/tile)")
        .header(["Board", "Compute Units", "L1 / CU", "L2", "Memory", "Warp"]);
    for dev in DeviceId::ALL {
        let s = dev.spec();
        t.row([
            s.name.to_string(),
            s.compute_units.to_string(),
            bytes_eng(s.l1_bytes_per_cu),
            bytes_eng(s.l2_bytes),
            bytes_eng(s.mem_bytes),
            s.warp_width.to_string(),
        ]);
    }
    println!("{}", t.render());
}

fn fig5(m: &Matrix) {
    let mut chart = BarChart::new("Fig. 5 — kernel execution time (simulated)", "s");
    for k in KS {
        for dev in DeviceId::ALL {
            let p = &m.profiles[&(k, device_key(dev))];
            chart.bar(format!("k={k:<2} {}", device_key(dev)), p.seconds());
        }
    }
    println!("{}", chart.render());
}

fn fig6(m: &Matrix) {
    for dev in DeviceId::ALL {
        let spec = dev.spec();
        let mut plot = LogLogScatter::new(
            format!(
                "Fig. 6 — instruction roofline, {} (machine balance {:.2}, peak {:.0} GINTOPS, {:.0} GB/s)",
                device_key(dev),
                spec.machine_balance(),
                spec.peak_intops_per_sec / 1e9,
                spec.hbm_bytes_per_sec / 1e9
            ),
            "II [INTOPs/byte]",
            "performance [INTOP/s]",
        );
        let mut t = Table::new("").header(["k", "II", "GINTOP/s", "% roofline", "bound"]);
        let mut pts = Vec::new();
        for k in KS {
            let p = &m.profiles[&(k, device_key(dev))];
            let rp = RooflinePoint::new(p.intops(), p.hbm_bytes(), p.seconds());
            pts.push((rp.ii, rp.intops_per_sec));
            t.row([
                k.to_string(),
                f(rp.ii, 3),
                f(rp.intops_per_sec / 1e9, 2),
                pct(rp.fraction_of_roofline(spec)),
                format!("{:?}", rp.bound(spec)),
            ]);
        }
        plot.series(Series { label: "k=21..77".into(), marker: 'o', points: pts });
        println!("{}", plot.render());
        println!("{}", t.render());
    }
}

fn correlation(m: &Matrix, other: DeviceId, fig: &str) {
    let okey = device_key(other);
    let mut perf = LogLogScatter::new(
        format!("{fig}a — A100 vs {okey} GINTOPs/s"),
        format!("{okey} GINTOPs/s"),
        "A100 GINTOPs/s",
    );
    perf.diagonal = true;
    let mut bytes = LogLogScatter::new(
        format!("{fig}b — A100 vs {okey} GBytes"),
        format!("{okey} GBytes"),
        "A100 GBytes",
    );
    bytes.diagonal = true;
    let mut t = Table::new(format!("{fig} — correlation data")).header([
        "k".to_string(),
        format!("{okey} GINTOPs/s"),
        "A100 GINTOPs/s".to_string(),
        format!("{okey} GB"),
        "A100 GB".to_string(),
    ]);
    let mut perf_pts = Vec::new();
    let mut byte_pts = Vec::new();
    for k in KS {
        let a = &m.profiles[&(k, "NVIDIA")];
        let o = &m.profiles[&(k, okey)];
        perf_pts.push((o.gintops_per_sec(), a.gintops_per_sec()));
        byte_pts.push((o.hbm_bytes() as f64 / 1e9, a.hbm_bytes() as f64 / 1e9));
        t.row([
            k.to_string(),
            f(o.gintops_per_sec(), 2),
            f(a.gintops_per_sec(), 2),
            f(o.hbm_bytes() as f64 / 1e9, 3),
            f(a.hbm_bytes() as f64 / 1e9, 3),
        ]);
    }
    perf.series(Series { label: "k=21..77".into(), marker: 'o', points: perf_pts });
    bytes.series(Series { label: "k=21..77".into(), marker: 'o', points: byte_pts });
    println!("{}", perf.render());
    println!("{}", bytes.render());
    println!("{}", t.render());
}

/// Per-(k, device) architectural efficiencies.
fn arch_effs(m: &Matrix) -> BTreeMap<(usize, &'static str), f64> {
    m.profiles
        .iter()
        .map(|((k, dev), p)| {
            let spec = device_of(dev).spec();
            let rp = RooflinePoint::new(p.intops(), p.hbm_bytes(), p.seconds());
            ((*k, *dev), rp.fraction_of_roofline(spec).min(1.0))
        })
        .collect()
}

fn alg_effs(m: &Matrix) -> BTreeMap<(usize, &'static str), f64> {
    m.profiles
        .iter()
        .map(|((k, dev), p)| ((*k, *dev), algorithm_efficiency(p.intop_intensity(), *k)))
        .collect()
}

fn eff_table(title: &str, effs: &BTreeMap<(usize, &'static str), f64>) {
    let mut t = Table::new(title).header([
        "dataset k-mer size",
        "NVIDIA A100",
        "AMD MI250X",
        "Intel Max 1550",
        "P",
    ]);
    let mut all_p = Vec::new();
    for k in KS {
        let row: Vec<f64> = ["NVIDIA", "AMD", "INTEL"].iter().map(|d| effs[&(k, *d)]).collect();
        let p = performance_portability(&row);
        all_p.push(p);
        t.row([k.to_string(), pct(row[0]), pct(row[1]), pct(row[2]), pct(p)]);
    }
    println!("{}", t.render());
    let avg = all_p.iter().sum::<f64>() / all_p.len() as f64;
    println!("Average P = {}\n", pct(avg));
}

fn table5() {
    let mut t = Table::new("Table V — integer operations in the hash function")
        .header(["Dataset (k-mer size)", "21", "33", "55", "77"]);
    let b = locassm_core::MurmurOpBreakdown::for_len;
    for (name, func) in [
        ("Initialization", Box::new(move |k| b(k).initialization) as Box<dyn Fn(usize) -> u64>),
        ("Mix Loop (+ loop ctl)", Box::new(move |k| b(k).mix_loop + b(k).tail)),
        ("Cleanup", Box::new(move |k| b(k).cleanup)),
        ("INTOP1", Box::new(locassm_core::murmur_intops)),
    ] {
        let mut cells = vec![name.to_string()];
        for k in KS {
            cells.push(func(k).to_string());
        }
        t.row(cells);
    }
    println!("{}", t.render());
    println!("(paper totals: 215, 305, 457, 635 — reproduced exactly)\n");
}

fn table6() {
    let mut t = Table::new("Table VI — theoretical II calculations").header([
        "k-mer size",
        "INTOPs per loop cycle",
        "Bytes per loop cycle",
        "INTOP Intensity (II)",
    ]);
    for k in KS {
        let model = TheoreticalModel::for_k(k);
        t.row([
            k.to_string(),
            model.intops_per_cycle().to_string(),
            model.bytes_per_cycle().to_string(),
            f(model.ii(), 3),
        ]);
    }
    println!("{}", t.render());
}

fn fig9(m: &Matrix) {
    let arch = arch_effs(m);
    let alg = alg_effs(m);
    let mut plot = LogLogScatter::new(
        "Fig. 9 — potential speed-up plot (x: % theoretical II, y: % roofline)",
        "% theoretical II",
        "% roofline",
    );
    let mut t = Table::new("Fig. 9 — data").header([
        "device/k",
        "alg eff",
        "arch eff",
        "speedup via AI",
        "speedup via perf",
    ]);
    for (marker, dev) in [('N', "NVIDIA"), ('A', "AMD"), ('I', "INTEL")] {
        let mut pts = Vec::new();
        for k in KS {
            let sp = SpeedupPoint::new(alg[&(k, dev)].min(1.0), arch[&(k, dev)].min(1.0));
            pts.push((sp.algorithm_eff * 100.0, sp.architectural_eff * 100.0));
            t.row([
                format!("{dev} k={k}"),
                pct(sp.algorithm_eff),
                pct(sp.architectural_eff),
                format!("{:.1}x", sp.speedup_from_ai()),
                format!("{:.1}x", sp.speedup_from_performance()),
            ]);
        }
        plot.series(Series { label: dev.to_string(), marker, points: pts });
    }
    println!("{}", plot.render());
    println!("{}", t.render());
}

fn ablation(args: &Args) {
    let ds = paper_dataset(33, (0.1_f64).min(args.scale), args.seed);
    println!("## Ablation (k=33 dataset, {} contigs)\n", ds.jobs.len());

    // (a) Sub-group width sweep on the Max 1550 (§III-C: 16 chosen).
    let mut t = Table::new("Ablation A — sub-group width sweep (Max 1550, SYCL dialect)")
        .header(["width", "INTOPs", "HBM bytes", "lane util", "time (s)"]);
    for width in [8u32, 16, 32, 64] {
        let mut cfg = GpuConfig::for_device(DeviceId::Max1550);
        cfg.width = width;
        cfg.parallel = args.parallel;
        let p = run_local_assembly(&ds, &cfg).profile;
        t.row([
            width.to_string(),
            p.intops().to_string(),
            bytes_eng(p.hbm_bytes()),
            pct(p.total.lane_utilization()),
            f(p.seconds(), 6),
        ]);
    }
    println!("{}", t.render());

    // (b) Dialect cross-product on the A100 model.
    let mut t = Table::new("Ablation B — insertion dialect on the A100 model")
        .header(["dialect", "warp instr", "collectives+syncs", "time (s)"]);
    for dialect in
        [locassm_kernels::Dialect::Cuda, locassm_kernels::Dialect::Hip, locassm_kernels::Dialect::Sycl]
    {
        let mut cfg = GpuConfig::for_device(DeviceId::A100);
        cfg.dialect = dialect;
        cfg.parallel = args.parallel;
        let p = run_local_assembly(&ds, &cfg).profile;
        t.row([
            dialect.to_string(),
            p.total.warp_instructions.to_string(),
            (p.total.collective_instructions + p.total.sync_instructions).to_string(),
            f(p.seconds(), 6),
        ]);
    }
    println!("{}", t.render());

    // (c) Binning policy (Fig. 3's motivation: balanced batches).
    let mut t = Table::new("Ablation C — contig binning policy (A100 model)")
        .header(["policy", "batches", "max warp instr", "time (s)"]);
    for (name, policy) in [
        ("power-of-two", locassm_core::BinningPolicy::PowerOfTwo),
        ("fixed-256", locassm_core::BinningPolicy::FixedSize(256)),
        ("single", locassm_core::BinningPolicy::Single),
    ] {
        let mut cfg = GpuConfig::for_device(DeviceId::A100);
        cfg.binning = policy;
        cfg.parallel = args.parallel;
        let p = run_local_assembly(&ds, &cfg).profile;
        t.row([
            name.to_string(),
            p.batches.len().to_string(),
            p.total.max_warp_instructions.to_string(),
            f(p.seconds(), 6),
        ]);
    }
    println!("{}", t.render());
}

fn packed() {
    // §V-E's proposed locality optimization, quantified analytically:
    // 2-bit packed, inline hash-table keys (core::packed) vs the byte-
    // string keys the kernel ships with.
    let mut t = Table::new(
        "Packed k-mers: theoretical INTOP intensity (Table VI, revisited)",
    )
    .header([
        "k",
        "bytes/cycle (baseline)",
        "bytes/cycle (packed)",
        "II (baseline)",
        "II (packed)",
        "II gain",
    ]);
    for k in KS {
        let base = TheoreticalModel::for_k(k);
        let pk = TheoreticalModel::for_k_packed(k);
        t.row([
            k.to_string(),
            base.bytes_per_cycle().to_string(),
            pk.bytes_per_cycle().to_string(),
            f(base.ii(), 3),
            f(pk.ii(), 3),
            format!("{:.2}x", TheoreticalModel::packing_gain(k)),
        ]);
    }
    println!("{}", t.render());
    println!("(2-bit packing raises the algorithm's intensity ceiling 2.0-3.3x; on the");
    println!(" memory-bound devices of Fig. 6 that translates directly into the same");
    println!(" factor of attainable performance — the paper's 'more localized data");
    println!(" structure' headroom, made concrete)\n");
}

fn adept_compare(args: &Args) {
    // The paper's §I contrast, on one roofline: the DP alignment kernel
    // (ADEPT [5], [15]) vs the de Bruijn local assembly kernel, same
    // simulated devices, same counters.
    use adept::{run_alignment_batch, Pair, Scoring};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    let mut rng = StdRng::seed_from_u64(args.seed);
    let mut dna = |len: usize| -> Vec<u8> {
        (0..len).map(|_| locassm_core::dna::BASES[rng.random_range(0..4)]).collect()
    };
    // ADEPT-like workload: read-length queries against contig fragments.
    let pairs: Vec<Pair> = (0..((2000.0 * args.scale).max(64.0) as usize))
        .map(|_| Pair { query: dna(150), reference: dna(300) })
        .collect();
    let ds = paper_dataset(33, (0.05_f64).min(args.scale), args.seed);

    println!(
        "## Companion kernel comparison: Smith-Waterman (ADEPT-style) vs local assembly\n"
    );
    let mut t = Table::new("Same devices, same counters, two bioinformatics kernels").header([
        "device",
        "kernel",
        "II",
        "GINTOP/s",
        "% roofline",
        "lane util",
    ]);
    for dev in DeviceId::ALL {
        let spec = dev.spec();
        let sw = run_alignment_batch(&pairs, spec, &Scoring::default(), args.parallel);
        let sw_rp = RooflinePoint::new(sw.counters.intops(), sw.counters.mem.hbm_bytes(), sw.time.seconds);
        t.row([
            dev.to_string(),
            "SW align".to_string(),
            f(sw_rp.ii, 2),
            f(sw_rp.intops_per_sec / 1e9, 1),
            pct(sw_rp.fraction_of_roofline(spec).min(1.0)),
            pct(sw.counters.lane_utilization()),
        ]);
        let mut cfg = GpuConfig::for_device(dev);
        cfg.parallel = args.parallel;
        let la = run_local_assembly(&ds, &cfg).profile;
        let la_rp = RooflinePoint::new(la.intops(), la.hbm_bytes(), la.seconds());
        t.row([
            dev.to_string(),
            "local asm".to_string(),
            f(la_rp.ii, 2),
            f(la_rp.intops_per_sec / 1e9, 1),
            pct(la_rp.fraction_of_roofline(spec).min(1.0)),
            pct(la.total.lane_utilization()),
        ]);
    }
    println!("{}", t.render());
    println!(
        "(the DP kernel keeps lanes busy and achieves a higher roofline fraction; the\n          hash-table kernel pays predication and scattered-access penalties — §I's contrast)\n"
    );
}

fn divergence(args: &Args) {
    // The thread-predication profile behind §V-B: integer instructions
    // bucketed by active-lane quartile, per device and phase.
    let ds = paper_dataset(33, (0.1_f64).min(args.scale), args.seed);
    println!("## Divergence profile (k=33 dataset, {} contigs)\n", ds.jobs.len());
    let mut t = Table::new("Integer instructions by active-lane quartile").header([
        "device",
        "phase",
        "0-25%",
        "25-50%",
        "50-75%",
        "75-100%",
        "lane util",
    ]);
    for dev in DeviceId::ALL {
        let mut cfg = GpuConfig::for_device(dev);
        cfg.parallel = args.parallel;
        let p = run_local_assembly(&ds, &cfg).profile;
        for (name, agg) in [("construct", &p.phases.construct), ("walk", &p.phases.walk)] {
            let q = agg.divergence_profile();
            t.row([
                dev.to_string(),
                name.to_string(),
                pct(q[0]),
                pct(q[1]),
                pct(q[2]),
                pct(q[3]),
                pct(agg.lane_utilization()),
            ]);
        }
    }
    println!("{}", t.render());
    println!(
        "(the mer-walk is single-lane: its instructions sit entirely in the 0-25% quartile —\n          the predication cost the paper attributes the large-k behaviour to)\n"
    );
}

fn scaling(args: &Args) {
    // Multi-device distribution (the MetaHipMer per-node offload context):
    // rank sweep with per-policy makespan and imbalance.
    use locassm_kernels::{run_multi_gpu, Partition};
    let ds = paper_dataset(21, (0.05_f64).min(args.scale), args.seed);
    println!("## Multi-GPU scaling (k=21 dataset, {} contigs)\n", ds.jobs.len());
    let mut t = Table::new("Distributed local assembly across simulated A100 ranks").header([
        "ranks",
        "policy",
        "makespan (s)",
        "imbalance",
        "speedup",
    ]);
    let mut cfg = GpuConfig::for_device(DeviceId::A100);
    cfg.parallel = args.parallel;
    let single = run_local_assembly(&ds, &cfg).profile.seconds();
    for ranks in [1usize, 2, 4, 8] {
        for (name, policy) in [
            ("round-robin", Partition::RoundRobin),
            ("blocked", Partition::Blocked),
            ("work-balanced", Partition::WorkBalanced),
        ] {
            let r = run_multi_gpu(&ds, &cfg, ranks, policy);
            t.row([
                ranks.to_string(),
                name.to_string(),
                f(r.makespan_seconds(), 6),
                f(r.imbalance(), 3),
                format!("{:.2}x", single / r.makespan_seconds()),
            ]);
        }
    }
    println!("{}", t.render());
}

fn whatif(args: &Args) {
    // The paper's §V-E projection, executable: sweep the L2 size of each
    // device model and watch HBM traffic / estimated time respond. Run at
    // full occupancy (single batch) so the shared-L2 pressure matches
    // production batch sizes.
    let ds = paper_dataset(21, (0.1_f64).min(args.scale), args.seed);
    println!("## What-if: L2 capacity sweep (k=21 dataset, {} contigs)\n", ds.jobs.len());
    let mut t = Table::new("HBM traffic and time vs L2 capacity")
        .header(["device", "L2", "HBM bytes", "II", "time (s)"]);
    for dev in DeviceId::ALL {
        for mult in [0.25f64, 1.0, 4.0, 16.0] {
            let mut spec = dev.spec().clone();
            spec.l2_bytes = ((spec.l2_bytes as f64 * mult) as u64).max(1 << 20);
            let mut cfg = GpuConfig::for_device(dev).with_spec(spec.clone());
            cfg.binning = locassm_core::BinningPolicy::Single;
            cfg.parallel = args.parallel;
            let p = run_local_assembly(&ds, &cfg).profile;
            t.row([
                if mult == 1.0 { format!("{} (stock)", dev) } else { dev.to_string() },
                bytes_eng(spec.l2_bytes),
                bytes_eng(p.hbm_bytes()),
                f(p.intop_intensity(), 2),
                f(p.seconds(), 6),
            ]);
        }
    }
    println!("{}", t.render());
}

/// A traced run of the k=21 dataset on the A100 model: writes a Chrome
/// `trace_event` JSON timeline (load in chrome://tracing or Perfetto) and
/// a flat per-span CSV next to it, and prints the per-phase profile the
/// traces imply. See EXPERIMENTS.md § "Tracing a run".
fn trace_run(args: &Args, path: &std::path::Path) {
    // Per-warp traces are large; cap the dataset so the JSON stays
    // viewer-friendly (a few MB, not GB).
    let scale = args.scale.min(0.01);
    if scale < args.scale {
        eprintln!(
            "[repro] tracing caps the dataset at scale {scale} \
             (full-scale timelines would be GB-sized)"
        );
    }
    let ds = paper_dataset(21, scale, args.seed);
    eprintln!("[repro] traced run: k=21, {} contigs, A100 model…", ds.jobs.len());
    let mut cfg = GpuConfig::for_device(DeviceId::A100);
    cfg.parallel = args.parallel;
    cfg.trace = true;
    let run = run_local_assembly(&ds, &cfg);

    let json = perfmodel::chrome_trace(&run.traces);
    require_ok(
        std::fs::write(path, &json),
        &format!("write trace JSON {}", path.display()),
    );
    let csv_path = path.with_extension("phases.csv");
    require_ok(
        std::fs::write(&csv_path, perfmodel::phase_csv(&run.traces).render()),
        &format!("write phase CSV {}", csv_path.display()),
    );
    eprintln!(
        "[repro] {} warp traces -> {} (per-span CSV: {})",
        run.traces.len(),
        path.display(),
        csv_path.display()
    );

    let tp = locassm_kernels::TraceProfile::from_traces(&run.traces);
    let mut t = Table::new("Per-phase profile derived from the warp traces")
        .header(["phase", "spans", "warp instr", "INTOPs", "II", "lane util"]);
    for p in &tp.phases {
        t.row([
            p.name.clone(),
            p.spans.to_string(),
            p.warp_instructions.to_string(),
            p.intops.to_string(),
            f(p.intop_intensity(), 2),
            pct(p.lane_utilization()),
        ]);
    }
    println!("{}", t.render());
}

/// `--sanitize`: run the paper's kernels under the warp sanitizer — every
/// dialect on every dataset with all checks on (the `sanitizer_clean`
/// matrix) — then seed a deliberate lane race into a bare warp and show
/// the detector catching it. See EXPERIMENTS.md § "Sanitizing a run".
fn sanitize_run(args: &Args) {
    use simt::{LaneVec, Mask, SanitizerConfig, Warp};

    // (a) The clean matrix: three dialects × four datasets, all checks on.
    // The paper's kernels are race-free by construction (ordered by
    // __match_any_sync/__syncwarp, __all-lockstep, or sub-group barriers),
    // so every cell must report zero findings.
    let scale = args.scale.min(0.01);
    let mut t = Table::new("Warp sanitizer — three dialects x four datasets (all checks on)")
        .header(["k", "device", "dialect", "findings", "lints", "clean"]);
    for k in KS {
        let ds = paper_dataset(k, scale, args.seed);
        for dev in DeviceId::ALL {
            let mut cfg = GpuConfig::for_device(dev);
            cfg.parallel = args.parallel;
            cfg.sanitize = SanitizerConfig::all();
            let run = run_local_assembly(&ds, &cfg);
            t.row([
                k.to_string(),
                device_key(dev).to_string(),
                cfg.dialect.to_string(),
                run.san.findings.len().to_string(),
                run.san.lints.len().to_string(),
                if run.san.is_clean() { "yes" } else { "NO" }.to_string(),
            ]);
        }
    }
    println!("{}", t.render());

    // (b) Seeded defects on a bare warp: the three hazard classes the
    // simt-level checks exist for, each provoked deliberately.
    let mut t = Table::new("Seeded defects — what each check reports")
        .header(["seeded defect", "check", "hits"]);
    let mut demo = |name: &str, body: &dyn Fn(&mut Warp)| {
        let mut warp = Warp::new(32, memhier::HierarchyConfig::tiny());
        warp.enable_sanitizer(SanitizerConfig::all());
        body(&mut warp);
        let report = warp.take_san_report().expect("sanitizer was enabled");
        for f in &report.findings {
            t.row([name.to_string(), f.kind.check().to_string(), "1".to_string()]);
        }
        if report.findings.is_empty() {
            t.row([name.to_string(), "(none)".to_string(), "0".to_string()]);
        }
    };
    demo("two lanes store the same word, no sync", &|w| {
        let a = w.mem.alloc(4);
        let vals = LaneVec::from_fn(32, |l| l);
        w.store_u32(Mask(0b11), &LaneVec::splat(a), &vals);
    });
    demo("syncwarp under a divergent mask", &|w| {
        w.iop(Mask(0b11), 1);
        w.syncwarp(Mask(0b1111));
    });
    demo("shuffle reads an inactive source lane", &|w| {
        let vals = LaneVec::from_fn(32, |l| l);
        let _ = w.shfl_u32(Mask(0b11), &vals, 5);
    });
    println!("{}", t.render());
    println!(
        "(the clean matrix above is the tier-1 `sanitizer_clean` gate; the seeded\n \
         defects are the regression suite's detection fixtures — see tests/sanitizer.rs)\n"
    );
}

/// `--sched`: run every dialect in scheduled-execution mode and print the
/// analytic-vs-replayed timing comparison with the replay's occupancy and
/// latency-hiding counters. With `--sched-trace PATH.json`, also write the
/// A100 run's SM issue-port timeline as Chrome `trace_event` JSON (plus a
/// flat CSV next to it). See EXPERIMENTS.md § "Scheduled execution &
/// occupancy" and docs/TIMING.md for what each column means.
fn sched_run(args: &Args) {
    use locassm_bench::schedbench::sched_bench;

    // Timelines record one event per memory touch; cap the dataset so a
    // default full-scale invocation stays in memory-friendly territory.
    let scale = args.scale.min(0.02);
    if scale < args.scale {
        eprintln!(
            "[repro] scheduled mode caps the dataset at scale {scale} \
             (full-scale timelines would be GB-sized)"
        );
    }
    let r = sched_bench(21, scale, args.seed);
    println!(
        "## Scheduled execution — k={}, {} contigs (modeled, deterministic)\n",
        r.k, r.contigs
    );
    let mut t = Table::new("Analytic vs scheduled modeled time, with replay counters").header([
        "device",
        "analytic (s)",
        "scheduled (s)",
        "ratio",
        "SMs",
        "residency",
        "occupancy",
        "hidden",
    ]);
    for d in &r.dialects {
        t.row([
            format!("{} ({})", d.device, d.dialect),
            f(d.analytic_seconds, 6),
            f(d.scheduled_seconds, 6),
            format!("{:.2}x", d.time_ratio()),
            d.sched.sms_used.to_string(),
            d.sched.residency.to_string(),
            pct(d.sched.occupancy()),
            pct(d.sched.latency_hidden_fraction()),
        ]);
    }
    println!("{}", t.render());
    println!(
        "(ratio < 1: the replay hid more memory latency behind other warps than the\n \
         analytic queueing term assumed; `hidden` is the stall time overlapped away)\n"
    );

    if let Some(path) = &args.sched_trace {
        let ds = paper_dataset(21, scale, args.seed);
        let mut cfg = GpuConfig::for_device(DeviceId::A100);
        cfg.parallel = args.parallel;
        cfg.exec = simt::ExecMode::Scheduled;
        cfg.sched_tracks = true;
        let run = run_local_assembly(&ds, &cfg);
        require_ok(
            std::fs::write(path, perfmodel::sched_trace(&run.sched_tracks)),
            &format!("write SM-lane trace {}", path.display()),
        );
        let csv_path = path.with_extension("slices.csv");
        require_ok(
            std::fs::write(&csv_path, perfmodel::sched_csv(&run.sched_tracks).render()),
            &format!("write SM-slice CSV {}", csv_path.display()),
        );
        eprintln!(
            "[repro] {} SM slices -> {} (per-slice CSV: {})",
            run.sched_tracks.len(),
            path.display(),
            csv_path.display()
        );
    }
}

/// Dump the underlying per-run data as CSV files for external plotting.
fn write_csvs(dir: &std::path::Path, m: &Matrix) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;

    let mut runs = Csv::new([
        "k",
        "device",
        "dialect",
        "warp_width",
        "intops",
        "hbm_bytes",
        "intop_intensity",
        "gintops_per_sec",
        "seconds",
        "pct_roofline",
        "lane_utilization",
    ]);
    for ((k, dev), p) in &m.profiles {
        let spec = device_of(dev).spec();
        let rp = RooflinePoint::new(p.intops(), p.hbm_bytes(), p.seconds());
        runs.row([
            k.to_string(),
            dev.to_string(),
            p.dialect.to_string(),
            spec.warp_width.to_string(),
            p.intops().to_string(),
            p.hbm_bytes().to_string(),
            perfmodel::export::num(rp.ii),
            perfmodel::export::num(rp.intops_per_sec / 1e9),
            perfmodel::export::num(p.seconds()),
            perfmodel::export::num(rp.fraction_of_roofline(spec)),
            perfmodel::export::num(p.total.lane_utilization()),
        ]);
    }
    std::fs::write(dir.join("runs.csv"), runs.render())?;

    let mut datasets = Csv::new([
        "k",
        "contigs",
        "reads",
        "avg_read_len",
        "insertions",
        "avg_extn_len",
        "total_extns",
    ]);
    for (k, d) in &m.dataset_stats {
        let e = &m.ext_stats[k];
        datasets.row([
            k.to_string(),
            d.total_contigs.to_string(),
            d.total_reads.to_string(),
            perfmodel::export::num(d.avg_read_length),
            d.total_hash_insertions.to_string(),
            perfmodel::export::num(e.avg_extension_length),
            e.total_extensions.to_string(),
        ]);
    }
    std::fs::write(dir.join("datasets.csv"), datasets.render())?;

    let mut phases = Csv::new(["k", "device", "phase", "warp_instructions", "hbm_bytes"]);
    for ((k, dev), p) in &m.profiles {
        for (name, agg) in [("construct", &p.phases.construct), ("walk", &p.phases.walk)] {
            phases.row([
                k.to_string(),
                dev.to_string(),
                name.to_string(),
                agg.warp_instructions.to_string(),
                agg.mem.hbm_bytes().to_string(),
            ]);
        }
    }
    std::fs::write(dir.join("phases.csv"), phases.render())?;
    Ok(())
}

fn main() {
    let args = parse_args();
    let wants = |name: &str| args.artifacts.iter().any(|a| a == name || a == "all");

    let needs_matrix = ["table2", "table4", "table7", "fig5", "fig6", "fig7", "fig8", "fig9"]
        .iter()
        .any(|a| wants(a));
    let matrix = needs_matrix.then(|| build_matrix(&args));
    if let (Some(dir), Some(m)) = (&args.csv_dir, &matrix) {
        require_ok(write_csvs(dir, m), &format!("write CSV files to {}", dir.display()));
        eprintln!("[repro] CSV data written to {}", dir.display());
    }

    println!("# locassm repro — scale {}, seed {}\n", args.scale, args.seed);
    if let Some(path) = args.trace.clone() {
        trace_run(&args, &path);
    }
    if args.sanitize {
        sanitize_run(&args);
    }
    if args.sched {
        sched_run(&args);
    }
    if wants("table1") {
        table1();
    }
    if wants("table2") {
        table2(matrix.as_ref().unwrap());
    }
    if wants("table3") {
        table3();
    }
    if wants("fig5") {
        fig5(matrix.as_ref().unwrap());
    }
    if wants("fig6") {
        fig6(matrix.as_ref().unwrap());
    }
    if wants("fig7") {
        correlation(matrix.as_ref().unwrap(), DeviceId::Mi250x, "Fig. 7");
    }
    if wants("fig8") {
        correlation(matrix.as_ref().unwrap(), DeviceId::Max1550, "Fig. 8");
    }
    if wants("table4") {
        eff_table(
            "Table IV — architectural efficiency (fraction of the INTOP roofline)",
            &arch_effs(matrix.as_ref().unwrap()),
        );
    }
    if wants("table5") {
        table5();
    }
    if wants("table6") {
        table6();
    }
    if wants("table7") {
        eff_table(
            "Table VII — algorithm efficiency (fraction of theoretical II)",
            &alg_effs(matrix.as_ref().unwrap()),
        );
    }
    if wants("fig9") {
        fig9(matrix.as_ref().unwrap());
    }
    if wants("ablation") {
        ablation(&args);
    }
    if wants("whatif") {
        whatif(&args);
    }
    if wants("divergence") {
        divergence(&args);
    }
    if wants("scaling") {
        scaling(&args);
    }
    if wants("adept") {
        adept_compare(&args);
    }
    if wants("packed") {
        packed();
    }
}

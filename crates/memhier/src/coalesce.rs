//! Warp-level memory coalescing.
//!
//! When the lanes of a warp issue a load/store together, the memory
//! subsystem merges their addresses into the minimal set of 32-byte sector
//! transactions. For the de Bruijn hash-table workload this is the
//! difference between the (coalesced) strided k-mer reads during table
//! construction and the (scattered) probe accesses after hashing.

use crate::config::SECTOR_BYTES;
use crate::Addr;

/// The unique sectors touched by one warp-wide access.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoalesceResult {
    /// Sector-granular addresses (`addr / SECTOR_BYTES`), sorted, deduplicated.
    pub sectors: Vec<u64>,
    /// Number of lane accesses that were merged (popcount of the mask).
    pub lane_accesses: u32,
}

impl CoalesceResult {
    /// Number of memory transactions this access turns into.
    pub fn transactions(&self) -> u64 {
        self.sectors.len() as u64
    }

    /// Bytes moved if every transaction goes to the next level.
    pub fn bytes(&self) -> u64 {
        self.transactions() * SECTOR_BYTES
    }
}

/// Coalesce per-lane `(addr, len)` accesses into unique sectors.
///
/// `accesses` yields one `(addr, len_bytes)` pair per *active* lane. A lane
/// access spanning a sector boundary contributes every sector it overlaps,
/// exactly as real hardware splits unaligned accesses.
pub fn coalesce_sectors<I>(accesses: I) -> CoalesceResult
where
    I: IntoIterator<Item = (Addr, u32)>,
{
    let mut out = CoalesceResult::default();
    coalesce_sectors_into(&mut out, accesses);
    out
}

/// [`coalesce_sectors`] into a caller-owned result, reusing its buffer.
///
/// This is the simulator's hot path: a warp issues one coalesced access
/// per memory instruction, so an allocating coalescer pays one heap
/// allocation per simulated load/store. Reusing a scratch
/// [`CoalesceResult`] (e.g. one owned by the warp) reaches a steady state
/// after the first few accesses and allocates nothing thereafter.
pub fn coalesce_sectors_into<I>(out: &mut CoalesceResult, accesses: I)
where
    I: IntoIterator<Item = (Addr, u32)>,
{
    out.sectors.clear();
    let mut lanes = 0u32;
    // Track sortedness while pushing: per-lane sector ranges are ascending,
    // and most warp accesses arrive in ascending lane-address order (strided
    // k-mer reads, scalar walk loads), so the common case skips the sort
    // entirely. The final sorted+deduped vector is identical either way.
    let mut sorted = true;
    for (addr, len) in accesses {
        lanes += 1;
        if len == 0 {
            continue;
        }
        let first = addr / SECTOR_BYTES;
        let last = (addr + len as u64 - 1) / SECTOR_BYTES;
        if sorted && out.sectors.last().is_some_and(|&prev| prev > first) {
            sorted = false;
        }
        for s in first..=last {
            out.sectors.push(s);
        }
    }
    if !sorted {
        out.sectors.sort_unstable();
    }
    out.sectors.dedup();
    out.lane_accesses = lanes;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn into_variant_reuses_the_buffer_and_matches() {
        let mut scratch = CoalesceResult::default();
        coalesce_sectors_into(&mut scratch, (0..32u64).map(|l| (l * 4, 4u32)));
        assert_eq!(scratch, coalesce_sectors((0..32u64).map(|l| (l * 4, 4u32))));
        let cap = scratch.sectors.capacity();
        let ptr = scratch.sectors.as_ptr();
        // A smaller access must reuse the grown buffer in place.
        coalesce_sectors_into(&mut scratch, [(0u64, 4u32)]);
        assert_eq!(scratch, coalesce_sectors([(0u64, 4u32)]));
        assert_eq!(scratch.sectors.capacity(), cap);
        assert_eq!(scratch.sectors.as_ptr(), ptr);
    }

    #[test]
    fn perfectly_coalesced_warp_is_few_transactions() {
        // 32 lanes × 4-byte accesses, consecutive: 128 bytes = 4 sectors.
        let r = coalesce_sectors((0..32u64).map(|l| (l * 4, 4u32)));
        assert_eq!(r.transactions(), 4);
        assert_eq!(r.lane_accesses, 32);
        assert_eq!(r.bytes(), 128);
    }

    #[test]
    fn fully_scattered_warp_is_one_transaction_per_lane() {
        let r = coalesce_sectors((0..32u64).map(|l| (l * 4096, 4u32)));
        assert_eq!(r.transactions(), 32);
    }

    #[test]
    fn duplicate_addresses_merge() {
        let r = coalesce_sectors([(64, 4u32), (64, 4u32), (68, 4u32)]);
        assert_eq!(r.transactions(), 1);
        assert_eq!(r.lane_accesses, 3);
    }

    #[test]
    fn access_spanning_sector_boundary_touches_both() {
        let r = coalesce_sectors([(30, 4u32)]); // bytes 30..34 cross sector 0→1
        assert_eq!(r.sectors, vec![0, 1]);
    }

    #[test]
    fn zero_length_access_counts_lane_but_no_sector() {
        let r = coalesce_sectors([(100, 0u32)]);
        assert_eq!(r.transactions(), 0);
        assert_eq!(r.lane_accesses, 1);
    }

    #[test]
    fn empty_mask_is_empty() {
        let r = coalesce_sectors(std::iter::empty());
        assert_eq!(r, CoalesceResult::default());
    }

    #[test]
    fn large_single_lane_block_counts_all_sectors() {
        // One lane reading 100 bytes from offset 10: sectors 0..=3.
        let r = coalesce_sectors([(10, 100u32)]);
        assert_eq!(r.sectors, vec![0, 1, 2, 3]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Transactions never exceed the total number of sectors the lanes
        /// touch individually, and never undershoot the unique sector count.
        #[test]
        fn transaction_bounds(accs in proptest::collection::vec((0u64..1 << 20, 1u32..64), 0..64)) {
            let r = coalesce_sectors(accs.iter().copied());
            let mut indiv: Vec<u64> = accs
                .iter()
                .flat_map(|&(a, l)| (a / SECTOR_BYTES)..=((a + l as u64 - 1) / SECTOR_BYTES))
                .collect();
            let total: usize = indiv.len();
            indiv.sort_unstable();
            indiv.dedup();
            prop_assert_eq!(r.sectors.len(), indiv.len());
            prop_assert!(r.sectors.len() <= total);
        }

        /// Result is sorted and deduplicated.
        #[test]
        fn sorted_unique(accs in proptest::collection::vec((0u64..1 << 16, 1u32..16), 0..64)) {
            let r = coalesce_sectors(accs.iter().copied());
            let mut sorted = r.sectors.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(r.sectors, sorted);
        }

        /// Coalescing is invariant under permutation of lanes.
        #[test]
        fn permutation_invariant(mut accs in proptest::collection::vec((0u64..1 << 16, 1u32..16), 1..32)) {
            let a = coalesce_sectors(accs.iter().copied());
            accs.reverse();
            let b = coalesce_sectors(accs.iter().copied());
            prop_assert_eq!(a.sectors, b.sectors);
        }
    }
}

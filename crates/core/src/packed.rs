//! 2-bit packed k-mers — the paper's proposed locality optimization.
//!
//! §V-E closes with "larger potential gains by using … a data structure
//! with more localized memory access pattern". The obvious candidate is
//! 2-bit base packing: a 77-mer shrinks from 77 bytes to 20, key
//! comparisons become 1–3 word compares instead of a byte loop, and the
//! key can live *inline* in the hash-table entry instead of behind a
//! pointer into the reads buffer (one less dependent load per probe).
//! [`PackedKmer`] implements the representation; the analytic payoff is
//! quantified by `perfmodel::theoretical::TheoreticalModel::packed` and
//! printed by `repro packed`.

use crate::dna::{base_index, index_base};
use serde::{Deserialize, Serialize};

/// Maximum k supported by the packed representation (3 × 32 bases).
pub const MAX_PACKED_K: usize = 96;

/// A k-mer packed 2 bits per base (A=0, C=1, G=2, T=3), LSB-first within
/// each word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PackedKmer {
    words: [u64; 3],
    k: u8,
}

impl PackedKmer {
    /// Pack an ASCII k-mer. Panics on non-ACGT input or k > 96.
    pub fn pack(kmer: &[u8]) -> PackedKmer {
        assert!(kmer.len() <= MAX_PACKED_K, "k = {} exceeds {MAX_PACKED_K}", kmer.len());
        let mut words = [0u64; 3];
        for (i, &b) in kmer.iter().enumerate() {
            let code = base_index(b) as u64;
            words[i / 32] |= code << (2 * (i % 32));
        }
        PackedKmer { words, k: kmer.len() as u8 }
    }

    /// Unpack back to ASCII.
    pub fn unpack(&self) -> Vec<u8> {
        (0..self.k as usize)
            .map(|i| {
                let code = (self.words[i / 32] >> (2 * (i % 32))) & 0b11;
                index_base(code as usize)
            })
            .collect()
    }

    pub fn k(&self) -> usize {
        self.k as usize
    }

    /// The packed words (for hashing / device-memory storage).
    pub fn words(&self) -> [u64; 3] {
        self.words
    }

    /// Bytes needed to store this k-mer packed: ⌈k/4⌉.
    pub fn packed_bytes(&self) -> usize {
        (self.k as usize).div_ceil(4)
    }

    /// Words that actually carry bases: ⌈k/32⌉.
    pub fn active_words(&self) -> usize {
        (self.k as usize).div_ceil(32)
    }

    /// Shift one base off the front and append `b` (the walk's rolling
    /// window, without re-packing).
    pub fn roll(&self, b: u8) -> PackedKmer {
        let code = base_index(b) as u64;
        let k = self.k as usize;
        let mut w = self.words;
        // Shift the whole 192-bit register right by 2 (toward LSB).
        w[0] = (w[0] >> 2) | (w[1] << 62);
        w[1] = (w[1] >> 2) | (w[2] << 62);
        w[2] >>= 2;
        // Place the new base at position k−1.
        let i = k - 1;
        w[i / 32] &= !(0b11u64 << (2 * (i % 32)));
        w[i / 32] |= code << (2 * (i % 32));
        // Mask stray high bits beyond k (keeps Eq/Hash canonical).
        let mut out = PackedKmer { words: w, k: self.k };
        out.canonicalize();
        out
    }

    fn canonicalize(&mut self) {
        let k = self.k as usize;
        for wi in 0..3 {
            let lo = wi * 32;
            if k <= lo {
                self.words[wi] = 0;
            } else if k < lo + 32 {
                let keep = 2 * (k - lo);
                self.words[wi] &= (1u64 << keep) - 1;
            }
        }
    }
}

/// Bytes a packed key occupies in a hash-table entry (⌈k/4⌉, padded to 8).
pub fn packed_key_bytes(k: usize) -> usize {
    k.div_ceil(4).div_ceil(8) * 8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        for kmer in [&b"ACGT"[..], b"A", b"TTTTTTTTTTTTTTTTTTTTT", b"ACGTACGTACGTACGTACGTACGTACGTACGTACG"] {
            let p = PackedKmer::pack(kmer);
            assert_eq!(p.unpack(), kmer);
            assert_eq!(p.k(), kmer.len());
        }
    }

    #[test]
    fn equality_is_content_based() {
        assert_eq!(PackedKmer::pack(b"ACGTA"), PackedKmer::pack(b"ACGTA"));
        assert_ne!(PackedKmer::pack(b"ACGTA"), PackedKmer::pack(b"ACGTC"));
        assert_ne!(PackedKmer::pack(b"ACGT"), PackedKmer::pack(b"ACGTA"));
    }

    #[test]
    fn roll_matches_repack() {
        let mut window = b"ACGTACGTACGTACGTACGTA".to_vec(); // k = 21
        let mut p = PackedKmer::pack(&window);
        for &b in b"GGTTCCAAGTACGT" {
            window.rotate_left(1);
            *window.last_mut().unwrap() = b;
            p = p.roll(b);
            assert_eq!(p, PackedKmer::pack(&window), "after appending {}", b as char);
        }
    }

    #[test]
    fn roll_across_word_boundaries() {
        // k = 77 spans all three words.
        let mut window: Vec<u8> = (0..77).map(|i| b"ACGT"[i % 4]).collect();
        let mut p = PackedKmer::pack(&window);
        for &b in b"TGCA" {
            window.rotate_left(1);
            *window.last_mut().unwrap() = b;
            p = p.roll(b);
            assert_eq!(p.unpack(), window);
        }
    }

    #[test]
    fn size_accounting() {
        assert_eq!(PackedKmer::pack(&[b'A'; 21]).active_words(), 1);
        assert_eq!(PackedKmer::pack(&[b'A'; 33]).active_words(), 2);
        assert_eq!(PackedKmer::pack(&[b'A'; 77]).active_words(), 3);
        // Entry key footprints: 21→8B, 33→16B, 55→16B, 77→24B.
        assert_eq!(packed_key_bytes(21), 8);
        assert_eq!(packed_key_bytes(33), 16);
        assert_eq!(packed_key_bytes(55), 16);
        assert_eq!(packed_key_bytes(77), 24);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_k_rejected() {
        PackedKmer::pack(&[b'A'; 97]);
    }

    #[test]
    #[should_panic(expected = "invalid nucleotide")]
    fn bad_base_rejected() {
        PackedKmer::pack(b"ACGN");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn dna(max: usize) -> impl Strategy<Value = Vec<u8>> {
        proptest::collection::vec(
            proptest::sample::select(crate::dna::BASES.to_vec()),
            1..=max,
        )
    }

    proptest! {
        #[test]
        fn roundtrip(kmer in dna(96)) {
            prop_assert_eq!(PackedKmer::pack(&kmer).unpack(), kmer);
        }

        /// Rolling a window is always equivalent to re-packing it.
        #[test]
        fn roll_equivalence(seq in dna(96), ext in dna(16)) {
            let k = seq.len();
            let mut window = seq.clone();
            let mut p = PackedKmer::pack(&window);
            for &b in &ext {
                window.rotate_left(1);
                window[k - 1] = b;
                p = p.roll(b);
                prop_assert_eq!(p, PackedKmer::pack(&window));
            }
        }

        /// Distinct k-mers pack distinctly (injectivity).
        #[test]
        fn injective(a in dna(60), b in dna(60)) {
            if a != b {
                prop_assert_ne!(PackedKmer::pack(&a), PackedKmer::pack(&b));
            }
        }
    }
}

//! `loc_ht` — the per-contig open-addressing hash table (CPU reference).
//!
//! Mirrors the GPU kernel's data structure (paper Fig. 1c and Appendix A):
//! a fixed-capacity array of entries, keyed by k-mer, probed linearly from
//! `MurmurHashAligned2(key) % capacity`, storing quality-stratified
//! extension votes. The capacity is reserved up-front from the host-side
//! size estimation (Fig. 3); running out of slots is the same "*hashtable
//! full*" condition the CUDA code prints.

use crate::murmur::{murmur_hash_aligned2, DEFAULT_SEED};

/// Extension vote counters of one k-mer entry (the `loc_ht` value struct:
/// `hi_q_exts[4]`, `low_q_exts[4]`, `ext`, `count`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HtValue {
    /// High-quality votes per extension base (A, C, G, T).
    pub hi_q: [u32; 4],
    /// Low-quality votes per extension base.
    pub low_q: [u32; 4],
    /// Occurrences of the k-mer (with or without an extension vote).
    pub count: u32,
}

impl HtValue {
    /// Record one occurrence, optionally voting for an extension base.
    pub fn record(&mut self, vote: Option<(usize, bool)>) {
        self.count += 1;
        if let Some((base, hi)) = vote {
            if hi {
                self.hi_q[base] += 1;
            } else {
                self.low_q[base] += 1;
            }
        }
    }
}

#[derive(Debug, Clone)]
struct Slot {
    key: Box<[u8]>,
    val: HtValue,
}

/// Fixed-capacity, linearly-probed k-mer hash table.
#[derive(Debug, Clone)]
pub struct CpuHashTable {
    slots: Vec<Option<Slot>>,
    len: usize,
    probes: u64,
}

/// The table ran out of slots (the kernel's "*hashtable full*").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableFull;

impl CpuHashTable {
    /// A table with `capacity` slots (from [`crate::estimate_slots`]).
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "hash table capacity must be non-zero");
        CpuHashTable { slots: vec![None; capacity], len: 0, probes: 0 }
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of distinct k-mers stored.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current load factor.
    pub fn load_factor(&self) -> f64 {
        self.len as f64 / self.slots.len() as f64
    }

    /// Total linear-probe steps performed by insertions (lookups take
    /// `&self` and are not counted) — probe-chain statistics for load-factor
    /// sanity checks.
    pub fn probe_count(&self) -> u64 {
        self.probes
    }

    #[inline]
    fn start_index(&self, key: &[u8]) -> usize {
        (murmur_hash_aligned2(key, DEFAULT_SEED) as usize) % self.slots.len()
    }

    /// Insert an occurrence of `key` with an optional extension vote,
    /// creating the entry if needed (Algorithm 1's `k-mer_ht.insert(k)`).
    pub fn insert(&mut self, key: &[u8], vote: Option<(usize, bool)>) -> Result<(), TableFull> {
        let cap = self.slots.len();
        let mut idx = self.start_index(key);
        for _ in 0..cap {
            self.probes += 1;
            match &mut self.slots[idx] {
                Some(s) if &*s.key == key => {
                    s.val.record(vote);
                    return Ok(());
                }
                Some(_) => idx = (idx + 1) % cap,
                empty @ None => {
                    let mut val = HtValue::default();
                    val.record(vote);
                    *empty = Some(Slot { key: key.into(), val });
                    self.len += 1;
                    return Ok(());
                }
            }
        }
        Err(TableFull)
    }

    /// Look up a k-mer (Algorithm 2's `k-mer_ht.lookup(k-mer)`).
    pub fn lookup(&self, key: &[u8]) -> Option<&HtValue> {
        let cap = self.slots.len();
        let mut idx = self.start_index(key);
        for _ in 0..cap {
            match &self.slots[idx] {
                Some(s) if &*s.key == key => return Some(&s.val),
                Some(_) => idx = (idx + 1) % cap,
                None => return None,
            }
        }
        None
    }

    /// Iterate stored `(key, value)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], &HtValue)> {
        self.slots.iter().filter_map(|s| s.as_ref().map(|s| (&*s.key, &s.val)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_roundtrip() {
        let mut ht = CpuHashTable::with_capacity(64);
        ht.insert(b"ACGT", Some((2, true))).unwrap();
        ht.insert(b"ACGT", Some((2, false))).unwrap();
        ht.insert(b"ACGT", None).unwrap();
        let v = ht.lookup(b"ACGT").unwrap();
        assert_eq!(v.count, 3);
        assert_eq!(v.hi_q, [0, 0, 1, 0]);
        assert_eq!(v.low_q, [0, 0, 1, 0]);
        assert_eq!(ht.len(), 1);
        assert!(ht.lookup(b"TTTT").is_none());
    }

    #[test]
    fn distinct_keys_get_distinct_entries() {
        let mut ht = CpuHashTable::with_capacity(64);
        ht.insert(b"AAAA", Some((0, true))).unwrap();
        ht.insert(b"CCCC", Some((1, true))).unwrap();
        assert_eq!(ht.len(), 2);
        assert_eq!(ht.lookup(b"AAAA").unwrap().hi_q[0], 1);
        assert_eq!(ht.lookup(b"CCCC").unwrap().hi_q[1], 1);
    }

    #[test]
    fn collisions_resolve_by_linear_probing() {
        // Capacity 2 forces collisions between any 2 distinct keys.
        let mut ht = CpuHashTable::with_capacity(2);
        ht.insert(b"AAAA", None).unwrap();
        ht.insert(b"CCCC", None).unwrap();
        assert_eq!(ht.len(), 2);
        assert!(ht.lookup(b"AAAA").is_some());
        assert!(ht.lookup(b"CCCC").is_some());
        assert_eq!(ht.load_factor(), 1.0);
    }

    #[test]
    fn full_table_errors() {
        let mut ht = CpuHashTable::with_capacity(2);
        ht.insert(b"AAAA", None).unwrap();
        ht.insert(b"CCCC", None).unwrap();
        assert_eq!(ht.insert(b"GGGG", None), Err(TableFull));
        // Existing keys still updatable when full.
        assert!(ht.insert(b"AAAA", None).is_ok());
        assert_eq!(ht.lookup(b"AAAA").unwrap().count, 2);
    }

    #[test]
    fn iter_sees_everything() {
        let mut ht = CpuHashTable::with_capacity(16);
        for key in [b"AAAA", b"CCCC", b"GGGG"] {
            ht.insert(key, None).unwrap();
        }
        let mut keys: Vec<&[u8]> = ht.iter().map(|(k, _)| k).collect();
        keys.sort();
        assert_eq!(keys, vec![&b"AAAA"[..], b"CCCC", b"GGGG"]);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        CpuHashTable::with_capacity(0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    type Ops = Vec<(Vec<u8>, Option<(usize, bool)>)>;

    fn kmers() -> impl Strategy<Value = Ops> {
        let kmer = proptest::collection::vec(
            proptest::sample::select(crate::dna::BASES.to_vec()),
            5..=5,
        );
        let vote = proptest::option::of((0usize..4, any::<bool>()));
        proptest::collection::vec((kmer, vote), 0..200)
    }

    proptest! {
        /// The linearly-probed table behaves exactly like a model HashMap.
        #[test]
        fn behaves_like_model(ops in kmers()) {
            let mut ht = CpuHashTable::with_capacity(512);
            let mut model: HashMap<Vec<u8>, HtValue> = HashMap::new();
            for (key, vote) in &ops {
                ht.insert(key, *vote).unwrap();
                model.entry(key.clone()).or_default().record(*vote);
            }
            prop_assert_eq!(ht.len(), model.len());
            for (key, expect) in &model {
                prop_assert_eq!(ht.lookup(key), Some(expect));
            }
        }

        /// High load factors still resolve correctly.
        #[test]
        fn dense_table_correct(ops in kmers()) {
            let distinct: std::collections::HashSet<_> =
                ops.iter().map(|(k, _)| k.clone()).collect();
            if distinct.is_empty() { return Ok(()); }
            let mut ht = CpuHashTable::with_capacity(distinct.len());
            for (key, vote) in &ops {
                ht.insert(key, *vote).unwrap();
            }
            for key in &distinct {
                prop_assert!(ht.lookup(key).is_some());
            }
        }
    }
}

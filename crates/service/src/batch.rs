//! Batch sizing: how many queued requests fit one launch.
//!
//! The admission scheduler packs queued requests into warp batches sized
//! from the kernel layer's own memory model
//! ([`locassm_kernels::layout::stage_footprint`] summed over the retry
//! schedule by `arena_footprint`): a request's cost is the arena bytes
//! its right- and left-side kernels would stage, and a batch closes when
//! the next request would push the packed total past the byte budget
//! (by default the device's L2 — the same capacity the launch engine's
//! timing model treats as the shared cache the resident warps split).
//! Packing is therefore device-aware without duplicating any sizing
//! logic: the service asks the exact function the launch path uses.

use locassm_core::{ContigJob, Read};
use locassm_kernels::layout::arena_footprint;
use locassm_kernels::GpuConfig;

/// Limits on one packed batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Hard cap on requests per batch (one request may stage up to two
    /// kernel jobs: right and left side).
    pub max_jobs: usize,
    /// Byte budget for the batch's summed arena footprints. The first
    /// request of a batch is always admitted even if it exceeds the
    /// budget alone — an oversized request must still be runnable, just
    /// never co-batched.
    pub byte_budget: u64,
}

impl BatchPolicy {
    /// A policy with explicit limits.
    pub fn new(max_jobs: usize, byte_budget: u64) -> Self {
        BatchPolicy { max_jobs: max_jobs.max(1), byte_budget }
    }

    /// Derive the policy from the GPU configuration the service runs:
    /// up to 64 requests per batch, byte budget = the device's L2 size
    /// (the capacity the timing model divides among resident warps).
    pub fn for_gpu(gpu: &GpuConfig) -> Self {
        BatchPolicy { max_jobs: 64, byte_budget: gpu.spec().l2_bytes }
    }
}

/// The arena bytes one request would stage across both extension sides,
/// summed over every k in the retry schedule — the packing cost used
/// against [`BatchPolicy::byte_budget`].
///
/// Sides the launch engine would skip (no reads) cost nothing; the left
/// side walks the reverse complement, whose lengths match the forward
/// reads, so the forward footprint is exact for both.
pub fn request_footprint(job: &ContigJob, schedule: &[usize], gpu: &GpuConfig) -> u64 {
    let side = |reads: &[Read]| -> u64 {
        if reads.is_empty() {
            return 0;
        }
        arena_footprint(
            job.contig.len(),
            reads,
            schedule,
            gpu.walk,
            gpu.slot_reserve.max(1),
            gpu.layout,
            gpu.resize,
        )
    };
    side(&job.right_reads) + side(&job.left_reads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_specs::DeviceId;
    use locassm_kernels::GpuConfig;

    fn cfg() -> GpuConfig {
        GpuConfig::for_device(DeviceId::A100)
    }

    fn job(n_right: usize, n_left: usize) -> ContigJob {
        let read = Read::with_uniform_qual(b"ACGTACGTACGTACGTACGT", b'I');
        ContigJob::new(
            0,
            b"ACGTACGTACGTACGT".to_vec(),
            vec![read.clone(); n_right],
            vec![read; n_left],
        )
    }

    #[test]
    fn footprint_counts_only_sides_with_reads() {
        let cfg = cfg();
        let sched = vec![13];
        let both = request_footprint(&job(2, 2), &sched, &cfg);
        let right_only = request_footprint(&job(2, 0), &sched, &cfg);
        let none = request_footprint(&job(0, 0), &sched, &cfg);
        assert_eq!(both, 2 * right_only, "symmetric sides cost the same");
        assert_eq!(none, 0, "a read-free request stages nothing");
        assert!(right_only > 0);
    }

    #[test]
    fn footprint_grows_with_the_retry_schedule() {
        let cfg = cfg();
        let one_k = request_footprint(&job(2, 2), &[13], &cfg);
        let ladder = request_footprint(&job(2, 2), &[13, 11], &cfg);
        assert!(ladder > one_k, "each schedule rung adds its stage bytes");
    }

    #[test]
    fn policy_from_gpu_uses_the_l2_budget() {
        let cfg = cfg();
        let p = BatchPolicy::for_gpu(&cfg);
        assert_eq!(p.byte_budget, cfg.spec().l2_bytes);
        assert!(p.max_jobs >= 1);
        assert_eq!(BatchPolicy::new(0, 7).max_jobs, 1, "cap floors at one");
    }
}

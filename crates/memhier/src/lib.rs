//! # memhier — GPU memory-hierarchy simulator
//!
//! Models the part of a GPU memory subsystem that the paper's analysis
//! depends on: a two-level cache hierarchy (L1 per compute unit, a shared L2
//! slice) in front of HBM, with **sectored** cache lines and 32-byte HBM
//! transactions, plus a warp-level access **coalescer**.
//!
//! The simulator is a *traffic* model, not a timing model: it answers "how
//! many bytes moved between each pair of levels for this access stream",
//! which is exactly the quantity the paper extracts from `ncu`
//! (`dram__bytes.sum`), `rocprof` (`TCC_EA_*` request counts × 32/64 B) and
//! Intel Advisor. Timing is layered on top by `gpu-specs` — each access
//! additionally reports the deepest [`MemLevel`] it reached, the latency
//! class the scheduled-execution mode (`simt::sched`) converts into a
//! completion time.
//!
//! ## Structure
//!
//! * [`config`] — cache and hierarchy configuration,
//! * [`cache`] — one sectored, set-associative, LRU cache level,
//! * [`coalesce`] — warp access → unique-sector coalescing,
//! * [`hierarchy`] — the L1 → L2 → HBM stack with per-level counters,
//! * [`stats`] — counter containers that merge across warps.

pub mod cache;
pub mod coalesce;
pub mod config;
pub mod hierarchy;
pub mod mrc;
pub mod stats;

pub use cache::Cache;
pub use coalesce::{coalesce_sectors, coalesce_sectors_into, CoalesceResult};
pub use config::{CacheConfig, HierarchyConfig};
pub use hierarchy::{AccessKind, MemHierarchy, MemLevel};
pub use mrc::SectorTrace;
pub use stats::{LevelStats, MemStats};

/// Address within a simulated (per-warp) global-memory arena.
pub type Addr = u64;

//! Tenant and request identities for the multi-tenant service front-end.
//!
//! The assembly-as-a-service layer (`locassm-service`) accepts
//! contig-extension requests from many concurrent clients. Everything it
//! does — admission, fair-share scheduling, fault injection, replay —
//! keys off two small identity types that belong with the algorithmic
//! core, not the service: a [`TenantId`] naming the client, and a
//! [`RequestId`] naming one request *deterministically* (tenant plus a
//! per-tenant sequence number, packable into a single `u64`).
//!
//! Determinism is the whole design: a request's id is a pure function of
//! who submitted it and how many requests that tenant submitted before
//! it. No clocks, no randomness — so a recorded workload replays with
//! identical ids, and a fault plan seeded against a request uid keeps
//! naming the same request across re-enqueues and re-runs.

use std::fmt;

/// A service tenant (client) identity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u32);

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant-{}", self.0)
    }
}

/// A deterministic request identity: the submitting tenant plus that
/// tenant's 0-based submission sequence number.
///
/// The pair packs losslessly into a `u64` ([`RequestId::uid`]): tenant in
/// the high 32 bits, sequence in the low 32. The packed form is what the
/// fault-injection layer targets (`simt::FaultPlan` victim ids are
/// `u64`s), so "inject a fault into tenant 3's fifth request" is
/// expressible without knowing which batch slot that request will occupy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId {
    /// The submitting tenant.
    pub tenant: TenantId,
    /// 0-based submission sequence number within the tenant.
    pub seq: u32,
}

impl RequestId {
    /// Construct from tenant and per-tenant sequence number.
    pub fn new(tenant: TenantId, seq: u32) -> Self {
        RequestId { tenant, seq }
    }

    /// The packed `u64` form: tenant in the high 32 bits, sequence in the
    /// low 32. Strictly monotone in `(tenant, seq)` order, so sorting by
    /// uid is sorting by submission identity.
    pub fn uid(&self) -> u64 {
        ((self.tenant.0 as u64) << 32) | self.seq as u64
    }

    /// Inverse of [`RequestId::uid`].
    pub fn from_uid(uid: u64) -> Self {
        RequestId { tenant: TenantId((uid >> 32) as u32), seq: uid as u32 }
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/req-{}", self.tenant, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uid_round_trips_and_orders() {
        for (t, s) in [(0u32, 0u32), (1, 0), (0, 1), (7, 42), (u32::MAX, u32::MAX)] {
            let id = RequestId::new(TenantId(t), s);
            assert_eq!(RequestId::from_uid(id.uid()), id);
        }
        // uid order == (tenant, seq) lexicographic order.
        let a = RequestId::new(TenantId(1), u32::MAX);
        let b = RequestId::new(TenantId(2), 0);
        assert!(a.uid() < b.uid());
        assert!(a < b);
    }

    #[test]
    fn display_is_stable() {
        let id = RequestId::new(TenantId(3), 5);
        assert_eq!(id.to_string(), "tenant-3/req-5");
        assert_eq!(TenantId(3).to_string(), "tenant-3");
    }
}

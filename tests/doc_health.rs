//! CI-style documentation health check.
//!
//! `crates/simt` opts into `#![warn(missing_docs)]` and the crates
//! cross-link their rustdoc; this test keeps that from rotting by
//! rebuilding the workspace docs with warnings denied as part of the
//! ordinary `cargo test` run. If it fails, run
//!
//! ```text
//! RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
//! ```
//!
//! and fix what it reports (missing docs, broken intra-doc links, …).

use std::process::Command;

#[test]
fn workspace_docs_build_without_warnings() {
    let cargo = std::env::var_os("CARGO").unwrap_or_else(|| "cargo".into());
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let out = Command::new(cargo)
        .current_dir(manifest_dir)
        .args(["doc", "--no-deps", "--workspace", "--offline"])
        .env("RUSTDOCFLAGS", "-D warnings")
        .output()
        .expect("failed to spawn cargo doc");
    assert!(
        out.status.success(),
        "`cargo doc --no-deps --workspace` emitted warnings/errors:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

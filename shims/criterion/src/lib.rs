//! Offline vendored stand-in for the `criterion` crate.
//!
//! Provides the API surface the `bench` crate uses — `Criterion`,
//! `benchmark_group` with `sample_size`/`throughput`/`bench_function`/
//! `bench_with_input`/`finish`, `Bencher::iter`, `BenchmarkId`,
//! `Throughput` and the `criterion_group!`/`criterion_main!` macros — with
//! a simple adaptive-iteration timer instead of criterion's statistical
//! machinery. Results are printed as `ns/iter` (plus derived throughput
//! when declared); there are no saved baselines or HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Minimum measured wall time per benchmark before reporting.
const TARGET: Duration = Duration::from_millis(40);

/// Declared per-iteration work, used to derive throughput numbers.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier, optionally `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timer handed to benchmark closures; call [`Bencher::iter`].
pub struct Bencher {
    ns_per_iter: f64,
}

impl Bencher {
    /// Measure `f`, growing the iteration count until the batch runs for
    /// at least the target measurement window (~40 ms).
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        std::hint::black_box(f()); // warm-up
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= TARGET || iters >= 1 << 24 {
                self.ns_per_iter = dt.as_nanos() as f64 / iters as f64;
                return;
            }
            iters = iters.saturating_mul(4);
        }
    }
}

fn run_one(label: &str, throughput: Option<Throughput>, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher { ns_per_iter: f64::NAN };
    f(&mut b);
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            format!("  {:>10.1} MiB/s", n as f64 / b.ns_per_iter * 1e9 / (1 << 20) as f64)
        }
        Some(Throughput::Elements(n)) => {
            format!("  {:>10.1} Melem/s", n as f64 / b.ns_per_iter * 1e3)
        }
        None => String::new(),
    };
    println!("{label:<56} {:>14.1} ns/iter{rate}", b.ns_per_iter);
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes batches by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declare per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().id);
        run_one(&label, self.throughput, f);
        self
    }

    /// Run one benchmark that borrows an input value.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().id);
        run_one(&label, self.throughput, |b| f(b, input));
        self
    }

    /// End the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), throughput: None, _parent: self }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&id.into().id, None, f);
        self
    }
}

/// Bundle benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { ns_per_iter: f64::NAN };
        b.iter(|| std::hint::black_box(1u64 + 1));
        assert!(b.ns_per_iter.is_finite());
        assert!(b.ns_per_iter >= 0.0);
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(10);
        g.throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::new("sum", 4), &[1u64, 2, 3, 4], |b, xs| {
            b.iter(|| xs.iter().sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("insert", 32).id, "insert/32");
        assert_eq!(BenchmarkId::from_parameter("k21").id, "k21");
    }
}

//! Cross-vendor comparison: the same local assembly workload on the three
//! simulated devices with their native kernel dialects (the paper's core
//! experiment, in miniature).
//!
//! ```sh
//! cargo run --release --example cross_vendor
//! ```

use locassm::kernels::{run_local_assembly, GpuConfig};
use locassm::perfmodel::table::{bytes_eng, f, pct, Table};
use locassm::perfmodel::RooflinePoint;
use locassm::specs::DeviceId;
use locassm::workloads::paper_dataset;

fn main() {
    let mut table = Table::new("Local assembly kernel across vendors (k = 33, 5% scale)").header([
        "device",
        "dialect",
        "warp",
        "INTOPs",
        "HBM bytes",
        "II",
        "GINTOP/s",
        "% roofline",
        "time",
    ]);

    let ds = paper_dataset(33, 0.05, 7);
    let mut extensions = None;
    for dev in DeviceId::ALL {
        let cfg = GpuConfig::for_device(dev);
        let run = run_local_assembly(&ds, &cfg);

        // Portability invariant: every device computes identical biology.
        match &extensions {
            None => extensions = Some(run.extensions.clone()),
            Some(e) => assert_eq!(e, &run.extensions, "cross-vendor results must agree"),
        }

        let p = &run.profile;
        let spec = dev.spec();
        let rp = RooflinePoint::new(p.intops(), p.hbm_bytes(), p.seconds());
        table.row([
            spec.name.to_string(),
            spec.model.to_string(),
            spec.warp_width.to_string(),
            format!("{:.2}G", p.intops() as f64 / 1e9),
            bytes_eng(p.hbm_bytes()),
            f(rp.ii, 2),
            f(rp.intops_per_sec / 1e9, 1),
            pct(rp.fraction_of_roofline(spec)),
            format!("{:.2} ms", p.seconds() * 1e3),
        ]);
    }
    println!("{}", table.render());
    println!("All three devices produced identical contig extensions.");
}

//! K-mer extraction and extension votes.
//!
//! Fig. 1 of the paper: each read is segmented into overlapping k-mers; the
//! hash table maps a k-mer to the *extension* — the nucleotide following it
//! in the read — together with quality-stratified vote counts.

use crate::quality::is_hi_qual;
use crate::read::Read;

/// Iterator over the k-mers of a sequence, yielding `(position, kmer)`.
#[derive(Debug, Clone)]
pub struct KmerIter<'a> {
    seq: &'a [u8],
    k: usize,
    pos: usize,
}

impl<'a> KmerIter<'a> {
    pub fn new(seq: &'a [u8], k: usize) -> Self {
        assert!(k >= 1, "k must be positive");
        KmerIter { seq, k, pos: 0 }
    }
}

impl<'a> Iterator for KmerIter<'a> {
    type Item = (usize, &'a [u8]);

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos + self.k <= self.seq.len() {
            let p = self.pos;
            self.pos += 1;
            Some((p, &self.seq[p..p + self.k]))
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.seq.len() + 1).saturating_sub(self.pos + self.k);
        (n, Some(n))
    }
}

/// The extension vote a k-mer occurrence contributes: the following base's
/// index and whether its quality clears the high-quality cutoff. `None` for
/// the terminal k-mer of a read (nothing follows it).
pub fn ext_vote(read: &Read, pos: usize, k: usize) -> Option<(usize, bool)> {
    let next = pos + k;
    if next < read.seq.len() {
        Some((crate::dna::base_index(read.seq[next]), is_hi_qual(read.qual[next])))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::qual_char;

    #[test]
    fn kmer_iter_yields_all_windows() {
        let kmers: Vec<_> = KmerIter::new(b"AGCCCTCCCG", 4).collect();
        // Fig. 1a of the paper: agcc gccc ccct cctc ctcc tccc cccg
        let expect: Vec<(usize, &[u8])> = vec![
            (0, b"AGCC"),
            (1, b"GCCC"),
            (2, b"CCCT"),
            (3, b"CCTC"),
            (4, b"CTCC"),
            (5, b"TCCC"),
            (6, b"CCCG"),
        ];
        assert_eq!(kmers, expect);
    }

    #[test]
    fn kmer_iter_short_seq_is_empty() {
        assert_eq!(KmerIter::new(b"ACG", 4).count(), 0);
        assert_eq!(KmerIter::new(b"ACGT", 4).count(), 1);
    }

    #[test]
    fn size_hint_exact() {
        let it = KmerIter::new(b"ACGTACGT", 3);
        assert_eq!(it.size_hint(), (6, Some(6)));
    }

    #[test]
    fn ext_vote_quality_split() {
        let mut qual = vec![qual_char(40); 6];
        qual[4] = qual_char(2); // low-quality base at index 4
        let r = Read::new(b"ACGTAC".to_vec(), qual);
        // k = 3, pos 0 → next base index 3 = 'T', hi qual.
        assert_eq!(ext_vote(&r, 0, 3), Some((3, true)));
        // pos 1 → next base index 4 = 'A', low qual.
        assert_eq!(ext_vote(&r, 1, 3), Some((0, false)));
        // Terminal k-mer: no extension.
        assert_eq!(ext_vote(&r, 3, 3), None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn dna(len: usize) -> impl Strategy<Value = Vec<u8>> {
        proptest::collection::vec(proptest::sample::select(crate::dna::BASES.to_vec()), 0..len)
    }

    proptest! {
        /// Window count matches the closed form used everywhere in the
        /// dataset statistics (len − k + 1).
        #[test]
        fn window_count_closed_form(seq in dna(300), k in 1usize..80) {
            let n = KmerIter::new(&seq, k).count();
            prop_assert_eq!(n, seq.len().saturating_sub(k - 1));
        }

        /// Every yielded k-mer has length k and matches the source slice.
        #[test]
        fn windows_are_faithful(seq in dna(100), k in 1usize..20) {
            for (p, km) in KmerIter::new(&seq, k) {
                prop_assert_eq!(km.len(), k);
                prop_assert_eq!(km, &seq[p..p + k]);
            }
        }
    }
}

//! # adept — the companion alignment kernel
//!
//! The paper contrasts local assembly with the *other* heavily-used GPU
//! bioinformatics kernel: dynamic-programming sequence alignment (ADEPT
//! \[15\], studied for portability in \[5\]). The two kernels stress GPUs in
//! opposite ways — alignment has regular, wavefront-parallel data access
//! with per-cell dependencies, local assembly has scattered hash-table
//! traffic with warp-cooperative atomics — which is why §I singles both
//! out as the hard cases for portability.
//!
//! This crate implements Smith-Waterman local alignment twice:
//!
//! * [`cpu`] — the reference DP (oracle),
//! * [`kernel`] — a warp-per-alignment SIMT kernel using anti-diagonal
//!   wavefront parallelism, executed on the same simulator, device models
//!   and counters as the local assembly kernel, so the two kernels'
//!   roofline positions are directly comparable (`repro adept`).

pub mod cpu;
pub mod kernel;
pub mod launch;
pub mod scoring;

pub use cpu::sw_score_cpu;
pub use kernel::sw_kernel;
pub use launch::{run_alignment_batch, AlignmentBatchResult, Pair};
pub use scoring::{Alignment, Scoring};

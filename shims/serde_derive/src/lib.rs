//! Offline vendored stand-in for `serde_derive`: the derives accept the
//! same attribute grammar (including `#[serde(...)]` helpers) but expand
//! to nothing, because the workspace never serializes through serde at
//! runtime. See `shims/README.md`.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

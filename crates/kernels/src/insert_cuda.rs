//! CUDA-dialect `ht_get_atomic` (paper Appendix A, first listing).
//!
//! The original optimized path: lanes claim slots with `atomicCAS`, use
//! `__match_any_sync(__activemask(), &entry)` to group lanes that collided
//! on the same entry, and `__syncwarp(mask)` to order the winner's key
//! publication before the losers' key comparison. Lanes exit the probe
//! loop independently (divergent `return`), which on hardware means the
//! warp keeps issuing until the *longest* probe chain finishes — the cost
//! structure this transcription reproduces.

use crate::fault::KernelFault;
use crate::layout::{table_occupancy, DeviceJob, EMPTY};
use crate::probe::{
    advance, bucket_crossing_vote, cas_claim, compare_stored_keys, publish_key, start_slots,
    InsertArgs, SlotVec,
};
use crate::resize::ensure_capacity;
use crate::table::TOMBSTONE;
use simt::{LaneVec, Mask, Warp};

/// Find-or-claim the entry for each active lane's k-mer. Returns the slot
/// index per lane, or `HashTableFull` if a probe chain wraps the table.
///
/// The wrap guard is uniform across the three dialects: a chain may probe
/// at most the layout's probe bound (one full wrap of the probe sequence —
/// `job.slots` rounds for linear probing, the listings'
/// `hash_val == orig_hash` condition; two buckets for the bucketed layout;
/// front bucket + backyard for iceberg); the round that would revisit its
/// origin faults instead. A successful insert never needs more rounds, so
/// fault-free runs are unaffected.
///
/// With [`DeviceJob::resize`] armed, the warp checks the layout's
/// high-water mark before probing and migrates into a grown region first
/// (see [`crate::resize`]); a tombstoned slot observed through the CAS
/// `prev` value neither wins (only `EMPTY` is claimable) nor compares
/// (its key bytes are gone) — the lane simply keeps probing, which is the
/// shared tombstone rule of [`crate::table`].
pub fn ht_get_atomic(
    warp: &mut Warp,
    job: &mut DeviceJob,
    args: &InsertArgs,
) -> Result<SlotVec, KernelFault> {
    if warp.injected_faults().table_full {
        return Err(KernelFault::HashTableFull {
            capacity: job.slots,
            occupancy: table_occupancy(warp, job),
        });
    }
    ensure_capacity(warp, job, args.mask.count())?;
    let warp_width = warp.width();
    let probe_bound = job.layout.as_layout().probe_bound(job);
    let mut slot = start_slots(warp, job, args);
    let mut searching = args.mask;

    // The CUDA listing detects `hash_val == orig_hash` after wrapping and
    // prints "*hashtable full*"; the simulator reports it as a structured
    // fault the launch layer can escalate on.
    let mut rounds = 0u32;
    while !searching.is_empty() {
        rounds += 1;
        if rounds > probe_bound {
            warp.san_record(simt::SanKind::ProbeWrap { rounds, slots: job.slots });
            return Err(KernelFault::HashTableFull {
                capacity: job.slots,
                occupancy: table_occupancy(warp, job),
            });
        }
        // prev = atomicCAS(&ht[hash].key.length, EMPTY, len)
        let prev = cas_claim(warp, job, searching, &slot);

        // __match_any_sync(__activemask(), &thread_ht[hash_val]) — groups
        // lanes probing the same entry this round. The groups themselves are
        // unused (the CAS result resolves collisions); the collective is
        // issued for its modeled cost.
        warp.match_any_discard(searching, || {
            LaneVec::from_fn(warp_width, |l| job.entry_field(slot[l], 0))
        });

        // Winners publish the key.
        let mut winners = Mask::NONE;
        for l in searching.lanes() {
            if prev[l] == EMPTY {
                winners.set(l);
            }
        }
        publish_key(warp, job, winners, &slot, args);
        job.occupied += winners.count();

        // __syncwarp(mask): losers may now safely read the winner's key.
        warp.syncwarp(searching);

        // prev != EMPTY && key == kmer  → found existing entry. A
        // tombstoned slot is excluded from the compare: its key bytes are
        // gone (the stale key_off could alias a live key's offset), so
        // the lane keeps probing without a match.
        let losers = {
            let mut m = Mask::NONE;
            for l in searching.lanes() {
                if prev[l] != EMPTY && prev[l] != TOMBSTONE {
                    m.set(l);
                }
            }
            m
        };
        let eq = compare_stored_keys(warp, job, losers, &slot, args);
        warp.iop(searching, 2); // branch resolution on (prev, eq)

        let mut still = Mask::NONE;
        for l in searching.lanes() {
            let done = prev[l] == EMPTY || eq[l];
            if !done {
                still.set(l);
            }
        }
        searching = still;

        // Leaving a bucket? The continuing lanes vote before the warp
        // jumps regions together (no-op on single-region layouts).
        bucket_crossing_vote(warp, job, searching, rounds - 1);
        // hash_val = (hash_val + 1) % max_size for the lanes that continue
        // — positionally, the `rounds`-th slot of each lane's sequence.
        advance(warp, job, searching, &args.hash, rounds, &mut slot);
    }
    warp.trace_event(simt::EventKind::ProbeChain { rounds });
    Ok(slot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{OFF_KEY_LEN, OFF_KEY_OFF};
    use locassm_core::walk::WalkConfig;
    use locassm_core::Read;
    use memhier::HierarchyConfig;

    fn setup(read: &[u8], k: usize) -> (Warp, DeviceJob) {
        let mut warp = Warp::new(32, HierarchyConfig::tiny());
        let reads = vec![Read::with_uniform_qual(read, b'I')];
        let job =
            DeviceJob::stage(&mut warp, b"ACGTACGTACGT", &reads, k, WalkConfig::default(), 1)
                .unwrap();
        (warp, job)
    }

    fn hash_of(job: &DeviceJob, warp: &Warp, off: u32) -> u32 {
        let key = warp.mem.read_bytes(job.reads + off as u64, job.k as u64);
        locassm_core::murmur_hash_aligned2(key, locassm_core::murmur::DEFAULT_SEED)
            % job.slots
    }

    #[test]
    fn distinct_keys_get_distinct_slots() {
        // Read "ACGTACGT": k-mers at offsets 0..4 (ACGT CGTA GTAC TACG ACGT).
        let (mut warp, mut job) = setup(b"ACGTACGT", 4);
        let mask = Mask(0b1111); // lanes 0..3 insert offsets 0..3
        let args = InsertArgs {
            mask,
            key_off: LaneVec::from_fn(32, |l| l),
            hash: LaneVec::from_fn(32, |l| hash_of(&job, &warp, l)),
        };
        let slots = ht_get_atomic(&mut warp, &mut job, &args).unwrap();
        // All four k-mers are distinct → four distinct slots, all claimed.
        let mut seen: Vec<u32> = (0..4).map(|l| slots[l]).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 4);
        for l in 0..4u32 {
            assert_eq!(warp.mem.read_u32(job.entry_field(slots[l], OFF_KEY_LEN)), 4);
            let off = warp.mem.read_u32(job.entry_field(slots[l], OFF_KEY_OFF));
            assert_eq!(off, l);
        }
    }

    #[test]
    fn thread_collision_identical_kmers_share_slot() {
        // Offsets 0 and 4 are both "ACGT" — the thread-collision case the
        // paper resolves with __match_any_sync + atomicCAS.
        let (mut warp, mut job) = setup(b"ACGTACGT", 4);
        let mask = Mask(0b11);
        let mut key_off = LaneVec::splat(0u32);
        key_off[1] = 4;
        let h = hash_of(&job, &warp, 0);
        let args = InsertArgs { mask, key_off, hash: LaneVec::splat(h) };
        let slots = ht_get_atomic(&mut warp, &mut job, &args).unwrap();
        assert_eq!(slots[0], slots[1], "identical k-mers must resolve to one entry");
    }

    #[test]
    fn hash_collision_resolved_by_linear_probe() {
        let (mut warp, mut job) = setup(b"ACGTACGT", 4);
        // Force both distinct k-mers to the same starting slot.
        let mask = Mask(0b11);
        let mut key_off = LaneVec::splat(0u32);
        key_off[1] = 1; // "CGTA" ≠ "ACGT"
        let args = InsertArgs { mask, key_off, hash: LaneVec::splat(7) };
        let slots = ht_get_atomic(&mut warp, &mut job, &args).unwrap();
        assert_ne!(slots[0], slots[1]);
        assert_eq!(slots[0], 7);
        assert_eq!(slots[1], (7 + 1) % job.slots, "linear probe to the next slot");
    }

    #[test]
    fn reinsertion_finds_existing_entry() {
        let (mut warp, mut job) = setup(b"ACGTACGT", 4);
        let h = hash_of(&job, &warp, 2);
        let args = InsertArgs {
            mask: Mask::lane(0),
            key_off: LaneVec::splat(2u32),
            hash: LaneVec::splat(h),
        };
        let first = ht_get_atomic(&mut warp, &mut job, &args).unwrap();
        let second = ht_get_atomic(&mut warp, &mut job, &args).unwrap();
        assert_eq!(first[0], second[0]);
    }

    #[test]
    fn counts_collectives_and_atomics() {
        let (mut warp, mut job) = setup(b"ACGTACGT", 4);
        let args = InsertArgs {
            mask: Mask::lane(0),
            key_off: LaneVec::splat(0u32),
            hash: LaneVec::splat(0u32),
        };
        let _ = ht_get_atomic(&mut warp, &mut job, &args);
        let c = warp.counters;
        assert_eq!(c.atomic_instructions, 1, "one CAS round");
        assert_eq!(c.collective_instructions, 1, "one __match_any_sync");
        assert_eq!(c.sync_instructions, 1, "one __syncwarp");
    }
}

#[cfg(test)]
mod full_table_tests {
    use super::*;
    use crate::probe::InsertArgs;
    use locassm_core::walk::WalkConfig;
    use locassm_core::Read;
    use memhier::HierarchyConfig;
    use simt::{LaneVec, Mask, Warp};

    /// Fill every slot with distinct keys, then insert one more distinct
    /// key: the wrap guard must report `HashTableFull` instead of spinning
    /// forever (or panicking, as the pre-fault-model code did).
    #[test]
    fn full_table_faults_not_spins() {
        let mut warp = Warp::new(32, HierarchyConfig::tiny());
        // A long homopolymer-free read gives plenty of distinct 8-mers.
        let seq: Vec<u8> = (0..160).map(|i| b"ACGT"[(i * 7 + i / 4) % 4]).collect();
        let reads = vec![Read::with_uniform_qual(&seq, b'I')];
        let mut job = crate::layout::DeviceJob::stage(
            &mut warp,
            b"ACGTACGTACGT",
            &reads,
            8,
            WalkConfig::default(),
            1,
        )
        .unwrap();
        // Lie about the capacity: pretend the table has only 4 slots so a
        // handful of distinct keys overflows it.
        job.slots = 4;
        let mut fault = None;
        for off in 0..8u32 {
            let args = InsertArgs {
                mask: Mask::lane(0),
                key_off: LaneVec::splat(off),
                hash: LaneVec::splat(off % 4),
            };
            if let Err(f) = ht_get_atomic(&mut warp, &mut job, &args) {
                fault = Some(f);
                break;
            }
        }
        match fault.expect("the 5th distinct key must overflow the 4-slot table") {
            KernelFault::HashTableFull { capacity, occupancy } => {
                assert_eq!(capacity, 4);
                assert_eq!(occupancy, 4, "every slot was claimed when the probe wrapped");
            }
            other => panic!("wrong fault: {other:?}"),
        }
    }
}

//! Event-driven multi-warp scheduler — the timing half of
//! [`crate::ExecMode::Scheduled`].
//!
//! The counter model runs each warp to completion independently; real GPUs
//! hide memory latency by keeping many warps resident per SM and switching
//! to a ready warp whenever the current one blocks on an outstanding load.
//! This module replays recorded per-warp [`WarpTimeline`]s through an event
//! [`TimeQueue`] per SM, modeling:
//!
//! * **issue** — every warp instruction occupies the SM's issue port for a
//!   fixed number of ticks (the device's calibrated sustained issue rate),
//! * **memory latency** — each memory instruction carries the
//!   [`memhier::MemLevel`] it resolved at; the issuing warp
//!   blocks for that level's latency while the port stays free for the
//!   other resident warps (this is the latency *hiding*),
//! * **limited residency** — at most `residency` warps are resident per SM
//!   at once (occupancy from `layout::stage_footprint` vs. SM resources,
//!   computed by `gpu_specs::occupancy::scheduled_residency`); further
//!   warps wait for a resident warp to retire.
//!
//! The replay is **observational**: timelines are recorded during a
//! functionally Vectorized run (bit-identical results/counters/traces) and
//! scheduled afterwards, so the timing model can never perturb modeled
//! state — the same discipline the tracing and sanitizer layers follow.
//! Everything is deterministic: ties in the time queue break on a monotone
//! sequence number, and warps are admitted in job order.
//!
//! Ticks are **picoseconds** (1 tick = 1 ps). At the devices' calibrated
//! issue rates one warp instruction costs tens of thousands of ticks and
//! HBM latency costs hundreds of thousands, so `u64` tick arithmetic has
//! headroom for runs billions of instructions long.

use memhier::MemLevel;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One recorded occurrence on a warp's deterministic instruction clock.
///
/// `at` is the warp's cumulative `warp_instructions` count *after* the
/// instruction that produced the event — the same clock the tracing layer
/// stamps, so timelines and traces line up exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimelineEvent {
    /// A memory instruction issued at clock `at` and resolved at `level`.
    Mem {
        /// Warp-instruction clock after the instruction issued.
        at: u64,
        /// Deepest hierarchy level the access reached (its latency class).
        level: MemLevel,
    },
    /// A named phase was entered at clock `at` (instructions from here on
    /// are attributed to `name` until the matching exit).
    PhaseEnter {
        /// Static phase name (`"construct"`, `"walk"`, …).
        name: &'static str,
        /// Warp-instruction clock at entry.
        at: u64,
    },
    /// The innermost open phase exited at clock `at`.
    PhaseExit {
        /// Warp-instruction clock at exit.
        at: u64,
    },
}

/// The recorded execution of one warp: every memory instruction with its
/// resolved hierarchy level, phase boundaries, and the final instruction
/// count. Compute segments are implicit — the clock gaps between events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WarpTimeline {
    /// Launch-order warp id (job index within the launch).
    pub warp_id: u64,
    /// Total warp instructions the warp issued.
    pub total_instructions: u64,
    /// Events in clock order.
    pub events: Vec<TimelineEvent>,
}

/// Records a [`WarpTimeline`] during execution — attached to a warp the
/// same way a trace sink is (boxed, optional, zero modeled cost).
#[derive(Debug, Default)]
pub struct TimelineRecorder {
    timeline: WarpTimeline,
}

impl TimelineRecorder {
    /// Fresh recorder for the warp at `warp_id` (launch job order).
    pub fn new(warp_id: u64) -> Self {
        TimelineRecorder { timeline: WarpTimeline { warp_id, ..Default::default() } }
    }

    /// Record a memory instruction that resolved at `level`, issued at
    /// post-increment clock `at`.
    pub fn record_mem(&mut self, at: u64, level: MemLevel) {
        self.timeline.events.push(TimelineEvent::Mem { at, level });
    }

    /// Record a phase entry.
    pub fn record_phase_enter(&mut self, name: &'static str, at: u64) {
        self.timeline.events.push(TimelineEvent::PhaseEnter { name, at });
    }

    /// Record a phase exit.
    pub fn record_phase_exit(&mut self, at: u64) {
        self.timeline.events.push(TimelineEvent::PhaseExit { at });
    }

    /// Finish recording: seal the total instruction count and return the
    /// timeline.
    pub fn finish(mut self, total_instructions: u64) -> WarpTimeline {
        self.timeline.total_instructions = total_instructions;
        self.timeline
    }
}

/// A deterministic event time-queue: entries pop in `(time, seq)` order,
/// where `seq` is a monotone insertion counter — two entries scheduled for
/// the same tick pop in the order they were pushed, so replays are exact.
#[derive(Debug)]
pub struct TimeQueue<T> {
    heap: BinaryHeap<Reverse<(u64, u64, T)>>,
    seq: u64,
}

impl<T: Ord> Default for TimeQueue<T> {
    fn default() -> Self {
        TimeQueue { heap: BinaryHeap::new(), seq: 0 }
    }
}

impl<T: Ord> TimeQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `item` to become ready at `time`.
    pub fn push(&mut self, time: u64, item: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse((time, seq, item)));
    }

    /// Pop the earliest entry (FIFO among equal times) as `(time, item)`.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        self.heap.pop().map(|Reverse((time, _, item))| (time, item))
    }

    /// The earliest scheduled time, if any.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse((time, _, _))| *time)
    }

    /// Number of scheduled entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Scheduler configuration: the device quantities the replay needs,
/// pre-converted to ticks (build one with
/// `gpu_specs::timing::sched_config`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedConfig {
    /// Number of SMs (compute units) warps are distributed over.
    pub sms: u32,
    /// Maximum warps resident per SM at once (≥ 1).
    pub residency: u32,
    /// Issue-port occupancy of one warp instruction, in ticks.
    pub issue_ticks: u64,
    /// Load-to-use latency of an L1 hit, in ticks.
    pub l1_ticks: u64,
    /// Load-to-use latency of an L2 hit, in ticks.
    pub l2_ticks: u64,
    /// Load-to-use latency of an HBM access, in ticks.
    pub hbm_ticks: u64,
    /// Record per-warp execution slices ([`SmSlice`]) for timeline export.
    /// Off by default — slices are O(events) extra memory.
    pub record_tracks: bool,
}

impl SchedConfig {
    /// Latency (ticks) for an access that resolved at `level`.
    pub fn latency_ticks(&self, level: MemLevel) -> u64 {
        match level {
            MemLevel::L1 => self.l1_ticks,
            MemLevel::L2 => self.l2_ticks,
            MemLevel::Hbm => self.hbm_ticks,
        }
    }
}

/// Tick accounting for one phase of the scheduled replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseSched {
    /// Ticks the phase's instructions occupied issue ports (compute +
    /// memory issue; summed over warps, so overlapping warps both count).
    pub issue_ticks: u64,
    /// Ticks warps of this phase spent blocked on outstanding memory
    /// (summed over warps). This is the *hideable* latency.
    pub stall_ticks: u64,
    /// Ticks an SM's issue port sat idle waiting for a blocked warp of
    /// this phase — the latency that residency could **not** hide. This
    /// is the term that replaces the analytic `t_latency`.
    pub exposed_ticks: u64,
}

impl PhaseSched {
    /// Merge another phase aggregate into this one.
    pub fn merge(&mut self, o: &PhaseSched) {
        self.issue_ticks += o.issue_ticks;
        self.stall_ticks += o.stall_ticks;
        self.exposed_ticks += o.exposed_ticks;
    }

    /// Fraction of memory-stall ticks hidden by other resident warps
    /// (1.0 when every stall overlapped useful issue, 0.0 when the port
    /// idled for the full stall; 1.0 with no stalls at all).
    pub fn latency_hidden_fraction(&self) -> f64 {
        if self.stall_ticks == 0 {
            return 1.0;
        }
        1.0 - (self.exposed_ticks.min(self.stall_ticks) as f64 / self.stall_ticks as f64)
    }
}

/// One contiguous execution slice of a warp on an SM's issue port
/// (collected only under [`SchedConfig::record_tracks`]; feeds the
/// Chrome-trace SM-occupancy lanes in `perfmodel`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmSlice {
    /// SM the slice ran on.
    pub sm: u32,
    /// Warp id (launch job order).
    pub warp: u64,
    /// Start tick of the port occupancy.
    pub start: u64,
    /// End tick of the port occupancy.
    pub end: u64,
    /// Phase the slice's instructions belong to.
    pub phase: &'static str,
}

/// Result of scheduling a launch's timelines.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SchedResult {
    /// Number of SMs that actually received warps.
    pub sms_used: u32,
    /// Makespan of the replay in ticks (the busiest SM's completion time).
    pub makespan_ticks: u64,
    /// Ticks SM issue ports were busy, summed over used SMs.
    pub busy_ticks: u64,
    /// Ticks warp-residency slots were occupied, summed over warps (a
    /// warp is resident from admission to retirement). Divided by
    /// `residency × sms_used × makespan`, this is achieved occupancy.
    pub resident_ticks: u64,
    /// Residency limit the replay ran with (warps per SM).
    pub residency: u32,
    /// Per-phase tick breakdown, in first-encounter order. Instructions
    /// outside any recorded phase land under `"(outside)"`.
    pub phases: Vec<(&'static str, PhaseSched)>,
    /// Execution slices for timeline export (empty unless
    /// [`SchedConfig::record_tracks`]).
    pub tracks: Vec<SmSlice>,
}

impl SchedResult {
    /// Find a phase aggregate by name.
    pub fn phase(&self, name: &str) -> Option<&PhaseSched> {
        self.phases.iter().find(|(n, _)| *n == name).map(|(_, p)| p)
    }

    /// Total ticks across phases of the given accessor.
    fn phase_sum(&self, f: impl Fn(&PhaseSched) -> u64) -> u64 {
        self.phases.iter().map(|(_, p)| f(p)).sum()
    }

    /// Total issue ticks across all phases.
    pub fn issue_ticks(&self) -> u64 {
        self.phase_sum(|p| p.issue_ticks)
    }

    /// Total memory-stall ticks across all phases.
    pub fn stall_ticks(&self) -> u64 {
        self.phase_sum(|p| p.stall_ticks)
    }

    /// Total exposed (un-hidden) stall ticks across all phases.
    pub fn exposed_ticks(&self) -> u64 {
        self.phase_sum(|p| p.exposed_ticks)
    }

    /// Achieved occupancy: mean fraction of residency slots holding a
    /// live warp over the makespan (0 when nothing ran).
    pub fn occupancy(&self) -> f64 {
        let slots = self.residency as u64 * self.sms_used as u64;
        if slots == 0 || self.makespan_ticks == 0 {
            return 0.0;
        }
        self.resident_ticks as f64 / (slots * self.makespan_ticks) as f64
    }

    /// Fraction of memory-stall ticks hidden by warp interleaving, over
    /// all phases.
    pub fn latency_hidden_fraction(&self) -> f64 {
        let stall = self.stall_ticks();
        if stall == 0 {
            return 1.0;
        }
        1.0 - (self.exposed_ticks().min(stall) as f64 / stall as f64)
    }

    /// Merge another launch's replay into this one (chunked launches and
    /// escalation retries run back-to-back on the same device, so
    /// makespans add while tick sums and `sms_used`/`residency` maxima
    /// combine).
    pub fn merge(&mut self, o: &SchedResult) {
        self.sms_used = self.sms_used.max(o.sms_used);
        self.residency = self.residency.max(o.residency);
        self.makespan_ticks += o.makespan_ticks;
        self.busy_ticks += o.busy_ticks;
        self.resident_ticks += o.resident_ticks;
        for (name, p) in &o.phases {
            match self.phases.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => mine.merge(p),
                None => self.phases.push((name, *p)),
            }
        }
        self.tracks.extend_from_slice(&o.tracks);
    }
}

/// The replay state of one warp walking its timeline.
struct WarpState<'a> {
    timeline: &'a WarpTimeline,
    /// Index of the next unconsumed event.
    next_event: usize,
    /// Instruction clock consumed so far.
    clock: u64,
    /// Phase-name stack (innermost last).
    phase_stack: Vec<&'static str>,
}

const OUTSIDE: &str = "(outside)";

impl<'a> WarpState<'a> {
    fn new(timeline: &'a WarpTimeline) -> Self {
        WarpState { timeline, next_event: 0, clock: 0, phase_stack: Vec::new() }
    }

    fn phase(&self) -> &'static str {
        self.phase_stack.last().copied().unwrap_or(OUTSIDE)
    }

    /// Consume zero-width phase markers at the current position.
    fn consume_markers(&mut self) {
        while let Some(e) = self.timeline.events.get(self.next_event) {
            match *e {
                TimelineEvent::PhaseEnter { name, at } if at <= self.clock => {
                    self.phase_stack.push(name);
                    self.next_event += 1;
                }
                TimelineEvent::PhaseExit { at } if at <= self.clock => {
                    self.phase_stack.pop();
                    self.next_event += 1;
                }
                _ => break,
            }
        }
    }

    /// The warp's next step: `(instructions, Some(level))` for a segment
    /// ending in a memory instruction, `(instructions, None)` for a pure
    /// compute segment (up to the next phase marker or the end of the
    /// stream), or `None` when the timeline is consumed. `instructions`
    /// includes the memory instruction itself. Callers must
    /// [`Self::consume_markers`] before reading [`Self::phase`] so the
    /// step is attributed to the phase it issues under.
    fn next_step(&mut self) -> Option<(u64, Option<MemLevel>)> {
        self.consume_markers();
        if let Some(e) = self.timeline.events.get(self.next_event) {
            match *e {
                TimelineEvent::Mem { at, level } => {
                    self.next_event += 1;
                    let instructions = at - self.clock;
                    self.clock = at;
                    return Some((instructions, Some(level)));
                }
                // A marker beyond the current clock: issue the compute
                // segment up to it; the marker itself is consumed
                // (zero-width) on the warp's next pop.
                TimelineEvent::PhaseEnter { at, .. } | TimelineEvent::PhaseExit { at } => {
                    debug_assert!(at > self.clock, "markers at the clock are consumed above");
                    let instructions = at - self.clock;
                    self.clock = at;
                    return Some((instructions, None));
                }
            }
        }
        let rest = self.timeline.total_instructions - self.clock;
        self.clock = self.timeline.total_instructions;
        (rest > 0).then_some((rest, None))
    }
}

/// Replay a launch's recorded timelines through per-SM event queues.
///
/// Warps are assigned to SMs round-robin in job order (`warp j → SM
/// j % sms_used`, `sms_used = min(cfg.sms, warps)`) and admitted in job
/// order up to `cfg.residency` resident warps per SM; each SM has a
/// single issue port arbitrated FCFS through a [`TimeQueue`]. The result
/// is deterministic for a given `(timelines, cfg)` input.
pub fn schedule(timelines: &[WarpTimeline], cfg: &SchedConfig) -> SchedResult {
    let mut result = SchedResult {
        residency: cfg.residency.max(1),
        ..Default::default()
    };
    if timelines.is_empty() || cfg.sms == 0 {
        return result;
    }
    let sms_used = (cfg.sms as usize).min(timelines.len());
    result.sms_used = sms_used as u32;
    for sm in 0..sms_used {
        let assigned: Vec<&WarpTimeline> =
            timelines.iter().skip(sm).step_by(sms_used).collect();
        schedule_sm(sm as u32, &assigned, cfg, &mut result);
    }
    result
}

/// Replay one SM's assigned warps through its issue port.
fn schedule_sm(
    sm: u32,
    assigned: &[&WarpTimeline],
    cfg: &SchedConfig,
    result: &mut SchedResult,
) {
    let residency = cfg.residency.max(1) as usize;
    let mut states: Vec<WarpState<'_>> =
        assigned.iter().map(|t| WarpState::new(t)).collect();
    let mut queue: TimeQueue<usize> = TimeQueue::new();
    // Admit the first `residency` warps at tick 0, in job order.
    let mut next_admission = residency.min(states.len());
    for idx in 0..next_admission {
        queue.push(0, idx);
    }
    // Admission time of each warp (for resident_ticks).
    let mut admitted_at = vec![0u64; states.len()];

    let mut port_free: u64 = 0; // tick the issue port becomes free
    let mut busy: u64 = 0;
    let mut makespan: u64 = 0;

    let add_phase = |result: &mut SchedResult, name: &'static str, f: &dyn Fn(&mut PhaseSched)| {
        match result.phases.iter_mut().find(|(n, _)| *n == name) {
            Some((_, p)) => f(p),
            None => {
                let mut p = PhaseSched::default();
                f(&mut p);
                result.phases.push((name, p));
            }
        }
    };

    while let Some((ready, idx)) = queue.pop() {
        states[idx].consume_markers();
        let phase = states[idx].phase();
        let Some((instructions, mem)) = states[idx].next_step() else {
            // Warp retired: free its residency slot for the next waiting
            // warp (admitted at the retirement tick, in job order).
            let retired_at = ready;
            result.resident_ticks += retired_at - admitted_at[idx];
            makespan = makespan.max(retired_at);
            if next_admission < states.len() {
                admitted_at[next_admission] = retired_at;
                queue.push(retired_at, next_admission);
                next_admission += 1;
            }
            continue;
        };
        // The port serves requests FCFS, so an idle gap before this issue
        // means no resident warp was ready — latency the resident set
        // failed to hide, attributed to the issuing warp's current phase.
        let start = ready.max(port_free);
        if start > port_free {
            let exposed = start - port_free.max(admitted_at[idx]);
            add_phase(result, phase, &|p| p.exposed_ticks += exposed);
        }
        let dur = instructions * cfg.issue_ticks;
        let end = start + dur;
        busy += dur;
        port_free = end;
        makespan = makespan.max(end);
        add_phase(result, phase, &|p| p.issue_ticks += dur);
        if cfg.record_tracks {
            result.tracks.push(SmSlice {
                sm,
                warp: states[idx].timeline.warp_id,
                start,
                end,
                phase,
            });
        }
        match mem {
            Some(level) => {
                // Block the warp for the access latency; the port is free
                // meanwhile — that's the window other warps hide in.
                let lat = cfg.latency_ticks(level);
                add_phase(result, phase, &|p| p.stall_ticks += lat);
                queue.push(end + lat, idx);
            }
            None => {
                // Pure compute segment: requeue at its end (the next pop
                // consumes phase markers or retires the warp).
                queue.push(end, idx);
            }
        }
    }
    result.busy_ticks += busy;
    result.makespan_ticks = result.makespan_ticks.max(makespan);
}

#[cfg(test)]
mod timeq_tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = TimeQueue::new();
        q.push(30, "c");
        q.push(10, "a");
        q.push(20, "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(10));
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    /// Entries scheduled for the same tick pop in insertion order — the
    /// determinism the whole replay rests on.
    #[test]
    fn ties_break_on_insertion_order() {
        let mut q = TimeQueue::new();
        for label in ["first", "second", "third", "fourth"] {
            q.push(5, label);
        }
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, ["first", "second", "third", "fourth"]);
    }

    /// Tie-breaking is insertion-global, not per-time: an item pushed
    /// later for an *earlier* time still pops first, and re-pushing a
    /// popped item (suspend → resume) lands after existing entries at the
    /// same tick.
    #[test]
    fn suspend_resume_requeues_deterministically() {
        let mut q = TimeQueue::new();
        q.push(10, 'a');
        q.push(10, 'b');
        let (t, v) = q.pop().unwrap();
        assert_eq!((t, v), (10, 'a'));
        // 'a' suspends and resumes at the same tick: it re-queues *after*
        // 'b' (its seq is newer), modeling FCFS among equally-ready warps.
        q.push(10, 'a');
        assert_eq!(q.pop(), Some((10, 'b')));
        assert_eq!(q.pop(), Some((10, 'a')));
        // A later push for an earlier time still wins on time.
        q.push(50, 'z');
        q.push(1, 'y');
        assert_eq!(q.pop(), Some((1, 'y')));
        assert_eq!(q.pop(), Some((50, 'z')));
    }

    #[test]
    fn identical_streams_replay_identically() {
        let mut order_a = Vec::new();
        let mut order_b = Vec::new();
        for order in [&mut order_a, &mut order_b] {
            let mut q = TimeQueue::new();
            for (t, v) in [(3u64, 0u32), (1, 1), (3, 2), (2, 3), (1, 4)] {
                q.push(t, v);
            }
            while let Some(e) = q.pop() {
                order.push(e);
            }
        }
        assert_eq!(order_a, order_b);
        assert_eq!(order_a, [(1, 1), (1, 4), (2, 3), (3, 0), (3, 2)]);
    }
}

#[cfg(test)]
mod sched_tests {
    use super::*;

    /// A timeline with `pre` compute instructions before each of the given
    /// memory accesses and `tail` compute instructions at the end.
    fn mk_timeline(id: u64, pre: u64, accesses: &[MemLevel], tail: u64) -> WarpTimeline {
        let mut rec = TimelineRecorder::new(id);
        let mut clock = 0;
        rec.record_phase_enter("body", 0);
        for &level in accesses {
            clock += pre + 1; // pre compute instructions + the mem instruction
            rec.record_mem(clock, level);
        }
        clock += tail;
        rec.record_phase_exit(clock);
        rec.finish(clock)
    }

    fn cfg(sms: u32, residency: u32) -> SchedConfig {
        SchedConfig {
            sms,
            residency,
            issue_ticks: 10,
            l1_ticks: 20,
            l2_ticks: 140,
            hbm_ticks: 480,
            record_tracks: false,
        }
    }

    #[test]
    fn empty_input_schedules_to_nothing() {
        let r = schedule(&[], &cfg(4, 8));
        assert_eq!(r.makespan_ticks, 0);
        assert_eq!(r.sms_used, 0);
        assert_eq!(r.occupancy(), 0.0);
        assert_eq!(r.latency_hidden_fraction(), 1.0);
    }

    /// A single warp with no other residents cannot hide anything: every
    /// stall tick is exposed and the makespan is issue + latency, exactly.
    #[test]
    fn single_warp_exposes_all_latency() {
        let t = mk_timeline(0, 4, &[MemLevel::Hbm, MemLevel::Hbm], 3);
        let c = cfg(4, 8);
        let r = schedule(std::slice::from_ref(&t), &c);
        assert_eq!(r.sms_used, 1);
        // 13 instructions × 10 ticks + 2 × 480 latency.
        assert_eq!(r.busy_ticks, 130);
        assert_eq!(r.makespan_ticks, 130 + 960);
        let body = r.phase("body").unwrap();
        assert_eq!(body.issue_ticks, 130);
        assert_eq!(body.stall_ticks, 960);
        assert_eq!(body.exposed_ticks, 960);
        assert_eq!(r.latency_hidden_fraction(), 0.0);
    }

    /// Many resident warps on one SM hide each other's stalls: exposed
    /// ticks drop and the makespan approaches pure issue serialization.
    #[test]
    fn resident_warps_hide_latency() {
        let c = cfg(1, 8);
        let warps: Vec<WarpTimeline> =
            (0..8).map(|i| mk_timeline(i, 4, &[MemLevel::Hbm; 6], 2)).collect();
        let solo = schedule(&warps[..1], &c);
        let packed = schedule(&warps, &c);
        assert!(
            packed.latency_hidden_fraction() > 0.5,
            "8 residents must hide most HBM stalls, got {}",
            packed.latency_hidden_fraction()
        );
        assert!(
            packed.makespan_ticks < 8 * solo.makespan_ticks / 2,
            "interleaving must beat serial run-to-completion: {} vs 8×{}",
            packed.makespan_ticks,
            solo.makespan_ticks
        );
        // Port busy time is exact: 8 warps × 32 instructions × 10 ticks.
        assert_eq!(packed.busy_ticks, 8 * 32 * 10);
    }

    /// Residency 1 forbids interleaving: warps run strictly back-to-back
    /// and nothing is hidden.
    #[test]
    fn residency_one_serializes() {
        let c = cfg(1, 1);
        let warps: Vec<WarpTimeline> =
            (0..3).map(|i| mk_timeline(i, 2, &[MemLevel::L2], 1)).collect();
        let r = schedule(&warps, &c);
        // Each warp: 4 instructions × 10 + 140 stall, fully exposed.
        assert_eq!(r.makespan_ticks, 3 * (40 + 140));
        assert_eq!(r.exposed_ticks(), 3 * 140);
        assert_eq!(r.latency_hidden_fraction(), 0.0);
    }

    /// Warps spread round-robin over SMs; the makespan is the busiest
    /// SM's, not the sum.
    #[test]
    fn warps_distribute_over_sms() {
        let c = cfg(4, 8);
        let warps: Vec<WarpTimeline> =
            (0..4).map(|i| mk_timeline(i, 2, &[MemLevel::L1], 0)).collect();
        let r = schedule(&warps, &c);
        assert_eq!(r.sms_used, 4);
        let one = schedule(&warps[..1], &c);
        assert_eq!(r.makespan_ticks, one.makespan_ticks, "SMs run in parallel");
        assert_eq!(r.busy_ticks, 4 * one.busy_ticks);
    }

    #[test]
    fn deterministic_across_replays() {
        let c = cfg(3, 4);
        let warps: Vec<WarpTimeline> = (0..13)
            .map(|i| {
                let levels = [MemLevel::L1, MemLevel::L2, MemLevel::Hbm];
                let accesses: Vec<MemLevel> =
                    (0..(i % 5 + 1)).map(|j| levels[((i + j) % 3) as usize]).collect();
                mk_timeline(i, i % 7, &accesses, i % 3)
            })
            .collect();
        let a = schedule(&warps, &c);
        let b = schedule(&warps, &c);
        assert_eq!(a, b);
        assert!(a.makespan_ticks > 0);
        assert!(a.occupancy() > 0.0 && a.occupancy() <= 1.0);
    }

    /// With zero memory stalls the scheduled busy time per SM equals the
    /// pure issue cost — the property that anchors the scheduled estimate
    /// to the analytic compute term.
    #[test]
    fn stall_free_busy_equals_issue_cost() {
        let c = cfg(2, 8);
        let warps: Vec<WarpTimeline> = (0..6)
            .map(|i| {
                let mut rec = TimelineRecorder::new(i);
                rec.record_phase_enter("walk", 0);
                rec.record_phase_exit(100);
                rec.finish(100)
            })
            .collect();
        let r = schedule(&warps, &c);
        assert_eq!(r.busy_ticks, 6 * 100 * 10);
        assert_eq!(r.stall_ticks(), 0);
        assert_eq!(r.exposed_ticks(), 0);
        // 3 warps per SM, serialized on the issue port.
        assert_eq!(r.makespan_ticks, 3 * 100 * 10);
        assert_eq!(r.latency_hidden_fraction(), 1.0);
    }

    /// Phase attribution: a warp's stall lands in the phase its memory
    /// instruction issued under.
    #[test]
    fn stalls_attribute_to_their_phase() {
        let mut rec = TimelineRecorder::new(0);
        rec.record_phase_enter("construct", 0);
        rec.record_mem(3, MemLevel::Hbm);
        rec.record_phase_exit(3);
        rec.record_phase_enter("walk", 3);
        rec.record_mem(5, MemLevel::L2);
        rec.record_phase_exit(6);
        let t = rec.finish(6);
        let r = schedule(std::slice::from_ref(&t), &cfg(1, 2));
        let construct = r.phase("construct").unwrap();
        let walk = r.phase("walk").unwrap();
        assert_eq!(construct.stall_ticks, 480);
        assert_eq!(construct.issue_ticks, 30);
        assert_eq!(walk.stall_ticks, 140);
        assert_eq!(walk.issue_ticks, 30);
        assert!(r.phase("(outside)").is_none());
    }

    /// Instructions outside any phase marker are still accounted (under
    /// the `"(outside)"` bucket), so tick totals never silently drop.
    #[test]
    fn unphased_instructions_are_not_lost() {
        let mut rec = TimelineRecorder::new(0);
        rec.record_mem(4, MemLevel::L1);
        let t = rec.finish(10);
        let r = schedule(std::slice::from_ref(&t), &cfg(1, 2));
        let outside = r.phase("(outside)").unwrap();
        assert_eq!(outside.issue_ticks, 100);
        assert_eq!(outside.stall_ticks, 20);
        assert_eq!(r.busy_ticks, 100);
    }

    #[test]
    fn tracks_record_port_slices() {
        let mut c = cfg(1, 2);
        c.record_tracks = true;
        let warps: Vec<WarpTimeline> =
            (0..2).map(|i| mk_timeline(i, 2, &[MemLevel::Hbm], 1)).collect();
        let r = schedule(&warps, &c);
        assert!(!r.tracks.is_empty());
        for s in &r.tracks {
            assert!(s.end > s.start);
            assert_eq!(s.sm, 0);
            assert_eq!(s.phase, "body");
        }
        // Slices on one SM never overlap (single issue port).
        let mut sorted = r.tracks.clone();
        sorted.sort_by_key(|s| s.start);
        for w in sorted.windows(2) {
            assert!(w[0].end <= w[1].start, "port slices overlap: {w:?}");
        }
        // Without the flag the same replay is slice-free but otherwise equal.
        c.record_tracks = false;
        let bare = schedule(&warps, &c);
        assert!(bare.tracks.is_empty());
        assert_eq!(bare.makespan_ticks, r.makespan_ticks);
        assert_eq!(bare.phases, r.phases);
    }

    #[test]
    fn merge_adds_makespans_and_phase_ticks() {
        let c = cfg(2, 4);
        let warps: Vec<WarpTimeline> =
            (0..4).map(|i| mk_timeline(i, 3, &[MemLevel::L2, MemLevel::Hbm], 2)).collect();
        let once = schedule(&warps, &c);
        let mut twice = once.clone();
        twice.merge(&once);
        assert_eq!(twice.makespan_ticks, 2 * once.makespan_ticks);
        assert_eq!(twice.busy_ticks, 2 * once.busy_ticks);
        assert_eq!(twice.resident_ticks, 2 * once.resident_ticks);
        assert_eq!(twice.sms_used, once.sms_used);
        let p = twice.phase("body").unwrap();
        let q = once.phase("body").unwrap();
        assert_eq!(p.issue_ticks, 2 * q.issue_ticks);
        assert_eq!(p.stall_ticks, 2 * q.stall_ticks);
        // Occupancy is invariant under self-merge (both numerator and
        // denominator double).
        assert!((twice.occupancy() - once.occupancy()).abs() < 1e-12);
    }

    /// The recorder's finish() seals the clock; replaying a recorded
    /// timeline consumes exactly its instruction count in issue ticks.
    #[test]
    fn recorder_roundtrip_preserves_instruction_count() {
        let t = mk_timeline(7, 5, &[MemLevel::L1, MemLevel::Hbm, MemLevel::L2], 4);
        assert_eq!(t.total_instructions, 3 * 6 + 4);
        assert_eq!(t.warp_id, 7);
        let r = schedule(std::slice::from_ref(&t), &cfg(1, 1));
        assert_eq!(r.issue_ticks(), t.total_instructions * 10);
    }
}

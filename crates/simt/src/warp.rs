//! The warp execution context.
//!
//! A [`Warp`] bundles the simulated device memory arena, the per-warp view
//! of the memory hierarchy, and instruction counters. Kernel code calls its
//! methods the way CUDA code executes instructions:
//!
//! * [`Warp::iop`] — integer arithmetic (hashing, comparisons, index math),
//! * [`Warp::load_u32`] / [`Warp::store_u32`] / byte variants — global
//!   memory accesses, coalesced across the active mask,
//! * [`Warp::atomic_cas_u32`] / [`Warp::atomic_add_u32`] — global atomics
//!   with address-conflict serialization,
//! * collectives in [`crate::collectives`].

use crate::counters::WarpCounters;
use crate::fault::InjectedFaults;
use crate::lanevec::LaneVec;
use crate::mask::Mask;
use crate::mem::GlobalMem;
use crate::san::{SanKind, SanReport, SanState, SanitizerConfig};
use crate::sched::{TimelineRecorder, WarpTimeline};
use crate::trace::{EventKind, TraceSink, WarpTrace};
use memhier::{
    coalesce_sectors_into, AccessKind, Addr, CoalesceResult, HierarchyConfig, MemHierarchy,
};

/// How a [`Warp`] executes its per-lane interpreter loops.
///
/// All modes are **bit-identical** in everything a kernel can observe:
/// results, counters, traces and sanitizer reports. They differ only in
/// host-side simulation cost and in what is *additionally* observed.
/// `Scalar` keeps the reference implementation (every scalar helper expands
/// to a whole-warp [`LaneVec`] operation with a one-lane mask) as a
/// measurable baseline; `Vectorized` — the default — routes single-lane
/// accesses through a direct fast path and resolves each warp-wide access
/// in one batched pass over the coalesced sector set. `Scheduled` executes
/// exactly like `Vectorized` but additionally records a per-warp
/// [`crate::sched::WarpTimeline`] (memory instructions annotated with the
/// hierarchy level they resolved at) for the post-launch event-driven
/// scheduler replay (see [`crate::sched`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Reference per-lane interpretation (the pre-vectorization baseline).
    Scalar,
    /// Batched whole-warp execution (the fast path).
    #[default]
    Vectorized,
    /// Batched execution plus timeline recording for the event-driven
    /// multi-warp scheduler ([`crate::sched`]).
    Scheduled,
}

/// Execution context for a single warp.
#[derive(Debug)]
pub struct Warp {
    width: u32,
    /// Scalar-vs-batched dispatch for the interpreter hot path.
    exec: ExecMode,
    /// The warp's slice of simulated device memory.
    pub mem: GlobalMem,
    hier: MemHierarchy,
    /// Instruction/divergence counters, updated by every issued instruction.
    pub counters: WarpCounters,
    /// Optional trace sink; `None` (the default) costs one branch per
    /// *traced call site*, never per `iop`.
    trace: Option<Box<TraceSink>>,
    /// Scratch buffer for warp-wide coalescing: one memory instruction =
    /// one coalesce pass, so reusing this buffer keeps the access hot path
    /// allocation-free at steady state (its capacity survives pool reuse).
    co_scratch: CoalesceResult,
    /// Armed fault-injection flags (see [`crate::fault`]); cleared by
    /// [`Warp::reset`].
    injected: InjectedFaults,
    /// Optional warp sanitizer; `None` (the default) costs one branch per
    /// instrumented call site and models zero instructions, like `trace`.
    san: Option<Box<SanState>>,
    /// Optional timeline recorder for [`ExecMode::Scheduled`]; like `trace`
    /// and `san`, purely observational — zero modeled instructions.
    recorder: Option<Box<TimelineRecorder>>,
}

impl Warp {
    /// A new warp of `width` lanes in front of the given hierarchy.
    pub fn new(width: u32, hier_cfg: HierarchyConfig) -> Self {
        assert!(
            (1..=crate::MAX_LANES as u32).contains(&width),
            "warp width {width} out of range"
        );
        Warp {
            width,
            exec: ExecMode::default(),
            mem: GlobalMem::new(),
            hier: MemHierarchy::new(hier_cfg),
            counters: WarpCounters::new(width),
            trace: None,
            co_scratch: CoalesceResult::default(),
            injected: InjectedFaults::default(),
            san: None,
            recorder: None,
        }
    }

    /// Rewind this warp for reuse by another job (the pooled launch path in
    /// [`crate::grid`]): counters re-zeroed, the memory arena reset (its
    /// backing buffer kept), caches made cold under `hier_cfg`, any trace
    /// sink detached. The resulting state is observationally identical to
    /// `Warp::new(width, hier_cfg)` — pooled launches must stay
    /// bit-identical to fresh ones.
    pub fn reset(&mut self, width: u32, hier_cfg: HierarchyConfig) {
        assert!(
            (1..=crate::MAX_LANES as u32).contains(&width),
            "warp width {width} out of range"
        );
        self.width = width;
        self.exec = ExecMode::default();
        self.mem.reset();
        self.hier.reconfigure(hier_cfg);
        self.counters = WarpCounters::new(width);
        self.trace = None;
        self.injected = InjectedFaults::default();
        self.san = None;
        self.recorder = None;
    }

    /// Select the interpreter execution mode (see [`ExecMode`]). Modes are
    /// bit-identical in all modeled state; this only trades host-side
    /// simulation speed.
    pub fn set_exec(&mut self, exec: ExecMode) {
        self.exec = exec;
    }

    /// The current interpreter execution mode.
    pub fn exec(&self) -> ExecMode {
        self.exec
    }

    /// Arm the injected hash-table-full fault (see [`crate::fault`]).
    pub fn inject_table_full(&mut self) {
        self.injected.table_full = true;
    }

    /// Arm the injected walk-watchdog fault (see [`crate::fault`]).
    pub fn inject_watchdog(&mut self) {
        self.injected.watchdog = true;
    }

    /// Arm the injected table squeeze: staging divides the hash table's
    /// main region by `divisor` (see [`crate::fault`]).
    pub fn inject_table_squeeze(&mut self, divisor: u32) {
        self.injected.table_squeeze = divisor.max(2);
    }

    /// Arm the injected mid-migration resize abort (see [`crate::fault`]).
    pub fn inject_resize_abort(&mut self) {
        self.injected.resize_abort = true;
    }

    /// Current injected-fault flags. Kernel fault checks read these; they
    /// cost nothing on the fault-free path beyond one branch per check
    /// site (never per instruction).
    pub fn injected_faults(&self) -> InjectedFaults {
        self.injected
    }

    /// Attach a [`TraceSink`], enabling span/event recording for this warp.
    pub fn enable_trace(&mut self, warp_id: u64) {
        self.trace = Some(Box::new(TraceSink::new(warp_id)));
    }

    /// Whether a trace sink is attached. Call sites that must *compute*
    /// an event payload (e.g. count probe rounds into a local) can skip
    /// that work when this is false.
    pub fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// Enter a named phase (no-op without a sink or recorder). Phases nest;
    /// every enter must be matched by a [`Warp::phase_exit`] with the same
    /// name.
    pub fn phase_enter(&mut self, name: &'static str) {
        if self.trace.is_some() {
            let now = self.counters.warp_instructions;
            let snap = self.snapshot();
            self.trace.as_mut().unwrap().enter(name, now, snap);
        }
        if let Some(r) = self.recorder.as_deref_mut() {
            r.record_phase_enter(name, self.counters.warp_instructions);
        }
    }

    /// Exit the innermost phase, which must be named `name` (no-op
    /// without a sink or recorder).
    pub fn phase_exit(&mut self, name: &'static str) {
        if self.trace.is_some() {
            let now = self.counters.warp_instructions;
            let snap = self.snapshot();
            self.trace.as_mut().unwrap().exit(name, now, snap);
        }
        if let Some(r) = self.recorder.as_deref_mut() {
            r.record_phase_exit(self.counters.warp_instructions);
        }
    }

    /// Record an instantaneous event (no-op without a sink).
    pub fn trace_event(&mut self, kind: EventKind) {
        let now = self.counters.warp_instructions;
        if let Some(t) = self.trace.as_mut() {
            t.event(kind, now);
        }
    }

    /// Detach and seal the trace, if one was enabled. Call after
    /// [`Warp::finish`]; panics if a phase is still open.
    pub fn take_trace(&mut self) -> Option<WarpTrace> {
        let width = self.width;
        self.trace.take().map(|t| t.finish(width))
    }

    /// Attach a [`TimelineRecorder`], enabling per-instruction timeline
    /// recording for the scheduler replay. The grid launcher attaches one
    /// automatically when launching under [`ExecMode::Scheduled`].
    pub fn enable_recorder(&mut self, warp_id: u64) {
        self.recorder = Some(Box::new(TimelineRecorder::new(warp_id)));
    }

    /// Whether a timeline recorder is attached.
    pub fn recording(&self) -> bool {
        self.recorder.is_some()
    }

    /// Detach and seal the recorded timeline, if a recorder was attached.
    /// The timeline's total instruction count is the warp clock at this
    /// moment, so call after the kernel body completes.
    pub fn take_timeline(&mut self) -> Option<WarpTimeline> {
        let total = self.counters.warp_instructions;
        self.recorder.take().map(|r| r.finish(total))
    }

    /// Attach the warp sanitizer (see [`crate::san`]). A config with no
    /// check family armed attaches nothing, keeping the run's fast path.
    pub fn enable_sanitizer(&mut self, cfg: SanitizerConfig) {
        if cfg.enabled() {
            self.san = Some(Box::new(SanState::new(cfg)));
        }
    }

    /// Whether a sanitizer is attached. Kernel call sites that must
    /// *compute* a check input host-side (e.g. scan the hash table for
    /// invariants) can skip that work when this is false.
    pub fn sanitizing(&self) -> bool {
        self.san.is_some()
    }

    /// The attached sanitizer's config; all-off when none is attached.
    pub fn san_config(&self) -> SanitizerConfig {
        self.san.as_ref().map(|s| s.config()).unwrap_or_default()
    }

    /// Record a kernel-level sanitizer diagnostic (probe wrap, hash-table
    /// invariant violations). No-op without a sanitizer, and gated on the
    /// config wanting the kind — call sites never branch on the config.
    pub fn san_record(&mut self, kind: SanKind) {
        if let Some(s) = self.san.as_deref_mut() {
            s.record(self.counters.warp_instructions, kind);
        }
        self.san_drain_events();
    }

    /// Detach the sanitizer and seal its report, if one was attached.
    pub fn take_san_report(&mut self) -> Option<SanReport> {
        self.san.take().map(|s| s.into_report())
    }

    /// Collective hook: mask-width check + ordering-epoch advance.
    pub(crate) fn san_collective(&mut self, name: &'static str, mask: Mask) {
        if let Some(s) = self.san.as_deref_mut() {
            s.collective(self.counters.warp_instructions, name, mask, self.width);
        }
        self.san_drain_events();
    }

    /// Shuffle-source hook: out-of-range / inactive source lane checks.
    pub(crate) fn san_shfl(&mut self, mask: Mask, src: u32) {
        if let Some(s) = self.san.as_deref_mut() {
            s.shfl_src(self.counters.warp_instructions, mask, src, self.width);
        }
        self.san_drain_events();
    }

    /// Barrier hook: divergence check (`Some(mask)` only) + epoch advance.
    pub(crate) fn san_barrier(&mut self, mask: Option<Mask>) {
        if let Some(s) = self.san.as_deref_mut() {
            s.barrier(self.counters.warp_instructions, mask, self.width);
        }
        self.san_drain_events();
    }

    /// Emit queued sanitizer findings as trace events. Queued names are
    /// drained even without a trace sink so the buffer cannot grow.
    fn san_drain_events(&mut self) {
        if !self.san.as_ref().is_some_and(|s| s.has_pending()) {
            return;
        }
        let pending = match self.san.as_deref_mut() {
            Some(s) => s.take_pending(),
            None => return,
        };
        for check in pending {
            self.trace_event(EventKind::SanFinding { check });
        }
    }

    /// HBM transaction counts before a traced memory access
    /// (`None` when tracing is off — the common, free path).
    #[inline]
    fn hbm_pre(&self) -> Option<(u64, u64)> {
        self.trace.as_ref().map(|_| {
            let s = self.hier.stats();
            (s.hbm_read_transactions, s.hbm_write_transactions)
        })
    }

    /// Emit an [`EventKind::HbmTx`] if the access since `pre` reached HBM.
    #[inline]
    fn hbm_post(&mut self, pre: Option<(u64, u64)>) {
        if let Some((r0, w0)) = pre {
            let s = self.hier.stats();
            let (read, write) = (s.hbm_read_transactions - r0, s.hbm_write_transactions - w0);
            if read + write > 0 {
                self.trace_event(EventKind::HbmTx { read, write });
            }
        }
    }

    /// Warp width (32 CUDA / 64 HIP wavefront / 16 SYCL sub-group).
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The full active mask for this warp.
    pub fn full_mask(&self) -> Mask {
        Mask::full(self.width)
    }

    /// Issue `n` integer warp instructions under `mask`.
    ///
    /// Cost model: every instruction is issued warp-wide (hardware lockstep),
    /// so INTOPs grow by `n × width` regardless of how many lanes are
    /// active; the active count only feeds the utilization statistic.
    #[inline]
    pub fn iop(&mut self, mask: Mask, n: u64) {
        self.counters.warp_instructions += n;
        self.counters.int_instructions += n;
        let active = mask.count();
        self.counters.lane_int_ops += n * active as u64;
        // Divergence profile: bucket by active-lane quartile.
        let q = ((4 * active).div_ceil(self.width).clamp(1, 4) - 1) as usize;
        self.counters.occupancy_quartiles[q] += n;
        if let Some(s) = self.san.as_deref_mut() {
            s.note_active(mask);
        }
    }

    fn mem_access(&mut self, mask: Mask, addrs: &LaneVec<Addr>, size: u32, kind: AccessKind) {
        let pre = self.hbm_pre();
        coalesce_sectors_into(&mut self.co_scratch, addrs.iter_masked(mask).map(|(_, a)| (a, size)));
        let level = match self.exec {
            ExecMode::Scalar => self.hier.access(&self.co_scratch, kind),
            ExecMode::Vectorized | ExecMode::Scheduled => {
                self.hier.access_batched(&self.co_scratch, kind)
            }
        };
        self.counters.warp_instructions += 1;
        if let Some(r) = self.recorder.as_deref_mut() {
            r.record_mem(self.counters.warp_instructions, level);
        }
        self.hbm_post(pre);
        if let Some(s) = self.san.as_deref_mut() {
            let at = self.counters.warp_instructions;
            s.lint_access(at, self.co_scratch.transactions(), self.co_scratch.lane_accesses);
            s.mem_op(at, mask, addrs.iter_masked(mask), size, kind == AccessKind::Write);
            self.san_drain_events();
        }
    }

    /// One single-lane memory access on the vectorized fast path.
    ///
    /// Models exactly what the whole-warp path does with a one-lane mask —
    /// same coalescing, hierarchy traffic, instruction count, trace events
    /// and sanitizer behaviour (for a single lane, `SanState::mem_op` and
    /// `SanState::scalar_op` are equivalent, and the uncoalesced lint can
    /// never fire below `LINT_MIN_LANES`) — without constructing the
    /// `LaneVec`s the scalar reference path pays for per access.
    fn scalar_access(&mut self, lane: u32, addr: Addr, size: u32, kind: AccessKind) {
        debug_assert!((lane as usize) < crate::MAX_LANES, "lane index {lane} out of range");
        let pre = self.hbm_pre();
        coalesce_sectors_into(&mut self.co_scratch, [(addr, size)]);
        let level = match self.exec {
            ExecMode::Scalar => self.hier.access(&self.co_scratch, kind),
            ExecMode::Vectorized | ExecMode::Scheduled => {
                self.hier.access_batched(&self.co_scratch, kind)
            }
        };
        self.counters.warp_instructions += 1;
        if let Some(r) = self.recorder.as_deref_mut() {
            r.record_mem(self.counters.warp_instructions, level);
        }
        self.hbm_post(pre);
        if let Some(s) = self.san.as_deref_mut() {
            let at = self.counters.warp_instructions;
            s.lint_access(at, self.co_scratch.transactions(), self.co_scratch.lane_accesses);
            s.scalar_op(at, lane, addr, size, kind == AccessKind::Write);
            self.san_drain_events();
        }
    }

    /// Warp-wide 32-bit load. Inactive lanes read as 0.
    pub fn load_u32(&mut self, mask: Mask, addrs: &LaneVec<Addr>) -> LaneVec<u32> {
        self.mem_access(mask, addrs, 4, AccessKind::Read);
        let mut out = LaneVec::splat(0u32);
        for (l, a) in addrs.iter_masked(mask) {
            out[l] = self.mem.read_u32(a);
        }
        out
    }

    /// Warp-wide 32-bit load whose value the kernel discards (the access
    /// is issued for its modeled memory traffic; the semantic bytes are
    /// read elsewhere host-side). Models exactly what [`Warp::load_u32`]
    /// models — same instruction count, coalescing, hierarchy traffic,
    /// trace and sanitizer behaviour. The scalar reference path still
    /// materializes the lane values like the original interpreter; the
    /// vectorized path skips the dead value assembly.
    pub fn touch_u32(&mut self, mask: Mask, addrs: &LaneVec<Addr>) {
        if self.exec == ExecMode::Scalar {
            let _ = self.load_u32(mask, addrs);
            return;
        }
        self.mem_access(mask, addrs, 4, AccessKind::Read);
    }

    /// [`Warp::touch_u32`] with a per-lane address function instead of a
    /// materialized [`LaneVec`]. The vectorized path streams `addr_of`
    /// straight into the coalescer — no 8-byte-per-lane vector is built for
    /// an access whose value the kernel discards; the scalar reference path
    /// (and any sanitized run, which wants the full per-lane address view)
    /// materializes the vector and takes the [`Warp::touch_u32`] route,
    /// charging identical modeled state either way.
    pub fn touch_u32_with(&mut self, mask: Mask, addr_of: impl Fn(u32) -> Addr) {
        if self.exec == ExecMode::Scalar || self.san.is_some() {
            let addrs = LaneVec::from_fn(self.width, &addr_of);
            self.touch_u32(mask, &addrs);
            return;
        }
        let pre = self.hbm_pre();
        coalesce_sectors_into(&mut self.co_scratch, mask.lanes().map(|l| (addr_of(l), 4)));
        let level = match self.exec {
            ExecMode::Scalar => self.hier.access(&self.co_scratch, AccessKind::Read),
            ExecMode::Vectorized | ExecMode::Scheduled => {
                self.hier.access_batched(&self.co_scratch, AccessKind::Read)
            }
        };
        self.counters.warp_instructions += 1;
        if let Some(r) = self.recorder.as_deref_mut() {
            r.record_mem(self.counters.warp_instructions, level);
        }
        self.hbm_post(pre);
    }

    /// Warp-wide 32-bit store.
    pub fn store_u32(&mut self, mask: Mask, addrs: &LaneVec<Addr>, vals: &LaneVec<u32>) {
        self.mem_access(mask, addrs, 4, AccessKind::Write);
        for (l, a) in addrs.iter_masked(mask) {
            self.mem.write_u32(a, vals[l]);
        }
    }

    /// Warp-wide byte load. Inactive lanes read as 0.
    pub fn load_u8(&mut self, mask: Mask, addrs: &LaneVec<Addr>) -> LaneVec<u8> {
        self.mem_access(mask, addrs, 1, AccessKind::Read);
        let mut out = LaneVec::splat(0u8);
        for (l, a) in addrs.iter_masked(mask) {
            out[l] = self.mem.read_u8(a);
        }
        out
    }

    /// Warp-wide byte store.
    pub fn store_u8(&mut self, mask: Mask, addrs: &LaneVec<Addr>, vals: &LaneVec<u8>) {
        self.mem_access(mask, addrs, 1, AccessKind::Write);
        for (l, a) in addrs.iter_masked(mask) {
            self.mem.write_u8(a, vals[l]);
        }
    }

    /// Single-lane 32-bit load (a divergent branch where one lane walks).
    pub fn load_u32_scalar(&mut self, lane: u32, addr: Addr) -> u32 {
        if self.exec == ExecMode::Scalar {
            let addrs = {
                let mut a = LaneVec::splat(0u64);
                a[lane] = addr;
                a
            };
            let out = self.load_u32(Mask::lane(lane), &addrs);
            return out[lane];
        }
        self.scalar_access(lane, addr, 4, AccessKind::Read);
        self.mem.read_u32(addr)
    }

    /// Single-lane byte load.
    pub fn load_u8_scalar(&mut self, lane: u32, addr: Addr) -> u8 {
        if self.exec == ExecMode::Scalar {
            let addrs = {
                let mut a = LaneVec::splat(0u64);
                a[lane] = addr;
                a
            };
            let out = self.load_u8(Mask::lane(lane), &addrs);
            return out[lane];
        }
        self.scalar_access(lane, addr, 1, AccessKind::Read);
        self.mem.read_u8(addr)
    }

    /// Single-lane 32-bit store.
    pub fn store_u32_scalar(&mut self, lane: u32, addr: Addr, v: u32) {
        if self.exec == ExecMode::Scalar {
            let addrs = {
                let mut a = LaneVec::splat(0u64);
                a[lane] = addr;
                a
            };
            let mut vals = LaneVec::splat(0u32);
            vals[lane] = v;
            self.store_u32(Mask::lane(lane), &addrs, &vals);
            return;
        }
        self.scalar_access(lane, addr, 4, AccessKind::Write);
        self.mem.write_u32(addr, v);
    }

    /// Single-lane 64-bit load (one instruction, 8-byte access).
    pub fn load_u64_scalar(&mut self, lane: u32, addr: Addr) -> u64 {
        self.scalar_access(lane, addr, 8, AccessKind::Read);
        self.mem.read_u64(addr)
    }

    /// Single-lane 64-bit store (one instruction, 8-byte access).
    pub fn store_u64_scalar(&mut self, lane: u32, addr: Addr, v: u64) {
        self.scalar_access(lane, addr, 8, AccessKind::Write);
        self.mem.write_u64(addr, v);
    }

    /// Single-lane byte store.
    pub fn store_u8_scalar(&mut self, lane: u32, addr: Addr, v: u8) {
        if self.exec == ExecMode::Scalar {
            let addrs = {
                let mut a = LaneVec::splat(0u64);
                a[lane] = addr;
                a
            };
            let mut vals = LaneVec::splat(0u8);
            vals[lane] = v;
            self.store_u8(Mask::lane(lane), &addrs, &vals);
            return;
        }
        self.scalar_access(lane, addr, 1, AccessKind::Write);
        self.mem.write_u8(addr, v);
    }

    /// `atomicCAS` on 32-bit words: for each active lane, if `*addr == cmp`
    /// then `*addr = new`; returns the old value per lane.
    ///
    /// Lanes are processed in ascending order (hardware serializes
    /// conflicting atomics; the order is unspecified there, ascending here
    /// for determinism). Each *unique address beyond the first* costs one
    /// replay instruction, modeling atomic serialization.
    pub fn atomic_cas_u32(
        &mut self,
        mask: Mask,
        addrs: &LaneVec<Addr>,
        cmp: &LaneVec<u32>,
        new: &LaneVec<u32>,
    ) -> LaneVec<u32> {
        self.atomic_traffic(mask, addrs);
        let mut out = LaneVec::splat(0u32);
        for (l, a) in addrs.iter_masked(mask) {
            let old = self.mem.read_u32(a);
            if old == cmp[l] {
                self.mem.write_u32(a, new[l]);
            }
            out[l] = old;
        }
        out
    }

    /// `atomicAdd` on 32-bit words; returns the old value per lane.
    pub fn atomic_add_u32(
        &mut self,
        mask: Mask,
        addrs: &LaneVec<Addr>,
        vals: &LaneVec<u32>,
    ) -> LaneVec<u32> {
        self.atomic_traffic(mask, addrs);
        let mut out = LaneVec::splat(0u32);
        for (l, a) in addrs.iter_masked(mask) {
            let old = self.mem.read_u32(a);
            self.mem.write_u32(a, old.wrapping_add(vals[l]));
            out[l] = old;
        }
        out
    }

    /// `atomicAdd` whose return value the kernel discards (counter bumps,
    /// vote accumulation). Models exactly what [`Warp::atomic_add_u32`]
    /// models — same traffic, serialization replays and memory effects.
    /// The scalar reference path still materializes the old values like
    /// the original interpreter; the vectorized path skips the dead
    /// result assembly.
    pub fn atomic_add_u32_discard(&mut self, mask: Mask, addrs: &LaneVec<Addr>, vals: &LaneVec<u32>) {
        if self.exec == ExecMode::Scalar {
            let _ = self.atomic_add_u32(mask, addrs, vals);
            return;
        }
        self.atomic_traffic(mask, addrs);
        for (l, a) in addrs.iter_masked(mask) {
            let old = self.mem.read_u32(a);
            self.mem.write_u32(a, old.wrapping_add(vals[l]));
        }
    }

    fn atomic_traffic(&mut self, mask: Mask, addrs: &LaneVec<Addr>) {
        let pre = self.hbm_pre();
        coalesce_sectors_into(&mut self.co_scratch, addrs.iter_masked(mask).map(|(_, a)| (a, 4)));
        let unique_sectors = self.co_scratch.transactions();
        let level = self.hier.access_atomic(&self.co_scratch);
        self.counters.atomic_instructions += 1;
        self.counters.warp_instructions += 1;
        if unique_sectors > 1 {
            let replays = unique_sectors - 1;
            self.counters.atomic_replays += replays;
            self.counters.warp_instructions += replays;
        }
        // Record after replay accounting: the atomic (plus its serialization
        // replays) occupies the issue port until the final post-increment
        // clock, then the warp stalls for the returned level's latency.
        if let Some(r) = self.recorder.as_deref_mut() {
            r.record_mem(self.counters.warp_instructions, level);
        }
        self.hbm_post(pre);
        // Atomics are exempt from the race shadow (the machine serializes
        // them), but their lanes still count as active for the divergence
        // check.
        if let Some(s) = self.san.as_deref_mut() {
            s.note_active(mask);
        }
    }

    /// A mid-kernel counter snapshot (memory stats included, without
    /// flushing the caches). Used for per-phase attribution: take one
    /// snapshot at a phase boundary and compute the next phase with
    /// [`WarpCounters::since`]-style arithmetic.
    pub fn snapshot(&self) -> WarpCounters {
        let mut c = self.counters;
        c.mem = *self.hier.stats();
        c
    }

    /// Finish the warp: flush dirty data to HBM and fold memory stats into
    /// the counters. Returns the final counter snapshot.
    pub fn finish(&mut self) -> WarpCounters {
        self.hier.flush();
        self.counters.mem = self.hier.take_stats();
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memhier::config::SECTOR_BYTES;

    fn warp() -> Warp {
        Warp::new(32, HierarchyConfig::tiny())
    }

    #[test]
    fn iop_counts_warp_level() {
        let mut w = warp();
        let half = Mask(0xffff); // 16 of 32 lanes
        w.iop(half, 10);
        assert_eq!(w.counters.int_instructions, 10);
        assert_eq!(w.counters.intops(), 320, "predication does not reduce INTOPs");
        assert_eq!(w.counters.lane_int_ops, 160);
        assert!((w.counters.lane_utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn coalesced_load_roundtrip() {
        let mut w = warp();
        let base = w.mem.alloc(4 * 32);
        for i in 0..32u32 {
            w.mem.write_u32(base + 4 * i as u64, i * 7);
        }
        let addrs = LaneVec::from_fn(32, |l| base + 4 * l as u64);
        let vals = w.load_u32(w.full_mask(), &addrs);
        assert_eq!(vals[0], 0);
        assert_eq!(vals[31], 31 * 7);
        // 128 consecutive bytes = at most 5 sectors (alignment) → few HBM reads.
        let c = w.finish();
        assert!(c.mem.hbm_read_transactions <= 5);
        assert_eq!(c.mem.mem_instructions, 1);
    }

    #[test]
    fn scattered_load_moves_more_bytes() {
        let run = |stride: u64| {
            let mut w = warp();
            let base = w.mem.alloc(stride * 32 + 4);
            let addrs = LaneVec::from_fn(32, |l| base + stride * l as u64);
            let _ = w.load_u32(w.full_mask(), &addrs);
            w.finish().mem.hbm_bytes()
        };
        let coalesced = run(4);
        let scattered = run(SECTOR_BYTES * 4);
        assert!(scattered >= 4 * coalesced, "{scattered} vs {coalesced}");
    }

    #[test]
    fn store_then_load_sees_value() {
        let mut w = warp();
        let base = w.mem.alloc(128);
        let addrs = LaneVec::from_fn(32, |l| base + 4 * l as u64);
        let vals = LaneVec::from_fn(32, |l| l * 3);
        w.store_u32(w.full_mask(), &addrs, &vals);
        let back = w.load_u32(w.full_mask(), &addrs);
        assert_eq!(back[10], 30);
    }

    #[test]
    fn masked_lanes_do_not_touch_memory() {
        let mut w = warp();
        let base = w.mem.alloc(128);
        let addrs = LaneVec::from_fn(32, |l| base + 4 * l as u64);
        let vals = LaneVec::splat(9u32);
        w.store_u32(Mask::lane(3), &addrs, &vals);
        assert_eq!(w.mem.read_u32(base + 12), 9);
        assert_eq!(w.mem.read_u32(base + 16), 0, "inactive lane wrote nothing");
    }

    #[test]
    fn atomic_cas_semantics() {
        let mut w = warp();
        let a = w.mem.alloc(4);
        // All 32 lanes CAS the same address from 0 to lane-specific values:
        // only lane 0 (processed first) wins.
        let addrs = LaneVec::splat(a);
        let cmp = LaneVec::splat(0u32);
        let new = LaneVec::from_fn(32, |l| l + 100);
        let old = w.atomic_cas_u32(w.full_mask(), &addrs, &cmp, &new);
        assert_eq!(old[0], 0, "lane 0 saw EMPTY and won");
        assert_eq!(old[1], 100, "lane 1 saw lane 0's value");
        assert_eq!(w.mem.read_u32(a), 100);
        assert_eq!(w.counters.atomic_replays, 0, "same sector: no replay");
    }

    #[test]
    fn atomic_conflicting_sectors_replay() {
        let mut w = warp();
        let base = w.mem.alloc(SECTOR_BYTES * 32);
        let addrs = LaneVec::from_fn(32, |l| base + SECTOR_BYTES * l as u64);
        let vals = LaneVec::splat(1u32);
        w.atomic_add_u32(w.full_mask(), &addrs, &vals);
        assert_eq!(w.counters.atomic_instructions, 1);
        assert_eq!(w.counters.atomic_replays, 31);
    }

    #[test]
    fn atomic_add_accumulates() {
        let mut w = warp();
        let a = w.mem.alloc(4);
        let addrs = LaneVec::splat(a);
        let vals = LaneVec::splat(2u32);
        w.atomic_add_u32(w.full_mask(), &addrs, &vals);
        assert_eq!(w.mem.read_u32(a), 64, "32 lanes × 2");
    }

    #[test]
    fn scalar_helpers() {
        let mut w = warp();
        let a = w.mem.alloc(8);
        w.store_u8_scalar(5, a, 0xAB);
        assert_eq!(w.load_u8_scalar(5, a), 0xAB);
        w.mem.write_u32(a + 4, 123);
        assert_eq!(w.load_u32_scalar(0, a + 4), 123);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_rejected() {
        Warp::new(0, HierarchyConfig::tiny());
    }

    #[test]
    fn exec_modes_are_bit_identical() {
        // Same instruction stream under Scalar and Vectorized dispatch:
        // results, counters, traces and sanitizer reports must all match.
        let run = |exec: ExecMode| {
            let mut w = warp();
            w.set_exec(exec);
            w.enable_trace(7);
            w.enable_sanitizer(SanitizerConfig::all());
            let base = w.mem.alloc(4 * 32);
            let addrs = LaneVec::from_fn(32, |l| base + 4 * l as u64);
            let vals = LaneVec::from_fn(32, |l| l * 3);
            w.store_u32(w.full_mask(), &addrs, &vals);
            let loaded = w.load_u32(w.full_mask(), &addrs);
            w.store_u32_scalar(0, base, 9);
            let a = w.load_u32_scalar(0, base);
            w.store_u8_scalar(1, base + 40, 5);
            let b = w.load_u8_scalar(1, base + 40);
            w.store_u64_scalar(2, base + 48, 77);
            let c = w.load_u64_scalar(2, base + 48);
            let counters = w.finish();
            (loaded, a, b, c, counters, w.take_trace(), w.take_san_report())
        };
        let scalar = run(ExecMode::Scalar);
        let vectorized = run(ExecMode::Vectorized);
        let scheduled = run(ExecMode::Scheduled);
        assert_eq!(scalar, vectorized);
        assert_eq!(scalar, scheduled);
    }

    #[test]
    fn recorder_captures_mem_events_and_phases() {
        let mut w = warp();
        w.set_exec(ExecMode::Scheduled);
        w.enable_recorder(3);
        assert!(w.recording());
        let base = w.mem.alloc(4 * 32);
        let addrs = LaneVec::from_fn(32, |l| base + 4 * l as u64);
        w.phase_enter("io");
        let _ = w.load_u32(w.full_mask(), &addrs); // cold → HBM
        let _ = w.load_u32(w.full_mask(), &addrs); // warm → L1
        w.phase_exit("io");
        w.iop(w.full_mask(), 5);
        w.finish();
        let t = w.take_timeline().unwrap();
        assert_eq!(t.warp_id, 3);
        assert_eq!(t.total_instructions, w.counters.warp_instructions);
        let mems: Vec<_> = t
            .events
            .iter()
            .filter_map(|e| match *e {
                crate::sched::TimelineEvent::Mem { at, level } => Some((at, level)),
                _ => None,
            })
            .collect();
        assert_eq!(mems.len(), 2);
        assert_eq!(mems[0], (1, memhier::MemLevel::Hbm), "cold load misses to HBM");
        assert_eq!(mems[1], (2, memhier::MemLevel::L1), "warm load hits in L1");
        assert!(w.take_timeline().is_none(), "recorder detaches on take");
    }

    #[test]
    fn reset_detaches_the_recorder() {
        let mut w = warp();
        w.enable_recorder(0);
        w.reset(32, HierarchyConfig::tiny());
        assert!(!w.recording());
        assert!(w.take_timeline().is_none());
    }

    #[test]
    fn finish_flushes_writes() {
        let mut w = warp();
        let a = w.mem.alloc(4);
        let addrs = LaneVec::splat(a);
        let vals = LaneVec::splat(7u32);
        w.store_u32(Mask::lane(0), &addrs, &vals);
        let c = w.finish();
        assert!(c.mem.hbm_write_transactions >= 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// atomic_add over arbitrary lane subsets accumulates exactly the
        /// sum of active lanes' values.
        #[test]
        fn atomic_add_sums(mask_bits in 0u64..(1u64 << 32), vals in proptest::collection::vec(0u32..1000, 32)) {
            let mut w = Warp::new(32, HierarchyConfig::tiny());
            let a = w.mem.alloc(4);
            let addrs = LaneVec::splat(a);
            let v = LaneVec::from_fn(32, |l| vals[l as usize]);
            let mask = Mask(mask_bits & 0xffff_ffff);
            w.atomic_add_u32(mask, &addrs, &v);
            let expect: u32 = mask.lanes().map(|l| vals[l as usize]).sum();
            prop_assert_eq!(w.mem.read_u32(a), expect);
        }

        /// Exactly one lane wins a contended CAS from EMPTY, and it is the
        /// lowest active lane (deterministic serialization order).
        #[test]
        fn cas_single_winner(mask_bits in 1u64..(1u64 << 32)) {
            let mut w = Warp::new(32, HierarchyConfig::tiny());
            let a = w.mem.alloc(4);
            let addrs = LaneVec::splat(a);
            let cmp = LaneVec::splat(0u32);
            let new = LaneVec::from_fn(32, |l| l + 1);
            let mask = Mask(mask_bits & 0xffff_ffff);
            let old = w.atomic_cas_u32(mask, &addrs, &cmp, &new);
            let winner = mask.first().unwrap();
            prop_assert_eq!(old[winner], 0);
            prop_assert_eq!(w.mem.read_u32(a), winner + 1);
            for l in mask.lanes().skip(1) {
                prop_assert_eq!(old[l], winner + 1, "losers observe the winner's value");
            }
        }

        /// Loads return exactly what memory holds, for any mask.
        #[test]
        fn load_faithful(mask_bits in 0u64..(1u64 << 32), seed in any::<u32>()) {
            let mut w = Warp::new(32, HierarchyConfig::tiny());
            let base = w.mem.alloc(4 * 32);
            for i in 0..32u32 {
                w.mem.write_u32(base + 4 * i as u64, seed.wrapping_mul(i + 1));
            }
            let addrs = LaneVec::from_fn(32, |l| base + 4 * l as u64);
            let mask = Mask(mask_bits & 0xffff_ffff);
            let got = w.load_u32(mask, &addrs);
            for l in mask.lanes() {
                prop_assert_eq!(got[l], seed.wrapping_mul(l + 1));
            }
        }
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::trace::EventKind;

    #[test]
    fn untraced_warp_yields_no_trace() {
        let mut w = Warp::new(32, HierarchyConfig::tiny());
        w.phase_enter("a");
        w.iop(w.full_mask(), 3);
        w.phase_exit("a");
        w.finish();
        assert!(!w.tracing());
        assert!(w.take_trace().is_none(), "phase markers are free no-ops when disabled");
    }

    #[test]
    fn spans_attribute_per_phase_counters() {
        let mut w = Warp::new(32, HierarchyConfig::tiny());
        w.enable_trace(42);
        assert!(w.tracing());
        w.phase_enter("construct");
        w.iop(w.full_mask(), 10);
        w.phase_exit("construct");
        w.phase_enter("walk");
        w.iop(Mask::lane(0), 7);
        w.phase_exit("walk");
        w.finish();
        let t = w.take_trace().unwrap();
        assert_eq!(t.warp_id, 42);
        assert_eq!(t.width, 32);
        assert_eq!(t.phase_names(), vec!["construct", "walk"]);
        assert_eq!(t.spans[0].delta.int_instructions, 10);
        assert_eq!(t.spans[1].delta.int_instructions, 7);
        // The walk phase ran single-lane: all its work in the first quartile.
        assert_eq!(t.spans[1].delta.occupancy_quartiles, [7, 0, 0, 0]);
    }

    #[test]
    fn memory_misses_emit_hbm_events() {
        let mut w = Warp::new(32, HierarchyConfig::tiny());
        w.enable_trace(0);
        let base = w.mem.alloc(4 * 32);
        let addrs = LaneVec::from_fn(32, |l| base + 4 * l as u64);
        let _ = w.load_u32(w.full_mask(), &addrs); // cold: misses to HBM
        let _ = w.load_u32(w.full_mask(), &addrs); // warm: cache hit
        w.finish();
        let t = w.take_trace().unwrap();
        let hbm: Vec<_> = t
            .events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::HbmTx { read, write } => Some((read, write)),
                _ => None,
            })
            .collect();
        assert_eq!(hbm.len(), 1, "only the cold access reaches HBM");
        assert!(hbm[0].0 >= 1, "cold load reads at least one sector");
    }

    #[test]
    fn trace_spans_cover_phase_memory_traffic() {
        let mut w = Warp::new(32, HierarchyConfig::tiny());
        w.enable_trace(0);
        let base = w.mem.alloc(4 * 32);
        let addrs = LaneVec::from_fn(32, |l| base + 4 * l as u64);
        w.phase_enter("io");
        let _ = w.load_u32(w.full_mask(), &addrs);
        w.phase_exit("io");
        w.finish();
        let t = w.take_trace().unwrap();
        let io = &t.spans[0];
        assert_eq!(io.delta.mem.mem_instructions, 1);
        assert!(io.delta.mem.hbm_read_transactions >= 1);
    }
}

#[cfg(test)]
mod divergence_tests {
    use super::*;

    #[test]
    fn iop_buckets_by_active_fraction() {
        let mut w = Warp::new(32, HierarchyConfig::tiny());
        w.iop(Mask::full(32), 10); // 100% → Q4
        w.iop(Mask(0xffff), 5); // 50% → Q2
        w.iop(Mask::lane(0), 3); // 1/32 → Q1
        w.iop(Mask(0xffffff), 2); // 75% → Q3
        assert_eq!(w.counters.occupancy_quartiles, [3, 5, 2, 10]);
    }

    #[test]
    fn single_lane_walk_is_all_first_quartile() {
        // Divergence signature of the mer-walk: one lane of 32 active.
        let mut w = Warp::new(32, HierarchyConfig::tiny());
        w.iop(Mask::lane(5), 100);
        let p = w.counters.divergence_profile();
        assert_eq!(p, [1.0, 0.0, 0.0, 0.0]);
    }
}

//! Deterministic per-device autotuner for the launch-layer knobs.
//!
//! Sweeps `slot_reserve` × `max_batch` × probe strategy for a device on a
//! calibration dataset, scoring every candidate with the perfmodel-backed
//! modeled seconds of a full [`run_local_assembly`] pass — not wall clock,
//! so the sweep is deterministic and machine-independent. The winning
//! choice is cached per (device spec, dataset shape) for the life of the
//! process; repeated calls cost one map lookup.
//!
//! Every swept dimension is extension-invariant: the hash table is a
//! content-addressed set whose insert and lookup share the probe strategy
//! and table size, and batching only changes each launch's modeled L2
//! share. Tuning can therefore never change results, only modeled time —
//! the equivalence tests in this module pin that.

use crate::launch::{run_local_assembly, GpuConfig};
use crate::probe::ProbeStrategy;
use crate::table::TableLayoutKind;
use locassm_core::io::Dataset;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// The candidate grid one tuning pass sweeps (fixed iteration order:
/// reserves, then batch caps, then probe strategies).
#[derive(Debug, Clone)]
pub struct TuneSpace {
    /// Base hash-table slot-reserve multipliers to try.
    pub slot_reserves: Vec<u32>,
    /// Per-launch job caps to try (`None` = whole-side launches).
    pub max_batches: Vec<Option<usize>>,
    /// Probe-cursor strategies to try.
    pub probes: Vec<ProbeStrategy>,
    /// Table layouts to try (see [`crate::table`]).
    pub layouts: Vec<TableLayoutKind>,
    /// In-kernel resize arming to try (see [`crate::resize`]): `false`
    /// keeps the grown-reserve escalation ladder, `true` grows the table
    /// mid-insert and prices the headroom into the arena hint.
    pub resizes: Vec<bool>,
}

impl Default for TuneSpace {
    fn default() -> Self {
        TuneSpace {
            slot_reserves: vec![1, 2],
            max_batches: vec![None, Some(32), Some(128)],
            probes: vec![ProbeStrategy::Linear, ProbeStrategy::Stride2],
            layouts: TableLayoutKind::ALL.to_vec(),
            resizes: vec![false, true],
        }
    }
}

/// The winning configuration of one tuning sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunedChoice {
    pub slot_reserve: u32,
    pub max_batch: Option<usize>,
    pub probe: ProbeStrategy,
    pub layout: TableLayoutKind,
    /// Whether the winner arms in-kernel resizing.
    pub resize: bool,
    /// Modeled seconds of the winner on the calibration dataset.
    pub predicted_seconds: f64,
}

impl TunedChoice {
    /// Write the choice back into a run configuration.
    pub fn apply(&self, cfg: &mut GpuConfig) {
        cfg.slot_reserve = self.slot_reserve;
        cfg.max_batch = self.max_batch;
        cfg.probe = self.probe;
        cfg.layout = self.layout;
        cfg.resize = self.resize;
    }
}

fn cache() -> &'static Mutex<HashMap<String, TunedChoice>> {
    static CACHE: OnceLock<Mutex<HashMap<String, TunedChoice>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Cache key: the full device spec (so a custom what-if spec tunes
/// separately from the stock device), the dataset shape — job count is
/// not enough on its own: two datasets with the same contig count but
/// different read depths want different winners, so the key carries the
/// total reads and total insertions (Σ bases − k + 1 per read) too —
/// and the swept layout and resize axes, so a sweep restricted to a
/// subset of layouts (or to a fixed resize arming) never replays a winner
/// that subset cannot express.
fn cache_key(cfg: &GpuConfig, ds: &Dataset, space: &TuneSpace) -> String {
    let layouts: Vec<&str> = space.layouts.iter().map(|l| l.name()).collect();
    format!(
        "{:?}|{:?}|k={} jobs={} reads={} insertions={}|layouts={}|resizes={:?}",
        cfg.spec(),
        cfg.dialect,
        ds.k,
        ds.jobs.len(),
        ds.total_reads(),
        ds.total_insertions(),
        layouts.join(","),
        space.resizes
    )
}

/// Tune `cfg` in place on a calibration dataset with the default space.
pub fn tune(ds: &Dataset, cfg: &mut GpuConfig) -> TunedChoice {
    let choice = tune_with(ds, cfg, &TuneSpace::default());
    choice.apply(cfg);
    choice
}

/// Sweep `space` for `cfg`'s device on `ds` and return the winner.
///
/// Deterministic: candidates are scored in the space's fixed order and
/// ties go to the earliest candidate (strict `<` improvement), so the
/// paper-default configuration wins unless something genuinely beats it.
pub fn tune_with(ds: &Dataset, cfg: &GpuConfig, space: &TuneSpace) -> TunedChoice {
    let key = cache_key(cfg, ds, space);
    if let Some(hit) = cache().lock().unwrap().get(&key) {
        return *hit;
    }
    let mut best: Option<TunedChoice> = None;
    for &slot_reserve in &space.slot_reserves {
        for &max_batch in &space.max_batches {
            for &probe in &space.probes {
                for &layout in &space.layouts {
                    for &resize in &space.resizes {
                        let mut candidate = cfg.clone();
                        candidate.slot_reserve = slot_reserve;
                        candidate.max_batch = max_batch;
                        candidate.probe = probe;
                        candidate.layout = layout;
                        candidate.resize = resize;
                        let predicted_seconds =
                            run_local_assembly(ds, &candidate).profile.seconds();
                        if best.is_none_or(|b| predicted_seconds < b.predicted_seconds) {
                            best = Some(TunedChoice {
                                slot_reserve,
                                max_batch,
                                probe,
                                layout,
                                resize,
                                predicted_seconds,
                            });
                        }
                    }
                }
            }
        }
    }
    let choice = best.expect("TuneSpace must not be empty");
    cache().lock().unwrap().insert(key, choice);
    choice
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_specs::DeviceId;
    use workloads::paper_dataset;

    fn calib() -> Dataset {
        paper_dataset(21, 0.002, 42)
    }

    #[test]
    fn tuning_is_deterministic_and_cached() {
        let ds = calib();
        let cfg = GpuConfig::for_device(DeviceId::A100);
        let a = tune_with(&ds, &cfg, &TuneSpace::default());
        let b = tune_with(&ds, &cfg, &TuneSpace::default());
        assert_eq!(a, b, "second call must replay the cached winner");
        assert!(a.predicted_seconds > 0.0);
    }

    #[test]
    fn tuned_choice_is_no_worse_than_the_paper_default() {
        // The paper default (reserve 1, whole-side launches, linear probe)
        // is in the default space, so the winner can only match or beat it.
        let ds = calib();
        let cfg = GpuConfig::for_device(DeviceId::Mi250x);
        let base = run_local_assembly(&ds, &cfg).profile.seconds();
        let choice = tune_with(&ds, &cfg, &TuneSpace::default());
        assert!(
            choice.predicted_seconds <= base,
            "winner {} must not regress the default {}",
            choice.predicted_seconds,
            base
        );
    }

    #[test]
    fn every_candidate_in_the_default_space_preserves_extensions() {
        let ds = calib();
        let base_cfg = GpuConfig::for_device(DeviceId::A100);
        let base = run_local_assembly(&ds, &base_cfg);
        let space = TuneSpace::default();
        for &slot_reserve in &space.slot_reserves {
            for &max_batch in &space.max_batches {
                for &probe in &space.probes {
                    for &layout in &space.layouts {
                        for &resize in &space.resizes {
                            let mut cfg = base_cfg.clone();
                            cfg.slot_reserve = slot_reserve;
                            cfg.max_batch = max_batch;
                            cfg.probe = probe;
                            cfg.layout = layout;
                            cfg.resize = resize;
                            let r = run_local_assembly(&ds, &cfg);
                            assert_eq!(
                                r.extensions, base.extensions,
                                "reserve={slot_reserve} batch={max_batch:?} probe={probe:?} \
                                 layout={layout} resize={resize}"
                            );
                            assert!(r.outcomes.iter().all(|o| o.succeeded()));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn tune_applies_the_winner_in_place() {
        let ds = calib();
        let mut cfg = GpuConfig::for_device(DeviceId::Max1550);
        let choice = tune(&ds, &mut cfg);
        assert_eq!(cfg.slot_reserve, choice.slot_reserve);
        assert_eq!(cfg.max_batch, choice.max_batch);
        assert_eq!(cfg.probe, choice.probe);
        assert_eq!(cfg.layout, choice.layout);
        assert_eq!(cfg.resize, choice.resize);
    }

    #[test]
    fn shape_distinct_datasets_tune_independently() {
        // Same job count, different read depth: before the cache key
        // carried totals these two collided and the second dataset
        // replayed the first's winner. A tiny layout-only space keeps the
        // sweep fast while still proving both keys score their own runs.
        let shallow = paper_dataset(21, 0.002, 42);
        let mut deep = paper_dataset(21, 0.002, 42);
        for job in &mut deep.jobs {
            let extra: Vec<_> = job.right_reads.clone();
            job.right_reads.extend(extra);
        }
        assert_eq!(shallow.jobs.len(), deep.jobs.len());
        assert_ne!(shallow.total_reads(), deep.total_reads());
        let cfg = GpuConfig::for_device(DeviceId::A100);
        let space = TuneSpace {
            slot_reserves: vec![1],
            max_batches: vec![None],
            probes: vec![ProbeStrategy::Linear],
            layouts: vec![TableLayoutKind::LinearProbe],
            resizes: vec![false],
        };
        let a = tune_with(&shallow, &cfg, &space);
        let b = tune_with(&deep, &cfg, &space);
        assert_ne!(
            a.predicted_seconds, b.predicted_seconds,
            "deeper dataset must be scored on its own runs, not replayed from cache"
        );
    }
}

//! Ablation benches for the design choices DESIGN.md calls out:
//! sub-group width (§III-C), insertion dialect (Appendix A), and contig
//! binning (Fig. 3). Each measures simulator wall time; the simulated
//! metrics are reported by `repro ablation`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_specs::DeviceId;
use locassm_core::BinningPolicy;
use locassm_kernels::{run_local_assembly, Dialect, GpuConfig};
use std::hint::black_box;
use workloads::paper_dataset;

fn bench_width_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("width_sweep_max1550");
    g.sample_size(10);
    let ds = paper_dataset(33, 0.003, 17);
    for width in [8u32, 16, 32, 64] {
        let mut cfg = GpuConfig::for_device(DeviceId::Max1550);
        cfg.width = width;
        cfg.parallel = false;
        g.bench_with_input(BenchmarkId::from_parameter(width), &ds, |b, ds| {
            b.iter(|| run_local_assembly(black_box(ds), &cfg).profile.intops())
        });
    }
    g.finish();
}

fn bench_dialect_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("dialect_sweep_a100");
    g.sample_size(10);
    let ds = paper_dataset(33, 0.003, 17);
    for dialect in [Dialect::Cuda, Dialect::Hip, Dialect::Sycl] {
        let mut cfg = GpuConfig::for_device(DeviceId::A100);
        cfg.dialect = dialect;
        cfg.parallel = false;
        g.bench_with_input(BenchmarkId::from_parameter(dialect), &ds, |b, ds| {
            b.iter(|| run_local_assembly(black_box(ds), &cfg).profile.intops())
        });
    }
    g.finish();
}

fn bench_binning_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("binning_sweep_a100");
    g.sample_size(10);
    let ds = paper_dataset(33, 0.003, 17);
    for (name, policy) in [
        ("pow2", BinningPolicy::PowerOfTwo),
        ("fixed256", BinningPolicy::FixedSize(256)),
        ("single", BinningPolicy::Single),
    ] {
        let mut cfg = GpuConfig::for_device(DeviceId::A100);
        cfg.binning = policy;
        cfg.parallel = false;
        g.bench_with_input(BenchmarkId::from_parameter(name), &ds, |b, ds| {
            b.iter(|| run_local_assembly(black_box(ds), &cfg).profile.intops())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_width_sweep, bench_dialect_sweep, bench_binning_sweep);
criterion_main!(benches);

//! Offline vendored stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! `prop_assert*` / [`prop_assume!`], [`prop_oneof!`], numeric range
//! strategies, [`any`], [`Just`], tuple strategies,
//! [`collection::vec`], [`sample::select`] and [`option::of`].
//!
//! Unlike real proptest there is **no shrinking**: a failing case reports
//! its case number and seed and panics. Generation is deterministic — the
//! seed is derived from the test name, so failures reproduce exactly.

use std::ops::{Range, RangeInclusive};

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator whose stream is fully determined by `seed`.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform index in `0..n` (`n` must be non-zero).
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample an index from an empty domain");
        (self.next_u64() % n as u64) as usize
    }
}

/// FNV-1a hash of a test name, used as the per-test base seed.
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// A strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Produce one uniformly distributed value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over the whole domain of `T`; see [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T` (`any::<u32>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
}

/// Combinator types backing the macros and module functions.
pub mod strategy {
    use super::{Strategy, TestRng};

    /// Uniform choice between boxed alternative strategies
    /// (built by [`crate::prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// A union over `arms` (must be non-empty).
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let arm = rng.index(self.arms.len());
            self.arms[arm].generate(rng)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Inclusive length bounds for [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    /// Things accepted as the length argument of [`vec()`]: integer ranges
    /// (unsuffixed literals fall back to `i32`, hence the `i32` impls) or
    /// an exact `usize` count.
    pub trait IntoSizeRange {
        /// Convert into inclusive bounds.
        fn into_size_range(self) -> SizeRange;
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn into_size_range(self) -> SizeRange {
            assert!(self.start < self.end, "empty vec length range");
            SizeRange { lo: self.start, hi: self.end - 1 }
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn into_size_range(self) -> SizeRange {
            assert!(self.start() <= self.end(), "empty vec length range");
            SizeRange { lo: *self.start(), hi: *self.end() }
        }
    }

    impl IntoSizeRange for core::ops::Range<i32> {
        fn into_size_range(self) -> SizeRange {
            assert!(0 <= self.start && self.start < self.end, "bad vec length range");
            SizeRange { lo: self.start as usize, hi: (self.end - 1) as usize }
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<i32> {
        fn into_size_range(self) -> SizeRange {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(0 <= lo && lo <= hi, "bad vec length range");
            SizeRange { lo: lo as usize, hi: hi as usize }
        }
    }

    impl IntoSizeRange for usize {
        fn into_size_range(self) -> SizeRange {
            SizeRange { lo: self, hi: self }
        }
    }

    /// Strategy for `Vec`s with a length drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = (self.size.lo..=self.size.hi).generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` whose length is drawn from `len` (an integer range or an
    /// exact count) and whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: impl IntoSizeRange) -> VecStrategy<S> {
        VecStrategy { element, size: len.into_size_range() }
    }
}

/// Strategies that sample from explicit values.
pub mod sample {
    use super::{Strategy, TestRng};

    /// Uniform choice from a fixed set of values (see [`select`]).
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.index(self.options.len())].clone()
        }
    }

    /// Pick uniformly from `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }
}

/// Strategies producing `Option`s.
pub mod option {
    use super::{Strategy, TestRng};

    /// `Option` strategy built by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // 3:1 Some:None, roughly matching real proptest's default weight.
            if rng.next_u64() % 4 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `Some(inner)` most of the time, `None` occasionally.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Error/rejection plumbing used by the `prop_*` macros.
pub mod test_runner {
    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// A `prop_assert*` failed: the property is falsified.
        Fail(String),
        /// A `prop_assume!` rejected the inputs: try another case.
        Reject(String),
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }
}

/// Everything a property test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Union;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy,
    };
}

/// Define property tests. Accepts an optional leading
/// `#![proptest_config(expr)]` followed by one or more
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let base_seed = $crate::seed_for(stringify!($name));
            let mut passed: u32 = 0;
            let mut attempts: u64 = 0;
            while passed < config.cases {
                attempts += 1;
                assert!(
                    attempts < config.cases as u64 * 16 + 1024,
                    "property test {} rejected too many cases (prop_assume too strict?)",
                    stringify!($name),
                );
                let mut rng = $crate::TestRng::new(base_seed.wrapping_add(attempts));
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )+
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => passed += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property test {} failed (attempt {}, seed {:#x}): {}",
                            stringify!($name),
                            attempts,
                            base_seed.wrapping_add(attempts),
                            msg,
                        );
                    }
                }
            }
        }
    )*};
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `{:?} == {:?}`", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `{:?} == {:?}`: {}", l, r, format!($($fmt)+)),
            ));
        }
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `{:?} != {:?}`", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `{:?} != {:?}`: {}", l, r, format!($($fmt)+)),
            ));
        }
    }};
}

/// Discard the current case (not a failure) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Box a strategy for [`prop_oneof!`] without forcing early integer
/// fallback (a direct `as Box<dyn ...>` cast would).
#[doc(hidden)]
pub fn __boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Uniform choice between alternative strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::__boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 0u64..(1u64 << 40)) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < (1u64 << 40));
        }

        #[test]
        fn vec_lengths_respect_strategy(v in crate::collection::vec(any::<u8>(), 2..9usize)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
        }

        #[test]
        fn select_picks_from_options(b in crate::sample::select(vec![b'A', b'C', b'G', b'T'])) {
            prop_assert!(b"ACGT".contains(&b));
        }

        #[test]
        fn oneof_and_just(w in prop_oneof![Just(16u32), Just(32), Just(64)]) {
            prop_assert!(w == 16 || w == 32 || w == 64);
        }

        #[test]
        fn assume_discards_rather_than_fails(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn config_form_parses(x in any::<bool>(), pair in (0usize..4, any::<bool>())) {
            prop_assert!(pair.0 < 4);
            let _ = x;
        }
    }

    #[test]
    #[should_panic(expected = "property test")]
    fn failing_property_panics() {
        mod inner {
            use crate::prelude::*;
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]
                #[allow(dead_code)]
                fn always_fails(x in 0u32..10) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            pub fn run() {
                always_fails();
            }
        }
        inner::run();
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::new(crate::seed_for("t"));
        let mut b = crate::TestRng::new(crate::seed_for("t"));
        let s = 0u64..1000;
        let xs: Vec<u64> = (0..16).map(|_| s.generate(&mut a)).collect();
        let ys: Vec<u64> = (0..16).map(|_| s.generate(&mut b)).collect();
        assert_eq!(xs, ys);
    }
}

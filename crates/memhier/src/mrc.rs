//! Miss-rate curves: replay a recorded sector trace against a sweep of
//! cache capacities.
//!
//! This is the quantitative backing for the paper's cache-size narrative
//! ("the local assembly kernel is sensitive to cache size when operating
//! for larger k-mer sizes"): record one warp's access stream, then ask at
//! which capacity the working set transitions from thrashing to resident.

use crate::cache::Cache;
use crate::config::CacheConfig;

/// A recorded sequence of sector-granular accesses (`addr / 32`, plus the
/// write flag).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SectorTrace {
    accesses: Vec<(u64, bool)>,
}

impl SectorTrace {
    pub fn new() -> Self {
        SectorTrace::default()
    }

    /// Record one access.
    pub fn push(&mut self, sector: u64, write: bool) {
        self.accesses.push((sector, write));
    }

    /// Record every sector of a coalesced warp access.
    pub fn push_coalesced(&mut self, co: &crate::coalesce::CoalesceResult, write: bool) {
        for &s in &co.sectors {
            self.push(s, write);
        }
    }

    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Number of distinct sectors (compulsory misses / working-set size
    /// in sectors).
    pub fn unique_sectors(&self) -> usize {
        let mut v: Vec<u64> = self.accesses.iter().map(|&(s, _)| s).collect();
        v.sort_unstable();
        v.dedup();
        v.len()
    }

    /// Replay the trace through a cache of the given geometry; returns the
    /// miss rate (misses / accesses), or 0 for an empty trace.
    pub fn miss_rate(&self, cfg: CacheConfig) -> f64 {
        if self.accesses.is_empty() {
            return 0.0;
        }
        let mut cache = Cache::new(cfg);
        let misses = self
            .accesses
            .iter()
            .filter(|&&(s, w)| cache.access_sector(s, w).is_miss())
            .count();
        misses as f64 / self.accesses.len() as f64
    }

    /// The miss-rate curve over a capacity sweep (same line size and
    /// associativity per point; capacities are rounded to whole sets).
    pub fn miss_rate_curve(&self, capacities: &[u64], line: u64, ways: u32) -> Vec<(u64, f64)> {
        capacities
            .iter()
            .map(|&cap| {
                let set_bytes = line * ways as u64;
                let sets = (cap / set_bytes).max(1);
                let cfg = CacheConfig::new(sets * set_bytes, line, ways);
                (cfg.capacity_bytes, self.miss_rate(cfg))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three passes over a fixed working set of `n` lines.
    fn looping_trace(n: u64) -> SectorTrace {
        let mut t = SectorTrace::new();
        for _ in 0..3 {
            for line in 0..n {
                t.push(line * 4, false);
            }
        }
        t
    }

    #[test]
    fn curve_has_the_knee_at_working_set_size() {
        // 64 lines × 128 B = 8 KiB working set.
        let t = looping_trace(64);
        let curve = t.miss_rate_curve(&[1 << 10, 1 << 12, 1 << 13, 1 << 14], 128, 4);
        // Way below: thrash (miss rate ~1); at/above: only compulsory.
        assert!(curve[0].1 > 0.9, "1 KiB thrashes: {:?}", curve);
        assert!(curve[3].1 < 0.4, "16 KiB holds the set: {:?}", curve);
        // Monotone non-increasing along the sweep.
        for w in curve.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-9, "{curve:?}");
        }
    }

    #[test]
    fn compulsory_floor() {
        let t = looping_trace(16);
        // A huge cache still pays one miss per distinct sector.
        let mr = t.miss_rate(CacheConfig::new(1 << 20, 128, 4));
        let floor = t.unique_sectors() as f64 / t.len() as f64;
        assert!((mr - floor).abs() < 1e-9);
    }

    #[test]
    fn unique_sectors_counts_distinct() {
        let mut t = SectorTrace::new();
        t.push(1, false);
        t.push(1, true);
        t.push(2, false);
        assert_eq!(t.unique_sectors(), 2);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn empty_trace() {
        let t = SectorTrace::new();
        assert!(t.is_empty());
        assert_eq!(t.miss_rate(CacheConfig::new(1024, 128, 2)), 0.0);
    }

    #[test]
    fn coalesced_recording() {
        let co = crate::coalesce::coalesce_sectors([(0u64, 4u32), (64, 4)]);
        let mut t = SectorTrace::new();
        t.push_coalesced(&co, false);
        assert_eq!(t.len(), 2);
    }
}

//! Tier-1 hygiene gate for the fault model: the per-job kernel hot path
//! must stay panic-free. Pathology is reported as `KernelFault` values
//! (see `locassm_kernels::fault`), so `panic!`, `unwrap()`, `expect(`,
//! `unreachable!` and `todo!` must not reappear in the hot-path sources.
//! Test modules are exempt (everything from the first `#[cfg(test)]` on),
//! as are `debug_assert!`s — they document invariants, vanish in release
//! builds, and cannot take down a production batch.

use std::path::Path;

/// The per-job kernel hot path: everything a single warp executes between
/// job pickup and outcome writeback, plus the launch layer that isolates
/// faults. A panic in any of these kills a whole pooled batch.
const HOT_PATH: &[&str] = &[
    "crates/kernels/src/probe.rs",
    "crates/kernels/src/insert_cuda.rs",
    "crates/kernels/src/insert_hip.rs",
    "crates/kernels/src/insert_sycl.rs",
    "crates/kernels/src/construct.rs",
    "crates/kernels/src/resize.rs",
    "crates/kernels/src/walk.rs",
    "crates/kernels/src/kernel.rs",
    "crates/kernels/src/layout.rs",
    "crates/kernels/src/launch.rs",
];

/// The service front-end's hot path: everything between a tenant's
/// submit and its terminal `ServiceOutcome`. The service exists to turn
/// pathology into structured outcomes (rejections, timeouts,
/// quarantine), so a panic here is a contract violation twice over — it
/// would take down every queued tenant at once.
const SERVICE_HOT_PATH: &[&str] = &[
    "crates/service/src/batch.rs",
    "crates/service/src/queue.rs",
    "crates/service/src/request.rs",
    "crates/service/src/service.rs",
];

const FORBIDDEN: &[&str] = &["panic!(", ".unwrap()", ".expect(", "unreachable!(", "todo!("];

/// Strip `//` line comments (good enough for this codebase: no raw
/// strings or `/* */` blocks in the hot path) and cut the file at its
/// first `#[cfg(test)]` marker.
fn production_code(source: &str) -> String {
    let mut out = String::new();
    for line in source.lines() {
        if line.trim_start().starts_with("#[cfg(test)]") {
            break;
        }
        let code = match line.find("//") {
            Some(i) => &line[..i],
            None => line,
        };
        out.push_str(code);
        out.push('\n');
    }
    out
}

fn violations_in(files: &[&str]) -> Vec<String> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut violations = Vec::new();
    for rel in files {
        let path = root.join(rel);
        let source = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("hot-path file {rel} must exist: {e}"));
        let code = production_code(&source);
        for (lineno, line) in code.lines().enumerate() {
            for pat in FORBIDDEN {
                // `debug_assert!` is allowed; it contains no forbidden
                // pattern, so no special-casing is needed beyond the
                // comment strip above.
                if line.contains(pat) {
                    violations.push(format!("{rel}:{}: `{pat}` in `{}`", lineno + 1, line.trim()));
                }
            }
        }
    }
    violations
}

#[test]
fn kernel_hot_path_stays_panic_free() {
    let violations = violations_in(HOT_PATH);
    assert!(
        violations.is_empty(),
        "panic paths reappeared in the per-job kernel hot path — report a \
         KernelFault instead:\n{}",
        violations.join("\n")
    );
}

#[test]
fn service_hot_path_stays_panic_free() {
    let violations = violations_in(SERVICE_HOT_PATH);
    assert!(
        violations.is_empty(),
        "panic paths reappeared in the service hot path — report a \
         ServiceOutcome (reject, time out, quarantine) instead:\n{}",
        violations.join("\n")
    );
}

#[test]
fn hot_path_listing_is_current() {
    // Guard the guard: if a hot-path file is renamed away, the test above
    // silently shrinks. Require every listed file to exist AND require
    // the insert dialects to still dispatch through `Dialect::insert`.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    for rel in HOT_PATH.iter().chain(SERVICE_HOT_PATH) {
        assert!(root.join(rel).is_file(), "{rel} disappeared; update HOT_PATH");
    }
    let kernel = std::fs::read_to_string(root.join("crates/kernels/src/kernel.rs")).unwrap();
    assert!(
        kernel.contains("Result<SlotVec, KernelFault>"),
        "Dialect::insert no longer returns a fault Result"
    );
}

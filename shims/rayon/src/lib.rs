//! Offline vendored stand-in for the `rayon` crate.
//!
//! Implements the one pattern the workspace uses — `par_iter()` /
//! `into_par_iter()` followed by `map(..).collect::<Vec<_>>()` — with real
//! data parallelism on scoped OS threads. Results are always collected in
//! input order, matching rayon's indexed-collect semantics, which is what
//! `simt::launch_warps` relies on for deterministic counter/trace merges.

/// Parallel iterator traits, mirroring `rayon::iter`.
pub mod iter {
    /// A finite, indexed parallel iterator.
    ///
    /// `drive` materialises the items; `map` is lazy and applies its
    /// function in parallel when the chain is finally driven by `collect`.
    pub trait ParallelIterator: Sized {
        /// Element type produced by the iterator.
        type Item: Send;

        /// Materialise all items, in order.
        fn drive(self) -> Vec<Self::Item>;

        /// Apply `f` to every item in parallel, preserving order.
        fn map<R, F>(self, f: F) -> Map<Self, F>
        where
            R: Send,
            F: Fn(Self::Item) -> R + Sync,
        {
            Map { base: self, f }
        }

        /// Pair every item with its input-order index (rayon's
        /// `IndexedParallelIterator::enumerate`). Lazy like `map`: the
        /// indices are attached when the chain is driven, so no separate
        /// `(index, item)` vector has to be materialised by the caller.
        fn enumerate(self) -> Enumerate<Self> {
            Enumerate { base: self }
        }

        /// Execute the chain and collect the results in input order.
        fn collect<C: FromIterator<Self::Item>>(self) -> C {
            self.drive().into_iter().collect()
        }
    }

    /// Lazy `enumerate` adaptor returned by [`ParallelIterator::enumerate`].
    pub struct Enumerate<I> {
        base: I,
    }

    impl<I> ParallelIterator for Enumerate<I>
    where
        I: ParallelIterator,
    {
        type Item = (usize, I::Item);

        fn drive(self) -> Vec<(usize, I::Item)> {
            self.base.drive().into_iter().enumerate().collect()
        }
    }

    /// Lazy `map` adaptor returned by [`ParallelIterator::map`].
    pub struct Map<I, F> {
        base: I,
        f: F,
    }

    impl<I, R, F> ParallelIterator for Map<I, F>
    where
        I: ParallelIterator,
        R: Send,
        F: Fn(I::Item) -> R + Sync,
    {
        type Item = R;

        fn drive(self) -> Vec<R> {
            par_map(self.base.drive(), &self.f)
        }
    }

    /// Parallel iterator over an owned `Vec`.
    pub struct VecIter<T> {
        items: Vec<T>,
    }

    impl<T: Send> ParallelIterator for VecIter<T> {
        type Item = T;

        fn drive(self) -> Vec<T> {
            self.items
        }
    }

    /// Parallel iterator over borrowed slice elements.
    pub struct SliceIter<'a, T> {
        items: &'a [T],
    }

    impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
        type Item = &'a T;

        fn drive(self) -> Vec<&'a T> {
            self.items.iter().collect()
        }
    }

    /// Conversion into an owning parallel iterator (`into_par_iter`).
    pub trait IntoParallelIterator {
        /// Element type of the resulting iterator.
        type Item: Send;
        /// Concrete iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;

        /// Consume `self` into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = VecIter<T>;

        fn into_par_iter(self) -> VecIter<T> {
            VecIter { items: self }
        }
    }

    /// Conversion into a borrowing parallel iterator (`par_iter`).
    pub trait IntoParallelRefIterator<'data> {
        /// Element type of the resulting iterator (a reference).
        type Item: Send + 'data;
        /// Concrete iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;

        /// Borrow `self` as a parallel iterator.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = &'data T;
        type Iter = SliceIter<'data, T>;

        fn par_iter(&'data self) -> SliceIter<'data, T> {
            SliceIter { items: self }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = &'data T;
        type Iter = SliceIter<'data, T>;

        fn par_iter(&'data self) -> SliceIter<'data, T> {
            SliceIter { items: self }
        }
    }

    /// Order-preserving parallel map over `items`, fanned out across up to
    /// `available_parallelism` scoped threads in contiguous chunks.
    fn par_map<T: Send, R: Send, F: Fn(T) -> R + Sync>(items: Vec<T>, f: &F) -> Vec<R> {
        let n = items.len();
        let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
        let threads = threads.min(n.max(1));
        if threads <= 1 || n <= 1 {
            return items.into_iter().map(f).collect();
        }
        let chunk = n.div_ceil(threads);
        let mut input: Vec<Option<T>> = items.into_iter().map(Some).collect();
        let mut output: Vec<Option<R>> = Vec::new();
        output.resize_with(n, || None);
        std::thread::scope(|scope| {
            for (in_chunk, out_chunk) in input.chunks_mut(chunk).zip(output.chunks_mut(chunk)) {
                scope.spawn(move || {
                    for (slot, out) in in_chunk.iter_mut().zip(out_chunk.iter_mut()) {
                        *out = Some(f(slot.take().expect("input slot taken twice")));
                    }
                });
            }
        });
        output.into_iter().map(|o| o.expect("chunk did not produce output")).collect()
    }
}

/// The glob-import surface, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_map_preserves_order() {
        let v: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_moves_items() {
        let v: Vec<String> = (0..100).map(|i| i.to_string()).collect();
        let lens: Vec<usize> = v.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(lens.len(), 100);
        assert_eq!(lens[0], 1);
        assert_eq!(lens[99], 2);
    }

    #[test]
    fn enumerate_pairs_items_with_input_order_indices() {
        let v: Vec<u64> = (100..200).collect();
        let out: Vec<(usize, u64)> = v.par_iter().enumerate().map(|(i, x)| (i, *x * 2)).collect();
        assert_eq!(out.len(), 100);
        for (i, (idx, doubled)) in out.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*doubled, (100 + i as u64) * 2);
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let one: Vec<u32> = vec![7].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
    }
}

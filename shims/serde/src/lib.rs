//! Offline vendored stand-in for the `serde` crate.
//!
//! The workspace only *annotates* types with `#[derive(Serialize,
//! Deserialize)]` to document serializability — nothing serializes through
//! serde at runtime (CSV/JSON emission is hand-rolled in
//! `perfmodel::export`). The traits here are therefore empty markers and
//! the derive macros (enabled by the `derive` feature, from the
//! `serde_derive` shim) expand to nothing.

/// Marker for types that would be serializable with real serde.
pub trait Serialize {}

/// Marker for types that would be deserializable with real serde.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

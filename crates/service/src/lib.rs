//! Assembly-as-a-service: an admission-controlled, multi-tenant batched
//! front-end over the fault-tolerant launch engine.
//!
//! The kernel layers below answer "how fast and how correctly does one
//! dataset run on one GPU". This crate answers the production question
//! layered on top: many tenants submitting contig-extension requests
//! concurrently against bounded resources. It adds, in order of a
//! request's lifecycle:
//!
//! 1. **Admission** ([`AdmissionQueue`]) — bounded queues with explicit
//!    backpressure: a request takes a slot or gets a structured
//!    [`RejectReason`] back, per-tenant quotas isolating one tenant's
//!    burst from another's headroom.
//! 2. **Batching** ([`BatchPolicy`]) — a packer that fills warp batches
//!    by weighted fair-share across tenants, costing each request with
//!    the launch layer's own arena-footprint model so batch size tracks
//!    the device's L2 budget.
//! 3. **Execution** ([`run_service`]) — a virtual-clock event loop that
//!    runs each packed batch through `run_local_assembly`, advancing
//!    modeled time by the timing model's duration. No wall clock, no
//!    randomness: replays are bit-identical.
//! 4. **Recovery** ([`RequeuePolicy`]) — deadline timeouts at every
//!    stage, retry-with-backoff layered on the kernel's escalation
//!    ladder, and poison-job quarantine once both are exhausted. Fault
//!    plans name victims by stable request uid and follow the victim
//!    across re-enqueues.
//!
//! The governing invariant (number 9 in `docs/ARCHITECTURE.md`):
//! **admission changes *when* a job runs, never its result** — every
//! completed extension is bit-identical to a standalone run of the same
//! job.

#![warn(missing_docs)]

pub mod batch;
pub mod queue;
pub mod request;
pub mod service;

pub use batch::{request_footprint, BatchPolicy};
pub use queue::{AdmissionQueue, QueueConfig, QueuedRequest, TenantQuota};
pub use request::{
    ExtensionRequest, RejectReason, ServiceOutcome, TimeoutStage,
};
pub use service::{
    run_service, BatchRecord, RequestRecord, RequeuePolicy, ServiceConfig, ServiceReport,
};

//! # locassm — umbrella crate
//!
//! Re-exports the full workspace: the de Bruijn graph local assembly kernel
//! (CPU reference and three GPU-dialect variants), the SIMT and
//! memory-hierarchy simulators they execute on, device models for NVIDIA
//! A100 / AMD MI250X / Intel Max 1550, workload synthesis, and the
//! performance-modeling layer (instruction roofline, Pennycook portability,
//! potential speed-up analysis).
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system map.

pub use adept;
pub use gpu_specs as specs;
pub use locassm_core as core;
pub use locassm_kernels as kernels;
pub use memhier;
pub use perfmodel;
pub use simt;
pub use workloads;

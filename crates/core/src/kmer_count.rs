//! K-mer analysis (Fig. 2, first pipeline stage).
//!
//! MetaHipMer "starts with creating k-mers from each of the input reads,
//! filtering out likely erroneous reads (those that occur only once)".
//! This module counts the k-mer spectrum of a read set, exposes the
//! multiplicity histogram (the classic error/solid k-mer diagnostic), and
//! filters low-multiplicity k-mers before graph construction.
//!
//! This is a host-side, whole-dataset phase (the paper's GPU study begins
//! after it), so a standard `HashMap` is the right tool here, unlike the
//! kernel's fixed-capacity `loc_ht`.

use crate::kmer::KmerIter;
use crate::read::Read;
use std::collections::HashMap;

/// The k-mer multiplicity spectrum of a read set.
#[derive(Debug, Clone, Default)]
pub struct KmerSpectrum {
    pub k: usize,
    counts: HashMap<Box<[u8]>, u32>,
}

impl KmerSpectrum {
    /// Count every k-mer of every read.
    pub fn build(reads: &[Read], k: usize) -> Self {
        assert!(k >= 1, "k must be positive");
        let mut counts: HashMap<Box<[u8]>, u32> = HashMap::new();
        for r in reads {
            for (_, kmer) in KmerIter::new(&r.seq, k) {
                *counts.entry(kmer.into()).or_insert(0) += 1;
            }
        }
        KmerSpectrum { k, counts }
    }

    /// Number of distinct k-mers.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Total k-mer occurrences.
    pub fn total(&self) -> u64 {
        self.counts.values().map(|&c| c as u64).sum()
    }

    /// Multiplicity of one k-mer (0 if absent).
    pub fn count(&self, kmer: &[u8]) -> u32 {
        self.counts.get(kmer).copied().unwrap_or(0)
    }

    /// The multiplicity histogram: `histogram()[i] = (m_i, n_i)` sorted by
    /// multiplicity — n k-mers occur exactly m times.
    pub fn histogram(&self) -> Vec<(u32, usize)> {
        let mut h: HashMap<u32, usize> = HashMap::new();
        for &c in self.counts.values() {
            *h.entry(c).or_insert(0) += 1;
        }
        let mut v: Vec<(u32, usize)> = h.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// Drop k-mers with multiplicity below `min_count` (error filtering;
    /// MetaHipMer drops singletons, `min_count = 2`).
    pub fn filter(&mut self, min_count: u32) -> usize {
        let before = self.counts.len();
        self.counts.retain(|_, &mut c| c >= min_count);
        before - self.counts.len()
    }

    /// Does the spectrum contain this k-mer (post-filter)?
    pub fn contains(&self, kmer: &[u8]) -> bool {
        self.counts.contains_key(kmer)
    }

    /// Iterate `(kmer, count)`.
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], u32)> {
        self.counts.iter().map(|(k, &c)| (&**k, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reads(seqs: &[&[u8]]) -> Vec<Read> {
        seqs.iter().map(|s| Read::with_uniform_qual(s, b'I')).collect()
    }

    #[test]
    fn counts_and_totals() {
        // "ACGTA" has 4-mers ACGT, CGTA; two copies double every count.
        let s = KmerSpectrum::build(&reads(&[b"ACGTA", b"ACGTA"]), 4);
        assert_eq!(s.distinct(), 2);
        assert_eq!(s.total(), 4);
        assert_eq!(s.count(b"ACGT"), 2);
        assert_eq!(s.count(b"CGTA"), 2);
        assert_eq!(s.count(b"TTTT"), 0);
    }

    #[test]
    fn histogram_shape() {
        // One read contributes singletons; a repeated read contributes 2s.
        let s = KmerSpectrum::build(&reads(&[b"ACGTA", b"ACGTA", b"GGGGG"]), 4);
        // GGGG occurs twice within one read (positions 0,1).
        let h = s.histogram();
        assert_eq!(h, vec![(2, 3)]); // ACGT:2, CGTA:2, GGGG:2
    }

    #[test]
    fn singleton_filter_mirrors_metahipmer() {
        let s = &mut KmerSpectrum::build(&reads(&[b"ACGTAC", b"ACGTAG"]), 5);
        // ACGTA ×2; CGTAC ×1; CGTAG ×1.
        assert_eq!(s.distinct(), 3);
        let dropped = s.filter(2);
        assert_eq!(dropped, 2);
        assert!(s.contains(b"ACGTA"));
        assert!(!s.contains(b"CGTAC"));
    }

    #[test]
    fn short_reads_contribute_nothing() {
        let s = KmerSpectrum::build(&reads(&[b"ACG"]), 5);
        assert_eq!(s.distinct(), 0);
        assert_eq!(s.total(), 0);
        assert!(s.histogram().is_empty());
    }

    #[test]
    fn error_kmers_are_low_multiplicity() {
        // 5 identical reads + 1 read with an error: the error's k-mers are
        // singletons, the true k-mers have multiplicity ≥ 5.
        let good = b"ACGTACGTGGCCAAT";
        let mut bad = good.to_vec();
        bad[7] = b'C'; // G→C substitution
        let mut pool = vec![good.to_vec(); 5];
        pool.push(bad);
        let rs: Vec<Read> = pool.iter().map(|s| Read::with_uniform_qual(s, b'I')).collect();
        let mut s = KmerSpectrum::build(&rs, 7);
        let before = s.distinct();
        s.filter(2);
        assert!(s.distinct() < before, "error k-mers must be dropped");
        for (_, c) in s.iter() {
            assert!(c >= 2);
        }
        // Every surviving k-mer is a substring of the true sequence.
        for (kmer, _) in s.iter() {
            assert!(good.windows(7).any(|w| w == kmer));
        }
    }
}

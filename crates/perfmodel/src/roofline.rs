//! The Instruction Roofline for integer-only kernels (paper §V-B).
//!
//! Performance is characterized as GINTOPs/s against INTOP intensity
//! (integer operations per HBM byte). The roofline ceiling at intensity
//! `x` is `min(peak_intops, hbm_bandwidth · x)`; the ridge point is the
//! machine balance (0.23 / 0.23 / 0.09 for the three devices).

use gpu_specs::{Bound, DeviceSpec};
use serde::{Deserialize, Serialize};

/// One measured kernel on the roofline plane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RooflinePoint {
    /// INTOP intensity (INTOPs per HBM byte).
    pub ii: f64,
    /// Achieved performance, INTOPs per second.
    pub intops_per_sec: f64,
}

impl RooflinePoint {
    pub fn new(intops: u64, hbm_bytes: u64, seconds: f64) -> Self {
        assert!(seconds > 0.0, "kernel time must be positive");
        RooflinePoint {
            ii: if hbm_bytes == 0 { f64::INFINITY } else { intops as f64 / hbm_bytes as f64 },
            intops_per_sec: intops as f64 / seconds,
        }
    }

    /// Which side of the ridge point the kernel sits on.
    pub fn bound(&self, spec: &DeviceSpec) -> Bound {
        if self.ii < spec.machine_balance() {
            Bound::Bandwidth
        } else {
            Bound::Compute
        }
    }

    /// Fraction of the roofline ceiling achieved at this intensity —
    /// the paper's *architectural efficiency* (Table IV).
    pub fn fraction_of_roofline(&self, spec: &DeviceSpec) -> f64 {
        self.intops_per_sec / roofline_ceiling(spec, self.ii)
    }
}

/// The attainable INTOPs/s at intensity `ii` on a device.
pub fn roofline_ceiling(spec: &DeviceSpec, ii: f64) -> f64 {
    spec.peak_intops_per_sec.min(spec.hbm_bytes_per_sec * ii)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_specs::spec::{A100, MAX1550, MI250X};

    #[test]
    fn ceiling_has_ridge_at_machine_balance() {
        for spec in [&A100, &MI250X, &MAX1550] {
            let mb = spec.machine_balance();
            // Just below the ridge: bandwidth-limited.
            assert!(roofline_ceiling(spec, mb * 0.5) < spec.peak_intops_per_sec);
            // At/above the ridge: the compute peak.
            assert_eq!(roofline_ceiling(spec, mb * 2.0), spec.peak_intops_per_sec);
            let below = roofline_ceiling(spec, mb * 0.999);
            let at = roofline_ceiling(spec, mb);
            assert!((at - spec.peak_intops_per_sec).abs() / at < 1e-3);
            assert!(below < at);
        }
    }

    #[test]
    fn bound_classification() {
        let memory_side = RooflinePoint { ii: 0.05, intops_per_sec: 1e9 };
        let compute_side = RooflinePoint { ii: 5.0, intops_per_sec: 1e9 };
        assert_eq!(memory_side.bound(&A100), Bound::Bandwidth);
        assert_eq!(compute_side.bound(&A100), Bound::Compute);
        // 0.05 < 0.09: still memory-bound on the Intel tile.
        assert_eq!(memory_side.bound(&MAX1550), Bound::Bandwidth);
    }

    #[test]
    fn fraction_of_roofline_in_unit_range_for_feasible_points() {
        // A kernel at 10% of peak, compute side.
        let p = RooflinePoint { ii: 1.0, intops_per_sec: A100.peak_intops_per_sec * 0.1 };
        let f = p.fraction_of_roofline(&A100);
        assert!((f - 0.1).abs() < 1e-12);
        // Memory side: ceiling is bw·ii.
        let p = RooflinePoint { ii: 0.1, intops_per_sec: A100.hbm_bytes_per_sec * 0.1 * 0.2 };
        assert!((p.fraction_of_roofline(&A100) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn point_from_raw_counters() {
        let p = RooflinePoint::new(2_000_000_000, 1_000_000_000, 0.5);
        assert!((p.ii - 2.0).abs() < 1e-12);
        assert!((p.intops_per_sec - 4e9).abs() < 1.0);
    }

    #[test]
    fn zero_bytes_is_infinite_intensity() {
        let p = RooflinePoint::new(100, 0, 1.0);
        assert!(p.ii.is_infinite());
        assert_eq!(p.bound(&A100), Bound::Compute);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_time_rejected() {
        RooflinePoint::new(1, 1, 0.0);
    }
}

//! Structured kernel faults and per-job outcomes.
//!
//! The paper's kernel listings abort on pathology — `"*hashtable full*"`
//! when the host-side slot estimate is violated. A production launch
//! engine cannot afford that: one bad job would kill a pooled,
//! rayon-parallel batch. Instead the per-job hot path (staging, the three
//! insert dialects, construct, walk) returns a [`KernelFault`], the launch
//! layer isolates the faulting job, escalates deterministically (grown
//! hash table, then the `core::retry` k-ladder), and reports a per-job
//! [`JobOutcome`] — `Ok`, `Recovered`, or `Failed` — while every other
//! job's output stays bit-identical to a fault-free run.

use std::fmt;

/// A structured fault raised by the per-job kernel hot path.
///
/// Faults are values, not panics: they carry the diagnostic payload the
/// paper's aborts printed (capacity, occupancy) plus what escalation
/// needs (requested sizes, budgets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelFault {
    /// The linear probe wrapped all the way around the hash table: every
    /// slot was claimed by a different key. The paper's listings abort
    /// here with `"*hashtable full*"`; the launch layer instead retries
    /// with a grown slot count, then falls down the k-ladder.
    HashTableFull {
        /// Slot count of the table that overflowed.
        capacity: u32,
        /// Slots occupied when the probe wrapped (host-side diagnostic
        /// scan, not charged to the kernel).
        occupancy: u32,
    },
    /// A device arena allocation failed during staging.
    ArenaExhausted {
        /// Bytes the failed allocation requested.
        requested: u64,
        /// Arena capacity at the time of the failure.
        limit: u64,
    },
    /// The mer walk exceeded its layout-derived instruction budget — the
    /// per-warp watchdog that bounds runaway walks.
    WalkBudgetExceeded {
        /// Warp-instruction budget the walk was allowed.
        budget: u64,
        /// Instructions spent when the watchdog fired.
        spent: u64,
    },
    /// An in-kernel incremental table migration aborted mid-chunk (a
    /// simulated device-side interruption): the table is left in an
    /// undefined intermediate state, so the job must restart from staging.
    /// Retryable — a clean retry re-stages and re-migrates from scratch.
    ResizeAborted {
        /// Capacity of the old region the migration was draining.
        from_slots: u32,
        /// Capacity of the successor region it was filling.
        to_slots: u32,
        /// Live entries migrated before the abort.
        migrated: u32,
    },
    /// The job cannot be staged at all (e.g. a contig shorter than one
    /// k-mer chunk, or a zero k). Not retryable.
    MalformedJob {
        /// Why the job was rejected.
        reason: &'static str,
    },
}

impl KernelFault {
    /// Whether escalation can plausibly clear this fault: growing the
    /// table (or dropping k) helps a full table; malformed jobs never
    /// recover.
    pub fn retryable(&self) -> bool {
        !matches!(self, KernelFault::MalformedJob { .. })
    }
}

impl fmt::Display for KernelFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelFault::HashTableFull { capacity, occupancy } => {
                write!(f, "*hashtable full* (capacity {capacity}, occupancy {occupancy})")
            }
            KernelFault::ArenaExhausted { requested, limit } => {
                write!(f, "arena exhausted ({requested} bytes requested, capacity {limit})")
            }
            KernelFault::WalkBudgetExceeded { budget, spent } => {
                write!(f, "walk budget exceeded ({spent} warp instructions, budget {budget})")
            }
            KernelFault::ResizeAborted { from_slots, to_slots, migrated } => {
                write!(
                    f,
                    "table resize aborted mid-migration ({migrated} entries moved, \
                     {from_slots} -> {to_slots} slots)"
                )
            }
            KernelFault::MalformedJob { reason } => write!(f, "malformed job: {reason}"),
        }
    }
}

impl std::error::Error for KernelFault {}

impl From<simt::AllocError> for KernelFault {
    fn from(e: simt::AllocError) -> Self {
        KernelFault::ArenaExhausted { requested: e.requested, limit: e.limit }
    }
}

/// Per-job outcome of a launch with fault isolation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JobOutcome {
    /// The job ran clean on the first attempt.
    #[default]
    Ok,
    /// The job faulted but escalation produced a result (clean retry,
    /// grown table, or a fallback k from the retry ladder).
    Recovered {
        /// Extra attempts the escalation spent (≥ 1).
        attempts: u32,
    },
    /// Every escalation step faulted; the job contributes an empty
    /// extension and the last fault observed.
    Failed {
        /// The fault that exhausted escalation.
        fault: KernelFault,
        /// Extra attempts escalation spent before giving up (0 for a
        /// non-retryable fault such as `MalformedJob`). Service-level
        /// retry accounting needs the exact count: a request re-enqueued
        /// by a front-end must charge its ladder walk against the
        /// tenant's retry budget, not rediscover it.
        attempts: u32,
    },
}

impl JobOutcome {
    /// Merge the outcomes of a job's two kernel runs (right and left
    /// extension): `Failed` dominates (keeping the first side's fault),
    /// then `Recovered`, then `Ok`. Attempts always sum, so the combined
    /// outcome charges every escalation retry either side spent.
    pub fn combine(self, other: JobOutcome) -> JobOutcome {
        match (self, other) {
            (JobOutcome::Failed { fault, attempts }, o) => {
                JobOutcome::Failed { fault, attempts: attempts + o.attempts() }
            }
            (o, JobOutcome::Failed { fault, attempts }) => {
                JobOutcome::Failed { fault, attempts: attempts + o.attempts() }
            }
            (JobOutcome::Recovered { attempts: a }, JobOutcome::Recovered { attempts: b }) => {
                JobOutcome::Recovered { attempts: a + b }
            }
            (r @ JobOutcome::Recovered { .. }, JobOutcome::Ok) => r,
            (JobOutcome::Ok, r) => r,
        }
    }

    /// Extra escalation attempts this outcome spent beyond the first run
    /// (0 for `Ok`). Exact for `Failed` too — the field the service
    /// layer's retry accounting consumes.
    pub fn attempts(&self) -> u32 {
        match self {
            JobOutcome::Ok => 0,
            JobOutcome::Recovered { attempts } | JobOutcome::Failed { attempts, .. } => *attempts,
        }
    }

    /// True unless the job ended in [`JobOutcome::Failed`].
    pub fn succeeded(&self) -> bool {
        !matches!(self, JobOutcome::Failed { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_keeps_the_papers_phrasing() {
        let f = KernelFault::HashTableFull { capacity: 33, occupancy: 33 };
        assert!(f.to_string().contains("*hashtable full*"));
        assert!(f.to_string().contains("33"));
    }

    #[test]
    fn retryability() {
        assert!(KernelFault::HashTableFull { capacity: 1, occupancy: 1 }.retryable());
        assert!(KernelFault::ArenaExhausted { requested: 8, limit: 4 }.retryable());
        assert!(KernelFault::WalkBudgetExceeded { budget: 1, spent: 2 }.retryable());
        assert!(
            KernelFault::ResizeAborted { from_slots: 41, to_slots: 83, migrated: 7 }.retryable()
        );
        assert!(!KernelFault::MalformedJob { reason: "x" }.retryable());
    }

    #[test]
    fn alloc_errors_convert() {
        let e = simt::AllocError { requested: 100, limit: 64 };
        assert_eq!(
            KernelFault::from(e),
            KernelFault::ArenaExhausted { requested: 100, limit: 64 }
        );
    }

    #[test]
    fn outcome_combination_is_worst_wins() {
        let fail = |n| JobOutcome::Failed {
            fault: KernelFault::MalformedJob { reason: "x" },
            attempts: n,
        };
        let rec = |n| JobOutcome::Recovered { attempts: n };
        assert_eq!(JobOutcome::Ok.combine(JobOutcome::Ok), JobOutcome::Ok);
        assert_eq!(JobOutcome::Ok.combine(rec(2)), rec(2));
        assert_eq!(rec(1).combine(rec(2)), rec(3));
        assert_eq!(rec(1).combine(fail(2)), fail(3), "attempts sum across sides");
        assert_eq!(fail(2).combine(JobOutcome::Ok), fail(2));
        assert_eq!(fail(1).combine(fail(2)), fail(3), "first side's fault wins, attempts sum");
        assert!(rec(1).succeeded() && JobOutcome::Ok.succeeded() && !fail(0).succeeded());
    }

    #[test]
    fn attempts_accessor_is_exact() {
        assert_eq!(JobOutcome::Ok.attempts(), 0);
        assert_eq!(JobOutcome::Recovered { attempts: 3 }.attempts(), 3);
        let f = JobOutcome::Failed {
            fault: KernelFault::HashTableFull { capacity: 1, occupancy: 1 },
            attempts: 4,
        };
        assert_eq!(f.attempts(), 4);
    }
}

//! Regenerates the checked-in launch-engine reports:
//!
//! * `BENCH_kernels.json` — pooled-vs-fresh allocator metrics and
//!   throughput on the paper's k = 21 dataset (A100/CUDA).
//! * `BENCH_hotpath.json` — scalar vs pooled vs vectorized warp
//!   throughput for all three dialects on their native devices, with the
//!   `warps_per_sec` headline and speedup ratios.
//! * `BENCH_sched.json` — analytic vs scheduled modeled kernel time for
//!   all three dialects, with the replay's occupancy and latency-hiding
//!   counters. Unlike the first two, this report is fully deterministic
//!   (modeled quantities only) and reproduces bit for bit on any host.
//! * `BENCH_layouts.json` — every table layout (linear, bucketed,
//!   iceberg) on every native dialect: modeled time and traffic plus the
//!   aggregate slots / sustained load factor summary. Fully deterministic
//!   like the sched report.
//! * `BENCH_service.json` — the assembly-as-a-service front-end's
//!   latency percentiles and throughput versus offered load: a
//!   closed-loop capacity calibration followed by an open-loop sweep at
//!   0.5-4x capacity against a shallow queue, showing backpressure and
//!   deadline timeouts past saturation. Fully deterministic (virtual
//!   clock) like the sched and layout reports.
//! * `BENCH_resize.json` — grown-reserve escalation vs in-kernel
//!   incremental resizing on a squeezed long-tail job: per squeeze
//!   divisor, each recovery discipline's escalation-attempt count and
//!   modeled time/traffic. Fully deterministic like the sched, layout
//!   and service reports.
//!
//! ```text
//! cargo run --release -p locassm-bench --bin bench-kernels [OUT_PATH [HOTPATH_OUT [SCHED_OUT [LAYOUT_OUT [SERVICE_OUT [RESIZE_OUT]]]]]]
//! ```
//!
//! Paths default to `BENCH_kernels.json` / `BENCH_hotpath.json` /
//! `BENCH_sched.json` / `BENCH_layouts.json` / `BENCH_service.json` /
//! `BENCH_resize.json` in the current directory (run from the repo root
//! to refresh the checked-in copies).

use gpu_specs::DeviceId;
use locassm_bench::cli::require_ok;
use locassm_bench::layoutbench::layout_bench;
use locassm_bench::poolbench::{hotpath_bench, pool_bench};
use locassm_bench::resizebench::resize_bench;
use locassm_bench::schedbench::sched_bench;
use locassm_bench::servicebench::service_bench;

fn main() {
    let path =
        std::env::args().nth(1).unwrap_or_else(|| "BENCH_kernels.json".to_string());
    let hot_path =
        std::env::args().nth(2).unwrap_or_else(|| "BENCH_hotpath.json".to_string());
    let sched_path =
        std::env::args().nth(3).unwrap_or_else(|| "BENCH_sched.json".to_string());
    let layout_path =
        std::env::args().nth(4).unwrap_or_else(|| "BENCH_layouts.json".to_string());
    let service_path =
        std::env::args().nth(5).unwrap_or_else(|| "BENCH_service.json".to_string());
    let resize_path =
        std::env::args().nth(6).unwrap_or_else(|| "BENCH_resize.json".to_string());

    let r = pool_bench(DeviceId::A100, 21, 0.005, 11, 3, 5);
    let json = r.to_json();
    require_ok(std::fs::write(&path, &json), &format!("write report {path}"));

    eprintln!(
        "pooled launch engine, {} k={} ({} contigs, {} iterations):",
        r.device, r.k, r.contigs, r.iterations
    );
    eprintln!(
        "  fresh : {:>9.1} warps/s  {:>8.1} allocs/warp  {:>12.0} bytes/warp",
        r.fresh.warps_per_sec, r.fresh.allocs_per_warp, r.fresh.bytes_per_warp
    );
    eprintln!(
        "  pooled: {:>9.1} warps/s  {:>8.1} allocs/warp  {:>12.0} bytes/warp",
        r.pooled.warps_per_sec, r.pooled.allocs_per_warp, r.pooled.bytes_per_warp
    );
    eprintln!(
        "  delta : {:.1}% fewer allocs, {:.1}% fewer bytes, {:.2}x wall clock",
        r.alloc_reduction_pct(),
        r.bytes_reduction_pct(),
        r.speedup()
    );
    eprintln!("  wrote {path}");

    let h = hotpath_bench(21, 0.005, 11, 3, 5);
    let hot_json = h.to_json();
    require_ok(std::fs::write(&hot_path, &hot_json), &format!("write report {hot_path}"));

    eprintln!(
        "warp hot path, k={} ({} contigs, {} iterations, median of {} rounds):",
        h.k, h.contigs, h.iterations, h.rounds
    );
    for d in &h.dialects {
        eprintln!(
            "  {:>8} ({:<4}): scalar {:>9.1} warps/s  pooled {:>9.1} ({:.2}x)  \
             vectorized {:>9.1} ({:.2}x)",
            d.device.spec().short_name,
            d.dialect.to_string(),
            d.scalar.warps_per_sec,
            d.pooled.warps_per_sec,
            d.pooled_speedup(),
            d.vectorized.warps_per_sec,
            d.vectorized_speedup()
        );
    }
    eprintln!("  wrote {hot_path}");

    // Larger scale than the wall-clock reports: the replay's occupancy and
    // latency-hiding behaviour only shows once every SM holds several
    // resident warps, and the report is modeled (deterministic), so the
    // extra dataset size costs regeneration time only.
    let s = sched_bench(21, 0.02, 11);
    let sched_json = s.to_json();
    require_ok(std::fs::write(&sched_path, &sched_json), &format!("write report {sched_path}"));

    eprintln!("scheduled execution, k={} ({} contigs, modeled):", s.k, s.contigs);
    for d in &s.dialects {
        eprintln!(
            "  {:>8} ({:<4}): analytic {:.4}s  scheduled {:.4}s ({:.2}x)  \
             occupancy {:.2}  hidden {:.2}",
            d.device.spec().short_name,
            d.dialect.to_string(),
            d.analytic_seconds,
            d.scheduled_seconds,
            d.time_ratio(),
            d.sched.occupancy(),
            d.sched.latency_hidden_fraction()
        );
    }
    eprintln!("  wrote {sched_path}");

    let l = layout_bench(21, 0.005, 11);
    let layout_json = l.to_json();
    require_ok(
        std::fs::write(&layout_path, &layout_json),
        &format!("write report {layout_path}"),
    );

    eprintln!("table layouts, k={} ({} contigs, modeled):", l.k, l.contigs);
    for row in &l.layouts {
        let a100 = &row.runs[0];
        eprintln!(
            "  {:>8}: {:>7} slots  load {:.2}  A100 {:.4}s  ({} runs)",
            row.layout.to_string(),
            row.slots,
            row.load_factor(),
            a100.seconds,
            row.runs.len()
        );
    }
    eprintln!("  wrote {layout_path}");

    let sv = service_bench(DeviceId::A100, 21, 0.005, 11);
    let service_json = sv.to_json();
    require_ok(
        std::fs::write(&service_path, &service_json),
        &format!("write report {service_path}"),
    );

    eprintln!(
        "service front-end, {} k={} ({} requests, {} tenants, capacity {:.1} req/s):",
        sv.device, sv.k, sv.requests, sv.tenants, sv.capacity_rps
    );
    for p in &sv.points {
        eprintln!(
            "  x{:<4}: {:>3} done {:>3} rejected {:>3} timed out  \
             p50 {:.4}s  p99 {:.4}s  {:.1} req/s",
            p.multiplier,
            p.completed,
            p.rejected,
            p.timed_out,
            p.p50_seconds,
            p.p99_seconds,
            p.throughput_rps
        );
    }
    eprintln!("  wrote {service_path}");

    let rz = resize_bench(DeviceId::A100, 21, 80);
    let resize_json = rz.to_json();
    require_ok(
        std::fs::write(&resize_path, &resize_json),
        &format!("write report {resize_path}"),
    );

    eprintln!(
        "escalation vs in-kernel resize, {} k={} ({} k-mers, modeled, {} attempts retired):",
        rz.device,
        rz.k,
        rz.n_kmers,
        rz.attempts_retired()
    );
    for row in &rz.rows {
        eprintln!(
            "  /{}: ladder {} attempts {:.6}s  resize {} attempts {:.6}s",
            row.divisor,
            row.escalation.attempts,
            row.escalation.seconds,
            row.resize.attempts,
            row.resize.seconds
        );
    }
    eprintln!("  wrote {resize_path}");
}

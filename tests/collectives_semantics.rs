//! Property tests pinning every warp collective to a scalar per-lane
//! reference model.
//!
//! The collectives are the intrinsics whose cross-vendor (un)availability
//! drives the paper's porting story (§III), so their semantics must be
//! exact: each test re-computes the expected result with a plain scalar
//! loop over lanes and compares against the SIMT implementation across
//! sub-group widths 16/32/64 (the three dialects' widths), random active
//! masks, and the documented edge cases — shuffle-source wrap at
//! `src >= width` (hardware `srcLane mod warpSize`), empty masks
//! (vacuous votes), and full masks.

use memhier::HierarchyConfig;
use proptest::prelude::*;
use simt::{LaneVec, Mask, Warp};

fn warp(width: u32) -> Warp {
    Warp::new(width, HierarchyConfig::tiny())
}

/// Clamp a raw 64-bit pattern to a legal active mask for `width`.
fn mask_for(raw: u64, width: u32) -> Mask {
    Mask(raw & Mask::full(width).0)
}

/// Scalar reference for `__ballot_sync`.
fn ballot_ref(width: u32, mask: Mask, preds: &[bool]) -> Mask {
    let mut out = Mask::NONE;
    for l in 0..width {
        if mask.contains(l) && preds[l as usize] {
            out.set(l);
        }
    }
    out
}

/// Scalar reference for `__match_any_sync`: active lanes holding an equal
/// key, per active lane; `Mask::NONE` for inactive lanes.
fn match_any_ref(width: u32, mask: Mask, keys: &[u64]) -> Vec<Mask> {
    (0..width)
        .map(|l| {
            if !mask.contains(l) {
                return Mask::NONE;
            }
            let mut m = Mask::NONE;
            for l2 in 0..width {
                if mask.contains(l2) && keys[l2 as usize] == keys[l as usize] {
                    m.set(l2);
                }
            }
            m
        })
        .collect()
}

const WIDTHS: [u32; 3] = [16, 32, 64];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ballot_matches_scalar_reference(
        w in proptest::sample::select(vec![16u32, 32, 64]),
        raw in any::<u64>(),
        preds in proptest::collection::vec(any::<bool>(), 64usize),
    ) {
        let mask = mask_for(raw, w);
        let lv = LaneVec::from_fn(w, |l| preds[l as usize]);
        prop_assert_eq!(warp(w).ballot(mask, &lv), ballot_ref(w, mask, &preds));
    }

    #[test]
    fn match_any_matches_scalar_reference(
        w in proptest::sample::select(vec![16u32, 32, 64]),
        raw in any::<u64>(),
        // Few distinct keys so collisions actually occur.
        keys in proptest::collection::vec(0u64..5, 64usize),
    ) {
        let mask = mask_for(raw, w);
        let lv = LaneVec::from_fn(w, |l| keys[l as usize]);
        let got = warp(w).match_any(mask, &lv);
        let want = match_any_ref(w, mask, &keys);
        for l in 0..w {
            prop_assert_eq!(got[l], want[l as usize], "lane {} width {}", l, w);
        }
        // Groups partition the active mask: every active lane is in its
        // own group, and group members agree on the group.
        for l in 0..w {
            if mask.contains(l) {
                prop_assert!(got[l].contains(l), "lane {} must match itself", l);
                for l2 in 0..w {
                    if got[l].contains(l2) {
                        prop_assert_eq!(got[l], got[l2], "groups must be consistent");
                    }
                }
            }
        }
    }

    #[test]
    fn all_and_any_match_scalar_reference(
        w in proptest::sample::select(vec![16u32, 32, 64]),
        raw in any::<u64>(),
        preds in proptest::collection::vec(any::<bool>(), 64usize),
    ) {
        let mask = mask_for(raw, w);
        let lv = LaneVec::from_fn(w, |l| preds[l as usize]);
        let want_all = (0..w).filter(|&l| mask.contains(l)).all(|l| preds[l as usize]);
        let want_any = (0..w).filter(|&l| mask.contains(l)).any(|l| preds[l as usize]);
        prop_assert_eq!(warp(w).all(mask, &lv), want_all);
        prop_assert_eq!(warp(w).any(mask, &lv), want_any);
        // De Morgan on the lane predicates.
        let neg = LaneVec::from_fn(w, |l| !preds[l as usize]);
        prop_assert_eq!(warp(w).all(mask, &lv), !warp(w).any(mask, &neg));
    }

    #[test]
    fn shfl_u32_matches_scalar_reference(
        w in proptest::sample::select(vec![16u32, 32, 64]),
        raw in any::<u64>(),
        vals in proptest::collection::vec(any::<u32>(), 64usize),
        src in 0u32..130,
    ) {
        let mask = mask_for(raw, w);
        let lv = LaneVec::from_fn(w, |l| vals[l as usize]);
        let got = warp(w).shfl_u32(mask, &lv, src);
        // Hardware semantics: every active lane receives lane
        // `src % width`'s register; inactive lanes read back 0.
        let broadcast = lv[src % w];
        for l in 0..64u32 {
            let want = if mask.contains(l) { broadcast } else { 0 };
            prop_assert_eq!(got[l], want, "lane {} width {} src {}", l, w, src);
        }
    }

    #[test]
    fn shfl_u64_matches_scalar_reference(
        w in proptest::sample::select(vec![16u32, 32, 64]),
        raw in any::<u64>(),
        vals in proptest::collection::vec(any::<u64>(), 64usize),
        src in 0u32..130,
    ) {
        let mask = mask_for(raw, w);
        let lv = LaneVec::from_fn(w, |l| vals[l as usize]);
        let got = warp(w).shfl_u64(mask, &lv, src);
        let broadcast = lv[src % w];
        for l in 0..64u32 {
            let want = if mask.contains(l) { broadcast } else { 0 };
            prop_assert_eq!(got[l], want, "lane {} width {} src {}", l, w, src);
        }
    }
}

/// The fixed edge cases the satellite fix exists for: `src >= width` must
/// wrap (`srcLane mod warpSize`), not read stale registers or panic.
#[test]
fn shuffle_source_wrap_fixed_cases() {
    for w in WIDTHS {
        let vals = LaneVec::from_fn(w, |l| 100 + l);
        let m = Mask::full(w);
        // src == width wraps to lane 0; src == width+3 to lane 3;
        // src == 64 (the old panic point) to lane 64 % width.
        assert_eq!(warp(w).shfl_u32(m, &vals, w)[0], 100, "width {w}");
        assert_eq!(warp(w).shfl_u32(m, &vals, w + 3)[0], 103, "width {w}");
        assert_eq!(warp(w).shfl_u32(m, &vals, 64)[0], 100 + (64 % w), "width {w}");
        assert_eq!(warp(w).shfl_u32(m, &vals, 127)[0], 100 + (127 % w), "width {w}");
    }
}

/// Vacuous votes on an empty mask: `all` is true, `any` and `ballot` are
/// empty — the HIP dialect's loop-top `__all(done)` termination relies on
/// exactly this.
#[test]
fn empty_mask_vote_fixed_cases() {
    for w in WIDTHS {
        let t = LaneVec::splat(true);
        let f = LaneVec::splat(false);
        assert!(warp(w).all(Mask::NONE, &f), "all() over no lanes is vacuously true");
        assert!(!warp(w).any(Mask::NONE, &t));
        assert_eq!(warp(w).ballot(Mask::NONE, &t), Mask::NONE);
    }
}

/// Full-mask ballots at every width, including the width-64 case whose
/// full mask has bit 63 set (the shift-overflow regression).
#[test]
fn full_mask_ballot_fixed_cases() {
    for w in WIDTHS {
        let t = LaneVec::splat(true);
        assert_eq!(warp(w).ballot(Mask::full(w), &t), Mask::full(w), "width {w}");
        let alternating = LaneVec::from_fn(w, |l| l % 2 == 0);
        let got = warp(w).ballot(Mask::full(w), &alternating);
        for l in 0..w {
            assert_eq!(got.contains(l), l % 2 == 0, "lane {l} width {w}");
        }
    }
}

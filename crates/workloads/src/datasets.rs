//! The four paper datasets (Table II), scalable.
//!
//! Table II of the paper:
//!
//! | k  | contigs | reads  | avg read len | insertions | avg extn | total extns |
//! |----|---------|--------|--------------|------------|----------|-------------|
//! | 21 | 14195   | 74159  | 155          | 10,011,465 | 48.2     | 684100      |
//! | 33 | 4394    | 20421  | 159          | 2,593,467  | 88.2     | 387283      |
//! | 55 | 3319    | 13160  | 166          | 1,473,920  | 161.0    | 534206      |
//! | 77 | 2544    | 7838   | 175          | 775,962    | 227.0    | 577496      |
//!
//! Reads are generated full-length, so at `scale = 1.0` the contig count,
//! read count, read length — and therefore the insertion total, which is
//! `reads × (read_len − k + 1)` — match the table exactly. Extension
//! lengths are emergent (they depend on coverage chains and the error
//! model) and are targeted by construction, then measured by
//! `stats::ExtensionStats`.

use crate::genome::random_genome;
use crate::sampler::{sample_left_junction, sample_right_junction, ReadProfile};
use locassm_core::io::Dataset;
use locassm_core::ContigJob;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generation parameters for one dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// k-mer size of this round.
    pub k: usize,
    /// Number of contigs.
    pub contigs: usize,
    /// Total reads across all contigs and both ends.
    pub reads: usize,
    /// Fixed read length.
    pub read_len: usize,
    /// Target *total* extension length per contig (Table II's "avg extn
    /// length"; each side gets half the budget of true genome beyond its
    /// junction).
    pub ext_target: usize,
    /// Contig length range.
    pub contig_len: std::ops::Range<usize>,
    /// Read error/quality model.
    pub profile: ReadProfile,
}

/// The paper's dataset for a given k (Table II row). Panics on a k outside
/// {21, 33, 55, 77}.
pub fn paper_spec(k: usize) -> DatasetSpec {
    let (contigs, reads, read_len, ext) = match k {
        21 => (14195, 74159, 155, 48),
        33 => (4394, 20421, 159, 88),
        55 => (3319, 13160, 166, 161),
        77 => (2544, 7838, 175, 227),
        _ => panic!("no paper dataset for k = {k} (expected 21, 33, 55 or 77)"),
    };
    DatasetSpec {
        k,
        contigs,
        reads,
        read_len,
        ext_target: ext,
        contig_len: 200..501,
        profile: ReadProfile::illumina_like(read_len),
    }
}

impl DatasetSpec {
    /// Scale contig and read counts by `scale` (for tests and quick runs),
    /// keeping the per-contig read density.
    pub fn scaled(mut self, scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        self.contigs = ((self.contigs as f64 * scale).round() as usize).max(1);
        self.reads = ((self.reads as f64 * scale).round() as usize).max(self.contigs);
        self
    }

    /// Generate the dataset deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let k = self.k;

        // Distribute reads over (contig, side) slots: every side gets one
        // read first (the input pairs each contig end with the reads that
        // aligned there — that is what selects a contig for local assembly
        // in the first place), and the remainder lands uniformly. If reads
        // are scarcer than sides, a random subset of sides is covered.
        use rand::seq::SliceRandom;
        let slots = self.contigs * 2;
        let mut per_slot = vec![0usize; slots];
        if self.reads >= slots {
            per_slot.fill(1);
            for _ in 0..self.reads - slots {
                per_slot[rng.random_range(0..slots)] += 1;
            }
        } else {
            for p in per_slot.iter_mut().take(self.reads) {
                *p = 1;
            }
            per_slot.shuffle(&mut rng);
        }

        // `ext_target` is the Table II *per-contig* average (both ends
        // combined); each side gets half the budget of true genome beyond
        // its junction.
        let side_ext = self.ext_target.div_ceil(2).max(k);

        let mut jobs = Vec::with_capacity(self.contigs);
        for c in 0..self.contigs {
            let contig_len = rng.random_range(self.contig_len.clone()).max(k + 1);
            // Genome: [left margin | contig | right margin], margins large
            // enough for the per-side extension budget and read overhang.
            let margin = side_ext + self.read_len;
            let genome_len = contig_len + 2 * margin;
            let genome = random_genome(genome_len, &mut rng);
            let left_j = margin;
            let right_j = margin + contig_len;
            let contig = genome[left_j..right_j].to_vec();

            let n_right = per_slot[2 * c];
            let n_left = per_slot[2 * c + 1];
            let right = sample_right_junction(
                &genome,
                right_j,
                side_ext,
                k,
                n_right,
                &self.profile,
                &mut rng,
            );
            let left = sample_left_junction(
                &genome,
                left_j,
                side_ext,
                k,
                n_left,
                &self.profile,
                &mut rng,
            );
            jobs.push(ContigJob::new(c as u32, contig, right, left));
        }
        Dataset::new(k, jobs)
    }
}

/// Generate the paper dataset for k at the given scale and seed.
pub fn paper_dataset(k: usize, scale: f64, seed: u64) -> Dataset {
    paper_spec(k).scaled(scale).generate(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_specs_match_table2() {
        for (k, contigs, reads, len, ins) in [
            (21usize, 14195usize, 74159usize, 155usize, 10_011_465usize),
            (33, 4394, 20421, 159, 2_593_467),
            (55, 3319, 13160, 166, 1_473_920),
            (77, 2544, 7838, 175, 775_962),
        ] {
            let s = paper_spec(k);
            assert_eq!(s.contigs, contigs);
            assert_eq!(s.reads, reads);
            assert_eq!(s.read_len, len);
            // insertions = reads × (read_len − k + 1), exactly Table II.
            assert_eq!(s.reads * (s.read_len - k + 1), ins, "k = {k}");
        }
    }

    #[test]
    fn generated_dataset_has_exact_counts() {
        let ds = paper_dataset(21, 0.01, 7);
        let spec = paper_spec(21).scaled(0.01);
        assert_eq!(ds.jobs.len(), spec.contigs);
        assert_eq!(ds.total_reads(), spec.reads);
        assert_eq!(ds.total_insertions(), spec.reads * (spec.read_len - 21 + 1));
        assert_eq!(ds.k, 21);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = paper_dataset(33, 0.005, 11);
        let b = paper_dataset(33, 0.005, 11);
        let c = paper_dataset(33, 0.005, 12);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn reads_are_full_length() {
        let ds = paper_dataset(55, 0.01, 3);
        for j in &ds.jobs {
            for r in j.right_reads.iter().chain(&j.left_reads) {
                assert_eq!(r.len(), 166);
            }
        }
    }

    #[test]
    fn contigs_long_enough_for_k() {
        let ds = paper_dataset(77, 0.01, 3);
        for j in &ds.jobs {
            assert!(j.contig.len() > 77);
        }
    }

    #[test]
    #[should_panic(expected = "no paper dataset")]
    fn unknown_k_rejected() {
        paper_spec(42);
    }

    #[test]
    fn scaling_preserves_density() {
        let full = paper_spec(21);
        let small = paper_spec(21).scaled(0.1);
        let d_full = full.reads as f64 / full.contigs as f64;
        let d_small = small.reads as f64 / small.contigs as f64;
        assert!((d_full - d_small).abs() < 0.1);
    }
}

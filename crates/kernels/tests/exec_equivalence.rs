//! Scalar/Vectorized/Scheduled bit-identity across the whole pipeline.
//!
//! `ExecMode::Vectorized` is a host-side interpreter fast path: batched
//! memory-hierarchy walks, skipped `LaneVec` construction on single-lane
//! accesses, and fingerprint-rejected probe compares. None of it may be
//! observable in modeled state. `ExecMode::Scheduled` rides the same fast
//! path and additionally records per-warp timelines for the event-driven
//! replay; the recorder is observational only, so every modeled result and
//! counter must still match Scalar bit for bit. This suite pins that
//! contract at full pipeline scope: all three dialects (via their native
//! devices), the four paper k presets, parallel and serial execution —
//! comparing extensions, fault outcomes, every aggregate counter, both
//! phase splits, full warp traces, and sanitizer reports.
//!
//! The only quantities allowed to differ under `Scheduled` are the modeled
//! seconds (the walk latency term comes from the replay instead of the
//! analytic formula) and `phases.sched` itself (absent in counter mode).

use gpu_specs::DeviceId;
use locassm_kernels::{run_local_assembly, GpuConfig, GpuRunResult, TableLayoutKind};
use simt::{ExecMode, SanitizerConfig};
use workloads::paper_dataset;

const DEVICES: [DeviceId; 3] = [DeviceId::A100, DeviceId::Mi250x, DeviceId::Max1550];

fn run_mode(
    ds: &locassm_core::io::Dataset,
    device: DeviceId,
    parallel: bool,
    exec: ExecMode,
) -> GpuRunResult {
    let mut cfg = GpuConfig::for_device(device);
    cfg.parallel = parallel;
    cfg.trace = true;
    cfg.sanitize = SanitizerConfig::all();
    cfg.exec = exec;
    run_local_assembly(ds, &cfg)
}

/// Everything that must match between `a` and the Scalar baseline `sca`,
/// regardless of execution mode. Modeled seconds are pinned separately:
/// Vectorized must reproduce them exactly, Scheduled legitimately differs
/// (simulated latency term).
fn assert_modeled_state_identical(a: &GpuRunResult, sca: &GpuRunResult, tag: &str) {
    assert_eq!(a.extensions, sca.extensions, "{tag}: extensions");
    assert_eq!(a.outcomes, sca.outcomes, "{tag}: outcomes");
    assert_eq!(a.profile.total, sca.profile.total, "{tag}: aggregate counters");
    assert_eq!(
        a.profile.phases.construct, sca.profile.phases.construct,
        "{tag}: construct phase"
    );
    assert_eq!(a.profile.phases.walk, sca.profile.phases.walk, "{tag}: walk phase");
    assert_eq!(
        a.profile.phases.walk_budget, sca.profile.phases.walk_budget,
        "{tag}: walk budget"
    );
    assert_eq!(
        a.profile.phases.watchdog_trips, sca.profile.phases.watchdog_trips,
        "{tag}: watchdog trips"
    );
    assert_eq!(a.traces, sca.traces, "{tag}: warp traces");
    assert_eq!(a.san, sca.san, "{tag}: sanitizer reports");
}

fn assert_bit_identical(ds: &locassm_core::io::Dataset, device: DeviceId, parallel: bool, tag: &str) {
    let sca = run_mode(ds, device, parallel, ExecMode::Scalar);

    let vec = run_mode(ds, device, parallel, ExecMode::Vectorized);
    assert_modeled_state_identical(&vec, &sca, &format!("{tag} vectorized"));
    assert_eq!(vec.profile.seconds(), sca.profile.seconds(), "{tag}: modeled seconds");
    assert!(vec.profile.phases.sched.is_none(), "{tag}: counter-mode sched profile");

    let schd = run_mode(ds, device, parallel, ExecMode::Scheduled);
    assert_modeled_state_identical(&schd, &sca, &format!("{tag} scheduled"));
    assert_sched_profile_sane(&schd, &format!("{tag} scheduled"));
}

/// A Scheduled run must surface a replay profile with physically sensible
/// counters: at least one SM used, a finite positive makespan, occupancy in
/// (0, 1], a hidden fraction in [0, 1], and a finite modeled time.
fn assert_sched_profile_sane(r: &GpuRunResult, tag: &str) {
    let sched = r
        .profile
        .phases
        .sched
        .expect("scheduled runs must populate phases.sched");
    assert!(sched.sms_used > 0, "{tag}: sms_used");
    assert!(sched.residency > 0, "{tag}: residency");
    assert!(sched.makespan_ticks > 0, "{tag}: makespan");
    assert!(sched.busy_ticks > 0, "{tag}: busy ticks");
    let occ = sched.occupancy();
    assert!(occ > 0.0 && occ <= 1.0, "{tag}: occupancy {occ}");
    let hidden = sched.latency_hidden_fraction();
    assert!((0.0..=1.0).contains(&hidden), "{tag}: hidden fraction {hidden}");
    assert!(
        r.profile.seconds().is_finite() && r.profile.seconds() > 0.0,
        "{tag}: scheduled seconds"
    );
    assert!(
        r.sched_tracks.is_empty(),
        "{tag}: SM tracks must stay empty unless GpuConfig::sched_tracks is set"
    );
}

/// The full matrix on the primary k = 21 preset: three dialects ×
/// parallel/serial × all three execution modes, traced and fully sanitized.
#[test]
fn exec_modes_bit_identical_all_dialects_k21() {
    let ds = paper_dataset(21, 0.002, 42);
    for device in DEVICES {
        for parallel in [true, false] {
            assert_bit_identical(&ds, device, parallel, &format!("{device} parallel={parallel}"));
        }
    }
}

/// The remaining paper presets (k ∈ {33, 55, 77}), each on every dialect
/// (serial keeps the launch order deterministic in the tag output; the
/// parallel half of the matrix is pinned above).
#[test]
fn exec_modes_bit_identical_remaining_k_presets() {
    for (k, seed) in [(33usize, 7u64), (55, 13), (77, 99)] {
        let ds = paper_dataset(k, 0.002, seed);
        for device in DEVICES {
            assert_bit_identical(&ds, device, false, &format!("k={k} {device}"));
        }
    }
}

/// The table-layout axis of the matrix: every layout × every dialect must
/// hold the same Scalar/Vectorized/Scheduled bit-identity the linear
/// default does — the vectorized fast path's fingerprint rejection and
/// the scheduled recorder know nothing about bucket boundaries, so a
/// divergence here means a layout leaked into modeled state.
#[test]
fn exec_modes_bit_identical_across_table_layouts() {
    let ds = paper_dataset(21, 0.002, 42);
    for layout in TableLayoutKind::ALL {
        for device in DEVICES {
            let tag = format!("layout={layout} {device}");
            let run = |exec| {
                let mut cfg = GpuConfig::for_device(device);
                cfg.parallel = false;
                cfg.trace = true;
                cfg.sanitize = SanitizerConfig::all();
                cfg.exec = exec;
                cfg.layout = layout;
                run_local_assembly(&ds, &cfg)
            };
            let sca = run(ExecMode::Scalar);
            let vec = run(ExecMode::Vectorized);
            assert_modeled_state_identical(&vec, &sca, &format!("{tag} vectorized"));
            assert_eq!(vec.profile.seconds(), sca.profile.seconds(), "{tag}: seconds");
            let schd = run(ExecMode::Scheduled);
            assert_modeled_state_identical(&schd, &sca, &format!("{tag} scheduled"));
            assert_sched_profile_sane(&schd, &format!("{tag} scheduled"));
        }
    }
}

/// Arming in-kernel resizing is free until a resize actually triggers:
/// on the paper dataset every host-side slot estimate holds, the
/// high-water mark is never crossed, and the pre-insert capacity check
/// charges no modeled work. A resize-armed run must therefore be
/// bit-identical — extensions, outcomes, every counter, traces,
/// sanitizer reports, and modeled seconds — to the resize-disabled run
/// on every device, in every execution mode.
#[test]
fn armed_but_untriggered_resize_is_bit_identical() {
    let ds = paper_dataset(21, 0.002, 42);
    for device in DEVICES {
        for exec in [ExecMode::Scalar, ExecMode::Vectorized] {
            let run = |resize| {
                let mut cfg = GpuConfig::for_device(device);
                cfg.parallel = false;
                cfg.trace = true;
                cfg.sanitize = SanitizerConfig::all();
                cfg.exec = exec;
                cfg.resize = resize;
                run_local_assembly(&ds, &cfg)
            };
            let off = run(false);
            let on = run(true);
            let tag = format!("resize-armed {device} {exec:?}");
            assert_modeled_state_identical(&on, &off, &tag);
            assert_eq!(on.profile.seconds(), off.profile.seconds(), "{tag}: seconds");
        }
    }
}

/// The replay is a deterministic function of the recorded timelines:
/// two Scheduled runs over the same dataset must agree on every sched
/// counter and on the modeled seconds, and the serial/parallel launch
/// paths must agree with each other (timelines merge in job order).
#[test]
fn scheduled_replay_is_deterministic() {
    let ds = paper_dataset(21, 0.002, 42);
    for device in DEVICES {
        let a = run_mode(&ds, device, true, ExecMode::Scheduled);
        let b = run_mode(&ds, device, true, ExecMode::Scheduled);
        let serial = run_mode(&ds, device, false, ExecMode::Scheduled);
        assert_eq!(a.profile.phases.sched, b.profile.phases.sched, "{device}: repeat run");
        assert_eq!(a.profile.seconds(), b.profile.seconds(), "{device}: repeat seconds");
        assert_eq!(
            a.profile.phases.sched, serial.profile.phases.sched,
            "{device}: parallel vs serial replay"
        );
    }
}

/// SM track recording is opt-in, produces non-empty phase-labelled slices
/// on a run-global clock, and does not perturb the replay accounting.
#[test]
fn sched_tracks_are_opt_in_and_consistent() {
    let ds = paper_dataset(21, 0.002, 42);
    let mut cfg = GpuConfig::for_device(DeviceId::A100);
    cfg.exec = ExecMode::Scheduled;
    cfg.sched_tracks = true;
    let tracked = run_local_assembly(&ds, &cfg);
    cfg.sched_tracks = false;
    let plain = run_local_assembly(&ds, &cfg);

    assert!(!tracked.sched_tracks.is_empty(), "tracks requested but none recorded");
    assert!(plain.sched_tracks.is_empty(), "tracks recorded without the flag");
    assert_eq!(
        tracked.profile.phases.sched, plain.profile.phases.sched,
        "track recording must not change the replay accounting"
    );
    let sched = tracked.profile.phases.sched.expect("sched profile");
    for s in &tracked.sched_tracks {
        assert!(s.start < s.end, "degenerate slice on SM {}", s.sm);
        assert!(s.sm < sched.sms_used, "slice on SM {} beyond sms_used", s.sm);
        assert!(!s.phase.is_empty(), "unlabelled slice on SM {}", s.sm);
    }
}

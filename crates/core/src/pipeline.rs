//! The iterative local assembly workflow (Fig. 2, local-assembly slice).
//!
//! MetaHipMer calls the local assembly module once per iteration with a
//! successively larger k (21, 33, 55, 77): small k bridges low-coverage
//! junctions, large k resolves repeats/forks left by the smaller graphs
//! (Fig. 1b). We reproduce that loop: each round extends the contigs of the
//! previous round. The production pipeline re-aligns reads between rounds;
//! we keep each contig's read set fixed (a documented simplification —
//! alignment is outside the local assembly kernel being studied).

use crate::assemble::{assemble_all, AssemblyConfig, ExtensionResult};
use crate::contig::ContigJob;
use crate::walk::WalkConfig;
use serde::{Deserialize, Serialize};

/// The k-mer schedule MetaHipMer uses in production (paper Fig. 2).
pub const PRODUCTION_K_SCHEDULE: [usize; 4] = [21, 33, 55, 77];

/// Per-round report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundReport {
    pub k: usize,
    /// Contigs that gained at least one base this round.
    pub contigs_extended: usize,
    /// Total bases gained this round.
    pub bases_gained: usize,
    /// Total contig length after this round.
    pub total_contig_len: usize,
}

/// Outcome of the full iterative pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineResult {
    /// Final contigs (same order as the input jobs).
    pub contigs: Vec<Vec<u8>>,
    /// One report per round, in schedule order.
    pub rounds: Vec<RoundReport>,
}

/// Run the iterative pipeline over `schedule`, mutating contigs between
/// rounds. Rounds whose k exceeds a contig's length skip that contig
/// (consistent with the per-side guard in `assemble`).
pub fn run_pipeline(
    jobs: &[ContigJob],
    schedule: &[usize],
    walk: WalkConfig,
    parallel: bool,
) -> PipelineResult {
    let mut current: Vec<ContigJob> = jobs.to_vec();
    let mut rounds = Vec::with_capacity(schedule.len());

    for &k in schedule {
        let cfg = AssemblyConfig { k, walk, retry: crate::retry::RetryPolicy::none() };
        let results: Vec<ExtensionResult> = assemble_all(&current, &cfg, parallel);
        let mut extended = 0usize;
        let mut gained = 0usize;
        for (job, r) in current.iter_mut().zip(&results) {
            if r.total_len() > 0 {
                extended += 1;
                gained += r.total_len();
                job.contig = r.apply(&job.contig);
            }
        }
        rounds.push(RoundReport {
            k,
            contigs_extended: extended,
            bases_gained: gained,
            total_contig_len: current.iter().map(|j| j.contig.len()).sum(),
        });
    }

    PipelineResult { contigs: current.into_iter().map(|j| j.contig).collect(), rounds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::read::Read;

    /// A genome where the 4-mer "ACGT" repeats with different followers —
    /// an unresolvable fork at k=4 that k=8 resolves (the Fig. 1b scenario).
    fn forked_job() -> ContigJob {
        let genome = b"TTGACGTAGCAACGTCGGTT"; // "ACGT" at 3→A and 11→C
        let contig = genome[..8].to_vec(); // "TTGACGTA"
        // Both reads span both "ACGT" occurrences → balanced fork votes.
        let reads = vec![
            Read::with_uniform_qual(&genome[1..20], b'I'),
            Read::with_uniform_qual(&genome[2..20], b'I'),
        ];
        ContigJob::new(0, contig, reads, vec![])
    }

    #[test]
    fn larger_k_resolves_fork() {
        let job = forked_job();
        let walk = WalkConfig { min_votes: 1, ..WalkConfig::default() };

        // k=4 alone stalls at the ACGT fork before reaching the end.
        let small = run_pipeline(std::slice::from_ref(&job), &[4], walk, false);
        // k=4 then k=8 finishes the contig.
        let sched = run_pipeline(std::slice::from_ref(&job), &[4, 8], walk, false);
        assert!(
            sched.contigs[0].len() > small.contigs[0].len(),
            "second round with larger k must extend further: {:?} vs {:?}",
            String::from_utf8_lossy(&sched.contigs[0]),
            String::from_utf8_lossy(&small.contigs[0])
        );
        assert!(sched.contigs[0].ends_with(b"CGGTT"));
    }

    #[test]
    fn reports_are_consistent() {
        let job = forked_job();
        let walk = WalkConfig { min_votes: 1, ..WalkConfig::default() };
        let out = run_pipeline(std::slice::from_ref(&job), &[4, 8], walk, false);
        assert_eq!(out.rounds.len(), 2);
        for r in &out.rounds {
            assert!(r.contigs_extended <= 1);
        }
        let total_gain: usize = out.rounds.iter().map(|r| r.bases_gained).sum();
        assert_eq!(out.contigs[0].len(), forked_job().contig.len() + total_gain);
        assert_eq!(out.rounds.last().unwrap().total_contig_len, out.contigs[0].len());
    }

    #[test]
    fn empty_schedule_is_identity() {
        let job = forked_job();
        let out = run_pipeline(
            std::slice::from_ref(&job),
            &[],
            WalkConfig::default(),
            false,
        );
        assert_eq!(out.contigs[0], job.contig);
        assert!(out.rounds.is_empty());
    }

    #[test]
    fn oversized_k_rounds_are_noops() {
        let job = forked_job();
        let out = run_pipeline(
            std::slice::from_ref(&job),
            &[1000],
            WalkConfig::default(),
            false,
        );
        assert_eq!(out.contigs[0], job.contig);
        assert_eq!(out.rounds[0].bases_gained, 0);
    }
}

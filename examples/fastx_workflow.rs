//! File-based workflow: contigs arrive as FASTA, reads as FASTQ (the
//! formats a real pipeline hands over), alignment recruits boundary reads,
//! the simulated GPU extends the contigs, and the result is written back
//! as FASTA.
//!
//! ```sh
//! cargo run --release --example fastx_workflow
//! ```

use locassm::core::align::{assign_reads_to_ends, AlignConfig};
use locassm::core::fastx::{
    read_fasta, read_fastq, write_fasta, write_fastq, FastaRecord, FastqRecord,
};
use locassm::core::io::Dataset;
use locassm::kernels::{run_local_assembly, GpuConfig};
use locassm::specs::DeviceId;
use locassm::workloads::genome::random_genome;
use locassm::workloads::sampler::{read_at, ReadProfile};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() -> std::io::Result<()> {
    let dir = std::env::temp_dir().join("locassm_fastx_demo");
    std::fs::create_dir_all(&dir)?;
    let mut rng = StdRng::seed_from_u64(77);

    // --- Produce the input files (standing in for an upstream pipeline).
    let genome = random_genome(3000, &mut rng);
    let contig_records: Vec<FastaRecord> = (0..4)
        .map(|i| {
            let s = 200 + i * 700;
            FastaRecord { id: format!("contig_{i}"), seq: genome[s..s + 500].to_vec() }
        })
        .collect();
    let profile = ReadProfile::illumina_like(110);
    let read_records: Vec<FastqRecord> = (0..400)
        .map(|i| {
            let start = rng.random_range(0..genome.len() - profile.read_len);
            FastqRecord { id: format!("read_{i}"), read: read_at(&genome, start, &profile, &mut rng) }
        })
        .collect();

    let contigs_fa = dir.join("contigs.fasta");
    let reads_fq = dir.join("reads.fastq");
    {
        let mut f = std::fs::File::create(&contigs_fa)?;
        write_fasta(&mut f, &contig_records, 70)?;
        let mut f = std::fs::File::create(&reads_fq)?;
        write_fastq(&mut f, &read_records)?;
    }
    println!("wrote {} and {}", contigs_fa.display(), reads_fq.display());

    // --- The workflow proper: read files → align → extend → write.
    let contigs: Vec<Vec<u8>> =
        read_fasta(std::io::BufReader::new(std::fs::File::open(&contigs_fa)?))?
            .into_iter()
            .map(|r| r.seq)
            .collect();
    let reads: Vec<locassm::core::Read> =
        read_fastq(std::io::BufReader::new(std::fs::File::open(&reads_fq)?))?
            .into_iter()
            .map(|r| r.read)
            .collect();
    println!("loaded {} contigs, {} reads", contigs.len(), reads.len());

    let k = 21;
    let jobs = assign_reads_to_ends(&contigs, &reads, k, AlignConfig::default());
    let recruited: usize = jobs.iter().map(|j| j.read_count()).sum();
    println!("alignment recruited {recruited} boundary reads");

    let ds = Dataset::new(k, jobs);
    let run = run_local_assembly(&ds, &GpuConfig::for_device(DeviceId::A100));
    let gained: usize = run.extensions.iter().map(|e| e.total_len()).sum();
    println!(
        "extended by {gained} bases on the simulated {} ({:.2} ms kernel time)",
        DeviceId::A100,
        run.profile.seconds() * 1e3
    );

    let extended: Vec<FastaRecord> = ds
        .jobs
        .iter()
        .zip(&run.extensions)
        .map(|(job, e)| FastaRecord {
            id: format!("contig_{} extended_by={}", job.id, e.total_len()),
            seq: e.apply(&job.contig),
        })
        .collect();
    let out_fa = dir.join("contigs.extended.fasta");
    let mut f = std::fs::File::create(&out_fa)?;
    write_fasta(&mut f, &extended, 70)?;
    println!("wrote {}", out_fa.display());

    // Every extension must be genuine genome sequence.
    for rec in &extended {
        assert!(
            genome.windows(rec.seq.len()).any(|w| w == rec.seq),
            "{} is not a genome substring",
            rec.id
        );
    }
    println!("verified: every extended contig is a true genome substring");
    Ok(())
}

//! Cache and hierarchy configuration.

use serde::{Deserialize, Serialize};

/// Size of one HBM transaction / cache sector in bytes.
///
/// NVIDIA and AMD GPUs move data between L2 and DRAM in 32-byte sectors
/// (`rocprof` even reports `TCC_EA_RDREQ_32B` explicitly); we adopt 32 B
/// uniformly, matching the paper's Appendix B byte formulas.
pub const SECTOR_BYTES: u64 = 32;

/// Configuration of a single cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Cache-line size in bytes (must be a multiple of [`SECTOR_BYTES`]).
    pub line_bytes: u64,
    /// Associativity (ways per set). `0` is invalid.
    pub ways: u32,
    /// Sectored fills (NVIDIA/Intel style: a miss fetches only the
    /// requested 32 B sector). When `false` (AMD CDNA style), a line miss
    /// fetches the *whole* line from the level below — the fetch-granularity
    /// amplification behind the MI250X's elevated DRAM traffic on
    /// scattered accesses.
    pub sectored: bool,
}

impl CacheConfig {
    /// A new sectored configuration; panics on degenerate geometry.
    pub fn new(capacity_bytes: u64, line_bytes: u64, ways: u32) -> Self {
        assert!(capacity_bytes > 0, "cache capacity must be non-zero");
        assert!(
            line_bytes >= SECTOR_BYTES && line_bytes.is_multiple_of(SECTOR_BYTES),
            "line size must be a positive multiple of the {SECTOR_BYTES}-byte sector"
        );
        assert!(ways > 0, "associativity must be at least 1");
        assert!(
            capacity_bytes.is_multiple_of(line_bytes * ways as u64),
            "capacity {capacity_bytes} must divide evenly into {ways}-way sets of {line_bytes}-byte lines"
        );
        Self { capacity_bytes, line_bytes, ways, sectored: true }
    }

    /// The same geometry with whole-line fills.
    pub fn non_sectored(mut self) -> Self {
        self.sectored = false;
        self
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.capacity_bytes / (self.line_bytes * self.ways as u64)
    }

    /// Number of sectors per line.
    pub fn sectors_per_line(&self) -> u32 {
        (self.line_bytes / SECTOR_BYTES) as u32
    }

    /// Total number of lines.
    pub fn lines(&self) -> u64 {
        self.capacity_bytes / self.line_bytes
    }
}

/// Configuration of a full per-warp hierarchy view: an L1 slice and an
/// (effective, occupancy-shared) L2 slice in front of HBM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    pub l1: CacheConfig,
    pub l2: CacheConfig,
}

impl HierarchyConfig {
    pub fn new(l1: CacheConfig, l2: CacheConfig) -> Self {
        Self { l1, l2 }
    }

    /// A tiny hierarchy used by unit tests.
    pub fn tiny() -> Self {
        Self {
            l1: CacheConfig::new(1 << 10, 128, 4),
            l2: CacheConfig::new(1 << 14, 128, 8),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_derivations() {
        let c = CacheConfig::new(192 * 1024, 128, 4);
        assert_eq!(c.sets(), 192 * 1024 / (128 * 4));
        assert_eq!(c.sectors_per_line(), 4);
        assert_eq!(c.lines(), 192 * 1024 / 128);
    }

    #[test]
    #[should_panic(expected = "associativity")]
    fn zero_ways_rejected() {
        CacheConfig::new(1024, 128, 0);
    }

    #[test]
    #[should_panic(expected = "sector")]
    fn bad_line_size_rejected() {
        CacheConfig::new(1024, 48, 2);
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn ragged_capacity_rejected() {
        CacheConfig::new(1000, 128, 2);
    }

    #[test]
    fn tiny_hierarchy_is_consistent() {
        let h = HierarchyConfig::tiny();
        assert!(h.l1.capacity_bytes < h.l2.capacity_bytes);
    }
}

//! CSV and trace export of analysis data.
//!
//! The repro harness prints ASCII tables/plots; for external plotting
//! (matplotlib, gnuplot, …) it can also emit the underlying data as CSV
//! via `repro --csv <dir>`, and warp traces as Chrome `trace_event` JSON
//! via `repro --trace <path>` (load in `chrome://tracing` or Perfetto).
//! The writers are deliberately minimal: RFC-4180 quoting / hand-rolled
//! JSON, no dependencies.

use simt::{EventKind, WarpTrace};
use std::fmt::Write as _;

/// A CSV document under construction.
#[derive(Debug, Clone, Default)]
pub struct Csv {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

/// Quote a field per RFC 4180 when needed.
fn quote(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

impl Csv {
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Csv { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a row; width must match the header.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "CSV row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Render the document.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let write_row = |out: &mut String, row: &[String]| {
            let line: Vec<String> = row.iter().map(|c| quote(c)).collect();
            let _ = writeln!(out, "{}", line.join(","));
        };
        write_row(&mut out, &self.header);
        for r in &self.rows {
            write_row(&mut out, r);
        }
        out
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }
}

/// Format a float with full round-trip precision for CSV cells.
pub fn num(v: f64) -> String {
    format!("{v}")
}

/// Escape a string for a JSON string literal (without the quotes).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The JSON `args` object for an instant event.
fn event_args(kind: &EventKind) -> String {
    match kind {
        EventKind::ProbeChain { rounds } => format!("{{\"rounds\":{rounds}}}"),
        EventKind::WalkStep { probes } => format!("{{\"probes\":{probes}}}"),
        EventKind::HbmTx { read, write } => {
            format!("{{\"read_tx\":{read},\"write_tx\":{write}}}")
        }
        EventKind::Watchdog { budget, spent } => {
            format!("{{\"budget\":{budget},\"spent\":{spent}}}")
        }
        EventKind::SanFinding { check } => {
            format!("{{\"check\":\"{}\"}}", json_escape(check))
        }
        EventKind::Collective { .. } | EventKind::Sync => "{}".to_string(),
    }
}

/// Render warp traces as Chrome `trace_event` JSON.
///
/// Load the output in `chrome://tracing` or <https://ui.perfetto.dev>.
/// One timeline thread per warp (`tid` = `warp_id`); the time axis is the
/// warp's deterministic instruction clock, reported as microseconds so
/// the viewers render it (1 "µs" = 1 warp instruction). Phase spans
/// become `"X"` complete events carrying their counter deltas in `args`;
/// probe chains, collectives, syncs, walk steps and HBM transactions
/// become `"i"` instant events.
pub fn chrome_trace(traces: &[WarpTrace]) -> String {
    let mut ev: Vec<String> = Vec::new();
    for t in traces {
        let tid = t.warp_id;
        ev.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
             \"args\":{{\"name\":\"warp {tid} (width {w})\"}}}}",
            w = t.width
        ));
        for s in &t.spans {
            let d = &s.delta;
            ev.push(format!(
                "{{\"name\":\"{name}\",\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\
                 \"ts\":{ts},\"dur\":{dur},\"args\":{{\
                 \"warp_instructions\":{wi},\"intops\":{intops},\
                 \"lane_utilization\":{util},\"hbm_bytes\":{hbm},\
                 \"collectives\":{coll},\"atomics\":{atomics}}}}}",
                name = json_escape(s.name),
                ts = s.start,
                dur = s.end - s.start,
                wi = d.warp_instructions,
                intops = d.intops(),
                util = d.lane_utilization(),
                hbm = d.mem.hbm_bytes(),
                coll = d.collective_instructions,
                atomics = d.atomic_instructions,
            ));
        }
        for e in &t.events {
            ev.push(format!(
                "{{\"name\":\"{name}\",\"ph\":\"i\",\"pid\":0,\"tid\":{tid},\
                 \"ts\":{ts},\"s\":\"t\",\"args\":{args}}}",
                name = json_escape(e.kind.name()),
                ts = e.at,
                args = event_args(&e.kind),
            ));
        }
    }
    format!("{{\"traceEvents\":[\n{}\n]}}\n", ev.join(",\n"))
}

/// Render scheduled-execution SM tracks as Chrome `trace_event` JSON.
///
/// One timeline thread per SM issue port (`pid` 1, `tid` = SM index), so a
/// scheduled-mode export can be loaded alongside [`chrome_trace`] warp
/// lanes (pid 0) in the same viewer. Each [`simt::SmSlice`] becomes an
/// `"X"` complete event named after its kernel phase, carrying the issuing
/// warp id in `args`. The time axis is the replay's tick clock: 1 tick =
/// 1 ps (see `docs/TIMING.md`), reported as microseconds so Perfetto
/// renders real durations (`ts` = ticks / 1e6).
pub fn sched_trace(slices: &[simt::SmSlice]) -> String {
    let mut ev: Vec<String> = Vec::new();
    let mut seen_sms: Vec<u32> = slices.iter().map(|s| s.sm).collect();
    seen_sms.sort_unstable();
    seen_sms.dedup();
    for sm in seen_sms {
        ev.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{sm},\
             \"args\":{{\"name\":\"SM {sm}\"}}}}"
        ));
    }
    for s in slices {
        ev.push(format!(
            "{{\"name\":\"{name}\",\"ph\":\"X\",\"pid\":1,\"tid\":{sm},\
             \"ts\":{ts},\"dur\":{dur},\"args\":{{\"warp\":{warp}}}}}",
            name = json_escape(s.phase),
            sm = s.sm,
            ts = num(s.start as f64 / 1e6),
            dur = num((s.end - s.start) as f64 / 1e6),
            warp = s.warp,
        ));
    }
    format!("{{\"traceEvents\":[\n{}\n]}}\n", ev.join(",\n"))
}

/// Flatten SM tracks into a per-slice CSV (one row per issue-port slice).
///
/// Columns mirror the `args` of [`sched_trace`]; `start_ticks`/`end_ticks`
/// are on the run-global picosecond clock.
pub fn sched_csv(slices: &[simt::SmSlice]) -> Csv {
    let mut csv = Csv::new(["sm", "warp", "phase", "start_ticks", "end_ticks", "duration_ticks"]);
    for s in slices {
        csv.row([
            s.sm.to_string(),
            s.warp.to_string(),
            s.phase.to_string(),
            s.start.to_string(),
            s.end.to_string(),
            (s.end - s.start).to_string(),
        ]);
    }
    csv
}

/// Flatten warp traces into a per-span CSV (one row per phase span).
///
/// Columns mirror the `args` of [`chrome_trace`] so the two exports can
/// be cross-checked; aggregate with your plotting tool of choice.
pub fn phase_csv(traces: &[WarpTrace]) -> Csv {
    let mut csv = Csv::new([
        "warp_id",
        "phase",
        "depth",
        "start",
        "end",
        "warp_instructions",
        "int_instructions",
        "intops",
        "lane_utilization",
        "hbm_bytes",
        "collectives",
        "atomics",
    ]);
    for t in traces {
        for s in &t.spans {
            let d = &s.delta;
            csv.row([
                t.warp_id.to_string(),
                s.name.to_string(),
                s.depth.to_string(),
                s.start.to_string(),
                s.end.to_string(),
                d.warp_instructions.to_string(),
                d.int_instructions.to_string(),
                d.intops().to_string(),
                num(d.lane_utilization()),
                d.mem.hbm_bytes().to_string(),
                d.collective_instructions.to_string(),
                d.atomic_instructions.to_string(),
            ]);
        }
    }
    csv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_and_rows() {
        let mut c = Csv::new(["k", "device", "seconds"]);
        c.row(["21", "NVIDIA", "0.19"]);
        c.row(["33", "AMD", "0.25"]);
        assert_eq!(c.render(), "k,device,seconds\n21,NVIDIA,0.19\n33,AMD,0.25\n");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn quotes_special_fields() {
        let mut c = Csv::new(["a", "b"]);
        c.row(["plain", "has,comma"]);
        c.row(["has\"quote", "has\nnewline"]);
        let s = c.render();
        assert!(s.contains("\"has,comma\""));
        assert!(s.contains("\"has\"\"quote\""));
        assert!(s.contains("\"has\nnewline\""));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn ragged_rows_rejected() {
        Csv::new(["a", "b"]).row(["only"]);
    }

    #[test]
    fn parse_roundtrip_simple() {
        // Fields without specials parse back by naive split.
        let mut c = Csv::new(["x", "y"]);
        c.row([num(1.5), num(2.25)]);
        let line = c.render().lines().nth(1).unwrap().to_string();
        let parts: Vec<f64> = line.split(',').map(|p| p.parse().unwrap()).collect();
        assert_eq!(parts, vec![1.5, 2.25]);
    }
}

#[cfg(test)]
mod trace_export_tests {
    use super::*;
    use simt::{Event, Span, WarpCounters, WarpTrace};

    /// A small hand-built two-phase trace (shared with the golden-file
    /// integration test via `perfmodel::export::test_fixture`).
    pub fn fixture() -> Vec<WarpTrace> {
        super::test_fixture()
    }

    #[test]
    fn chrome_trace_has_spans_and_instants() {
        let s = chrome_trace(&fixture());
        assert!(s.starts_with("{\"traceEvents\":["));
        assert!(s.contains("\"ph\":\"M\"")); // thread_name metadata
        assert!(s.contains("\"name\":\"construct\",\"ph\":\"X\""));
        assert!(s.contains("\"name\":\"walk\",\"ph\":\"X\""));
        assert!(s.contains("\"name\":\"probe_chain\",\"ph\":\"i\""));
        assert!(s.contains("\"rounds\":2"));
        assert!(s.contains("\"read_tx\":4,\"write_tx\":1"));
        assert!(s.contains("\"dur\":40"));
    }

    #[test]
    fn phase_csv_one_row_per_span() {
        let csv = phase_csv(&fixture());
        assert_eq!(csv.len(), 2);
        let s = csv.render();
        let mut lines = s.lines();
        assert!(lines.next().unwrap().starts_with("warp_id,phase,"));
        let row: Vec<&str> = lines.next().unwrap().split(',').collect();
        assert_eq!(row[0], "0");
        assert_eq!(row[1], "construct");
        assert_eq!(row[5], "40"); // warp_instructions
        assert_eq!(row[7], "800"); // intops = 25 × 32
    }

    #[test]
    fn empty_trace_list_is_valid() {
        assert_eq!(chrome_trace(&[]), "{\"traceEvents\":[\n\n]}\n");
        assert!(phase_csv(&[]).is_empty());
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn sched_trace_renders_sm_lanes() {
        let slices = vec![
            simt::SmSlice { sm: 0, warp: 0, start: 0, end: 2_000_000, phase: "stage" },
            simt::SmSlice { sm: 0, warp: 1, start: 2_000_000, end: 5_000_000, phase: "walk" },
            simt::SmSlice { sm: 1, warp: 2, start: 0, end: 1_500_000, phase: "walk" },
        ];
        let s = sched_trace(&slices);
        assert!(s.starts_with("{\"traceEvents\":["));
        // One metadata event per distinct SM, on pid 1.
        assert_eq!(s.matches("\"ph\":\"M\"").count(), 2);
        assert!(s.contains("\"args\":{\"name\":\"SM 0\"}"));
        assert!(s.contains("\"args\":{\"name\":\"SM 1\"}"));
        // Ticks (ps) are reported as µs.
        assert!(s.contains("\"name\":\"stage\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":0,\"dur\":2"));
        assert!(s.contains("\"ts\":2,\"dur\":3,\"args\":{\"warp\":1}"));
        assert!(s.contains("\"ts\":0,\"dur\":1.5,\"args\":{\"warp\":2}"));
        assert_eq!(sched_trace(&[]), "{\"traceEvents\":[\n\n]}\n");
    }

    #[test]
    fn sched_csv_one_row_per_slice() {
        let slices = vec![
            simt::SmSlice { sm: 3, warp: 7, start: 10, end: 25, phase: "construct" },
        ];
        let csv = sched_csv(&slices);
        assert_eq!(csv.len(), 1);
        let s = csv.render();
        assert!(s.starts_with("sm,warp,phase,start_ticks,end_ticks,duration_ticks\n"));
        assert!(s.contains("3,7,construct,10,25,15"));
        assert!(sched_csv(&[]).is_empty());
    }

    #[test]
    fn fixture_is_well_formed() {
        let t = &fixture()[0];
        assert_eq!(t.spans.len(), 2);
        assert_eq!(t.events.len(), 4);
        let _ = (Span { ..t.spans[0] }, Event { ..t.events[0] });
        assert_eq!(t.spans[0].delta.width, 32);
        let fresh = WarpCounters::new(32);
        assert_eq!(fresh.warp_instructions, 0);
    }
}

/// A deterministic hand-built trace used by the exporter tests and the
/// golden-file integration test (`tests/chrome_trace_golden.rs`).
#[doc(hidden)]
pub fn test_fixture() -> Vec<simt::WarpTrace> {
    use simt::{Event, EventKind, Span, WarpCounters, WarpTrace};
    let mut construct = WarpCounters::new(32);
    construct.warp_instructions = 40;
    construct.int_instructions = 25;
    construct.lane_int_ops = 25 * 32;
    construct.collective_instructions = 2;
    construct.atomic_instructions = 1;
    let mut walk = WarpCounters::new(32);
    walk.warp_instructions = 17;
    walk.int_instructions = 16;
    walk.lane_int_ops = 16;
    vec![WarpTrace {
        warp_id: 0,
        width: 32,
        spans: vec![
            Span { name: "construct", start: 0, end: 40, depth: 0, delta: construct },
            Span { name: "walk", start: 40, end: 57, depth: 0, delta: walk },
        ],
        events: vec![
            Event { at: 12, kind: EventKind::ProbeChain { rounds: 2 } },
            Event { at: 20, kind: EventKind::Collective { name: "ballot" } },
            Event { at: 45, kind: EventKind::WalkStep { probes: 3 } },
            Event { at: 50, kind: EventKind::HbmTx { read: 4, write: 1 } },
        ],
    }]
}

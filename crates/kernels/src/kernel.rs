//! The extension kernel: dialect dispatch + construct-then-walk per warp.

use crate::construct::construct_hash_table;
use crate::layout::DeviceJob;
use crate::probe::{InsertArgs, SlotVec};
use crate::walk::mer_walk_kernel;
use gpu_specs::{DeviceId, ProgrammingModel};
use locassm_core::walk::{WalkConfig, WalkState};
use locassm_core::{Read, RetryPolicy};
use simt::{Warp, WarpCounters};
use std::borrow::Cow;

/// The three kernel dialects of the paper (Appendix A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dialect {
    Cuda,
    Hip,
    Sycl,
}

impl Dialect {
    /// The dialect written for a programming model (Table I).
    pub fn for_model(m: ProgrammingModel) -> Dialect {
        match m {
            ProgrammingModel::Cuda => Dialect::Cuda,
            ProgrammingModel::Hip => Dialect::Hip,
            ProgrammingModel::Sycl => Dialect::Sycl,
        }
    }

    /// The dialect the paper runs on a device (CUDA↔A100, HIP↔MI250X,
    /// SYCL↔Max 1550).
    pub fn native_for(device: DeviceId) -> Dialect {
        Dialect::for_model(device.spec().model)
    }

    /// Dispatch `ht_get_atomic`.
    pub fn insert(self, warp: &mut Warp, job: &DeviceJob, args: &InsertArgs) -> SlotVec {
        match self {
            Dialect::Cuda => crate::insert_cuda::ht_get_atomic(warp, job, args),
            Dialect::Hip => crate::insert_hip::ht_get_atomic(warp, job, args),
            Dialect::Sycl => crate::insert_sycl::ht_get_atomic(warp, job, args),
        }
    }
}

impl std::fmt::Display for Dialect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Dialect::Cuda => "CUDA",
            Dialect::Hip => "HIP",
            Dialect::Sycl => "SYCL",
        };
        f.write_str(s)
    }
}

/// One warp's work item.
///
/// The sequence data and retry policy are [`Cow`]s so the batch-assembly
/// hot path stays zero-copy: right-extension jobs *borrow* their contig
/// and reads straight from the `Dataset` (the host never duplicates
/// sequence bytes, mirroring how the real pipeline hands the kernel
/// pointers into pinned host buffers), while left-extension jobs own the
/// reverse-complemented transform that genuinely requires new storage.
#[derive(Debug, Clone)]
pub struct KernelJob<'a> {
    pub contig: Cow<'a, [u8]>,
    pub reads: Cow<'a, [Read]>,
    pub k: usize,
    pub walk: WalkConfig,
    pub retry: Cow<'a, RetryPolicy>,
    pub dialect: Dialect,
}

impl<'a> KernelJob<'a> {
    /// A zero-copy job borrowing its inputs (the right-extension path).
    pub fn borrowed(
        contig: &'a [u8],
        reads: &'a [Read],
        k: usize,
        walk: WalkConfig,
        retry: &'a RetryPolicy,
        dialect: Dialect,
    ) -> Self {
        KernelJob {
            contig: Cow::Borrowed(contig),
            reads: Cow::Borrowed(reads),
            k,
            walk,
            retry: Cow::Borrowed(retry),
            dialect,
        }
    }

    /// A job owning transformed inputs (the left-extension path, which
    /// reverse-complements contig and reads), still borrowing the retry
    /// policy.
    pub fn transformed(
        contig: Vec<u8>,
        reads: Vec<Read>,
        k: usize,
        walk: WalkConfig,
        retry: &'a RetryPolicy,
        dialect: Dialect,
    ) -> Self {
        KernelJob {
            contig: Cow::Owned(contig),
            reads: Cow::Owned(reads),
            k,
            walk,
            retry: Cow::Borrowed(retry),
            dialect,
        }
    }

    /// A fully owned job with no outside borrows (tests, single-shot runs).
    pub fn owned(
        contig: Vec<u8>,
        reads: Vec<Read>,
        k: usize,
        walk: WalkConfig,
        retry: RetryPolicy,
        dialect: Dialect,
    ) -> KernelJob<'static> {
        KernelJob {
            contig: Cow::Owned(contig),
            reads: Cow::Owned(reads),
            k,
            walk,
            retry: Cow::Owned(retry),
            dialect,
        }
    }
}

/// What one warp returns to the host.
#[derive(Debug, Clone)]
pub struct KernelOut {
    pub extension: Vec<u8>,
    pub state: WalkState,
    /// Counter snapshot at the construct/walk phase boundary.
    pub construct: WarpCounters,
}

/// The per-warp extension kernel body: stage → Algorithm 1 → Algorithm 2,
/// repeated down the retry ladder while the walk is not accepted (Fig. 4's
/// "repeat with different k-mer size" loop — each retry rebuilds the hash
/// table at the smaller k, exactly as the diagram shows).
pub fn extension_kernel(warp: &mut Warp, job: &KernelJob<'_>) -> KernelOut {
    if job.reads.is_empty() {
        return KernelOut {
            extension: Vec::new(),
            state: WalkState::End,
            construct: warp.snapshot(),
        };
    }
    let mut best: Option<locassm_core::Walk> = None;
    let mut construct = warp.snapshot();
    for k in job.retry.schedule(job.k) {
        if job.contig.len() < k {
            continue;
        }
        warp.phase_enter("stage");
        let dev = DeviceJob::stage(warp, &job.contig, &job.reads, k, job.walk);
        warp.phase_exit("stage");
        warp.phase_enter("construct");
        construct_hash_table(warp, &dev, job.dialect);
        warp.phase_exit("construct");
        construct = warp.snapshot();
        warp.phase_enter("walk");
        let walk = mer_walk_kernel(warp, &dev);
        warp.phase_exit("walk");
        let accepted = job.retry.accepts(&walk);
        let longer = best.as_ref().is_none_or(|b| walk.extension.len() >= b.extension.len());
        if longer {
            best = Some(walk);
        }
        if accepted {
            break;
        }
    }
    match best {
        Some(walk) => KernelOut { extension: walk.extension, state: walk.state, construct },
        None => KernelOut {
            extension: Vec::new(),
            state: WalkState::End,
            construct: warp.snapshot(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memhier::HierarchyConfig;

    #[test]
    fn dialect_mappings() {
        assert_eq!(Dialect::native_for(DeviceId::A100), Dialect::Cuda);
        assert_eq!(Dialect::native_for(DeviceId::Mi250x), Dialect::Hip);
        assert_eq!(Dialect::native_for(DeviceId::Max1550), Dialect::Sycl);
        assert_eq!(Dialect::Cuda.to_string(), "CUDA");
    }

    #[test]
    fn degenerate_jobs_return_empty() {
        let mut warp = Warp::new(32, HierarchyConfig::tiny());
        let job = KernelJob::owned(
            b"ACG".to_vec(),
            vec![Read::with_uniform_qual(b"ACGTACGT", b'I')],
            5,
            WalkConfig::default(),
            RetryPolicy::none(),
            Dialect::Cuda,
        );
        let out = extension_kernel(&mut warp, &job);
        assert!(out.extension.is_empty());
        assert_eq!(out.state, WalkState::End);
    }

    #[test]
    fn kernel_extends_and_counts_phases() {
        let mut warp = Warp::new(32, HierarchyConfig::tiny());
        let job = KernelJob::owned(
            b"GGGGACGTACG".to_vec(),
            vec![Read::with_uniform_qual(b"ACGTACGGTTACCA", b'I')],
            4,
            WalkConfig { min_votes: 1, ..WalkConfig::default() },
            RetryPolicy::none(),
            Dialect::Cuda,
        );
        let out = extension_kernel(&mut warp, &job);
        assert!(!out.extension.is_empty());
        let total = warp.finish();
        assert!(out.construct.int_instructions > 0);
        assert!(
            total.int_instructions > out.construct.int_instructions,
            "walk phase must add instructions"
        );
    }
}

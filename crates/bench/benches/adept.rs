//! Smith-Waterman kernel benchmarks: CPU reference vs simulated devices
//! (the companion-kernel comparison of `repro adept`, timed).

use adept::{run_alignment_batch, sw_score_cpu, Pair, Scoring};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_specs::DeviceId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn pairs(n: usize, qlen: usize, rlen: usize, seed: u64) -> Vec<Pair> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dna = |len: usize| -> Vec<u8> {
        (0..len).map(|_| locassm_core::dna::BASES[rng.random_range(0..4)]).collect()
    };
    (0..n).map(|_| Pair { query: dna(qlen), reference: dna(rlen) }).collect()
}

fn bench_cpu_sw(c: &mut Criterion) {
    let mut g = c.benchmark_group("sw_cpu");
    for (qlen, rlen) in [(64usize, 128usize), (150, 300)] {
        let ps = pairs(1, qlen, rlen, 3);
        g.throughput(Throughput::Elements((qlen * rlen) as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{qlen}x{rlen}")),
            &ps[0],
            |b, p| b.iter(|| sw_score_cpu(black_box(&p.query), &p.reference, &Scoring::default())),
        );
    }
    g.finish();
}

fn bench_simulated_sw(c: &mut Criterion) {
    let mut g = c.benchmark_group("sw_simulated");
    g.sample_size(10);
    let ps = pairs(64, 100, 200, 5);
    for dev in DeviceId::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(dev.spec().short_name), &ps, |b, ps| {
            b.iter(|| {
                run_alignment_batch(black_box(ps), dev.spec(), &Scoring::default(), false)
                    .counters
                    .intops()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_cpu_sw, bench_simulated_sw);
criterion_main!(benches);

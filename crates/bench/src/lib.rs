//! Benchmark harness crate: see `src/bin/repro.rs` for the table/figure regeneration binary and `benches/` for the criterion suites.

//! Grid launcher: run one kernel over many independent warps.
//!
//! The local assembly kernel assigns one contig (plus its reads) per warp,
//! and warps share no data — so the simulation parallelizes perfectly with
//! rayon while remaining deterministic (results are collected in job order
//! and counters are commutatively merged).
//!
//! # The pooled launch engine
//!
//! The paper's Fig. 3 pipeline reserves per-warp device slabs up front so
//! the kernel never allocates mid-flight. The launcher mirrors that
//! discipline on the host side: instead of building a fresh [`Warp`] (arena
//! + cache model) for every job, it draws warps from a process-wide pool,
//! [`Warp::reset`]s them to a cold state, and returns them after the job.
//! A reset re-zeroes only the used region of the arena and keeps every
//! backing buffer, so steady-state launches perform no heap allocation for
//! warp state at all. [`LaunchConfig::arena_hint`] seeds new and reused
//! arenas with the host-side size estimate so in-kernel bump allocation
//! never regrows the buffer either.
//!
//! Pooling is behaviour-preserving by construction: a reset warp is
//! observationally identical to a fresh one, so pooled and fresh launches
//! produce bit-identical results, counters and traces (enforced by the
//! tests below and by the kernel-level equivalence suite).

use crate::counters::AggCounters;
use crate::fault::FaultPlan;
use crate::san::{SanReport, SanitizerConfig};
use crate::sched::WarpTimeline;
use crate::trace::WarpTrace;
use crate::warp::{ExecMode, Warp};
use memhier::HierarchyConfig;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Configuration for a kernel launch.
#[derive(Debug, Clone, Copy)]
pub struct LaunchConfig {
    /// Warp/wavefront/sub-group width.
    pub width: u32,
    /// Per-warp view of the memory hierarchy (L2 already scaled to the
    /// occupancy-derived effective share — see `gpu-specs::occupancy`).
    pub hierarchy: HierarchyConfig,
    /// Simulate warps in parallel with rayon. Disable for strictly
    /// single-threaded runs (e.g. inside criterion benchmarks measuring
    /// simulator throughput).
    pub parallel: bool,
    /// Attach a [`crate::TraceSink`] to every warp and collect
    /// [`WarpTrace`]s in [`LaunchOutput::traces`]. Off by default; the
    /// launch stays deterministic either way (traces are merged in job
    /// order regardless of rayon scheduling).
    pub trace: bool,
    /// Reuse warps (arena + cache model) from the process-wide pool
    /// instead of constructing one per job. On by default; results are
    /// bit-identical either way, pooling only removes allocator traffic.
    pub pool: bool,
    /// Pre-size hint, in bytes, for each warp's memory arena — typically
    /// the host-side estimate of the largest per-warp device slab (contig
    /// + reads + hash table + walk buffers). With an accurate hint the
    /// in-kernel bump allocator never regrows its backing buffer. `0`
    /// means no reservation.
    pub arena_hint: u64,
    /// Deterministic fault-injection plan (see [`crate::fault`]). `None`
    /// (the default) injects nothing; the launch is then bit-identical to
    /// one with an armed plan targeting an out-of-range job.
    pub fault: Option<FaultPlan>,
    /// Offset added to each job's local index before matching it against
    /// [`LaunchConfig::fault`], so multi-launch drivers can address jobs
    /// by a run-global number (the same numbering as renumbered traces).
    pub fault_base: u64,
    /// Warp-sanitizer configuration (see [`crate::san`]). All-off by
    /// default; an armed config attaches a sanitizer to every warp and
    /// collects per-warp [`SanReport`]s in [`LaunchOutput::san`]. The
    /// sanitizer models zero instructions, so results/counters/traces are
    /// bit-identical with it on or off (absent findings, which add trace
    /// events).
    pub sanitize: SanitizerConfig,
    /// Interpreter execution mode for every warp of the launch (see
    /// [`ExecMode`]). `Vectorized` by default; `Scalar` keeps the
    /// reference per-lane path as a benchmarkable baseline; `Scheduled`
    /// additionally records per-warp timelines in
    /// [`LaunchOutput::timelines`] for the event-driven scheduler replay
    /// ([`crate::sched`]). Bit-identical in all modeled state either way.
    pub exec: ExecMode,
}

impl LaunchConfig {
    /// A parallel, untraced, pooled launch at the given width and hierarchy.
    pub fn new(width: u32, hierarchy: HierarchyConfig) -> Self {
        LaunchConfig {
            width,
            hierarchy,
            parallel: true,
            trace: false,
            pool: true,
            arena_hint: 0,
            fault: None,
            fault_base: 0,
            sanitize: SanitizerConfig::default(),
            exec: ExecMode::default(),
        }
    }
}

/// Result of a launch: per-job kernel outputs plus aggregated counters.
#[derive(Debug, Clone)]
pub struct LaunchOutput<R> {
    /// Kernel return values, in job order.
    pub results: Vec<R>,
    /// Counters aggregated over all warps.
    pub counters: AggCounters,
    /// Per-warp traces in job order (`warp_id` = job index); empty unless
    /// [`LaunchConfig::trace`] was set.
    pub traces: Vec<WarpTrace>,
    /// Total warp instructions per warp, in job order (always populated).
    /// Lets callers attribute the intra-batch critical path to kernel
    /// phases without holding every warp's full counter set.
    pub warp_instruction_counts: Vec<u64>,
    /// Per-warp sanitizer reports in job order; empty unless
    /// [`LaunchConfig::sanitize`] arms a check family.
    pub san: Vec<SanReport>,
    /// Per-warp instruction timelines in job order (`warp_id` = job
    /// index); empty unless [`LaunchConfig::exec`] is
    /// [`ExecMode::Scheduled`]. Feed to [`crate::sched::schedule`].
    pub timelines: Vec<WarpTimeline>,
}

/// The process-wide pool of idle warps behind the pooled launch engine.
#[derive(Debug, Default)]
struct WarpPool {
    idle: Mutex<Vec<Warp>>,
    created: AtomicU64,
    reused: AtomicU64,
}

static POOL: OnceLock<WarpPool> = OnceLock::new();

fn pool() -> &'static WarpPool {
    POOL.get_or_init(WarpPool::default)
}

/// Snapshot of the process-wide warp pool's activity (monotone counters;
/// useful for asserting that reuse actually happens and for the
/// allocation-accounting benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Warps constructed because the pool was empty at acquire time.
    pub created: u64,
    /// Acquisitions served by resetting an idle pooled warp.
    pub reused: u64,
    /// Warps currently sitting idle in the pool.
    pub idle: usize,
}

/// Current [`PoolStats`] for the process-wide warp pool.
pub fn pool_stats() -> PoolStats {
    let p = pool();
    PoolStats {
        created: p.created.load(Ordering::Relaxed),
        reused: p.reused.load(Ordering::Relaxed),
        idle: p.idle.lock().unwrap().len(),
    }
}

/// Acquire a cold warp: reset a pooled one when allowed and available,
/// construct otherwise. Either way the arena is pre-sized to the hint.
fn acquire_warp(cfg: &LaunchConfig) -> Warp {
    let mut warp = if cfg.pool {
        let recycled = pool().idle.lock().unwrap().pop();
        match recycled {
            Some(mut w) => {
                pool().reused.fetch_add(1, Ordering::Relaxed);
                w.reset(cfg.width, cfg.hierarchy);
                w
            }
            None => {
                pool().created.fetch_add(1, Ordering::Relaxed);
                Warp::new(cfg.width, cfg.hierarchy)
            }
        }
    } else {
        Warp::new(cfg.width, cfg.hierarchy)
    };
    warp.set_exec(cfg.exec);
    if cfg.arena_hint > 0 {
        warp.mem.ensure_capacity(crate::mem::NULL_PAGE + cfg.arena_hint);
    }
    warp
}

/// Return a finished warp to the pool (dropped when pooling is off).
fn release_warp(cfg: &LaunchConfig, warp: Warp) {
    if cfg.pool {
        pool().idle.lock().unwrap().push(warp);
    }
}

/// Launch `kernel` once per job, each on a cold warp.
///
/// The kernel receives a mutable [`Warp`] (with an empty memory arena — it
/// performs its own device-side allocation, mirroring the reserved slabs the
/// host pre-computes in the paper's Fig. 3 pipeline) and its job. With
/// [`LaunchConfig::pool`] set (the default) warps are drawn from the
/// process-wide pool and reset between jobs; see the module docs.
pub fn launch_warps<J, R, F>(cfg: LaunchConfig, jobs: &[J], kernel: F) -> LaunchOutput<R>
where
    J: Sync,
    R: Send,
    F: Fn(&mut Warp, &J) -> R + Sync,
{
    type PerWarp<R> =
        (R, crate::WarpCounters, Option<WarpTrace>, Option<SanReport>, Option<WarpTimeline>);
    let run_one = |(idx, job): (usize, &J)| -> PerWarp<R> {
        let mut warp = acquire_warp(&cfg);
        if cfg.trace {
            warp.enable_trace(idx as u64);
        }
        if cfg.exec == ExecMode::Scheduled {
            warp.enable_recorder(idx as u64);
        }
        warp.enable_sanitizer(cfg.sanitize);
        if let Some(plan) = &cfg.fault {
            plan.arm(cfg.fault_base + idx as u64, &mut warp);
        }
        let r = kernel(&mut warp, job);
        let counters = warp.finish();
        let trace = warp.take_trace();
        let san = warp.take_san_report();
        let timeline = warp.take_timeline();
        release_warp(&cfg, warp);
        (r, counters, trace, san, timeline)
    };

    let per_warp: Vec<PerWarp<R>> = if cfg.parallel {
        jobs.par_iter().enumerate().map(run_one).collect()
    } else {
        jobs.iter().enumerate().map(run_one).collect()
    };

    let mut agg = AggCounters::default();
    let mut results = Vec::with_capacity(per_warp.len());
    let mut traces = Vec::new();
    let mut warp_instruction_counts = Vec::with_capacity(per_warp.len());
    let mut san = Vec::new();
    let mut timelines = Vec::new();
    for (r, c, t, s, tl) in per_warp {
        agg.absorb(&c);
        results.push(r);
        traces.extend(t);
        warp_instruction_counts.push(c.warp_instructions);
        san.extend(s);
        timelines.extend(tl);
    }
    LaunchOutput { results, counters: agg, traces, warp_instruction_counts, san, timelines }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lanevec::LaneVec;

    fn cfg(parallel: bool) -> LaunchConfig {
        LaunchConfig {
            width: 32,
            hierarchy: HierarchyConfig::tiny(),
            parallel,
            trace: false,
            pool: true,
            arena_hint: 0,
            fault: None,
            fault_base: 0,
            sanitize: SanitizerConfig::default(),
            exec: ExecMode::default(),
        }
    }

    #[test]
    fn results_in_job_order() {
        let jobs: Vec<u32> = (0..100).collect();
        let out = launch_warps(cfg(true), &jobs, |w, &j| {
            w.iop(w.full_mask(), j as u64 + 1);
            j * 2
        });
        assert_eq!(out.results, (0..100).map(|j| j * 2).collect::<Vec<_>>());
        assert_eq!(out.counters.warps, 100);
        assert_eq!(
            out.warp_instruction_counts,
            (0..100u64).map(|j| j + 1).collect::<Vec<_>>(),
            "per-warp instruction counts arrive in job order"
        );
    }

    #[test]
    fn counters_aggregate_deterministically() {
        let jobs: Vec<u32> = (0..64).collect();
        let body = |w: &mut Warp, j: &u32| {
            let base = w.mem.alloc(256);
            let addrs = LaneVec::from_fn(32, |l| base + 4 * l as u64);
            let vals = LaneVec::splat(*j);
            w.store_u32(w.full_mask(), &addrs, &vals);
            let _ = w.load_u32(w.full_mask(), &addrs);
            w.iop(w.full_mask(), 5);
        };
        let a = launch_warps(cfg(true), &jobs, body);
        let b = launch_warps(cfg(false), &jobs, body);
        assert_eq!(a.counters, b.counters, "parallel and serial launches agree");
        assert_eq!(a.counters.int_instructions, 64 * 5);
        assert_eq!(a.counters.intops(), 64 * 5 * 32);
    }

    #[test]
    fn max_warp_instructions_tracks_imbalance() {
        let jobs: Vec<u64> = vec![1, 1, 100, 1];
        let out = launch_warps(cfg(true), &jobs, |w, &j| w.iop(w.full_mask(), j));
        assert_eq!(out.counters.max_warp_instructions, 100);
    }

    #[test]
    fn empty_launch() {
        let out = launch_warps(cfg(true), &Vec::<u32>::new(), |_, _| 0u32);
        assert!(out.results.is_empty());
        assert_eq!(out.counters.warps, 0);
        assert!(out.traces.is_empty());
        assert!(out.warp_instruction_counts.is_empty());
    }

    #[test]
    fn untraced_launch_collects_no_traces() {
        let jobs: Vec<u32> = (0..8).collect();
        let out = launch_warps(cfg(true), &jobs, |w, _| w.iop(w.full_mask(), 1));
        assert!(out.traces.is_empty());
    }

    /// A kernel with uneven per-job work, phases and events — enough to
    /// expose any scheduling-dependent trace ordering.
    fn traced_body(w: &mut Warp, j: &u32) {
        w.phase_enter("outer");
        w.phase_enter("compute");
        w.iop(w.full_mask(), *j as u64 % 17 + 1);
        w.phase_exit("compute");
        let preds = LaneVec::splat(true);
        let _ = w.ballot(w.full_mask(), &preds);
        w.syncwarp(w.full_mask());
        w.phase_exit("outer");
    }

    #[test]
    fn traces_merge_deterministically_parallel_vs_serial() {
        let jobs: Vec<u32> = (0..200).collect();
        let mut par = cfg(true);
        par.trace = true;
        let mut ser = cfg(false);
        ser.trace = true;
        let a = launch_warps(par, &jobs, traced_body);
        let b = launch_warps(ser, &jobs, traced_body);
        assert_eq!(a.traces.len(), 200);
        assert_eq!(a.traces, b.traces, "rayon scheduling must not leak into traces");
        for (i, t) in a.traces.iter().enumerate() {
            assert_eq!(t.warp_id, i as u64, "traces arrive in job order");
        }
        assert_eq!(a.counters, b.counters);
    }

    #[test]
    fn traced_launch_records_phases_and_events() {
        let jobs: Vec<u32> = vec![3, 5];
        let mut c = cfg(true);
        c.trace = true;
        let out = launch_warps(c, &jobs, traced_body);
        let t = &out.traces[0];
        assert_eq!(t.phase_names(), vec!["compute", "outer"]);
        // Inner span closed first; outer delta is inclusive.
        assert_eq!(t.spans[0].name, "compute");
        assert_eq!(t.spans[1].name, "outer");
        assert!(t.spans[1].delta.warp_instructions >= t.spans[0].delta.warp_instructions);
        let names: Vec<&str> = t.events.iter().map(|e| e.kind.name()).collect();
        assert!(names.contains(&"ballot"));
        assert!(names.contains(&"sync"));
    }

    #[test]
    fn tracing_does_not_change_counters() {
        let jobs: Vec<u32> = (0..32).collect();
        let mut traced = cfg(true);
        traced.trace = true;
        let a = launch_warps(traced, &jobs, traced_body);
        let b = launch_warps(cfg(true), &jobs, traced_body);
        assert_eq!(a.counters, b.counters, "observing a warp must not perturb it");
    }

    /// A kernel that touches everything a real job does: arena allocation,
    /// stores/loads, data-dependent control, atomics and collectives — so
    /// any stale state leaking through the pool would change its output.
    fn stateful_body(w: &mut Warp, j: &u32) -> (u64, u32) {
        let base = w.mem.alloc_bytes(&j.to_le_bytes());
        let tbl = w.mem.alloc_aligned(256, 32);
        let addrs = LaneVec::from_fn(32, |l| tbl + 4 * ((l + j) % 64) as u64);
        let vals = LaneVec::from_fn(32, |l| l ^ j);
        w.store_u32(w.full_mask(), &addrs, &vals);
        let ones = LaneVec::splat(1u32);
        let _ = w.atomic_add_u32(w.full_mask(), &LaneVec::splat(tbl), &ones);
        let back = w.load_u32(w.full_mask(), &addrs);
        w.iop(w.full_mask(), (*j as u64 % 13) + 1);
        (base + back[*j % 32] as u64, w.mem.read_u8(base) as u32)
    }

    #[test]
    fn pooled_and_fresh_launches_are_bit_identical() {
        let jobs: Vec<u32> = (0..128).collect();
        for parallel in [true, false] {
            let mut pooled = cfg(parallel);
            pooled.trace = true;
            let mut fresh = pooled;
            fresh.pool = false;
            // Pre-dirty the pool so reuse definitely happens.
            let _ = launch_warps(pooled, &jobs, stateful_body);
            let a = launch_warps(pooled, &jobs, stateful_body);
            let b = launch_warps(fresh, &jobs, stateful_body);
            assert_eq!(a.results, b.results, "parallel={parallel}");
            assert_eq!(a.counters, b.counters, "parallel={parallel}");
            assert_eq!(a.traces, b.traces, "parallel={parallel}");
            assert_eq!(a.warp_instruction_counts, b.warp_instruction_counts);
        }
    }

    #[test]
    fn scalar_and_vectorized_launches_are_bit_identical() {
        let jobs: Vec<u32> = (0..96).collect();
        for parallel in [true, false] {
            let mut vec = cfg(parallel);
            vec.trace = true;
            vec.sanitize = SanitizerConfig::all();
            vec.exec = ExecMode::Vectorized;
            let mut scl = vec;
            scl.exec = ExecMode::Scalar;
            let a = launch_warps(vec, &jobs, stateful_body);
            let b = launch_warps(scl, &jobs, stateful_body);
            assert_eq!(a.results, b.results, "parallel={parallel}");
            assert_eq!(a.counters, b.counters, "parallel={parallel}");
            assert_eq!(a.traces, b.traces, "parallel={parallel}");
            assert_eq!(a.san, b.san, "parallel={parallel}");
        }
    }

    #[test]
    fn scheduled_launches_are_bit_identical_and_collect_timelines() {
        let jobs: Vec<u32> = (0..96).collect();
        for parallel in [true, false] {
            let mut vec = cfg(parallel);
            vec.trace = true;
            vec.sanitize = SanitizerConfig::all();
            vec.exec = ExecMode::Vectorized;
            let mut sched = vec;
            sched.exec = ExecMode::Scheduled;
            let a = launch_warps(vec, &jobs, stateful_body);
            let b = launch_warps(sched, &jobs, stateful_body);
            assert_eq!(a.results, b.results, "parallel={parallel}");
            assert_eq!(a.counters, b.counters, "parallel={parallel}");
            assert_eq!(a.traces, b.traces, "parallel={parallel}");
            assert_eq!(a.san, b.san, "parallel={parallel}");
            assert!(a.timelines.is_empty(), "no timelines outside Scheduled mode");
            assert_eq!(b.timelines.len(), 96, "one timeline per warp");
            for (i, t) in b.timelines.iter().enumerate() {
                assert_eq!(t.warp_id, i as u64, "timelines arrive in job order");
                assert_eq!(t.total_instructions, b.warp_instruction_counts[i]);
            }
        }
    }

    #[test]
    fn timelines_merge_deterministically_parallel_vs_serial() {
        let jobs: Vec<u32> = (0..200).collect();
        let mut par = cfg(true);
        par.exec = ExecMode::Scheduled;
        let mut ser = par;
        ser.parallel = false;
        let a = launch_warps(par, &jobs, stateful_body);
        let b = launch_warps(ser, &jobs, stateful_body);
        assert_eq!(a.timelines, b.timelines, "rayon scheduling must not leak into timelines");
    }

    #[test]
    fn recorder_state_does_not_leak_through_the_pool() {
        let jobs: Vec<u32> = (0..6).collect();
        let mut sched = cfg(false);
        sched.exec = ExecMode::Scheduled;
        let recorded = launch_warps(sched, &jobs, stateful_body);
        assert_eq!(recorded.timelines.len(), 6);
        // The same pooled warps, re-acquired in the default mode, record
        // nothing — and report nothing stale.
        let clean = launch_warps(cfg(false), &jobs, stateful_body);
        assert!(clean.timelines.is_empty());
    }

    #[test]
    fn pool_reuses_warps_across_launches() {
        let jobs: Vec<u32> = (0..32).collect();
        let before = pool_stats();
        let c = cfg(false); // serial: one warp serves all 32 jobs
        let _ = launch_warps(c, &jobs, stateful_body);
        let _ = launch_warps(c, &jobs, stateful_body);
        let after = pool_stats();
        // The pool is process-wide and other tests may run concurrently, so
        // only assert the lower bound attributable to this test: 64 serial
        // acquisitions with at most a handful lost to concurrent stealing.
        assert!(
            after.reused > before.reused,
            "serial pooled launches must reuse (before {before:?}, after {after:?})"
        );
    }

    #[test]
    fn arena_hint_prevents_in_kernel_regrowth() {
        let jobs: Vec<u32> = (0..16).collect();
        let mut c = cfg(false);
        c.arena_hint = 16 << 10;
        let out = launch_warps(c, &jobs, |w, &j| {
            let a = w.mem.alloc_aligned(4096, 32);
            let b = w.mem.alloc(2048);
            w.mem.fill(a, 4096, j as u8);
            w.mem.fill(b, 2048, j as u8);
            let regrowths = w.mem.regrowths();
            assert!(w.mem.capacity() >= (16 << 10));
            regrowths
        });
        assert!(
            out.results.iter().all(|&r| r == 0),
            "a hinted arena must never regrow mid-kernel: {:?}",
            out.results
        );
    }

    /// Kernel that reports which injected faults it observes.
    fn fault_probe(w: &mut Warp, _j: &u32) -> (bool, bool, bool) {
        let f = w.injected_faults();
        (f.table_full, f.watchdog, w.mem.try_alloc(64).is_err())
    }

    #[test]
    fn fault_plan_arms_exactly_the_victim_job() {
        let jobs: Vec<u32> = (0..8).collect();
        for parallel in [true, false] {
            let mut c = cfg(parallel);
            c.fault = Some(FaultPlan::table_full(5));
            let out = launch_warps(c, &jobs, fault_probe);
            for (i, &(table, dog, alloc)) in out.results.iter().enumerate() {
                assert_eq!(table, i == 5, "job {i}, parallel={parallel}");
                assert!(!dog && !alloc, "job {i} must see no other fault");
            }
        }
    }

    #[test]
    fn fault_base_offsets_the_victim_index() {
        let jobs: Vec<u32> = (0..4).collect();
        let mut c = cfg(false);
        c.fault = Some(FaultPlan::alloc_failure(10, 1));
        c.fault_base = 8; // local job 2 is run-global job 10
        let out = launch_warps(c, &jobs, fault_probe);
        let failed: Vec<usize> =
            out.results.iter().enumerate().filter(|(_, r)| r.2).map(|(i, _)| i).collect();
        assert_eq!(failed, vec![2]);
    }

    #[test]
    fn armed_faults_do_not_poison_the_pool() {
        let jobs: Vec<u32> = (0..6).collect();
        let mut faulted = cfg(false);
        faulted.fault = Some(FaultPlan::watchdog(3));
        let _ = launch_warps(faulted, &jobs, fault_probe);
        // The same pooled warps, re-acquired, must be fault-free.
        let clean = launch_warps(cfg(false), &jobs, fault_probe);
        assert!(clean.results.iter().all(|r| !r.0 && !r.1 && !r.2));
    }

    #[test]
    fn unarmed_plan_is_bit_identical_to_no_plan() {
        let jobs: Vec<u32> = (0..32).collect();
        let mut armed = cfg(true);
        armed.trace = true;
        armed.fault = Some(FaultPlan::table_full(u64::MAX));
        let mut none = armed;
        none.fault = None;
        let a = launch_warps(armed, &jobs, stateful_body);
        let b = launch_warps(none, &jobs, stateful_body);
        assert_eq!(a.results, b.results);
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.traces, b.traces);
    }

    /// Two lanes store to the same word with no ordering collective — the
    /// canonical lane race.
    fn racy_body(w: &mut Warp, _j: &u32) {
        let a = w.mem.alloc(4);
        let addrs = LaneVec::splat(a);
        let vals = LaneVec::from_fn(32, |l| l);
        w.store_u32(crate::Mask(0b11), &addrs, &vals);
    }

    #[test]
    fn sanitized_launch_collects_reports_in_job_order() {
        let jobs: Vec<u32> = (0..8).collect();
        for parallel in [true, false] {
            let mut c = cfg(parallel);
            c.sanitize = SanitizerConfig::all();
            let out = launch_warps(c, &jobs, racy_body);
            assert_eq!(out.san.len(), 8, "one report per warp, parallel={parallel}");
            for r in &out.san {
                assert_eq!(r.count("lane_race"), 1);
                assert!(!r.is_clean());
            }
        }
        let off = launch_warps(cfg(true), &jobs, racy_body);
        assert!(off.san.is_empty(), "no reports without a sanitize config");
    }

    #[test]
    fn sanitizing_is_bit_identical_on_clean_kernels() {
        let jobs: Vec<u32> = (0..64).collect();
        for parallel in [true, false] {
            let mut san = cfg(parallel);
            san.trace = true;
            san.sanitize = SanitizerConfig::all();
            let mut off = san;
            off.sanitize = SanitizerConfig::default();
            let a = launch_warps(san, &jobs, stateful_body);
            let b = launch_warps(off, &jobs, stateful_body);
            assert_eq!(a.results, b.results, "parallel={parallel}");
            assert_eq!(a.counters, b.counters, "observing a warp must not perturb it");
            assert_eq!(a.traces, b.traces, "a clean kernel emits no san events");
            assert_eq!(a.san.len(), 64);
            assert!(a.san.iter().all(SanReport::is_clean));
        }
    }

    #[test]
    fn sanitizer_state_does_not_leak_through_the_pool() {
        let jobs: Vec<u32> = (0..6).collect();
        let mut san = cfg(false);
        san.sanitize = SanitizerConfig::all();
        let dirty = launch_warps(san, &jobs, racy_body);
        assert!(dirty.san.iter().all(|r| !r.is_clean()));
        // The same pooled warps, re-acquired without a config, sanitize
        // nothing — and report nothing stale.
        let clean = launch_warps(cfg(false), &jobs, racy_body);
        assert!(clean.san.is_empty());
    }
}

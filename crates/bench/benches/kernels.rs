//! End-to-end simulated kernel runs: one bench per paper dataset/device
//! pairing (the Fig. 5 matrix at reduced scale). Criterion measures the
//! *simulator's* wall time; the simulated kernel seconds are what `repro
//! fig5` reports.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_specs::DeviceId;
use locassm_kernels::{run_local_assembly, GpuConfig};
use std::hint::black_box;
use workloads::paper_dataset;

fn bench_devices(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulated_kernel");
    g.sample_size(10);
    for k in [21usize, 77] {
        let ds = paper_dataset(k, 0.005, 11);
        for dev in DeviceId::ALL {
            let mut cfg = GpuConfig::for_device(dev);
            // Criterion runs inside its own harness; keep the simulation
            // single-threaded for stable measurements.
            cfg.parallel = false;
            g.bench_with_input(
                BenchmarkId::new(dev.spec().short_name, k),
                &ds,
                |b, ds| b.iter(|| run_local_assembly(black_box(ds), &cfg).profile.intops()),
            );
        }
    }
    g.finish();
}

fn bench_construct_vs_walk_split(c: &mut Criterion) {
    // Sanity bench: the construct phase dominates instruction counts.
    let ds = paper_dataset(21, 0.002, 13);
    let mut cfg = GpuConfig::for_device(DeviceId::A100);
    cfg.parallel = false;
    c.bench_function("profile_phase_split", |b| {
        b.iter(|| {
            let p = run_local_assembly(black_box(&ds), &cfg).profile;
            (p.phases.construct.int_instructions, p.phases.walk.int_instructions)
        })
    });
}

fn bench_tracing_overhead(c: &mut Criterion) {
    // The tracing acceptance bar: with tracing *disabled* the simulator
    // must run at its untraced speed (the sink is an `Option` checked only
    // at phase boundaries and event call sites). Compare `trace_off`
    // against `baseline` — they should agree within noise (±2 %); the
    // `trace_on` row shows the real cost of recording.
    let ds = paper_dataset(21, 0.005, 17);
    let mut g = c.benchmark_group("tracing_overhead");
    g.sample_size(10);
    let mut cfg = GpuConfig::for_device(DeviceId::A100);
    cfg.parallel = false;
    g.bench_function("baseline", |b| {
        b.iter(|| run_local_assembly(black_box(&ds), &cfg).profile.intops())
    });
    g.bench_function("trace_off", |b| {
        b.iter(|| run_local_assembly(black_box(&ds), &cfg).profile.intops())
    });
    let mut traced = cfg.clone();
    traced.trace = true;
    g.bench_function("trace_on", |b| {
        b.iter(|| {
            let r = run_local_assembly(black_box(&ds), &traced);
            (r.profile.intops(), r.traces.len())
        })
    });
    g.finish();
}

fn bench_launch_pooling(c: &mut Criterion) {
    // The pooled launch engine's throughput bar: `pooled` must stay within
    // noise of `fresh` on wall clock (kernel simulation dominates at this
    // scale; the engine's win is allocator traffic — ~46% fewer heap
    // allocations and ~83% fewer bytes per warp, measured with the
    // counting global allocator by the `bench-kernels` binary into
    // BENCH_kernels.json). Results are bit-identical either way — see the
    // equivalence tests in locassm-kernels.
    let ds = paper_dataset(21, 0.005, 11);
    let mut g = c.benchmark_group("launch_pooling");
    g.sample_size(10);
    g.throughput(Throughput::Elements(ds.jobs.len() as u64));
    let mut cfg = GpuConfig::for_device(DeviceId::A100);
    cfg.parallel = false;
    cfg.pool = false;
    g.bench_function("fresh", |b| {
        b.iter(|| run_local_assembly(black_box(&ds), &cfg).profile.total.warps)
    });
    cfg.pool = true;
    g.bench_function("pooled", |b| {
        b.iter(|| run_local_assembly(black_box(&ds), &cfg).profile.total.warps)
    });
    g.finish();
}

fn bench_fault_injection(c: &mut Criterion) {
    // The fault model's acceptance bar: threading `Result` plumbing and
    // the watchdog check through the kernel hot path must cost < 2 % on a
    // fault-free run (compare `fault_free` against the pre-fault-model
    // `launch_pooling/pooled` numbers in BENCH_kernels.json). The
    // `plan_unarmed` row carries a fault plan targeting a job id past the
    // end of the run — every per-job arming check executes, nothing
    // fires — and must match `fault_free` within noise; `plan_armed`
    // shows the real cost of one injected fault plus its escalation
    // retry.
    let ds = paper_dataset(21, 0.005, 11);
    let mut g = c.benchmark_group("fault_injection");
    g.sample_size(10);
    g.throughput(Throughput::Elements(ds.jobs.len() as u64));
    let mut cfg = GpuConfig::for_device(DeviceId::A100);
    cfg.parallel = false;
    g.bench_function("fault_free", |b| {
        b.iter(|| run_local_assembly(black_box(&ds), &cfg).profile.total.warps)
    });
    cfg.fault = Some(simt::FaultPlan::table_full(u64::MAX));
    g.bench_function("plan_unarmed", |b| {
        b.iter(|| run_local_assembly(black_box(&ds), &cfg).profile.total.warps)
    });
    cfg.fault = Some(simt::FaultPlan::table_full(0));
    g.bench_function("plan_armed", |b| {
        b.iter(|| {
            let r = run_local_assembly(black_box(&ds), &cfg);
            (r.profile.total.warps, r.outcomes.iter().filter(|o| o.succeeded()).count())
        })
    });
    g.finish();
}

fn bench_sanitizer_overhead(c: &mut Criterion) {
    // The sanitizer's acceptance bar: with every check *off* (the
    // default), the instrumented hot paths cost < 1 % against the
    // pre-sanitizer numbers in BENCH_kernels.json — each hook is one
    // branch on an `Option<Box<SanState>>` that stays `None`. Compare
    // `sanitize_off` against `baseline` (they must agree within noise);
    // `sanitize_on` shows the real cost of shadow-memory tracking, which
    // is allowed to be expensive — it is an opt-in debugging mode that
    // models zero kernel instructions either way.
    let ds = paper_dataset(21, 0.005, 11);
    let mut g = c.benchmark_group("sanitizer_overhead");
    g.sample_size(10);
    g.throughput(Throughput::Elements(ds.jobs.len() as u64));
    let mut cfg = GpuConfig::for_device(DeviceId::A100);
    cfg.parallel = false;
    g.bench_function("baseline", |b| {
        b.iter(|| run_local_assembly(black_box(&ds), &cfg).profile.total.warps)
    });
    g.bench_function("sanitize_off", |b| {
        b.iter(|| run_local_assembly(black_box(&ds), &cfg).profile.total.warps)
    });
    cfg.sanitize = simt::SanitizerConfig::all();
    g.bench_function("sanitize_on", |b| {
        b.iter(|| {
            let r = run_local_assembly(black_box(&ds), &cfg);
            (r.profile.total.warps, r.san.findings.len(), r.san.lints.len())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_devices,
    bench_construct_vs_walk_split,
    bench_tracing_overhead,
    bench_launch_pooling,
    bench_fault_injection,
    bench_sanitizer_overhead
);
criterion_main!(benches);

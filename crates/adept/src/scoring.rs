//! Scoring scheme and alignment results.

use serde::{Deserialize, Serialize};

/// Linear-gap Smith-Waterman scoring (ADEPT's DNA defaults, with its
/// affine gap simplified to a linear penalty — documented substitution:
/// the kernel's parallel structure and memory behaviour are identical).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scoring {
    pub match_score: i32,
    pub mismatch: i32,
    pub gap: i32,
}

impl Default for Scoring {
    fn default() -> Self {
        // ADEPT DNA defaults: match 3, mismatch −3, gap −6.
        Scoring { match_score: 3, mismatch: -3, gap: -6 }
    }
}

impl Scoring {
    /// Substitution score for a base pair.
    #[inline]
    pub fn subst(&self, a: u8, b: u8) -> i32 {
        if a == b {
            self.match_score
        } else {
            self.mismatch
        }
    }
}

/// A local alignment result (ADEPT phase 1: score + end coordinates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Alignment {
    /// Best local score (0 if nothing aligns).
    pub score: i32,
    /// Query end index (exclusive) of the best cell.
    pub query_end: usize,
    /// Reference end index (exclusive) of the best cell.
    pub ref_end: usize,
}

impl Alignment {
    pub const NONE: Alignment = Alignment { score: 0, query_end: 0, ref_end: 0 };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_adept_dna() {
        let s = Scoring::default();
        assert_eq!((s.match_score, s.mismatch, s.gap), (3, -3, -6));
        assert_eq!(s.subst(b'A', b'A'), 3);
        assert_eq!(s.subst(b'A', b'C'), -3);
    }
}

//! Kernel profiles — the quantities the paper extracts with `ncu`,
//! `rocprof` and Intel Advisor (Appendix B).

use gpu_specs::{Bound, DeviceId, ModelParams, TimeEstimate};
use crate::kernel::Dialect;
use simt::{AggCounters, PhaseSched, SchedResult, WarpTrace};

/// Counters split at the construct/walk phase boundary.
///
/// `construct` merges each warp's counter snapshot taken when its last
/// hash-table build finished; `walk` is the launch total minus that
/// snapshot. Most fields of the difference are additive, but
/// `max_warp_instructions` is not: the critical path of the walk phase is
/// `max over warps of (total_i − construct_i)`, computed from the per-warp
/// instruction counts, **not** the difference of the two aggregates' maxima
/// (warp A can dominate construction while warp B dominates the walk).
/// `walk.max_warp_instructions` therefore holds the longest single-warp
/// walk segment, and may legitimately exceed
/// `total.max_warp_instructions − construct.max_warp_instructions`.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseCounters {
    /// Algorithm 1: hash-table construction.
    pub construct: AggCounters,
    /// Algorithm 2: mer-walks (including the state broadcast).
    pub walk: AggCounters,
    /// Largest per-warp walk instruction budget among successful jobs —
    /// the watchdog ceiling derived from the staged layout (see
    /// [`crate::layout::walk_budget`]). 0 when no job staged anything.
    pub walk_budget: u64,
    /// Walk watchdog trips observed across the run, escalation retries
    /// included (each one is a `WalkBudgetExceeded` fault).
    pub watchdog_trips: u64,
    /// Scheduled-replay summary, merged across every launch of the run
    /// (chunks, sides, batches and escalation retries). `None` unless the
    /// run executed under [`simt::ExecMode::Scheduled`].
    pub sched: Option<SchedProfile>,
}

/// `Copy` summary of the scheduled replay (`simt::sched`) for one run,
/// with the per-phase tick breakdown resolved to the kernel's three fixed
/// pipeline phases. Launches merge back-to-back: makespans add, tick sums
/// add, `sms_used`/`residency` take the maximum seen.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedProfile {
    /// SMs that received warps in the largest launch.
    pub sms_used: u32,
    /// Residency limit (warps per SM) of the deepest launch.
    pub residency: u32,
    /// Summed makespan of the replays, in ticks (launches run
    /// back-to-back on one device).
    pub makespan_ticks: u64,
    /// Issue-port busy ticks, summed over used SMs and launches.
    pub busy_ticks: u64,
    /// Warp-residency slot occupancy in ticks (admission → retirement,
    /// summed over warps).
    pub resident_ticks: u64,
    /// Staging phase (reads → fingerprints) tick breakdown.
    pub stage: PhaseSched,
    /// Hash-table construction tick breakdown.
    pub construct: PhaseSched,
    /// Mer-walk tick breakdown — `walk.exposed_ticks` is the simulated
    /// latency term that replaces the analytic `t_latency`.
    pub walk: PhaseSched,
    /// Instructions outside the three pipeline phases (kernel prologue/
    /// epilogue) plus any phase name the kernel does not use.
    pub other: PhaseSched,
}

impl SchedProfile {
    /// Collapse one launch's replay into the fixed-phase summary.
    pub fn from_result(r: &SchedResult) -> Self {
        let mut p = SchedProfile {
            sms_used: r.sms_used,
            residency: r.residency,
            makespan_ticks: r.makespan_ticks,
            busy_ticks: r.busy_ticks,
            resident_ticks: r.resident_ticks,
            ..SchedProfile::default()
        };
        for (name, ph) in &r.phases {
            match *name {
                "stage" => p.stage.merge(ph),
                "construct" => p.construct.merge(ph),
                "walk" => p.walk.merge(ph),
                _ => p.other.merge(ph),
            }
        }
        p
    }

    /// Merge another launch's summary into this one (back-to-back
    /// launches: makespans and tick sums add, limits take the max).
    pub fn merge(&mut self, o: &SchedProfile) {
        self.sms_used = self.sms_used.max(o.sms_used);
        self.residency = self.residency.max(o.residency);
        self.makespan_ticks += o.makespan_ticks;
        self.busy_ticks += o.busy_ticks;
        self.resident_ticks += o.resident_ticks;
        self.stage.merge(&o.stage);
        self.construct.merge(&o.construct);
        self.walk.merge(&o.walk);
        self.other.merge(&o.other);
    }

    fn phase_sum(&self, f: impl Fn(&PhaseSched) -> u64) -> u64 {
        [&self.stage, &self.construct, &self.walk, &self.other].iter().map(|p| f(p)).sum()
    }

    /// Total issue-port ticks across phases.
    pub fn issue_ticks(&self) -> u64 {
        self.phase_sum(|p| p.issue_ticks)
    }

    /// Total memory-stall (hideable) ticks across phases.
    pub fn stall_ticks(&self) -> u64 {
        self.phase_sum(|p| p.stall_ticks)
    }

    /// Total exposed (un-hidden) stall ticks across phases.
    pub fn exposed_ticks(&self) -> u64 {
        self.phase_sum(|p| p.exposed_ticks)
    }

    /// Achieved occupancy: mean fraction of residency slots holding a
    /// live warp over the summed makespan (0 when nothing ran).
    pub fn occupancy(&self) -> f64 {
        let slots = self.residency as u64 * self.sms_used as u64;
        if slots == 0 || self.makespan_ticks == 0 {
            return 0.0;
        }
        self.resident_ticks as f64 / (slots * self.makespan_ticks) as f64
    }

    /// Fraction of memory-stall ticks hidden by warp interleaving
    /// (1.0 with no stalls at all).
    pub fn latency_hidden_fraction(&self) -> f64 {
        let stall = self.stall_ticks();
        if stall == 0 {
            return 1.0;
        }
        1.0 - (self.exposed_ticks().min(stall) as f64 / stall as f64)
    }
}

/// Profile of one batch (one kernel call in the Fig. 3 pipeline).
#[derive(Debug, Clone, Copy)]
pub struct BatchProfile {
    /// Binning band (lower read-count bound) this batch came from.
    pub band: usize,
    pub warps: u64,
    pub time: TimeEstimate,
}

/// Full profile of a local-assembly run on one device.
#[derive(Debug, Clone)]
pub struct KernelProfile {
    pub device: DeviceId,
    pub dialect: Dialect,
    pub k: usize,
    /// Aggregate over all kernel calls (right + left, all batches).
    pub total: AggCounters,
    pub phases: PhaseCounters,
    pub batches: Vec<BatchProfile>,
}

impl KernelProfile {
    /// Total kernel time: the sum over kernel calls (they are issued
    /// back-to-back on one device, as in the paper's measurements).
    pub fn seconds(&self) -> f64 {
        self.batches.iter().map(|b| b.time.seconds).sum()
    }

    /// Total warp-level integer operations.
    pub fn intops(&self) -> u64 {
        self.total.intops()
    }

    /// Total HBM bytes moved.
    pub fn hbm_bytes(&self) -> u64 {
        self.total.mem.hbm_bytes()
    }

    /// Achieved GINTOPs per second.
    pub fn gintops_per_sec(&self) -> f64 {
        self.intops() as f64 / self.seconds() / 1e9
    }

    /// INTOP intensity (integer ops per HBM byte) — the roofline x-axis.
    pub fn intop_intensity(&self) -> f64 {
        self.total.intop_intensity()
    }

    /// The dominant bound across batches, weighted by time.
    pub fn bound(&self) -> Bound {
        let mut compute = 0.0;
        let mut bw = 0.0;
        let mut lat = 0.0;
        for b in &self.batches {
            compute += b.time.compute_seconds;
            bw += b.time.bandwidth_seconds;
            lat += b.time.latency_seconds;
        }
        if compute >= bw && compute >= lat {
            Bound::Compute
        } else if bw >= lat {
            Bound::Bandwidth
        } else {
            Bound::Latency
        }
    }

    /// The `ModelParams` equivalent of the whole run (for re-estimation,
    /// e.g. in what-if analyses).
    pub fn model_params(&self) -> ModelParams {
        ModelParams::from_counters(&self.total)
    }
}

/// Aggregated statistics for one named phase, derived from warp traces.
///
/// Span deltas are *inclusive* of nested phases, so a parent phase counts
/// its children's work too; the kernel's top-level phases (`stage`,
/// `construct`, `walk`) do not nest each other and therefore partition the
/// traced work.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStats {
    /// Phase (span) name.
    pub name: String,
    /// Number of spans with this name across all traced warps.
    pub spans: u64,
    /// Warp instructions attributed to the phase.
    pub warp_instructions: u64,
    /// Warp-level integer instructions attributed to the phase.
    pub int_instructions: u64,
    /// Warp-level INTOPs (integer instructions × warp width) — the
    /// paper's `smsp__inst_executed`-derived metric.
    pub intops: u64,
    /// Lane-level integer operations actually performed (active lanes).
    pub lane_int_ops: u64,
    /// HBM bytes moved during the phase.
    pub hbm_bytes: u64,
    /// Integer instructions per active-lane occupancy quartile
    /// (0–25 %, 25–50 %, 50–75 %, 75–100 %].
    pub occupancy_quartiles: [u64; 4],
}

impl PhaseStats {
    fn zero(name: &str) -> Self {
        PhaseStats {
            name: name.to_string(),
            spans: 0,
            warp_instructions: 0,
            int_instructions: 0,
            intops: 0,
            lane_int_ops: 0,
            hbm_bytes: 0,
            occupancy_quartiles: [0; 4],
        }
    }

    /// INTOP intensity (integer ops per HBM byte) of this phase — the
    /// roofline x-axis, resolved per pipeline stage.
    pub fn intop_intensity(&self) -> f64 {
        if self.hbm_bytes == 0 {
            return f64::INFINITY;
        }
        self.intops as f64 / self.hbm_bytes as f64
    }

    /// Mean active-lane fraction over the phase's integer instructions
    /// (1.0 = no divergence; the serial mer-walk sits near 1/width).
    pub fn lane_utilization(&self) -> f64 {
        if self.intops == 0 {
            return 1.0;
        }
        self.lane_int_ops as f64 / self.intops as f64
    }

    /// Fraction of integer instructions per occupancy quartile — the
    /// phase-resolved divergence profile.
    pub fn divergence_profile(&self) -> [f64; 4] {
        let total: u64 = self.occupancy_quartiles.iter().sum();
        if total == 0 {
            return [0.0; 4];
        }
        self.occupancy_quartiles.map(|q| q as f64 / total as f64)
    }
}

/// Per-phase profile derived from the warp traces of a run — what the
/// vendor profilers' range-replay / kernel-phase views report, rebuilt
/// from the simulator's own spans.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceProfile {
    /// Per-phase aggregates, sorted by phase name.
    pub phases: Vec<PhaseStats>,
    /// Number of traced warps that contributed.
    pub warps: u64,
}

impl TraceProfile {
    /// Aggregate span deltas by phase name over all traces.
    pub fn from_traces(traces: &[WarpTrace]) -> Self {
        let mut phases: Vec<PhaseStats> = Vec::new();
        for t in traces {
            for s in &t.spans {
                let idx = match phases.iter().position(|p| p.name == s.name) {
                    Some(i) => i,
                    None => {
                        phases.push(PhaseStats::zero(s.name));
                        phases.len() - 1
                    }
                };
                let p = &mut phases[idx];
                p.spans += 1;
                p.warp_instructions += s.delta.warp_instructions;
                p.int_instructions += s.delta.int_instructions;
                p.intops += s.delta.intops();
                p.lane_int_ops += s.delta.lane_int_ops;
                p.hbm_bytes += s.delta.mem.hbm_bytes();
                for q in 0..4 {
                    p.occupancy_quartiles[q] += s.delta.occupancy_quartiles[q];
                }
            }
        }
        phases.sort_by(|a, b| a.name.cmp(&b.name));
        TraceProfile { phases, warps: traces.len() as u64 }
    }

    /// Look up a phase by name.
    pub fn phase(&self, name: &str) -> Option<&PhaseStats> {
        self.phases.iter().find(|p| p.name == name)
    }
}

#[cfg(test)]
mod trace_profile_tests {
    use super::*;
    use crate::kernel::{extension_kernel, Dialect, KernelJob};
    use locassm_core::walk::WalkConfig;
    use locassm_core::{Read, RetryPolicy};
    use memhier::HierarchyConfig;
    use simt::Warp;

    fn traced_kernel_run() -> Vec<WarpTrace> {
        let mut warp = Warp::new(32, HierarchyConfig::tiny());
        warp.enable_trace(0);
        let job = KernelJob::owned(
            b"GGGGACGTACG".to_vec(),
            vec![Read::with_uniform_qual(b"ACGTACGGTTACCA", b'I')],
            4,
            WalkConfig { min_votes: 1, ..WalkConfig::default() },
            RetryPolicy::none(),
            Dialect::Cuda,
        );
        extension_kernel(&mut warp, &job).unwrap();
        vec![warp.take_trace().unwrap()]
    }

    #[test]
    fn kernel_phases_show_up_with_distinct_cost_structure() {
        let traces = traced_kernel_run();
        assert_eq!(traces[0].phase_names(), vec!["construct", "stage", "walk"]);
        let p = TraceProfile::from_traces(&traces);
        assert_eq!(p.warps, 1);
        let construct = p.phase("construct").unwrap();
        let walk = p.phase("walk").unwrap();
        assert!(construct.intops > 0);
        assert!(walk.intops > 0);
        // The mer-walk is single-lane; construction is warp-parallel.
        assert!(walk.lane_utilization() < 0.1);
        assert!(construct.lane_utilization() > walk.lane_utilization());
        // Walk divergence lives in the bottom occupancy quartile.
        assert!(walk.divergence_profile()[0] > 0.9);
    }

    #[test]
    fn phase_totals_cover_the_whole_kernel() {
        let traces = traced_kernel_run();
        let p = TraceProfile::from_traces(&traces);
        let sum: u64 = p.phases.iter().map(|ph| ph.warp_instructions).sum();
        assert!(sum > 0);
        // Top-level phases partition the kernel body (no nesting).
        assert!(sum <= traces[0].end_clock());
    }

    #[test]
    fn empty_traces_yield_empty_profile() {
        let p = TraceProfile::from_traces(&[]);
        assert!(p.phases.is_empty());
        assert_eq!(p.warps, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agg(instr: u64, width: u32) -> AggCounters {
        AggCounters {
            width,
            warps: 1,
            warp_instructions: instr,
            int_instructions: instr,
            ..Default::default()
        }
    }

    fn batch(seconds: f64) -> BatchProfile {
        BatchProfile {
            band: 1,
            warps: 1,
            time: TimeEstimate {
                seconds,
                compute_seconds: seconds,
                bandwidth_seconds: 0.0,
                latency_seconds: 0.0,
                bound: Bound::Compute,
            },
        }
    }

    #[test]
    fn totals_and_rates() {
        let p = KernelProfile {
            device: DeviceId::A100,
            dialect: Dialect::Cuda,
            k: 21,
            total: agg(1_000_000, 32),
            phases: PhaseCounters::default(),
            batches: vec![batch(0.001), batch(0.003)],
        };
        assert!((p.seconds() - 0.004).abs() < 1e-12);
        assert_eq!(p.intops(), 32_000_000);
        assert!((p.gintops_per_sec() - 8.0).abs() < 1e-9);
        assert_eq!(p.bound(), Bound::Compute);
    }
}

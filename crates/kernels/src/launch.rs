//! The host-side pipeline (Fig. 3): contig binning → hash-table size
//! estimation → batch creation → GPU initialize → right extension kernel →
//! left extension kernel → append extensions.
//!
//! The batch assembly is zero-copy: right-extension [`KernelJob`]s borrow
//! contig and read slices straight out of the `Dataset`, left-extension
//! jobs own only the reverse-complement transform, and every launch goes
//! through the pooled warp engine in `simt::grid` with an arena pre-size
//! hint derived from the host-side footprint estimate
//! ([`crate::layout::arena_footprint`]) — so the steady-state hot path
//! performs no sequence copies and no per-warp arena growth.

use crate::kernel::{extension_kernel, Dialect, KernelJob, KernelOut};
use crate::layout::arena_footprint;
use crate::profile::{BatchProfile, KernelProfile, PhaseCounters};
use gpu_specs::{effective_hierarchy, DeviceId, DeviceSpec, ModelParams, TimeEstimate};
use locassm_core::io::Dataset;
use locassm_core::walk::WalkConfig;
use locassm_core::{bin_contigs, BinningPolicy, ExtensionResult, RetryPolicy};
use simt::{launch_warps, AggCounters, LaunchConfig};

/// Configuration of a simulated GPU run.
#[derive(Debug, Clone)]
pub struct GpuConfig {
    pub device: DeviceId,
    /// Kernel dialect; the paper pairs each device with its native model,
    /// but any combination is allowed (used by the ablation benches).
    pub dialect: Dialect,
    /// Warp/sub-group width; defaults to the device's hardware width.
    pub width: u32,
    pub binning: BinningPolicy,
    pub walk: WalkConfig,
    /// Retry ladder for unaccepted walks (Fig. 4's outer loop).
    pub retry: RetryPolicy,
    /// Simulate warps in parallel (rayon).
    pub parallel: bool,
    /// Draw warps (arena + cache model) from the process-wide pool instead
    /// of constructing one per job. On by default; results are
    /// bit-identical either way — pooling only removes allocator traffic
    /// (see the pooled-vs-fresh equivalence tests).
    pub pool: bool,
    /// Override the device's architectural parameters (what-if hardware
    /// projections, e.g. "MI250X with a 40 MB L2"). `None` uses the
    /// published spec for `device`.
    pub custom_spec: Option<DeviceSpec>,
    /// Attach a trace sink to every warp and collect per-warp
    /// [`simt::WarpTrace`]s in [`GpuRunResult::traces`] (run-global warp
    /// ids, in launch order: batches × {right, left} × job order).
    pub trace: bool,
}

impl GpuConfig {
    /// The paper's configuration for a device: native dialect, hardware
    /// width, power-of-two binning.
    pub fn for_device(device: DeviceId) -> Self {
        GpuConfig {
            device,
            dialect: Dialect::native_for(device),
            width: device.spec().warp_width,
            binning: BinningPolicy::PowerOfTwo,
            walk: WalkConfig::default(),
            retry: RetryPolicy::none(),
            parallel: true,
            pool: true,
            custom_spec: None,
            trace: false,
        }
    }

    /// The architectural parameters this run simulates.
    pub fn spec(&self) -> &DeviceSpec {
        self.custom_spec.as_ref().unwrap_or_else(|| self.device.spec())
    }

    /// A what-if variant of this configuration with a modified spec.
    pub fn with_spec(mut self, spec: DeviceSpec) -> Self {
        self.custom_spec = Some(spec);
        self
    }
}

/// Outcome of a simulated run.
#[derive(Debug, Clone)]
pub struct GpuRunResult {
    /// Per-contig extensions, in dataset order.
    pub extensions: Vec<ExtensionResult>,
    pub profile: KernelProfile,
    /// Per-warp traces (empty unless [`GpuConfig::trace`] was set).
    /// `warp_id` is re-numbered to be unique across the whole run.
    pub traces: Vec<simt::WarpTrace>,
}

/// Run the full local assembly pipeline for a dataset on a simulated GPU.
pub fn run_local_assembly(ds: &Dataset, cfg: &GpuConfig) -> GpuRunResult {
    let spec = cfg.spec();
    let k = ds.k;

    let batches = bin_contigs(&ds.jobs, cfg.binning);

    let mut total = AggCounters::default();
    let mut phases = PhaseCounters::default();
    let mut batch_profiles = Vec::new();
    let mut traces: Vec<simt::WarpTrace> = Vec::new();

    // Results indexed by job position.
    let mut right: Vec<(Vec<u8>, locassm_core::WalkState)> =
        vec![(Vec::new(), locassm_core::WalkState::End); ds.jobs.len()];
    let mut left = right.clone();

    // Retry schedule and side-skip threshold are launch-invariant: hoist
    // them out of the per-job loop (the schedule allocates a Vec).
    let schedule = cfg.retry.schedule(k);
    let min_k = schedule.iter().copied().min().unwrap_or(k);

    for batch in &batches {
        // Right extension kernel, then left extension kernel (Fig. 3).
        for side in [Side::Right, Side::Left] {
            let mut indices: Vec<usize> = Vec::with_capacity(batch.jobs.len());
            let mut kernel_jobs: Vec<KernelJob<'_>> = Vec::with_capacity(batch.jobs.len());
            for &idx in &batch.jobs {
                let j = &ds.jobs[idx];
                // The host skips contigs with no work for this side under
                // any k in the retry schedule.
                let job = match side {
                    Side::Right => {
                        if j.contig.len() < min_k || j.right_reads.is_empty() {
                            continue;
                        }
                        // Zero-copy: borrow sequence data from the dataset.
                        KernelJob::borrowed(
                            &j.contig,
                            &j.right_reads,
                            k,
                            cfg.walk,
                            &cfg.retry,
                            cfg.dialect,
                        )
                    }
                    Side::Left => {
                        if j.contig.len() < min_k || j.left_reads.is_empty() {
                            continue;
                        }
                        // Left walks run on the reverse complement: the
                        // transform owns its (genuinely new) storage.
                        let t = j.left_as_right();
                        KernelJob::transformed(
                            t.contig,
                            t.right_reads,
                            k,
                            cfg.walk,
                            &cfg.retry,
                            cfg.dialect,
                        )
                    }
                };
                indices.push(idx);
                kernel_jobs.push(job);
            }
            if kernel_jobs.is_empty() {
                continue;
            }

            // Host-side size estimation (Fig. 3): pre-size pooled arenas to
            // the largest per-warp slab so staging never regrows them.
            let arena_hint = kernel_jobs
                .iter()
                .map(|j| arena_footprint(j.contig.len(), &j.reads, &schedule, j.walk))
                .max()
                .unwrap_or(0);
            let hierarchy = effective_hierarchy(spec, kernel_jobs.len() as u64);
            let launch_cfg = LaunchConfig {
                width: cfg.width,
                hierarchy,
                parallel: cfg.parallel,
                trace: cfg.trace,
                pool: cfg.pool,
                arena_hint,
            };
            let out = launch_warps(launch_cfg, &kernel_jobs, |warp, job: &KernelJob<'_>| {
                let r: KernelOut = extension_kernel(warp, job);
                debug_assert_eq!(
                    warp.mem.regrowths(),
                    0,
                    "host size estimation must upper-bound in-kernel staging"
                );
                r
            });
            // Re-number warp ids to be unique across batches and sides.
            for mut t in out.traces {
                t.warp_id = traces.len() as u64;
                traces.push(t);
            }

            // Phase split: construct snapshots summed; walk = total − construct.
            // The walk phase's critical path (max_warp_instructions) is
            // attributed per warp: each warp's walk segment is its total
            // instruction stream minus its construct-boundary snapshot.
            let mut construct = AggCounters::default();
            let mut max_walk = 0u64;
            for (o, &total_instr) in out.results.iter().zip(&out.warp_instruction_counts) {
                construct.absorb(&o.construct);
                debug_assert!(
                    total_instr >= o.construct.warp_instructions,
                    "phase snapshot exceeds the warp's final instruction count"
                );
                max_walk =
                    max_walk.max(total_instr.saturating_sub(o.construct.warp_instructions));
            }
            phases.construct.merge(&construct);
            let walk_agg = diff_agg(&out.counters, &construct, max_walk);
            phases.walk.merge(&walk_agg);

            // Per-phase timing: construction overlaps memory at the
            // device's MLP; the mer-walk is a single-lane dependence chain
            // (MLP ≈ 1).
            let t_construct =
                TimeEstimate::estimate(spec, &ModelParams::from_counters(&construct));
            let t_walk = TimeEstimate::estimate_with_mlp(
                spec,
                &ModelParams::from_counters(&walk_agg),
                1.0,
            );
            let time = TimeEstimate {
                seconds: t_construct.seconds + t_walk.seconds,
                compute_seconds: t_construct.compute_seconds + t_walk.compute_seconds,
                bandwidth_seconds: t_construct.bandwidth_seconds + t_walk.bandwidth_seconds,
                latency_seconds: t_construct.latency_seconds + t_walk.latency_seconds,
                bound: if t_construct.seconds >= t_walk.seconds {
                    t_construct.bound
                } else {
                    t_walk.bound
                },
            };
            batch_profiles.push(BatchProfile {
                band: batch.band,
                warps: out.counters.warps,
                time,
            });
            total.merge(&out.counters);

            for (idx, o) in indices.into_iter().zip(out.results) {
                match side {
                    Side::Right => right[idx] = (o.extension, o.state),
                    Side::Left => {
                        // Left walks ran on the reverse complement.
                        left[idx] = (locassm_core::revcomp(&o.extension), o.state);
                    }
                }
            }
        }
    }

    let extensions = ds
        .jobs
        .iter()
        .enumerate()
        .map(|(i, j)| ExtensionResult {
            id: j.id,
            right: std::mem::take(&mut right[i].0),
            left: std::mem::take(&mut left[i].0),
            right_state: right[i].1,
            left_state: left[i].1,
        })
        .collect();

    GpuRunResult {
        extensions,
        profile: KernelProfile {
            device: cfg.device,
            dialect: cfg.dialect,
            k,
            total,
            phases,
            batches: batch_profiles,
        },
        traces,
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Side {
    Right,
    Left,
}

/// Aggregate difference (total − construct) for phase attribution.
///
/// Every phase snapshot must be a prefix of its warp's final counters, so
/// `total ≥ part` field-by-field; that invariant is `debug_assert!`ed and
/// the subtraction saturates rather than wrapping in release builds (a
/// wrapped counter would silently corrupt the roofline inputs downstream).
/// `max_walk_instructions` is the caller-computed longest single-warp walk
/// segment — the phase's critical path cannot be derived from two
/// aggregates alone (see [`PhaseCounters`] for the semantics).
fn diff_agg(total: &AggCounters, part: &AggCounters, max_walk_instructions: u64) -> AggCounters {
    debug_assert!(
        total.warp_instructions >= part.warp_instructions
            && total.int_instructions >= part.int_instructions
            && total.collective_instructions >= part.collective_instructions
            && total.sync_instructions >= part.sync_instructions
            && total.atomic_instructions >= part.atomic_instructions
            && total.atomic_replays >= part.atomic_replays
            && total.lane_int_ops >= part.lane_int_ops
            && (0..4).all(|q| total.occupancy_quartiles[q] >= part.occupancy_quartiles[q]),
        "phase snapshot exceeds launch totals: total={total:?} part={part:?}"
    );
    AggCounters {
        width: total.width,
        warps: total.warps,
        warp_instructions: total.warp_instructions.saturating_sub(part.warp_instructions),
        int_instructions: total.int_instructions.saturating_sub(part.int_instructions),
        collective_instructions: total
            .collective_instructions
            .saturating_sub(part.collective_instructions),
        sync_instructions: total.sync_instructions.saturating_sub(part.sync_instructions),
        atomic_instructions: total.atomic_instructions.saturating_sub(part.atomic_instructions),
        atomic_replays: total.atomic_replays.saturating_sub(part.atomic_replays),
        lane_int_ops: total.lane_int_ops.saturating_sub(part.lane_int_ops),
        occupancy_quartiles: [
            total.occupancy_quartiles[0].saturating_sub(part.occupancy_quartiles[0]),
            total.occupancy_quartiles[1].saturating_sub(part.occupancy_quartiles[1]),
            total.occupancy_quartiles[2].saturating_sub(part.occupancy_quartiles[2]),
            total.occupancy_quartiles[3].saturating_sub(part.occupancy_quartiles[3]),
        ],
        max_warp_instructions: max_walk_instructions,
        mem: total.mem.since(&part.mem),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locassm_core::{assemble_all, AssemblyConfig};
    use workloads::paper_dataset;

    fn small_ds() -> Dataset {
        paper_dataset(21, 0.002, 42)
    }

    #[test]
    fn gpu_matches_cpu_reference() {
        let ds = small_ds();
        let cfg = GpuConfig::for_device(DeviceId::A100);
        let gpu = run_local_assembly(&ds, &cfg);
        let cpu = assemble_all(
            &ds.jobs,
            &AssemblyConfig { k: ds.k, walk: cfg.walk, retry: cfg.retry.clone() },
            true,
        );
        assert_eq!(gpu.extensions, cpu, "A100/CUDA run must match the CPU oracle");
    }

    #[test]
    fn all_devices_produce_identical_extensions() {
        let ds = small_ds();
        let a = run_local_assembly(&ds, &GpuConfig::for_device(DeviceId::A100));
        let b = run_local_assembly(&ds, &GpuConfig::for_device(DeviceId::Mi250x));
        let c = run_local_assembly(&ds, &GpuConfig::for_device(DeviceId::Max1550));
        assert_eq!(a.extensions, b.extensions);
        assert_eq!(a.extensions, c.extensions);
    }

    #[test]
    fn profile_has_work() {
        let ds = small_ds();
        let r = run_local_assembly(&ds, &GpuConfig::for_device(DeviceId::A100));
        let p = &r.profile;
        assert!(p.intops() > 0);
        assert!(p.hbm_bytes() > 0);
        assert!(p.seconds() > 0.0);
        assert!(p.phases.construct.int_instructions > 0);
        assert!(p.phases.walk.int_instructions > 0);
        assert!(!p.batches.is_empty());
    }

    #[test]
    fn deterministic_across_parallel_modes() {
        let ds = small_ds();
        let mut cfg = GpuConfig::for_device(DeviceId::Max1550);
        let par = run_local_assembly(&ds, &cfg);
        cfg.parallel = false;
        let ser = run_local_assembly(&ds, &cfg);
        assert_eq!(par.extensions, ser.extensions);
        assert_eq!(par.profile.total, ser.profile.total);
    }

    #[test]
    fn traced_run_collects_run_global_traces() {
        let ds = small_ds();
        let mut cfg = GpuConfig::for_device(DeviceId::A100);
        cfg.trace = true;
        let traced = run_local_assembly(&ds, &cfg);
        assert!(!traced.traces.is_empty());
        for (i, t) in traced.traces.iter().enumerate() {
            assert_eq!(t.warp_id, i as u64, "run-global warp ids");
            assert!(
                t.phase_names().len() >= 3,
                "warp {i} has phases {:?}",
                t.phase_names()
            );
        }
        // Observing the run must not change it.
        cfg.trace = false;
        let plain = run_local_assembly(&ds, &cfg);
        assert_eq!(traced.extensions, plain.extensions);
        assert_eq!(traced.profile.total, plain.profile.total);
        assert!(plain.traces.is_empty());
    }

    /// Satellite equivalence suite: a pooled run must be *bit-identical*
    /// to a fresh-warp run — extensions, every aggregate counter, and the
    /// full warp traces — in both parallel and serial modes, on all three
    /// devices. Pooling is a pure allocator optimisation; any observable
    /// difference is a reset bug.
    #[test]
    fn pooled_and_fresh_runs_are_bit_identical() {
        let ds = small_ds();
        for device in [DeviceId::A100, DeviceId::Mi250x, DeviceId::Max1550] {
            for parallel in [true, false] {
                let mut cfg = GpuConfig::for_device(device);
                cfg.parallel = parallel;
                cfg.trace = true;
                cfg.pool = true;
                let pooled = run_local_assembly(&ds, &cfg);
                cfg.pool = false;
                let fresh = run_local_assembly(&ds, &cfg);

                let tag = format!("{device} parallel={parallel}");
                assert_eq!(pooled.extensions, fresh.extensions, "{tag}: extensions");
                assert_eq!(pooled.profile.total, fresh.profile.total, "{tag}: totals");
                assert_eq!(
                    pooled.profile.phases.construct, fresh.profile.phases.construct,
                    "{tag}: construct phase"
                );
                assert_eq!(
                    pooled.profile.phases.walk, fresh.profile.phases.walk,
                    "{tag}: walk phase"
                );
                assert_eq!(pooled.traces, fresh.traces, "{tag}: warp traces");
            }
        }
    }

    /// The pooled run's phase timing inputs (and thus the modeled seconds)
    /// must match the fresh run's too — the batch profiles feed the
    /// roofline model directly.
    #[test]
    fn pooled_and_fresh_runs_agree_on_modeled_time() {
        let ds = small_ds();
        let mut cfg = GpuConfig::for_device(DeviceId::A100);
        cfg.pool = true;
        let pooled = run_local_assembly(&ds, &cfg);
        cfg.pool = false;
        let fresh = run_local_assembly(&ds, &cfg);
        assert_eq!(pooled.profile.batches.len(), fresh.profile.batches.len());
        assert_eq!(pooled.profile.seconds(), fresh.profile.seconds());
    }

    /// The walk phase's critical path is attributed per warp, not copied
    /// from the launch total: each warp's walk segment is its own total
    /// minus its own construct snapshot, and the construct + walk maxima
    /// must each stay below the overall critical path while covering it.
    #[test]
    fn walk_critical_path_is_attributed_not_copied() {
        let ds = small_ds();
        let r = run_local_assembly(&ds, &GpuConfig::for_device(DeviceId::A100));
        let p = &r.profile;
        let construct_max = p.phases.construct.max_warp_instructions;
        let walk_max = p.phases.walk.max_warp_instructions;
        let total_max = p.total.max_warp_instructions;
        assert!(walk_max > 0);
        assert!(
            walk_max < total_max,
            "walk critical path {walk_max} must exclude construction (total {total_max})"
        );
        assert!(
            construct_max + walk_max >= total_max,
            "phase maxima {construct_max}+{walk_max} must cover the total {total_max} \
             (both bound the same slowest warp from its two segments)"
        );
    }

    #[test]
    fn binning_policies_agree_on_results() {
        let ds = small_ds();
        let mut cfg = GpuConfig::for_device(DeviceId::A100);
        let a = run_local_assembly(&ds, &cfg);
        cfg.binning = BinningPolicy::Single;
        let b = run_local_assembly(&ds, &cfg);
        assert_eq!(a.extensions, b.extensions);
        // Work totals match too; only batch structure differs.
        assert_eq!(a.profile.total.int_instructions, b.profile.total.int_instructions);
    }
}

#[cfg(test)]
mod whatif_tests {
    use super::*;
    use workloads::paper_dataset;

    /// The paper's §V-E conclusion in executable form: giving the MI250X
    /// model a Max 1550-sized L2 collapses its HBM traffic toward the
    /// A100's.
    #[test]
    fn bigger_l2_fixes_the_mi250x() {
        // Full occupancy (one batch > 880 resident warps) so the L2 share
        // is under real pressure, as in the production-scale runs.
        let ds = paper_dataset(21, 0.07, 61);
        let mut cfg = GpuConfig::for_device(DeviceId::Mi250x);
        cfg.binning = locassm_core::BinningPolicy::Single;
        let stock = run_local_assembly(&ds, &cfg);

        let mut spec = DeviceId::Mi250x.spec().clone();
        spec.l2_bytes = 204 * 1024 * 1024; // Max 1550-sized
        let upgraded_cfg = cfg.clone().with_spec(spec);
        let upgraded = run_local_assembly(&ds, &upgraded_cfg);

        assert_eq!(
            stock.extensions, upgraded.extensions,
            "hardware what-ifs must not change results"
        );
        assert!(
            upgraded.profile.hbm_bytes() * 2 < stock.profile.hbm_bytes(),
            "204 MB L2 must collapse traffic: {} vs {}",
            upgraded.profile.hbm_bytes(),
            stock.profile.hbm_bytes()
        );
        assert!(upgraded.profile.seconds() < stock.profile.seconds());
    }

    /// Conversely, shrinking the A100's L2 to the MI250X's pushes its
    /// traffic up.
    #[test]
    fn smaller_l2_hurts_the_a100() {
        let ds = paper_dataset(21, 0.07, 62);
        let mut base = GpuConfig::for_device(DeviceId::A100);
        base.binning = locassm_core::BinningPolicy::Single;
        let stock = run_local_assembly(&ds, &base);

        let mut spec = DeviceId::A100.spec().clone();
        spec.l2_bytes = 8 * 1024 * 1024;
        spec.l1_bytes_per_cu = 16 * 1024;
        let cfg = base.clone().with_spec(spec);
        let shrunk = run_local_assembly(&ds, &cfg);

        assert!(shrunk.profile.hbm_bytes() > stock.profile.hbm_bytes());
    }
}

//! The warp hot path: scalar vs vectorized interpreter throughput.
//!
//! Three groups of profiling evidence for the lane-vectorization work:
//!
//! * `hotpath_exec` — full simulated kernel runs, `scalar` vs
//!   `vectorized`, one pair per dialect on its native device. The
//!   acceptance bar (vectorized ≥ 1.15× scalar on CUDA/A100) is enforced
//!   by the tier-1 smoke test in `poolbench`; this group shows the margin.
//! * `hotpath_tuned` — the vectorized engine with paper-default knobs vs
//!   the autotuned choice (`kernels::tune`, swept once outside the timing
//!   loop and replayed from its process-wide cache).
//! * `warp_reset` — the micro-cost behind the pooled-path fix: resetting
//!   a dirty pooled warp is O(1) bookkeeping under lazy arena zeroing,
//!   versus constructing a fresh warp with its zeroed slab.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_specs::DeviceId;
use locassm_kernels::{run_local_assembly, tune, GpuConfig};
use memhier::HierarchyConfig;
use simt::{ExecMode, Warp};
use std::hint::black_box;
use workloads::paper_dataset;

fn bench_exec_modes(c: &mut Criterion) {
    let ds = paper_dataset(21, 0.005, 11);
    let mut g = c.benchmark_group("hotpath_exec");
    g.sample_size(10);
    for dev in [DeviceId::A100, DeviceId::Mi250x, DeviceId::Max1550] {
        let mut cfg = GpuConfig::for_device(dev);
        // Criterion runs inside its own harness; keep the simulation
        // single-threaded for stable measurements.
        cfg.parallel = false;
        cfg.exec = ExecMode::Scalar;
        g.bench_with_input(
            BenchmarkId::new("scalar", dev.spec().short_name),
            &ds,
            |b, ds| b.iter(|| run_local_assembly(black_box(ds), &cfg).profile.total.warps),
        );
        cfg.exec = ExecMode::Vectorized;
        g.bench_with_input(
            BenchmarkId::new("vectorized", dev.spec().short_name),
            &ds,
            |b, ds| b.iter(|| run_local_assembly(black_box(ds), &cfg).profile.total.warps),
        );
    }
    g.finish();
}

fn bench_tuned_vs_default(c: &mut Criterion) {
    let ds = paper_dataset(21, 0.005, 11);
    let mut g = c.benchmark_group("hotpath_tuned");
    g.sample_size(10);
    let mut cfg = GpuConfig::for_device(DeviceId::A100);
    cfg.parallel = false;
    g.bench_function("default_knobs", |b| {
        b.iter(|| run_local_assembly(black_box(&ds), &cfg).profile.total.warps)
    });
    let mut tuned_cfg = cfg.clone();
    let choice = tune(&ds, &mut tuned_cfg);
    eprintln!(
        "autotuned A100: reserve={} batch={:?} probe={:?} ({:.3}s modeled)",
        choice.slot_reserve, choice.max_batch, choice.probe, choice.predicted_seconds
    );
    g.bench_function("autotuned_knobs", |b| {
        b.iter(|| run_local_assembly(black_box(&ds), &tuned_cfg).profile.total.warps)
    });
    g.finish();
}

fn bench_warp_reset(c: &mut Criterion) {
    let mut g = c.benchmark_group("warp_reset");
    let hier = HierarchyConfig::tiny();
    g.bench_function("fresh_construct", |b| {
        b.iter(|| black_box(Warp::new(32, hier.clone())))
    });
    let mut warp = Warp::new(32, hier.clone());
    g.bench_function("pooled_reset", |b| {
        b.iter(|| {
            warp.reset(32, hier.clone());
            black_box(warp.width())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_exec_modes, bench_tuned_vs_default, bench_warp_reset);
criterion_main!(benches);

//! Instruction and traffic accounting.
//!
//! The paper measures (Appendix B):
//!
//! * NVIDIA: `INTOPs = smsp__inst_executed.sum` (warp instructions) and
//!   `HBM bytes = dram__bytes.sum`;
//! * AMD: `INTOPs = 64 × (SQ_INSTS_VALU_INT32 + SQ_INSTS_VALU_INT64)` and
//!   HBM bytes from `TCC_EA_*` request counters;
//! * Intel: Advisor's INT-op and GTI/HBM traffic counters.
//!
//! All three are *warp-level* counts: one vector instruction costs the full
//! warp width regardless of predication. [`WarpCounters::intops`] therefore
//! multiplies integer warp-instructions by the warp width — thread
//! predication (the load-imbalance effect the paper analyses at large k)
//! shows up as inflated INTOPs per useful lane-op, which we additionally
//! expose via [`WarpCounters::lane_utilization`].

use memhier::MemStats;

/// Counters for one warp's execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WarpCounters {
    /// Warp width this warp executed with.
    pub width: u32,
    /// All warp instructions issued (integer + memory + sync + collective).
    pub warp_instructions: u64,
    /// Integer-arithmetic warp instructions.
    pub int_instructions: u64,
    /// Collective (shuffle/ballot/match/vote) instructions.
    pub collective_instructions: u64,
    /// Warp/sub-group synchronization instructions.
    pub sync_instructions: u64,
    /// Atomic instructions (before conflict replays).
    pub atomic_instructions: u64,
    /// Extra serialized replays caused by atomic address conflicts.
    pub atomic_replays: u64,
    /// Sum over integer instructions of the number of *active* lanes —
    /// the "useful" lane-ops, for utilization analysis.
    pub lane_int_ops: u64,
    /// Integer instructions bucketed by active-lane fraction quartile
    /// ((0,25 %], (25,50 %], (50,75 %], (75,100 %]) — the divergence
    /// profile behind the paper's thread-predication discussion.
    pub occupancy_quartiles: [u64; 4],
    /// Memory traffic of this warp.
    pub mem: MemStats,
}

impl WarpCounters {
    /// Zeroed counters for a warp of the given width.
    pub fn new(width: u32) -> Self {
        WarpCounters { width, ..Default::default() }
    }

    /// Warp-level integer operations: integer instructions × warp width
    /// (the quantity plotted on the paper's instruction roofline).
    pub fn intops(&self) -> u64 {
        self.int_instructions * self.width as u64
    }

    /// Fraction of issued integer lane-slots that carried an active lane.
    pub fn lane_utilization(&self) -> f64 {
        let issued = self.int_instructions * self.width as u64;
        if issued == 0 {
            0.0
        } else {
            self.lane_int_ops as f64 / issued as f64
        }
    }

    /// INTOP intensity: integer operations per HBM byte (the paper's "II").
    pub fn intop_intensity(&self) -> f64 {
        let b = self.mem.hbm_bytes();
        if b == 0 {
            f64::INFINITY
        } else {
            self.intops() as f64 / b as f64
        }
    }

    /// Fraction of integer instructions issued in each active-lane
    /// quartile.
    pub fn divergence_profile(&self) -> [f64; 4] {
        let total: u64 = self.occupancy_quartiles.iter().sum();
        if total == 0 {
            return [0.0; 4];
        }
        self.occupancy_quartiles.map(|q| q as f64 / total as f64)
    }

    /// Counters accumulated since an `earlier` snapshot of this warp.
    pub fn since(&self, earlier: &WarpCounters) -> WarpCounters {
        debug_assert_eq!(self.width, earlier.width);
        WarpCounters {
            width: self.width,
            warp_instructions: self.warp_instructions - earlier.warp_instructions,
            int_instructions: self.int_instructions - earlier.int_instructions,
            collective_instructions: self.collective_instructions
                - earlier.collective_instructions,
            sync_instructions: self.sync_instructions - earlier.sync_instructions,
            atomic_instructions: self.atomic_instructions - earlier.atomic_instructions,
            atomic_replays: self.atomic_replays - earlier.atomic_replays,
            lane_int_ops: self.lane_int_ops - earlier.lane_int_ops,
            occupancy_quartiles: [
                self.occupancy_quartiles[0] - earlier.occupancy_quartiles[0],
                self.occupancy_quartiles[1] - earlier.occupancy_quartiles[1],
                self.occupancy_quartiles[2] - earlier.occupancy_quartiles[2],
                self.occupancy_quartiles[3] - earlier.occupancy_quartiles[3],
            ],
            mem: self.mem.since(&earlier.mem),
        }
    }
}

/// Aggregated counters across all warps of a launch.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AggCounters {
    /// Warp width of the launch (all warps of a launch share one width).
    pub width: u32,
    /// Number of warps absorbed into this aggregate.
    pub warps: u64,
    /// Total warp instructions across all warps.
    pub warp_instructions: u64,
    /// Total integer-arithmetic warp instructions.
    pub int_instructions: u64,
    /// Total collective (shuffle/ballot/match/vote) instructions.
    pub collective_instructions: u64,
    /// Total warp/sub-group synchronization instructions.
    pub sync_instructions: u64,
    /// Total atomic instructions (before conflict replays).
    pub atomic_instructions: u64,
    /// Total serialized replays caused by atomic address conflicts.
    pub atomic_replays: u64,
    /// Total active-lane integer ops (see [`WarpCounters::lane_int_ops`]).
    pub lane_int_ops: u64,
    /// Summed divergence profile (see
    /// [`WarpCounters::occupancy_quartiles`]).
    pub occupancy_quartiles: [u64; 4],
    /// Longest single-warp instruction stream — the critical path within a
    /// batch when all its warps run concurrently (used by the timing model
    /// and by the binning ablation).
    pub max_warp_instructions: u64,
    /// Memory traffic summed over all warps.
    pub mem: MemStats,
}

impl AggCounters {
    /// Fold one warp's final counters into the aggregate.
    pub fn absorb(&mut self, w: &WarpCounters) {
        debug_assert!(self.width == 0 || self.width == w.width);
        self.width = w.width;
        self.warps += 1;
        self.warp_instructions += w.warp_instructions;
        self.int_instructions += w.int_instructions;
        self.collective_instructions += w.collective_instructions;
        self.sync_instructions += w.sync_instructions;
        self.atomic_instructions += w.atomic_instructions;
        self.atomic_replays += w.atomic_replays;
        self.lane_int_ops += w.lane_int_ops;
        for (a, b) in self.occupancy_quartiles.iter_mut().zip(w.occupancy_quartiles) {
            *a += b;
        }
        self.max_warp_instructions = self.max_warp_instructions.max(w.warp_instructions);
        self.mem.merge(&w.mem);
    }

    /// Combine with another aggregate (e.g. per-batch partial sums).
    pub fn merge(&mut self, o: &AggCounters) {
        debug_assert!(self.width == 0 || o.width == 0 || self.width == o.width);
        self.width = self.width.max(o.width);
        self.warps += o.warps;
        self.warp_instructions += o.warp_instructions;
        self.int_instructions += o.int_instructions;
        self.collective_instructions += o.collective_instructions;
        self.sync_instructions += o.sync_instructions;
        self.atomic_instructions += o.atomic_instructions;
        self.atomic_replays += o.atomic_replays;
        self.lane_int_ops += o.lane_int_ops;
        for (a, b) in self.occupancy_quartiles.iter_mut().zip(o.occupancy_quartiles) {
            *a += b;
        }
        self.max_warp_instructions = self.max_warp_instructions.max(o.max_warp_instructions);
        self.mem.merge(&o.mem);
    }

    /// Warp-level integer operations.
    pub fn intops(&self) -> u64 {
        self.int_instructions * self.width as u64
    }

    /// INTOP intensity (integer ops per HBM byte).
    pub fn intop_intensity(&self) -> f64 {
        let b = self.mem.hbm_bytes();
        if b == 0 {
            f64::INFINITY
        } else {
            self.intops() as f64 / b as f64
        }
    }

    /// Lane utilization across all integer instructions.
    pub fn lane_utilization(&self) -> f64 {
        let issued = self.int_instructions * self.width as u64;
        if issued == 0 {
            0.0
        } else {
            self.lane_int_ops as f64 / issued as f64
        }
    }

    /// Fraction of integer instructions per active-lane quartile.
    pub fn divergence_profile(&self) -> [f64; 4] {
        let total: u64 = self.occupancy_quartiles.iter().sum();
        if total == 0 {
            return [0.0; 4];
        }
        self.occupancy_quartiles.map(|q| q as f64 / total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intops_scale_with_width() {
        let mut w = WarpCounters::new(32);
        w.int_instructions = 10;
        assert_eq!(w.intops(), 320);
        let mut w64 = WarpCounters::new(64);
        w64.int_instructions = 10;
        assert_eq!(w64.intops(), 640, "same instruction stream costs 2× on a 64-wide wavefront");
    }

    #[test]
    fn utilization() {
        let mut w = WarpCounters::new(32);
        w.int_instructions = 10;
        w.lane_int_ops = 160; // half the lanes active on average
        assert!((w.lane_utilization() - 0.5).abs() < 1e-12);
        assert_eq!(WarpCounters::new(32).lane_utilization(), 0.0);
    }

    #[test]
    fn intensity_zero_bytes_is_infinite() {
        let mut w = WarpCounters::new(32);
        w.int_instructions = 1;
        assert!(w.intop_intensity().is_infinite());
    }

    #[test]
    fn absorb_tracks_max() {
        let mut agg = AggCounters::default();
        let mut a = WarpCounters::new(32);
        a.warp_instructions = 100;
        let mut b = WarpCounters::new(32);
        b.warp_instructions = 250;
        agg.absorb(&a);
        agg.absorb(&b);
        assert_eq!(agg.warps, 2);
        assert_eq!(agg.warp_instructions, 350);
        assert_eq!(agg.max_warp_instructions, 250);
    }

    #[test]
    fn merge_combines() {
        let mut a = AggCounters { width: 32, warps: 1, warp_instructions: 5, ..Default::default() };
        let b = AggCounters {
            width: 32,
            warps: 2,
            warp_instructions: 7,
            max_warp_instructions: 7,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.warps, 3);
        assert_eq!(a.warp_instructions, 12);
        assert_eq!(a.max_warp_instructions, 7);
    }
}

#[cfg(test)]
mod divergence_tests {
    use super::*;

    #[test]
    fn quartile_profile_normalizes() {
        let mut w = WarpCounters::new(32);
        w.occupancy_quartiles = [1, 1, 0, 2];
        let p = w.divergence_profile();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((p[3] - 0.5).abs() < 1e-12);
        assert_eq!(WarpCounters::new(32).divergence_profile(), [0.0; 4]);
    }

    #[test]
    fn since_subtracts_quartiles() {
        let mut a = WarpCounters::new(32);
        a.occupancy_quartiles = [5, 4, 3, 2];
        let mut b = WarpCounters::new(32);
        b.occupancy_quartiles = [1, 1, 1, 1];
        assert_eq!(a.since(&b).occupancy_quartiles, [4, 3, 2, 1]);
    }
}

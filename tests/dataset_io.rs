//! Dataset generation ↔ serialization ↔ assembly, across crates.

use locassm::core::io::{read_dataset, write_dataset};
use locassm::core::{assemble_all, AssemblyConfig};
use locassm::workloads::{paper_dataset, DatasetStats};

#[test]
fn generated_datasets_roundtrip_through_text_format() {
    for k in [21, 33, 55, 77] {
        let ds = paper_dataset(k, 0.002, 500 + k as u64);
        let text = write_dataset(&ds);
        let back = read_dataset(text.as_bytes()).unwrap();
        assert_eq!(back, ds, "k={k}");
    }
}

#[test]
fn roundtripped_dataset_assembles_identically() {
    let ds = paper_dataset(33, 0.003, 9);
    let back = read_dataset(write_dataset(&ds).as_bytes()).unwrap();
    let cfg = AssemblyConfig::new(33);
    assert_eq!(
        assemble_all(&ds.jobs, &cfg, true),
        assemble_all(&back.jobs, &cfg, true)
    );
}

#[test]
fn stats_survive_roundtrip() {
    let ds = paper_dataset(55, 0.004, 10);
    let back = read_dataset(write_dataset(&ds).as_bytes()).unwrap();
    assert_eq!(DatasetStats::compute(&ds), DatasetStats::compute(&back));
}

#[test]
fn full_scale_spec_insertion_totals_match_table2() {
    // Generation at scale 1.0 is too slow for a unit test, but the
    // insertion totals are fixed by the spec (reads × (len − k + 1)).
    use locassm::workloads::paper_spec;
    for (k, expect) in
        [(21usize, 10_011_465usize), (33, 2_593_467), (55, 1_473_920), (77, 775_962)]
    {
        let s = paper_spec(k);
        assert_eq!(s.reads * (s.read_len - k + 1), expect);
    }
}

#[test]
fn scaled_dataset_parses_with_io_errors_on_corruption() {
    let ds = paper_dataset(21, 0.001, 77);
    let text = write_dataset(&ds);
    // Corrupt a base inside a contig sequence line (quality strings may
    // legitimately contain A/C/G/T characters, so target a contig line).
    let corrupted: String = text
        .lines()
        .map(|l| {
            if let Some(rest) = l.strip_prefix("contig ") {
                let fixed = rest.replacen(['A', 'C', 'G', 'T'], "N", 1);
                format!("contig {fixed}\n")
            } else {
                format!("{l}\n")
            }
        })
        .collect();
    assert_ne!(corrupted, text);
    assert!(read_dataset(corrupted.as_bytes()).is_err(), "corruption must be detected");
}

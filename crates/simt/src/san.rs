//! Warp sanitizer: opt-in correctness checking for lockstep kernels.
//!
//! The paper's kernel is warp-cooperative hash-table insertion expressed in
//! three dialects (`__match_any_sync` + `__syncwarp(mask)`, done-flag +
//! `__all`, sub-group barrier) — exactly the class of code where lane-level
//! races, divergent barriers and undefined shuffle sources corrupt results
//! silently. This module is the correctness analogue of [`crate::trace`]:
//! a shadow observer woven into [`crate::Warp`] that models **zero**
//! warp instructions and, when disabled (the default), leaves every counter,
//! extension and trace bit-identical to an un-sanitized run.
//!
//! Four check families, individually selectable via [`SanitizerConfig`]:
//!
//! * **Races** — a per-byte shadow map records which lane last wrote and
//!   which lanes have read each byte *since the last ordering point*. Two
//!   lanes touching the same byte with at least one write, without an
//!   intervening collective/barrier, is a [`SanKind::LaneRace`]. Atomics
//!   are exempt (the simulator serializes them, as hardware does).
//! * **Sync** — barriers whose mask names lanes that executed nothing since
//!   the previous barrier ([`SanKind::DivergentBarrier`]), collective masks
//!   with bits beyond the warp width ([`SanKind::MaskExceedsWidth`]), and
//!   shuffles reading an out-of-range or inactive source lane
//!   ([`SanKind::ShuffleSourceOutOfRange`], [`SanKind::ShuffleInactiveSource`]).
//! * **Lint** — advisory access-pattern diagnostics: global loads/stores
//!   whose sector count degenerates to one transaction per lane
//!   ([`SanKind::Uncoalesced`], reusing `memhier::coalesce` sector math),
//!   and probe chains that wrapped past `slots` rounds
//!   ([`SanKind::ProbeWrap`], recorded by the insert dialects at their
//!   wrap-guard fault sites).
//! * **Invariants** — post-construct hash-table checks run host-side:
//!   duplicate keys after insertion ([`SanKind::DuplicateKey`]) and
//!   occupancy beyond capacity ([`SanKind::TableOverflow`]).
//!
//! ## Ordering model
//!
//! Race detection needs a definition of "ordered". Epochs provide it: each
//! shadow byte is stamped with the epoch of its last accesses, and accesses
//! in *different* epochs never race. With `lockstep: false` (CUDA's
//! independent-thread-scheduling posture) the epoch advances at every
//! collective and barrier — lanes are unordered between sync points, as on
//! Volta+. With `lockstep: true` (HIP wavefronts, SYCL sub-groups, where
//! the ported kernels deliberately *rely* on implicit lockstep instead of
//! `__syncwarp`) the epoch advances at every memory instruction, so only
//! two lanes colliding on a byte *within one instruction* race.
//! [`crate::grid`]'s launcher picks the mode; the kernel dialect decides.
//!
//! Findings are deduplicated to at most one race per warp instruction and
//! capped per warp (the remainder counted in [`SanReport::suppressed`]),
//! so a systematic bug cannot bloat a report.

use crate::mask::Mask;
use std::collections::HashMap;

/// Hard cap on recorded findings (and, separately, lints) per warp.
/// Everything past the cap only bumps [`SanReport::suppressed`].
const MAX_RECORDED: usize = 64;

/// Uncoalesced-access lint threshold: flag a memory instruction only when
/// at least this many lanes participated *and* it needed one sector
/// transaction per lane (the fully-scattered worst case of §IV's HBM model).
const LINT_MIN_LANES: u32 = 4;

/// Which sanitizer check families are armed. Off by default; construct via
/// [`SanitizerConfig::all`] or by setting individual fields.
///
/// The struct is `Copy` and threaded through `LaunchConfig`/`GpuConfig`
/// exactly like the PR 4 fault plan: a disabled config costs one
/// `Option::is_none` branch per instrumented call site and changes no
/// modeled state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SanitizerConfig {
    /// Lane-level data-race detection (per-byte shadow memory).
    pub races: bool,
    /// Barrier-divergence and collective/shuffle mask checks.
    pub sync: bool,
    /// Advisory access-pattern lints (uncoalesced access, probe wrap).
    pub lint: bool,
    /// Post-construct hash-table invariant checks (duplicates, overflow).
    pub invariants: bool,
    /// Treat the warp as executing in strict lockstep: the race epoch
    /// advances at every memory instruction, so only intra-instruction
    /// lane collisions are races. Set for HIP wavefronts and SYCL
    /// sub-groups, whose ported kernels rely on implicit lockstep in
    /// place of `__syncwarp`; leave false for CUDA's independent thread
    /// scheduling, where lanes are unordered between collectives.
    pub lockstep: bool,
}

impl SanitizerConfig {
    /// Every check family armed, in independent-thread-scheduling mode
    /// (`lockstep: false`).
    pub fn all() -> SanitizerConfig {
        SanitizerConfig { races: true, sync: true, lint: true, invariants: true, lockstep: false }
    }

    /// Is any check family armed?
    pub fn enabled(&self) -> bool {
        self.races || self.sync || self.lint || self.invariants
    }

    /// Does this config want findings of the given kind recorded?
    pub fn wants(&self, kind: &SanKind) -> bool {
        match kind {
            SanKind::LaneRace { .. } => self.races,
            SanKind::DivergentBarrier { .. }
            | SanKind::MaskExceedsWidth { .. }
            | SanKind::ShuffleSourceOutOfRange { .. }
            | SanKind::ShuffleInactiveSource { .. } => self.sync,
            SanKind::Uncoalesced { .. } | SanKind::ProbeWrap { .. } => self.lint,
            SanKind::DuplicateKey { .. }
            | SanKind::TableOverflow { .. }
            | SanKind::MisplacedKey { .. }
            | SanKind::TombstoneMismatch { .. }
            | SanKind::MigrationMismatch { .. } => self.invariants,
        }
    }
}

/// One class of defect the sanitizer can report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SanKind {
    /// Two lanes touched the same byte with at least one write and no
    /// ordering point (collective/barrier) in between.
    LaneRace {
        /// Byte address both lanes touched.
        addr: u64,
        /// The two conflicting lanes (earlier accessor first).
        lanes: (u32, u32),
        /// True for write-write, false for read-write conflicts.
        write_write: bool,
    },
    /// A masked barrier named lanes that executed no instruction since the
    /// previous barrier — the simulator's proxy for "not all named lanes
    /// can reach this `__syncwarp`".
    DivergentBarrier {
        /// The mask the barrier was called with.
        mask: u64,
        /// Lanes that actually executed something this barrier interval.
        active: u64,
    },
    /// A collective's mask has bits set at or beyond the warp width —
    /// undefined behaviour on hardware, and on pre-guard `simt::Mask` it
    /// silently aliased `lane % 64`.
    MaskExceedsWidth {
        /// Static name of the collective (`"ballot"`, `"shfl"`, …).
        name: &'static str,
        /// The offending mask bits.
        mask: u64,
        /// Warp width the collective ran at.
        width: u32,
    },
    /// A shuffle's source lane index is `>= width`; hardware wraps it to
    /// `src % width`, which the simulator now mirrors — but relying on the
    /// wrap is almost always a bug.
    ShuffleSourceOutOfRange {
        /// Source lane as passed by the kernel.
        src: u32,
        /// Warp width the shuffle ran at.
        width: u32,
    },
    /// A shuffle read from a source lane not in the shuffle's mask: the
    /// value delivered is undefined on hardware.
    ShuffleInactiveSource {
        /// Source lane the shuffle read.
        src: u32,
        /// The shuffle's active mask.
        mask: u64,
    },
    /// Advisory: a global memory instruction degenerated to one sector
    /// transaction per lane (fully scattered access).
    Uncoalesced {
        /// Sector transactions the instruction required.
        sectors: u64,
        /// Lanes that participated.
        lanes: u32,
    },
    /// A linear-probe chain wrapped past `slots` rounds — recorded by the
    /// insert dialects right where they raise `HashTableFull`.
    ProbeWrap {
        /// Probe rounds completed when the wrap guard fired.
        rounds: u32,
        /// Hash-table capacity in slots.
        slots: u32,
    },
    /// Post-construct invariant violation: the same key occupies two slots.
    DuplicateKey {
        /// First slot holding the key.
        slot_a: u32,
        /// Second slot holding the same key.
        slot_b: u32,
    },
    /// Post-construct invariant violation: the table is at (or beyond)
    /// capacity — a full open-addressed table cannot terminate unmatched
    /// probes, so the staging load-factor estimate was violated.
    TableOverflow {
        /// Occupied slots counted host-side.
        occupancy: u32,
        /// Table capacity in slots.
        capacity: u32,
    },
    /// Post-construct invariant violation: a stored key occupies a slot
    /// its own hash's probe sequence can never visit under the job's
    /// table layout — lookups for that key would miss it. Only layouts
    /// with position-restricted probe sequences (bucketed, iceberg) can
    /// violate this; a linear probe reaches every slot.
    MisplacedKey {
        /// Slot holding the unreachable key.
        slot: u32,
    },
    /// Post-construct invariant violation: the job's host-side tombstone
    /// count disagrees with a scan of the table — a deletion lost its
    /// sentinel, or a migration retired tombstones without resetting the
    /// counter ("dangling tombstone count").
    TombstoneMismatch {
        /// Tombstones the job's host-side counter claims.
        counted: u32,
        /// Tombstone slots a full table scan actually found.
        scanned: u32,
    },
    /// Post-construct invariant violation: live occupancy (occupied slots
    /// minus tombstones) disagrees with the job's host-side occupancy
    /// counter after migration — a slot was migrated twice (double
    /// counted) or dropped (lost) by an incremental resize.
    MigrationMismatch {
        /// Live entries the job's host-side counter claims.
        counted: u32,
        /// Live slots a full table scan actually found.
        scanned: u32,
    },
}

impl SanKind {
    /// Short stable identifier of the check that fired (used by trace
    /// events, the Chrome export and test assertions).
    pub fn check(&self) -> &'static str {
        match self {
            SanKind::LaneRace { .. } => "lane_race",
            SanKind::DivergentBarrier { .. } => "divergent_barrier",
            SanKind::MaskExceedsWidth { .. } => "mask_exceeds_width",
            SanKind::ShuffleSourceOutOfRange { .. } => "shfl_src_out_of_range",
            SanKind::ShuffleInactiveSource { .. } => "shfl_inactive_src",
            SanKind::Uncoalesced { .. } => "uncoalesced",
            SanKind::ProbeWrap { .. } => "probe_wrap",
            SanKind::DuplicateKey { .. } => "duplicate_key",
            SanKind::TableOverflow { .. } => "table_overflow",
            SanKind::MisplacedKey { .. } => "misplaced_key",
            SanKind::TombstoneMismatch { .. } => "tombstone_mismatch",
            SanKind::MigrationMismatch { .. } => "migration_mismatch",
        }
    }
}

/// One sanitizer diagnostic, stamped on the deterministic
/// warp-instruction clock (same time base as [`crate::trace`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SanFinding {
    /// Warp-instruction clock value when the check fired.
    pub at: u64,
    /// What the sanitizer found.
    pub kind: SanKind,
}

/// All diagnostics one warp (or, after merging, one launch) produced.
///
/// `findings` are correctness defects; `lints` are advisory pattern
/// diagnostics (uncoalesced access) that do **not** make a report dirty —
/// the kernel's probe chains are legitimately scattered, and the tier-1
/// `sanitizer_clean` gate asserts zero *findings*, not zero lints.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SanReport {
    /// Correctness defects, in detection order.
    pub findings: Vec<SanFinding>,
    /// Advisory access-pattern diagnostics, in detection order.
    pub lints: Vec<SanFinding>,
    /// Diagnostics dropped by per-instruction dedup or the per-warp cap.
    pub suppressed: u64,
}

impl SanReport {
    /// True when no correctness defect was found (lints do not count).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Number of findings + lints whose [`SanKind::check`] matches `check`.
    pub fn count(&self, check: &str) -> usize {
        self.findings
            .iter()
            .chain(self.lints.iter())
            .filter(|f| f.kind.check() == check)
            .count()
    }

    /// Fold another warp's report into this one (launch-level merge; the
    /// launcher merges in job order, so merged reports are deterministic).
    pub fn merge(&mut self, other: SanReport) {
        self.findings.extend(other.findings);
        self.lints.extend(other.lints);
        self.suppressed += other.suppressed;
    }
}

/// Per-byte shadow cell. Epoch-stamped so the map never needs clearing:
/// entries from an earlier epoch are simply stale.
#[derive(Debug, Clone, Copy)]
struct ByteState {
    /// Epoch of the last write (0 = never written).
    w_epoch: u64,
    /// Lane that performed the last write (`u32::MAX` = none).
    w_lane: u32,
    /// Epoch of the last read (0 = never read).
    r_epoch: u64,
    /// Lanes that have read this byte in `r_epoch`.
    r_mask: u64,
}

const NO_LANE: u32 = u32::MAX;

impl Default for ByteState {
    fn default() -> Self {
        ByteState { w_epoch: 0, w_lane: NO_LANE, r_epoch: 0, r_mask: 0 }
    }
}

/// Live sanitizer state attached to a [`crate::Warp`]. Heap-boxed behind an
/// `Option` (like the trace sink) so the disabled path stays one branch.
#[derive(Debug, Default)]
pub(crate) struct SanState {
    cfg: SanitizerConfig,
    /// Current ordering epoch (starts at 1; shadow entries stamped 0 are
    /// "never accessed").
    epoch: u64,
    /// Union of op masks since the last barrier, for divergence checks.
    epoch_active: u64,
    /// Per-byte access shadow.
    shadow: HashMap<u64, ByteState>,
    /// Clock of the last recorded race, for per-instruction dedup.
    last_race_at: Option<u64>,
    findings: Vec<SanFinding>,
    lints: Vec<SanFinding>,
    suppressed: u64,
    /// Check names awaiting trace-event emission (drained by the warp
    /// after each hook, because emitting needs `&mut Warp`).
    pending: Vec<&'static str>,
}

impl SanState {
    pub(crate) fn new(cfg: SanitizerConfig) -> SanState {
        SanState { cfg, epoch: 1, ..Default::default() }
    }

    pub(crate) fn config(&self) -> SanitizerConfig {
        self.cfg
    }

    /// Note that `mask`'s lanes executed an instruction this barrier
    /// interval (feeds the divergence check; cheap enough to be ungated).
    pub(crate) fn note_active(&mut self, mask: Mask) {
        self.epoch_active |= mask.0;
    }

    /// Record a finding or lint, subject to config gating, the per-warp
    /// cap, and trace-event queueing. Returns nothing; callers never
    /// branch on the outcome.
    pub(crate) fn record(&mut self, at: u64, kind: SanKind) {
        if !self.cfg.wants(&kind) {
            return;
        }
        let dst = if matches!(kind, SanKind::Uncoalesced { .. }) {
            &mut self.lints
        } else {
            &mut self.findings
        };
        if dst.len() >= MAX_RECORDED {
            self.suppressed += 1;
            return;
        }
        dst.push(SanFinding { at, kind });
        self.pending.push(kind.check());
    }

    /// Shadow-check one warp memory instruction touching, for each lane in
    /// `mask`, `size` bytes at that lane's address.
    pub(crate) fn mem_op(
        &mut self,
        at: u64,
        mask: Mask,
        lane_addrs: impl Iterator<Item = (u32, u64)>,
        size: u32,
        write: bool,
    ) {
        self.note_active(mask);
        if !self.cfg.races {
            return;
        }
        if self.cfg.lockstep {
            // Strict lockstep: each instruction is its own epoch, so only
            // intra-instruction collisions below can race.
            self.epoch += 1;
        }
        for (lane, addr) in lane_addrs {
            if !mask.contains(lane) {
                continue;
            }
            for byte in addr..addr + size as u64 {
                self.touch_byte(at, byte, lane, write);
            }
        }
    }

    /// Shadow-check a single-lane access (the scalar load/store helpers).
    pub(crate) fn scalar_op(&mut self, at: u64, lane: u32, addr: u64, size: u32, write: bool) {
        self.note_active(Mask::lane(lane));
        if !self.cfg.races {
            return;
        }
        if self.cfg.lockstep {
            self.epoch += 1;
        }
        for byte in addr..addr + size as u64 {
            self.touch_byte(at, byte, lane, write);
        }
    }

    fn touch_byte(&mut self, at: u64, byte: u64, lane: u32, write: bool) {
        let st = self.shadow.entry(byte).or_default();
        let epoch = self.epoch;
        let mut race: Option<SanKind> = None;
        if write {
            if st.w_epoch == epoch && st.w_lane != lane {
                race = Some(SanKind::LaneRace {
                    addr: byte,
                    lanes: (st.w_lane, lane),
                    write_write: true,
                });
            } else if st.r_epoch == epoch && st.r_mask & !(1u64 << lane) != 0 {
                let reader = (st.r_mask & !(1u64 << lane)).trailing_zeros();
                race = Some(SanKind::LaneRace {
                    addr: byte,
                    lanes: (reader, lane),
                    write_write: false,
                });
            }
            st.w_epoch = epoch;
            st.w_lane = lane;
        } else {
            if st.w_epoch == epoch && st.w_lane != lane {
                race = Some(SanKind::LaneRace {
                    addr: byte,
                    lanes: (st.w_lane, lane),
                    write_write: false,
                });
            }
            if st.r_epoch == epoch {
                st.r_mask |= 1u64 << lane;
            } else {
                st.r_epoch = epoch;
                st.r_mask = 1u64 << lane;
            }
        }
        if let Some(kind) = race {
            // At most one race per warp instruction: a warp-wide collision
            // would otherwise report once per lane pair per byte.
            if self.last_race_at == Some(at) {
                self.suppressed += 1;
            } else {
                self.last_race_at = Some(at);
                self.record(at, kind);
            }
        }
    }

    /// Lint hook for one warp memory instruction's coalescing result.
    pub(crate) fn lint_access(&mut self, at: u64, sectors: u64, lanes: u32) {
        if !self.cfg.lint {
            return;
        }
        if lanes >= LINT_MIN_LANES && sectors >= lanes as u64 {
            self.record(at, SanKind::Uncoalesced { sectors, lanes });
        }
    }

    /// Hook for every collective (`ballot`/`match_any`/`all`/`any`/`shfl`):
    /// mask-width check, activity note, and — in ITS mode — an epoch
    /// advance (collectives are ordering points between lanes).
    pub(crate) fn collective(&mut self, at: u64, name: &'static str, mask: Mask, width: u32) {
        self.note_active(mask);
        if self.cfg.sync && mask.0 & !Mask::full(width).0 != 0 {
            self.record(at, SanKind::MaskExceedsWidth { name, mask: mask.0, width });
        }
        if self.cfg.races && !self.cfg.lockstep {
            self.epoch += 1;
        }
    }

    /// Extra shuffle-source checks (`collective` runs too, separately).
    pub(crate) fn shfl_src(&mut self, at: u64, mask: Mask, src: u32, width: u32) {
        if !self.cfg.sync {
            return;
        }
        if src >= width {
            self.record(at, SanKind::ShuffleSourceOutOfRange { src, width });
        } else if !mask.contains(src) {
            self.record(at, SanKind::ShuffleInactiveSource { src, mask: mask.0 });
        }
    }

    /// Hook for barriers. `mask` is `Some` for `syncwarp(mask)` (which gets
    /// the divergence check) and `None` for the unmasked sub-group barrier.
    /// Every barrier closes the activity interval and advances the epoch.
    pub(crate) fn barrier(&mut self, at: u64, mask: Option<Mask>, width: u32) {
        if self.cfg.sync {
            if let Some(m) = mask {
                let silent = m.0 & !self.epoch_active & Mask::full(width).0;
                if silent != 0 {
                    self.record(
                        at,
                        SanKind::DivergentBarrier { mask: m.0, active: self.epoch_active },
                    );
                }
            }
        }
        self.epoch_active = 0;
        if self.cfg.races {
            self.epoch += 1;
        }
    }

    /// Any trace events queued?
    pub(crate) fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Drain queued trace-event check names.
    pub(crate) fn take_pending(&mut self) -> Vec<&'static str> {
        std::mem::take(&mut self.pending)
    }

    /// Seal the state into its report.
    pub(crate) fn into_report(self) -> SanReport {
        SanReport { findings: self.findings, lints: self.lints, suppressed: self.suppressed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn armed() -> SanState {
        SanState::new(SanitizerConfig::all())
    }

    fn lockstep() -> SanState {
        SanState::new(SanitizerConfig { lockstep: true, ..SanitizerConfig::all() })
    }

    fn pair(s: &mut SanState, at: u64, lanes: [u32; 2], addrs: [u64; 2], write: bool) {
        let mask = Mask(lanes.iter().fold(0u64, |m, &l| m | 1 << l));
        s.mem_op(at, mask, lanes.iter().copied().zip(addrs.iter().copied()), 4, write);
    }

    #[test]
    fn config_defaults_off() {
        let cfg = SanitizerConfig::default();
        assert!(!cfg.enabled());
        assert!(SanitizerConfig::all().enabled());
        assert!(SanitizerConfig { lint: true, ..Default::default() }.enabled());
    }

    #[test]
    fn write_write_race_same_epoch() {
        let mut s = armed();
        pair(&mut s, 1, [0, 3], [100, 100], true);
        let r = s.into_report();
        assert_eq!(r.count("lane_race"), 1);
        match r.findings[0].kind {
            SanKind::LaneRace { addr, lanes, write_write } => {
                assert_eq!(addr, 100);
                assert_eq!(lanes, (0, 3));
                assert!(write_write);
            }
            k => panic!("wrong kind {k:?}"),
        }
    }

    #[test]
    fn read_write_race_same_epoch() {
        let mut s = armed();
        // Lane 1 reads at clock 1, lane 2 writes the same word at clock 2.
        pair(&mut s, 1, [1, 5], [100, 200], false);
        pair(&mut s, 2, [2, 6], [100, 300], true);
        let r = s.into_report();
        assert_eq!(r.count("lane_race"), 1);
        match r.findings[0].kind {
            SanKind::LaneRace { lanes, write_write, .. } => {
                assert_eq!(lanes, (1, 2));
                assert!(!write_write);
            }
            k => panic!("wrong kind {k:?}"),
        }
    }

    #[test]
    fn write_then_read_other_lane_races() {
        let mut s = armed();
        pair(&mut s, 1, [0, 4], [64, 128], true);
        pair(&mut s, 2, [3, 7], [64, 256], false);
        assert_eq!(s.into_report().count("lane_race"), 1);
    }

    #[test]
    fn same_lane_never_races_with_itself() {
        let mut s = armed();
        pair(&mut s, 1, [2, 5], [100, 200], true);
        pair(&mut s, 2, [2, 5], [100, 200], false);
        pair(&mut s, 3, [2, 5], [100, 200], true);
        assert!(s.into_report().is_clean());
    }

    #[test]
    fn collective_orders_conflicting_accesses() {
        let mut s = armed();
        pair(&mut s, 1, [0, 1], [100, 200], true);
        s.collective(2, "ballot", Mask(0b11), 32);
        // Same bytes, different lanes — but a collective intervened.
        pair(&mut s, 3, [1, 0], [100, 200], true);
        assert!(s.into_report().is_clean());
    }

    #[test]
    fn barrier_orders_conflicting_accesses() {
        let mut s = armed();
        pair(&mut s, 1, [0, 1], [100, 200], true);
        s.barrier(2, Some(Mask(0b11)), 32);
        pair(&mut s, 3, [1, 0], [100, 200], true);
        assert!(s.into_report().is_clean());
    }

    #[test]
    fn lockstep_suppresses_cross_instruction_races() {
        let mut s = lockstep();
        // Publish/compare with no collective in between: racy under ITS,
        // fine under strict lockstep (the HIP wavefront posture).
        pair(&mut s, 1, [0, 1], [100, 200], true);
        pair(&mut s, 2, [1, 0], [100, 200], false);
        assert!(s.into_report().is_clean());
    }

    #[test]
    fn lockstep_still_catches_intra_instruction_races() {
        let mut s = lockstep();
        pair(&mut s, 1, [0, 3], [100, 100], true);
        assert_eq!(s.into_report().count("lane_race"), 1);
    }

    #[test]
    fn races_deduplicate_per_instruction() {
        let mut s = armed();
        // All four lanes write the same word: one finding, rest suppressed.
        let mask = Mask(0b1111);
        s.mem_op(1, mask, (0..4).map(|l| (l, 100)), 4, true);
        let r = s.into_report();
        assert_eq!(r.count("lane_race"), 1);
        assert!(r.suppressed > 0);
    }

    #[test]
    fn finding_cap_counts_suppressed() {
        let mut s = armed();
        for i in 0..(MAX_RECORDED as u64 + 10) {
            // A fresh address each instruction: exactly one new race per
            // call (plus per-byte dedup suppression within the word).
            pair(&mut s, i + 1, [0, 1], [1000 + 8 * i, 1000 + 8 * i], true);
        }
        let r = s.into_report();
        assert_eq!(r.findings.len(), MAX_RECORDED, "cap bounds recorded findings");
        assert!(r.suppressed >= 10, "capped findings are counted, got {}", r.suppressed);
    }

    #[test]
    fn divergent_barrier_flags_silent_lanes() {
        let mut s = armed();
        // Only lanes 0-1 execute, but the barrier names lanes 0-3.
        pair(&mut s, 1, [0, 1], [100, 200], true);
        s.barrier(2, Some(Mask(0b1111)), 32);
        let r = s.into_report();
        assert_eq!(r.count("divergent_barrier"), 1);
        match r.findings[0].kind {
            SanKind::DivergentBarrier { mask, active } => {
                assert_eq!(mask, 0b1111);
                assert_eq!(active, 0b0011);
            }
            k => panic!("wrong kind {k:?}"),
        }
    }

    #[test]
    fn converged_barrier_is_clean() {
        let mut s = armed();
        pair(&mut s, 1, [0, 1], [100, 200], true);
        s.barrier(2, Some(Mask(0b11)), 32);
        // Activity resets per interval: next round's ops re-arm it.
        pair(&mut s, 3, [0, 1], [300, 400], true);
        s.barrier(4, Some(Mask(0b11)), 32);
        assert!(s.into_report().is_clean());
    }

    #[test]
    fn unmasked_barrier_never_flags_divergence() {
        let mut s = armed();
        s.barrier(1, None, 16);
        assert!(s.into_report().is_clean());
    }

    #[test]
    fn collective_mask_beyond_width_flags() {
        let mut s = armed();
        s.collective(1, "ballot", Mask(1 << 40), 32);
        let r = s.into_report();
        assert_eq!(r.count("mask_exceeds_width"), 1);
        match r.findings[0].kind {
            SanKind::MaskExceedsWidth { name, width, .. } => {
                assert_eq!(name, "ballot");
                assert_eq!(width, 32);
            }
            k => panic!("wrong kind {k:?}"),
        }
    }

    #[test]
    fn shfl_source_checks() {
        let mut s = armed();
        s.shfl_src(1, Mask(0b11), 40, 32); // out of range
        s.shfl_src(2, Mask(0b11), 5, 32); // in range but inactive
        s.shfl_src(3, Mask(0b11), 1, 32); // fine
        let r = s.into_report();
        assert_eq!(r.count("shfl_src_out_of_range"), 1);
        assert_eq!(r.count("shfl_inactive_src"), 1);
        assert_eq!(r.findings.len(), 2);
    }

    #[test]
    fn uncoalesced_is_a_lint_not_a_finding() {
        let mut s = armed();
        s.lint_access(1, 32, 32); // fully scattered: one sector per lane
        s.lint_access(2, 1, 32); // perfectly coalesced
        s.lint_access(3, 2, 2); // too few lanes to matter
        let r = s.into_report();
        assert!(r.is_clean(), "lints must not dirty the report");
        assert_eq!(r.count("uncoalesced"), 1);
        assert_eq!(r.lints.len(), 1);
    }

    #[test]
    fn record_is_config_gated() {
        let mut s = SanState::new(SanitizerConfig { races: true, ..Default::default() });
        s.record(1, SanKind::ProbeWrap { rounds: 9, slots: 8 });
        s.record(2, SanKind::DuplicateKey { slot_a: 0, slot_b: 3 });
        assert!(s.into_report().is_clean());
        let mut s = SanState::new(SanitizerConfig { invariants: true, ..Default::default() });
        s.record(1, SanKind::TableOverflow { occupancy: 9, capacity: 8 });
        assert_eq!(s.into_report().count("table_overflow"), 1);
    }

    #[test]
    fn pending_trace_names_drain() {
        let mut s = armed();
        pair(&mut s, 1, [0, 1], [100, 100], true);
        assert!(s.has_pending());
        assert_eq!(s.take_pending(), vec!["lane_race"]);
        assert!(!s.has_pending());
    }

    #[test]
    fn report_merge_accumulates() {
        let mut a = SanReport::default();
        let mut s = armed();
        pair(&mut s, 1, [0, 1], [100, 100], true);
        s.lint_access(2, 8, 8);
        let r = s.into_report();
        let sup = r.suppressed;
        a.merge(r);
        a.merge(SanReport { suppressed: 3, ..Default::default() });
        assert_eq!(a.findings.len(), 1);
        assert_eq!(a.lints.len(), 1);
        assert_eq!(a.suppressed, sup + 3);
        assert!(!a.is_clean());
    }
}

//! Requests entering the service and the structured outcomes leaving it.
//!
//! A [`ServiceOutcome`] *extends* the launch engine's per-job
//! `JobOutcome`: where the engine reports how one kernel run of an
//! admitted job went, the service also has to account for requests that
//! never ran (rejected at admission, expired in the queue), ran too late
//! (deadline missed), or ran out of every retry the service was willing
//! to spend (quarantined). Every variant carries the payload a client —
//! or a replay — needs to reconstruct exactly what happened.

use locassm_core::{ContigJob, ExtensionResult, RequestId};
use locassm_kernels::{JobOutcome, KernelFault};

/// One contig-extension request submitted to the service.
#[derive(Debug, Clone)]
pub struct ExtensionRequest {
    /// Deterministic identity: tenant plus per-tenant sequence number.
    /// The packed [`RequestId::uid`] is the id space fault plans target.
    pub id: RequestId,
    /// The contig and its aligned reads, exactly as a standalone run
    /// would receive them.
    pub job: ContigJob,
    /// Virtual arrival time, in modeled seconds. The service clock is
    /// *modeled* time (the same deterministic quantity the timing model
    /// produces), never wall clock — so a workload replays bit-exactly.
    pub arrival: f64,
    /// Optional completion deadline, in modeled seconds *after* arrival.
    /// A request still queued when its deadline passes times out without
    /// running; one whose batch finishes past the deadline times out
    /// deterministically instead of returning a late result.
    pub deadline: Option<f64>,
}

impl ExtensionRequest {
    /// A deadline-free request arriving at `arrival`.
    pub fn new(id: RequestId, job: ContigJob, arrival: f64) -> Self {
        ExtensionRequest { id, job, arrival, deadline: None }
    }

    /// Attach a relative completion deadline (modeled seconds after
    /// arrival).
    pub fn with_deadline(mut self, deadline: f64) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The absolute deadline instant, if any.
    pub fn deadline_at(&self) -> Option<f64> {
        self.deadline.map(|d| self.arrival + d)
    }
}

/// Why admission refused a request. Returned synchronously at submit
/// time — backpressure is an explicit, structured answer, never an
/// unbounded queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The service-wide queue is at capacity.
    QueueFull {
        /// The configured total queue depth that was hit.
        depth: usize,
    },
    /// The submitting tenant's own queued-request quota is at capacity
    /// (other tenants may still have headroom — quotas isolate tenants
    /// from each other's bursts).
    TenantQuotaExceeded {
        /// The tenant's configured max queued requests.
        quota: usize,
    },
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::QueueFull { depth } => write!(f, "queue full (depth {depth})"),
            RejectReason::TenantQuotaExceeded { quota } => {
                write!(f, "tenant quota exceeded (max {quota} queued)")
            }
        }
    }
}

/// Where in its lifecycle a request's deadline expired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeoutStage {
    /// The deadline passed while the request was still queued (or parked
    /// in retry backoff); it never consumed GPU time.
    Queued,
    /// The request ran, but its batch completed after the deadline; the
    /// late result is discarded deterministically.
    Executed,
}

/// Terminal outcome of one request — the service-level extension of the
/// launch engine's `JobOutcome`.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceOutcome {
    /// The request ran and produced an extension (possibly after
    /// escalation and/or service-level requeues).
    Completed {
        /// The two-sided extension, bit-identical to a standalone run of
        /// the same job (invariant 9: admission changes *when* a job
        /// runs, never its result).
        result: ExtensionResult,
        /// The launch engine's outcome for the final (successful) run.
        kernel: JobOutcome,
        /// Service-level re-enqueues this request consumed (0 when the
        /// first batch run succeeded).
        requeues: u32,
        /// Completion instant on the virtual clock (modeled seconds).
        completed_at: f64,
    },
    /// Admission refused the request; it never entered the queue.
    Rejected {
        /// Why it was refused.
        reason: RejectReason,
        /// Arrival instant at which it was refused.
        at: f64,
    },
    /// The request's deadline expired.
    TimedOut {
        /// Whether it expired in the queue or after (late) execution.
        stage: TimeoutStage,
        /// The virtual instant the timeout was recorded.
        at: f64,
    },
    /// Poison job: the request kept faulting after the kernel's full
    /// escalation ladder *and* every service-level requeue, and is now
    /// parked so it can never perturb co-batched tenants again.
    Quarantined {
        /// The fault that exhausted the final run's ladder.
        fault: KernelFault,
        /// Total kernel attempts spent across every run (batch runs plus
        /// escalation retries) — exact, thanks to `JobOutcome::Failed`
        /// carrying its attempt count.
        attempts: u32,
        /// Service-level re-enqueues consumed before quarantine.
        requeues: u32,
    },
}

impl ServiceOutcome {
    /// True for [`ServiceOutcome::Completed`].
    pub fn completed(&self) -> bool {
        matches!(self, ServiceOutcome::Completed { .. })
    }

    /// The completed extension, if any.
    pub fn extension(&self) -> Option<&ExtensionResult> {
        match self {
            ServiceOutcome::Completed { result, .. } => Some(result),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locassm_core::{Read, TenantId};

    fn req() -> ExtensionRequest {
        let job = ContigJob::new(
            0,
            b"ACGTACGT".to_vec(),
            vec![Read::with_uniform_qual(b"ACGTACGTAC", b'I')],
            vec![],
        );
        ExtensionRequest::new(RequestId::new(TenantId(1), 0), job, 2.0)
    }

    #[test]
    fn deadlines_are_relative_to_arrival() {
        assert_eq!(req().deadline_at(), None);
        assert_eq!(req().with_deadline(3.5).deadline_at(), Some(5.5));
    }

    #[test]
    fn reject_reasons_render() {
        assert!(RejectReason::QueueFull { depth: 8 }.to_string().contains("depth 8"));
        assert!(
            RejectReason::TenantQuotaExceeded { quota: 2 }.to_string().contains("max 2")
        );
    }

    #[test]
    fn outcome_accessors() {
        let o = ServiceOutcome::Rejected { reason: RejectReason::QueueFull { depth: 1 }, at: 0.0 };
        assert!(!o.completed());
        assert!(o.extension().is_none());
    }
}
